#!/usr/bin/env python3
"""Diff committed BENCH_*.json files against the previous commit.

For every BENCH_*.json tracked at HEAD, fetches the same file at HEAD~1
(via `git show`) and compares per-record wall_seconds and, when present,
the serving counters requests_per_sec / p50_s / p99_s. A record regresses
when it got slower (or lower-throughput) beyond TOLERANCE. Records are
matched by their "name" label; added or removed records are reported but
never fail the check, and a file with no previous version is skipped —
the first commit of a bench cannot regress.

Bench numbers come from shared CI runners, so the tolerance is generous:
this check catches "accidentally quadratic", not single-digit noise.

A baseline can be missing for two distinct reasons, and the notice says
which: the file has no version at HEAD~1 at all (first commit of that
bench — cannot regress, skipped), or the previous version exists but does
not parse as JSON (also skipped, but called out loudly so a corrupted
baseline never silently disables the gate).

`--list` prints every tracked BENCH_*.json with its record count and
baseline status, without comparing anything; the CI job logs it first so
a "no perf regressions" verdict always shows what was actually checked.

Exit status: 1 when any matched record regressed beyond tolerance.
"""

import argparse
import glob
import json
import subprocess
import sys

TOLERANCE = 0.50  # fail only on >50% regressions; CI runners are noisy
MIN_SECONDS = 0.01  # ignore records too fast to measure reliably

# counter name -> direction ("higher"/"lower" is better)
SERVING_COUNTERS = {
    "requests_per_sec": "higher",
    "p50_s": "lower",
    "p99_s": "lower",
}


def load_previous(path):
    """Returns (doc, status): (parsed, "ok"), (None, "missing") when the
    baseline commit has no such file, (None, "unparsable") when it does
    but the content is not valid JSON."""
    try:
        out = subprocess.run(
            ["git", "show", f"HEAD~1:{path}"],
            capture_output=True,
            check=True,
        ).stdout
    except subprocess.CalledProcessError:
        return None, "missing"  # new file, or HEAD has no parent
    try:
        return json.loads(out), "ok"
    except json.JSONDecodeError:
        return None, "unparsable"


def records_by_name(doc):
    return {r["name"]: r for r in doc.get("records", []) if "name" in r}


def ratio_regressed(old, new, direction):
    if old <= 0 or new <= 0:
        return False
    if direction == "lower":  # lower is better: new may be old * (1 + tol)
        return new > old * (1.0 + TOLERANCE)
    return new < old * (1.0 - TOLERANCE)


def check_file(path):
    new_doc = json.load(open(path))
    old_doc, baseline = load_previous(path)
    if baseline == "missing":
        print(f"  {path}: SKIPPED — baseline commit has no {path} "
              f"(first commit of this bench; nothing to compare against)")
        return []
    if baseline == "unparsable":
        print(f"  {path}: SKIPPED — baseline {path} exists at HEAD~1 but "
              f"is not valid JSON; fix or regenerate the baseline, the "
              f"regression gate is OFF for this file until then")
        return []
    old_records = records_by_name(old_doc)
    new_records = records_by_name(new_doc)
    regressions = []
    for name in sorted(set(old_records) | set(new_records)):
        if name not in old_records:
            print(f"  {path}: {name}: added")
            continue
        if name not in new_records:
            print(f"  {path}: {name}: removed")
            continue
        old, new = old_records[name], new_records[name]
        old_s, new_s = old.get("wall_seconds", 0), new.get("wall_seconds", 0)
        if old_s >= MIN_SECONDS and ratio_regressed(old_s, new_s, "lower"):
            regressions.append(
                f"{path}: {name}: wall_seconds {old_s:.4f} -> {new_s:.4f}")
        old_counters = dict(old.get("counters", {}))
        new_counters = dict(new.get("counters", {}))
        for counter, direction in SERVING_COUNTERS.items():
            if counter in old_counters and counter in new_counters:
                if ratio_regressed(old_counters[counter],
                                   new_counters[counter], direction):
                    regressions.append(
                        f"{path}: {name}: {counter} "
                        f"{old_counters[counter]:.4g} -> "
                        f"{new_counters[counter]:.4g}")
    status = "OK" if not regressions else f"{len(regressions)} regression(s)"
    print(f"  {path}: {len(new_records)} records, {status}")
    return regressions


def tracked_bench_files():
    tracked = subprocess.run(
        ["git", "ls-files", "BENCH_*.json"],
        capture_output=True,
        text=True,
        check=True,
    ).stdout.split()
    return [p for p in tracked if glob.glob(p)]


def list_files(paths):
    if not paths:
        print("no committed BENCH_*.json files")
        return 0
    print(f"{len(paths)} tracked bench file(s):")
    for path in paths:
        try:
            records = len(records_by_name(json.load(open(path))))
        except (OSError, json.JSONDecodeError):
            records = -1
        _, baseline = load_previous(path)
        status = {"ok": "baseline at HEAD~1",
                  "missing": "NO baseline at HEAD~1 (gate skips this file)",
                  "unparsable": "UNPARSABLE baseline at HEAD~1 (gate skips "
                                "this file)"}[baseline]
        head = f"{records} records" if records >= 0 else "UNPARSABLE at HEAD"
        print(f"  {path}: {head}, {status}")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--list", action="store_true",
                        help="list tracked bench files and baseline status "
                             "without comparing")
    args = parser.parse_args()
    paths = tracked_bench_files()
    if args.list:
        return list_files(paths)
    if not paths:
        print("no committed BENCH_*.json files; nothing to check")
        return 0
    print(f"checking {len(paths)} bench file(s) against HEAD~1 "
          f"(tolerance {TOLERANCE:.0%}):")
    regressions = []
    for path in paths:
        regressions.extend(check_file(path))
    if regressions:
        print("\nperf regressions beyond tolerance:")
        for r in regressions:
            print(f"  {r}")
        return 1
    print("no perf regressions beyond tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
