#include "update/update_batch.h"

#include <map>
#include <sstream>

namespace kbiplex {
namespace update {

std::string UpdateBatch::Normalize(const BipartiteGraph& g,
                                   NormalizedDelta* out) const {
  out->insert.clear();
  out->erase.clear();
  out->noop_inserts = 0;
  out->noop_deletes = 0;

  // Last-op-wins dedup: replaying the batch in order into a map leaves
  // exactly the final operation per edge, and the map's (left, right)
  // ordering hands the sorted delta lists back for free.
  std::map<BipartiteGraph::Edge, Op> last;
  for (const auto& [edge, op] : ops_) {
    if (edge.first >= g.NumLeft() || edge.second >= g.NumRight()) {
      std::ostringstream os;
      os << "edge (" << edge.first << "," << edge.second
         << ") out of range for a " << g.NumLeft() << "x" << g.NumRight()
         << " graph";
      return os.str();
    }
    last[edge] = op;
  }

  for (const auto& [edge, op] : last) {
    const bool present = g.HasEdge(edge.first, edge.second);
    if (op == Op::kInsert) {
      if (present) {
        ++out->noop_inserts;
      } else {
        out->insert.push_back(edge);
      }
    } else {
      if (present) {
        out->erase.push_back(edge);
      } else {
        ++out->noop_deletes;
      }
    }
  }
  return "";
}

}  // namespace update
}  // namespace kbiplex
