// Edge-update collection for the incremental update subsystem: an
// UpdateBatch gathers edge inserts and deletes in arrival order, and
// Normalize() turns them into the canonical delta the copy-on-write epoch
// machinery consumes — validated against the target graph, deduplicated
// (the last operation on an edge wins, like a write-ahead log replay),
// and with no-ops (inserting a present edge, deleting an absent one)
// dropped but counted, so callers can report exactly what changed.
//
// Vertex sets are fixed: an update changes edges between the existing
// left/right id spaces, never the spaces themselves. Growing the graph is
// a reload, not an update (see docs/incremental_updates.md).
#ifndef KBIPLEX_UPDATE_UPDATE_BATCH_H_
#define KBIPLEX_UPDATE_UPDATE_BATCH_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "graph/bipartite_graph.h"
#include "util/common.h"

namespace kbiplex {
namespace update {

/// The canonical form of a batch against one concrete graph: both lists
/// sorted by (left, right), duplicate-free, disjoint; every insert edge
/// is absent from the graph and every erase edge present — exactly the
/// contract BipartiteGraph::WithEdgeDelta splices under.
struct NormalizedDelta {
  std::vector<BipartiteGraph::Edge> insert;
  std::vector<BipartiteGraph::Edge> erase;
  size_t noop_inserts = 0;  // inserts of edges already present (dropped)
  size_t noop_deletes = 0;  // deletes of edges not present (dropped)

  size_t size() const { return insert.size() + erase.size(); }
  bool empty() const { return insert.empty() && erase.empty(); }
};

/// An ordered collection of edge operations awaiting application.
class UpdateBatch {
 public:
  void Insert(VertexId left, VertexId right) {
    ops_.push_back({{left, right}, Op::kInsert});
  }
  void Remove(VertexId left, VertexId right) {
    ops_.push_back({{left, right}, Op::kRemove});
  }

  size_t size() const { return ops_.size(); }
  bool empty() const { return ops_.empty(); }

  /// Validates every operation against `g` (ids must be in range),
  /// collapses repeated operations on the same edge to the last one, and
  /// classifies each survivor as a real change or a no-op. Returns the
  /// error message (empty on success); on error `*out` is unspecified.
  std::string Normalize(const BipartiteGraph& g, NormalizedDelta* out) const;

 private:
  enum class Op : uint8_t { kInsert, kRemove };
  std::vector<std::pair<BipartiteGraph::Edge, Op>> ops_;
};

}  // namespace update
}  // namespace kbiplex

#endif  // KBIPLEX_UPDATE_UPDATE_BATCH_H_
