// Copy-on-write epoch construction for PreparedGraph: apply a normalized
// edge delta to an existing epoch, producing a new immutable PreparedGraph
// whose cheap artifacts are carried forward incrementally — work
// proportional to the delta, not the graph — in the spirit of Berkholz,
// Keppeler and Schweikardt's "Answering FO+MOD queries under updates"
// (re-derive only what the delta touched):
//
//   - base and renumbered CSR: per-row splice (BipartiteGraph::
//     WithEdgeDelta); the degeneracy permutation itself is reused —
//     vertex sets never change across updates, so the maps stay valid and
//     only their *quality* drifts, which the staleness threshold bounds;
//   - adjacency index: the deterministic budget planner re-runs over the
//     new degrees, and every row the delta did not touch is copied
//     byte-for-byte from the previous epoch's index;
//   - component labeling: union-find merge over the old labels for
//     inserts; deletes mark the touched merged components dirty and only
//     the dirty region is re-BFSed (the BFS provably cannot escape it);
//   - (a,a)-core bound: deletes only shrink the degeneracy, so the old
//     bound stays a sound upper bound; inserts raise it by at most one
//     each, and the carried bound min(old + inserts, max degree) stays
//     sound — an exact bound returns at the next full rebuild.
//
// Past the staleness threshold (UpdateOptions::max_delta_fraction) the
// patching is abandoned: the new epoch starts with lazy artifacts exactly
// like a fresh Prepare, and every artifact the predecessor had built is
// counted as rebuilt. See docs/incremental_updates.md.
#ifndef KBIPLEX_UPDATE_INCREMENTAL_H_
#define KBIPLEX_UPDATE_INCREMENTAL_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "api/prepared_graph.h"
#include "graph/bipartite_graph.h"
#include "graph/components.h"
#include "update/update_batch.h"

namespace kbiplex {
namespace update {

/// Per-apply policy knobs.
struct UpdateOptions {
  /// Staleness threshold: when the normalized delta exceeds this fraction
  /// of the predecessor's edge count, artifact patching is skipped and
  /// the new epoch rebuilds from scratch (counted in
  /// UpdateLineage::full_rebuilds). The default tolerates a 10% drift —
  /// past that, patched permutations and stale bounds stop paying for
  /// themselves.
  double max_delta_fraction = 0.10;

  /// Rebuild unconditionally, as if the threshold were exceeded.
  bool force_rebuild = false;
};

/// Outcome of one ApplyUpdates call.
struct UpdateResult {
  /// The new epoch (null on error). The predecessor is untouched; holders
  /// of its shared_ptr keep a consistent snapshot until they release it.
  std::shared_ptr<const PreparedGraph> prepared;
  size_t edges_inserted = 0;  // real inserts applied
  size_t edges_deleted = 0;   // real deletes applied
  size_t noop_inserts = 0;    // dropped: edge already present
  size_t noop_deletes = 0;    // dropped: edge not present
  bool rebuilt = false;       // the apply took the full-rebuild path
  double seconds = 0;         // wall time of this apply
  std::string error;          // non-empty iff the apply failed

  bool ok() const { return error.empty(); }
};

/// Incremental connected-component relabeling: the labeling of
/// `new_graph` (== the graph `old` labels plus `insert` minus `erase`,
/// both sorted by (left, right)) computed from `old` in O(|V| + delta +
/// |dirty region|) instead of a full O(|V| + |E|) BFS. Inserts merge old
/// components through a union-find; deletes mark every merged component
/// containing a deleted endpoint dirty, and only dirty vertices are
/// re-BFSed on the new graph — a new-graph edge never joins a dirty
/// vertex to a clean one (old edges share an old component, inserted
/// edges were unioned), so the BFS stays inside the dirty region. The
/// result renumbers components by first appearance in the
/// left-scan-then-right-scan order, reproducing LabelConnectedComponents'
/// numbering exactly. Exposed for the fuzz tests.
ComponentLabeling IncrementalRelabel(
    const BipartiteGraph& new_graph, const ComponentLabeling& old,
    const std::vector<BipartiteGraph::Edge>& insert,
    const std::vector<BipartiteGraph::Edge>& erase);

}  // namespace update
}  // namespace kbiplex

#endif  // KBIPLEX_UPDATE_INCREMENTAL_H_
