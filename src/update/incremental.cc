#include "update/incremental.h"

#include <algorithm>
#include <utility>

#include "util/timer.h"

namespace kbiplex {
namespace update {
namespace {

using Edge = BipartiteGraph::Edge;

/// Sorted, duplicate-free endpoint ids of one side of a delta.
std::vector<VertexId> TouchedVertices(const std::vector<Edge>& insert,
                                      const std::vector<Edge>& erase,
                                      bool left_side) {
  std::vector<VertexId> out;
  out.reserve(insert.size() + erase.size());
  for (const Edge& e : insert) out.push_back(left_side ? e.first : e.second);
  for (const Edge& e : erase) out.push_back(left_side ? e.first : e.second);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

/// Largest degree on either side — a trivially sound upper bound on the
/// degeneracy, used to clamp the carried core bound after inserts.
size_t MaxDegree(const BipartiteGraph& g) {
  size_t m = 0;
  for (VertexId v = 0; v < g.NumLeft(); ++v) {
    m = std::max(m, g.LeftDegree(v));
  }
  for (VertexId u = 0; u < g.NumRight(); ++u) {
    m = std::max(m, g.RightDegree(u));
  }
  return m;
}

}  // namespace

ComponentLabeling IncrementalRelabel(const BipartiteGraph& new_graph,
                                     const ComponentLabeling& old,
                                     const std::vector<Edge>& insert,
                                     const std::vector<Edge>& erase) {
  const size_t nl = new_graph.NumLeft();
  const size_t nr = new_graph.NumRight();
  ComponentLabeling out;
  out.left.assign(nl, -1);
  out.right.assign(nr, -1);
  if (old.num_components == 0) return out;  // empty vertex sets

  // Union-find over the old component ids; every inserted edge merges the
  // two old components of its endpoints.
  std::vector<int> parent(old.num_components);
  for (int i = 0; i < old.num_components; ++i) parent[i] = i;
  const auto find = [&parent](int x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];  // path halving
      x = parent[x];
    }
    return x;
  };
  for (const Edge& e : insert) {
    const int a = find(old.left[e.first]);
    const int b = find(old.right[e.second]);
    if (a != b) parent[std::max(a, b)] = std::min(a, b);
  }

  // Deletes may split a component; mark the merged root of every deleted
  // endpoint dirty. Clean vertices keep their merged root as a
  // provisional label; dirty vertices are relabeled by BFS on the new
  // graph. The BFS cannot reach a clean vertex: a surviving old edge
  // keeps both endpoints in one old component (same merged root, same
  // dirtiness), and an inserted edge was just unioned.
  std::vector<char> dirty(old.num_components, 0);
  for (const Edge& e : erase) {
    dirty[find(old.left[e.first])] = 1;
    dirty[find(old.right[e.second])] = 1;
  }
  for (VertexId l = 0; l < nl; ++l) {
    const int root = find(old.left[l]);
    if (dirty[root] == 0) out.left[l] = root;
  }
  for (VertexId r = 0; r < nr; ++r) {
    const int root = find(old.right[r]);
    if (dirty[root] == 0) out.right[r] = root;
  }
  int next_label = old.num_components;  // provisional ids above old roots
  std::vector<std::pair<Side, VertexId>> frontier;
  const auto bfs_from = [&](Side side, VertexId seed) {
    const int comp = next_label++;
    (side == Side::kLeft ? out.left : out.right)[seed] = comp;
    frontier.assign(1, {side, seed});
    while (!frontier.empty()) {
      auto [s, v] = frontier.back();
      frontier.pop_back();
      for (VertexId u : new_graph.Neighbors(s, v)) {
        std::vector<int>& marks = s == Side::kLeft ? out.right : out.left;
        if (marks[u] != -1) continue;
        marks[u] = comp;
        frontier.emplace_back(Opposite(s), u);
      }
    }
  };
  for (VertexId l = 0; l < nl; ++l) {
    if (out.left[l] == -1) bfs_from(Side::kLeft, l);
  }
  for (VertexId r = 0; r < nr; ++r) {
    if (out.right[r] == -1) bfs_from(Side::kRight, r);
  }

  // Canonical renumber: first appearance in the left-then-right scan is
  // the order LabelConnectedComponents seeds its BFS, so the final
  // numbering matches a from-scratch labeling exactly.
  std::vector<int> canon(next_label, -1);
  for (VertexId l = 0; l < nl; ++l) {
    int& c = canon[out.left[l]];
    if (c < 0) c = out.num_components++;
    out.left[l] = c;
  }
  for (VertexId r = 0; r < nr; ++r) {
    int& c = canon[out.right[r]];
    if (c < 0) c = out.num_components++;
    out.right[r] = c;
  }
  return out;
}

/// Friend of PreparedGraph: builds successor epochs through the private
/// constructor, stamping the lineage and pre-populating the carried
/// artifacts via their call_once flags before the instance is published.
struct EpochBuilder {
  static UpdateResult Apply(const PreparedGraph& old, const UpdateBatch& batch,
                            const UpdateOptions& options) {
    WallTimer timer;
    UpdateResult out;
    if (old.borrowed()) {
      out.error = "cannot update a borrowed graph";
      return out;
    }
    NormalizedDelta delta;
    if (std::string err = batch.Normalize(old.graph(), &delta);
        !err.empty()) {
      out.error = err;
      return out;
    }
    out.edges_inserted = delta.insert.size();
    out.edges_deleted = delta.erase.size();
    out.noop_inserts = delta.noop_inserts;
    out.noop_deletes = delta.noop_deletes;

    UpdateLineage lineage = old.lineage_;
    lineage.epoch += 1;
    lineage.updates_applied += 1;
    lineage.edges_inserted += delta.insert.size();
    lineage.edges_deleted += delta.erase.size();

    const double fraction =
        static_cast<double>(delta.size()) /
        static_cast<double>(std::max<size_t>(1, old.graph().NumEdges()));
    const bool rebuild =
        options.force_rebuild || fraction > options.max_delta_fraction;

    std::shared_ptr<PreparedGraph> next(new PreparedGraph(
        old.graph().WithEdgeDelta(delta.insert, delta.erase), old.options_));

    const bool old_exec = old.exec_built_.load(std::memory_order_acquire);
    const bool old_components =
        old.components_built_.load(std::memory_order_acquire);
    const bool old_core =
        old.core_bound_built_.load(std::memory_order_acquire);

    if (rebuild) {
      // Past the staleness threshold: every artifact the predecessor had
      // built is invalidated and rebuilds from scratch (lazily, exactly
      // like a fresh Prepare).
      lineage.full_rebuilds += 1;
      lineage.artifacts_rebuilt += (old_exec ? 1 : 0) +
                                   (old_components ? 1 : 0) +
                                   (old_core ? 1 : 0);
      out.rebuilt = true;
    } else {
      // The delta in execution-graph ids: identical to the input-space
      // delta unless the execution graph is renumbered.
      std::vector<Edge> exec_ins = delta.insert;
      std::vector<Edge> exec_era = delta.erase;
      if (old_exec && old.options_.renumber) {
        const RenumberedGraph& ren = old.renumbering_;
        for (Edge& e : exec_ins) {
          e = {ren.old_to_new_left[e.first], ren.old_to_new_right[e.second]};
        }
        for (Edge& e : exec_era) {
          e = {ren.old_to_new_left[e.first], ren.old_to_new_right[e.second]};
        }
        std::sort(exec_ins.begin(), exec_ins.end());
        std::sort(exec_era.begin(), exec_era.end());
      }

      if (old_exec) {
        PatchExecutionGraph(old, *next, exec_ins, exec_era);
        lineage.artifacts_incremental += 1;
      }
      if (old_components) {
        std::call_once(next->components_once_, [&] {
          const BipartiteGraph& g = next->ExecutionGraph();
          WallTimer t;
          next->components_ =
              IncrementalRelabel(g, old.components_, exec_ins, exec_era);
          next->counters_.Count(&PrepareArtifactStats::component_builds,
                                t.ElapsedSeconds());
          next->components_built_.store(true, std::memory_order_release);
        });
        lineage.artifacts_incremental += 1;
      }
      if (old_core) {
        // Soundness, not exactness: the short-circuit only needs an upper
        // bound on the degeneracy. Deletes never raise it, each insert
        // raises it by at most one, and it never exceeds the maximum
        // degree — so the carried bound stays a valid upper bound and an
        // exact one returns at the next full rebuild.
        std::call_once(next->core_bound_once_, [&] {
          size_t bound = old.max_uniform_core_ + delta.insert.size();
          if (!delta.insert.empty()) {
            bound = std::min(bound, MaxDegree(next->ExecutionGraph()));
          }
          next->max_uniform_core_ = bound;
          next->core_bound_built_.store(true, std::memory_order_release);
        });
        lineage.artifacts_incremental += 1;
      }
    }

    out.seconds = timer.ElapsedSeconds();
    lineage.apply_seconds += out.seconds;
    next->lineage_ = lineage;
    out.prepared = std::move(next);
    return out;
  }

 private:
  /// Pre-populates the successor's execution graph: the degeneracy
  /// permutation is reused (vertex sets are fixed across updates) with
  /// the renumbered CSR spliced in place, and the adjacency index — when
  /// the policy attaches one — is patched row-wise from the
  /// predecessor's. `exec_ins` / `exec_era` are the delta in execution
  /// ids, sorted by (left, right).
  static void PatchExecutionGraph(const PreparedGraph& old, PreparedGraph& next,
                                  const std::vector<Edge>& exec_ins,
                                  const std::vector<Edge>& exec_era) {
    std::call_once(next.exec_once_, [&] {
      WallTimer t;
      BipartiteGraph* target = next.owned_.get();
      if (next.options_.renumber) {
        const RenumberedGraph& ren = old.renumbering_;
        next.renumbering_.left_to_old = ren.left_to_old;
        next.renumbering_.right_to_old = ren.right_to_old;
        next.renumbering_.old_to_new_left = ren.old_to_new_left;
        next.renumbering_.old_to_new_right = ren.old_to_new_right;
        next.renumbering_.graph = ren.graph.WithEdgeDelta(exec_ins, exec_era);
        target = &next.renumbering_.graph;
      }
      // Re-evaluate the attach policy against the new edge count (kAuto
      // can cross its threshold in either direction across an update).
      bool attach = false;
      switch (next.options_.adjacency_index) {
        case AdjacencyAccelMode::kOff:
          break;
        case AdjacencyAccelMode::kAuto:
          attach = next.graph_->NumEdges() >= kAutoIndexMinEdges;
          break;
        case AdjacencyAccelMode::kForce:
          attach = true;
          break;
      }
      if (attach && target != nullptr) {
        const AdjacencyIndex* prev_index =
            old.exec_graph_->adjacency_index();
        if (prev_index != nullptr) {
          target->AttachAdjacencyIndex(std::make_shared<const AdjacencyIndex>(
              *target, *prev_index,
              TouchedVertices(exec_ins, exec_era, /*left_side=*/true),
              TouchedVertices(exec_ins, exec_era, /*left_side=*/false)));
        } else {
          target->BuildAdjacencyIndex(next.options_.adjacency_min_degree,
                                      next.options_.accel_budget_bytes);
        }
        next.counters_.RecordAdjacency(*target->adjacency_index());
      }
      next.exec_graph_ = target != nullptr ? target : next.graph_;
      next.counters_.Count(&PrepareArtifactStats::execution_graph_builds,
                           t.ElapsedSeconds());
      next.exec_built_.store(true, std::memory_order_release);
    });
  }
};

}  // namespace update

update::UpdateResult PreparedGraph::ApplyUpdates(
    const update::UpdateBatch& batch,
    const update::UpdateOptions& options) const {
  return update::EpochBuilder::Apply(*this, batch, options);
}

}  // namespace kbiplex
