#include "core/enum_almost_sat.h"

#include <algorithm>
#include <cassert>

#include "util/subset_enum.h"

namespace kbiplex {
namespace {

/// All state of one EnumAlmostSat invocation. A is the anchored side (the
/// side of v), B the opposite side. Scratch vectors live in the (possibly
/// caller-owned) workspace so repeated invocations reuse their capacity.
class AlmostSatEnumerator {
 public:
  AlmostSatEnumerator(const BipartiteGraph& g, const Biplex& h, Side v_side,
                      VertexId v, KPair k, const EnumAlmostSatOptions& opts,
                      const LocalSolutionCallback& cb,
                      EnumAlmostSatStats* stats)
      : g_(g),
        v_side_(v_side),
        v_(v),
        ka_(static_cast<size_t>(k.ForSide(v_side))),
        kb_(static_cast<size_t>(k.ForSide(Opposite(v_side)))),
        opts_(opts),
        cb_(cb),
        stats_(stats),
        a_(h.SideSet(v_side)),
        b_(h.SideSet(Opposite(v_side))),
        // Resolve the acceleration source once: an explicitly supplied
        // index wins, else the graph's attached one (may be null).
        accel_(opts.adjacency != nullptr ? opts.adjacency
                                         : g.adjacency_index()),
        ws_(opts.workspace != nullptr ? *opts.workspace : local_ws_) {}

  /// Runs the enumeration; false iff the callback stopped it.
  bool Run() {
    Prepare();
    bool go = RunSubsets();
    if (stats_ != nullptr) stats_->adjacency_tests += adj_tests_;
    return go;
  }

 private:
  /// Edge test between A-side vertex `a` and B-side vertex `u`, through
  /// the bitset fast path when a row is available.
  bool Adjacent(VertexId a, VertexId u) {
    ++adj_tests_;
    return AcceleratedIsAdjacent(accel_, g_, v_side_, a, u);
  }

  bool RunSubsets() {
    // Enumerate B'' = B''_1 ∪ B''_2 with |B''| <= k (refinement R1.0); under
    // R2.0 additionally require |B''| = k or B''_1 = B1 (Lemma 4.2).
    for (size_t s2 = 0; s2 <= std::min(ka_, ws_.b2.size()); ++s2) {
      for (size_t s1 = 0; s1 + s2 <= ka_ && s1 <= ws_.b1.size(); ++s1) {
        if (opts_.r_variant == RRefinement::kR20 && s1 + s2 < ka_ &&
            s1 < ws_.b1.size()) {
          continue;  // pruned by Lemma 4.2
        }
        bool go = ForEachCombination(
            ws_.b1.size(), s1, [&](const std::vector<size_t>& c1) {
              return ForEachCombination(
                  ws_.b2.size(), s2, [&](const std::vector<size_t>& c2) {
                    return ProcessBSubset(c1, c2);
                  });
            });
        if (!go) return false;
      }
    }
    return true;
  }

  /// Partitions B into B_keep / B1 / B2 and precomputes disconnection
  /// counters (the O(|A|·|B|) preprocessing of Algorithm 3, line 1).
  void Prepare() {
    ws_.b_keep.clear();
    ws_.b1.clear();
    ws_.b2.clear();
    ws_.excluded_a_idx.clear();
    ws_.disc_a_of_b.resize(b_.size());
    ws_.v_adj_b.resize(b_.size());
    for (size_t i = 0; i < b_.size(); ++i) {
      const VertexId u = b_[i];
      ws_.disc_a_of_b[i] =
          a_.size() -
          AcceleratedConnCount(accel_, g_, Opposite(v_side_), u, a_);
      assert(ws_.disc_a_of_b[i] <= kb_);  // (A, B) is a k-biplex
      ws_.v_adj_b[i] = Adjacent(v_, u);
      if (ws_.v_adj_b[i]) {
        ws_.b_keep.push_back(u);
      } else if (ws_.disc_a_of_b[i] <= kb_ - 1) {
        ws_.b1.push_back(i);  // store index into B
      } else {
        ws_.b2.push_back(i);
      }
    }
    ws_.disc_keep_of_a.resize(a_.size());
    for (size_t j = 0; j < a_.size(); ++j) {
      ws_.disc_keep_of_a[j] =
          ws_.b_keep.size() -
          AcceleratedConnCount(accel_, g_, v_side_, a_[j],
                               ws_.b_keep);
    }
    if (opts_.excluded_anchored != nullptr &&
        opts_.excluded_anchored->size() != 0) {
      for (size_t j = 0; j < a_.size(); ++j) {
        if (opts_.excluded_anchored->Test(a_[j])) {
          ws_.excluded_a_idx.push_back(j);
        }
      }
    }
  }

  /// Handles one B'' choice; returns false iff the callback stopped.
  bool ProcessBSubset(const std::vector<size_t>& c1,
                      const std::vector<size_t>& c2) {
    if (stats_ != nullptr) ++stats_->b_subsets;
    if (opts_.deadline != nullptr && (++deadline_poll_ & 0x3fu) == 0 &&
        opts_.deadline->Expired()) {
      return false;  // abort: the engine re-checks its own budget
    }
    // Materialize B'' (ids) and B''_2 (ids), both sorted.
    ws_.bpp.clear();
    ws_.bpp2.clear();
    for (size_t i : c1) ws_.bpp.push_back(b_[ws_.b1[i]]);
    for (size_t i : c2) {
      ws_.bpp.push_back(b_[ws_.b2[i]]);
      ws_.bpp2.push_back(b_[ws_.b2[i]]);
    }
    std::sort(ws_.bpp.begin(), ws_.bpp.end());
    // B' = B_keep ∪ B''.
    ws_.bp.clear();
    std::set_union(ws_.b_keep.begin(), ws_.b_keep.end(), ws_.bpp.begin(),
                   ws_.bpp.end(), std::back_inserter(ws_.bp));
    if (ws_.bp.size() < opts_.min_b_size) return true;  // Section 5 prune

    // A_remo: members of A disconnected from at least one vertex of B''_2
    // (indices into A). Removal sets are bounded by |B''_2| (Lemma 4.3).
    ws_.a_remo.clear();
    if (!ws_.bpp2.empty()) {
      for (size_t j = 0; j < a_.size(); ++j) {
        if (AcceleratedConnCount(accel_, g_, v_side_, a_[j],
                                 ws_.bpp2) < ws_.bpp2.size()) {
          ws_.a_remo.push_back(j);
        }
      }
    }
    // Exclusion-driven required removals: every excluded A-member must be
    // removed, or all local solutions of this B'' retain it and would be
    // pruned by the traversal's exclusion strategy anyway.
    ws_.req.clear();
    if (!ws_.excluded_a_idx.empty()) {
      for (size_t j : ws_.excluded_a_idx) {
        if (!std::binary_search(ws_.a_remo.begin(), ws_.a_remo.end(), j)) {
          return true;  // not removable within this B'': skip it entirely
        }
        ws_.req.push_back(j);
      }
      if (ws_.req.size() > ws_.bpp2.size()) return true;  // removal budget
    }
    ws_.rest.clear();
    std::set_difference(ws_.a_remo.begin(), ws_.a_remo.end(),
                        ws_.req.begin(), ws_.req.end(),
                        std::back_inserter(ws_.rest));
    BoundedSubsetEnumerator en(ws_.rest.size(),
                               ws_.bpp2.size() - ws_.req.size());
    while (en.Next()) {
      if (stats_ != nullptr) ++stats_->a_subsets;
      // Removal set as indices into A: forced removals plus the chosen
      // subset of the remaining eligible members.
      ws_.abar.clear();
      for (size_t pos : en.current()) ws_.abar.push_back(ws_.rest[pos]);
      if (!ws_.req.empty()) {
        ws_.merged.clear();
        std::merge(ws_.abar.begin(), ws_.abar.end(), ws_.req.begin(),
                   ws_.req.end(), std::back_inserter(ws_.merged));
        std::swap(ws_.abar, ws_.merged);
      }
      if (!CandidateIsLocalSolution()) continue;
      if (opts_.l_variant == LRefinement::kL20) en.PruneSupersetsOfCurrent();
      if (stats_ != nullptr) ++stats_->local_solutions;
      if (!EmitCandidate()) return false;
    }
    return true;
  }

  /// δ̄(u, A' ∪ {v}) for B-side vertex at index `i` of B, under the current
  /// removal set ws_.abar.
  size_t DiscInCandidateA(size_t i) {
    size_t removed = 0;
    for (size_t j : ws_.abar) {
      if (!Adjacent(a_[j], b_[i])) ++removed;
    }
    return ws_.disc_a_of_b[i] - removed + (ws_.v_adj_b[i] ? 0 : 1);
  }

  /// Validity + local maximality of (A \ Ā ∪ {v}, B') per Section 4.
  bool CandidateIsLocalSolution() {
    // (a) k-biplex validity: every u ∈ B''_2 needs at least one of its
    // disconnected A-members removed (its count is k+1 otherwise).
    for (VertexId u : ws_.bpp2) {
      bool covered = false;
      for (size_t j : ws_.abar) {
        if (!Adjacent(a_[j], u)) {
          covered = true;
          break;
        }
      }
      if (!covered) return false;
    }
    // (b) A-side local maximality: no removed vertex may be addable back.
    for (size_t j : ws_.abar) {
      size_t disc_w = ws_.disc_keep_of_a[j];
      const VertexId w = a_[j];
      for (VertexId u : ws_.bpp) {
        if (!Adjacent(w, u)) ++disc_w;
      }
      if (disc_w > ka_) continue;  // w's own budget forbids re-adding it
      bool addable = true;
      for (VertexId u : ws_.bp) {
        if (Adjacent(w, u)) continue;
        const size_t i = IndexInB(u);
        if (DiscInCandidateA(i) + 1 > kb_) {
          addable = false;
          break;
        }
      }
      if (addable) return false;
    }
    // (c) B-side local maximality: u ∈ B_enum \ B'' is addable iff v still
    // has budget (|B''| < k, since v disconnects all of B'' and u) and u's
    // own count fits; members of A' can never block such a u, because
    // δ̄(a, B') = k together with a disconnected u ∈ B \ B' would force
    // δ̄(a, B) > k, contradicting that (A, B) is a k-biplex.
    if (ws_.bpp.size() < ka_) {
      for (const auto& bucket : {ws_.b1, ws_.b2}) {
        for (size_t i : bucket) {
          if (sorted::Contains(ws_.bpp, b_[i])) continue;
          if (DiscInCandidateA(i) <= kb_) return false;  // u addable
        }
      }
    }
    return true;
  }

  /// Builds the local-solution Biplex (in the workspace buffer) and
  /// invokes the callback. The callback must copy if it keeps the value.
  bool EmitCandidate() {
    Biplex& loc = ws_.loc;
    loc.left.clear();
    loc.right.clear();
    std::vector<VertexId>& anchored = loc.MutableSideSet(v_side_);
    anchored.reserve(a_.size() - ws_.abar.size() + 1);
    size_t next_removed = 0;
    for (size_t j = 0; j < a_.size(); ++j) {
      if (next_removed < ws_.abar.size() && ws_.abar[next_removed] == j) {
        ++next_removed;
        continue;
      }
      anchored.push_back(a_[j]);
    }
    sorted::Insert(&anchored, v_);
    std::vector<VertexId>& other = loc.MutableSideSet(Opposite(v_side_));
    other.assign(ws_.bp.begin(), ws_.bp.end());
    return cb_(loc);
  }

  size_t IndexInB(VertexId u) const {
    return static_cast<size_t>(
        std::lower_bound(b_.begin(), b_.end(), u) - b_.begin());
  }

  const BipartiteGraph& g_;
  const Side v_side_;
  const VertexId v_;
  const size_t ka_;  // budget of the anchored side (v's own side)
  const size_t kb_;  // budget of the opposite side
  const EnumAlmostSatOptions& opts_;
  const LocalSolutionCallback& cb_;
  EnumAlmostSatStats* stats_;

  const std::vector<VertexId>& a_;
  const std::vector<VertexId>& b_;

  const AdjacencyIndex* accel_;  // resolved acceleration source; may be null
  EnumAlmostSatWorkspace local_ws_;  // fallback when no workspace is given
  EnumAlmostSatWorkspace& ws_;

  uint32_t deadline_poll_ = 0;
  uint64_t adj_tests_ = 0;
};

}  // namespace

bool EnumAlmostSat(const BipartiteGraph& g, const Biplex& h, Side v_side,
                   VertexId v, KPair k, const EnumAlmostSatOptions& opts,
                   const LocalSolutionCallback& cb,
                   EnumAlmostSatStats* stats) {
  assert(k.left >= 1 && k.right >= 1);
  assert(!sorted::Contains(h.SideSet(v_side), v));
  AlmostSatEnumerator e(g, h, v_side, v, k, opts, cb, stats);
  return e.Run();
}

}  // namespace kbiplex
