#include "core/enum_almost_sat.h"

#include <algorithm>
#include <cassert>

#include "util/subset_enum.h"

namespace kbiplex {
namespace {

/// Edge test between `a` on side `a_side` and `u` on the opposite side.
bool Adjacent(const BipartiteGraph& g, Side a_side, VertexId a, VertexId u) {
  return a_side == Side::kLeft ? g.HasEdge(a, u) : g.HasEdge(u, a);
}

/// All state of one EnumAlmostSat invocation. A is the anchored side (the
/// side of v), B the opposite side.
class AlmostSatEnumerator {
 public:
  AlmostSatEnumerator(const BipartiteGraph& g, const Biplex& h, Side v_side,
                      VertexId v, KPair k, const EnumAlmostSatOptions& opts,
                      const LocalSolutionCallback& cb,
                      EnumAlmostSatStats* stats)
      : g_(g),
        v_side_(v_side),
        v_(v),
        ka_(static_cast<size_t>(k.ForSide(v_side))),
        kb_(static_cast<size_t>(k.ForSide(Opposite(v_side)))),
        opts_(opts),
        cb_(cb),
        stats_(stats),
        a_(h.SideSet(v_side)),
        b_(h.SideSet(Opposite(v_side))) {}

  /// Runs the enumeration; false iff the callback stopped it.
  bool Run() {
    Prepare();
    // Enumerate B'' = B''_1 ∪ B''_2 with |B''| <= k (refinement R1.0); under
    // R2.0 additionally require |B''| = k or B''_1 = B1 (Lemma 4.2).
    for (size_t s2 = 0; s2 <= std::min(ka_, b2_.size()); ++s2) {
      for (size_t s1 = 0; s1 + s2 <= ka_ && s1 <= b1_.size(); ++s1) {
        if (opts_.r_variant == RRefinement::kR20 && s1 + s2 < ka_ &&
            s1 < b1_.size()) {
          continue;  // pruned by Lemma 4.2
        }
        bool go = ForEachCombination(
            b1_.size(), s1, [&](const std::vector<size_t>& c1) {
              return ForEachCombination(
                  b2_.size(), s2, [&](const std::vector<size_t>& c2) {
                    return ProcessBSubset(c1, c2);
                  });
            });
        if (!go) return false;
      }
    }
    return true;
  }

 private:
  /// Partitions B into B_keep / B1 / B2 and precomputes disconnection
  /// counters (the O(|A|·|B|) preprocessing of Algorithm 3, line 1).
  void Prepare() {
    disc_a_of_b_.resize(b_.size());
    v_adj_b_.resize(b_.size());
    for (size_t i = 0; i < b_.size(); ++i) {
      const VertexId u = b_[i];
      disc_a_of_b_[i] = a_.size() - g_.ConnCount(Opposite(v_side_), u, a_);
      assert(disc_a_of_b_[i] <= kb_);  // (A, B) is a k-biplex
      v_adj_b_[i] = Adjacent(g_, v_side_, v_, u);
      if (v_adj_b_[i]) {
        b_keep_.push_back(u);
      } else if (disc_a_of_b_[i] <= kb_ - 1) {
        b1_.push_back(i);  // store index into B
      } else {
        b2_.push_back(i);
      }
    }
    disc_keep_of_a_.resize(a_.size());
    for (size_t j = 0; j < a_.size(); ++j) {
      disc_keep_of_a_[j] =
          b_keep_.size() - g_.ConnCount(v_side_, a_[j], b_keep_);
    }
    if (opts_.excluded_anchored != nullptr &&
        opts_.excluded_anchored->size() != 0) {
      for (size_t j = 0; j < a_.size(); ++j) {
        if (opts_.excluded_anchored->Test(a_[j])) {
          excluded_a_idx_.push_back(j);
        }
      }
    }
  }

  /// Number of vertices in `a_indices` (indices into A) disconnected from
  /// right-role vertex `u`.
  size_t DiscWithin(const std::vector<size_t>& a_indices, VertexId u) const {
    size_t n = 0;
    for (size_t j : a_indices) {
      if (!Adjacent(g_, v_side_, a_[j], u)) ++n;
    }
    return n;
  }

  /// Handles one B'' choice; returns false iff the callback stopped.
  bool ProcessBSubset(const std::vector<size_t>& c1,
                      const std::vector<size_t>& c2) {
    if (stats_ != nullptr) ++stats_->b_subsets;
    if (opts_.deadline != nullptr && (++deadline_poll_ & 0x3fu) == 0 &&
        opts_.deadline->Expired()) {
      return false;  // abort: the engine re-checks its own budget
    }
    // Materialize B'' (ids) and B''_2 (ids), both sorted.
    bpp_.clear();
    bpp2_.clear();
    for (size_t i : c1) bpp_.push_back(b_[b1_[i]]);
    for (size_t i : c2) {
      bpp_.push_back(b_[b2_[i]]);
      bpp2_.push_back(b_[b2_[i]]);
    }
    std::sort(bpp_.begin(), bpp_.end());
    // B' = B_keep ∪ B''.
    bp_ = sorted::Union(b_keep_, bpp_);
    if (bp_.size() < opts_.min_b_size) return true;  // Section 5 prune

    // A_remo: members of A disconnected from at least one vertex of B''_2
    // (indices into A). Removal sets are bounded by |B''_2| (Lemma 4.3).
    a_remo_.clear();
    if (!bpp2_.empty()) {
      for (size_t j = 0; j < a_.size(); ++j) {
        if (g_.ConnCount(v_side_, a_[j], bpp2_) < bpp2_.size()) {
          a_remo_.push_back(j);
        }
      }
    }
    // Exclusion-driven required removals: every excluded A-member must be
    // removed, or all local solutions of this B'' retain it and would be
    // pruned by the traversal's exclusion strategy anyway.
    req_.clear();
    if (!excluded_a_idx_.empty()) {
      for (size_t j : excluded_a_idx_) {
        if (!std::binary_search(a_remo_.begin(), a_remo_.end(), j)) {
          return true;  // not removable within this B'': skip it entirely
        }
        req_.push_back(j);
      }
      if (req_.size() > bpp2_.size()) return true;  // removal budget
    }
    rest_.clear();
    std::set_difference(a_remo_.begin(), a_remo_.end(), req_.begin(),
                        req_.end(), std::back_inserter(rest_));
    BoundedSubsetEnumerator en(rest_.size(), bpp2_.size() - req_.size());
    while (en.Next()) {
      if (stats_ != nullptr) ++stats_->a_subsets;
      // Removal set as indices into A: forced removals plus the chosen
      // subset of the remaining eligible members.
      abar_.clear();
      for (size_t pos : en.current()) abar_.push_back(rest_[pos]);
      if (!req_.empty()) {
        std::vector<size_t> merged;
        merged.reserve(abar_.size() + req_.size());
        std::merge(abar_.begin(), abar_.end(), req_.begin(), req_.end(),
                   std::back_inserter(merged));
        abar_ = std::move(merged);
      }
      if (!CandidateIsLocalSolution()) continue;
      if (opts_.l_variant == LRefinement::kL20) en.PruneSupersetsOfCurrent();
      if (stats_ != nullptr) ++stats_->local_solutions;
      if (!EmitCandidate()) return false;
    }
    return true;
  }

  /// δ̄(u, A' ∪ {v}) for B-side vertex at index `i` of B, under the current
  /// removal set abar_.
  size_t DiscInCandidateA(size_t i) const {
    size_t removed = 0;
    for (size_t j : abar_) {
      if (!Adjacent(g_, v_side_, a_[j], b_[i])) ++removed;
    }
    return disc_a_of_b_[i] - removed + (v_adj_b_[i] ? 0 : 1);
  }

  /// Validity + local maximality of (A \ Ā ∪ {v}, B') per Section 4.
  bool CandidateIsLocalSolution() const {
    // (a) k-biplex validity: every u ∈ B''_2 needs at least one of its
    // disconnected A-members removed (its count is k+1 otherwise).
    for (VertexId u : bpp2_) {
      bool covered = false;
      for (size_t j : abar_) {
        if (!Adjacent(g_, v_side_, a_[j], u)) {
          covered = true;
          break;
        }
      }
      if (!covered) return false;
    }
    // (b) A-side local maximality: no removed vertex may be addable back.
    for (size_t j : abar_) {
      size_t disc_w = disc_keep_of_a_[j];
      const VertexId w = a_[j];
      for (VertexId u : bpp_) {
        if (!Adjacent(g_, v_side_, w, u)) ++disc_w;
      }
      if (disc_w > ka_) continue;  // w's own budget forbids re-adding it
      bool addable = true;
      for (VertexId u : bp_) {
        if (Adjacent(g_, v_side_, w, u)) continue;
        const size_t i = IndexInB(u);
        if (DiscInCandidateA(i) + 1 > kb_) {
          addable = false;
          break;
        }
      }
      if (addable) return false;
    }
    // (c) B-side local maximality: u ∈ B_enum \ B'' is addable iff v still
    // has budget (|B''| < k, since v disconnects all of B'' and u) and u's
    // own count fits; members of A' can never block such a u, because
    // δ̄(a, B') = k together with a disconnected u ∈ B \ B' would force
    // δ̄(a, B) > k, contradicting that (A, B) is a k-biplex.
    if (bpp_.size() < ka_) {
      for (const auto& bucket : {b1_, b2_}) {
        for (size_t i : bucket) {
          if (sorted::Contains(bpp_, b_[i])) continue;
          if (DiscInCandidateA(i) <= kb_) return false;  // u addable
        }
      }
    }
    return true;
  }

  /// Builds the local-solution Biplex and invokes the callback.
  bool EmitCandidate() {
    Biplex loc;
    std::vector<VertexId>& anchored = loc.MutableSideSet(v_side_);
    anchored.reserve(a_.size() - abar_.size() + 1);
    size_t next_removed = 0;
    for (size_t j = 0; j < a_.size(); ++j) {
      if (next_removed < abar_.size() && abar_[next_removed] == j) {
        ++next_removed;
        continue;
      }
      anchored.push_back(a_[j]);
    }
    sorted::Insert(&anchored, v_);
    loc.MutableSideSet(Opposite(v_side_)) = bp_;
    return cb_(loc);
  }

  size_t IndexInB(VertexId u) const {
    return static_cast<size_t>(
        std::lower_bound(b_.begin(), b_.end(), u) - b_.begin());
  }

  const BipartiteGraph& g_;
  const Side v_side_;
  const VertexId v_;
  const size_t ka_;  // budget of the anchored side (v's own side)
  const size_t kb_;  // budget of the opposite side
  const EnumAlmostSatOptions& opts_;
  const LocalSolutionCallback& cb_;
  EnumAlmostSatStats* stats_;

  const std::vector<VertexId>& a_;
  const std::vector<VertexId>& b_;

  // Precomputed per invocation.
  std::vector<size_t> disc_a_of_b_;   // δ̄(u, A), aligned with B
  std::vector<char> v_adj_b_;         // v adjacent to B[i]?
  std::vector<VertexId> b_keep_;      // ids
  std::vector<size_t> b1_, b2_;       // indices into B
  std::vector<size_t> disc_keep_of_a_;  // δ̄(a, B_keep), aligned with A

  // Per-B''-subset scratch.
  uint32_t deadline_poll_ = 0;
  std::vector<VertexId> bpp_, bpp2_, bp_;
  std::vector<size_t> a_remo_;  // indices into A
  std::vector<size_t> abar_;    // removal set, indices into A
  std::vector<size_t> excluded_a_idx_;  // excluded members of A (indices)
  std::vector<size_t> req_;     // forced removals (indices into A)
  std::vector<size_t> rest_;    // a_remo_ minus req_
};

}  // namespace

bool EnumAlmostSat(const BipartiteGraph& g, const Biplex& h, Side v_side,
                   VertexId v, KPair k, const EnumAlmostSatOptions& opts,
                   const LocalSolutionCallback& cb,
                   EnumAlmostSatStats* stats) {
  assert(k.left >= 1 && k.right >= 1);
  assert(!sorted::Contains(h.SideSet(v_side), v));
  AlmostSatEnumerator e(g, h, v_side, v, k, opts, cb, stats);
  return e.Run();
}

}  // namespace kbiplex
