// Deduplicating store of discovered solutions. Algorithms 1 & 2 insert
// every solution they reach and only recurse on first discovery; the store
// is the B-tree of the paper (index/btree), with an optional redundant
// hash-set backend that cross-validates the tree in tests.
#ifndef KBIPLEX_CORE_SOLUTION_STORE_H_
#define KBIPLEX_CORE_SOLUTION_STORE_H_

#include <functional>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/biplex.h"
#include "index/btree.h"

namespace kbiplex {

/// Which structure(s) back the store.
enum class StoreBackend {
  kBTree,    // the paper's choice
  kHashSet,  // flat hash set of encoded keys
  kBoth,     // both, with agreement asserted (testing)
};

/// Insert-only set of solutions keyed by their canonical encoding.
class SolutionStore {
 public:
  explicit SolutionStore(StoreBackend backend = StoreBackend::kBTree,
                         size_t btree_order = 64);

  /// Inserts the solution; returns true iff it was not present.
  bool Insert(const Biplex& b);

  /// True iff the solution is present.
  bool Contains(const Biplex& b) const;

  size_t Size() const;

  /// Visits solutions in canonical key order (B-tree backend) or
  /// unspecified order (hash backend).
  void ForEach(const std::function<void(const Biplex&)>& fn) const;

  /// Materializes all solutions.
  std::vector<Biplex> ToVector() const;

 private:
  StoreBackend backend_;
  BTreeSet tree_;
  std::unordered_set<std::string> hash_;
};

}  // namespace kbiplex

#endif  // KBIPLEX_CORE_SOLUTION_STORE_H_
