#include "core/itraversal.h"

#include <algorithm>
#include <cassert>
#include <memory>
#include <vector>

#include "baselines/inflation_enum.h"
#include "graph/adjacency_index.h"
#include "util/arena_pool.h"
#include "util/dynamic_bitset.h"
#include "util/timer.h"

namespace kbiplex {
namespace {

size_t SideIndex(Side s) { return s == Side::kLeft ? 0 : 1; }

}  // namespace

class TraversalEngine::Impl {
 public:
  Impl(const BipartiteGraph& g, const TraversalOptions& opts)
      : g_(g), opts_(opts), extender_(g, opts.k) {
    assert(opts.k.left >= 1 && opts.k.right >= 1);
    gen_mode_ = ComputeGenMode();
    if (opts_.shared_adjacency != nullptr) {
      accel_ = opts_.shared_adjacency;
    } else {
      InitAccel();
    }
    if (opts_.scratch != nullptr) {
      // Adopt (or install) the session's pooled frame arena and shared
      // EnumAlmostSat workspace so consecutive engines of one session
      // reuse each other's warmed-up buffers.
      auto* slot = dynamic_cast<FrameArenaSlot*>(
          opts_.scratch->engine_state.get());
      if (slot == nullptr) {
        auto fresh = std::make_unique<FrameArenaSlot>();
        slot = fresh.get();
        opts_.scratch->engine_state = std::move(fresh);
      }
      frame_pool_ = &slot->pool;
      local_ws_ = &opts_.scratch->workspace;
    }
  }

  void InitAccel() {
    switch (opts_.adjacency_accel) {
      case AdjacencyAccelMode::kOff:
        break;
      case AdjacencyAccelMode::kAuto:
        accel_ = g_.adjacency_index();
        if (accel_ == nullptr && g_.NumEdges() >= kAutoIndexMinEdges) {
          owned_accel_ = std::make_unique<AdjacencyIndex>(
              g_, AdjacencyIndex::kAutoThreshold, opts_.accel_budget_bytes);
          accel_ = owned_accel_.get();
        }
        break;
      case AdjacencyAccelMode::kForce:
        accel_ = g_.adjacency_index();
        if (accel_ == nullptr) {
          owned_accel_ = std::make_unique<AdjacencyIndex>(
              g_, AdjacencyIndex::kAutoThreshold, opts_.accel_budget_bytes);
          accel_ = owned_accel_.get();
        }
        break;
    }
  }

  Biplex InitialSolution() const {
    Biplex b;
    if (opts_.left_anchored) {
      // H0 = (L0, R): saturate the non-anchored side, then greedily extend
      // the anchored side to a maximal set (Section 3.2).
      const Side full = Opposite(opts_.anchored_side);
      std::vector<VertexId>& fullset = b.MutableSideSet(full);
      fullset.resize(g_.NumOnSide(full));
      for (size_t i = 0; i < fullset.size(); ++i) {
        fullset[i] = static_cast<VertexId>(i);
      }
      extender_.Extend(&b, opts_.anchored_side == Side::kLeft,
                       opts_.anchored_side == Side::kRight);
    } else {
      // bTraversal accepts any maximal k-biplex; extend the empty subgraph
      // deterministically.
      extender_.Extend(&b, true, true);
    }
    return b;
  }

  /// Step-1 candidate generation strategy; see ComputeGenMode.
  enum class GenMode : uint8_t {
    kScan,        // re-scan the candidate side(s) every frame
    kAnchored,    // incremental 2-hop lists with the theta - k prefilter
    kMembership,  // incremental lists, membership filtering only
  };

  /// True iff the theta-prefiltered 2-hop candidate generator is provably
  /// equivalent to the full-side scan for this configuration: the
  /// Section 5 almost-satisfying-graph prune must already discard every
  /// candidate with fewer than theta_other - k connections into the
  /// non-anchored member set (so skipping conn = 0 vertices — everything
  /// farther than two hops from H — changes nothing), and right-shrinking
  /// must hold so the pruned subtrees cannot contain surviving solutions.
  bool TwoHopApplies() const {
    if (opts_.candidate_gen == CandidateGenMode::kScan) return false;
    if (!opts_.left_anchored || !opts_.right_shrinking ||
        !opts_.prune_small) {
      return false;
    }
    const size_t theta_other = ThetaOpposite(opts_.anchored_side);
    const size_t k_side =
        static_cast<size_t>(opts_.k.ForSide(opts_.anchored_side));
    return theta_other > k_side;
  }

  /// Configurations outside the TwoHopApplies gate (bTraversal's two
  /// scanning side phases above all) still run the incremental generator,
  /// but with a pure membership filter (min_conn = 0): a frame's
  /// candidate list is its parent's list minus the members the link
  /// added, plus the members it removed — trivially the same vertex set
  /// the scan would visit, in the same order. The per-side connection
  /// counters are still maintained so ProcessCandidate reads |Γ(v) ∩ B|
  /// in O(1) instead of intersecting adjacency lists. Extending the
  /// theta prefilter to these configurations would need the paper's
  /// completeness argument for zero-connection candidates, which only
  /// covers the anchored gate.
  GenMode ComputeGenMode() const {
    if (opts_.candidate_gen == CandidateGenMode::kScan) return GenMode::kScan;
    if (TwoHopApplies()) return GenMode::kAnchored;
    // The exclusion strategy filters candidates against exclusion sets
    // that grow while a frame is active; the anchored generator handles
    // that at consumption time, but the membership fold keeps clear of
    // the interaction and leaves excluding configurations on the scan.
    if (opts_.exclusion) return GenMode::kScan;
    return GenMode::kMembership;
  }

  TraversalStats Run(const SolutionCallback& cb) {
    stats_ = TraversalStats();
    cb_ = &cb;
    store_ = std::make_unique<SolutionStore>(opts_.store_backend);
    stop_ = false;
    WallTimer timer;
    Deadline deadline(opts_.time_budget_seconds);
    deadline_ = &deadline;

    Biplex h0 = InitialSolution();
    if (gen_mode_ != GenMode::kScan) InitConnCounts(h0);
    store_->Insert(h0);
    ++stats_.solutions_found;
    std::vector<std::unique_ptr<Frame>> stack;
    stack.push_back(MakeFrame(std::move(h0), 0, nullptr));
    stats_.max_stack_depth = 1;

    size_t iter = 0;
    while (!stack.empty() && !stop_) {
      if ((++iter & 0xfu) == 0 &&
          (deadline.Expired() || Cancelled(opts_.cancel))) {
        stats_.completed = false;
        break;
      }
      Frame& f = *stack.back();
      if (!f.emitted_pre) {
        f.emitted_pre = true;
        if (!opts_.polynomial_delay_output || f.depth % 2 == 0) Emit(f.h);
        if (stop_) break;
      }
      if (f.batch_pos < f.batch.size()) {
        // Recurse into the next newly discovered solution.
        Biplex child = std::move(f.batch[f.batch_pos++]);
        const size_t depth = f.depth;
        stack.push_back(MakeFrame(std::move(child), depth + 1, &f));
        stats_.max_stack_depth =
            std::max(stats_.max_stack_depth, stack.size());
        continue;
      }
      if (f.batch_active) {
        // The branch of batch_v is complete: grow the exclusion set
        // (Section 3.5 / Berlowitz et al.'s strategy).
        f.batch_active = false;
        f.batch.clear();
        f.batch_pos = 0;
        if (opts_.exclusion) {
          f.excl[SideIndex(f.batch_side)].Set(f.batch_v);
        }
      }
      if (f.recurse && NextBatch(&f)) continue;
      if (opts_.polynomial_delay_output && f.depth % 2 == 1) Emit(f.h);
      if (!stop_) PopFrame(&stack);
    }
    if (!stack.empty() && stats_.completed) stats_.completed = false;
    stats_.seconds = timer.ElapsedSeconds();
    deadline_ = nullptr;
    return stats_;
  }

  bool ShouldExpand(const Biplex& h) const {
    // The Section 5 recursion gate of MakeFrame, from `h` alone: under
    // right-shrinking traversal every solution reachable below h keeps
    // its non-anchored side inside h's, so a too-small side is final.
    if (!opts_.prune_small || !opts_.right_shrinking) return true;
    const Side other = Opposite(opts_.anchored_side);
    const size_t theta_other = ThetaOpposite(opts_.anchored_side);
    return theta_other == 0 || h.SideSet(other).size() >= theta_other;
  }

  bool ExpandSolution(const Biplex& h, const Deadline* deadline,
                      const LinkCallback& on_link) {
    assert(!opts_.exclusion);  // path-dependent state cannot transfer
    stop_ = false;
    deadline_ = deadline;
    link_sink_ = &on_link;
    if (gen_mode_ != GenMode::kScan) InitConnCounts(h);
    std::unique_ptr<Frame> f = MakeFrame(h, /*depth=*/0, nullptr);
    if (f->recurse) {
      size_t iter = 0;
      while (!stop_ && NextBatch(f.get())) {
        // handle_local routed every link to the sink; nothing batches.
        f->batch.clear();
        f->batch_pos = 0;
        f->batch_active = false;
        if ((++iter & 0xfu) == 0 &&
            ((deadline_ != nullptr && deadline_->Expired()) ||
             Cancelled(opts_.cancel))) {
          stop_ = true;
          stats_.completed = false;
        }
      }
    }
    frame_pool_->Release(std::move(f));
    link_sink_ = nullptr;
    deadline_ = nullptr;
    return !stop_;
  }

  TraversalStats TakeExpandStats() {
    TraversalStats out = stats_;
    stats_ = TraversalStats();
    return out;
  }

 private:
  struct Frame {
    Biplex h;
    DynamicBitset excl[2];  // exclusion sets, [0]=left ids, [1]=right ids
    VertexId next_cand[2] = {0, 0};
    int side_phase = 0;  // index into the candidate-side sequence
    std::vector<Biplex> batch;
    size_t batch_pos = 0;
    bool batch_active = false;
    Side batch_side = Side::kLeft;
    VertexId batch_v = kInvalidVertex;
    size_t depth = 0;
    bool emitted_pre = false;
    bool recurse = true;
    // Lazily computed exclusion metadata: number of members of the
    // anchored side inherited as excluded. When it exceeds the anchored
    // budget, every local solution of every candidate would retain an
    // excluded vertex, so the whole frame is sterile.
    bool excl_scanned = false;
    size_t excl_members_anchored = 0;
    // Incremental candidate generator state, per candidate side: the
    // materialized (sorted) candidate lists, the member diffs against the
    // parent frame used to keep the engine's connection counters
    // incremental, and the parent link the lists are derived from.
    // `parent` outlives this frame (it sits below it on the DFS stack).
    const Frame* parent = nullptr;
    bool cands_ready[2] = {false, false};
    size_t cand_pos[2] = {0, 0};
    std::vector<VertexId> cands[2];
    std::vector<VertexId> added[2];    // this side set \ parent's
    std::vector<VertexId> removed[2];  // parent's side set \ this one's

    /// Restores logical emptiness while keeping buffer capacity; called
    /// by the frame arena on recycled frames.
    void Reset() {
      h.left.clear();
      h.right.clear();
      next_cand[0] = next_cand[1] = 0;
      side_phase = 0;
      batch.clear();
      batch_pos = 0;
      batch_active = false;
      batch_side = Side::kLeft;
      batch_v = kInvalidVertex;
      depth = 0;
      emitted_pre = false;
      recurse = true;
      excl_scanned = false;
      excl_members_anchored = 0;
      parent = nullptr;
      for (size_t i = 0; i < 2; ++i) {
        cands_ready[i] = false;
        cand_pos[i] = 0;
        cands[i].clear();
        added[i].clear();
        removed[i].clear();
      }
      // excl[] is reassigned by MakeFrame when the exclusion strategy is
      // on (copy-assignment reuses the word buffers) and never read when
      // it is off, so it needs no reset here.
    }
  };

  /// The frame arena as carried across engine lifetimes by a session's
  /// TraversalScratch (see core/traversal_scratch.h).
  struct FrameArenaSlot final : TraversalScratch::Slot {
    ArenaPool<Frame> pool;
  };

  std::unique_ptr<Frame> MakeFrame(Biplex h, size_t depth,
                                   const Frame* parent) {
    std::unique_ptr<Frame> fp = frame_pool_->Acquire();
    Frame& f = *fp;
    f.h = std::move(h);
    f.depth = depth;
    f.parent = parent;
    if (opts_.exclusion) {
      if (parent != nullptr) {
        f.excl[0] = parent->excl[0];
        f.excl[1] = parent->excl[1];
      } else {
        f.excl[0].Resize(g_.NumLeft());
        f.excl[0].Reset();
        f.excl[1].Resize(g_.NumRight());
        f.excl[1].Reset();
      }
    }
    if (gen_mode_ != GenMode::kScan && parent != nullptr) {
      for (Side s : {Side::kLeft, Side::kRight}) {
        const size_t i = SideIndex(s);
        f.removed[i].clear();
        std::set_difference(parent->h.SideSet(s).begin(),
                            parent->h.SideSet(s).end(),
                            f.h.SideSet(s).begin(), f.h.SideSet(s).end(),
                            std::back_inserter(f.removed[i]));
        f.added[i].clear();
        std::set_difference(f.h.SideSet(s).begin(), f.h.SideSet(s).end(),
                            parent->h.SideSet(s).begin(),
                            parent->h.SideSet(s).end(),
                            std::back_inserter(f.added[i]));
      }
      // Right-shrinking guarantees B ⊆ parent B under the anchored
      // generator, so that diff is a pure removal set.
      assert(gen_mode_ != GenMode::kAnchored ||
             f.added[SideIndex(Opposite(opts_.anchored_side))].empty());
      ApplyFrameDiff(f, /*entering=*/true);
    }
    if (opts_.prune_small) {
      // Solution pruning: under right-shrinking traversal every solution
      // reachable from f.h has its non-anchored side contained in f.h's,
      // so a too-small side can never recover (Section 5).
      const Side other = Opposite(opts_.anchored_side);
      const size_t theta_other =
          other == Side::kRight ? opts_.theta_right : opts_.theta_left;
      if (opts_.right_shrinking && theta_other > 0 &&
          f.h.SideSet(other).size() < theta_other) {
        f.recurse = false;
      }
      // Left-side pruning via the exclusion set (Section 5).
      const size_t theta_anchor = opts_.anchored_side == Side::kLeft
                                      ? opts_.theta_left
                                      : opts_.theta_right;
      if (opts_.exclusion && theta_anchor > 0) {
        const size_t n = g_.NumOnSide(opts_.anchored_side);
        const size_t excluded = f.excl[SideIndex(opts_.anchored_side)].Count();
        if (n - excluded < theta_anchor) f.recurse = false;
      }
    }
    return fp;
  }

  /// Pops the top frame, undoing its connection-counter diff and returning
  /// it to the arena.
  void PopFrame(std::vector<std::unique_ptr<Frame>>* stack) {
    std::unique_ptr<Frame> f = std::move(stack->back());
    stack->pop_back();
    if (gen_mode_ != GenMode::kScan && f->parent != nullptr) {
      ApplyFrameDiff(*f, /*entering=*/false);
    }
    frame_pool_->Release(std::move(f));
  }

  /// Initializes conn_[s][w] = |Γ(w) ∩ H(opposite(s))| for every vertex w
  /// of every candidate side s: one counter array under left-anchored
  /// traversal, a second one for bTraversal's other candidate phase.
  void InitConnCounts(const Biplex& h) {
    conn_[0].clear();
    conn_[1].clear();
    for (int p = 0; p < NumSidePhases(); ++p) {
      const Side side = CandidateSide(p);
      std::vector<uint32_t>& conn = conn_[SideIndex(side)];
      conn.assign(g_.NumOnSide(side), 0);
      for (VertexId u : h.SideSet(Opposite(side))) {
        for (VertexId w : g_.Neighbors(Opposite(side), u)) ++conn[w];
      }
    }
  }

  /// Applies (entering = true) or undoes (false) the frame's member diffs
  /// to the connection counters: a member change on side o adjusts the
  /// counters of the vertices on the opposite side adjacent to it.
  void ApplyFrameDiff(const Frame& f, bool entering) {
    for (Side o : {Side::kLeft, Side::kRight}) {
      std::vector<uint32_t>& conn = conn_[SideIndex(Opposite(o))];
      if (conn.empty()) continue;
      for (VertexId u : f.added[SideIndex(o)]) {
        for (VertexId w : g_.Neighbors(o, u)) {
          entering ? ++conn[w] : --conn[w];
        }
      }
      for (VertexId u : f.removed[SideIndex(o)]) {
        for (VertexId w : g_.Neighbors(o, u)) {
          entering ? --conn[w] : ++conn[w];
        }
      }
    }
  }

  /// Minimum |Γ(v) ∩ B| a candidate needs to survive the Section 5
  /// almost-satisfying-graph prune; >= 1 under the anchored generator, 0
  /// (pure membership filtering) under the fold.
  size_t MinConn(Side side) const {
    if (gen_mode_ != GenMode::kAnchored) return 0;
    return ThetaOpposite(side) -
           static_cast<size_t>(opts_.k.ForSide(side));
  }

  /// Materializes the frame's candidate list for `side`: non-member
  /// vertices with enough connections into the frame's opposite member
  /// set (min_conn = 0 under the membership fold, where only membership
  /// filters). The root derives it from the graph directly; descendants
  /// refine the parent's list — drop the members the link added, append
  /// the members it removed — and re-check the connection floor where one
  /// applies.
  void GenerateCandidates(Frame* f, Side side) {
    const size_t i = SideIndex(side);
    f->cands_ready[i] = true;
    const size_t min_conn = MinConn(side);
    const std::vector<uint32_t>& conn = conn_[i];
    std::vector<VertexId>& cands = f->cands[i];
    cands.clear();
    if (f->parent == nullptr || !f->parent->cands_ready[i]) {
      const std::vector<VertexId>& members = f->h.SideSet(side);
      const VertexId n = static_cast<VertexId>(g_.NumOnSide(side));
      for (VertexId v = 0; v < n; ++v) {
        if ((min_conn == 0 || conn[v] >= min_conn) &&
            !sorted::Contains(members, v)) {
          cands.push_back(v);
        }
      }
    } else {
      // A parent candidate is a member here iff the link added it.
      for (VertexId v : f->parent->cands[i]) {
        if ((min_conn == 0 || conn[v] >= min_conn) &&
            !sorted::Contains(f->added[i], v)) {
          cands.push_back(v);
        }
      }
      // Removed members are disjoint from the parent's candidate list, so
      // an in-place merge keeps the result sorted.
      const size_t mid = cands.size();
      for (VertexId v : f->removed[i]) {
        if (min_conn == 0 || conn[v] >= min_conn) cands.push_back(v);
      }
      std::inplace_merge(cands.begin(),
                         cands.begin() + static_cast<ptrdiff_t>(mid),
                         cands.end());
    }
    stats_.candidates_generated += cands.size();
  }

  /// The sequence of candidate sides for Step 1: the anchored side only
  /// under left-anchored traversal, both sides for bTraversal.
  Side CandidateSide(int phase) const {
    if (opts_.left_anchored) return opts_.anchored_side;
    return phase == 0 ? Side::kLeft : Side::kRight;
  }
  int NumSidePhases() const { return opts_.left_anchored ? 1 : 2; }

  /// Advances the frame to its next candidate vertex and builds the batch
  /// of new solutions reached from it. Returns false when the frame has no
  /// candidates left.
  bool NextBatch(Frame* f) {
    if (opts_.exclusion && opts_.left_anchored && !f->excl_scanned) {
      // Sterility check: local solutions remove at most k(anchored)
      // vertices from the anchored side, so if more inherited members are
      // excluded, every link from this frame is pruned anyway.
      f->excl_scanned = true;
      const Side a = opts_.anchored_side;
      for (VertexId x : f->h.SideSet(a)) {
        if (f->excl[SideIndex(a)].Test(x)) ++f->excl_members_anchored;
      }
    }
    if (opts_.exclusion && opts_.left_anchored &&
        f->excl_members_anchored >
            static_cast<size_t>(opts_.k.ForSide(opts_.anchored_side))) {
      return false;
    }
    if (gen_mode_ != GenMode::kScan) return NextBatchIncremental(f);
    while (f->side_phase < NumSidePhases()) {
      const Side side = CandidateSide(f->side_phase);
      const size_t n = g_.NumOnSide(side);
      const std::vector<VertexId>& members = f->h.SideSet(side);
      const std::vector<VertexId>& other_members =
          f->h.SideSet(Opposite(side));
      const DynamicBitset& excl_other = f->excl[SideIndex(Opposite(side))];
      VertexId v = f->next_cand[SideIndex(side)];
      for (; v < n; ++v) {
        if (sorted::Contains(members, v)) continue;
        ++stats_.candidates_generated;
        if (opts_.exclusion) {
          if (f->excl[SideIndex(side)].Test(v)) {
            ++stats_.candidates_pruned;
            continue;
          }
          // Every local solution of G[H ∪ v] keeps all of v's neighbors
          // inside H (Lemma 4.1), so an excluded neighbor inside H prunes
          // every link of this candidate.
          if (excl_other.size() != 0 &&
              HasExcludedNeighbor(side, v, other_members, excl_other)) {
            ++stats_.candidates_pruned;
            continue;
          }
        }
        break;
      }
      if (v >= n) {
        ++f->side_phase;
        continue;
      }
      f->next_cand[SideIndex(side)] = v + 1;
      ProcessCandidate(f, side, v, /*prefiltered=*/false);
      f->batch_active = true;
      f->batch_side = side;
      f->batch_v = v;
      return true;
    }
    return false;
  }

  /// NextBatch through the materialized incremental candidate lists (one
  /// phase under left-anchored traversal, both sides for bTraversal).
  /// Every phase list is generated up front, before the frame produces
  /// any child, so descendants can always refine them. Exclusion filters
  /// run at consumption time, exactly when the scan would reach the
  /// vertex, because the exclusion sets grow while the frame is active.
  bool NextBatchIncremental(Frame* f) {
    for (int p = 0; p < NumSidePhases(); ++p) {
      const Side s = CandidateSide(p);
      if (!f->cands_ready[SideIndex(s)]) GenerateCandidates(f, s);
    }
    while (f->side_phase < NumSidePhases()) {
      const Side side = CandidateSide(f->side_phase);
      const size_t i = SideIndex(side);
      const std::vector<VertexId>& other_members =
          f->h.SideSet(Opposite(side));
      const DynamicBitset& excl_other = f->excl[SideIndex(Opposite(side))];
      while (f->cand_pos[i] < f->cands[i].size()) {
        const VertexId v = f->cands[i][f->cand_pos[i]++];
        if (opts_.exclusion) {
          if (f->excl[i].Test(v)) {
            ++stats_.candidates_pruned;
            continue;
          }
          if (excl_other.size() != 0 &&
              HasExcludedNeighbor(side, v, other_members, excl_other)) {
            ++stats_.candidates_pruned;
            continue;
          }
        }
        ProcessCandidate(f, side, v,
                         /*prefiltered=*/gen_mode_ == GenMode::kAnchored);
        f->batch_active = true;
        f->batch_side = side;
        f->batch_v = v;
        return true;
      }
      ++f->side_phase;
    }
    return false;
  }

  /// True iff candidate `v` (on `side`) has a neighbor inside
  /// `other_members` that is excluded.
  bool HasExcludedNeighbor(Side side, VertexId v,
                           const std::vector<VertexId>& other_members,
                           const DynamicBitset& excl_other) const {
    for (VertexId u : g_.Neighbors(side, v)) {
      if (excl_other.Test(u) && sorted::Contains(other_members, u)) {
        return true;
      }
    }
    return false;
  }

  /// θ threshold on the side opposite to `side`.
  size_t ThetaOpposite(Side side) const {
    return side == Side::kLeft ? opts_.theta_right : opts_.theta_left;
  }

  /// Steps 1-3 for a single almost-satisfying graph G[f->h ∪ v].
  /// `prefiltered` marks candidates from the 2-hop generator, whose
  /// connection lower bound is already established.
  void ProcessCandidate(Frame* f, Side side, VertexId v, bool prefiltered) {
    ++stats_.almost_sat_graphs;
    const size_t theta_other = ThetaOpposite(side);
    if (!prefiltered && opts_.prune_small && opts_.right_shrinking &&
        theta_other > 0) {
      // Almost-satisfying-graph pruning: any solution via v keeps at most
      // δ(v, other) + k vertices of the other side (Section 5). The
      // incremental generator's counters hold exactly |Γ(v) ∩ B|, so when
      // they cover this side the adjacency intersection is free.
      const std::vector<uint32_t>& cc = conn_[SideIndex(side)];
      const size_t conn =
          !cc.empty() ? cc[v]
                      : AcceleratedConnCount(accel_, g_, side, v,
                                             f->h.SideSet(Opposite(side)));
      // v itself tolerates at most k(side) disconnections, bounding the
      // other side of any solution through this almost-satisfying graph.
      if (conn + static_cast<size_t>(opts_.k.ForSide(side)) < theta_other) {
        ++stats_.candidates_pruned;
        return;
      }
    }

    // Step-3 growth sides: bTraversal extends with any vertex; left-
    // anchored traversal with right-shrinking extends the anchored side
    // only (Algorithm 2, line 8).
    bool grow_left = true;
    bool grow_right = true;
    if (opts_.left_anchored && opts_.right_shrinking) {
      grow_left = opts_.anchored_side == Side::kLeft;
      grow_right = opts_.anchored_side == Side::kRight;
    }
    auto handle_local = [&](const Biplex& loc) -> bool {
      ++stats_.local_solutions;
      if ((stats_.local_solutions & 0xfu) == 0 &&
          ((deadline_ != nullptr && deadline_->Expired()) ||
           Cancelled(opts_.cancel))) {
        stop_ = true;
        stats_.completed = false;
        return false;
      }
      if (opts_.exclusion && IntersectsExclusion(*f, loc)) {
        ++stats_.links_pruned_exclusion;
        return true;
      }
      if (opts_.left_anchored && opts_.right_shrinking) {
        // Right-shrinking filter (Algorithm 2, line 7): discard local
        // solutions to which some non-anchored vertex is still addable.
        if (extender_.AnyAddable(loc, Opposite(opts_.anchored_side))) {
          ++stats_.links_pruned_right_shrinking;
          return true;
        }
      }
      Biplex sol = loc;
      extender_.Extend(&sol, grow_left, grow_right);
      if (opts_.exclusion && IntersectsExclusion(*f, sol)) {
        ++stats_.links_pruned_exclusion;
        return true;
      }
      ++stats_.links;
      if (opts_.max_links != 0 && stats_.links >= opts_.max_links) {
        stop_ = true;
        stats_.completed = false;
        return false;
      }
      if (link_sink_ != nullptr) {
        // Parallel expansion: the caller owns dedup and scheduling; hand
        // the link over instead of recursing locally.
        if (!(*link_sink_)(std::move(sol))) {
          stop_ = true;
          stats_.completed = false;
          return false;
        }
        return true;
      }
      if (store_->Insert(sol)) {
        ++stats_.solutions_found;
        f->batch.push_back(std::move(sol));
      } else {
        ++stats_.dedup_hits;
      }
      return true;
    };

    if (opts_.local_impl == LocalEnumImpl::kDirect) {
      EnumAlmostSatOptions lopts = opts_.local;
      lopts.deadline = deadline_;
      lopts.adjacency = accel_;
      lopts.workspace = local_ws_;
      if (opts_.exclusion) {
        lopts.excluded_anchored = &f->excl[SideIndex(side)];
      }
      if (opts_.prune_small && opts_.right_shrinking && theta_other > 0) {
        lopts.min_b_size = theta_other;  // local-solution pruning
      }
      bool completed = EnumAlmostSat(g_, f->h, side, v, opts_.k, lopts,
                                     handle_local, &stats_.local_stats);
      if (!completed && !stop_ && deadline_ != nullptr &&
          deadline_->Expired()) {
        stop_ = true;
        stats_.completed = false;
      }
    } else {
      EnumAlmostSatByInflation(g_, f->h, side, v, opts_.k, handle_local);
    }
  }

  bool IntersectsExclusion(const Frame& f, const Biplex& b) const {
    for (Side side : {Side::kLeft, Side::kRight}) {
      const DynamicBitset& excl = f.excl[SideIndex(side)];
      if (excl.size() == 0) continue;
      for (VertexId x : b.SideSet(side)) {
        if (excl.Test(x)) return true;
      }
    }
    return false;
  }

  void Emit(const Biplex& h) {
    if (h.left.size() < opts_.theta_left ||
        h.right.size() < opts_.theta_right) {
      return;
    }
    ++stats_.solutions_emitted;
    if (!(*cb_)(h)) {
      stop_ = true;
      stats_.completed = false;
      return;
    }
    if (opts_.max_results != 0 &&
        stats_.solutions_emitted >= opts_.max_results) {
      stop_ = true;
      stats_.completed = false;
    }
  }

  const BipartiteGraph& g_;
  const TraversalOptions opts_;
  MaximalExtender extender_;
  TraversalStats stats_;
  const SolutionCallback* cb_ = nullptr;
  std::unique_ptr<SolutionStore> store_;
  const Deadline* deadline_ = nullptr;
  bool stop_ = false;

  // Acceleration state: the hybrid adjacency index (attached, engine-
  // owned, or null), the frame arena, the shared EnumAlmostSat workspace,
  // and the incremental |Γ(w) ∩ B| counters of the 2-hop generator.
  const AdjacencyIndex* accel_ = nullptr;
  std::unique_ptr<AdjacencyIndex> owned_accel_;
  // The frame arena and EnumAlmostSat workspace point at the session's
  // TraversalScratch when one is configured, else at the engine-owned
  // fallbacks below.
  ArenaPool<Frame> own_frame_pool_;
  EnumAlmostSatWorkspace own_ws_;
  ArenaPool<Frame>* frame_pool_ = &own_frame_pool_;
  EnumAlmostSatWorkspace* local_ws_ = &own_ws_;
  GenMode gen_mode_ = GenMode::kScan;
  std::vector<uint32_t> conn_[2];  // per-side |Γ(w) ∩ H(other)| counters
  // Parallel-expansion link sink; non-null only inside ExpandSolution.
  const LinkCallback* link_sink_ = nullptr;

  friend class TraversalEngine;
};

TraversalEngine::TraversalEngine(const BipartiteGraph& g,
                                 const TraversalOptions& options)
    : impl_(std::make_unique<Impl>(g, options)) {}

TraversalEngine::~TraversalEngine() = default;

TraversalStats TraversalEngine::Run(const SolutionCallback& cb) {
  return impl_->Run(cb);
}

Biplex TraversalEngine::InitialSolution() const {
  return impl_->InitialSolution();
}

bool TraversalEngine::ShouldExpand(const Biplex& h) const {
  return impl_->ShouldExpand(h);
}

bool TraversalEngine::ExpandSolution(const Biplex& h, const Deadline* deadline,
                                     const LinkCallback& on_link) {
  return impl_->ExpandSolution(h, deadline, on_link);
}

TraversalStats TraversalEngine::TakeExpandStats() {
  return impl_->TakeExpandStats();
}

}  // namespace kbiplex
