// Configuration shared by the reverse-search traversal algorithms.
// One engine covers the paper's whole ablation space (Figure 11):
//   bTraversal          = no technique enabled
//   iTraversal-ES-RS    = left-anchored only
//   iTraversal-ES       = left-anchored + right-shrinking
//   iTraversal          = left-anchored + right-shrinking + exclusion
#ifndef KBIPLEX_CORE_TRAVERSAL_OPTIONS_H_
#define KBIPLEX_CORE_TRAVERSAL_OPTIONS_H_

#include <cstddef>
#include <cstdint>

#include "core/enum_almost_sat.h"
#include "core/solution_store.h"
#include "core/traversal_scratch.h"
#include "util/cancellation.h"
#include "util/common.h"

namespace kbiplex {

/// Which implementation serves the EnumAlmostSat procedure.
enum class LocalEnumImpl : uint8_t {
  kDirect,     // Algorithm 3 (Section 4), variant chosen by `local`
  kInflation,  // graph inflation + maximal (k+1)-plex enumeration
};

/// Step-1 candidate generation strategy.
enum class CandidateGenMode : uint8_t {
  /// Engage the incrementally maintained 2-hop candidate generator
  /// whenever it is provably equivalent to the full scan (left-anchored +
  /// right-shrinking + prune_small with theta_other > k: the Section 5
  /// almost-satisfying-graph prune then discards every candidate the
  /// generator skips, and right-shrinking makes the subtree prune sound).
  kAuto,
  /// Always use the seed behavior: scan every vertex of the side.
  kScan,
  /// Request the 2-hop generator; falls back to the scan for
  /// configurations where it is not equivalence-preserving.
  kTwoHop,
};

/// Hybrid bitset-adjacency acceleration of the engine's hot paths.
enum class AdjacencyAccelMode : uint8_t {
  /// Use the graph's attached index when present; otherwise build an
  /// engine-local one for graphs with >= kAutoIndexMinEdges edges.
  kAuto,
  /// Do not build an engine-local index. Note this is not a total kill
  /// switch: an index already attached to the graph
  /// (BipartiteGraph::BuildAdjacencyIndex) still serves the graph-level
  /// primitives (IsAdjacent, ConnCount) that every engine shares. The
  /// true seed baseline is a graph without an attached index plus kOff.
  kOff,
  /// Use the attached index or build an engine-local one unconditionally.
  kForce,
};

/// Edge count from which AdjacencyAccelMode::kAuto builds an engine-local
/// index when the graph has none attached.
inline constexpr size_t kAutoIndexMinEdges = 4096;

/// Options of one traversal run.
struct TraversalOptions {
  /// Disconnection budgets; both sides must be >= 1. Uniform budgets give
  /// the paper's k-biplex; asymmetric budgets implement the Section 2
  /// remark about different k's per side.
  KPair k = KPair::Uniform(1);

  /// Technique 1 (Section 3.3): only form almost-satisfying graphs by
  /// adding vertices of `anchored_side`; the initial solution contains the
  /// full opposite side. When false the engine behaves like bTraversal
  /// (candidates from both sides, arbitrary maximal initial solution).
  bool left_anchored = true;

  /// Technique 2 (Section 3.4): keep only links whose target solution does
  /// not grow the non-anchored side; local solutions to which some
  /// non-anchored vertex is still addable are discarded (Algorithm 2,
  /// line 7). Only meaningful when left_anchored is true.
  bool right_shrinking = true;

  /// Technique 3 (Section 3.5): maintain exclusion sets along the DFS and
  /// prune links towards solutions containing excluded vertices.
  bool exclusion = true;

  /// Side whose vertices are added to form almost-satisfying graphs under
  /// left-anchored traversal. kLeft gives the paper's default
  /// H0 = (L0, R); kRight the symmetric H0 = (L, R0) variant compared in
  /// Section 6.2.
  Side anchored_side = Side::kLeft;

  /// EnumAlmostSat refinement variants (Section 4) for kDirect.
  EnumAlmostSatOptions local;

  /// EnumAlmostSat implementation.
  LocalEnumImpl local_impl = LocalEnumImpl::kDirect;

  /// Stop after this many emitted solutions (0 = enumerate all). This is
  /// the "number of returned MBPs" knob of Figures 7(d,e).
  uint64_t max_results = 0;

  /// Wall-clock budget in seconds (0 = unlimited); the paper's INF knob.
  double time_budget_seconds = 0;

  /// Abort once this many solution-graph links were generated
  /// (0 = unlimited); the paper's UPP knob of Figure 11.
  uint64_t max_links = 0;

  /// Size thresholds for large-MBP enumeration (Section 5); solutions are
  /// emitted only when |L| >= theta_left and |R| >= theta_right. 0 = none.
  size_t theta_left = 0;
  size_t theta_right = 0;

  /// Enables the Section 5 pruning rules (almost-satisfying-graph pruning,
  /// local-solution pruning, solution pruning, left-side pruning). Only
  /// sound when the theta constraints are set and right_shrinking is on.
  bool prune_small = false;

  /// Optional cooperative cancellation, polled at the same cadence as the
  /// wall-clock deadline; a cancelled run stops with completed = false.
  /// Not owned; may be null.
  const CancellationToken* cancel = nullptr;

  /// Backend of the solution store.
  StoreBackend store_backend = StoreBackend::kBTree;

  /// Step-1 candidate generation strategy (see CandidateGenMode). Every
  /// mode yields the exact same solution set; only the work differs.
  CandidateGenMode candidate_gen = CandidateGenMode::kAuto;

  /// Bitset-adjacency acceleration (see AdjacencyAccelMode). Exact-result
  /// preserving in every mode.
  AdjacencyAccelMode adjacency_accel = AdjacencyAccelMode::kAuto;

  /// Memory budget (bytes) of an engine-local adjacency index: rows are
  /// demoted to compact sorted arrays, then dropped back to CSR search,
  /// until the index fits (see graph/adjacency_index.h). 0 = unlimited
  /// (every row dense). Exact-result preserving for any value; ignored
  /// when shared_adjacency supplies the index.
  size_t accel_budget_bytes = 0;

  /// Caller-provided adjacency index; when set it overrides the
  /// adjacency_accel selection entirely. Not owned and read-only; the
  /// parallel scheduler builds one index and shares it across all worker
  /// engines instead of letting each build its own.
  const AdjacencyIndex* shared_adjacency = nullptr;

  /// Optional cross-run scratch (recursion-frame arena + EnumAlmostSat
  /// workspace) reused by consecutive engines of one session; when null
  /// the engine owns per-run scratch. Not owned; never shared between
  /// concurrently running engines (see core/traversal_scratch.h).
  TraversalScratch* scratch = nullptr;

  /// Uno's alternating-output trick: emit a solution before the recursive
  /// expansion at even DFS depth and after it at odd depth, which bounds
  /// the delay by one iThreeStep invocation (polynomial). When false,
  /// solutions are emitted on discovery.
  bool polynomial_delay_output = true;
};

/// Counters reported by a traversal run.
struct TraversalStats {
  uint64_t solutions_found = 0;    // unique solutions stored
  uint64_t solutions_emitted = 0;  // solutions delivered to the callback
  uint64_t links = 0;              // links of the (sparsified) solution graph
  uint64_t links_pruned_right_shrinking = 0;
  uint64_t links_pruned_exclusion = 0;
  uint64_t almost_sat_graphs = 0;  // Step-1 graphs formed
  uint64_t local_solutions = 0;    // Step-2 local solutions enumerated
  uint64_t dedup_hits = 0;         // links to already-known solutions
  uint64_t candidates_generated = 0;  // Step-1 candidates considered
  uint64_t candidates_pruned = 0;     // skipped before EnumAlmostSat
  EnumAlmostSatStats local_stats;  // Algorithm 3 work counters
  bool completed = true;  // false iff stopped by a budget or callback
  double seconds = 0;
  size_t max_stack_depth = 0;
};

}  // namespace kbiplex

#endif  // KBIPLEX_CORE_TRAVERSAL_OPTIONS_H_
