// Exhaustive reference enumerator: ground truth for every property test.
#ifndef KBIPLEX_CORE_BRUTE_FORCE_H_
#define KBIPLEX_CORE_BRUTE_FORCE_H_

#include <vector>

#include "core/biplex.h"
#include "graph/bipartite_graph.h"

namespace kbiplex {

/// Enumerates every maximal k-biplex of `g` by checking all 2^(|L|+|R|)
/// vertex-set pairs. Requires |L| <= 20 and |R| <= 20 and is intended for
/// graphs with at most ~16 vertices total. Results are sorted.
std::vector<Biplex> BruteForceMaximalBiplexes(const BipartiteGraph& g,
                                              KPair k);
inline std::vector<Biplex> BruteForceMaximalBiplexes(const BipartiteGraph& g,
                                                     int k) {
  return BruteForceMaximalBiplexes(g, KPair::Uniform(k));
}

/// Filters `solutions` to those with |L| >= theta_left and
/// |R| >= theta_right (the "large MBPs" of Section 5).
std::vector<Biplex> FilterBySize(const std::vector<Biplex>& solutions,
                                 size_t theta_left, size_t theta_right);

}  // namespace kbiplex

#endif  // KBIPLEX_CORE_BRUTE_FORCE_H_
