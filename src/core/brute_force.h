// Exhaustive reference enumerator: ground truth for every property test.
#ifndef KBIPLEX_CORE_BRUTE_FORCE_H_
#define KBIPLEX_CORE_BRUTE_FORCE_H_

#include <cstdint>
#include <vector>

#include "core/biplex.h"
#include "graph/bipartite_graph.h"
#include "util/cancellation.h"
#include "util/timer.h"

namespace kbiplex {

/// Enumerates every maximal k-biplex of `g` by checking all 2^(|L|+|R|)
/// vertex-set pairs. Requires |L| <= 20 and |R| <= 20 and is intended for
/// graphs with at most ~16 vertices total. Results are sorted. Also
/// reachable through the Enumerator facade (api/enumerator.h) as
/// algorithm "brute-force"; tests that need the ground truth directly may
/// keep calling this.
std::vector<Biplex> BruteForceMaximalBiplexes(const BipartiteGraph& g,
                                              KPair k);
inline std::vector<Biplex> BruteForceMaximalBiplexes(const BipartiteGraph& g,
                                                     int k) {
  return BruteForceMaximalBiplexes(g, KPair::Uniform(k));
}

/// Interruptible variant: polls `deadline` and `cancel` (either may be
/// null) every 2^16 candidate masks. When one fires the scan stops,
/// `*completed` (if non-null) is set to false, and the solutions found so
/// far are returned — a partial set, since candidates are visited in mask
/// order, not canonical order.
std::vector<Biplex> BruteForceMaximalBiplexes(const BipartiteGraph& g,
                                              KPair k,
                                              const Deadline* deadline,
                                              const CancellationToken* cancel,
                                              bool* completed);

/// Shard of the exhaustive scan: checks only candidate pairs whose
/// left-side mask lies in [lmask_begin, lmask_end). Maximality is still
/// judged against the whole graph, so the union of the shards over a
/// partition of [0, 2^|L|) is exactly the full solution set, with no
/// duplicates across shards. This is the sharding hook of the parallel
/// enumeration driver (api/); lmask_end is clamped to 2^|L|.
std::vector<Biplex> BruteForceMaximalBiplexesMaskRange(
    const BipartiteGraph& g, KPair k, const Deadline* deadline,
    const CancellationToken* cancel, bool* completed, uint64_t lmask_begin,
    uint64_t lmask_end);

/// Filters `solutions` to those with |L| >= theta_left and
/// |R| >= theta_right (the "large MBPs" of Section 5).
std::vector<Biplex> FilterBySize(const std::vector<Biplex>& solutions,
                                 size_t theta_left, size_t theta_right);

}  // namespace kbiplex

#endif  // KBIPLEX_CORE_BRUTE_FORCE_H_
