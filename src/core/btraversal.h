// Named configurations of the traversal engine: bTraversal (Algorithm 1),
// iTraversal (Algorithm 2), and the ablation points in between that
// Figure 11 compares.
#ifndef KBIPLEX_CORE_BTRAVERSAL_H_
#define KBIPLEX_CORE_BTRAVERSAL_H_

#include <string>
#include <vector>

#include "core/itraversal.h"
#include "core/traversal_options.h"

namespace kbiplex {

/// The conventional reverse-search framework: arbitrary initial solution,
/// almost-satisfying graphs from both sides, no link pruning.
TraversalOptions MakeBTraversalOptions(int k);

/// iTraversal with all three techniques (left-anchored, right-shrinking,
/// exclusion).
TraversalOptions MakeITraversalOptions(int k);

/// iTraversal-ES: without the exclusion strategy.
TraversalOptions MakeITraversalNoExclusionOptions(int k);

/// iTraversal-ES-RS: left-anchored traversal only.
TraversalOptions MakeITraversalLeftAnchoredOnlyOptions(int k);

/// Human-readable name of a configuration ("bTraversal", "iTraversal",
/// "iTraversal-ES", "iTraversal-ES-RS", or "custom").
std::string TraversalConfigName(const TraversalOptions& opts);

/// Runs the engine once and returns its stats; solutions go to `cb`.
/// Deprecated backend entry point, scheduled for removal in the next API
/// cycle: new callers should go through the Enumerator facade
/// (api/enumerator.h) with algorithm "itraversal", "itraversal-es",
/// "itraversal-es-rs", or "btraversal".
TraversalStats RunTraversal(const BipartiteGraph& g,
                            const TraversalOptions& opts,
                            const SolutionCallback& cb);

/// Runs the engine once and returns all emitted solutions, sorted.
/// Deprecated backend entry point, scheduled for removal in the next API
/// cycle: prefer Enumerator::Collect (api/enumerator.h).
std::vector<Biplex> CollectSolutions(const BipartiteGraph& g,
                                     const TraversalOptions& opts,
                                     TraversalStats* stats = nullptr);

}  // namespace kbiplex

#endif  // KBIPLEX_CORE_BTRAVERSAL_H_
