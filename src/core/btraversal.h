// Named configurations of the traversal engine: bTraversal (Algorithm 1),
// iTraversal (Algorithm 2), and the ablation points in between that
// Figure 11 compares.
#ifndef KBIPLEX_CORE_BTRAVERSAL_H_
#define KBIPLEX_CORE_BTRAVERSAL_H_

#include <string>
#include <vector>

#include "core/itraversal.h"
#include "core/traversal_options.h"

namespace kbiplex {

/// The conventional reverse-search framework: arbitrary initial solution,
/// almost-satisfying graphs from both sides, no link pruning.
TraversalOptions MakeBTraversalOptions(int k);

/// iTraversal with all three techniques (left-anchored, right-shrinking,
/// exclusion).
TraversalOptions MakeITraversalOptions(int k);

/// iTraversal-ES: without the exclusion strategy.
TraversalOptions MakeITraversalNoExclusionOptions(int k);

/// iTraversal-ES-RS: left-anchored traversal only.
TraversalOptions MakeITraversalLeftAnchoredOnlyOptions(int k);

/// Human-readable name of a configuration ("bTraversal", "iTraversal",
/// "iTraversal-ES", "iTraversal-ES-RS", or "custom").
std::string TraversalConfigName(const TraversalOptions& opts);

}  // namespace kbiplex

#endif  // KBIPLEX_CORE_BTRAVERSAL_H_
