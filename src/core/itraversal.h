// The reverse-search traversal engine (Algorithms 1 and 2).
//
// The engine performs a DFS over the implicit solution graph: from every
// solution H it forms almost-satisfying graphs G[H ∪ v] (Step 1),
// enumerates their local solutions (Step 2, EnumAlmostSat), extends each
// local solution to a real solution (Step 3), and recurses on solutions
// seen for the first time. TraversalOptions selects between bTraversal and
// the iTraversal techniques; see traversal_options.h.
//
// The DFS runs on an explicit stack (solution graphs can be deep), and the
// polynomial-delay guarantee uses Uno's alternating output trick.
#ifndef KBIPLEX_CORE_ITRAVERSAL_H_
#define KBIPLEX_CORE_ITRAVERSAL_H_

#include <functional>
#include <memory>

#include "core/biplex.h"
#include "core/traversal_options.h"
#include "graph/bipartite_graph.h"

namespace kbiplex {

class Deadline;  // util/timer.h

/// Receives each enumerated maximal k-biplex; return false to stop.
using SolutionCallback = std::function<bool(const Biplex&)>;

/// Receives each solution linked from the expanded solution during
/// ExpandSolution; return false to stop the expansion early.
using LinkCallback = std::function<bool(Biplex&&)>;

/// Reverse-search enumerator over the solution graph of `g`.
class TraversalEngine {
 public:
  /// `g` must outlive the engine.
  TraversalEngine(const BipartiteGraph& g, const TraversalOptions& options);
  ~TraversalEngine();

  TraversalEngine(const TraversalEngine&) = delete;
  TraversalEngine& operator=(const TraversalEngine&) = delete;

  /// Runs the enumeration, delivering every (large, if thetas are set)
  /// maximal k-biplex to `cb` exactly once. Reentrant: each call starts a
  /// fresh enumeration.
  TraversalStats Run(const SolutionCallback& cb);

  /// The deterministic initial solution the configured traversal starts
  /// from (H0 = (L0, R) for the default left-anchored configuration).
  Biplex InitialSolution() const;

  // --- Parallel-expansion hooks (api/traversal_scheduler.cc) ---
  //
  // A work-stealing run decomposes the traversal into one task per
  // discovered solution: ExpandSolution(H) performs exactly the
  // engine's Steps 1-3 rooted at H (one level of the reverse-search
  // tree) and reports every linked solution to `on_link`; the caller
  // owns deduplication (a shared store) and scheduling. Because the
  // expansion of H depends only on H — connection counters are rebuilt
  // per call, and the path-dependent exclusion strategy must be off —
  // the set of solutions reachable from InitialSolution() is the same
  // closure the sequential Run computes, independent of task order.

  /// True iff the traversal would recurse below `h` (the Section 5
  /// prune-small gate, evaluated from `h` alone). A caller may skip
  /// scheduling an expansion task for a solution this rejects.
  bool ShouldExpand(const Biplex& h) const;

  /// Enumerates every solution linked from `h`, passing each to
  /// `on_link`. Counters accumulate across calls (TakeExpandStats).
  /// Requires an exclusion-free configuration. Returns false when
  /// `on_link` stopped the expansion or `deadline` / the configured
  /// cancellation token fired.
  bool ExpandSolution(const Biplex& h, const Deadline* deadline,
                      const LinkCallback& on_link);

  /// Returns the counters accumulated by ExpandSolution calls since
  /// construction (or the previous TakeExpandStats) and resets them.
  TraversalStats TakeExpandStats();

 private:
  class Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace kbiplex

#endif  // KBIPLEX_CORE_ITRAVERSAL_H_
