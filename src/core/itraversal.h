// The reverse-search traversal engine (Algorithms 1 and 2).
//
// The engine performs a DFS over the implicit solution graph: from every
// solution H it forms almost-satisfying graphs G[H ∪ v] (Step 1),
// enumerates their local solutions (Step 2, EnumAlmostSat), extends each
// local solution to a real solution (Step 3), and recurses on solutions
// seen for the first time. TraversalOptions selects between bTraversal and
// the iTraversal techniques; see traversal_options.h.
//
// The DFS runs on an explicit stack (solution graphs can be deep), and the
// polynomial-delay guarantee uses Uno's alternating output trick.
#ifndef KBIPLEX_CORE_ITRAVERSAL_H_
#define KBIPLEX_CORE_ITRAVERSAL_H_

#include <functional>
#include <memory>

#include "core/biplex.h"
#include "core/traversal_options.h"
#include "graph/bipartite_graph.h"

namespace kbiplex {

/// Receives each enumerated maximal k-biplex; return false to stop.
using SolutionCallback = std::function<bool(const Biplex&)>;

/// Reverse-search enumerator over the solution graph of `g`.
class TraversalEngine {
 public:
  /// `g` must outlive the engine.
  TraversalEngine(const BipartiteGraph& g, const TraversalOptions& options);
  ~TraversalEngine();

  TraversalEngine(const TraversalEngine&) = delete;
  TraversalEngine& operator=(const TraversalEngine&) = delete;

  /// Runs the enumeration, delivering every (large, if thetas are set)
  /// maximal k-biplex to `cb` exactly once. Reentrant: each call starts a
  /// fresh enumeration.
  TraversalStats Run(const SolutionCallback& cb);

  /// The deterministic initial solution the configured traversal starts
  /// from (H0 = (L0, R) for the default left-anchored configuration).
  Biplex InitialSolution() const;

 private:
  class Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace kbiplex

#endif  // KBIPLEX_CORE_ITRAVERSAL_H_
