// Delay instrumentation (Figure 8): the delay of an enumeration algorithm
// is the maximum of (1) time to the first output, (2) time between
// consecutive outputs, and (3) time from the last output to termination.
#ifndef KBIPLEX_CORE_DELAY_TRACKER_H_
#define KBIPLEX_CORE_DELAY_TRACKER_H_

#include <cstdint>

#include "util/timer.h"

namespace kbiplex {

/// Records output timestamps and reports the realized delay statistics.
class DelayTracker {
 public:
  DelayTracker() = default;

  /// Marks the start of the enumeration (construction also does this).
  void Start() {
    timer_.Reset();
    last_event_ = 0;
    max_delay_ = 0;
    total_gap_ = 0;
    outputs_ = 0;
    finished_ = false;
  }

  /// Call on every emitted solution.
  void RecordOutput() {
    const double now = timer_.ElapsedSeconds();
    Observe(now - last_event_);
    last_event_ = now;
    ++outputs_;
  }

  /// Call when the algorithm terminates.
  void Finish() {
    if (finished_) return;
    finished_ = true;
    Observe(timer_.ElapsedSeconds() - last_event_);
  }

  /// Largest observed gap (the paper's "delay").
  double MaxDelaySeconds() const { return max_delay_; }

  /// Mean gap between events (outputs plus termination).
  double MeanDelaySeconds() const {
    const uint64_t gaps = outputs_ + (finished_ ? 1 : 0);
    return gaps == 0 ? 0.0 : total_gap_ / static_cast<double>(gaps);
  }

  uint64_t outputs() const { return outputs_; }

 private:
  void Observe(double gap) {
    if (gap > max_delay_) max_delay_ = gap;
    total_gap_ += gap;
  }

  WallTimer timer_;
  double last_event_ = 0;
  double max_delay_ = 0;
  double total_gap_ = 0;
  uint64_t outputs_ = 0;
  bool finished_ = false;
};

}  // namespace kbiplex

#endif  // KBIPLEX_CORE_DELAY_TRACKER_H_
