#include "core/large_mbp.h"

#include "core/btraversal.h"
#include "graph/core_decomposition.h"
#include "util/timer.h"

namespace kbiplex {

LargeMbpStats LargeMbpEngine::Run(const SolutionCallback& cb) {
  LargeMbpStats stats;
  WallTimer timer;

  TraversalOptions topts = MakeITraversalOptions(1);
  topts.k = opts_.k;
  topts.theta_left = opts_.theta_left;
  topts.theta_right = opts_.theta_right;
  topts.prune_small = true;
  topts.max_results = opts_.max_results;
  topts.time_budget_seconds = opts_.time_budget_seconds;
  topts.cancel = opts_.cancel;
  topts.candidate_gen = opts_.candidate_gen;
  topts.adjacency_accel = opts_.adjacency_accel;
  topts.accel_budget_bytes = opts_.accel_budget_bytes;
  topts.scratch = opts_.scratch;

  if (!opts_.core_reduction) {
    stats.core_left = g_.NumLeft();
    stats.core_right = g_.NumRight();
    TraversalEngine engine(g_, topts);
    stats.traversal = engine.Run(cb);
    stats.completed = stats.traversal.completed;
    stats.seconds = timer.ElapsedSeconds();
    return stats;
  }

  // Every large MBP lies inside the (θ−k)-core: each of its left vertices
  // keeps >= θ_right − k right neighbors and vice versa, and adding any
  // eligible outside vertex would extend the core (Section 6.1). So we may
  // enumerate on the reduced subgraph and translate ids back.
  const size_t kl = static_cast<size_t>(opts_.k.left);
  const size_t kr = static_cast<size_t>(opts_.k.right);
  const size_t alpha = opts_.theta_right > kl ? opts_.theta_right - kl : 0;
  const size_t beta = opts_.theta_left > kr ? opts_.theta_left - kr : 0;
  InducedSubgraph core = AlphaBetaCoreSubgraph(g_, alpha, beta);
  stats.core_left = core.graph.NumLeft();
  stats.core_right = core.graph.NumRight();
  if (core.graph.NumLeft() < opts_.theta_left ||
      core.graph.NumRight() < opts_.theta_right) {
    stats.seconds = timer.ElapsedSeconds();
    return stats;  // no large MBP can exist
  }

  TraversalEngine engine(core.graph, topts);
  stats.traversal = engine.Run([&](const Biplex& b) {
    Biplex mapped;
    mapped.left.reserve(b.left.size());
    mapped.right.reserve(b.right.size());
    for (VertexId v : b.left) mapped.left.push_back(core.left_map[v]);
    for (VertexId u : b.right) mapped.right.push_back(core.right_map[u]);
    // Maps are monotone (Induce preserves order), so sets stay sorted.
    return cb(mapped);
  });
  stats.completed = stats.traversal.completed;
  stats.seconds = timer.ElapsedSeconds();
  return stats;
}

}  // namespace kbiplex
