// EnumAlmostSat (Section 4 / Algorithm 3): enumerate all local solutions of
// an almost-satisfying graph (A ∪ {v}, B), i.e., the subgraphs that contain
// v, are k-biplexes, and are maximal within the almost-satisfying graph.
//
// The implementation is side-neutral: the anchored side A is the side of
// the incoming vertex v (left for iTraversal's left-anchored traversal,
// either side for bTraversal), B is the opposite side.
//
// Refinements, each selectable independently (evaluated in Figure 12):
//   R1.0: enumerate only B'' ⊆ B_enum with |B''| <= k, keeping B_keep
//         (v's neighbors in B) in every local solution (Lemma 4.1).
//   R2.0: split B_enum into B1 (δ̄(u,A) <= k-1) and B2 (δ̄(u,A) = k) and
//         prune pairs with |B''| < k and B1 \ B''_1 ≠ ∅ (Lemma 4.2).
//   L1.0: remove only subsets of A_remo = {a ∈ A : δ̄(a, B''_2) > 0} with
//         size at most |B''_2| (Lemma 4.3).
//   L2.0: visit removal sets in ascending cardinality and prune supersets
//         of successful removal sets (Section 4.4).
#ifndef KBIPLEX_CORE_ENUM_ALMOST_SAT_H_
#define KBIPLEX_CORE_ENUM_ALMOST_SAT_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "core/biplex.h"
#include "graph/adjacency_index.h"
#include "graph/bipartite_graph.h"
#include "util/dynamic_bitset.h"
#include "util/timer.h"

namespace kbiplex {

/// Refined enumeration variant on the removal (anchored) side.
enum class LRefinement : uint8_t { kL10, kL20 };

/// Refined enumeration variant on the subset (opposite) side.
enum class RRefinement : uint8_t { kR10, kR20 };

/// Reusable scratch buffers of one EnumAlmostSat invocation. The traversal
/// engines call EnumAlmostSat once per candidate vertex — thousands of
/// times per second — and each call needs ~15 scratch vectors; routing the
/// calls through one caller-owned workspace keeps the buffers' heap
/// capacity alive across calls so steady state allocates nothing.
/// A workspace may be reused freely between calls but never concurrently.
struct EnumAlmostSatWorkspace {
  std::vector<size_t> disc_a_of_b;    // δ̄(u, A), aligned with B
  std::vector<char> v_adj_b;          // v adjacent to B[i]?
  std::vector<VertexId> b_keep;       // ids
  std::vector<size_t> b1, b2;         // indices into B
  std::vector<size_t> disc_keep_of_a; // δ̄(a, B_keep), aligned with A
  std::vector<VertexId> bpp, bpp2, bp;
  std::vector<size_t> a_remo;         // indices into A
  std::vector<size_t> abar;           // removal set, indices into A
  std::vector<size_t> excluded_a_idx; // excluded members of A (indices)
  std::vector<size_t> req;            // forced removals (indices into A)
  std::vector<size_t> rest;           // a_remo minus req
  std::vector<size_t> merged;         // merge scratch for abar ∪ req
  Biplex loc;                         // local-solution assembly buffer
};

/// Configuration of one EnumAlmostSat invocation.
struct EnumAlmostSatOptions {
  LRefinement l_variant = LRefinement::kL20;
  RRefinement r_variant = RRefinement::kR20;
  /// Large-MBP local-solution pruning (Section 5): skip B' subsets with
  /// fewer than `min_b_size` vertices. 0 disables the prune.
  size_t min_b_size = 0;
  /// Optional soft deadline polled during the subset enumeration; when it
  /// expires the call aborts and returns false, exactly as if the callback
  /// had requested a stop. Not owned; may be null.
  const Deadline* deadline = nullptr;
  /// Optional exclusion filter on the anchored side (bits indexed by
  /// vertex id of v's side): local solutions retaining a marked A-member
  /// are never produced. Used by the traversal engine's exclusion strategy
  /// to avoid enumerating local solutions it would discard anyway —
  /// removal sets are forced to cover every marked member. Not owned.
  const DynamicBitset* excluded_anchored = nullptr;
  /// Optional bitset-adjacency acceleration for the O(1) edge-test fast
  /// path; adjacency falls back to the graph's CSR search (or its own
  /// attached index) when null or rowless. Not owned.
  const AdjacencyIndex* adjacency = nullptr;
  /// Optional caller-owned scratch buffers reused across invocations;
  /// when null each call allocates its own. Not owned.
  EnumAlmostSatWorkspace* workspace = nullptr;
};

/// Work counters for one or more invocations.
struct EnumAlmostSatStats {
  uint64_t b_subsets = 0;        // B'' candidate subsets examined
  uint64_t a_subsets = 0;        // removal sets examined
  uint64_t local_solutions = 0;  // local solutions reported
  uint64_t adjacency_tests = 0;  // pairwise edge tests issued
};

/// Receives each local solution; returns false to stop the enumeration.
/// The Biplex reference is only valid for the duration of the call — the
/// enumerator assembles every local solution in a reused workspace
/// buffer — so a callback that keeps a solution must copy it.
using LocalSolutionCallback = std::function<bool(const Biplex&)>;

/// Enumerates all local solutions within the almost-satisfying graph
/// (A ∪ {v}, B), where `h` is a k-biplex of `g`, A = h's side `v_side`,
/// B = the opposite side, and `v` (on side `v_side`) is not in A. Every
/// reported Biplex contains v on side `v_side`.
///
/// Returns false iff the callback requested a stop.
bool EnumAlmostSat(const BipartiteGraph& g, const Biplex& h, Side v_side,
                   VertexId v, KPair k, const EnumAlmostSatOptions& opts,
                   const LocalSolutionCallback& cb,
                   EnumAlmostSatStats* stats = nullptr);
inline bool EnumAlmostSat(const BipartiteGraph& g, const Biplex& h,
                          Side v_side, VertexId v, int k,
                          const EnumAlmostSatOptions& opts,
                          const LocalSolutionCallback& cb,
                          EnumAlmostSatStats* stats = nullptr) {
  return EnumAlmostSat(g, h, v_side, v, KPair::Uniform(k), opts, cb, stats);
}

}  // namespace kbiplex

#endif  // KBIPLEX_CORE_ENUM_ALMOST_SAT_H_
