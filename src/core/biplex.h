// The k-biplex vocabulary: vertex-pair subgraphs, k-biplex / maximality
// predicates, canonical key encoding, and deterministic extension of a
// k-biplex to a maximal one ("Step 3" of the paper's ThreeStep procedure).
#ifndef KBIPLEX_CORE_BIPLEX_H_
#define KBIPLEX_CORE_BIPLEX_H_

#include <string>
#include <string_view>
#include <vector>

#include "graph/bipartite_graph.h"
#include "util/common.h"

namespace kbiplex {

/// Per-side disconnection budgets of a (possibly asymmetric) biplex: every
/// left member may disconnect at most `left` right members and every right
/// member at most `right` left members. The paper notes (Section 2) that
/// "it is possible to use different k's at different sides and the
/// techniques developed in this paper can be easily adapted"; this library
/// implements that generalization throughout.
struct KPair {
  int left = 1;
  int right = 1;

  static KPair Uniform(int k) { return {k, k}; }

  /// Budget of the members of side `s`.
  int ForSide(Side s) const { return s == Side::kLeft ? left : right; }

  bool IsUniform() const { return left == right; }

  friend bool operator==(const KPair& a, const KPair& b) {
    return a.left == b.left && a.right == b.right;
  }
};

/// An induced bipartite subgraph identified by its two vertex sets, both
/// sorted ascending. The graph it lives in is supplied to the predicates.
struct Biplex {
  std::vector<VertexId> left;
  std::vector<VertexId> right;

  size_t Size() const { return left.size() + right.size(); }

  /// The vertex set of the side `s`.
  const std::vector<VertexId>& SideSet(Side s) const {
    return s == Side::kLeft ? left : right;
  }
  std::vector<VertexId>& MutableSideSet(Side s) {
    return s == Side::kLeft ? left : right;
  }

  friend bool operator==(const Biplex& a, const Biplex& b) {
    return a.left == b.left && a.right == b.right;
  }
  friend bool operator<(const Biplex& a, const Biplex& b) {
    return a.left != b.left ? a.left < b.left : a.right < b.right;
  }
};

/// Serializes a biplex into a canonical byte key: 4-byte big-endian |L|
/// followed by big-endian ids of L then R. Big-endian keeps byte-wise
/// lexicographic comparisons consistent with numeric order, so the
/// B-tree solution store iterates solutions in a meaningful order.
std::string EncodeBiplexKey(const Biplex& b);

/// Inverse of EncodeBiplexKey.
Biplex DecodeBiplexKey(std::string_view key);

/// True iff G[L ∪ R] is a k-biplex (Definition 2.1): every left member
/// disconnects at most k.left members of R and every right member at most
/// k.right members of L.
bool IsKBiplex(const BipartiteGraph& g, const Biplex& b, KPair k);
inline bool IsKBiplex(const BipartiteGraph& g, const Biplex& b, int k) {
  return IsKBiplex(g, b, KPair::Uniform(k));
}

/// True iff `b` is a k-biplex of `g` and no single vertex of g can be added
/// while preserving the k-biplex property. By the hereditary property this
/// is exactly maximality (Definition 2.3).
bool IsMaximalKBiplex(const BipartiteGraph& g, const Biplex& b, KPair k);
inline bool IsMaximalKBiplex(const BipartiteGraph& g, const Biplex& b,
                             int k) {
  return IsMaximalKBiplex(g, b, KPair::Uniform(k));
}

/// True iff vertex `v` on side `side` can join the k-biplex `b` (which must
/// be a k-biplex) with the property preserved.
bool CanAdd(const BipartiteGraph& g, const Biplex& b, Side side, VertexId v,
            KPair k);
inline bool CanAdd(const BipartiteGraph& g, const Biplex& b, Side side,
                   VertexId v, int k) {
  return CanAdd(g, b, side, v, KPair::Uniform(k));
}

/// Deterministically extends a k-biplex to a maximal one by a single pass
/// over a preset vertex order (ascending left ids, then ascending right
/// ids), adding every vertex that preserves the property. Because the
/// k-biplex family is hereditary, constraints only tighten as the set
/// grows, so one pass yields a maximal k-biplex and the result is a
/// function of the seed alone — the determinism Step 3 of ThreeStep
/// requires.
class MaximalExtender {
 public:
  /// `g` must outlive the extender.
  MaximalExtender(const BipartiteGraph& g, KPair k);
  MaximalExtender(const BipartiteGraph& g, int k)
      : MaximalExtender(g, KPair::Uniform(k)) {}

  /// Extends `b` in place. `grow_left` / `grow_right` select which sides
  /// may receive vertices (iTraversal's Step 3 grows the left side only).
  void Extend(Biplex* b, bool grow_left, bool grow_right) const;

  /// Appends to `out` every vertex of side `side` that can currently join
  /// `b`. Used by maximality checks and the right-shrinking filter.
  void AppendAddableVertices(const Biplex& b, Side side,
                             std::vector<VertexId>* out,
                             bool stop_at_first = false) const;

  /// True iff some vertex of side `side` outside `b` can join `b`.
  bool AnyAddable(const Biplex& b, Side side) const;

 private:
  // Collects candidate vertices of `side` with enough connections into the
  // opposite member set of `b` to possibly join (δ(v, other) >= |other|-k).
  void CollectCandidates(const Biplex& b, Side side,
                         std::vector<VertexId>* out) const;

  // One growth pass of Extend over `side`, with incremental budget
  // tracking of the opposite side's members.
  void ExtendSide(Biplex* b, Side side) const;

  const BipartiteGraph& g_;
  KPair k_;
  // Scratch: connection counters indexed by vertex id, one per side.
  mutable std::vector<uint32_t> conn_count_[2];
  mutable std::vector<VertexId> touched_[2];
};

}  // namespace kbiplex

#endif  // KBIPLEX_CORE_BIPLEX_H_
