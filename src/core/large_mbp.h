// Large-MBP enumeration (Section 5): enumerate only the maximal k-biplexes
// whose sides meet size thresholds, without enumerating all MBPs first.
// Combines the (θ−k)-core pre-reduction used in Section 6.1 with the
// engine's Section 5 pruning rules.
#ifndef KBIPLEX_CORE_LARGE_MBP_H_
#define KBIPLEX_CORE_LARGE_MBP_H_

#include <vector>

#include "core/itraversal.h"
#include "core/traversal_options.h"
#include "graph/bipartite_graph.h"

namespace kbiplex {

/// Options of a large-MBP run.
struct LargeMbpOptions {
  KPair k = KPair::Uniform(1);
  size_t theta_left = 1;   // minimum |L'| of reported MBPs
  size_t theta_right = 1;  // minimum |R'|
  /// Pre-reduce the graph to its (θ−k)-core before enumerating; every
  /// large MBP survives the reduction because each of its vertices has at
  /// least θ−k neighbors inside it.
  bool core_reduction = true;
  uint64_t max_results = 0;
  double time_budget_seconds = 0;
  /// Optional cooperative cancellation, forwarded to the traversal engine;
  /// not owned, may be null.
  const CancellationToken* cancel = nullptr;
  /// Hot-path acceleration knobs, forwarded to the traversal engine (see
  /// traversal_options.h). Large-MBP runs satisfy the 2-hop equivalence
  /// gate whenever theta exceeds the budget on the opposite side, so
  /// kAuto typically engages the candidate generator here.
  CandidateGenMode candidate_gen = CandidateGenMode::kAuto;
  AdjacencyAccelMode adjacency_accel = AdjacencyAccelMode::kAuto;
  /// Memory budget (bytes) of an engine-local adjacency index, forwarded
  /// to the traversal engine; 0 = unlimited (see traversal_options.h).
  size_t accel_budget_bytes = 0;
  /// Optional cross-run scratch forwarded to the traversal engine; not
  /// owned (see core/traversal_scratch.h).
  TraversalScratch* scratch = nullptr;
};

/// Result counters of a large-MBP run.
struct LargeMbpStats {
  TraversalStats traversal;
  size_t core_left = 0;   // vertices surviving the core reduction
  size_t core_right = 0;
  bool completed = true;
  double seconds = 0;
};

/// Large-MBP enumerator: (θ−k)-core pre-reduction plus size-constrained
/// traversal. Mirrors TraversalEngine: construct once against a graph,
/// then Run per query. External callers should go through the Enumerator
/// facade (api/enumerator.h, algorithm "large-mbp") or PreparedGraph +
/// QuerySession (api/query_session.h); the engine itself is the backend
/// building block those layers compose.
class LargeMbpEngine {
 public:
  /// `g` must outlive the engine; `opts` is copied (the cancel/scratch
  /// pointers it carries must stay valid for every Run).
  LargeMbpEngine(const BipartiteGraph& g, const LargeMbpOptions& opts)
      : g_(g), opts_(opts) {}

  LargeMbpEngine(const LargeMbpEngine&) = delete;
  LargeMbpEngine& operator=(const LargeMbpEngine&) = delete;

  /// Enumerates every maximal k-biplex of the graph with |L'| >=
  /// theta_left and |R'| >= theta_right, delivering them to `cb` with ids
  /// of the original graph. Reentrant: each call is a fresh enumeration.
  LargeMbpStats Run(const SolutionCallback& cb);

 private:
  const BipartiteGraph& g_;
  LargeMbpOptions opts_;
};

}  // namespace kbiplex

#endif  // KBIPLEX_CORE_LARGE_MBP_H_
