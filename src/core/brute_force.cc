#include "core/brute_force.h"

#include <algorithm>
#include <bit>
#include <cassert>

namespace kbiplex {
namespace {

/// Adjacency of a small graph as 32-bit masks.
struct MaskGraph {
  std::vector<uint32_t> left_adj;   // per left vertex: mask of right nbrs
  std::vector<uint32_t> right_adj;  // per right vertex: mask of left nbrs
};

MaskGraph BuildMasks(const BipartiteGraph& g) {
  MaskGraph m;
  m.left_adj.assign(g.NumLeft(), 0);
  m.right_adj.assign(g.NumRight(), 0);
  for (VertexId l = 0; l < g.NumLeft(); ++l) {
    for (VertexId r : g.LeftNeighbors(l)) {
      m.left_adj[l] |= 1u << r;
      m.right_adj[r] |= 1u << l;
    }
  }
  return m;
}

bool MaskIsKBiplex(const MaskGraph& m, uint32_t lmask, uint32_t rmask,
                   KPair k) {
  for (uint32_t bits = lmask; bits != 0; bits &= bits - 1) {
    const int v = std::countr_zero(bits);
    if (std::popcount(rmask & ~m.left_adj[static_cast<size_t>(v)]) >
        k.left) {
      return false;
    }
  }
  for (uint32_t bits = rmask; bits != 0; bits &= bits - 1) {
    const int u = std::countr_zero(bits);
    if (std::popcount(lmask & ~m.right_adj[static_cast<size_t>(u)]) >
        k.right) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::vector<Biplex> BruteForceMaximalBiplexes(const BipartiteGraph& g,
                                              KPair k) {
  return BruteForceMaximalBiplexes(g, k, nullptr, nullptr, nullptr);
}

std::vector<Biplex> BruteForceMaximalBiplexes(const BipartiteGraph& g,
                                              KPair k,
                                              const Deadline* deadline,
                                              const CancellationToken* cancel,
                                              bool* completed) {
  return BruteForceMaximalBiplexesMaskRange(
      g, k, deadline, cancel, completed, 0,
      uint64_t{1} << g.NumLeft());
}

std::vector<Biplex> BruteForceMaximalBiplexesMaskRange(
    const BipartiteGraph& g, KPair k, const Deadline* deadline,
    const CancellationToken* cancel, bool* completed, uint64_t lmask_begin,
    uint64_t lmask_end) {
  const size_t nl = g.NumLeft();
  const size_t nr = g.NumRight();
  assert(nl <= 20 && nr <= 20);
  lmask_end = std::min(lmask_end, uint64_t{1} << nl);
  const MaskGraph m = BuildMasks(g);
  if (completed != nullptr) *completed = true;

  std::vector<Biplex> out;
  uint64_t visited = 0;
  for (uint64_t lmask64 = lmask_begin; lmask64 < lmask_end; ++lmask64) {
    const uint32_t lmask = static_cast<uint32_t>(lmask64);
    for (uint32_t rmask = 0; rmask < (1u << nr); ++rmask) {
      if ((++visited & 0xffffu) == 0 &&
          ((deadline != nullptr && deadline->Expired()) ||
           Cancelled(cancel))) {
        if (completed != nullptr) *completed = false;
        std::sort(out.begin(), out.end());
        return out;
      }
      if (!MaskIsKBiplex(m, lmask, rmask, k)) continue;
      // Maximality: by the hereditary property it suffices that no single
      // vertex can be added.
      bool maximal = true;
      for (size_t v = 0; v < nl && maximal; ++v) {
        if ((lmask >> v) & 1u) continue;
        if (MaskIsKBiplex(m, lmask | (1u << v), rmask, k)) maximal = false;
      }
      for (size_t u = 0; u < nr && maximal; ++u) {
        if ((rmask >> u) & 1u) continue;
        if (MaskIsKBiplex(m, lmask, rmask | (1u << u), k)) maximal = false;
      }
      if (!maximal) continue;
      Biplex b;
      for (uint32_t bits = lmask; bits != 0; bits &= bits - 1) {
        b.left.push_back(static_cast<VertexId>(std::countr_zero(bits)));
      }
      for (uint32_t bits = rmask; bits != 0; bits &= bits - 1) {
        b.right.push_back(static_cast<VertexId>(std::countr_zero(bits)));
      }
      out.push_back(std::move(b));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Biplex> FilterBySize(const std::vector<Biplex>& solutions,
                                 size_t theta_left, size_t theta_right) {
  std::vector<Biplex> out;
  for (const Biplex& b : solutions) {
    if (b.left.size() >= theta_left && b.right.size() >= theta_right) {
      out.push_back(b);
    }
  }
  return out;
}

}  // namespace kbiplex
