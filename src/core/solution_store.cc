#include "core/solution_store.h"

#include <cassert>

namespace kbiplex {

SolutionStore::SolutionStore(StoreBackend backend, size_t btree_order)
    : backend_(backend), tree_(btree_order) {}

bool SolutionStore::Insert(const Biplex& b) {
  const std::string key = EncodeBiplexKey(b);
  switch (backend_) {
    case StoreBackend::kBTree:
      return tree_.Insert(key);
    case StoreBackend::kHashSet:
      return hash_.insert(key).second;
    case StoreBackend::kBoth: {
      bool a = tree_.Insert(key);
      bool h = hash_.insert(key).second;
      assert(a == h);
      return a;
    }
  }
  return false;
}

bool SolutionStore::Contains(const Biplex& b) const {
  const std::string key = EncodeBiplexKey(b);
  switch (backend_) {
    case StoreBackend::kBTree:
      return tree_.Contains(key);
    case StoreBackend::kHashSet:
      return hash_.count(key) > 0;
    case StoreBackend::kBoth: {
      bool a = tree_.Contains(key);
      bool h = hash_.count(key) > 0;
      assert(a == h);
      return a;
    }
  }
  return false;
}

size_t SolutionStore::Size() const {
  switch (backend_) {
    case StoreBackend::kBTree:
      return tree_.Size();
    case StoreBackend::kHashSet:
      return hash_.size();
    case StoreBackend::kBoth:
      assert(tree_.Size() == hash_.size());
      return tree_.Size();
  }
  return 0;
}

void SolutionStore::ForEach(
    const std::function<void(const Biplex&)>& fn) const {
  if (backend_ == StoreBackend::kHashSet) {
    for (const std::string& key : hash_) fn(DecodeBiplexKey(key));
    return;
  }
  tree_.ForEach([&](std::string_view key) { fn(DecodeBiplexKey(key)); });
}

std::vector<Biplex> SolutionStore::ToVector() const {
  std::vector<Biplex> out;
  out.reserve(Size());
  ForEach([&](const Biplex& b) { out.push_back(b); });
  return out;
}

}  // namespace kbiplex
