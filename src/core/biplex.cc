#include "core/biplex.h"

#include <algorithm>
#include <cassert>

namespace kbiplex {
namespace {

void AppendBigEndian(std::string* out, uint32_t x) {
  out->push_back(static_cast<char>((x >> 24) & 0xff));
  out->push_back(static_cast<char>((x >> 16) & 0xff));
  out->push_back(static_cast<char>((x >> 8) & 0xff));
  out->push_back(static_cast<char>(x & 0xff));
}

uint32_t ReadBigEndian(const char* p) {
  return (static_cast<uint32_t>(static_cast<unsigned char>(p[0])) << 24) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 16) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 8) |
         static_cast<uint32_t>(static_cast<unsigned char>(p[3]));
}

}  // namespace

std::string EncodeBiplexKey(const Biplex& b) {
  std::string key;
  key.reserve(4 * (1 + b.left.size() + b.right.size()));
  AppendBigEndian(&key, static_cast<uint32_t>(b.left.size()));
  for (VertexId v : b.left) AppendBigEndian(&key, v);
  for (VertexId u : b.right) AppendBigEndian(&key, u);
  return key;
}

Biplex DecodeBiplexKey(std::string_view key) {
  assert(key.size() % 4 == 0 && key.size() >= 4);
  Biplex b;
  const size_t total = key.size() / 4 - 1;
  const size_t nl = ReadBigEndian(key.data());
  assert(nl <= total);
  b.left.reserve(nl);
  b.right.reserve(total - nl);
  for (size_t i = 1; i <= total; ++i) {
    uint32_t id = ReadBigEndian(key.data() + 4 * i);
    if (i <= nl) {
      b.left.push_back(id);
    } else {
      b.right.push_back(id);
    }
  }
  return b;
}

bool IsKBiplex(const BipartiteGraph& g, const Biplex& b, KPair k) {
  for (VertexId v : b.left) {
    if (g.DiscCount(Side::kLeft, v, b.right) >
        static_cast<size_t>(k.left)) {
      return false;
    }
  }
  for (VertexId u : b.right) {
    if (g.DiscCount(Side::kRight, u, b.left) >
        static_cast<size_t>(k.right)) {
      return false;
    }
  }
  return true;
}

bool CanAdd(const BipartiteGraph& g, const Biplex& b, Side side, VertexId v,
            KPair k) {
  const size_t own_budget = static_cast<size_t>(k.ForSide(side));
  const size_t other_budget =
      static_cast<size_t>(k.ForSide(Opposite(side)));
  const std::vector<VertexId>& same = b.SideSet(side);
  const std::vector<VertexId>& other = b.SideSet(Opposite(side));
  if (sorted::Contains(same, v)) return false;  // already a member
  if (g.DiscCount(side, v, other) > own_budget) return false;
  // Every opposite member newly disconnected (from v) must tolerate one
  // more disconnection.
  for (VertexId u : other) {
    if (g.IsAdjacent(side, v, u)) continue;
    if (g.DiscCount(Opposite(side), u, same) + 1 > other_budget) {
      return false;
    }
  }
  return true;
}

bool IsMaximalKBiplex(const BipartiteGraph& g, const Biplex& b, KPair k) {
  if (!IsKBiplex(g, b, k)) return false;
  MaximalExtender extender(g, k);
  return !extender.AnyAddable(b, Side::kLeft) &&
         !extender.AnyAddable(b, Side::kRight);
}

MaximalExtender::MaximalExtender(const BipartiteGraph& g, KPair k)
    : g_(g), k_(k) {
  conn_count_[0].assign(g.NumLeft(), 0);
  conn_count_[1].assign(g.NumRight(), 0);
}

void MaximalExtender::CollectCandidates(const Biplex& b, Side side,
                                        std::vector<VertexId>* out) const {
  const std::vector<VertexId>& same = b.SideSet(side);
  const std::vector<VertexId>& other = b.SideSet(Opposite(side));
  const size_t uk = static_cast<size_t>(k_.ForSide(side));
  if (other.size() <= uk) {
    // Every non-member trivially satisfies the connection lower bound
    // δ(v, other) >= |other| - k; fall back to scanning the side.
    const size_t n = g_.NumOnSide(side);
    out->reserve(n - same.size());
    for (VertexId v = 0; v < n; ++v) {
      if (!sorted::Contains(same, v)) out->push_back(v);
    }
    return;
  }
  // Count connections into `other` by one sweep over its adjacency lists.
  const size_t side_idx = side == Side::kLeft ? 0 : 1;
  std::vector<uint32_t>& conn = conn_count_[side_idx];
  std::vector<VertexId>& touched = touched_[side_idx];
  touched.clear();
  for (VertexId u : other) {
    for (VertexId w : g_.Neighbors(Opposite(side), u)) {
      if (conn[w] == 0) touched.push_back(w);
      ++conn[w];
    }
  }
  const size_t need = other.size() - uk;
  for (VertexId w : touched) {
    if (conn[w] >= need && !sorted::Contains(same, w)) out->push_back(w);
    conn[w] = 0;  // reset scratch
  }
  std::sort(out->begin(), out->end());
}

void MaximalExtender::AppendAddableVertices(const Biplex& b, Side side,
                                            std::vector<VertexId>* out,
                                            bool stop_at_first) const {
  std::vector<VertexId> candidates;
  CollectCandidates(b, side, &candidates);
  for (VertexId v : candidates) {
    if (CanAdd(g_, b, side, v, k_)) {
      out->push_back(v);
      if (stop_at_first) return;
    }
  }
}

bool MaximalExtender::AnyAddable(const Biplex& b, Side side) const {
  // Fast path driven by "slackless" members: a member a of the opposite
  // side already at its disconnection budget blocks every candidate it is
  // disconnected from, so candidates must be common neighbors of all
  // slackless members. This avoids scanning the whole side when the
  // candidate-side budget would otherwise admit every vertex (the hot case
  // of the right-shrinking filter on solutions with a tiny anchored side).
  const std::vector<VertexId>& same = b.SideSet(side);
  const std::vector<VertexId>& other = b.SideSet(Opposite(side));
  const size_t other_budget =
      static_cast<size_t>(k_.ForSide(Opposite(side)));
  VertexId tightest = kInvalidVertex;  // slackless member of min degree
  for (VertexId a : other) {
    if (g_.DiscCount(Opposite(side), a, same) == other_budget) {
      if (tightest == kInvalidVertex ||
          g_.Degree(Opposite(side), a) < g_.Degree(Opposite(side), tightest)) {
        tightest = a;
      }
    }
  }
  if (tightest != kInvalidVertex) {
    // Candidates are restricted to Γ(tightest).
    for (VertexId u : g_.Neighbors(Opposite(side), tightest)) {
      if (CanAdd(g_, b, side, u, k_)) return true;
    }
    return false;
  }
  // No member is slackless: every candidate passing its own budget joins.
  const size_t own_budget = static_cast<size_t>(k_.ForSide(side));
  if (other.size() <= own_budget) {
    // Any non-member qualifies unconditionally.
    return same.size() < g_.NumOnSide(side);
  }
  std::vector<VertexId> found;
  AppendAddableVertices(b, side, &found, /*stop_at_first=*/true);
  return !found.empty();
}

void MaximalExtender::ExtendSide(Biplex* b, Side side) const {
  std::vector<VertexId>& same = b->MutableSideSet(side);
  const std::vector<VertexId>& other = b->SideSet(Opposite(side));
  const size_t own_budget = static_cast<size_t>(k_.ForSide(side));
  const size_t other_budget =
      static_cast<size_t>(k_.ForSide(Opposite(side)));

  // Candidate prefilter with connection counts. `other` is fixed during
  // this pass (only `same` grows), so one adjacency sweep suffices.
  std::vector<VertexId> candidates;
  std::vector<uint32_t> cand_conn;  // |Γ(v) ∩ other| aligned to candidates
  if (other.size() <= own_budget) {
    const size_t n = g_.NumOnSide(side);
    for (VertexId v = 0; v < n; ++v) {
      if (sorted::Contains(same, v)) continue;
      candidates.push_back(v);
      cand_conn.push_back(
          static_cast<uint32_t>(g_.ConnCount(side, v, other)));
    }
  } else {
    const size_t side_idx = side == Side::kLeft ? 0 : 1;
    std::vector<uint32_t>& conn = conn_count_[side_idx];
    std::vector<VertexId>& touched = touched_[side_idx];
    touched.clear();
    for (VertexId u : other) {
      for (VertexId w : g_.Neighbors(Opposite(side), u)) {
        if (conn[w] == 0) touched.push_back(w);
        ++conn[w];
      }
    }
    std::sort(touched.begin(), touched.end());
    const size_t need = other.size() - own_budget;
    for (VertexId w : touched) {
      if (conn[w] >= need && !sorted::Contains(same, w)) {
        candidates.push_back(w);
        cand_conn.push_back(conn[w]);
      }
      conn[w] = 0;  // reset scratch
    }
  }

  // Disconnection counters of `other` members and the "tight" ones already
  // at their budget: a candidate is addable iff its own budget fits and it
  // connects every tight member. Maintained incrementally per accepted
  // vertex, which turns the per-candidate test into O(|tight|) instead of
  // a full CanAdd scan.
  std::vector<size_t> disc(other.size());
  std::vector<VertexId> tight;
  for (size_t i = 0; i < other.size(); ++i) {
    disc[i] = same.size() - g_.ConnCount(Opposite(side), other[i], same);
    if (disc[i] == other_budget) tight.push_back(other[i]);
  }

  for (size_t ci = 0; ci < candidates.size(); ++ci) {
    const VertexId v = candidates[ci];
    if (other.size() - cand_conn[ci] > own_budget) continue;
    if (g_.ConnCount(side, v, tight) != tight.size()) continue;
    sorted::Insert(&same, v);
    // Update counters of the members v misses.
    for (size_t i = 0; i < other.size(); ++i) {
      if (g_.IsAdjacent(side, v, other[i])) continue;
      if (++disc[i] == other_budget) sorted::Insert(&tight, other[i]);
    }
  }
}

void MaximalExtender::Extend(Biplex* b, bool grow_left,
                             bool grow_right) const {
  for (Side side : {Side::kLeft, Side::kRight}) {
    if (side == Side::kLeft && !grow_left) continue;
    if (side == Side::kRight && !grow_right) continue;
    ExtendSide(b, side);
  }
}

}  // namespace kbiplex
