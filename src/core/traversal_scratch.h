// Cross-run scratch state of the traversal engines. A single TraversalEngine
// already pools its recursion frames and EnumAlmostSat buffers so that one
// run allocates nothing in steady state; a multi-query session constructs a
// fresh engine per query, which would discard those warmed-up pools. Routing
// queries through one caller-owned TraversalScratch carries the pools across
// engine lifetimes, so the second and later queries of a session start with
// every hot-path buffer already at capacity.
//
// A scratch belongs to exactly one logical execution stream: it may be
// reused freely between sequential runs but never concurrently (the
// parallel driver therefore hands its workers no scratch). The pooled
// buffers adapt to the graph of each run, so one scratch may serve queries
// against differently-sized graphs (e.g. per-query (θ−k)-core reductions).
#ifndef KBIPLEX_CORE_TRAVERSAL_SCRATCH_H_
#define KBIPLEX_CORE_TRAVERSAL_SCRATCH_H_

#include <memory>

#include "core/enum_almost_sat.h"

namespace kbiplex {

/// Caller-owned scratch reused by consecutive traversal runs.
struct TraversalScratch {
  /// Base of the engine-private pooled state (the recursion-frame arena;
  /// its concrete type lives inside the engine implementation). The engine
  /// installs its own derived slot on first use and re-adopts it on later
  /// runs.
  struct Slot {
    virtual ~Slot() = default;
  };

  /// Shared EnumAlmostSat scratch vectors (see enum_almost_sat.h).
  EnumAlmostSatWorkspace workspace;

  /// Engine-private pooled state, type-erased.
  std::unique_ptr<Slot> engine_state;
};

}  // namespace kbiplex

#endif  // KBIPLEX_CORE_TRAVERSAL_SCRATCH_H_
