#include "core/btraversal.h"

namespace kbiplex {

TraversalOptions MakeBTraversalOptions(int k) {
  TraversalOptions opts;
  opts.k = KPair::Uniform(k);
  opts.left_anchored = false;
  opts.right_shrinking = false;
  opts.exclusion = false;
  return opts;
}

TraversalOptions MakeITraversalOptions(int k) {
  TraversalOptions opts;
  opts.k = KPair::Uniform(k);
  opts.left_anchored = true;
  opts.right_shrinking = true;
  opts.exclusion = true;
  return opts;
}

TraversalOptions MakeITraversalNoExclusionOptions(int k) {
  TraversalOptions opts = MakeITraversalOptions(k);
  opts.exclusion = false;
  return opts;
}

TraversalOptions MakeITraversalLeftAnchoredOnlyOptions(int k) {
  TraversalOptions opts = MakeITraversalOptions(k);
  opts.exclusion = false;
  opts.right_shrinking = false;
  return opts;
}

std::string TraversalConfigName(const TraversalOptions& opts) {
  if (!opts.left_anchored && !opts.right_shrinking && !opts.exclusion) {
    return "bTraversal";
  }
  if (opts.left_anchored && opts.right_shrinking && opts.exclusion) {
    return "iTraversal";
  }
  if (opts.left_anchored && opts.right_shrinking) return "iTraversal-ES";
  if (opts.left_anchored) return "iTraversal-ES-RS";
  return "custom";
}

}  // namespace kbiplex
