// Connected-component decomposition of a bipartite graph. The parallel
// enumeration driver (api/) shards the traversal-family backends by
// component: each worker enumerates one component's induced subgraph, so
// the decomposition returns InducedSubgraph values whose id maps translate
// worker solutions back to the parent graph.
#ifndef KBIPLEX_GRAPH_COMPONENTS_H_
#define KBIPLEX_GRAPH_COMPONENTS_H_

#include <vector>

#include "graph/bipartite_graph.h"

namespace kbiplex {

/// Per-vertex connected-component labels — the cheap O(V + E) pre-pass.
/// Callers that may not need the materialized subgraphs (e.g. the
/// parallel driver bailing out on single-component graphs) inspect the
/// labeling first and only pay for Induce() when sharding is worthwhile.
/// Components are numbered by their smallest (side, id) vertex.
struct ComponentLabeling {
  int num_components = 0;
  std::vector<int> left;   // component of each left vertex
  std::vector<int> right;  // component of each right vertex
};

ComponentLabeling LabelConnectedComponents(const BipartiteGraph& g);

/// Splits `g` into its connected components, each materialized as an
/// induced subgraph with ascending id maps back to `g`. Every vertex of
/// `g` appears in exactly one component; a vertex with no edges forms a
/// single-vertex component of its own. Components are ordered by their
/// smallest (side, id) vertex, and within each component the id maps are
/// sorted ascending, so compact-id solutions translate back to parent ids
/// without re-sorting.
std::vector<InducedSubgraph> ConnectedComponents(const BipartiteGraph& g);

}  // namespace kbiplex

#endif  // KBIPLEX_GRAPH_COMPONENTS_H_
