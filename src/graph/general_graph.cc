#include "graph/general_graph.h"

#include <algorithm>
#include <cassert>

namespace kbiplex {

GeneralGraph GeneralGraph::FromEdges(size_t num_vertices,
                                     std::vector<Edge> edges) {
  // Symmetrize, drop self-loops, dedup.
  std::vector<Edge> sym;
  sym.reserve(edges.size() * 2);
  for (const auto& [a, b] : edges) {
    assert(a < num_vertices && b < num_vertices);
    if (a == b) continue;
    sym.emplace_back(a, b);
    sym.emplace_back(b, a);
  }
  std::sort(sym.begin(), sym.end());
  sym.erase(std::unique(sym.begin(), sym.end()), sym.end());

  GeneralGraph g;
  g.offsets_.assign(num_vertices + 1, 0);
  for (const auto& [a, b] : sym) ++g.offsets_[a + 1];
  for (size_t i = 1; i <= num_vertices; ++i) {
    g.offsets_[i] += g.offsets_[i - 1];
  }
  g.neighbors_.resize(sym.size());
  std::vector<size_t> pos(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const auto& [a, b] : sym) g.neighbors_[pos[a]++] = b;
  return g;
}

bool GeneralGraph::HasEdge(VertexId a, VertexId b) const {
  auto na = Neighbors(a);
  auto nb = Neighbors(b);
  const auto& shorter = na.size() <= nb.size() ? na : nb;
  VertexId target = na.size() <= nb.size() ? b : a;
  return std::binary_search(shorter.begin(), shorter.end(), target);
}

size_t GeneralGraph::ConnCount(VertexId v,
                               const std::vector<VertexId>& subset) const {
  auto nb = Neighbors(v);
  size_t n = 0;
  auto ia = nb.begin();
  auto ib = subset.begin();
  while (ia != nb.end() && ib != subset.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      ++n;
      ++ia;
      ++ib;
    }
  }
  return n;
}

}  // namespace kbiplex
