// Graph inflation (Section 1 / Section 6 baselines): turn a bipartite graph
// into a general graph by adding an edge between every pair of same-side
// vertices. A k-biplex of the bipartite graph is exactly a (k+1)-plex of
// the inflated graph, so maximal (k+1)-plex enumeration on the inflated
// graph enumerates MBPs (the FaPlexen baseline). Inflation produces
// Θ(|L|² + |R|²) edges; callers must bound input sizes.
#ifndef KBIPLEX_GRAPH_INFLATION_H_
#define KBIPLEX_GRAPH_INFLATION_H_

#include "graph/bipartite_graph.h"
#include "graph/general_graph.h"

namespace kbiplex {

/// The inflated general graph plus the mapping convention: general vertex
/// ids [0, num_left) are the left side, [num_left, num_left + num_right)
/// are the right side shifted by num_left.
struct InflatedGraph {
  GeneralGraph graph;
  size_t num_left = 0;

  /// Maps a general-graph vertex back to (side, bipartite id).
  Side SideOf(VertexId v) const {
    return v < num_left ? Side::kLeft : Side::kRight;
  }
  VertexId BipartiteId(VertexId v) const {
    return v < num_left ? v : v - static_cast<VertexId>(num_left);
  }
  VertexId GeneralId(Side side, VertexId v) const {
    return side == Side::kLeft ? v : v + static_cast<VertexId>(num_left);
  }
};

/// Number of edges the inflation of `g` would contain; callers use it to
/// refuse blow-ups (the paper observes Marvel's 96K edges inflate to >200M).
size_t InflatedEdgeCount(const BipartiteGraph& g);

/// Materializes the inflation of `g`.
InflatedGraph Inflate(const BipartiteGraph& g);

}  // namespace kbiplex

#endif  // KBIPLEX_GRAPH_INFLATION_H_
