// Immutable CSR general (unipartite) graph. Substrate for the graph
// inflation baselines: FaPlexen-style maximal (k+1)-plex enumeration and
// the Inflation implementation of EnumAlmostSat.
#ifndef KBIPLEX_GRAPH_GENERAL_GRAPH_H_
#define KBIPLEX_GRAPH_GENERAL_GRAPH_H_

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "util/common.h"

namespace kbiplex {

/// An undirected, unweighted general graph with sorted adjacency lists.
class GeneralGraph {
 public:
  using Edge = std::pair<VertexId, VertexId>;

  GeneralGraph() = default;

  /// Builds a graph on `num_vertices` vertices from an undirected edge
  /// list. Duplicates and self-loops are discarded.
  static GeneralGraph FromEdges(size_t num_vertices, std::vector<Edge> edges);

  size_t NumVertices() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  size_t NumEdges() const { return neighbors_.size() / 2; }

  /// Sorted neighbors of `v`.
  std::span<const VertexId> Neighbors(VertexId v) const {
    return {neighbors_.data() + offsets_[v],
            neighbors_.data() + offsets_[v + 1]};
  }

  size_t Degree(VertexId v) const { return offsets_[v + 1] - offsets_[v]; }

  bool HasEdge(VertexId a, VertexId b) const;

  /// |Γ(v) ∩ subset| for a sorted vertex vector `subset`.
  size_t ConnCount(VertexId v, const std::vector<VertexId>& subset) const;

 private:
  std::vector<size_t> offsets_;
  std::vector<VertexId> neighbors_;
};

}  // namespace kbiplex

#endif  // KBIPLEX_GRAPH_GENERAL_GRAPH_H_
