#include "graph/renumber.h"

#include <algorithm>

namespace kbiplex {
namespace {

/// One entry of the joint peeling arena: (side, id) flattened so both
/// sides share the bucket queue.
struct PeelVertex {
  Side side;
  VertexId id;
};

}  // namespace

VertexSetPair RenumberedGraph::MapBack(
    const std::vector<VertexId>& left,
    const std::vector<VertexId>& right) const {
  VertexSetPair out;
  out.left.reserve(left.size());
  out.right.reserve(right.size());
  for (VertexId v : left) out.left.push_back(left_to_old[v]);
  for (VertexId u : right) out.right.push_back(right_to_old[u]);
  std::sort(out.left.begin(), out.left.end());
  std::sort(out.right.begin(), out.right.end());
  return out;
}

RenumberedGraph RenumberByDegeneracy(const BipartiteGraph& g) {
  const size_t nl = g.NumLeft();
  const size_t nr = g.NumRight();
  const size_t n = nl + nr;

  // Bucket-queue peeling over both sides jointly (the (α,β)-core peeling
  // of core_decomposition, run to exhaustion with degree buckets instead
  // of fixed thresholds). flat id: [0, nl) left, [nl, nl+nr) right.
  std::vector<size_t> deg(n);
  size_t max_deg = 0;
  for (VertexId v = 0; v < nl; ++v) {
    deg[v] = g.LeftDegree(v);
    max_deg = std::max(max_deg, deg[v]);
  }
  for (VertexId u = 0; u < nr; ++u) {
    deg[nl + u] = g.RightDegree(u);
    max_deg = std::max(max_deg, deg[nl + u]);
  }
  // Counting-sort layout (Batagelj–Zaveršnik): `order` holds the vertices
  // bucketed by residual degree, `bin[d]` the start of bucket d.
  std::vector<size_t> bin(max_deg + 1, 0);
  for (size_t i = 0; i < n; ++i) ++bin[deg[i]];
  {
    size_t start = 0;
    for (size_t d = 0; d <= max_deg; ++d) {
      const size_t count = bin[d];
      bin[d] = start;
      start += count;
    }
  }
  std::vector<size_t> pos(n);    // flat id -> index in order
  std::vector<size_t> order(n);  // peeling arena, sorted by degree
  for (size_t i = 0; i < n; ++i) {
    pos[i] = bin[deg[i]]++;
    order[pos[i]] = i;
  }
  for (size_t d = max_deg; d >= 1; --d) bin[d] = bin[d - 1];
  bin[0] = 0;

  // Min-degree peeling: order[i] always has minimal residual degree among
  // the unpeeled vertices. A neighbor still ahead of the scan (guarded by
  // deg[u] > deg[v]) moves to the front of its bucket and drops a degree.
  auto decrease = [&](size_t u) {
    const size_t du = deg[u];
    const size_t front = bin[du];
    const size_t w = order[front];
    if (u != w) {
      std::swap(order[front], order[pos[u]]);
      std::swap(pos[u], pos[w]);
    }
    ++bin[du];
    --deg[u];
  };
  for (size_t i = 0; i < n; ++i) {
    const size_t flat = order[i];
    if (flat < nl) {
      for (VertexId u : g.LeftNeighbors(static_cast<VertexId>(flat))) {
        if (deg[nl + u] > deg[flat]) decrease(nl + u);
      }
    } else {
      for (VertexId w :
           g.RightNeighbors(static_cast<VertexId>(flat - nl))) {
        if (deg[w] > deg[flat]) decrease(w);
      }
    }
  }
  const std::vector<size_t>& peel = order;  // flat ids in removal order

  // Reverse peel order = degeneracy order: densest-core vertices first.
  RenumberedGraph out;
  out.left_to_old.reserve(nl);
  out.right_to_old.reserve(nr);
  for (auto it = peel.rbegin(); it != peel.rend(); ++it) {
    if (*it < nl) {
      out.left_to_old.push_back(static_cast<VertexId>(*it));
    } else {
      out.right_to_old.push_back(static_cast<VertexId>(*it - nl));
    }
  }
  out.old_to_new_left.resize(nl);
  out.old_to_new_right.resize(nr);
  for (size_t i = 0; i < nl; ++i) {
    out.old_to_new_left[out.left_to_old[i]] = static_cast<VertexId>(i);
  }
  for (size_t i = 0; i < nr; ++i) {
    out.old_to_new_right[out.right_to_old[i]] = static_cast<VertexId>(i);
  }

  std::vector<BipartiteGraph::Edge> edges;
  edges.reserve(g.NumEdges());
  for (VertexId v = 0; v < nl; ++v) {
    for (VertexId r : g.LeftNeighbors(v)) {
      edges.emplace_back(out.old_to_new_left[v], out.old_to_new_right[r]);
    }
  }
  out.graph = BipartiteGraph::FromEdges(nl, nr, std::move(edges));
  if (g.adjacency_index() != nullptr) {
    out.graph.BuildAdjacencyIndex(
        g.adjacency_index()->min_degree(),
        g.adjacency_index()->memory_budget_bytes());
  }
  return out;
}

}  // namespace kbiplex
