// (α,β)-core computation on bipartite graphs. Used both as a baseline
// cohesive structure in the fraud-detection case study (Section 6.3) and as
// the (θ−k)-core pre-reduction for large-MBP enumeration (Section 6.1).
#ifndef KBIPLEX_GRAPH_CORE_DECOMPOSITION_H_
#define KBIPLEX_GRAPH_CORE_DECOMPOSITION_H_

#include <vector>

#include "graph/bipartite_graph.h"

namespace kbiplex {

/// Vertices surviving a core peeling, sorted ascending per side.
struct CoreResult {
  std::vector<VertexId> left;
  std::vector<VertexId> right;

  bool Empty() const { return left.empty() && right.empty(); }
};

/// Computes the (α,β)-core of `g`: the maximal induced subgraph where every
/// left vertex has degree >= alpha and every right vertex has degree >=
/// beta. Runs in O(|E| + |V|) via queue-based peeling.
CoreResult AlphaBetaCore(const BipartiteGraph& g, size_t alpha, size_t beta);

/// Convenience wrapper: materializes the core as an induced subgraph with
/// id maps back to `g`.
InducedSubgraph AlphaBetaCoreSubgraph(const BipartiteGraph& g, size_t alpha,
                                      size_t beta);

}  // namespace kbiplex

#endif  // KBIPLEX_GRAPH_CORE_DECOMPOSITION_H_
