// Edge-list text I/O for bipartite graphs (KONECT-style format).
//
// Format accepted by Load():
//   - lines starting with '%' or '#' are comments;
//   - an optional first data line "L R M" declaring the side sizes and the
//     edge count (the edge count is advisory);
//   - every other data line is "l r": an edge between left vertex l and
//     right vertex r (0-based). Without a header the side sizes are
//     inferred as max id + 1.
#ifndef KBIPLEX_GRAPH_GRAPH_IO_H_
#define KBIPLEX_GRAPH_GRAPH_IO_H_

#include <optional>
#include <string>

#include "graph/bipartite_graph.h"

namespace kbiplex {

/// Result of a fallible I/O operation: a graph or an error message.
struct LoadResult {
  std::optional<BipartiteGraph> graph;
  std::string error;  // non-empty iff !graph

  bool ok() const { return graph.has_value(); }
};

/// Loads an edge-list file.
LoadResult LoadEdgeList(const std::string& path);

/// Parses an edge list from a string (same format as LoadEdgeList).
LoadResult ParseEdgeList(const std::string& text);

/// Writes `g` as an edge-list file with a "L R M" header line.
/// Returns an empty string on success, an error message otherwise.
std::string SaveEdgeList(const BipartiteGraph& g, const std::string& path);

/// Serializes `g` into the edge-list text format.
std::string ToEdgeListString(const BipartiteGraph& g);

}  // namespace kbiplex

#endif  // KBIPLEX_GRAPH_GRAPH_IO_H_
