// Edge-list text I/O for bipartite graphs (KONECT-style format).
//
// Format accepted by Load():
//   - lines starting with '%' or '#' are comments;
//   - a data line is "l r [extra...]": an edge between left vertex l and
//     right vertex r (0-based); trailing columns (KONECT weights or
//     timestamps) are ignored. Ids are strict non-negative integers.
//   - an optional header "L R M" declares the side sizes and edge count.
//     A three-column first data line is a header claim: when the later
//     lines are all two-column, the claim is validated loudly (M must
//     equal the number of edge lines — raw or distinct, duplicates are
//     collapsed — and every id must be < L / R); when later lines carry
//     extra columns, the header is accepted if it validates, the parse
//     fails if only the edge count is off (both readings are suspect),
//     and the first line is an edge like the others if the ids do not
//     respect the declared sizes. A lone three-column line is a header
//     only when it declares M = 0; with M > 0 it is ambiguous with a
//     truncated file and fails. Without a header the side sizes are
//     inferred as max id + 1.
#ifndef KBIPLEX_GRAPH_GRAPH_IO_H_
#define KBIPLEX_GRAPH_GRAPH_IO_H_

#include <optional>
#include <string>

#include "graph/bipartite_graph.h"

namespace kbiplex {

/// Result of a fallible I/O operation: a graph or an error message.
struct LoadResult {
  std::optional<BipartiteGraph> graph;
  std::string error;  // non-empty iff !graph

  bool ok() const { return graph.has_value(); }
};

/// Default read-chunk size of the streaming loader.
inline constexpr size_t kDefaultLoadChunkBytes = size_t{1} << 20;

/// Loads an edge-list file with a bounded-memory streaming reader: the
/// file is consumed in `chunk_bytes` reads with at most one partial line
/// carried between chunks, so peak memory is O(edges * sizeof(Edge) +
/// chunk + longest line) — the file text is never materialized whole.
/// `chunk_bytes` exists for tests that pin chunk-boundary behavior; any
/// value >= 1 parses identically.
LoadResult LoadEdgeList(const std::string& path,
                        size_t chunk_bytes = kDefaultLoadChunkBytes);

/// Parses an edge list from a string (same format and single-pass parser
/// as LoadEdgeList).
LoadResult ParseEdgeList(const std::string& text);

/// Writes `g` as an edge-list file with a "L R M" header line.
/// Returns an empty string on success, an error message otherwise.
std::string SaveEdgeList(const BipartiteGraph& g, const std::string& path);

/// Serializes `g` into the edge-list text format.
std::string ToEdgeListString(const BipartiteGraph& g);

}  // namespace kbiplex

#endif  // KBIPLEX_GRAPH_GRAPH_IO_H_
