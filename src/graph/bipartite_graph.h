// Immutable CSR bipartite graph: the substrate every algorithm in this
// library operates on. Left and right vertices use independent id spaces
// [0, NumLeft()) and [0, NumRight()); adjacency lists are sorted so that
// membership tests are O(log degree) and set operations are mergeable.
#ifndef KBIPLEX_GRAPH_BIPARTITE_GRAPH_H_
#define KBIPLEX_GRAPH_BIPARTITE_GRAPH_H_

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "util/common.h"

namespace kbiplex {

/// An undirected, unweighted bipartite graph G = (L ∪ R, E) in CSR form.
/// Instances are immutable after construction; copy/move are cheap enough
/// for the test workloads and explicit everywhere else.
class BipartiteGraph {
 public:
  using Edge = std::pair<VertexId, VertexId>;  // (left id, right id)

  /// Empty graph.
  BipartiteGraph() = default;

  /// Builds a graph with `num_left` / `num_right` vertices from an edge
  /// list. Duplicate edges are collapsed; edges referencing out-of-range
  /// vertices are not allowed (checked in debug builds).
  static BipartiteGraph FromEdges(size_t num_left, size_t num_right,
                                  std::vector<Edge> edges);

  size_t NumLeft() const { return left_offsets_.empty() ? 0 : left_offsets_.size() - 1; }
  size_t NumRight() const { return right_offsets_.empty() ? 0 : right_offsets_.size() - 1; }
  size_t NumEdges() const { return left_neighbors_.size(); }
  size_t NumVertices() const { return NumLeft() + NumRight(); }

  /// Sorted right-neighbors of left vertex `v`.
  std::span<const VertexId> LeftNeighbors(VertexId v) const {
    return {left_neighbors_.data() + left_offsets_[v],
            left_neighbors_.data() + left_offsets_[v + 1]};
  }

  /// Sorted left-neighbors of right vertex `u`.
  std::span<const VertexId> RightNeighbors(VertexId u) const {
    return {right_neighbors_.data() + right_offsets_[u],
            right_neighbors_.data() + right_offsets_[u + 1]};
  }

  /// Sorted neighbors of `v` on side `side`.
  std::span<const VertexId> Neighbors(Side side, VertexId v) const {
    return side == Side::kLeft ? LeftNeighbors(v) : RightNeighbors(v);
  }

  size_t LeftDegree(VertexId v) const {
    return left_offsets_[v + 1] - left_offsets_[v];
  }
  size_t RightDegree(VertexId u) const {
    return right_offsets_[u + 1] - right_offsets_[u];
  }
  size_t Degree(Side side, VertexId v) const {
    return side == Side::kLeft ? LeftDegree(v) : RightDegree(v);
  }

  /// Number of vertices on a side.
  size_t NumOnSide(Side side) const {
    return side == Side::kLeft ? NumLeft() : NumRight();
  }

  /// True iff the edge (l, r) exists.
  bool HasEdge(VertexId l, VertexId r) const;

  /// Edge density as defined by the paper: |E| / (|L| + |R|).
  double EdgeDensity() const {
    size_t n = NumVertices();
    return n == 0 ? 0.0 : static_cast<double>(NumEdges()) / static_cast<double>(n);
  }

  /// Materializes the edge list (sorted by (left, right)).
  std::vector<Edge> Edges() const;

  /// Returns the graph with the two sides swapped (left becomes right).
  BipartiteGraph Transposed() const;

  /// Number of vertices v ∈ `subset` (of side opposite to `side`... see
  /// below) adjacent to `v`. Specifically: |Γ(v) ∩ subset| for vertex `v`
  /// on side `side`, where `subset` is a sorted id vector of the opposite
  /// side. This is the δ(v, S) primitive of the paper.
  size_t ConnCount(Side side, VertexId v,
                   const std::vector<VertexId>& subset) const;

  /// δ̄(v, S) = |S| - δ(v, S): disconnections of `v` within `subset`.
  size_t DiscCount(Side side, VertexId v,
                   const std::vector<VertexId>& subset) const {
    return subset.size() - ConnCount(side, v, subset);
  }

 private:
  std::vector<size_t> left_offsets_;
  std::vector<VertexId> left_neighbors_;
  std::vector<size_t> right_offsets_;
  std::vector<VertexId> right_neighbors_;
};

/// An induced bipartite subgraph materialized with compacted ids, plus the
/// maps from compact ids back to the parent graph's ids.
struct InducedSubgraph {
  BipartiteGraph graph;
  std::vector<VertexId> left_map;   // compact left id -> parent left id
  std::vector<VertexId> right_map;  // compact right id -> parent right id
};

/// Materializes G[L ∪ R]. `left` and `right` must be sorted and in range.
InducedSubgraph Induce(const BipartiteGraph& g,
                       const std::vector<VertexId>& left,
                       const std::vector<VertexId>& right);

}  // namespace kbiplex

#endif  // KBIPLEX_GRAPH_BIPARTITE_GRAPH_H_
