// Immutable CSR bipartite graph: the substrate every algorithm in this
// library operates on. Left and right vertices use independent id spaces
// [0, NumLeft()) and [0, NumRight()); adjacency lists are sorted so that
// membership tests are O(log degree) and set operations are mergeable.
#ifndef KBIPLEX_GRAPH_BIPARTITE_GRAPH_H_
#define KBIPLEX_GRAPH_BIPARTITE_GRAPH_H_

#include <cstddef>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "graph/adjacency_index.h"
#include "util/common.h"

namespace kbiplex {

/// An undirected, unweighted bipartite graph G = (L ∪ R, E) in CSR form.
/// Instances are immutable after construction; copy/move are cheap enough
/// for the test workloads and explicit everywhere else.
class BipartiteGraph {
 public:
  using Edge = std::pair<VertexId, VertexId>;  // (left id, right id)

  /// Empty graph.
  BipartiteGraph() = default;

  /// Builds a graph with `num_left` / `num_right` vertices from an edge
  /// list. Duplicate edges are collapsed; edges referencing out-of-range
  /// vertices are not allowed (checked in debug builds).
  static BipartiteGraph FromEdges(size_t num_left, size_t num_right,
                                  std::vector<Edge> edges);

  size_t NumLeft() const { return left_offsets_.empty() ? 0 : left_offsets_.size() - 1; }
  size_t NumRight() const { return right_offsets_.empty() ? 0 : right_offsets_.size() - 1; }
  size_t NumEdges() const { return left_neighbors_.size(); }
  size_t NumVertices() const { return NumLeft() + NumRight(); }

  /// Sorted right-neighbors of left vertex `v`.
  std::span<const VertexId> LeftNeighbors(VertexId v) const {
    return {left_neighbors_.data() + left_offsets_[v],
            left_neighbors_.data() + left_offsets_[v + 1]};
  }

  /// Sorted left-neighbors of right vertex `u`.
  std::span<const VertexId> RightNeighbors(VertexId u) const {
    return {right_neighbors_.data() + right_offsets_[u],
            right_neighbors_.data() + right_offsets_[u + 1]};
  }

  /// Sorted neighbors of `v` on side `side`.
  std::span<const VertexId> Neighbors(Side side, VertexId v) const {
    return side == Side::kLeft ? LeftNeighbors(v) : RightNeighbors(v);
  }

  size_t LeftDegree(VertexId v) const {
    return left_offsets_[v + 1] - left_offsets_[v];
  }
  size_t RightDegree(VertexId u) const {
    return right_offsets_[u + 1] - right_offsets_[u];
  }
  size_t Degree(Side side, VertexId v) const {
    return side == Side::kLeft ? LeftDegree(v) : RightDegree(v);
  }

  /// Number of vertices on a side.
  size_t NumOnSide(Side side) const {
    return side == Side::kLeft ? NumLeft() : NumRight();
  }

  /// True iff the edge (l, r) exists.
  bool HasEdge(VertexId l, VertexId r) const;

  /// Adjacency test between `v` on side `side` and `u` on the opposite
  /// side. This is the single fast path every enumeration kernel goes
  /// through: when an adjacency index is attached (BuildAdjacencyIndex)
  /// and either endpoint has a bitset row the test is O(1); otherwise it
  /// falls back to a binary search over the shorter adjacency list,
  /// exactly like HasEdge.
  bool IsAdjacent(Side side, VertexId v, VertexId u) const {
    return AcceleratedIsAdjacent(accel_.get(), *this, side, v, u);
  }

  /// Builds and attaches the hybrid adjacency acceleration structure
  /// (per-row dense/sparse containers for vertices with degree >=
  /// `min_degree`; see adjacency_index.h). `memory_budget_bytes` bounds
  /// the container pool (kNoBudget = unlimited, every row dense).
  /// Idempotent for fixed parameters; rebuilding with different ones
  /// replaces the index. The index is shared by copies made afterwards
  /// and is read-only, so attaching it before fanning a graph out to
  /// worker threads is safe.
  void BuildAdjacencyIndex(
      size_t min_degree = AdjacencyIndex::kAutoThreshold,
      size_t memory_budget_bytes = AdjacencyIndex::kNoBudget);

  /// Attaches an externally built acceleration structure. The incremental
  /// update path (src/update/) patches the predecessor epoch's index
  /// against the new adjacency instead of rebuilding it row by row; the
  /// index handed in here must describe exactly this graph's adjacency.
  void AttachAdjacencyIndex(std::shared_ptr<const AdjacencyIndex> index) {
    accel_ = std::move(index);
  }

  /// Detaches the acceleration structure (tests fall back to CSR search).
  void DropAdjacencyIndex() { accel_.reset(); }

  /// The attached acceleration structure, or null.
  const AdjacencyIndex* adjacency_index() const { return accel_.get(); }

  /// Edge density as defined by the paper: |E| / (|L| + |R|).
  double EdgeDensity() const {
    size_t n = NumVertices();
    return n == 0 ? 0.0 : static_cast<double>(NumEdges()) / static_cast<double>(n);
  }

  /// Materializes the edge list (sorted by (left, right)).
  std::vector<Edge> Edges() const;

  /// Returns a copy of the graph with `insert` added and `erase` removed,
  /// splicing the CSR arrays directly in O(|V| + |E| + delta) — no
  /// FromEdges re-sort. Contract (update::UpdateBatch::Normalize
  /// establishes it): both lists are sorted by (left, right) and
  /// duplicate-free, every insert edge is absent from the graph, every
  /// erase edge is present, and the two lists are disjoint. No adjacency
  /// index carries over — the result reflects different adjacency, so
  /// callers attach a fresh or patched index themselves (see
  /// AttachAdjacencyIndex and the AdjacencyIndex patch constructor).
  BipartiteGraph WithEdgeDelta(const std::vector<Edge>& insert,
                               const std::vector<Edge>& erase) const;

  /// Returns the graph with the two sides swapped (left becomes right).
  BipartiteGraph Transposed() const;

  /// Number of vertices v ∈ `subset` (of side opposite to `side`... see
  /// below) adjacent to `v`. Specifically: |Γ(v) ∩ subset| for vertex `v`
  /// on side `side`, where `subset` is a sorted id vector of the opposite
  /// side. This is the δ(v, S) primitive of the paper.
  size_t ConnCount(Side side, VertexId v,
                   const std::vector<VertexId>& subset) const;

  /// δ̄(v, S) = |S| - δ(v, S): disconnections of `v` within `subset`.
  size_t DiscCount(Side side, VertexId v,
                   const std::vector<VertexId>& subset) const {
    return subset.size() - ConnCount(side, v, subset);
  }

 private:
  std::vector<size_t> left_offsets_;
  std::vector<VertexId> left_neighbors_;
  std::vector<size_t> right_offsets_;
  std::vector<VertexId> right_neighbors_;
  // Optional hybrid acceleration structure; shared (read-only) between
  // copies so that copying an indexed graph stays cheap.
  std::shared_ptr<const AdjacencyIndex> accel_;
};

inline bool AcceleratedIsAdjacent(const AdjacencyIndex* index,
                                  const BipartiteGraph& g, Side side,
                                  VertexId v, VertexId u) {
  if (index != nullptr) {
    if (index->HasRow(side, v)) return index->TestRow(side, v, u);
    const Side other = Opposite(side);
    if (index->HasRow(other, u)) return index->TestRow(other, u, v);
  }
  return side == Side::kLeft ? g.HasEdge(v, u) : g.HasEdge(u, v);
}

/// An induced bipartite subgraph materialized with compacted ids, plus the
/// maps from compact ids back to the parent graph's ids.
struct InducedSubgraph {
  BipartiteGraph graph;
  std::vector<VertexId> left_map;   // compact left id -> parent left id
  std::vector<VertexId> right_map;  // compact right id -> parent right id
};

/// Materializes G[L ∪ R]. `left` and `right` must be sorted and in range.
InducedSubgraph Induce(const BipartiteGraph& g,
                       const std::vector<VertexId>& left,
                       const std::vector<VertexId>& right);

}  // namespace kbiplex

#endif  // KBIPLEX_GRAPH_BIPARTITE_GRAPH_H_
