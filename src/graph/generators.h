// Synthetic bipartite graph generators. These drive the property tests and
// serve as offline stand-ins for the paper's real KONECT datasets and the
// Erdős–Rényi graphs of the scalability experiments (Figure 9).
#ifndef KBIPLEX_GRAPH_GENERATORS_H_
#define KBIPLEX_GRAPH_GENERATORS_H_

#include <cstddef>

#include "graph/bipartite_graph.h"
#include "util/random.h"

namespace kbiplex {

/// Erdős–Rényi bipartite graph with exactly `num_edges` distinct edges
/// sampled uniformly (the G(n, M) model used by the paper's synthetic
/// experiments). Requires num_edges <= num_left * num_right.
BipartiteGraph ErdosRenyiBipartite(size_t num_left, size_t num_right,
                                   size_t num_edges, Rng* rng);

/// Erdős–Rényi bipartite graph where each of the num_left * num_right
/// possible edges is present independently with probability `p`.
BipartiteGraph ErdosRenyiProbBipartite(size_t num_left, size_t num_right,
                                       double p, Rng* rng);

/// Chung–Lu style bipartite graph with power-law expected degrees
/// (exponent `gamma` > 1) on both sides and approximately `target_edges`
/// distinct edges. Used as the structural stand-in for the skewed real
/// datasets of Table 1.
BipartiteGraph PowerLawBipartite(size_t num_left, size_t num_right,
                                 size_t target_edges, double gamma, Rng* rng);

/// Chung–Lu bipartite graph with distinct exponents per side. Larger
/// exponents yield flatter degree distributions; this models review data
/// whose product side is heavy-tailed while the user side is nearly
/// uniform (e.g., the Amazon review graph of the case study).
BipartiteGraph PowerLawBipartiteAsym(size_t num_left, size_t num_right,
                                     size_t target_edges, double gamma_left,
                                     double gamma_right, Rng* rng);

/// Adds a dense planted block between `block_left` x `block_right` fresh
/// vertices appended to `g`, where each block edge exists with probability
/// `p_block`. Returns the enlarged graph; the planted vertices are the last
/// `block_left` left ids and last `block_right` right ids. Used to build
/// graphs with known large biplexes.
BipartiteGraph PlantDenseBlock(const BipartiteGraph& g, size_t block_left,
                               size_t block_right, double p_block, Rng* rng);

/// A small handcrafted 5x5 bipartite graph in the spirit of the paper's
/// running example (Figure 1): with k = 1 its initial solution is
/// H0 = ({v4}, {u0..u4}) and it has a rich maximal 1-biplex structure.
/// (The exact edge set of the paper's figure is not recoverable from the
/// text; this graph reproduces the documented properties of the example.)
BipartiteGraph RunningExampleGraph();

}  // namespace kbiplex

#endif  // KBIPLEX_GRAPH_GENERATORS_H_
