#include "graph/bipartite_graph.h"

#include <algorithm>
#include <cassert>

namespace kbiplex {

BipartiteGraph BipartiteGraph::FromEdges(size_t num_left, size_t num_right,
                                         std::vector<Edge> edges) {
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  BipartiteGraph g;
  g.left_offsets_.assign(num_left + 1, 0);
  g.right_offsets_.assign(num_right + 1, 0);
  for (const auto& [l, r] : edges) {
    assert(l < num_left && r < num_right);
    ++g.left_offsets_[l + 1];
    ++g.right_offsets_[r + 1];
  }
  for (size_t i = 1; i <= num_left; ++i) {
    g.left_offsets_[i] += g.left_offsets_[i - 1];
  }
  for (size_t i = 1; i <= num_right; ++i) {
    g.right_offsets_[i] += g.right_offsets_[i - 1];
  }
  g.left_neighbors_.resize(edges.size());
  g.right_neighbors_.resize(edges.size());
  std::vector<size_t> lpos(g.left_offsets_.begin(),
                           g.left_offsets_.end() - 1);
  std::vector<size_t> rpos(g.right_offsets_.begin(),
                           g.right_offsets_.end() - 1);
  for (const auto& [l, r] : edges) {
    g.left_neighbors_[lpos[l]++] = r;
    g.right_neighbors_[rpos[r]++] = l;
  }
  // Edges were sorted by (l, r), so each left adjacency list is sorted; the
  // right lists need sorting.
  for (size_t u = 0; u < num_right; ++u) {
    std::sort(g.right_neighbors_.begin() +
                  static_cast<ptrdiff_t>(g.right_offsets_[u]),
              g.right_neighbors_.begin() +
                  static_cast<ptrdiff_t>(g.right_offsets_[u + 1]));
  }
  return g;
}

bool BipartiteGraph::HasEdge(VertexId l, VertexId r) const {
  // Search the shorter adjacency list.
  if (LeftDegree(l) <= RightDegree(r)) {
    auto nb = LeftNeighbors(l);
    return std::binary_search(nb.begin(), nb.end(), r);
  }
  auto nb = RightNeighbors(r);
  return std::binary_search(nb.begin(), nb.end(), l);
}

std::vector<BipartiteGraph::Edge> BipartiteGraph::Edges() const {
  std::vector<Edge> out;
  out.reserve(NumEdges());
  for (VertexId l = 0; l < NumLeft(); ++l) {
    for (VertexId r : LeftNeighbors(l)) out.emplace_back(l, r);
  }
  return out;
}

BipartiteGraph BipartiteGraph::WithEdgeDelta(
    const std::vector<Edge>& insert, const std::vector<Edge>& erase) const {
  const size_t nl = NumLeft();
  const size_t nr = NumRight();
  assert(NumEdges() + insert.size() >= erase.size());
  const size_t new_edges = NumEdges() + insert.size() - erase.size();

  BipartiteGraph g;
  // Left side: the delta lists are already sorted by (left, right), so one
  // forward sweep merges each old adjacency row with its inserted ids and
  // skips its erased ids.
  g.left_offsets_.assign(nl + 1, 0);
  g.left_neighbors_.reserve(new_edges);
  {
    size_t ii = 0;  // cursor into insert
    size_t ei = 0;  // cursor into erase
    for (VertexId l = 0; l < nl; ++l) {
      const auto nb = LeftNeighbors(l);
      size_t a = 0;
      while (a < nb.size() ||
             (ii < insert.size() && insert[ii].first == l)) {
        const bool has_ins = ii < insert.size() && insert[ii].first == l;
        if (a < nb.size() && (!has_ins || nb[a] < insert[ii].second)) {
          if (ei < erase.size() && erase[ei].first == l &&
              erase[ei].second == nb[a]) {
            ++ei;  // erased: drop the old neighbor
          } else {
            g.left_neighbors_.push_back(nb[a]);
          }
          ++a;
        } else {
          g.left_neighbors_.push_back(insert[ii++].second);
        }
      }
      g.left_offsets_[l + 1] = g.left_neighbors_.size();
    }
    assert(ii == insert.size() && ei == erase.size());
  }
  assert(g.left_neighbors_.size() == new_edges);

  // Right side: the same sweep over delta copies re-sorted by (right,
  // left) — the delta is small, so the sort is O(delta log delta) against
  // the O(|E| log |E|) a FromEdges rebuild would pay.
  const auto by_rl = [](const Edge& a, const Edge& b) {
    return a.second != b.second ? a.second < b.second : a.first < b.first;
  };
  std::vector<Edge> rins = insert;
  std::vector<Edge> rera = erase;
  std::sort(rins.begin(), rins.end(), by_rl);
  std::sort(rera.begin(), rera.end(), by_rl);
  g.right_offsets_.assign(nr + 1, 0);
  g.right_neighbors_.reserve(new_edges);
  {
    size_t ii = 0;
    size_t ei = 0;
    for (VertexId r = 0; r < nr; ++r) {
      const auto nb = RightNeighbors(r);
      size_t a = 0;
      while (a < nb.size() || (ii < rins.size() && rins[ii].second == r)) {
        const bool has_ins = ii < rins.size() && rins[ii].second == r;
        if (a < nb.size() && (!has_ins || nb[a] < rins[ii].first)) {
          if (ei < rera.size() && rera[ei].second == r &&
              rera[ei].first == nb[a]) {
            ++ei;
          } else {
            g.right_neighbors_.push_back(nb[a]);
          }
          ++a;
        } else {
          g.right_neighbors_.push_back(rins[ii++].first);
        }
      }
      g.right_offsets_[r + 1] = g.right_neighbors_.size();
    }
    assert(ii == rins.size() && ei == rera.size());
  }
  return g;
}

BipartiteGraph BipartiteGraph::Transposed() const {
  BipartiteGraph g;
  g.left_offsets_ = right_offsets_;
  g.left_neighbors_ = right_neighbors_;
  g.right_offsets_ = left_offsets_;
  g.right_neighbors_ = left_neighbors_;
  // Rows are laid out per side, so the index does not survive the swap.
  if (accel_ != nullptr) {
    g.BuildAdjacencyIndex(accel_->min_degree(),
                          accel_->memory_budget_bytes());
  }
  return g;
}

void BipartiteGraph::BuildAdjacencyIndex(size_t min_degree,
                                         size_t memory_budget_bytes) {
  accel_ = std::make_shared<const AdjacencyIndex>(*this, min_degree,
                                                  memory_budget_bytes);
}

size_t BipartiteGraph::ConnCount(Side side, VertexId v,
                                 const std::vector<VertexId>& subset) const {
  if (accel_ != nullptr && accel_->HasRow(side, v)) {
    return accel_->RowConnCount(side, v, subset);
  }
  auto nb = Neighbors(side, v);
  // Merge-count; switch to binary search when the subset is much smaller.
  if (subset.size() * 8 < nb.size()) {
    size_t n = 0;
    for (VertexId x : subset) {
      if (std::binary_search(nb.begin(), nb.end(), x)) ++n;
    }
    return n;
  }
  size_t n = 0;
  auto ia = nb.begin();
  auto ib = subset.begin();
  while (ia != nb.end() && ib != subset.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      ++n;
      ++ia;
      ++ib;
    }
  }
  return n;
}

InducedSubgraph Induce(const BipartiteGraph& g,
                       const std::vector<VertexId>& left,
                       const std::vector<VertexId>& right) {
  InducedSubgraph out;
  out.left_map = left;
  out.right_map = right;
  std::vector<VertexId> right_compact(g.NumRight(), kInvalidVertex);
  for (size_t i = 0; i < right.size(); ++i) {
    right_compact[right[i]] = static_cast<VertexId>(i);
  }
  std::vector<BipartiteGraph::Edge> edges;
  for (size_t i = 0; i < left.size(); ++i) {
    for (VertexId r : g.LeftNeighbors(left[i])) {
      if (right_compact[r] != kInvalidVertex) {
        edges.emplace_back(static_cast<VertexId>(i), right_compact[r]);
      }
    }
  }
  out.graph =
      BipartiteGraph::FromEdges(left.size(), right.size(), std::move(edges));
  // Keep acceleration engaged across reductions ((θ−k)-core, component
  // sharding): the induced graph inherits an index when the parent had one.
  if (g.adjacency_index() != nullptr) {
    out.graph.BuildAdjacencyIndex(
        g.adjacency_index()->min_degree(),
        g.adjacency_index()->memory_budget_bytes());
  }
  return out;
}

}  // namespace kbiplex
