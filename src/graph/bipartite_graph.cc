#include "graph/bipartite_graph.h"

#include <algorithm>
#include <cassert>

namespace kbiplex {

BipartiteGraph BipartiteGraph::FromEdges(size_t num_left, size_t num_right,
                                         std::vector<Edge> edges) {
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  BipartiteGraph g;
  g.left_offsets_.assign(num_left + 1, 0);
  g.right_offsets_.assign(num_right + 1, 0);
  for (const auto& [l, r] : edges) {
    assert(l < num_left && r < num_right);
    ++g.left_offsets_[l + 1];
    ++g.right_offsets_[r + 1];
  }
  for (size_t i = 1; i <= num_left; ++i) {
    g.left_offsets_[i] += g.left_offsets_[i - 1];
  }
  for (size_t i = 1; i <= num_right; ++i) {
    g.right_offsets_[i] += g.right_offsets_[i - 1];
  }
  g.left_neighbors_.resize(edges.size());
  g.right_neighbors_.resize(edges.size());
  std::vector<size_t> lpos(g.left_offsets_.begin(),
                           g.left_offsets_.end() - 1);
  std::vector<size_t> rpos(g.right_offsets_.begin(),
                           g.right_offsets_.end() - 1);
  for (const auto& [l, r] : edges) {
    g.left_neighbors_[lpos[l]++] = r;
    g.right_neighbors_[rpos[r]++] = l;
  }
  // Edges were sorted by (l, r), so each left adjacency list is sorted; the
  // right lists need sorting.
  for (size_t u = 0; u < num_right; ++u) {
    std::sort(g.right_neighbors_.begin() +
                  static_cast<ptrdiff_t>(g.right_offsets_[u]),
              g.right_neighbors_.begin() +
                  static_cast<ptrdiff_t>(g.right_offsets_[u + 1]));
  }
  return g;
}

bool BipartiteGraph::HasEdge(VertexId l, VertexId r) const {
  // Search the shorter adjacency list.
  if (LeftDegree(l) <= RightDegree(r)) {
    auto nb = LeftNeighbors(l);
    return std::binary_search(nb.begin(), nb.end(), r);
  }
  auto nb = RightNeighbors(r);
  return std::binary_search(nb.begin(), nb.end(), l);
}

std::vector<BipartiteGraph::Edge> BipartiteGraph::Edges() const {
  std::vector<Edge> out;
  out.reserve(NumEdges());
  for (VertexId l = 0; l < NumLeft(); ++l) {
    for (VertexId r : LeftNeighbors(l)) out.emplace_back(l, r);
  }
  return out;
}

BipartiteGraph BipartiteGraph::Transposed() const {
  BipartiteGraph g;
  g.left_offsets_ = right_offsets_;
  g.left_neighbors_ = right_neighbors_;
  g.right_offsets_ = left_offsets_;
  g.right_neighbors_ = left_neighbors_;
  // Rows are laid out per side, so the index does not survive the swap.
  if (accel_ != nullptr) {
    g.BuildAdjacencyIndex(accel_->min_degree(),
                          accel_->memory_budget_bytes());
  }
  return g;
}

void BipartiteGraph::BuildAdjacencyIndex(size_t min_degree,
                                         size_t memory_budget_bytes) {
  accel_ = std::make_shared<const AdjacencyIndex>(*this, min_degree,
                                                  memory_budget_bytes);
}

size_t BipartiteGraph::ConnCount(Side side, VertexId v,
                                 const std::vector<VertexId>& subset) const {
  if (accel_ != nullptr && accel_->HasRow(side, v)) {
    return accel_->RowConnCount(side, v, subset);
  }
  auto nb = Neighbors(side, v);
  // Merge-count; switch to binary search when the subset is much smaller.
  if (subset.size() * 8 < nb.size()) {
    size_t n = 0;
    for (VertexId x : subset) {
      if (std::binary_search(nb.begin(), nb.end(), x)) ++n;
    }
    return n;
  }
  size_t n = 0;
  auto ia = nb.begin();
  auto ib = subset.begin();
  while (ia != nb.end() && ib != subset.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      ++n;
      ++ia;
      ++ib;
    }
  }
  return n;
}

InducedSubgraph Induce(const BipartiteGraph& g,
                       const std::vector<VertexId>& left,
                       const std::vector<VertexId>& right) {
  InducedSubgraph out;
  out.left_map = left;
  out.right_map = right;
  std::vector<VertexId> right_compact(g.NumRight(), kInvalidVertex);
  for (size_t i = 0; i < right.size(); ++i) {
    right_compact[right[i]] = static_cast<VertexId>(i);
  }
  std::vector<BipartiteGraph::Edge> edges;
  for (size_t i = 0; i < left.size(); ++i) {
    for (VertexId r : g.LeftNeighbors(left[i])) {
      if (right_compact[r] != kInvalidVertex) {
        edges.emplace_back(static_cast<VertexId>(i), right_compact[r]);
      }
    }
  }
  out.graph =
      BipartiteGraph::FromEdges(left.size(), right.size(), std::move(edges));
  // Keep acceleration engaged across reductions ((θ−k)-core, component
  // sharding): the induced graph inherits an index when the parent had one.
  if (g.adjacency_index() != nullptr) {
    out.graph.BuildAdjacencyIndex(
        g.adjacency_index()->min_degree(),
        g.adjacency_index()->memory_budget_bytes());
  }
  return out;
}

}  // namespace kbiplex
