#include "graph/components.h"

#include <utility>

namespace kbiplex {

ComponentLabeling LabelConnectedComponents(const BipartiteGraph& g) {
  const size_t nl = g.NumLeft();
  const size_t nr = g.NumRight();
  constexpr int kUnvisited = -1;
  ComponentLabeling out;
  out.left.assign(nl, kUnvisited);
  out.right.assign(nr, kUnvisited);

  // BFS over a worklist of side-tagged vertices. Seeding left vertices
  // first and right vertices after numbers components by their smallest
  // (side, id) vertex.
  std::vector<std::pair<Side, VertexId>> frontier;
  auto bfs_from = [&](Side side, VertexId seed) {
    const int comp = out.num_components++;
    (side == Side::kLeft ? out.left : out.right)[seed] = comp;
    frontier.assign(1, {side, seed});
    while (!frontier.empty()) {
      auto [s, v] = frontier.back();
      frontier.pop_back();
      for (VertexId u : g.Neighbors(s, v)) {
        std::vector<int>& marks = s == Side::kLeft ? out.right : out.left;
        if (marks[u] != kUnvisited) continue;
        marks[u] = comp;
        frontier.emplace_back(Opposite(s), u);
      }
    }
  };
  for (VertexId l = 0; l < nl; ++l) {
    if (out.left[l] == kUnvisited) bfs_from(Side::kLeft, l);
  }
  for (VertexId r = 0; r < nr; ++r) {
    if (out.right[r] == kUnvisited) bfs_from(Side::kRight, r);
  }
  return out;
}

std::vector<InducedSubgraph> ConnectedComponents(const BipartiteGraph& g) {
  const ComponentLabeling labels = LabelConnectedComponents(g);
  std::vector<std::vector<VertexId>> left_sets(labels.num_components);
  std::vector<std::vector<VertexId>> right_sets(labels.num_components);
  for (VertexId l = 0; l < g.NumLeft(); ++l) {
    left_sets[labels.left[l]].push_back(l);  // ascending: id maps stay sorted
  }
  for (VertexId r = 0; r < g.NumRight(); ++r) {
    right_sets[labels.right[r]].push_back(r);
  }

  std::vector<InducedSubgraph> out;
  out.reserve(labels.num_components);
  for (int c = 0; c < labels.num_components; ++c) {
    out.push_back(Induce(g, left_sets[c], right_sets[c]));
  }
  return out;
}

}  // namespace kbiplex
