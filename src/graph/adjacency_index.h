// Hybrid adjacency acceleration structure: per-vertex bitset rows for
// high-degree vertices (O(1) membership tests) while low-degree vertices
// keep using the graph's sorted CSR spans (O(log d) binary search). The
// enumeration hot paths issue millions of adjacency tests per second; on
// dense graphs the binary searches dominate the profile, and a bitset row
// over the opposite side turns each test into one shift and mask.
//
// Rows are only built for vertices whose degree reaches a threshold, so
// the structure costs O(dense_vertices * opposite_side / 64) words instead
// of a full |L| x |R| matrix. The index is immutable after construction
// and safe to share across threads.
#ifndef KBIPLEX_GRAPH_ADJACENCY_INDEX_H_
#define KBIPLEX_GRAPH_ADJACENCY_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/common.h"

namespace kbiplex {

class BipartiteGraph;

/// Bitset rows over the opposite side for the dense vertices of a graph.
class AdjacencyIndex {
 public:
  /// Sentinel threshold: pick the threshold automatically (at least
  /// kMinAutoDegree, at least the average degree of the graph).
  static constexpr size_t kAutoThreshold = 0;

  /// Minimum degree the auto heuristic ever uses: below this a binary
  /// search over the adjacency list is already cheap.
  static constexpr size_t kMinAutoDegree = 16;

  /// Builds rows for every vertex with degree >= `min_degree` on either
  /// side. `min_degree` = kAutoThreshold selects a heuristic threshold.
  explicit AdjacencyIndex(const BipartiteGraph& g,
                          size_t min_degree = kAutoThreshold);

  /// True iff vertex `v` of side `side` has a bitset row.
  bool HasRow(Side side, VertexId v) const {
    const auto& starts = row_start_[SideIndex(side)];
    return v < starts.size() && starts[v] != kNoRow;
  }

  /// Adjacency test through the row of `v` (side `side`) against vertex
  /// `u` of the opposite side. Requires HasRow(side, v).
  bool TestRow(Side side, VertexId v, VertexId u) const {
    const size_t i = SideIndex(side);
    const uint64_t word =
        words_[row_start_[i][v] + (static_cast<size_t>(u) >> 6)];
    return (word >> (u & 63)) & 1ULL;
  }

  /// Number of vertices of `subset` (sorted ids of the opposite side)
  /// adjacent to `v`. Requires HasRow(side, v); O(|subset|).
  size_t RowConnCount(Side side, VertexId v,
                      const std::vector<VertexId>& subset) const {
    size_t n = 0;
    const size_t i = SideIndex(side);
    const uint64_t* row = words_.data() + row_start_[i][v];
    for (VertexId u : subset) {
      n += (row[static_cast<size_t>(u) >> 6] >> (u & 63)) & 1ULL;
    }
    return n;
  }

  /// The threshold actually used (resolved from kAutoThreshold).
  size_t min_degree() const { return min_degree_; }

  /// Rows built on a side.
  size_t NumRows(Side side) const { return num_rows_[SideIndex(side)]; }

  /// Bytes held by the row pool.
  size_t MemoryBytes() const { return words_.size() * sizeof(uint64_t); }

 private:
  static constexpr size_t kNoRow = static_cast<size_t>(-1);

  static size_t SideIndex(Side s) { return s == Side::kLeft ? 0 : 1; }

  size_t min_degree_ = 0;
  size_t num_rows_[2] = {0, 0};
  // Word offset of v's row in `words_`, or kNoRow. Rows on side s span
  // ceil(|opposite side|/64) words.
  std::vector<size_t> row_start_[2];
  std::vector<uint64_t> words_;
};

/// δ(v, subset) through `index` when it has a row for `v`, falling back to
/// the graph's merge/binary-search counting otherwise. `index` may be null.
size_t AcceleratedConnCount(const AdjacencyIndex* index,
                            const BipartiteGraph& g, Side side, VertexId v,
                            const std::vector<VertexId>& subset);

/// Adjacency test between `v` (side `side`) and `u` (opposite side)
/// through the rows of `index` when either endpoint has one, falling back
/// to the graph's CSR binary search. `index` may be null. The single
/// dispatch every accelerated edge test goes through (defined inline in
/// bipartite_graph.h, which every caller includes).
bool AcceleratedIsAdjacent(const AdjacencyIndex* index,
                           const BipartiteGraph& g, Side side, VertexId v,
                           VertexId u);

}  // namespace kbiplex

#endif  // KBIPLEX_GRAPH_ADJACENCY_INDEX_H_
