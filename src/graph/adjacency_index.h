// Hybrid adjacency acceleration structure: per-vertex rows over the
// opposite side for high-degree vertices (fast membership tests) while
// low-degree vertices keep using the graph's sorted CSR spans (O(log d)
// binary search). The enumeration hot paths issue millions of adjacency
// tests per second; on dense graphs the binary searches dominate the
// profile, and a row over the opposite side turns each test into one
// shift-and-mask (dense rows) or a short search over a compact array
// (sparse rows).
//
// Rows are only built for vertices whose degree reaches a threshold, and
// each row picks one of two roaring-style containers:
//
//   - dense: a bitset of ceil(|opposite|/64) words — O(1) tests, SIMD
//     gather/popcount connection counts;
//   - sparse: the sorted neighbor ids as a uint32 array — O(log d) tests,
//     merge-based counts, but only (1 + degree) * 4 bytes.
//
// With no memory budget every row is dense (the fastest layout, identical
// to the pre-compression behavior). A non-zero `memory_budget_bytes`
// bounds the whole row pool: rows are demoted dense -> sparse by largest
// byte savings first, then dropped entirely (smallest degree first, those
// rows fall back to CSR search) until the pool fits. The index is
// immutable after construction and safe to share across threads.
#ifndef KBIPLEX_GRAPH_ADJACENCY_INDEX_H_
#define KBIPLEX_GRAPH_ADJACENCY_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/common.h"
#include "util/simd.h"

namespace kbiplex {

class BipartiteGraph;

/// Per-row hybrid (dense bitset / sparse sorted-array) adjacency rows for
/// the dense vertices of a graph, bounded by an optional memory budget.
class AdjacencyIndex {
 public:
  /// Sentinel threshold: pick the threshold automatically (at least
  /// kMinAutoDegree, at least the average degree of the graph).
  static constexpr size_t kAutoThreshold = 0;

  /// Minimum degree the auto heuristic ever uses: below this a binary
  /// search over the adjacency list is already cheap.
  static constexpr size_t kMinAutoDegree = 16;

  /// Sentinel budget: no limit, every row dense.
  static constexpr size_t kNoBudget = 0;

  /// Builds rows for every vertex with degree >= `min_degree` on either
  /// side. `min_degree` = kAutoThreshold selects a heuristic threshold;
  /// `memory_budget_bytes` = kNoBudget keeps every row dense, any other
  /// value bounds the total container bytes (see the file comment).
  explicit AdjacencyIndex(const BipartiteGraph& g,
                          size_t min_degree = kAutoThreshold,
                          size_t memory_budget_bytes = kNoBudget);

  /// Incremental rebuild against a small edge delta: plans rows for `g`
  /// exactly like the primary constructor (with `prev`'s resolved
  /// threshold and budget, so the plan stays deterministic across
  /// epochs), but copies container bytes straight out of `prev` for every
  /// row whose vertex is in neither changed set and whose planned
  /// representation matches the previous build; only rows of
  /// `changed_left` / `changed_right` (sorted ids whose neighbor sets
  /// differ between the graphs) and rows the budget planner moved between
  /// representations are filled from `g`'s adjacency. `g` must have the
  /// same vertex counts as the graph `prev` was built from — the update
  /// subsystem only changes edges, never the vertex sets.
  AdjacencyIndex(const BipartiteGraph& g, const AdjacencyIndex& prev,
                 const std::vector<VertexId>& changed_left,
                 const std::vector<VertexId>& changed_right);

  /// True iff vertex `v` of side `side` has a row (of either container).
  bool HasRow(Side side, VertexId v) const {
    const auto& starts = row_start_[SideIndex(side)];
    return v < starts.size() && starts[v] != kNoRow;
  }

  /// Adjacency test through the row of `v` (side `side`) against vertex
  /// `u` of the opposite side. Requires HasRow(side, v).
  bool TestRow(Side side, VertexId v, VertexId u) const {
    const size_t start = row_start_[SideIndex(side)][v];
    if (start & kSparseTag) {
      return TestSparseRow(start & ~kSparseTag, u);
    }
    const uint64_t word = words_[start + (static_cast<size_t>(u) >> 6)];
    return (word >> (u & 63)) & 1ULL;
  }

  /// Number of vertices of `subset` (sorted ids of the opposite side)
  /// adjacent to `v`. Requires HasRow(side, v); O(|subset|) on dense rows
  /// (SIMD gather/popcount), merge over the two sorted arrays on sparse
  /// rows.
  size_t RowConnCount(Side side, VertexId v,
                      const std::vector<VertexId>& subset) const {
    const size_t start = row_start_[SideIndex(side)][v];
    if (start & kSparseTag) {
      return SparseRowConnCount(start & ~kSparseTag, subset);
    }
    return kernels_->row_conn_count(words_.data() + start, subset.data(),
                                    subset.size());
  }

  /// The threshold actually used (resolved from kAutoThreshold).
  size_t min_degree() const { return min_degree_; }

  /// The budget the build was given (kNoBudget = unlimited); preserved so
  /// derived graphs (Induce, Transposed, renumber) rebuild like for like.
  size_t memory_budget_bytes() const { return memory_budget_bytes_; }

  /// Rows built on a side (both containers).
  size_t NumRows(Side side) const { return num_rows_[SideIndex(side)]; }

  /// Bytes held by the row containers (dense words + sparse arrays).
  size_t MemoryBytes() const {
    return words_.size() * sizeof(uint64_t) +
           sparse_pool_.size() * sizeof(uint32_t);
  }

  /// Per-representation build outcome, for observability and the budget
  /// tests: how many rows landed in each container, their bytes, and how
  /// many qualifying rows the budget forced out entirely.
  struct RepresentationStats {
    size_t dense_rows = 0;
    size_t sparse_rows = 0;
    size_t dropped_rows = 0;  // qualifying rows omitted to fit the budget
    size_t dense_bytes = 0;
    size_t sparse_bytes = 0;

    size_t total_bytes() const { return dense_bytes + sparse_bytes; }
  };
  const RepresentationStats& representation_stats() const { return stats_; }

 private:
  static constexpr size_t kNoRow = static_cast<size_t>(-1);
  /// High bit of a row_start_ entry: the offset addresses sparse_pool_
  /// (count-prefixed id array) instead of words_. kNoRow has every bit
  /// set and never collides with a real tagged offset.
  static constexpr size_t kSparseTag = static_cast<size_t>(1)
                                       << (sizeof(size_t) * 8 - 1);

  static size_t SideIndex(Side s) { return s == Side::kLeft ? 0 : 1; }

  /// Shared build: plan (qualify + budget) and fill. `prev` non-null
  /// activates the copy-unchanged-rows fast path of the incremental
  /// constructor; `changed[side]` then flags the vertices whose rows must
  /// be refilled from `g`.
  void Build(const BipartiteGraph& g, const AdjacencyIndex* prev,
             const std::vector<char>* changed);

  bool TestSparseRow(size_t offset, VertexId u) const;
  size_t SparseRowConnCount(size_t offset,
                            const std::vector<VertexId>& subset) const;

  size_t min_degree_ = 0;
  size_t memory_budget_bytes_ = kNoBudget;
  size_t num_rows_[2] = {0, 0};
  RepresentationStats stats_;
  // Offset of v's row, tagged with kSparseTag for sparse rows, or kNoRow.
  // Dense rows on side s span ceil(|opposite side|/64) words of words_;
  // sparse rows are [count, id...] runs in sparse_pool_.
  std::vector<size_t> row_start_[2];
  std::vector<uint64_t> words_;
  std::vector<uint32_t> sparse_pool_;
  // SIMD kernel table resolved once at build (see util/simd.h).
  const simd::Kernels* kernels_;
};

/// δ(v, subset) through `index` when it has a row for `v`, falling back to
/// the graph's merge/binary-search counting otherwise. `index` may be null.
size_t AcceleratedConnCount(const AdjacencyIndex* index,
                            const BipartiteGraph& g, Side side, VertexId v,
                            const std::vector<VertexId>& subset);

/// Adjacency test between `v` (side `side`) and `u` (opposite side)
/// through the rows of `index` when either endpoint has one, falling back
/// to the graph's CSR binary search. `index` may be null. The single
/// dispatch every accelerated edge test goes through (defined inline in
/// bipartite_graph.h, which every caller includes).
bool AcceleratedIsAdjacent(const AdjacencyIndex* index,
                           const BipartiteGraph& g, Side side, VertexId v,
                           VertexId u);

}  // namespace kbiplex

#endif  // KBIPLEX_GRAPH_ADJACENCY_INDEX_H_
