#include "graph/core_decomposition.h"

#include <deque>

namespace kbiplex {

CoreResult AlphaBetaCore(const BipartiteGraph& g, size_t alpha, size_t beta) {
  std::vector<size_t> ldeg(g.NumLeft());
  std::vector<size_t> rdeg(g.NumRight());
  std::vector<bool> lgone(g.NumLeft(), false);
  std::vector<bool> rgone(g.NumRight(), false);
  // (side, id) peeling queue.
  std::deque<std::pair<Side, VertexId>> queue;
  for (VertexId v = 0; v < g.NumLeft(); ++v) {
    ldeg[v] = g.LeftDegree(v);
    if (ldeg[v] < alpha) {
      lgone[v] = true;
      queue.emplace_back(Side::kLeft, v);
    }
  }
  for (VertexId u = 0; u < g.NumRight(); ++u) {
    rdeg[u] = g.RightDegree(u);
    if (rdeg[u] < beta) {
      rgone[u] = true;
      queue.emplace_back(Side::kRight, u);
    }
  }
  while (!queue.empty()) {
    auto [side, v] = queue.front();
    queue.pop_front();
    if (side == Side::kLeft) {
      for (VertexId u : g.LeftNeighbors(v)) {
        if (rgone[u]) continue;
        if (--rdeg[u] < beta) {
          rgone[u] = true;
          queue.emplace_back(Side::kRight, u);
        }
      }
    } else {
      for (VertexId w : g.RightNeighbors(v)) {
        if (lgone[w]) continue;
        if (--ldeg[w] < alpha) {
          lgone[w] = true;
          queue.emplace_back(Side::kLeft, w);
        }
      }
    }
  }
  CoreResult out;
  for (VertexId v = 0; v < g.NumLeft(); ++v) {
    if (!lgone[v]) out.left.push_back(v);
  }
  for (VertexId u = 0; u < g.NumRight(); ++u) {
    if (!rgone[u]) out.right.push_back(u);
  }
  return out;
}

InducedSubgraph AlphaBetaCoreSubgraph(const BipartiteGraph& g, size_t alpha,
                                      size_t beta) {
  CoreResult core = AlphaBetaCore(g, alpha, beta);
  return Induce(g, core.left, core.right);
}

}  // namespace kbiplex
