#include "graph/inflation.h"

namespace kbiplex {

size_t InflatedEdgeCount(const BipartiteGraph& g) {
  const size_t nl = g.NumLeft();
  const size_t nr = g.NumRight();
  return nl * (nl - (nl > 0)) / 2 + nr * (nr - (nr > 0)) / 2 + g.NumEdges();
}

InflatedGraph Inflate(const BipartiteGraph& g) {
  InflatedGraph out;
  out.num_left = g.NumLeft();
  const VertexId nl = static_cast<VertexId>(g.NumLeft());
  const VertexId nr = static_cast<VertexId>(g.NumRight());
  std::vector<GeneralGraph::Edge> edges;
  edges.reserve(InflatedEdgeCount(g));
  for (VertexId a = 0; a < nl; ++a) {
    for (VertexId b = a + 1; b < nl; ++b) edges.emplace_back(a, b);
  }
  for (VertexId a = 0; a < nr; ++a) {
    for (VertexId b = a + 1; b < nr; ++b) {
      edges.emplace_back(nl + a, nl + b);
    }
  }
  for (VertexId l = 0; l < nl; ++l) {
    for (VertexId r : g.LeftNeighbors(l)) edges.emplace_back(l, nl + r);
  }
  out.graph = GeneralGraph::FromEdges(static_cast<size_t>(nl) + nr,
                                      std::move(edges));
  return out;
}

}  // namespace kbiplex
