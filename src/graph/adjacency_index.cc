#include "graph/adjacency_index.h"

#include <algorithm>
#include <numeric>

#include "graph/bipartite_graph.h"

namespace kbiplex {
namespace {

constexpr size_t kWordBits = 64;

size_t WordsFor(size_t bits) { return (bits + kWordBits - 1) / kWordBits; }

/// One qualifying vertex in the budget planner.
struct PlannedRow {
  uint8_t side;  // SideIndex
  VertexId v;
  size_t degree;
};

constexpr uint8_t kDense = 0;
constexpr uint8_t kSparse = 1;
constexpr uint8_t kDropped = 2;

}  // namespace

AdjacencyIndex::AdjacencyIndex(const BipartiteGraph& g, size_t min_degree,
                               size_t memory_budget_bytes)
    : kernels_(&simd::Active()) {
  if (min_degree == kAutoThreshold) {
    // Index vertices of above-average degree: they are the ones whose
    // binary searches are deepest and the ones most frequently probed.
    const size_t n = g.NumVertices();
    const size_t avg = n == 0 ? 0 : (2 * g.NumEdges()) / n;
    min_degree = std::max(kMinAutoDegree, avg);
  }
  min_degree_ = min_degree;
  memory_budget_bytes_ = memory_budget_bytes;
  Build(g, nullptr, nullptr);
}

AdjacencyIndex::AdjacencyIndex(const BipartiteGraph& g,
                               const AdjacencyIndex& prev,
                               const std::vector<VertexId>& changed_left,
                               const std::vector<VertexId>& changed_right)
    : kernels_(&simd::Active()) {
  // Inherit the predecessor's resolved threshold rather than re-running
  // the auto heuristic: the plan must be a pure function of the degrees so
  // unchanged rows keep identical layouts (the staleness threshold in
  // src/update/ bounds how far the heuristic could have drifted anyway).
  min_degree_ = prev.min_degree_;
  memory_budget_bytes_ = prev.memory_budget_bytes_;
  std::vector<char> changed[2];
  changed[0].assign(g.NumLeft(), 0);
  changed[1].assign(g.NumRight(), 0);
  for (VertexId v : changed_left) changed[0][v] = 1;
  for (VertexId u : changed_right) changed[1][u] = 1;
  Build(g, &prev, changed);
}

void AdjacencyIndex::Build(const BipartiteGraph& g, const AdjacencyIndex* prev,
                           const std::vector<char>* changed) {
  const size_t min_degree = min_degree_;
  const size_t memory_budget_bytes = memory_budget_bytes_;
  const size_t row_words[2] = {WordsFor(g.NumRight()), WordsFor(g.NumLeft())};
  row_start_[0].assign(g.NumLeft(), kNoRow);
  row_start_[1].assign(g.NumRight(), kNoRow);

  // Qualifying rows, every one dense to start with — the unbudgeted plan
  // is byte-identical to the historical all-dense index.
  std::vector<PlannedRow> rows;
  for (VertexId v = 0; v < g.NumLeft(); ++v) {
    const size_t deg = g.LeftDegree(v);
    if (deg >= min_degree) rows.push_back({0, v, deg});
  }
  for (VertexId u = 0; u < g.NumRight(); ++u) {
    const size_t deg = g.RightDegree(u);
    if (deg >= min_degree) rows.push_back({1, u, deg});
  }
  const auto dense_cost = [&](const PlannedRow& r) {
    return row_words[r.side] * sizeof(uint64_t);
  };
  const auto sparse_cost = [](const PlannedRow& r) {
    return (1 + r.degree) * sizeof(uint32_t);  // count prefix + ids
  };

  std::vector<uint8_t> repr(rows.size(), kDense);
  size_t total_bytes = 0;
  for (const PlannedRow& r : rows) total_bytes += dense_cost(r);

  if (memory_budget_bytes != kNoBudget && total_bytes > memory_budget_bytes) {
    // Pass 1: demote dense -> sparse where the array container is smaller,
    // biggest byte savings first, until the pool fits.
    std::vector<size_t> order(rows.size());
    std::iota(order.begin(), order.end(), size_t{0});
    const auto savings = [&](size_t i) -> size_t {
      const size_t dense = dense_cost(rows[i]);
      const size_t sparse = sparse_cost(rows[i]);
      return dense > sparse ? dense - sparse : 0;
    };
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return savings(a) > savings(b);
    });
    for (size_t i : order) {
      if (total_bytes <= memory_budget_bytes) break;
      const size_t saved = savings(i);
      if (saved == 0) break;  // sorted: nothing later saves either
      repr[i] = kSparse;
      total_bytes -= saved;
    }
    // Pass 2: still over budget — drop whole rows, smallest degree first
    // (the cheapest CSR searches are the ones we give back).
    if (total_bytes > memory_budget_bytes) {
      std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return rows[a].degree < rows[b].degree;
      });
      for (size_t i : order) {
        if (total_bytes <= memory_budget_bytes) break;
        total_bytes -=
            repr[i] == kSparse ? sparse_cost(rows[i]) : dense_cost(rows[i]);
        repr[i] = kDropped;
      }
    }
  }

  // Lay out the pools and record the per-representation outcome.
  size_t total_words = 0;
  size_t total_sparse = 0;
  for (size_t i = 0; i < rows.size(); ++i) {
    const PlannedRow& r = rows[i];
    switch (repr[i]) {
      case kDense:
        row_start_[r.side][r.v] = total_words;
        total_words += row_words[r.side];
        ++num_rows_[r.side];
        ++stats_.dense_rows;
        break;
      case kSparse:
        row_start_[r.side][r.v] = kSparseTag | total_sparse;
        total_sparse += 1 + r.degree;
        ++num_rows_[r.side];
        ++stats_.sparse_rows;
        break;
      default:
        ++stats_.dropped_rows;
        break;
    }
  }
  stats_.dense_bytes = total_words * sizeof(uint64_t);
  stats_.sparse_bytes = total_sparse * sizeof(uint32_t);

  words_.assign(total_words, 0);
  sparse_pool_.assign(total_sparse, 0);
  for (size_t i = 0; i < rows.size(); ++i) {
    if (repr[i] == kDropped) continue;
    const PlannedRow& r = rows[i];
    const size_t start = row_start_[r.side][r.v];
    if (prev != nullptr && changed[r.side][r.v] == 0 &&
        r.v < prev->row_start_[r.side].size()) {
      // The vertex's adjacency is identical to the previous build; when
      // the old index holds its row in the same representation, the
      // container bytes transfer verbatim — a memcpy instead of the
      // per-neighbor fill below, which is where the incremental rebuild
      // earns its keep on small deltas.
      const size_t pstart = prev->row_start_[r.side][r.v];
      if (pstart != kNoRow && (pstart & kSparseTag) == (start & kSparseTag)) {
        if (start & kSparseTag) {
          const uint32_t* src =
              prev->sparse_pool_.data() + (pstart & ~kSparseTag);
          std::copy(src, src + 1 + r.degree,
                    sparse_pool_.data() + (start & ~kSparseTag));
        } else {
          const uint64_t* src = prev->words_.data() + pstart;
          std::copy(src, src + row_words[r.side], words_.data() + start);
        }
        continue;
      }
    }
    const Side side = r.side == 0 ? Side::kLeft : Side::kRight;
    const auto neighbors = g.Neighbors(side, r.v);
    if (start & kSparseTag) {
      uint32_t* out = sparse_pool_.data() + (start & ~kSparseTag);
      *out++ = static_cast<uint32_t>(neighbors.size());
      std::copy(neighbors.begin(), neighbors.end(), out);
    } else {
      uint64_t* row = words_.data() + start;
      for (VertexId w : neighbors) {
        row[static_cast<size_t>(w) >> 6] |= 1ULL << (w & 63);
      }
    }
  }
}

bool AdjacencyIndex::TestSparseRow(size_t offset, VertexId u) const {
  const uint32_t count = sparse_pool_[offset];
  const uint32_t* ids = sparse_pool_.data() + offset + 1;
  return std::binary_search(ids, ids + count, static_cast<uint32_t>(u));
}

size_t AdjacencyIndex::SparseRowConnCount(
    size_t offset, const std::vector<VertexId>& subset) const {
  const uint32_t count = sparse_pool_[offset];
  const uint32_t* ids = sparse_pool_.data() + offset + 1;
  // Sorted-merge intersection count: both the row array and the subset
  // are ascending and duplicate-free.
  size_t i = 0;
  size_t j = 0;
  size_t n = 0;
  while (i < count && j < subset.size()) {
    if (ids[i] < subset[j]) {
      ++i;
    } else if (subset[j] < ids[i]) {
      ++j;
    } else {
      ++n;
      ++i;
      ++j;
    }
  }
  return n;
}

size_t AcceleratedConnCount(const AdjacencyIndex* index,
                            const BipartiteGraph& g, Side side, VertexId v,
                            const std::vector<VertexId>& subset) {
  if (index != nullptr && index->HasRow(side, v)) {
    return index->RowConnCount(side, v, subset);
  }
  return g.ConnCount(side, v, subset);
}

}  // namespace kbiplex
