#include "graph/adjacency_index.h"

#include <algorithm>

#include "graph/bipartite_graph.h"

namespace kbiplex {
namespace {

constexpr size_t kWordBits = 64;

size_t WordsFor(size_t bits) { return (bits + kWordBits - 1) / kWordBits; }

}  // namespace

AdjacencyIndex::AdjacencyIndex(const BipartiteGraph& g, size_t min_degree) {
  if (min_degree == kAutoThreshold) {
    // Index vertices of above-average degree: they are the ones whose
    // binary searches are deepest and the ones most frequently probed.
    const size_t n = g.NumVertices();
    const size_t avg = n == 0 ? 0 : (2 * g.NumEdges()) / n;
    min_degree = std::max(kMinAutoDegree, avg);
  }
  min_degree_ = min_degree;

  const size_t row_words[2] = {WordsFor(g.NumRight()), WordsFor(g.NumLeft())};
  row_start_[0].assign(g.NumLeft(), kNoRow);
  row_start_[1].assign(g.NumRight(), kNoRow);
  size_t total_words = 0;
  for (VertexId v = 0; v < g.NumLeft(); ++v) {
    if (g.LeftDegree(v) >= min_degree) {
      row_start_[0][v] = total_words;
      total_words += row_words[0];
      ++num_rows_[0];
    }
  }
  for (VertexId u = 0; u < g.NumRight(); ++u) {
    if (g.RightDegree(u) >= min_degree) {
      row_start_[1][u] = total_words;
      total_words += row_words[1];
      ++num_rows_[1];
    }
  }
  words_.assign(total_words, 0);
  for (VertexId v = 0; v < g.NumLeft(); ++v) {
    if (row_start_[0][v] == kNoRow) continue;
    uint64_t* row = words_.data() + row_start_[0][v];
    for (VertexId r : g.LeftNeighbors(v)) {
      row[static_cast<size_t>(r) >> 6] |= 1ULL << (r & 63);
    }
  }
  for (VertexId u = 0; u < g.NumRight(); ++u) {
    if (row_start_[1][u] == kNoRow) continue;
    uint64_t* row = words_.data() + row_start_[1][u];
    for (VertexId l : g.RightNeighbors(u)) {
      row[static_cast<size_t>(l) >> 6] |= 1ULL << (l & 63);
    }
  }
}

size_t AcceleratedConnCount(const AdjacencyIndex* index,
                            const BipartiteGraph& g, Side side, VertexId v,
                            const std::vector<VertexId>& subset) {
  if (index != nullptr && index->HasRow(side, v)) {
    return index->RowConnCount(side, v, subset);
  }
  return g.ConnCount(side, v, subset);
}

}  // namespace kbiplex
