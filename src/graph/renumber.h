// Degeneracy-order vertex renumbering. The enumeration kernels stream
// adjacency lists of the vertices clustered around the dense core of the
// graph; renumbering both sides so that the deepest-core vertices receive
// the smallest ids packs their CSR rows next to each other, which improves
// cache locality of the hot adjacency sweeps (and makes the bitset rows of
// the adjacency index touch a compact id prefix).
//
// The order is the classic min-degree peeling (the same peeling that
// core_decomposition uses for the (α,β)-core, run to exhaustion with a
// bucket queue): vertices are removed in nondecreasing residual-degree
// order; the reverse of the removal order — densest last removed, so
// numbered first — is the degeneracy order.
#ifndef KBIPLEX_GRAPH_RENUMBER_H_
#define KBIPLEX_GRAPH_RENUMBER_H_

#include <vector>

#include "graph/bipartite_graph.h"

namespace kbiplex {

/// A pair of sorted vertex sets in the original id space, kept independent
/// of core/biplex.h so the graph layer stays below the core layer.
struct VertexSetPair {
  std::vector<VertexId> left;
  std::vector<VertexId> right;
};

/// A graph with permuted vertex ids plus the maps between id spaces.
struct RenumberedGraph {
  BipartiteGraph graph;
  std::vector<VertexId> left_to_old;   // new left id  -> original left id
  std::vector<VertexId> right_to_old;  // new right id -> original right id
  std::vector<VertexId> old_to_new_left;
  std::vector<VertexId> old_to_new_right;

  /// Maps vertex sets of `graph` back to the original id space. The
  /// permutation is not monotone, so the result sets are re-sorted.
  VertexSetPair MapBack(const std::vector<VertexId>& left,
                        const std::vector<VertexId>& right) const;
};

/// Joint min-degree peeling order over both sides; reversing it yields the
/// degeneracy order. Runs in O(|V| + |E|) with bucket queues.
RenumberedGraph RenumberByDegeneracy(const BipartiteGraph& g);

}  // namespace kbiplex

#endif  // KBIPLEX_GRAPH_RENUMBER_H_
