#include "graph/generators.h"

#include <cassert>
#include <cmath>
#include <unordered_set>

namespace kbiplex {
namespace {

// Packs an edge into a 64-bit key for dedup sets.
uint64_t EdgeKey(VertexId l, VertexId r) {
  return (static_cast<uint64_t>(l) << 32) | r;
}

// Builds a cumulative distribution over power-law weights w_i = (i+1)^-s.
std::vector<double> PowerLawCdf(size_t n, double s) {
  std::vector<double> cdf(n);
  double total = 0;
  for (size_t i = 0; i < n; ++i) {
    total += std::pow(static_cast<double>(i + 1), -s);
    cdf[i] = total;
  }
  for (double& x : cdf) x /= total;
  return cdf;
}

size_t SampleCdf(const std::vector<double>& cdf, Rng* rng) {
  double u = rng->NextDouble();
  auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
  return it == cdf.end() ? cdf.size() - 1
                         : static_cast<size_t>(it - cdf.begin());
}

}  // namespace

BipartiteGraph ErdosRenyiBipartite(size_t num_left, size_t num_right,
                                   size_t num_edges, Rng* rng) {
  const uint64_t universe =
      static_cast<uint64_t>(num_left) * static_cast<uint64_t>(num_right);
  assert(num_edges <= universe);
  std::vector<BipartiteGraph::Edge> edges;
  edges.reserve(num_edges);
  for (uint64_t slot : rng->SampleDistinct(universe, num_edges)) {
    edges.emplace_back(static_cast<VertexId>(slot / num_right),
                       static_cast<VertexId>(slot % num_right));
  }
  return BipartiteGraph::FromEdges(num_left, num_right, std::move(edges));
}

BipartiteGraph ErdosRenyiProbBipartite(size_t num_left, size_t num_right,
                                       double p, Rng* rng) {
  std::vector<BipartiteGraph::Edge> edges;
  for (VertexId l = 0; l < num_left; ++l) {
    for (VertexId r = 0; r < num_right; ++r) {
      if (rng->NextBool(p)) edges.emplace_back(l, r);
    }
  }
  return BipartiteGraph::FromEdges(num_left, num_right, std::move(edges));
}

BipartiteGraph PowerLawBipartite(size_t num_left, size_t num_right,
                                 size_t target_edges, double gamma,
                                 Rng* rng) {
  return PowerLawBipartiteAsym(num_left, num_right, target_edges, gamma,
                               gamma, rng);
}

BipartiteGraph PowerLawBipartiteAsym(size_t num_left, size_t num_right,
                                     size_t target_edges, double gamma_left,
                                     double gamma_right, Rng* rng) {
  assert(gamma_left > 1.0 && gamma_right > 1.0);
  // Chung-Lu weight exponents per side.
  const std::vector<double> lcdf =
      PowerLawCdf(num_left, 1.0 / (gamma_left - 1.0));
  const std::vector<double> rcdf =
      PowerLawCdf(num_right, 1.0 / (gamma_right - 1.0));
  const uint64_t universe =
      static_cast<uint64_t>(num_left) * static_cast<uint64_t>(num_right);
  const size_t want = static_cast<size_t>(
      std::min<uint64_t>(target_edges, universe));

  std::unordered_set<uint64_t> seen;
  std::vector<BipartiteGraph::Edge> edges;
  edges.reserve(want);
  // Cap attempts so near-saturated requests still terminate.
  const size_t max_attempts = want * 20 + 1000;
  for (size_t attempts = 0; edges.size() < want && attempts < max_attempts;
       ++attempts) {
    VertexId l = static_cast<VertexId>(SampleCdf(lcdf, rng));
    VertexId r = static_cast<VertexId>(SampleCdf(rcdf, rng));
    if (seen.insert(EdgeKey(l, r)).second) edges.emplace_back(l, r);
  }
  // Top up with uniform edges if the skewed sampler saturated.
  while (edges.size() < want) {
    VertexId l = static_cast<VertexId>(rng->NextBelow(num_left));
    VertexId r = static_cast<VertexId>(rng->NextBelow(num_right));
    if (seen.insert(EdgeKey(l, r)).second) edges.emplace_back(l, r);
  }
  return BipartiteGraph::FromEdges(num_left, num_right, std::move(edges));
}

BipartiteGraph PlantDenseBlock(const BipartiteGraph& g, size_t block_left,
                               size_t block_right, double p_block,
                               Rng* rng) {
  std::vector<BipartiteGraph::Edge> edges = g.Edges();
  const VertexId l0 = static_cast<VertexId>(g.NumLeft());
  const VertexId r0 = static_cast<VertexId>(g.NumRight());
  for (size_t i = 0; i < block_left; ++i) {
    for (size_t j = 0; j < block_right; ++j) {
      if (rng->NextBool(p_block)) {
        edges.emplace_back(l0 + static_cast<VertexId>(i),
                           r0 + static_cast<VertexId>(j));
      }
    }
  }
  return BipartiteGraph::FromEdges(g.NumLeft() + block_left,
                                   g.NumRight() + block_right,
                                   std::move(edges));
}

BipartiteGraph RunningExampleGraph() {
  // v4 connects u0..u3 (misses only u4), so with k = 1 the initial solution
  // is H0 = ({v4}, {u0..u4}); v0..v3 each miss >= 2 right vertices so none
  // of them can join H0.
  std::vector<BipartiteGraph::Edge> edges = {
      {0, 0}, {0, 1}, {0, 2},          // v0: u0 u1 u2
      {1, 0}, {1, 1}, {1, 3},          // v1: u0 u1 u3
      {2, 1}, {2, 2}, {2, 4},          // v2: u1 u2 u4
      {3, 2}, {3, 3}, {3, 4},          // v3: u2 u3 u4
      {4, 0}, {4, 1}, {4, 2}, {4, 3},  // v4: u0 u1 u2 u3
  };
  return BipartiteGraph::FromEdges(5, 5, std::move(edges));
}

}  // namespace kbiplex
