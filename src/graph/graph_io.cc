#include "graph/graph_io.h"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string_view>
#include <vector>

namespace kbiplex {
namespace {

bool IsCommentOrEmpty(const std::string& line) {
  for (char c : line) {
    if (c == ' ' || c == '\t' || c == '\r') continue;
    return c == '%' || c == '#';
  }
  return true;  // blank line
}

/// Strict non-negative integer parse: the whole token must be digits, so
/// negative ids, floats ("0.5"), and trailing garbage ("3x") are rejected
/// instead of being silently truncated or wrapped the way stream
/// extraction into an unsigned would. At most 19 digits fit: their
/// maximum (~1.0e19) still fits uint64 (< 2^64 ~ 1.8e19) without
/// overflow; the id range itself is enforced by the caller.
bool ParseId(std::string_view token, uint64_t* out) {
  if (token.empty() || token.size() > 19) return false;
  uint64_t value = 0;
  for (char c : token) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

/// One scanned data line, reduced to exactly what parsing and header
/// disambiguation need — no per-token strings. Only the first line's
/// record is retained; later lines stream straight into the edge vector.
struct LineRec {
  size_t line_no = 0;
  uint32_t columns = 0;   // token count, saturated at 4 ("4 or more")
  bool ids_ok = false;    // the first two tokens parse as ids (a, b)
  bool third_ok = false;  // a third token exists and parses as an integer
  uint64_t a = 0;
  uint64_t b = 0;
  uint64_t c = 0;
};

LineRec ScanLine(const std::string& line, size_t line_no) {
  LineRec rec;
  rec.line_no = line_no;
  const auto is_blank = [](char ch) {
    return ch == ' ' || ch == '\t' || ch == '\r';
  };
  std::string_view tok[3];
  const std::string_view view(line);
  for (size_t i = 0; i < view.size();) {
    while (i < view.size() && is_blank(view[i])) ++i;
    if (i >= view.size()) break;
    const size_t start = i;
    while (i < view.size() && !is_blank(view[i])) ++i;
    if (rec.columns < 3) tok[rec.columns] = view.substr(start, i - start);
    if (rec.columns < 4) ++rec.columns;
  }
  rec.ids_ok = rec.columns >= 2 && ParseId(tok[0], &rec.a) &&
               ParseId(tok[1], &rec.b);
  rec.third_ok = rec.columns >= 3 && ParseId(tok[2], &rec.c);
  return rec;
}

}  // namespace

LoadResult ParseEdgeList(const std::string& text) {
  auto parse_error = [](size_t line_no, const std::string& why) {
    return LoadResult{std::nullopt, "parse error at line " +
                                        std::to_string(line_no) + ": " +
                                        why};
  };

  // Single streaming pass. The first data line is held back (it may be an
  // "L R M" header); every later line is validated immediately and its
  // edge appended, while the aggregates the header decision needs —
  // column uniformity, maximum ids, and the first line violating the
  // candidate header's declared ranges — are folded in on the fly.
  std::istringstream in(text);
  std::string line;
  size_t line_no = 0;
  bool have_first = false;
  LineRec first;
  std::vector<BipartiteGraph::Edge> edges;
  bool all_two_columns = true;
  uint64_t max_a = 0;
  uint64_t max_b = 0;
  size_t out_of_declared_range_line = 0;  // 0 = none
  while (std::getline(in, line)) {
    ++line_no;
    if (IsCommentOrEmpty(line)) continue;
    if (!have_first) {
      have_first = true;
      first = ScanLine(line, line_no);
      continue;
    }
    const LineRec rec = ScanLine(line, line_no);
    if (!rec.ids_ok) {
      return parse_error(rec.line_no, "expected two non-negative vertex ids");
    }
    if (rec.a >= kInvalidVertex || rec.b >= kInvalidVertex) {
      return parse_error(rec.line_no, "vertex id too large");
    }
    all_two_columns = all_two_columns && rec.columns == 2;
    max_a = std::max(max_a, rec.a);
    max_b = std::max(max_b, rec.b);
    if (out_of_declared_range_line == 0 &&
        (rec.a >= first.a || rec.b >= first.b)) {
      out_of_declared_range_line = rec.line_no;
    }
    edges.emplace_back(static_cast<VertexId>(rec.a),
                       static_cast<VertexId>(rec.b));
  }

  // Header detection. A first data line with exactly three integer
  // columns may be an "L R M" declaration or a KONECT-style weighted edge
  // "u v w"; the shape of the rest of the file disambiguates:
  //   - every later line has exactly two columns: the three-column line
  //     can only be a header, so its claim is validated loudly — the
  //     declared edge count must match and every id must be in range.
  //   - later lines carry extra columns (weighted/mixed data): the header
  //     interpretation is accepted when it validates (declared edge count
  //     matches, every id in range). If only the count is off while every
  //     id respects the declared sizes, both readings are suspect and the
  //     parse fails loudly instead of guessing; if the ids do not respect
  //     the sizes either, the line is an edge like the others (the fix
  //     for headerless weighted edge lists whose first edge used to be
  //     swallowed as a header).
  //   - a lone three-column line is a header only when it declares zero
  //     edges; otherwise it is a single weighted edge.
  // Duplicate edge lines are common in real interaction data and the
  // graph model collapses them, so a declared count may honestly refer to
  // distinct edges; computed lazily, only when the raw count mismatches.
  auto distinct_edge_count = [&edges] {
    std::vector<BipartiteGraph::Edge> copy = edges;
    std::sort(copy.begin(), copy.end());
    return static_cast<size_t>(
        std::unique(copy.begin(), copy.end()) - copy.begin());
  };

  bool have_header = false;
  uint64_t num_left = 0;
  uint64_t num_right = 0;
  if (have_first && first.columns == 3 && first.ids_ok && first.third_ok) {
    const uint64_t l = first.a;
    const uint64_t r = first.b;
    const uint64_t m = first.c;
    const bool range_ok = out_of_declared_range_line == 0;
    if (edges.empty()) {
      // A lone three-column line: an "L R M" header of an edgeless graph
      // when M = 0; with M > 0 it reads both as a truncated header and as
      // a single weighted edge — refuse to guess.
      if (m != 0) {
        return parse_error(
            first.line_no,
            "ambiguous three-column line: reads as an \"L R M\" header "
            "declaring " +
                std::to_string(m) +
                " edges in a file with no edge lines (truncated?), and as "
                "a single weighted edge");
      }
      if (l > kInvalidVertex || r > kInvalidVertex) {
        return parse_error(first.line_no, "declared side size too large");
      }
      have_header = true;
      num_left = l;
      num_right = r;
    } else if (all_two_columns) {
      if (l > kInvalidVertex || r > kInvalidVertex) {
        return parse_error(first.line_no, "declared side size too large");
      }
      if (m != edges.size() && m != distinct_edge_count()) {
        return parse_error(
            first.line_no, "header declares " + std::to_string(m) +
                               " edges but the file has " +
                               std::to_string(edges.size()) + " edge lines");
      }
      if (!range_ok) {
        return parse_error(out_of_declared_range_line,
                           "vertex id out of declared range");
      }
      have_header = true;
      num_left = l;
      num_right = r;
    } else if (l <= kInvalidVertex && r <= kInvalidVertex) {
      const bool count_ok =
          m == edges.size() || m == distinct_edge_count();
      if (count_ok && range_ok) {
        have_header = true;
        num_left = l;
        num_right = r;
      } else if (range_ok) {
        return parse_error(
            first.line_no,
            "ambiguous three-column first line: as an \"L R M\" header its "
            "declared edge count does not match the " +
                std::to_string(edges.size()) +
                " edge lines; fix the count or comment the line out if it "
                "is an edge");
      }
    }
  }
  if (!have_header) {
    // The held-back first line is an edge like the others; trailing
    // columns (weights, timestamps) are ignored throughout.
    if (have_first) {
      if (!first.ids_ok) {
        return parse_error(first.line_no,
                           "expected two non-negative vertex ids");
      }
      if (first.a >= kInvalidVertex || first.b >= kInvalidVertex) {
        return parse_error(first.line_no, "vertex id too large");
      }
      edges.emplace_back(static_cast<VertexId>(first.a),
                         static_cast<VertexId>(first.b));
      max_a = std::max(max_a, first.a);
      max_b = std::max(max_b, first.b);
    }
    if (!edges.empty()) {
      num_left = max_a + 1;
      num_right = max_b + 1;
    }
  }
  return {BipartiteGraph::FromEdges(num_left, num_right, std::move(edges)),
          ""};
}

LoadResult LoadEdgeList(const std::string& path) {
  std::ifstream f(path);
  if (!f) return {std::nullopt, "cannot open file: " + path};
  std::ostringstream buf;
  buf << f.rdbuf();
  return ParseEdgeList(buf.str());
}

std::string ToEdgeListString(const BipartiteGraph& g) {
  std::ostringstream out;
  out << "% kbiplex bipartite edge list\n";
  out << g.NumLeft() << " " << g.NumRight() << " " << g.NumEdges() << "\n";
  for (VertexId l = 0; l < g.NumLeft(); ++l) {
    for (VertexId r : g.LeftNeighbors(l)) {
      out << l << " " << r << "\n";
    }
  }
  return out.str();
}

std::string SaveEdgeList(const BipartiteGraph& g, const std::string& path) {
  std::ofstream f(path);
  if (!f) return "cannot open file for writing: " + path;
  f << ToEdgeListString(g);
  if (!f) return "write failure: " + path;
  return "";
}

}  // namespace kbiplex
