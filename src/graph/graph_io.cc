#include "graph/graph_io.h"

#include <cstdint>
#include <fstream>
#include <sstream>

namespace kbiplex {
namespace {

bool IsCommentOrEmpty(const std::string& line) {
  for (char c : line) {
    if (c == ' ' || c == '\t' || c == '\r') continue;
    return c == '%' || c == '#';
  }
  return true;  // blank line
}

}  // namespace

LoadResult ParseEdgeList(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  std::vector<BipartiteGraph::Edge> edges;
  uint64_t num_left = 0;
  uint64_t num_right = 0;
  bool have_header = false;
  bool first_data_line = true;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (IsCommentOrEmpty(line)) continue;
    std::istringstream ls(line);
    uint64_t a = 0, b = 0, c = 0;
    if (first_data_line) {
      first_data_line = false;
      if (ls >> a >> b >> c) {
        // "L R M" header.
        have_header = true;
        num_left = a;
        num_right = b;
        continue;
      }
      ls.clear();
      ls.str(line);
    }
    if (!(ls >> a >> b)) {
      return {std::nullopt,
              "parse error at line " + std::to_string(line_no) + ": '" +
                  line + "'"};
    }
    if (have_header && (a >= num_left || b >= num_right)) {
      return {std::nullopt, "vertex id out of declared range at line " +
                                std::to_string(line_no)};
    }
    edges.emplace_back(static_cast<VertexId>(a), static_cast<VertexId>(b));
    if (!have_header) {
      num_left = std::max(num_left, a + 1);
      num_right = std::max(num_right, b + 1);
    }
  }
  return {BipartiteGraph::FromEdges(num_left, num_right, std::move(edges)),
          ""};
}

LoadResult LoadEdgeList(const std::string& path) {
  std::ifstream f(path);
  if (!f) return {std::nullopt, "cannot open file: " + path};
  std::ostringstream buf;
  buf << f.rdbuf();
  return ParseEdgeList(buf.str());
}

std::string ToEdgeListString(const BipartiteGraph& g) {
  std::ostringstream out;
  out << "% kbiplex bipartite edge list\n";
  out << g.NumLeft() << " " << g.NumRight() << " " << g.NumEdges() << "\n";
  for (VertexId l = 0; l < g.NumLeft(); ++l) {
    for (VertexId r : g.LeftNeighbors(l)) {
      out << l << " " << r << "\n";
    }
  }
  return out.str();
}

std::string SaveEdgeList(const BipartiteGraph& g, const std::string& path) {
  std::ofstream f(path);
  if (!f) return "cannot open file for writing: " + path;
  f << ToEdgeListString(g);
  if (!f) return "write failure: " + path;
  return "";
}

}  // namespace kbiplex
