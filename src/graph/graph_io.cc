#include "graph/graph_io.h"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string_view>
#include <vector>

namespace kbiplex {
namespace {

bool IsCommentOrEmpty(std::string_view line) {
  for (char c : line) {
    if (c == ' ' || c == '\t' || c == '\r') continue;
    return c == '%' || c == '#';
  }
  return true;  // blank line
}

/// Strict non-negative integer parse: the whole token must be digits, so
/// negative ids, floats ("0.5"), and trailing garbage ("3x") are rejected
/// instead of being silently truncated or wrapped the way stream
/// extraction into an unsigned would. At most 19 digits fit: their
/// maximum (~1.0e19) still fits uint64 (< 2^64 ~ 1.8e19) without
/// overflow; the id range itself is enforced by the caller.
bool ParseId(std::string_view token, uint64_t* out) {
  if (token.empty() || token.size() > 19) return false;
  uint64_t value = 0;
  for (char c : token) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

/// One scanned data line, reduced to exactly what parsing and header
/// disambiguation need — no per-token strings. Only the first line's
/// record is retained; later lines stream straight into the edge vector.
struct LineRec {
  size_t line_no = 0;
  uint32_t columns = 0;   // token count, saturated at 4 ("4 or more")
  bool ids_ok = false;    // the first two tokens parse as ids (a, b)
  bool third_ok = false;  // a third token exists and parses as an integer
  uint64_t a = 0;
  uint64_t b = 0;
  uint64_t c = 0;
};

LineRec ScanLine(std::string_view view, size_t line_no) {
  LineRec rec;
  rec.line_no = line_no;
  const auto is_blank = [](char ch) {
    return ch == ' ' || ch == '\t' || ch == '\r';
  };
  std::string_view tok[3];
  for (size_t i = 0; i < view.size();) {
    while (i < view.size() && is_blank(view[i])) ++i;
    if (i >= view.size()) break;
    const size_t start = i;
    while (i < view.size() && !is_blank(view[i])) ++i;
    if (rec.columns < 3) tok[rec.columns] = view.substr(start, i - start);
    if (rec.columns < 4) ++rec.columns;
  }
  rec.ids_ok = rec.columns >= 2 && ParseId(tok[0], &rec.a) &&
               ParseId(tok[1], &rec.b);
  rec.third_ok = rec.columns >= 3 && ParseId(tok[2], &rec.c);
  return rec;
}

/// Incremental edge-list parser: feed lines one at a time (Consume) and
/// resolve the header decision once at end of input (Finish). Holds the
/// first data line back (it may be an "L R M" header); every later line
/// is validated immediately and its edge appended, while the aggregates
/// the header decision needs — column uniformity, maximum ids, and the
/// first line violating the candidate header's declared ranges — are
/// folded in on the fly. Peak state is the edge vector plus O(1)
/// scalars, which is what lets LoadEdgeList stream a file it never holds
/// whole.
class EdgeListStreamParser {
 public:
  /// Feeds the next line (without its '\n'; a trailing '\r' is
  /// tolerated). Returns false once a parse error is recorded — callers
  /// may stop reading input at that point.
  bool Consume(std::string_view line) {
    ++line_no_;
    if (failed_ || IsCommentOrEmpty(line)) return !failed_;
    if (!have_first_) {
      have_first_ = true;
      first_ = ScanLine(line, line_no_);
      return true;
    }
    const LineRec rec = ScanLine(line, line_no_);
    if (!rec.ids_ok) {
      return Fail(rec.line_no, "expected two non-negative vertex ids");
    }
    if (rec.a >= kInvalidVertex || rec.b >= kInvalidVertex) {
      return Fail(rec.line_no, "vertex id too large");
    }
    all_two_columns_ = all_two_columns_ && rec.columns == 2;
    max_a_ = std::max(max_a_, rec.a);
    max_b_ = std::max(max_b_, rec.b);
    if (out_of_declared_range_line_ == 0 &&
        (rec.a >= first_.a || rec.b >= first_.b)) {
      out_of_declared_range_line_ = rec.line_no;
    }
    edges_.emplace_back(static_cast<VertexId>(rec.a),
                        static_cast<VertexId>(rec.b));
    return true;
  }

  /// Ends the input: disambiguates the held-back first line (header vs
  /// edge) and builds the graph. The parser is spent afterwards.
  LoadResult Finish() {
    if (failed_) return {std::nullopt, error_};
    // Header detection. A first data line with exactly three integer
    // columns may be an "L R M" declaration or a KONECT-style weighted
    // edge "u v w"; the shape of the rest of the file disambiguates:
    //   - every later line has exactly two columns: the three-column line
    //     can only be a header, so its claim is validated loudly — the
    //     declared edge count must match and every id must be in range.
    //   - later lines carry extra columns (weighted/mixed data): the
    //     header interpretation is accepted when it validates (declared
    //     edge count matches, every id in range). If only the count is
    //     off while every id respects the declared sizes, both readings
    //     are suspect and the parse fails loudly instead of guessing; if
    //     the ids do not respect the sizes either, the line is an edge
    //     like the others (the fix for headerless weighted edge lists
    //     whose first edge used to be swallowed as a header).
    //   - a lone three-column line is a header only when it declares zero
    //     edges; otherwise it is a single weighted edge.
    // Duplicate edge lines are common in real interaction data and the
    // graph model collapses them, so a declared count may honestly refer
    // to distinct edges; computed lazily, only when the raw count
    // mismatches.
    const auto distinct_edge_count = [this] {
      std::vector<BipartiteGraph::Edge> copy = edges_;
      std::sort(copy.begin(), copy.end());
      return static_cast<size_t>(std::unique(copy.begin(), copy.end()) -
                                 copy.begin());
    };

    bool have_header = false;
    uint64_t num_left = 0;
    uint64_t num_right = 0;
    if (have_first_ && first_.columns == 3 && first_.ids_ok &&
        first_.third_ok) {
      const uint64_t l = first_.a;
      const uint64_t r = first_.b;
      const uint64_t m = first_.c;
      const bool range_ok = out_of_declared_range_line_ == 0;
      if (edges_.empty()) {
        // A lone three-column line: an "L R M" header of an edgeless
        // graph when M = 0; with M > 0 it reads both as a truncated
        // header and as a single weighted edge — refuse to guess.
        if (m != 0) {
          Fail(first_.line_no,
               "ambiguous three-column line: reads as an \"L R M\" header "
               "declaring " +
                   std::to_string(m) +
                   " edges in a file with no edge lines (truncated?), and "
                   "as a single weighted edge");
          return {std::nullopt, error_};
        }
        if (l > kInvalidVertex || r > kInvalidVertex) {
          Fail(first_.line_no, "declared side size too large");
          return {std::nullopt, error_};
        }
        have_header = true;
        num_left = l;
        num_right = r;
      } else if (all_two_columns_) {
        if (l > kInvalidVertex || r > kInvalidVertex) {
          Fail(first_.line_no, "declared side size too large");
          return {std::nullopt, error_};
        }
        if (m != edges_.size() && m != distinct_edge_count()) {
          Fail(first_.line_no,
               "header declares " + std::to_string(m) +
                   " edges but the file has " +
                   std::to_string(edges_.size()) + " edge lines");
          return {std::nullopt, error_};
        }
        if (!range_ok) {
          Fail(out_of_declared_range_line_,
               "vertex id out of declared range");
          return {std::nullopt, error_};
        }
        have_header = true;
        num_left = l;
        num_right = r;
      } else if (l <= kInvalidVertex && r <= kInvalidVertex) {
        const bool count_ok =
            m == edges_.size() || m == distinct_edge_count();
        if (count_ok && range_ok) {
          have_header = true;
          num_left = l;
          num_right = r;
        } else if (range_ok) {
          Fail(first_.line_no,
               "ambiguous three-column first line: as an \"L R M\" header "
               "its declared edge count does not match the " +
                   std::to_string(edges_.size()) +
                   " edge lines; fix the count or comment the line out if "
                   "it is an edge");
          return {std::nullopt, error_};
        }
      }
    }
    if (!have_header) {
      // The held-back first line is an edge like the others; trailing
      // columns (weights, timestamps) are ignored throughout.
      if (have_first_) {
        if (!first_.ids_ok) {
          Fail(first_.line_no, "expected two non-negative vertex ids");
          return {std::nullopt, error_};
        }
        if (first_.a >= kInvalidVertex || first_.b >= kInvalidVertex) {
          Fail(first_.line_no, "vertex id too large");
          return {std::nullopt, error_};
        }
        edges_.emplace_back(static_cast<VertexId>(first_.a),
                            static_cast<VertexId>(first_.b));
        max_a_ = std::max(max_a_, first_.a);
        max_b_ = std::max(max_b_, first_.b);
      }
      if (!edges_.empty()) {
        num_left = max_a_ + 1;
        num_right = max_b_ + 1;
      }
    }
    return {BipartiteGraph::FromEdges(num_left, num_right,
                                      std::move(edges_)),
            ""};
  }

 private:
  bool Fail(size_t line_no, const std::string& why) {
    failed_ = true;
    error_ = "parse error at line " + std::to_string(line_no) + ": " + why;
    return false;
  }

  size_t line_no_ = 0;
  bool have_first_ = false;
  bool failed_ = false;
  std::string error_;
  LineRec first_;
  std::vector<BipartiteGraph::Edge> edges_;
  bool all_two_columns_ = true;
  uint64_t max_a_ = 0;
  uint64_t max_b_ = 0;
  size_t out_of_declared_range_line_ = 0;  // 0 = none
};

}  // namespace

LoadResult ParseEdgeList(const std::string& text) {
  EdgeListStreamParser parser;
  const std::string_view view(text);
  size_t pos = 0;
  while (pos < view.size()) {
    size_t nl = view.find('\n', pos);
    if (nl == std::string_view::npos) nl = view.size();
    if (!parser.Consume(view.substr(pos, nl - pos))) break;
    pos = nl + 1;
  }
  return parser.Finish();
}

LoadResult LoadEdgeList(const std::string& path, size_t chunk_bytes) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return {std::nullopt, "cannot open file: " + path};
  if (chunk_bytes == 0) chunk_bytes = 1;

  // Bounded-buffer line reader: one chunk in flight plus the carryover of
  // a line straddling the chunk boundary. The parser never sees chunk
  // edges — only whole lines — so every header heuristic behaves exactly
  // as it does on an in-memory string.
  EdgeListStreamParser parser;
  std::string chunk(chunk_bytes, '\0');
  std::string carry;
  bool stopped = false;
  while (!stopped && f) {
    f.read(chunk.data(), static_cast<std::streamsize>(chunk.size()));
    const size_t got = static_cast<size_t>(f.gcount());
    if (got == 0) break;
    const std::string_view view(chunk.data(), got);
    size_t pos = 0;
    while (pos < got) {
      const size_t nl = view.find('\n', pos);
      if (nl == std::string_view::npos) {
        carry.append(view.substr(pos));
        break;
      }
      bool ok;
      if (carry.empty()) {
        ok = parser.Consume(view.substr(pos, nl - pos));
      } else {
        carry.append(view.substr(pos, nl - pos));
        ok = parser.Consume(carry);
        carry.clear();
      }
      if (!ok) {
        stopped = true;  // error recorded; Finish() reports it
        break;
      }
      pos = nl + 1;
    }
  }
  // A final line without a trailing newline still counts.
  if (!stopped && !carry.empty()) parser.Consume(carry);
  return parser.Finish();
}

std::string ToEdgeListString(const BipartiteGraph& g) {
  std::ostringstream out;
  out << "% kbiplex bipartite edge list\n";
  out << g.NumLeft() << " " << g.NumRight() << " " << g.NumEdges() << "\n";
  for (VertexId l = 0; l < g.NumLeft(); ++l) {
    for (VertexId r : g.LeftNeighbors(l)) {
      out << l << " " << r << "\n";
    }
  }
  return out.str();
}

std::string SaveEdgeList(const BipartiteGraph& g, const std::string& path) {
  std::ofstream f(path);
  if (!f) return "cannot open file for writing: " + path;
  f << ToEdgeListString(g);
  if (!f) return "write failure: " + path;
  return "";
}

}  // namespace kbiplex
