// The one EnumerateRequest wire grammar, shared by every front end that
// accepts requests from outside the process: the CLI `enumerate` / `large`
// argv flags, the CLI `batch` query lines, and the serving daemon's NDJSON
// protocol (serve/). Both forms reject unknown keys and malformed values
// with a structured error instead of silently ignoring them — typos must
// surface before the request runs, because a silently dropped constraint
// changes the answer, not just the performance.
//
// Flag form (argv tokens or a whitespace-split query line):
//
//   --algo NAME --k N | --kl N --kr N
//   --theta-l N --theta-r N --max N --budget SECONDS --max-links N
//   --threads N --opt KEY=VALUE ...
//
// JSON form (the `request` object of the wire protocol, see
// docs/wire_protocol.md):
//
//   {"algo": "itraversal", "k": 2, "kl": 2, "kr": 1,
//    "theta_l": 3, "theta_r": 3, "max": 100, "budget_s": 1.5,
//    "max_links": 0, "threads": 4, "options": {"KEY": "VALUE", ...}}
#ifndef KBIPLEX_API_REQUEST_PARSE_H_
#define KBIPLEX_API_REQUEST_PARSE_H_

#include <string>
#include <vector>

#include "api/enumerate_request.h"
#include "util/json_value.h"

namespace kbiplex {

/// Outcome of consuming one flag token.
enum class RequestFlagParse {
  kConsumed,  // the flag (and its value tokens) were applied to the request
  kUnknown,   // not a request flag; the caller may know it (CLI-only flags)
  kError,     // a request flag with a missing or malformed value
};

/// Parses tokens[*i] (plus its value tokens) into `request`. Advances *i
/// past consumed tokens on kConsumed; fills `error` on kError. The CLI
/// uses this directly so command-specific flags (--format, --queries, ...)
/// can interleave with request flags.
RequestFlagParse ParseRequestFlag(const std::vector<std::string>& tokens,
                                  size_t* i, EnumerateRequest* request,
                                  std::string* error);

/// Parses a whole query line (whitespace-split request flags, the `batch`
/// grammar) into `request`. Returns the error, empty on success; unknown
/// flags are errors here — a query line has no command-specific flags.
std::string ParseRequestLine(const std::string& line,
                             EnumerateRequest* request);

/// Parses the JSON form into `request`. `value` must be a JSON object;
/// unknown keys, wrong member types, and out-of-range numbers are errors.
/// Returns the error, empty on success.
std::string ParseRequestJson(const json::JsonValue& value,
                             EnumerateRequest* request);

/// Serializes `request` as the JSON form, inverse of ParseRequestJson for
/// every field the wire carries (the cancellation pointer is process-local
/// and never serialized). Used by clients that build wire requests from a
/// parsed flag line.
std::string RequestToWireJson(const EnumerateRequest& request);

// Strict full-token numeric parsing shared by the flag grammar: trailing
// garbage ("5x"), a lone "-", and negative values for unsigned fields are
// errors, not silently-truncated or wrapped values. Exposed for front ends
// that parse their own command-specific flags with identical strictness.
bool ParseInt(const std::string& s, int* out);
bool ParseUint64(const std::string& s, uint64_t* out);
bool ParseSize(const std::string& s, size_t* out);
bool ParseDouble(const std::string& s, double* out);

}  // namespace kbiplex

#endif  // KBIPLEX_API_REQUEST_PARSE_H_
