#include "api/query_session.h"

#include <algorithm>
#include <optional>
#include <string>
#include <utility>

#include "api/parallel_driver.h"
#include "util/timer.h"

namespace kbiplex {
namespace {

EnumerateStats Rejected(std::string message) {
  EnumerateStats out;
  out.error = std::move(message);
  out.completed = false;
  return out;
}

/// Translates execution-graph ids back to input-graph ids before
/// forwarding to the caller's sink. Stateless apart from the forwarding
/// targets, so it inherits the inner sink's threading contract.
class MapBackSink final : public SolutionSink {
 public:
  MapBackSink(const RenumberedGraph* renumbering, SolutionSink* inner)
      : renumbering_(renumbering), inner_(inner) {}

  bool Accept(const Biplex& solution) override {
    VertexSetPair mapped =
        renumbering_->MapBack(solution.left, solution.right);
    Biplex original{std::move(mapped.left), std::move(mapped.right)};
    return inner_->Accept(original);
  }

  bool ThreadCompatible() const override {
    return inner_->ThreadCompatible();
  }

 private:
  const RenumberedGraph* renumbering_;
  SolutionSink* inner_;
};

/// True iff the cached (a,a)-core bound proves the request's result set
/// empty: a solution with |L'| >= theta_left and |R'| >= theta_right keeps
/// every left vertex at degree >= theta_right - k.left and every right
/// vertex at degree >= theta_left - k.right, so it lies inside the
/// corresponding (α,β)-core — which is empty whenever min(α,β) exceeds
/// the largest non-empty uniform core.
bool CoreBoundProvesEmpty(const PreparedGraph& prepared,
                          const EnumerateRequest& request) {
  if (request.theta_left == 0 || request.theta_right == 0) return false;
  const size_t kl = static_cast<size_t>(request.k.left);
  const size_t kr = static_cast<size_t>(request.k.right);
  if (request.theta_right <= kl || request.theta_left <= kr) return false;
  const size_t alpha = request.theta_right - kl;  // left-side degree demand
  const size_t beta = request.theta_left - kr;    // right-side degree demand
  return std::min(alpha, beta) > prepared.MaxUniformCore();
}

}  // namespace

namespace internal {

EnumerateStats RunOnPrepared(const PreparedGraph& prepared,
                             TraversalScratch* scratch,
                             const AlgorithmRegistry& registry,
                             const EnumerateRequest& request,
                             SolutionSink* sink, bool* short_circuited) {
  if (short_circuited != nullptr) *short_circuited = false;
  const std::string name = NormalizeAlgorithmName(request.algorithm);
  std::optional<AlgorithmInfo> info = registry.Find(name);
  if (!info.has_value()) {
    std::string names;
    for (const std::string& n : registry.Names()) {
      if (!names.empty()) names += ", ";
      names += n;
    }
    EnumerateStats out = Rejected("unknown algorithm '" + request.algorithm +
                                  "'; registered: " + names);
    out.algorithm = name;
    return out;
  }

  const BipartiteGraph& exec = prepared.ExecutionGraph();
  EnumerateStats out;
  if (request.k.left < 1 || request.k.right < 1) {
    out = Rejected("disconnection budgets must be >= 1");
  } else if (request.threads < 0) {
    out = Rejected("threads must be >= 0 (0 = one per hardware thread)");
  } else if (request.threads != 1 && !sink->ThreadCompatible()) {
    // Deterministic contract check: any request asking for parallel
    // delivery is rejected with an incompatible sink, even when the
    // driver would have fallen back to the sequential path — whether a
    // parallel plan engages depends on the graph and the hardware, and a
    // sink contract must not.
    out = Rejected(
        "threads = " + std::to_string(request.threads) +
        " asks for delivery from worker threads, but the sink does "
        "not declare thread compatibility; wrap it in SynchronizedSink or "
        "override SolutionSink::ThreadCompatible() (see "
        "api/solution_sink.h)");
  } else if (!info->supports_asymmetric_k && !request.k.IsUniform()) {
    out = Rejected("algorithm '" + name +
                   "' requires uniform budgets (k.left == k.right)");
  } else if (info->requires_theta &&
             (request.theta_left < 1 || request.theta_right < 1)) {
    out = Rejected("algorithm '" + name +
                   "' requires theta_left >= 1 and theta_right >= 1");
  } else if (info->max_side != 0 && (exec.NumLeft() > info->max_side ||
                                     exec.NumRight() > info->max_side)) {
    out = Rejected("algorithm '" + name + "' supports at most " +
                   std::to_string(info->max_side) + " vertices per side");
  } else if (Cancelled(request.cancellation)) {
    out.completed = false;
    out.cancelled = true;
  } else if (prepared.options().core_bound_shortcut &&
             request.backend_options.empty() &&
             CoreBoundProvesEmpty(prepared, request)) {
    // Provably empty result set: answer from the cached core bound without
    // touching a backend. Restricted to option-free requests so a request
    // with a bad backend option is still rejected, exactly like a run —
    // and to graphs prepared with the shortcut enabled, so the one-shot
    // compatibility paths keep the pre-session stats (backend counters
    // and all) byte for byte and never pay the core-bound build.
    WallTimer timer;
    if (short_circuited != nullptr) *short_circuited = true;
    out.completed = true;
    out.seconds = timer.ElapsedSeconds();
  } else {
    // Renumbered execution graphs deliver execution ids; map them back to
    // input ids right before the caller's sink (threshold filtering and
    // result caps act on sizes, which renumbering preserves).
    MapBackSink mapper(prepared.renumbered() ? &prepared.Renumbering()
                                             : nullptr,
                       sink);
    SolutionSink* delivery =
        prepared.renumbered() ? static_cast<SolutionSink*>(&mapper) : sink;
    QueryContext ctx{&prepared, scratch};
    std::optional<EnumerateStats> parallel;
    if (request.threads != 1) {
      parallel =
          TryRunParallel(prepared, request, registry, *info, delivery);
    }
    out = parallel.has_value()
              ? std::move(*parallel)
              : registry.Create(name)->Run(ctx, request, delivery);
    if (!out.ok()) out.completed = false;
    if (!out.completed && Cancelled(request.cancellation)) {
      out.cancelled = true;
    }
  }
  out.algorithm = name;
  return out;
}

}  // namespace internal

QuerySession::QuerySession(std::shared_ptr<const PreparedGraph> prepared,
                           const AlgorithmRegistry& registry)
    : prepared_(std::move(prepared)), registry_(&registry) {}

EnumerateStats QuerySession::Run(const EnumerateRequest& request,
                                 SolutionSink* sink) {
  ++queries_run_;
  bool short_circuited = false;
  // The session's scratch is single-threaded state; parallel plans spawn
  // workers with their own per-run scratch (the driver never forwards it).
  EnumerateStats out = internal::RunOnPrepared(
      *prepared_, &scratch_, *registry_, request, sink, &short_circuited);
  if (short_circuited) ++short_circuits_;
  return out;
}

EnumerateStats QuerySession::Run(
    const EnumerateRequest& request,
    const std::function<bool(const Biplex&)>& cb) {
  CallbackSink sink(cb);
  return Run(request, &sink);
}

std::vector<Biplex> QuerySession::Collect(const EnumerateRequest& request,
                                          EnumerateStats* stats) {
  CollectingSink sink;
  EnumerateStats s = Run(request, &sink);
  if (stats != nullptr) *stats = s;
  return sink.Take();
}

uint64_t QuerySession::Count(const EnumerateRequest& request,
                             EnumerateStats* stats) {
  CountingSink sink;
  EnumerateStats s = Run(request, &sink);
  if (stats != nullptr) *stats = s;
  return sink.count();
}

}  // namespace kbiplex
