#include "api/prepared_graph.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "util/json.h"
#include "util/timer.h"

namespace kbiplex {
namespace {

/// Largest a with a non-empty (a,a)-core, via one joint min-degree peel
/// over both sides (the bipartite graph's degeneracy: the (a,a)-core is
/// the a-core of the underlying general graph, so the bound equals the
/// maximum residual degree observed at removal time). O(|V| + |E|) with a
/// lazily-cleaned bucket queue, against O(degeneracy * (|V| + |E|)) for
/// repeated core peels.
size_t ComputeMaxUniformCore(const BipartiteGraph& g) {
  const size_t nl = g.NumLeft();
  const size_t n = nl + g.NumRight();
  if (g.NumEdges() == 0) return 0;
  // Joint vertex ids: left v -> v, right u -> nl + u.
  std::vector<size_t> deg(n);
  size_t max_degree = 0;
  for (size_t v = 0; v < nl; ++v) {
    deg[v] = g.LeftDegree(static_cast<VertexId>(v));
    max_degree = std::max(max_degree, deg[v]);
  }
  for (size_t u = nl; u < n; ++u) {
    deg[u] = g.RightDegree(static_cast<VertexId>(u - nl));
    max_degree = std::max(max_degree, deg[u]);
  }
  std::vector<std::vector<size_t>> buckets(max_degree + 1);
  for (size_t v = 0; v < n; ++v) buckets[deg[v]].push_back(v);
  std::vector<char> removed(n, 0);
  size_t degeneracy = 0;
  size_t cur = 0;
  for (size_t peeled = 0; peeled < n;) {
    if (cur > max_degree) break;  // only stale entries were left
    if (buckets[cur].empty()) {
      ++cur;
      continue;
    }
    const size_t v = buckets[cur].back();
    buckets[cur].pop_back();
    if (removed[v] != 0 || deg[v] != cur) continue;  // stale entry
    removed[v] = 1;
    ++peeled;
    degeneracy = std::max(degeneracy, cur);
    const bool is_left = v < nl;
    for (VertexId w : is_left
                          ? g.LeftNeighbors(static_cast<VertexId>(v))
                          : g.RightNeighbors(static_cast<VertexId>(v - nl))) {
      const size_t wi = is_left ? nl + static_cast<size_t>(w)
                                : static_cast<size_t>(w);
      if (removed[wi] != 0) continue;
      buckets[--deg[wi]].push_back(wi);
      cur = std::min(cur, deg[wi]);
    }
  }
  return degeneracy;
}

}  // namespace

std::shared_ptr<const PreparedGraph> PreparedGraph::Prepare(
    BipartiteGraph g, PrepareOptions options) {
  return std::shared_ptr<const PreparedGraph>(
      new PreparedGraph(std::move(g), options));
}

std::shared_ptr<const PreparedGraph> PreparedGraph::Borrow(
    const BipartiteGraph& g) {
  // A borrowed graph is never mutated, so every artifact that would attach
  // to it is disabled — and the shim semantics (pre-session behavior,
  // byte for byte) also rule out the short-circuit; execution matches a
  // direct run on `g`.
  PrepareOptions options;
  options.adjacency_index = AdjacencyAccelMode::kOff;
  options.renumber = false;
  options.core_bound_shortcut = false;
  return std::shared_ptr<const PreparedGraph>(new PreparedGraph(&g, options));
}

PreparedGraph::PreparedGraph(BipartiteGraph g, PrepareOptions options)
    : options_(options),
      owned_(std::make_unique<BipartiteGraph>(std::move(g))),
      graph_(owned_.get()) {}

PreparedGraph::PreparedGraph(const BipartiteGraph* view,
                             PrepareOptions options)
    : options_(options), graph_(view) {}

void PreparedGraph::BuildExecutionGraph() const {
  WallTimer timer;
  BipartiteGraph* target = owned_.get();  // null in view mode
  if (options_.renumber) {
    renumbering_ = RenumberByDegeneracy(*graph_);
    target = &renumbering_.graph;
  }
  bool attach = false;
  switch (options_.adjacency_index) {
    case AdjacencyAccelMode::kOff:
      break;
    case AdjacencyAccelMode::kAuto:
      // Same threshold at which an engine would build a throwaway per-run
      // index, so kAuto never attaches where no engine would want one.
      attach = graph_->NumEdges() >= kAutoIndexMinEdges;
      break;
    case AdjacencyAccelMode::kForce:
      attach = true;
      break;
  }
  if (attach && target != nullptr) {
    target->BuildAdjacencyIndex(options_.adjacency_min_degree,
                                options_.accel_budget_bytes);
    counters_.RecordAdjacency(*target->adjacency_index());
  }
  exec_graph_ = target != nullptr ? target : graph_;
  counters_.Count(&PrepareArtifactStats::execution_graph_builds,
                  timer.ElapsedSeconds());
}

const BipartiteGraph& PreparedGraph::ExecutionGraph() const {
  std::call_once(exec_once_, [this] {
    BuildExecutionGraph();
    exec_built_.store(true, std::memory_order_release);
  });
  return *exec_graph_;
}

const RenumberedGraph& PreparedGraph::Renumbering() const {
  ExecutionGraph();  // ensure the renumbering is built
  return renumbering_;
}

const ComponentLabeling& PreparedGraph::Components() const {
  std::call_once(components_once_, [this] {
    // Resolve the execution graph before starting the timer so a lazily
    // triggered renumber/index build is not double-counted here.
    const BipartiteGraph& g = ExecutionGraph();
    WallTimer timer;
    components_ = LabelConnectedComponents(g);
    counters_.Count(&PrepareArtifactStats::component_builds,
                    timer.ElapsedSeconds());
    components_built_.store(true, std::memory_order_release);
  });
  return components_;
}

const std::vector<InducedSubgraph>& PreparedGraph::ComponentSubgraphs()
    const {
  std::call_once(component_subgraphs_once_, [this] {
    const BipartiteGraph& g = ExecutionGraph();  // outside the timed region
    WallTimer timer;
    // ConnectedComponents numbers components exactly like
    // LabelConnectedComponents (by smallest (side, id) vertex), so the
    // result is index-aligned with Components() by construction.
    component_subgraphs_ = ConnectedComponents(g);
    counters_.Count(&PrepareArtifactStats::component_subgraph_builds,
                    timer.ElapsedSeconds());
  });
  return component_subgraphs_;
}

size_t PreparedGraph::MaxUniformCore() const {
  std::call_once(core_bound_once_, [this] {
    const BipartiteGraph& g = ExecutionGraph();  // outside the timed region
    WallTimer timer;
    max_uniform_core_ = ComputeMaxUniformCore(g);
    counters_.Count(&PrepareArtifactStats::core_bound_builds,
                    timer.ElapsedSeconds());
    core_bound_built_.store(true, std::memory_order_release);
  });
  return max_uniform_core_;
}

void PreparedGraph::Warmup() const {
  ExecutionGraph();
  Components();
  MaxUniformCore();
}

PrepareArtifactStats PreparedGraph::artifact_stats() const {
  return counters_.Snapshot();
}

std::string PrepareArtifactStats::ToJson() const {
  std::ostringstream os;
  os << "{\"execution_graph_builds\":" << execution_graph_builds
     << ",\"component_builds\":" << component_builds
     << ",\"component_subgraph_builds\":" << component_subgraph_builds
     << ",\"core_bound_builds\":" << core_bound_builds
     << ",\"build_seconds\":";
  json::AppendDouble(os, build_seconds);
  os << ",\"adjacency_memory_bytes\":" << adjacency_memory_bytes
     << ",\"adjacency_dense_rows\":" << adjacency_dense_rows
     << ",\"adjacency_sparse_rows\":" << adjacency_sparse_rows
     << ",\"adjacency_dropped_rows\":" << adjacency_dropped_rows
     << ",\"adjacency_dense_bytes\":" << adjacency_dense_bytes
     << ",\"adjacency_sparse_bytes\":" << adjacency_sparse_bytes << '}';
  return os.str();
}

std::string UpdateLineage::ToJson() const {
  std::ostringstream os;
  os << "{\"epoch\":" << epoch << ",\"updates_applied\":" << updates_applied
     << ",\"edges_inserted\":" << edges_inserted
     << ",\"edges_deleted\":" << edges_deleted
     << ",\"full_rebuilds\":" << full_rebuilds
     << ",\"artifacts_incremental\":" << artifacts_incremental
     << ",\"artifacts_rebuilt\":" << artifacts_rebuilt
     << ",\"apply_seconds\":";
  json::AppendDouble(os, apply_seconds);
  os << '}';
  return os.str();
}

}  // namespace kbiplex
