#include "api/stats_aggregator.h"

#include <cmath>
#include <sstream>

#include "util/json.h"

namespace kbiplex {

namespace {

/// Bucket 0 upper bound and the per-bucket growth factor: three buckets
/// per factor of two, starting at 1 microsecond.
constexpr double kFirstUpper = 1e-6;
constexpr double kGrowth = 1.2599210498948732;  // 2^(1/3)

}  // namespace

size_t LatencyHistogram::BucketOf(double seconds) {
  if (!(seconds > kFirstUpper)) return 0;
  const double b = std::log(seconds / kFirstUpper) / std::log(kGrowth);
  const size_t bucket = static_cast<size_t>(b) + 1;
  return bucket < kBuckets ? bucket : kBuckets - 1;
}

double LatencyHistogram::UpperBound(size_t bucket) {
  return kFirstUpper * std::pow(kGrowth, static_cast<double>(bucket));
}

void LatencyHistogram::Record(double seconds) {
  ++buckets_[BucketOf(seconds)];
  ++count_;
}

double LatencyHistogram::Quantile(double q) const {
  if (count_ == 0) return 0;
  // Rank of the q-quantile, 1-based; ceil so Quantile(1.0) is the max
  // bucket and Quantile(0.5) the median element's bucket.
  const uint64_t rank = static_cast<uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  uint64_t seen = 0;
  for (size_t b = 0; b < kBuckets; ++b) {
    seen += buckets_[b];
    if (seen >= rank) return UpperBound(b);
  }
  return UpperBound(kBuckets - 1);
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (size_t b = 0; b < kBuckets; ++b) buckets_[b] += other.buckets_[b];
  count_ += other.count_;
}

void RequestAggregate::Add(const EnumerateStats& stats) {
  ++requests;
  if (!stats.ok()) ++errors;
  if (!stats.completed) ++incomplete;
  if (stats.cancelled) ++cancelled;
  solutions += stats.solutions;
  work_units += stats.work_units;
  total_seconds += stats.seconds;
}

void RequestAggregate::Merge(const RequestAggregate& other) {
  requests += other.requests;
  errors += other.errors;
  incomplete += other.incomplete;
  cancelled += other.cancelled;
  solutions += other.solutions;
  work_units += other.work_units;
  total_seconds += other.total_seconds;
}

void StatsAggregator::Record(const std::string& graph,
                             const std::string& algorithm,
                             const EnumerateStats& stats) {
  MutexLock lock(&mu_);
  total_.Add(stats);
  per_graph_[graph].Add(stats);
  AlgoAggregate& a = per_algo_[algorithm];
  a.agg.Add(stats);
  a.latency.Record(stats.seconds);
}

RequestAggregate StatsAggregator::Total() const {
  MutexLock lock(&mu_);
  return total_;
}

namespace {

void AppendAggregate(std::ostream& os, const RequestAggregate& a) {
  os << "{\"requests\":" << a.requests << ",\"errors\":" << a.errors
     << ",\"incomplete\":" << a.incomplete << ",\"cancelled\":" << a.cancelled
     << ",\"solutions\":" << a.solutions << ",\"work_units\":" << a.work_units
     << ",\"total_seconds\":";
  json::AppendDouble(os, a.total_seconds);
  os << "}";
}

}  // namespace

std::string StatsAggregator::ToJson() const {
  RequestAggregate total;
  std::map<std::string, RequestAggregate> per_graph;
  std::map<std::string, AlgoAggregate> per_algo;
  {
    MutexLock lock(&mu_);
    total = total_;
    per_graph = per_graph_;
    per_algo = per_algo_;
  }
  std::ostringstream os;
  os << "{\"total\":";
  AppendAggregate(os, total);
  os << ",\"graphs\":{";
  bool first = true;
  for (const auto& [name, agg] : per_graph) {
    if (!first) os << ",";
    first = false;
    json::AppendEscaped(os, name);
    os << ":";
    AppendAggregate(os, agg);
  }
  os << "},\"algorithms\":{";
  first = true;
  for (const auto& [name, a] : per_algo) {
    if (!first) os << ",";
    first = false;
    json::AppendEscaped(os, name);
    os << ":{\"agg\":";
    AppendAggregate(os, a.agg);
    os << ",\"p50_s\":";
    json::AppendDouble(os, a.latency.Quantile(0.5));
    os << ",\"p99_s\":";
    json::AppendDouble(os, a.latency.Quantile(0.99));
    os << "}";
  }
  os << "}}";
  return os.str();
}

}  // namespace kbiplex
