// String-keyed registry of enumeration backends. Every backend — the
// traversal family, the baselines, brute force — registers a factory under
// a stable name; the CLI, benches, examples, and tests dispatch through
// the registry instead of hard-coding backend entry points. Adding a
// backend is one Register() call.
#ifndef KBIPLEX_API_REGISTRY_H_
#define KBIPLEX_API_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "api/enumerate_request.h"
#include "api/enumerate_stats.h"
#include "api/solution_sink.h"
#include "graph/bipartite_graph.h"
#include "util/sync.h"
#include "util/thread_annotations.h"

namespace kbiplex {

class PreparedGraph;       // api/prepared_graph.h
struct TraversalScratch;   // core/traversal_scratch.h

/// Everything a backend executes against: the prepared graph whose
/// ExecutionGraph() it must enumerate (with any cached artifacts already
/// applied — attached adjacency index, renumbered ids) plus optional
/// session scratch reused across queries. Solutions are delivered in
/// execution-graph ids; the facade layer maps them back to input ids when
/// the prepared graph is renumbered.
struct QueryContext {
  const PreparedGraph* prepared = nullptr;  // never null for backend runs
  /// Cross-query scratch of the owning session, or null (per-run scratch).
  /// Never shared between concurrently running backends.
  TraversalScratch* scratch = nullptr;
};

/// One enumeration backend behind the unified API. Implementations apply
/// the request to their native options struct, run, and normalize their
/// native counters into EnumerateStats. Instances are single-use: the
/// registry creates a fresh backend per run.
class AlgorithmBackend {
 public:
  virtual ~AlgorithmBackend() = default;

  /// Runs the enumeration against ctx.prepared's execution graph,
  /// delivering solutions to `sink`. Shared request validation (asymmetric
  /// budgets, thresholds, graph size) has already happened; implementations
  /// still reject unknown backend_options keys.
  virtual EnumerateStats Run(const QueryContext& ctx,
                             const EnumerateRequest& request,
                             SolutionSink* sink) = 0;
};

/// Capabilities and documentation of a registered backend, used by the
/// facade for uniform request validation and by the CLI for --help output.
struct AlgorithmInfo {
  std::string name;     // registry key, lower case
  std::string summary;  // one-line description
  /// False iff the backend requires k.left == k.right (the k-biplex /
  /// (k+1)-plex correspondence behind imb and inflation is uniform-only).
  bool supports_asymmetric_k = true;
  /// True iff the backend needs theta_left >= 1 and theta_right >= 1
  /// (Section 5 large-MBP enumeration is defined only with thresholds).
  bool requires_theta = false;
  /// Reject graphs with a side larger than this (0 = unbounded); brute
  /// force caps both sides at 20.
  size_t max_side = 0;
};

using AlgorithmFactory = std::function<std::unique_ptr<AlgorithmBackend>()>;

/// Thread-safe name -> backend-factory map.
class AlgorithmRegistry {
 public:
  /// The process-wide registry, pre-populated with the built-in backends.
  static AlgorithmRegistry& Global();

  /// Registers a backend; returns false (and changes nothing) if the name
  /// is already taken. Names are case-insensitive.
  bool Register(AlgorithmInfo info, AlgorithmFactory factory)
      KBIPLEX_EXCLUDES(mu_);

  /// True iff `name` is registered.
  bool Contains(const std::string& name) const KBIPLEX_EXCLUDES(mu_);

  /// Capability record of `name`, or std::nullopt if unknown.
  std::optional<AlgorithmInfo> Find(const std::string& name) const
      KBIPLEX_EXCLUDES(mu_);

  /// Creates a fresh backend, or null if `name` is unknown.
  std::unique_ptr<AlgorithmBackend> Create(const std::string& name) const
      KBIPLEX_EXCLUDES(mu_);

  /// All registered names, sorted.
  std::vector<std::string> Names() const KBIPLEX_EXCLUDES(mu_);

  /// All capability records, sorted by name.
  std::vector<AlgorithmInfo> List() const KBIPLEX_EXCLUDES(mu_);

 private:
  struct Entry {
    AlgorithmInfo info;
    AlgorithmFactory factory;
  };

  mutable Mutex mu_;
  std::map<std::string, Entry> entries_ KBIPLEX_GUARDED_BY(mu_);
};

/// Lower-cases an algorithm name; registry lookups apply this themselves,
/// exposed for callers that render names.
std::string NormalizeAlgorithmName(const std::string& name);

namespace internal {
/// Registers the eight built-in backends; called once by Global().
void RegisterBuiltinAlgorithms(AlgorithmRegistry* registry);
}  // namespace internal

}  // namespace kbiplex

#endif  // KBIPLEX_API_REGISTRY_H_
