// The unified enumeration facade: one entry point over every maximal
// k-biplex enumeration backend in the library.
//
//   Enumerator enumerator(g);
//   EnumerateRequest req;
//   req.algorithm = "itraversal";
//   req.k = KPair::Uniform(2);
//   CollectingSink sink;
//   EnumerateStats stats = enumerator.Run(req, &sink);
//
// Registered built-in algorithms (AlgorithmRegistry::Global()):
//
//   name              backend                                  constraints
//   ----------------  ---------------------------------------  -----------
//   itraversal        reverse search, all three techniques
//   itraversal-es     iTraversal without the exclusion strategy
//   itraversal-es-rs  left-anchored traversal only
//   btraversal        conventional reverse search (Algorithm 1)
//   large-mbp         Section 5 large-MBP enumeration with      theta >= 1
//                     (θ−k)-core pre-reduction
//   imb               iMB-style set enumeration baseline        uniform k
//   inflation         FaPlexen-style graph-inflation baseline   uniform k
//   brute-force       exhaustive reference enumerator           sides <= 20
//
// Backend options (EnumerateRequest::backend_options; unknown keys are
// rejected):
//
//   traversal family: "anchored_side"            left | right
//                     "local_impl"               direct | inflation
//                     "local_l"                  l10 | l20
//                     "local_r"                  r10 | r20
//                     "polynomial_delay_output"  true | false
//                     "store_backend"            btree | hash | both
//                     "candidate_gen"            auto | scan | twohop
//                     "adjacency_index"          auto | off | force
//                     "accel_budget"             <bytes>  (0 = unlimited)
//   large-mbp:        "core_reduction"           true | false
//                     "candidate_gen"            auto | scan | twohop
//                     "adjacency_index"          auto | off | force
//                     "accel_budget"             <bytes>  (0 = unlimited)
//   inflation:        "max_inflated_edges"       <N>  (0 = no guard)
//
// "candidate_gen" and "adjacency_index" tune the hot-path acceleration of
// the traversal engines (see core/traversal_options.h); every setting
// produces the exact same solution set. "adjacency_index" = off stops the
// engine from building its own index but does not disable an index
// already attached to the graph — benchmark baselines should use a graph
// without BuildAdjacencyIndex. "accel_budget" caps the bytes of an
// engine-local index by demoting rows to compact sorted arrays and then
// dropping rows back to CSR search (graph/adjacency_index.h); like the
// other acceleration knobs it never changes the solution set.
#ifndef KBIPLEX_API_ENUMERATOR_H_
#define KBIPLEX_API_ENUMERATOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "api/enumerate_request.h"
#include "api/enumerate_stats.h"
#include "api/prepared_graph.h"
#include "api/registry.h"
#include "api/solution_sink.h"
#include "graph/bipartite_graph.h"

namespace kbiplex {

/// Facade over the algorithm registry: validates a request against the
/// selected backend's capabilities, runs it, and returns unified stats.
/// The graph must outlive the facade. Run is const and reentrant; each
/// call is an independent enumeration.
///
/// This is the one-shot compatibility shim over the prepare/execute API
/// (api/prepared_graph.h + api/query_session.h): it borrows the caller's
/// graph without attaching any artifact, so each Run pays the full
/// per-query preprocessing cost. Services answering many queries over one
/// graph should use PreparedGraph::Prepare + QuerySession instead.
class Enumerator {
 public:
  /// Uses the process-wide registry.
  explicit Enumerator(const BipartiteGraph& g)
      : Enumerator(g, AlgorithmRegistry::Global()) {}

  /// Uses a custom registry (tests, embedders).
  Enumerator(const BipartiteGraph& g, const AlgorithmRegistry& registry)
      : prepared_(PreparedGraph::Borrow(g)), registry_(&registry) {}

  /// Runs the request, delivering solutions to `sink`. Rejected requests
  /// return stats with a non-empty `error` and no solutions delivered.
  EnumerateStats Run(const EnumerateRequest& request,
                     SolutionSink* sink) const;

  /// Convenience: runs with a callback sink.
  EnumerateStats Run(const EnumerateRequest& request,
                     const std::function<bool(const Biplex&)>& cb) const;

  /// Convenience: collects and returns the solutions, sorted.
  std::vector<Biplex> Collect(const EnumerateRequest& request,
                              EnumerateStats* stats = nullptr) const;

  /// Convenience: counts solutions without materializing them.
  uint64_t Count(const EnumerateRequest& request,
                 EnumerateStats* stats = nullptr) const;

 private:
  std::shared_ptr<const PreparedGraph> prepared_;
  const AlgorithmRegistry* registry_;
};

/// One-shot form of Enumerator(g).Run(request, sink).
EnumerateStats Enumerate(const BipartiteGraph& g,
                         const EnumerateRequest& request, SolutionSink* sink);

}  // namespace kbiplex

#endif  // KBIPLEX_API_ENUMERATOR_H_
