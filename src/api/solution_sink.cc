#include "api/solution_sink.h"

#include <algorithm>

namespace kbiplex {

std::vector<Biplex> CollectingSink::Take() {
  if (sorted_) std::sort(solutions_.begin(), solutions_.end());
  return std::move(solutions_);
}

bool SortingSink::Flush() {
  std::sort(buffer_.begin(), buffer_.end());
  bool ok = true;
  for (const Biplex& b : buffer_) {
    if (!inner_->Accept(b)) {
      ok = false;
      break;
    }
  }
  buffer_.clear();
  return ok;
}

bool StreamWriterSink::Accept(const Biplex& solution) {
  std::ostream& os = *out_;
  if (format_ == Format::kText) {
    for (size_t i = 0; i < solution.left.size(); ++i) {
      if (i != 0) os << ' ';
      os << solution.left[i];
    }
    os << " |";
    for (VertexId u : solution.right) os << ' ' << u;
    os << '\n';
  } else {
    os << "{\"left\":[";
    for (size_t i = 0; i < solution.left.size(); ++i) {
      if (i != 0) os << ',';
      os << solution.left[i];
    }
    os << "],\"right\":[";
    for (size_t i = 0; i < solution.right.size(); ++i) {
      if (i != 0) os << ',';
      os << solution.right[i];
    }
    os << "]}\n";
  }
  ++written_;
  return os.good();
}

}  // namespace kbiplex
