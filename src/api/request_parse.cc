#include "api/request_parse.h"

#include <cctype>
#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <optional>
#include <sstream>
#include <utility>

#include "util/json.h"

namespace kbiplex {

bool ParseInt(const std::string& s, int* out) {
  const char* end = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(s.data(), end, *out);
  return ec == std::errc() && ptr == end;
}

bool ParseUint64(const std::string& s, uint64_t* out) {
  const char* end = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(s.data(), end, *out);
  return ec == std::errc() && ptr == end;
}

bool ParseSize(const std::string& s, size_t* out) {
  uint64_t v = 0;
  if (!ParseUint64(s, &v)) return false;
  *out = static_cast<size_t>(v);
  return true;
}

// strtod instead of std::from_chars: the floating-point from_chars
// overloads are still missing from some standard libraries (libc++).
// strtod alone is too permissive ("inf", "nan", hex floats, leading
// whitespace/'+' all parse), so the token shape is checked first: plain
// decimal with an optional exponent only.
bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  const char c0 = s[0];
  if (c0 != '-' && c0 != '.' && !(c0 >= '0' && c0 <= '9')) return false;
  for (char c : s) {
    if (std::isalpha(static_cast<unsigned char>(c)) && c != 'e' && c != 'E') {
      return false;
    }
  }
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size() || errno == ERANGE) return false;
  *out = value;
  return true;
}

RequestFlagParse ParseRequestFlag(const std::vector<std::string>& tokens,
                                  size_t* i, EnumerateRequest* request,
                                  std::string* error) {
  const std::string& flag = tokens[*i];
  auto next = [&]() -> std::optional<std::string> {
    if (*i + 1 >= tokens.size()) return std::nullopt;
    return tokens[++*i];
  };
  auto next_parsed = [&](auto parse, auto* out) -> bool {
    auto v = next();
    if (!v.has_value()) {
      *error = flag + " requires a value";
      return false;
    }
    if (!parse(*v, out)) {
      *error = "invalid value for " + flag + ": '" + *v + "'";
      return false;
    }
    return true;
  };

  // A disconnection budget is a count; the JSON form already rejects
  // negatives, the flag form must match.
  auto next_budget = [&](int* out) -> bool {
    if (!next_parsed(ParseInt, out)) return false;
    if (*out < 0) {
      *error = flag + " must be non-negative";
      return false;
    }
    return true;
  };

  if (flag == "--k") {
    int k = 0;
    if (!next_budget(&k)) return RequestFlagParse::kError;
    request->k = KPair::Uniform(k);
  } else if (flag == "--kl") {
    if (!next_budget(&request->k.left)) {
      return RequestFlagParse::kError;
    }
  } else if (flag == "--kr") {
    if (!next_budget(&request->k.right)) {
      return RequestFlagParse::kError;
    }
  } else if (flag == "--max") {
    if (!next_parsed(ParseUint64, &request->max_results)) {
      return RequestFlagParse::kError;
    }
  } else if (flag == "--budget") {
    if (!next_parsed(ParseDouble, &request->time_budget_seconds)) {
      return RequestFlagParse::kError;
    }
  } else if (flag == "--max-links") {
    if (!next_parsed(ParseUint64, &request->max_links)) {
      return RequestFlagParse::kError;
    }
  } else if (flag == "--theta-l") {
    if (!next_parsed(ParseSize, &request->theta_left)) {
      return RequestFlagParse::kError;
    }
  } else if (flag == "--theta-r") {
    if (!next_parsed(ParseSize, &request->theta_right)) {
      return RequestFlagParse::kError;
    }
  } else if (flag == "--threads") {
    if (!next_parsed(ParseInt, &request->threads)) {
      return RequestFlagParse::kError;
    }
    if (request->threads < 0) {
      *error = "--threads must be >= 0 (0 = one per hardware thread)";
      return RequestFlagParse::kError;
    }
  } else if (flag == "--algo") {
    auto v = next();
    if (!v) {
      *error = "--algo requires a value";
      return RequestFlagParse::kError;
    }
    request->algorithm = *v;
  } else if (flag == "--opt") {
    auto v = next();
    if (!v) {
      *error = "--opt requires a value";
      return RequestFlagParse::kError;
    }
    const size_t eq = v->find('=');
    if (eq == std::string::npos || eq == 0) {
      *error = "--opt expects KEY=VALUE, got: '" + *v + "'";
      return RequestFlagParse::kError;
    }
    request->backend_options[v->substr(0, eq)] = v->substr(eq + 1);
  } else {
    return RequestFlagParse::kUnknown;
  }
  return RequestFlagParse::kConsumed;
}

std::string ParseRequestLine(const std::string& line,
                             EnumerateRequest* request) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string token;
  while (in >> token) tokens.push_back(std::move(token));
  for (size_t i = 0; i < tokens.size(); ++i) {
    std::string error;
    switch (ParseRequestFlag(tokens, &i, request, &error)) {
      case RequestFlagParse::kConsumed:
        break;
      case RequestFlagParse::kError:
        return error;
      case RequestFlagParse::kUnknown:
        return "unknown query flag: " + tokens[i];
    }
  }
  return "";
}

namespace {

/// Reads a JSON number member as a non-negative integer that fits `max`.
/// Doubles carry wire integers exactly up to 2^53; protocol fields are far
/// below that, and anything outside [0, max] or non-integral is an error.
bool JsonToUint(const json::JsonValue& v, uint64_t max, uint64_t* out,
                const std::string& key, std::string* error) {
  if (!v.is_number()) {
    *error = "request key '" + key + "' must be a number";
    return false;
  }
  const double d = v.AsNumber();
  if (!(d >= 0) || d != std::floor(d) || d > 9007199254740992.0 ||
      d > static_cast<double>(max)) {
    *error = "request key '" + key + "' must be a non-negative integer";
    return false;
  }
  *out = static_cast<uint64_t>(d);
  return true;
}

}  // namespace

std::string ParseRequestJson(const json::JsonValue& value,
                             EnumerateRequest* request) {
  if (!value.is_object()) return "request must be a JSON object";
  std::string error;
  bool saw_uniform_k = false;
  for (const auto& [key, v] : value.AsObject()) {
    if (key == "algo" || key == "algorithm") {
      if (!v.is_string()) return "request key '" + key + "' must be a string";
      request->algorithm = v.AsString();
    } else if (key == "k") {
      uint64_t k = 0;
      if (!JsonToUint(v, 1u << 30, &k, key, &error)) return error;
      request->k = KPair::Uniform(static_cast<int>(k));
      saw_uniform_k = true;
    } else if (key == "kl") {
      uint64_t kl = 0;
      if (!JsonToUint(v, 1u << 30, &kl, key, &error)) return error;
      if (saw_uniform_k) return "request keys 'k' and 'kl' conflict";
      request->k.left = static_cast<int>(kl);
    } else if (key == "kr") {
      uint64_t kr = 0;
      if (!JsonToUint(v, 1u << 30, &kr, key, &error)) return error;
      if (saw_uniform_k) return "request keys 'k' and 'kr' conflict";
      request->k.right = static_cast<int>(kr);
    } else if (key == "theta_l") {
      uint64_t t = 0;
      if (!JsonToUint(v, UINT64_MAX, &t, key, &error)) return error;
      request->theta_left = static_cast<size_t>(t);
    } else if (key == "theta_r") {
      uint64_t t = 0;
      if (!JsonToUint(v, UINT64_MAX, &t, key, &error)) return error;
      request->theta_right = static_cast<size_t>(t);
    } else if (key == "max") {
      if (!JsonToUint(v, UINT64_MAX, &request->max_results, key, &error)) {
        return error;
      }
    } else if (key == "max_links") {
      if (!JsonToUint(v, UINT64_MAX, &request->max_links, key, &error)) {
        return error;
      }
    } else if (key == "budget_s") {
      if (!v.is_number() || !(v.AsNumber() >= 0)) {
        return "request key 'budget_s' must be a non-negative number";
      }
      request->time_budget_seconds = v.AsNumber();
    } else if (key == "threads") {
      uint64_t t = 0;
      if (!JsonToUint(v, 1u << 16, &t, key, &error)) return error;
      request->threads = static_cast<int>(t);
    } else if (key == "options") {
      if (!v.is_object()) {
        return "request key 'options' must be an object of strings";
      }
      for (const auto& [opt_key, opt_value] : v.AsObject()) {
        if (!opt_value.is_string()) {
          return "request option '" + opt_key + "' must be a string";
        }
        request->backend_options[opt_key] = opt_value.AsString();
      }
    } else {
      return "unknown request key '" + key + "'";
    }
  }
  return "";
}

std::string RequestToWireJson(const EnumerateRequest& request) {
  std::ostringstream os;
  os << "{\"algo\":";
  json::AppendEscaped(os, request.algorithm);
  if (request.k.IsUniform()) {
    os << ",\"k\":" << request.k.left;
  } else {
    os << ",\"kl\":" << request.k.left << ",\"kr\":" << request.k.right;
  }
  if (request.theta_left != 0) os << ",\"theta_l\":" << request.theta_left;
  if (request.theta_right != 0) os << ",\"theta_r\":" << request.theta_right;
  if (request.max_results != 0) os << ",\"max\":" << request.max_results;
  if (request.max_links != 0) os << ",\"max_links\":" << request.max_links;
  if (request.time_budget_seconds > 0) {
    os << ",\"budget_s\":";
    json::AppendDouble(os, request.time_budget_seconds);
  }
  if (request.threads != 1) os << ",\"threads\":" << request.threads;
  if (!request.backend_options.empty()) {
    os << ",\"options\":{";
    bool first = true;
    for (const auto& [key, value] : request.backend_options) {
      if (!first) os << ",";
      first = false;
      json::AppendEscaped(os, key);
      os << ":";
      json::AppendEscaped(os, value);
    }
    os << "}";
  }
  os << "}";
  return os.str();
}

}  // namespace kbiplex
