// The "execute" half of the prepare/execute API: a QuerySession runs many
// EnumerateRequests against one PreparedGraph, reusing the prepared
// artifacts (attached adjacency index, renumbering, component labeling,
// core bounds) and carrying engine scratch — the recursion-frame arena and
// the EnumAlmostSat workspace — across queries so steady-state query
// execution allocates almost nothing.
//
// A session is NOT thread-safe: it owns mutable scratch, so use one
// session per serving thread. Any number of sessions may share one
// PreparedGraph concurrently — the prepared artifacts are immutable once
// built, and builds are internally synchronized.
//
//   auto prepared = PreparedGraph::Prepare(LoadGraph(...),
//                                          {.renumber = true});
//   QuerySession session(prepared);
//   for (const EnumerateRequest& req : queries) {
//     EnumerateStats stats = session.Run(req, &sink);
//   }
//
// Solutions are always delivered in the input graph's ids: when the
// prepared graph is renumbered, the session maps every solution back
// automatically (the facade-level renumbering the ROADMAP called for).
#ifndef KBIPLEX_API_QUERY_SESSION_H_
#define KBIPLEX_API_QUERY_SESSION_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "api/enumerate_request.h"
#include "api/enumerate_stats.h"
#include "api/prepared_graph.h"
#include "api/registry.h"
#include "api/solution_sink.h"
#include "core/traversal_scratch.h"

namespace kbiplex {

/// Executes many requests against one PreparedGraph. Create on one thread,
/// use from that thread; share the PreparedGraph, not the session.
class QuerySession {
 public:
  /// Uses the process-wide registry.
  explicit QuerySession(std::shared_ptr<const PreparedGraph> prepared)
      : QuerySession(std::move(prepared), AlgorithmRegistry::Global()) {}

  /// Uses a custom registry (tests, embedders). The registry must outlive
  /// the session.
  QuerySession(std::shared_ptr<const PreparedGraph> prepared,
               const AlgorithmRegistry& registry);

  QuerySession(const QuerySession&) = delete;
  QuerySession& operator=(const QuerySession&) = delete;

  /// Runs one request, delivering solutions (in input-graph ids) to
  /// `sink`. Rejected requests return stats with a non-empty `error` and
  /// no solutions delivered.
  EnumerateStats Run(const EnumerateRequest& request, SolutionSink* sink);

  /// Convenience: runs with a callback sink.
  EnumerateStats Run(const EnumerateRequest& request,
                     const std::function<bool(const Biplex&)>& cb);

  /// Convenience: collects and returns the solutions, sorted.
  std::vector<Biplex> Collect(const EnumerateRequest& request,
                              EnumerateStats* stats = nullptr);

  /// Convenience: counts solutions without materializing them.
  uint64_t Count(const EnumerateRequest& request,
                 EnumerateStats* stats = nullptr);

  const PreparedGraph& prepared() const { return *prepared_; }

  /// Queries executed through this session (including rejected ones).
  uint64_t queries_run() const { return queries_run_; }

  /// Queries answered from the cached core bound alone, without touching
  /// a backend (provably empty result sets).
  uint64_t short_circuits() const { return short_circuits_; }

 private:
  std::shared_ptr<const PreparedGraph> prepared_;
  const AlgorithmRegistry* registry_;
  TraversalScratch scratch_;
  uint64_t queries_run_ = 0;
  uint64_t short_circuits_ = 0;
};

namespace internal {

/// The one execution path behind QuerySession::Run and the Enumerate
/// compatibility shim: validates `request` against the backend's
/// capabilities and the sink's threading contract, applies the cached
/// core-bound short-circuit, maps renumbered solutions back to input ids,
/// and dispatches to the parallel driver or a sequential backend.
/// `scratch` may be null (per-run scratch); `short_circuited` (optional)
/// is set to whether the core bound answered the query without a backend.
EnumerateStats RunOnPrepared(const PreparedGraph& prepared,
                             TraversalScratch* scratch,
                             const AlgorithmRegistry& registry,
                             const EnumerateRequest& request,
                             SolutionSink* sink,
                             bool* short_circuited = nullptr);

}  // namespace internal
}  // namespace kbiplex

#endif  // KBIPLEX_API_QUERY_SESSION_H_
