#include "api/traversal_scheduler.h"

#include <atomic>
#include <deque>
#include <memory>
#include <utility>
#include <vector>

#include "api/parallel_support.h"
#include "core/btraversal.h"
#include "core/itraversal.h"
#include "core/large_mbp.h"
#include "core/solution_store.h"
#include "core/traversal_scratch.h"
#include "graph/adjacency_index.h"
#include "graph/core_decomposition.h"
#include "util/cancellation.h"
#include "util/sync.h"
#include "util/thread_annotations.h"
#include "util/timer.h"
#include "util/work_stealing.h"

namespace kbiplex {
namespace internal {
namespace {

/// The workers' shared deduplication store. Reverse search recurses only
/// on first discovery; under the scheduler "first" is decided by this
/// store (exactly one worker wins the insert of a solution and schedules
/// its expansion), which is what keeps every solution expanded once.
class SharedStore {
 public:
  /// Returns true iff `b` was not present (the caller won the discovery).
  bool Insert(const Biplex& b) {
    MutexLock lock(&mu_);
    return store_.Insert(b);
  }

 private:
  Mutex mu_;
  SolutionStore store_ KBIPLEX_GUARDED_BY(mu_);
};

/// Base engine configuration of a traversal-family algorithm, or nullopt
/// for names this plan does not serve. Exclusion is always disabled: it
/// prunes links based on the DFS path, which no per-task expansion has;
/// the link *targets* it skips are reached through other links, so the
/// closure — the solution set — is unchanged (the itraversal vs
/// itraversal-es agreement tests pin this equivalence).
std::optional<TraversalOptions> BaseOptions(const std::string& algorithm) {
  std::optional<TraversalOptions> base;
  if (algorithm == "itraversal") {
    base = MakeITraversalOptions(1);
  } else if (algorithm == "itraversal-es") {
    base = MakeITraversalNoExclusionOptions(1);
  } else if (algorithm == "itraversal-es-rs") {
    base = MakeITraversalLeftAnchoredOnlyOptions(1);
  } else if (algorithm == "btraversal") {
    base = MakeBTraversalOptions(1);
  } else if (algorithm == "large-mbp") {
    base = MakeITraversalOptions(1);  // mirrors core/large_mbp.cc
  }
  if (base.has_value()) base->exclusion = false;
  return base;
}

/// Everything one scheduled run shares across its workers.
struct SchedulerRun {
  std::atomic<uint64_t> found{0};  // unique solutions (store inserts)
  std::atomic<uint64_t> dedup{0};  // links to already-known solutions
  // Set on any early stop (budget, cancellation, result cap, sink stop):
  // queued tasks may have been abandoned, so the run must report
  // completed = false even though no engine saw its own stop flag flip.
  std::atomic<bool> truncated{false};
  SharedStore store;
};

/// Expands solutions with `threads` private engines over `g` until the
/// closure of the initial solution is exhausted (or a global budget
/// fires), delivering through `delivery`. Returns the merged traversal
/// counters; `run` reports found/dedup/truncated to the caller.
TraversalStats RunScheduled(const BipartiteGraph& g, const TraversalOptions& base,
                            const EnumerateRequest& request, size_t threads,
                            const Deadline& deadline, CancellationToken* stop,
                            SharedDelivery* delivery, ErrorCollector* errors,
                            SchedulerRun* run) {
  // One adjacency index serves every worker (the index is immutable and
  // the engines only read it), mirroring the sequential kAuto policy; a
  // graph with an attached index keeps serving it to each engine.
  std::unique_ptr<AdjacencyIndex> shared_index;
  if (g.adjacency_index() == nullptr && g.NumEdges() >= kAutoIndexMinEdges) {
    shared_index = std::make_unique<AdjacencyIndex>(g);
  }

  // Per-worker engines with private scratch (a scratch must never be
  // shared between concurrently running engines). std::deque keeps the
  // scratch addresses stable while constructing the engines.
  std::deque<TraversalScratch> scratches(threads);
  std::vector<std::unique_ptr<TraversalEngine>> engines;
  engines.reserve(threads);
  for (size_t w = 0; w < threads; ++w) {
    TraversalOptions opts = base;
    opts.k = request.k;
    opts.theta_left = request.theta_left;
    opts.theta_right = request.theta_right;
    opts.prune_small =
        opts.right_shrinking &&
        (request.theta_left > 0 || request.theta_right > 0);
    // Budgets are global, enforced by the driver's deadline and shared
    // delivery; a per-worker copy would multiply them.
    opts.max_results = 0;
    opts.time_budget_seconds = 0;
    opts.cancel = stop;
    opts.shared_adjacency = shared_index.get();
    opts.scratch = &scratches[w];
    engines.push_back(std::make_unique<TraversalEngine>(g, opts));
  }

  WorkStealingScheduler<Biplex> sched(threads);

  // Seed: the initial solution is itself a member of the set.
  Biplex h0 = engines[0]->InitialSolution();
  run->store.Insert(h0);
  run->found.fetch_add(1, std::memory_order_relaxed);
  if (!delivery->Deliver(h0)) {
    run->truncated.store(true, std::memory_order_relaxed);
  } else if (engines[0]->ShouldExpand(h0)) {
    sched.Push(0, std::move(h0));
  }

  sched.Run([&](size_t w, Biplex&& h) {
    try {
      if (deadline.Expired() || stop->IsCancelled()) {
        run->truncated.store(true, std::memory_order_relaxed);
        sched.Stop();
        return;
      }
      TraversalEngine* engine = engines[w].get();
      const bool ok =
          engine->ExpandSolution(h, &deadline, [&](Biplex&& sol) {
            if (!run->store.Insert(sol)) {
              run->dedup.fetch_add(1, std::memory_order_relaxed);
              return true;
            }
            run->found.fetch_add(1, std::memory_order_relaxed);
            if (!delivery->Deliver(sol)) {
              run->truncated.store(true, std::memory_order_relaxed);
              return false;
            }
            if (engine->ShouldExpand(sol)) sched.Push(w, std::move(sol));
            return true;
          });
      if (!ok) {
        run->truncated.store(true, std::memory_order_relaxed);
        sched.Stop();
      }
    } catch (const std::exception& e) {
      errors->Record(std::string("worker failed: ") + e.what());
      sched.Stop();
    } catch (...) {
      errors->Record("worker failed with an unknown exception");
      sched.Stop();
    }
  });

  TraversalStats merged;
  for (auto& engine : engines) MergeInto(&merged, engine->TakeExpandStats());
  merged.solutions_found = run->found.load(std::memory_order_relaxed);
  merged.dedup_hits = run->dedup.load(std::memory_order_relaxed);
  merged.solutions_emitted = delivery->delivered();
  merged.completed =
      merged.completed && !run->truncated.load(std::memory_order_relaxed);
  return merged;
}

/// Translates core-subgraph ids back to original ids before forwarding to
/// the caller's sink. Placed *inside* the shared delivery (which
/// serializes Accept and re-checks only id-independent thresholds), so it
/// needs no locking of its own.
class CoreMappingSink final : public SolutionSink {
 public:
  CoreMappingSink(SolutionSink* inner, const InducedSubgraph& core)
      : inner_(inner), core_(core) {}

  bool Accept(const Biplex& solution) override {
    Biplex mapped;
    mapped.left.reserve(solution.left.size());
    for (VertexId v : solution.left) mapped.left.push_back(core_.left_map[v]);
    mapped.right.reserve(solution.right.size());
    for (VertexId u : solution.right) {
      mapped.right.push_back(core_.right_map[u]);
    }
    // Maps are monotone (Induce preserves order), so sets stay sorted.
    return inner_->Accept(mapped);
  }

  bool ThreadCompatible() const override { return true; }

 private:
  SolutionSink* const inner_;
  const InducedSubgraph& core_;
};

}  // namespace

std::optional<EnumerateStats> TryRunTraversalScheduler(
    const BipartiteGraph& g, const EnumerateRequest& request,
    const std::string& algorithm, size_t threads, SolutionSink* sink) {
  std::optional<TraversalOptions> base = BaseOptions(algorithm);
  if (!base.has_value()) return std::nullopt;
  // Backend options reconfigure the engines (anchored side, local
  // refinements, store backend, ...) in ways this plan does not
  // replicate; max_links is an engine-internal counter a per-worker copy
  // would multiply. Both fall back to plans that honor them.
  if (!request.backend_options.empty()) return std::nullopt;
  if (request.max_links != 0) return std::nullopt;
  // An edgeless graph has (at most) one trivial solution; scheduling
  // overhead cannot pay for itself and the sequential path is exact.
  if (g.NumEdges() == 0) return std::nullopt;

  WallTimer timer;
  Deadline deadline(request.time_budget_seconds);
  CancellationToken stop(request.cancellation);
  ErrorCollector errors;
  SchedulerRun run;

  EnumerateStats out;
  if (algorithm == "large-mbp") {
    // Mirror the sequential engine's (θ−k)-core pre-reduction
    // (core/large_mbp.cc): every large MBP survives the reduction.
    const size_t kl = static_cast<size_t>(request.k.left);
    const size_t kr = static_cast<size_t>(request.k.right);
    const size_t alpha =
        request.theta_right > kl ? request.theta_right - kl : 0;
    const size_t beta = request.theta_left > kr ? request.theta_left - kr : 0;
    InducedSubgraph core = AlphaBetaCoreSubgraph(g, alpha, beta);
    LargeMbpStats ls;
    ls.core_left = core.graph.NumLeft();
    ls.core_right = core.graph.NumRight();
    if (core.graph.NumLeft() < request.theta_left ||
        core.graph.NumRight() < request.theta_right) {
      ls.seconds = timer.ElapsedSeconds();
      out.large_mbp = ls;
      out.seconds = timer.ElapsedSeconds();
      return out;  // no large MBP can exist
    }
    CoreMappingSink mapping(sink, core);
    SharedDelivery delivery(request, &mapping, &stop);
    ls.traversal = RunScheduled(core.graph, *base, request, threads, deadline,
                                &stop, &delivery, &errors, &run);
    ls.completed = ls.traversal.completed;
    ls.seconds = timer.ElapsedSeconds();
    out.large_mbp = ls;
    out.work_units = ls.traversal.links;
    out.completed = ls.completed;
    out.solutions = delivery.delivered();
  } else {
    SharedDelivery delivery(request, sink, &stop);
    TraversalStats ts = RunScheduled(g, *base, request, threads, deadline,
                                     &stop, &delivery, &errors, &run);
    ts.seconds = timer.ElapsedSeconds();
    out.traversal = ts;
    out.work_units = ts.links;
    out.completed = ts.completed;
    out.solutions = delivery.delivered();
  }
  if (std::string err = errors.Take(); !err.empty()) {
    out = EnumerateStats();
    out.error = std::move(err);
    out.completed = false;
    return out;
  }
  out.seconds = timer.ElapsedSeconds();
  return out;
}

}  // namespace internal
}  // namespace kbiplex
