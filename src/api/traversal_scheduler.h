// Work-stealing intra-component parallel plan for the traversal family.
//
// Component sharding (api/parallel_driver.h) is powerless on the common
// hard case — one dense connected component — because it can only hand
// whole components to workers. This plan parallelizes *inside* a
// component: the reverse-search solution graph is explored one solution
// at a time, and the expansion of a solution H (Steps 1-3 of Algorithms
// 1 & 2 rooted at H) depends only on H once the path-dependent exclusion
// strategy is off. That makes every discovered solution an independent
// task: workers drain a work-stealing scheduler of solutions, expand
// them with private sequential engines, deduplicate through one shared
// solution store, and push first-discoveries back as new tasks.
//
// The computed set is the reachability closure of the initial solution
// under the link relation — the same closure the sequential run computes
// — and a closure is independent of visit order, so a completed parallel
// run agrees with the sequential solution set exactly (delivery *order*
// is scheduling-dependent; see SortingSink in api/solution_sink.h).
// Global budgets stay global: max_results and the wall-clock budget are
// enforced by the driver's shared delivery/deadline, never per worker.
#ifndef KBIPLEX_API_TRAVERSAL_SCHEDULER_H_
#define KBIPLEX_API_TRAVERSAL_SCHEDULER_H_

#include <cstddef>
#include <optional>
#include <string>

#include "api/enumerate_request.h"
#include "api/enumerate_stats.h"
#include "api/solution_sink.h"
#include "graph/bipartite_graph.h"

namespace kbiplex {
namespace internal {

/// Runs `request` for a traversal-family algorithm ("itraversal",
/// "itraversal-es", "itraversal-es-rs", "btraversal", "large-mbp") with
/// the work-stealing expansion scheduler, or returns nullopt when the
/// plan does not apply: unknown algorithm, edgeless graph, a max_links
/// budget (engine-internal counter with no cross-worker accounting), or
/// backend options (which reconfigure the per-worker engines in ways the
/// scheduler does not replicate — the caller falls back to component
/// sharding or the sequential path, both of which honor them).
///
/// The exclusion strategy is disabled on the workers even for
/// "itraversal": exclusion is a path-dependent *pruning* of the solution
/// graph's links, so dropping it changes visit counts but provably not
/// the solution set, which is the parallel contract
/// (api/enumerate_request.h). Pre-conditions: the request passed facade
/// validation for the algorithm and threads >= 2.
std::optional<EnumerateStats> TryRunTraversalScheduler(
    const BipartiteGraph& g, const EnumerateRequest& request,
    const std::string& algorithm, size_t threads, SolutionSink* sink);

}  // namespace internal
}  // namespace kbiplex

#endif  // KBIPLEX_API_TRAVERSAL_SCHEDULER_H_
