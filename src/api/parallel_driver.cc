#include "api/parallel_driver.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "api/parallel_support.h"
#include "api/traversal_scheduler.h"
#include "baselines/imb.h"
#include "core/brute_force.h"
#include "graph/components.h"
#include "util/cancellation.h"
#include "util/sync.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace kbiplex {
namespace internal {
namespace {

/// Runs `body` as a pool task, converting an escaping exception into a
/// recorded error instead of a process abort.
template <typename Body>
void SubmitGuarded(ThreadPool* pool, ErrorCollector* errors, Body body) {
  pool->Submit([errors, body = std::move(body)] {
    try {
      body();
    } catch (const std::exception& e) {
      errors->Record(std::string("worker failed: ") + e.what());
    } catch (...) {
      errors->Record("worker failed with an unknown exception");
    }
  });
}

EnumerateStats RejectedStats(std::string message) {
  EnumerateStats out;
  out.error = std::move(message);
  out.completed = false;
  return out;
}

/// Rejects requests carrying options for backends that define none (the
/// parallel plans below bypass the backend classes and drive the engines
/// directly, so they mirror the sequential unknown-key rejection).
std::optional<std::string> RejectOptions(const EnumerateRequest& request) {
  if (request.backend_options.empty()) return std::nullopt;
  return "unknown backend option '" + request.backend_options.begin()->first +
         "'";
}

// ------------------------------------------------------- stats merging ---

/// Folds the per-shard unified stats of the component plan into one
/// result. Counters add up; `completed` holds iff every shard completed;
/// detail blocks merge field-wise (their `seconds` become aggregate
/// worker seconds — the top-level `seconds` is the driver's wall clock).
EnumerateStats MergeShardStats(std::vector<EnumerateStats> shards) {
  EnumerateStats out;
  for (EnumerateStats& s : shards) {
    out.work_units += s.work_units;
    out.completed = out.completed && s.completed;
    out.out_of_memory = out.out_of_memory || s.out_of_memory;
    if (s.traversal.has_value()) {
      if (!out.traversal.has_value()) out.traversal.emplace();
      MergeInto(&*out.traversal, *s.traversal);
    }
    if (s.large_mbp.has_value()) {
      if (!out.large_mbp.has_value()) out.large_mbp.emplace();
      LargeMbpStats& l = *out.large_mbp;
      MergeInto(&l.traversal, s.large_mbp->traversal);
      l.core_left += s.large_mbp->core_left;
      l.core_right += s.large_mbp->core_right;
      l.completed = l.completed && s.large_mbp->completed;
      l.seconds += s.large_mbp->seconds;
    }
    if (s.imb.has_value()) {
      if (!out.imb.has_value()) out.imb.emplace();
      out.imb->nodes += s.imb->nodes;
      out.imb->solutions += s.imb->solutions;
      out.imb->completed = out.imb->completed && s.imb->completed;
      out.imb->seconds += s.imb->seconds;
    }
    if (s.inflation.has_value()) {
      if (!out.inflation.has_value()) out.inflation.emplace();
      out.inflation->solutions += s.inflation->solutions;
      out.inflation->completed =
          out.inflation->completed && s.inflation->completed;
      out.inflation->out_of_budget =
          out.inflation->out_of_budget || s.inflation->out_of_budget;
      out.inflation->inflated_edges += s.inflation->inflated_edges;
      out.inflation->seconds += s.inflation->seconds;
    }
  }
  return out;
}

/// Splits [0, total) into `chunks` near-equal contiguous ranges.
std::vector<std::pair<uint64_t, uint64_t>> SplitRange(uint64_t total,
                                                      uint64_t chunks) {
  chunks = std::max<uint64_t>(1, std::min(chunks, total));
  std::vector<std::pair<uint64_t, uint64_t>> out;
  out.reserve(chunks);
  for (uint64_t i = 0; i < chunks; ++i) {
    out.emplace_back(total * i / chunks, total * (i + 1) / chunks);
  }
  return out;
}

// ------------------------------------------------- brute-force: masks ----

EnumerateStats RunParallelBruteForce(const BipartiteGraph& g,
                                     const EnumerateRequest& request,
                                     size_t threads, SolutionSink* sink) {
  if (auto err = RejectOptions(request)) return RejectedStats(*err);
  WallTimer timer;
  Deadline deadline(request.time_budget_seconds);
  CancellationToken stop(request.cancellation);
  SharedDelivery delivery(request, sink, &stop);
  ErrorCollector errors;

  // Oversplit for load balance: dense mask slices are much slower than
  // sparse ones.
  const auto ranges =
      SplitRange(uint64_t{1} << g.NumLeft(), uint64_t{threads} * 8);
  std::vector<uint8_t> chunk_completed(ranges.size(), 1);
  {
    ThreadPool pool(std::min(threads, ranges.size()));
    for (size_t i = 0; i < ranges.size(); ++i) {
      SubmitGuarded(&pool, &errors, [&, i] {
        bool scan_completed = true;
        const std::vector<Biplex> found = BruteForceMaximalBiplexesMaskRange(
            g, request.k, &deadline, &stop, &scan_completed, ranges[i].first,
            ranges[i].second);
        for (const Biplex& b : found) {
          if (deadline.Expired() || stop.IsCancelled() ||
              !delivery.Deliver(b)) {
            scan_completed = false;
            break;
          }
        }
        if (!scan_completed) chunk_completed[i] = 0;
      });
    }
    pool.Wait();
  }
  if (std::string err = errors.Take(); !err.empty()) {
    return RejectedStats(std::move(err));
  }

  EnumerateStats out;
  out.work_units = uint64_t{1} << (g.NumLeft() + g.NumRight());
  out.solutions = delivery.delivered();
  out.completed = std::all_of(chunk_completed.begin(), chunk_completed.end(),
                              [](uint8_t c) { return c != 0; });
  out.seconds = timer.ElapsedSeconds();
  return out;
}

// ------------------------------------------------- imb: root branches ----

EnumerateStats RunParallelImb(const BipartiteGraph& g,
                              const EnumerateRequest& request, size_t threads,
                              SolutionSink* sink) {
  if (auto err = RejectOptions(request)) return RejectedStats(*err);
  WallTimer timer;
  // Empty graph: SplitRange(0, n) emits one (0, 0) shard, and the backend
  // reports the empty biplex from the root_begin == 0 shard — exactly the
  // sequential result. No special case needed; the shard path below is
  // pinned by ParallelImb.EmptyGraphIsATrivialNoOp.
  CancellationToken stop(request.cancellation);
  SharedDelivery delivery(request, sink, &stop);
  ErrorCollector errors;

  const auto ranges = SplitRange(g.NumLeft() + g.NumRight(),
                                 uint64_t{threads} * 4);
  std::vector<EnumerateStats> shard_stats(ranges.size());
  {
    ThreadPool pool(std::min(threads, ranges.size()));
    for (size_t i = 0; i < ranges.size(); ++i) {
      SubmitGuarded(&pool, &errors, [&, i] {
        ImbOptions opts;
        opts.k = request.k.left;  // uniformity validated by the facade
        opts.theta_left = request.theta_left;
        opts.theta_right = request.theta_right;
        opts.max_results = request.max_results;
        if (!RemainingBudget(request, timer, &opts.time_budget_seconds)) {
          // A skipped shard must still carry the imb detail block:
          // otherwise the merged stats' JSON schema would depend on which
          // shard the expiring budget happened to hit first.
          shard_stats[i].completed = false;
          shard_stats[i].imb.emplace();
          shard_stats[i].imb->completed = false;
          return;
        }
        opts.cancel = &stop;
        opts.root_begin = static_cast<size_t>(ranges[i].first);
        opts.root_end = static_cast<size_t>(ranges[i].second);
        ImbStats is = ImbEngine(g, opts).Run(
            [&](const Biplex& b) { return delivery.Deliver(b); });
        EnumerateStats& s = shard_stats[i];
        s.work_units = is.nodes;
        s.completed = is.completed;
        s.imb = is;
      });
    }
    pool.Wait();
  }
  if (std::string err = errors.Take(); !err.empty()) {
    return RejectedStats(std::move(err));
  }

  EnumerateStats out = MergeShardStats(std::move(shard_stats));
  out.solutions = delivery.delivered();
  out.seconds = timer.ElapsedSeconds();
  return out;
}

// ------------------------------------- everything else: components -------

/// Sink handed to a component worker's backend: translates the
/// component's compact ids back to parent ids (the maps are ascending, so
/// sortedness is preserved) and forwards to the shared delivery.
class MappingSink final : public SolutionSink {
 public:
  MappingSink(SharedDelivery* delivery, const InducedSubgraph& component)
      : delivery_(delivery), component_(component) {}

  bool Accept(const Biplex& solution) override {
    Biplex mapped;
    mapped.left.reserve(solution.left.size());
    for (VertexId v : solution.left) {
      mapped.left.push_back(component_.left_map[v]);
    }
    mapped.right.reserve(solution.right.size());
    for (VertexId u : solution.right) {
      mapped.right.push_back(component_.right_map[u]);
    }
    return delivery_->Deliver(mapped);
  }

 private:
  SharedDelivery* delivery_;
  const InducedSubgraph& component_;
};

/// `min_shards` is the number of eligible components below which the plan
/// declines: 2 (the historical floor — any split beats none) when this is
/// the only parallel plan for the algorithm, `threads` when a
/// work-stealing fallback exists and a component split that cannot keep
/// every worker busy should yield to it.
std::optional<EnumerateStats> TryRunParallelComponents(
    const PreparedGraph& prepared, const EnumerateRequest& request,
    const AlgorithmRegistry& registry, size_t threads, SolutionSink* sink,
    size_t min_shards) {
  if (!ComponentShardingIsSafe(request.k, request.theta_left,
                               request.theta_right)) {
    return std::nullopt;
  }
  // max_links is an engine-internal work counter with no cross-engine
  // accounting hook; copying it into every shard would turn the global
  // budget into a per-shard one (a truncated 1-thread run could "complete"
  // in parallel). Run sequentially rather than change its meaning.
  if (request.max_links != 0) return std::nullopt;
  WallTimer timer;
  const BipartiteGraph& g = prepared.ExecutionGraph();

  // Cheap labeling pass first (cached on the prepared graph, so repeated
  // parallel queries of one session pay for it once): a component too
  // small for the thresholds cannot host a deliverable solution (and
  // spanning solutions are excluded by the safety check), and unless at
  // least two components survive that filter the common single-component
  // case bails out here without materializing any induced subgraph.
  const ComponentLabeling& labels = prepared.Components();
  std::vector<std::pair<size_t, size_t>> comp_sizes(labels.num_components);
  for (VertexId l = 0; l < g.NumLeft(); ++l) {
    ++comp_sizes[labels.left[l]].first;
  }
  for (VertexId r = 0; r < g.NumRight(); ++r) {
    ++comp_sizes[labels.right[r]].second;
  }
  std::vector<int> shard_of(labels.num_components, -1);
  int num_shards = 0;
  for (int c = 0; c < labels.num_components; ++c) {
    if (comp_sizes[c].first >= request.theta_left &&
        comp_sizes[c].second >= request.theta_right) {
      shard_of[c] = num_shards++;
    }
  }
  if (static_cast<size_t>(num_shards) < std::max<size_t>(2, min_shards)) {
    return std::nullopt;
  }

  // Every component, materialized once on the prepared graph and shared
  // by all subsequent component-sharded queries; this query only indexes
  // into the cache. The labeling bail-outs above keep single-component
  // graphs (the common case) from ever paying the materialization.
  const std::vector<InducedSubgraph>& components =
      prepared.ComponentSubgraphs();
  std::vector<size_t> shard_comp;  // component id of each shard
  shard_comp.reserve(num_shards);
  for (int c = 0; c < labels.num_components; ++c) {
    if (shard_of[c] >= 0) shard_comp.push_back(static_cast<size_t>(c));
  }

  CancellationToken stop(request.cancellation);
  SharedDelivery delivery(request, sink, &stop);
  ErrorCollector errors;
  std::vector<EnumerateStats> shard_stats(shard_comp.size());
  {
    // Big components first so a straggler starts early. The cache is
    // shared and immutable, so order the shard index, not the subgraphs.
    std::sort(shard_comp.begin(), shard_comp.end(),
              [&](size_t a, size_t b) {
                return components[a].graph.NumEdges() >
                       components[b].graph.NumEdges();
              });
    ThreadPool pool(std::min(threads, shard_comp.size()));
    for (size_t i = 0; i < shard_comp.size(); ++i) {
      SubmitGuarded(&pool, &errors, [&, i] {
        const InducedSubgraph& component = components[shard_comp[i]];
        EnumerateRequest shard_request = request;
        shard_request.cancellation = &stop;
        shard_request.threads = 1;
        if (!RemainingBudget(request, timer,
                             &shard_request.time_budget_seconds)) {
          shard_stats[i].completed = false;
          return;
        }
        std::unique_ptr<AlgorithmBackend> backend =
            registry.Create(shard_request.algorithm);
        MappingSink mapping(&delivery, component);
        // Each shard wraps its component in a borrowed prepared graph (no
        // artifacts, no scratch): workers must not share the session's
        // single-threaded scratch, and the cached component graphs must
        // stay untouched for the queries that follow.
        std::shared_ptr<const PreparedGraph> shard_prepared =
            PreparedGraph::Borrow(component.graph);
        QueryContext shard_ctx{shard_prepared.get(), nullptr};
        shard_stats[i] = backend->Run(shard_ctx, shard_request, &mapping);
        if (!shard_stats[i].error.empty()) {
          errors.Record(shard_stats[i].error);
          stop.Cancel();  // identical rejection awaits the other shards
        }
      });
    }
    pool.Wait();
  }
  if (std::string err = errors.Take(); !err.empty()) {
    return RejectedStats(std::move(err));
  }

  EnumerateStats out = MergeShardStats(std::move(shard_stats));
  out.solutions = delivery.delivered();
  out.seconds = timer.ElapsedSeconds();
  return out;
}

}  // namespace

size_t ResolveThreadCount(int threads) {
  // Clamp absurd requests: beyond this, extra workers only add memory and
  // scheduler pressure (and std::thread creation can throw once the
  // process hits its thread limit, which nothing above could report
  // cleanly). Pool sizes are further capped by the number of shards.
  constexpr size_t kMaxThreads = 256;
  if (threads <= 0) return std::min(ThreadPool::HardwareThreads(), kMaxThreads);
  return std::min(static_cast<size_t>(threads), kMaxThreads);
}

bool ComponentShardingIsSafe(KPair k, size_t theta_left, size_t theta_right) {
  // A maximal k-biplex S = (L', R') touching two or more connected
  // components satisfies two structural facts:
  //   (1) if |L'| > k.right, every right member is confined to the
  //       components L' touches (a right vertex elsewhere would
  //       disconnect all of L'); so either L' spans >= 2 components —
  //       which forces |R'| <= 2*k.left, because each touched component
  //       must hold >= |R'| - k.left right members — or L' sits in one
  //       component and S does not span at all. Hence a spanning S has
  //       |L'| <= k.right or |R'| <= 2*k.left.
  //   (2) symmetrically, |R'| <= k.left or |L'| <= 2*k.right.
  // The thresholds exclude every spanning solution when they contradict
  // (1) or (2). The same bound makes per-component maximality global:
  // a delivered solution has |R'| >= theta_right > k.left and
  // |L'| >= theta_left > k.right, so no vertex of another component can
  // be added to it.
  const size_t kl = static_cast<size_t>(k.left);
  const size_t kr = static_cast<size_t>(k.right);
  return (theta_left > kr && theta_right > 2 * kl) ||
         (theta_right > kl && theta_left > 2 * kr);
}

std::optional<EnumerateStats> TryRunParallel(const PreparedGraph& prepared,
                                             const EnumerateRequest& request,
                                             const AlgorithmRegistry& registry,
                                             const AlgorithmInfo& info,
                                             SolutionSink* sink) {
  const size_t threads = ResolveThreadCount(request.threads);
  if (threads < 2) return std::nullopt;
  const BipartiteGraph& g = prepared.ExecutionGraph();
  if (info.name == "brute-force") {
    if (g.NumLeft() == 0) return std::nullopt;  // one mask; nothing to split
    return RunParallelBruteForce(g, request, threads, sink);
  }
  if (info.name == "imb") {
    // Single root: nothing to split, run sequentially. The empty graph
    // (0 roots) stays on the parallel plan so its result and stats schema
    // match any other parallel imb run; its sole (0, 0) shard reports the
    // empty biplex exactly like the sequential backend.
    if (g.NumLeft() + g.NumRight() == 1) return std::nullopt;
    return RunParallelImb(g, request, threads, sink);
  }
  // Traversal family: prefer component sharding when the split alone can
  // keep every worker busy; otherwise parallelize *inside* the (possibly
  // single) component with the work-stealing expansion scheduler, which
  // needs no sharding-safety precondition. A partial component split
  // (2 <= shards < threads) remains the last resort for requests the
  // scheduler declines (backend options, max_links).
  if (info.name == "itraversal" || info.name == "itraversal-es" ||
      info.name == "itraversal-es-rs" || info.name == "btraversal" ||
      info.name == "large-mbp") {
    if (auto components = TryRunParallelComponents(
            prepared, request, registry, threads, sink,
            /*min_shards=*/threads)) {
      return components;
    }
    if (auto scheduled =
            TryRunTraversalScheduler(g, request, info.name, threads, sink)) {
      return scheduled;
    }
    return TryRunParallelComponents(prepared, request, registry, threads,
                                    sink, /*min_shards=*/2);
  }
  // Like the component plan's max_links guard, the inflation baseline's
  // max_inflated_edges is a per-enumeration memory guard: copying it into
  // every component shard would multiply the allowed blow-up and flip OUT
  // runs to "completed".
  if (info.name == "inflation" &&
      request.backend_options.count("max_inflated_edges") != 0) {
    return std::nullopt;
  }
  return TryRunParallelComponents(prepared, request, registry, threads,
                                  sink, /*min_shards=*/2);
}

}  // namespace internal
}  // namespace kbiplex
