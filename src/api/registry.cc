#include "api/registry.h"

#include <algorithm>
#include <cctype>

namespace kbiplex {

std::string NormalizeAlgorithmName(const std::string& name) {
  std::string out = name;
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

AlgorithmRegistry& AlgorithmRegistry::Global() {
  static AlgorithmRegistry* registry = [] {
    auto* r = new AlgorithmRegistry();
    internal::RegisterBuiltinAlgorithms(r);
    return r;
  }();
  return *registry;
}

bool AlgorithmRegistry::Register(AlgorithmInfo info,
                                 AlgorithmFactory factory) {
  std::string key = NormalizeAlgorithmName(info.name);
  info.name = key;
  MutexLock lock(&mu_);
  return entries_.emplace(std::move(key), Entry{std::move(info),
                                                std::move(factory)})
      .second;
}

bool AlgorithmRegistry::Contains(const std::string& name) const {
  MutexLock lock(&mu_);
  return entries_.count(NormalizeAlgorithmName(name)) != 0;
}

std::optional<AlgorithmInfo> AlgorithmRegistry::Find(
    const std::string& name) const {
  MutexLock lock(&mu_);
  auto it = entries_.find(NormalizeAlgorithmName(name));
  if (it == entries_.end()) return std::nullopt;
  return it->second.info;
}

std::unique_ptr<AlgorithmBackend> AlgorithmRegistry::Create(
    const std::string& name) const {
  AlgorithmFactory factory;
  {
    MutexLock lock(&mu_);
    auto it = entries_.find(NormalizeAlgorithmName(name));
    if (it == entries_.end()) return nullptr;
    factory = it->second.factory;
  }
  return factory();
}

std::vector<std::string> AlgorithmRegistry::Names() const {
  MutexLock lock(&mu_);
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) names.push_back(name);
  return names;
}

std::vector<AlgorithmInfo> AlgorithmRegistry::List() const {
  MutexLock lock(&mu_);
  std::vector<AlgorithmInfo> infos;
  infos.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) infos.push_back(entry.info);
  return infos;
}

}  // namespace kbiplex
