// Cross-request aggregation of EnumerateStats: the serving daemon's
// `stats` command reports, per graph and per algorithm plus server-wide,
// the summed counters of every request it executed, and a latency
// histogram (p50/p99) per algorithm. The aggregator is the single point
// all worker threads record into, so its totals match the per-request
// `done` stats by construction — a property the serving tests assert.
#ifndef KBIPLEX_API_STATS_AGGREGATOR_H_
#define KBIPLEX_API_STATS_AGGREGATOR_H_

#include <array>
#include <cstdint>
#include <map>
#include <string>

#include "api/enumerate_stats.h"
#include "util/sync.h"
#include "util/thread_annotations.h"

namespace kbiplex {

/// Log-scaled latency histogram: 64 buckets spanning 1 microsecond to
/// ~2.5 hours, each bucket covering a factor of ~1.26 (2^(1/3)), so a
/// quantile read off the bucket boundaries is within ~26% of the true
/// value — the right resolution for "is p99 a millisecond or a second".
class LatencyHistogram {
 public:
  static constexpr size_t kBuckets = 64;

  void Record(double seconds);

  uint64_t count() const { return count_; }

  /// The upper bound of the bucket holding the q-quantile (0 < q <= 1);
  /// 0 when empty.
  double Quantile(double q) const;

  /// Merges another histogram into this one (bucket-wise addition).
  void Merge(const LatencyHistogram& other);

 private:
  static size_t BucketOf(double seconds);
  static double UpperBound(size_t bucket);

  std::array<uint64_t, kBuckets> buckets_{};
  uint64_t count_ = 0;
};

/// Summed shared-field counters of a set of EnumerateStats.
struct RequestAggregate {
  uint64_t requests = 0;
  uint64_t errors = 0;       // rejected requests (non-empty stats.error)
  uint64_t incomplete = 0;   // ran but stopped early (budget, cap, cancel)
  uint64_t cancelled = 0;    // observed their cancellation token fire
  uint64_t solutions = 0;
  uint64_t work_units = 0;
  double total_seconds = 0;  // summed per-request wall clock

  void Add(const EnumerateStats& stats);
  void Merge(const RequestAggregate& other);
};

/// Thread-safe aggregation keyed by graph name and by algorithm.
/// Recording is a handful of additions under one mutex — negligible next
/// to any enumeration — and snapshots copy the maps out so JSON emission
/// happens outside the lock.
class StatsAggregator {
 public:
  void Record(const std::string& graph, const std::string& algorithm,
              const EnumerateStats& stats) KBIPLEX_EXCLUDES(mu_);

  RequestAggregate Total() const KBIPLEX_EXCLUDES(mu_);

  /// {"total": {...}, "graphs": {name: {...}},
  ///  "algorithms": {name: {..., "p50_s": x, "p99_s": y}}}
  std::string ToJson() const KBIPLEX_EXCLUDES(mu_);

 private:
  struct AlgoAggregate {
    RequestAggregate agg;
    LatencyHistogram latency;
  };

  mutable Mutex mu_;
  RequestAggregate total_ KBIPLEX_GUARDED_BY(mu_);
  std::map<std::string, RequestAggregate> per_graph_ KBIPLEX_GUARDED_BY(mu_);
  std::map<std::string, AlgoAggregate> per_algo_ KBIPLEX_GUARDED_BY(mu_);
};

}  // namespace kbiplex

#endif  // KBIPLEX_API_STATS_AGGREGATOR_H_
