// The "prepare" half of the prepare/execute API: an immutable, shareable
// PreparedGraph owns a loaded BipartiteGraph plus the expensive
// preprocessing artifacts every query over that graph wants — the hybrid
// bitset adjacency index, the degeneracy renumbering (solutions are mapped
// back to input ids automatically), the connected-component labeling used
// by the parallel driver, and a core-decomposition bound that lets
// provably-empty queries answer instantly. Artifacts are built lazily, at
// most once, and are safe to consume from any number of concurrent
// QuerySessions (api/query_session.h):
//
//   auto prepared = PreparedGraph::Prepare(std::move(g),
//                                          {.renumber = true});
//   QuerySession session(prepared);
//   for (const EnumerateRequest& req : queries) {
//     session.Run(req, &sink);   // artifacts and scratch reused
//   }
//
// This mirrors the classic prepare/execute split of database engines: the
// one-shot Enumerate(g, request, sink) facade remains as a thin
// compatibility shim (prepare + single execute, no artifacts attached).
#ifndef KBIPLEX_API_PREPARED_GRAPH_H_
#define KBIPLEX_API_PREPARED_GRAPH_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "core/traversal_options.h"
#include "graph/adjacency_index.h"
#include "graph/bipartite_graph.h"
#include "graph/components.h"
#include "graph/renumber.h"
#include "util/sync.h"
#include "util/thread_annotations.h"

namespace kbiplex {

namespace update {
class UpdateBatch;
struct UpdateOptions;
struct UpdateResult;
struct EpochBuilder;
}  // namespace update

/// Which artifacts a PreparedGraph applies to its execution graph.
struct PrepareOptions {
  /// Attached-adjacency-index policy: kAuto attaches the hybrid bitset
  /// index when the graph has at least kAutoIndexMinEdges edges (the same
  /// threshold at which an engine would build a throwaway per-run index),
  /// kForce always attaches, kOff never does. The attached index is built
  /// once and shared by every query and session.
  AdjacencyAccelMode adjacency_index = AdjacencyAccelMode::kAuto;

  /// Row threshold forwarded to the index build
  /// (AdjacencyIndex::kAutoThreshold = heuristic).
  size_t adjacency_min_degree = AdjacencyIndex::kAutoThreshold;

  /// Memory budget (bytes) forwarded to the index build: bounds the
  /// row-container pool by demoting rows to the compact sorted-array
  /// representation and, past that, dropping rows back to CSR search
  /// (see adjacency_index.h). kNoBudget = unlimited, every row dense.
  size_t accel_budget_bytes = AdjacencyIndex::kNoBudget;

  /// Degeneracy-renumber the execution graph for cache locality (see
  /// graph/renumber.h). Queries still see and produce input-graph ids:
  /// every delivered solution is mapped back automatically.
  bool renumber = false;

  /// Answer thresholded queries whose result set the cached core bound
  /// proves empty without running a backend. On by default for prepared
  /// service graphs; the one-shot compatibility paths (Borrow, the CLI
  /// enumerate/large commands) turn it off so single-query runs keep the
  /// pre-session stats output — backend counter blocks included — byte
  /// for byte and never pay the core-bound build.
  bool core_bound_shortcut = true;
};

/// Build counters of the lazily-created artifacts; each counter is the
/// number of times the corresponding build actually ran, so a correctly
/// shared PreparedGraph reports at most 1 per artifact no matter how many
/// sessions raced to request it.
struct PrepareArtifactStats {
  int execution_graph_builds = 0;  // renumbering and/or index attach
  int component_builds = 0;
  int component_subgraph_builds = 0;  // materialized per-component graphs
  int core_bound_builds = 0;
  double build_seconds = 0;  // total time spent inside artifact builds

  // Memory footprint of the attached adjacency index (all zero when no
  // index was attached): total container bytes plus the per-representation
  // row counts and bytes of the roaring-style dense/sparse split, and the
  // number of qualifying rows a memory budget forced out entirely.
  size_t adjacency_memory_bytes = 0;
  size_t adjacency_dense_rows = 0;
  size_t adjacency_sparse_rows = 0;
  size_t adjacency_dropped_rows = 0;
  size_t adjacency_dense_bytes = 0;
  size_t adjacency_sparse_bytes = 0;

  /// Serializes every field as one JSON object (additive schema: new
  /// fields append, existing keys never change meaning).
  std::string ToJson() const;
};

/// Cumulative update history of a PreparedGraph's epoch chain. A freshly
/// prepared graph is epoch 0; every successful ApplyUpdates produces a
/// new immutable PreparedGraph at epoch N+1 carrying the chain's
/// counters forward. Immutable on a published epoch — the update
/// machinery fills it in before the new epoch becomes visible.
struct UpdateLineage {
  uint64_t epoch = 0;              // position in the chain (0 = fresh)
  uint64_t updates_applied = 0;    // successful ApplyUpdates in the chain
  uint64_t edges_inserted = 0;     // cumulative real inserts
  uint64_t edges_deleted = 0;      // cumulative real deletes
  uint64_t full_rebuilds = 0;      // applies past the staleness threshold
  /// Artifacts carried across an epoch boundary by patching (spliced
  /// CSR + reused permutation, patched index rows, union-find/dirty-BFS
  /// component relabel, carried core bound) vs artifacts an apply
  /// invalidated outright — they rebuild from scratch, eagerly or on
  /// first use (a full rebuild invalidates every built artifact).
  uint64_t artifacts_incremental = 0;
  uint64_t artifacts_rebuilt = 0;
  double apply_seconds = 0;  // total wall time inside ApplyUpdates

  /// One JSON object, additive schema (same contract as
  /// PrepareArtifactStats::ToJson).
  std::string ToJson() const;
};

/// A graph prepared for repeated querying. Construct through Prepare()
/// (owning) or Borrow() (non-owning view, used by the one-shot
/// compatibility shim); instances are immutable from the caller's point of
/// view and every accessor is safe to call concurrently.
class PreparedGraph {
 public:
  /// Takes ownership of `g` and prepares it under `options`. Artifacts
  /// are built lazily on first use; call Warmup() to build them eagerly.
  static std::shared_ptr<const PreparedGraph> Prepare(
      BipartiteGraph g, PrepareOptions options = {});

  /// Wraps a caller-owned graph without copying it and without ever
  /// mutating it: no index is attached and no renumbering happens, so
  /// execution matches a direct run on `g` exactly. `g` must outlive the
  /// returned object.
  static std::shared_ptr<const PreparedGraph> Borrow(const BipartiteGraph& g);

  PreparedGraph(const PreparedGraph&) = delete;
  PreparedGraph& operator=(const PreparedGraph&) = delete;

  /// The input graph, in input ids, exactly as handed to Prepare/Borrow.
  const BipartiteGraph& graph() const { return *graph_; }

  const PrepareOptions& options() const { return options_; }

  /// The graph queries execute on: the input graph with the prepare-time
  /// artifacts applied (renumbered ids and/or an attached adjacency
  /// index). Built on first call, then cached; thread-safe.
  const BipartiteGraph& ExecutionGraph() const;

  /// True iff the execution graph uses renumbered ids (solutions must be
  /// mapped back through Renumbering()).
  bool renumbered() const { return options_.renumber; }

  /// True iff this wraps a caller-owned graph (Borrow). Borrowed graphs
  /// serve the one-shot compatibility shim, so the facade applies none of
  /// the session-only execution changes (e.g. the core-bound
  /// short-circuit) to them.
  bool borrowed() const { return owned_ == nullptr; }

  /// The id maps of the renumbered execution graph. Requires renumbered().
  const RenumberedGraph& Renumbering() const;

  /// Connected-component labeling of the execution graph (consumed by the
  /// parallel driver). Built on first call, then cached; thread-safe.
  const ComponentLabeling& Components() const;

  /// Materialized induced subgraphs of every connected component of the
  /// execution graph, index-aligned with the labels of Components().
  /// Built on first call, then cached and shared by every subsequent
  /// component-sharded query; thread-safe. Roughly doubles the graph's
  /// resident memory, so callers should bail out via the cheap labeling
  /// (e.g. fewer than two shardable components) before touching this.
  const std::vector<InducedSubgraph>& ComponentSubgraphs() const;

  /// The largest a such that the (a,a)-core of the graph is non-empty
  /// (0 for an edgeless graph). Any k-biplex whose thresholds demand
  /// per-vertex degrees above this bound cannot exist, so sessions answer
  /// such queries instantly. Built on first call, then cached.
  size_t MaxUniformCore() const;

  /// Builds every artifact now (prepare-heavy, execute-light servers).
  void Warmup() const;

  /// Snapshot of the artifact build counters.
  PrepareArtifactStats artifact_stats() const;

  /// Position of this instance in its update chain (0 = fresh Prepare).
  uint64_t epoch() const { return lineage_.epoch; }

  /// The chain's cumulative update history.
  const UpdateLineage& lineage() const { return lineage_; }

  /// Applies an edge-update batch copy-on-write: this instance is left
  /// untouched (sessions borrowing it keep their snapshot), and on
  /// success the result carries a new immutable PreparedGraph at epoch
  /// N+1 with the same PrepareOptions. Artifacts this epoch already built
  /// are carried into the successor incrementally — spliced CSR rows,
  /// the reused degeneracy permutation, patched adjacency-index rows,
  /// union-find + dirty-component relabeling, a monotone core bound —
  /// unless the delta exceeds options.max_delta_fraction of the edge
  /// count, in which case the successor is rebuilt from scratch (lazy
  /// artifacts, like a fresh Prepare). Borrowed graphs reject updates.
  /// Thread-safe against concurrent queries; concurrent ApplyUpdates
  /// calls on the same instance are safe but produce sibling epochs —
  /// serialize updates per graph (the serving registry does) to keep a
  /// linear chain. Defined with the update subsystem (src/update/).
  update::UpdateResult ApplyUpdates(const update::UpdateBatch& batch,
                                    const update::UpdateOptions& options) const;

 private:
  /// The artifact build counters behind their own capability, so the
  /// thread-safety analysis can verify every access (the surrounding
  /// artifact members are published through std::call_once, which the
  /// analysis cannot model — see the invariant note below).
  struct BuildCounters {
    mutable Mutex mu;
    mutable PrepareArtifactStats stats KBIPLEX_GUARDED_BY(mu);

    /// Bumps one build counter and the build-seconds total.
    void Count(int PrepareArtifactStats::*counter, double seconds) const
        KBIPLEX_EXCLUDES(mu) {
      MutexLock lock(&mu);
      stats.*counter += 1;
      stats.build_seconds += seconds;
    }

    PrepareArtifactStats Snapshot() const KBIPLEX_EXCLUDES(mu) {
      MutexLock lock(&mu);
      return stats;
    }

    /// Records the memory footprint of the attached adjacency index.
    void RecordAdjacency(const AdjacencyIndex& index) const
        KBIPLEX_EXCLUDES(mu) {
      const AdjacencyIndex::RepresentationStats& rep =
          index.representation_stats();
      MutexLock lock(&mu);
      stats.adjacency_memory_bytes = index.MemoryBytes();
      stats.adjacency_dense_rows = rep.dense_rows;
      stats.adjacency_sparse_rows = rep.sparse_rows;
      stats.adjacency_dropped_rows = rep.dropped_rows;
      stats.adjacency_dense_bytes = rep.dense_bytes;
      stats.adjacency_sparse_bytes = rep.sparse_bytes;
    }
  };

  /// The epoch builder constructs successor instances directly (private
  /// constructor, lineage, pre-populated artifacts); see
  /// update/incremental.cc.
  friend struct update::EpochBuilder;

  PreparedGraph(BipartiteGraph g, PrepareOptions options);
  PreparedGraph(const BipartiteGraph* view, PrepareOptions options);

  void BuildExecutionGraph() const;

  PrepareOptions options_;
  // Owning mode stores the graph; view mode points at the caller's.
  // Mutable because attaching the lazily-built adjacency index is a
  // const-from-the-outside operation on the owned graph.
  mutable std::unique_ptr<BipartiteGraph> owned_;
  const BipartiteGraph* graph_ = nullptr;

  // Lazily-built artifacts. Invariant: each artifact member below is
  // written only inside the std::call_once of its once_flag and read only
  // after that call_once returned, which sequences the write before every
  // read — a publication pattern the thread-safety analysis cannot
  // express with GUARDED_BY (there is no mutex) but TSan verifies
  // dynamically (session_test builds artifacts from 8 racing sessions).
  mutable std::once_flag exec_once_;
  mutable RenumberedGraph renumbering_;        // engaged iff options_.renumber
  mutable const BipartiteGraph* exec_graph_ = nullptr;

  mutable std::once_flag components_once_;
  mutable ComponentLabeling components_;

  mutable std::once_flag component_subgraphs_once_;
  mutable std::vector<InducedSubgraph> component_subgraphs_;

  mutable std::once_flag core_bound_once_;
  mutable size_t max_uniform_core_ = 0;

  // Built-ness probes for the update machinery: each flag is stored
  // (release) as the last step of its artifact's call_once lambda and
  // loaded (acquire) by ApplyUpdates to decide which artifacts the
  // successor epoch should carry incrementally — without forcing builds
  // the predecessor never performed. Same publication invariant as the
  // artifact members above.
  mutable std::atomic<bool> exec_built_{false};
  mutable std::atomic<bool> components_built_{false};
  mutable std::atomic<bool> core_bound_built_{false};

  // Epoch chain history; written only between construction and
  // publication (EpochBuilder), immutable afterwards.
  UpdateLineage lineage_;

  BuildCounters counters_;
};

}  // namespace kbiplex

#endif  // KBIPLEX_API_PREPARED_GRAPH_H_
