// The unified result record of an enumeration run. The shared fields are
// normalized across the five backend families so harnesses can compare
// runs without knowing which backend produced them; the original
// per-backend counters remain available through the optional detail
// members (at most one is engaged).
#ifndef KBIPLEX_API_ENUMERATE_STATS_H_
#define KBIPLEX_API_ENUMERATE_STATS_H_

#include <cstdint>
#include <optional>
#include <string>

#include "baselines/imb.h"
#include "baselines/inflation_enum.h"
#include "core/large_mbp.h"
#include "core/traversal_options.h"

namespace kbiplex {

/// Outcome of one Enumerator run.
struct EnumerateStats {
  /// Registry name of the backend that ran (normalized to lower case).
  std::string algorithm;

  /// Non-empty iff the request was rejected before any enumeration work
  /// (unknown algorithm, unsupported asymmetric budgets, bad backend
  /// option, ...). A rejected run has completed = false.
  std::string error;

  /// Solutions delivered to the sink (after size-threshold filtering).
  uint64_t solutions = 0;

  /// Normalized work counter: solution-graph links for the traversal
  /// family, search-tree nodes for imb, inflated edges for the inflation
  /// baseline, candidate sets for brute force. Comparable only as an
  /// order of magnitude across backends.
  uint64_t work_units = 0;

  /// False iff the run was rejected or stopped early (budget exhausted,
  /// sink stop, or cancellation).
  bool completed = true;

  /// True iff the run observed its cancellation token fire.
  bool cancelled = false;

  /// True iff the inflation baseline refused the memory blow-up (the
  /// paper's OUT condition).
  bool out_of_memory = false;

  /// Wall-clock seconds of the run.
  double seconds = 0;

  // Backend-specific detail, preserved verbatim. At most one is engaged.
  std::optional<TraversalStats> traversal;
  std::optional<LargeMbpStats> large_mbp;
  std::optional<ImbStats> imb;
  std::optional<InflationBaselineStats> inflation;

  bool ok() const { return error.empty(); }

  /// One-line JSON rendering of the shared fields plus the engaged detail
  /// block; the CLI's --format json output.
  std::string ToJson() const;
};

}  // namespace kbiplex

#endif  // KBIPLEX_API_ENUMERATE_STATS_H_
