// Shared building blocks of the parallel execution plans (internal):
// the serialized delivery point every plan funnels solutions through,
// first-error collection across workers, traversal-counter merging, and
// the global-wall-clock budget helper. Used by api/parallel_driver.cc
// and api/traversal_scheduler.cc; not part of the public API.
#ifndef KBIPLEX_API_PARALLEL_SUPPORT_H_
#define KBIPLEX_API_PARALLEL_SUPPORT_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <string>

#include "api/enumerate_request.h"
#include "api/solution_sink.h"
#include "core/traversal_options.h"
#include "util/cancellation.h"
#include "util/sync.h"
#include "util/thread_annotations.h"
#include "util/timer.h"

namespace kbiplex {
namespace internal {

/// The workers' shared delivery point: serializes sink access, counts
/// delivered solutions with an atomic, and turns a global stop condition
/// (result cap, sink refusal) into a cancellation visible to every worker.
class SharedDelivery {
 public:
  SharedDelivery(const EnumerateRequest& request, SolutionSink* sink,
                 CancellationToken* stop)
      : request_(request), sink_(sink), stop_(stop) {}

  /// Thread-safe Deliver with the same semantics as the sequential
  /// facade: threshold filter, then sink, then the result cap; a solution
  /// counts as delivered only once the sink accepted it.
  bool Deliver(const Biplex& b) {
    if (b.left.size() < request_.theta_left ||
        b.right.size() < request_.theta_right) {
      return true;
    }
    MutexLock lock(&mu_);
    if (stopped_) return false;
    if (!sink_->Accept(b)) {
      Stop();
      return false;
    }
    const uint64_t n = delivered_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (request_.max_results != 0 && n >= request_.max_results) {
      Stop();
      return false;
    }
    return true;
  }

  uint64_t delivered() const {
    return delivered_.load(std::memory_order_relaxed);
  }

 private:
  void Stop() KBIPLEX_REQUIRES(mu_) {
    stopped_ = true;
    stop_->Cancel();
  }

  const EnumerateRequest& request_;
  SolutionSink* const sink_ KBIPLEX_PT_GUARDED_BY(mu_);
  CancellationToken* const stop_;  // CancellationToken is atomic
  Mutex mu_;
  std::atomic<uint64_t> delivered_{0};
  bool stopped_ KBIPLEX_GUARDED_BY(mu_) = false;
};

/// Collects the first error raised by any worker (engine rejection or a
/// propagated exception; engines do not throw in normal operation).
class ErrorCollector {
 public:
  void Record(const std::string& error) {
    if (error.empty()) return;
    MutexLock lock(&mu_);
    if (error_.empty()) error_ = error;
  }

  std::string Take() {
    MutexLock lock(&mu_);
    return error_;
  }

 private:
  Mutex mu_;
  std::string error_ KBIPLEX_GUARDED_BY(mu_);
};

/// Adds worker-local traversal counters into an accumulator. `completed`
/// holds iff every contribution completed; `seconds` add up (aggregate
/// worker time, not wall clock); stack depths take the maximum.
inline void MergeInto(TraversalStats* into, const TraversalStats& s) {
  into->solutions_found += s.solutions_found;
  into->solutions_emitted += s.solutions_emitted;
  into->links += s.links;
  into->links_pruned_right_shrinking += s.links_pruned_right_shrinking;
  into->links_pruned_exclusion += s.links_pruned_exclusion;
  into->almost_sat_graphs += s.almost_sat_graphs;
  into->local_solutions += s.local_solutions;
  into->dedup_hits += s.dedup_hits;
  into->candidates_generated += s.candidates_generated;
  into->candidates_pruned += s.candidates_pruned;
  into->local_stats.b_subsets += s.local_stats.b_subsets;
  into->local_stats.a_subsets += s.local_stats.a_subsets;
  into->local_stats.local_solutions += s.local_stats.local_solutions;
  into->local_stats.adjacency_tests += s.local_stats.adjacency_tests;
  into->completed = into->completed && s.completed;
  into->seconds += s.seconds;  // aggregate worker time, not wall clock
  into->max_stack_depth = std::max(into->max_stack_depth, s.max_stack_depth);
}

/// The time budget is global: a shard dequeued late must not restart the
/// clock, so each one gets the budget *remaining* on the driver's timer
/// when it actually starts. Returns false when the budget is already
/// spent and the shard should not run at all.
inline bool RemainingBudget(const EnumerateRequest& request,
                            const WallTimer& timer, double* remaining) {
  *remaining = 0;  // 0 = unlimited
  if (request.time_budget_seconds <= 0) return true;
  *remaining = request.time_budget_seconds - timer.ElapsedSeconds();
  return *remaining > 0;
}

}  // namespace internal
}  // namespace kbiplex

#endif  // KBIPLEX_API_PARALLEL_SUPPORT_H_
