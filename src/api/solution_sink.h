// Where enumerated solutions go. Every backend used to define its own
// std::function callback alias (SolutionCallback, ImbCallback, plain
// std::function in the inflation baseline); the unified API replaces them
// with one polymorphic sink so delivery policies — collect, count, stream,
// forward — compose with any backend.
#ifndef KBIPLEX_API_SOLUTION_SINK_H_
#define KBIPLEX_API_SOLUTION_SINK_H_

#include <cstdint>
#include <functional>
#include <ostream>
#include <vector>

#include "core/biplex.h"
#include "util/sync.h"
#include "util/thread_annotations.h"

namespace kbiplex {

/// Receives each delivered solution; Accept returning false stops the
/// enumeration (the run then reports completed = false).
///
/// Threading contract: a multi-threaded run (EnumerateRequest::threads !=
/// 1) may invoke Accept from worker threads. Calls are serialized — at
/// most one Accept executes at a time — but they arrive on changing
/// threads, so a sink must not rely on thread identity (thread-local
/// state, affinity to the constructing thread). A sink declares it
/// tolerates this by overriding ThreadCompatible() to return true; the
/// facade deterministically rejects every threads != 1 request whose sink
/// does not (even when the run would have fallen back to the sequential
/// path — plan selection depends on graph and hardware, the contract must
/// not), with an error naming SynchronizedSink as the standard remedy.
/// All built-in sinks are thread-compatible; custom sinks default to the
/// conservative answer.
class SolutionSink {
 public:
  virtual ~SolutionSink() = default;
  virtual bool Accept(const Biplex& solution) = 0;

  /// True iff Accept may be invoked from worker threads (serialized, one
  /// call at a time). Defaults to false: a custom sink must opt in, or be
  /// wrapped in SynchronizedSink, before it can serve a parallel run.
  virtual bool ThreadCompatible() const { return false; }
};

/// Adapts a plain callback to the sink interface. Defaults to declaring
/// thread compatibility — parallel runs invoke the callback serialized
/// from worker threads, which plain lambdas tolerate — so the convenience
/// entry points (Enumerator::Run(cb), QuerySession::Run(cb)) keep working
/// with threads != 1. A callback that captures thread-affine state
/// (thread_local caches, single-threaded framework handles) should be
/// constructed with thread_compatible = false to get the same
/// deterministic rejection a custom sink subclass gets.
class CallbackSink final : public SolutionSink {
 public:
  explicit CallbackSink(std::function<bool(const Biplex&)> fn,
                        bool thread_compatible = true)
      : fn_(std::move(fn)), thread_compatible_(thread_compatible) {}

  bool Accept(const Biplex& solution) override { return fn_(solution); }

  bool ThreadCompatible() const override { return thread_compatible_; }

 private:
  std::function<bool(const Biplex&)> fn_;
  bool thread_compatible_;
};

/// Counts solutions without materializing them.
class CountingSink final : public SolutionSink {
 public:
  bool Accept(const Biplex&) override {
    ++count_;
    return true;
  }

  bool ThreadCompatible() const override { return true; }

  uint64_t count() const { return count_; }

 private:
  uint64_t count_ = 0;
};

/// Materializes every solution; Take() hands the batch out, sorted in the
/// canonical biplex order unless constructed with sorted = false.
class CollectingSink final : public SolutionSink {
 public:
  explicit CollectingSink(bool sorted = true) : sorted_(sorted) {}

  bool Accept(const Biplex& solution) override {
    solutions_.push_back(solution);
    return true;
  }

  bool ThreadCompatible() const override { return true; }

  size_t size() const { return solutions_.size(); }

  /// Moves the collected solutions out, sorting first when requested.
  std::vector<Biplex> Take();

 private:
  bool sorted_;
  std::vector<Biplex> solutions_;
};

/// Serializes concurrent Accept calls onto a single-threaded inner sink
/// with a mutex. Wrap any of the sinks above (collecting, counting,
/// stream, callback) to share one sink between concurrently running
/// enumerations. Note a single parallel run does NOT need this: the
/// driver already serializes sink access internally (with result-cap
/// accounting this wrapper has no view of); the wrapper is for embedders
/// pointing several independent Run() calls at one sink. The inner sink
/// is not owned and must outlive the wrapper.
/// A stop request (inner Accept returning false) is sticky: once refused,
/// every later Accept returns false without reaching the inner sink, so
/// racing workers cannot deliver past a sink-initiated stop.
class SynchronizedSink final : public SolutionSink {
 public:
  explicit SynchronizedSink(SolutionSink* inner) : inner_(inner) {}

  bool Accept(const Biplex& solution) override {
    MutexLock lock(&mu_);
    if (stopped_) return false;
    if (!inner_->Accept(solution)) stopped_ = true;
    return !stopped_;
  }

  bool ThreadCompatible() const override { return true; }

 private:
  Mutex mu_;
  SolutionSink* const inner_;  // set at construction, never reseated
  bool stopped_ KBIPLEX_GUARDED_BY(mu_) = false;
};

/// Buffers solutions and forwards them to an inner sink in the canonical
/// biplex order (core/biplex.h operator<) on Flush(). Parallel runs
/// deliver a deterministic solution *set* but a scheduling-dependent
/// *order*; wrapping an order-sensitive sink (stream writers, diff-based
/// comparisons) in a SortingSink makes the full output byte-identical
/// across thread counts. The inner sink is not owned and must outlive the
/// wrapper; a destructor does not flush — an unflushed buffer is
/// discarded, so the owner decides whether a stopped run's partial batch
/// is still worth emitting.
class SortingSink final : public SolutionSink {
 public:
  explicit SortingSink(SolutionSink* inner) : inner_(inner) {}

  bool Accept(const Biplex& solution) override {
    buffer_.push_back(solution);
    return true;
  }

  /// Buffering tolerates worker threads (calls are serialized upstream).
  bool ThreadCompatible() const override { return true; }

  size_t buffered() const { return buffer_.size(); }

  /// Sorts the buffer and forwards every solution to the inner sink, in
  /// order, stopping early if the inner sink refuses one. Returns false
  /// on such a refusal. The buffer is emptied either way; Flush may be
  /// called repeatedly (each call emits the batch accepted since the
  /// previous one).
  bool Flush();

 private:
  SolutionSink* const inner_;
  std::vector<Biplex> buffer_;
};

/// Streams solutions to an output stream as they arrive.
class StreamWriterSink final : public SolutionSink {
 public:
  enum class Format {
    kText,       // "l1 l2 | r1 r2", one solution per line
    kJsonLines,  // {"left":[..],"right":[..]}, one object per line
  };

  /// `out` must outlive the sink.
  explicit StreamWriterSink(std::ostream* out, Format format = Format::kText)
      : out_(out), format_(format) {}

  bool Accept(const Biplex& solution) override;

  bool ThreadCompatible() const override { return true; }

  uint64_t written() const { return written_; }

 private:
  std::ostream* out_;
  Format format_;
  uint64_t written_ = 0;
};

}  // namespace kbiplex

#endif  // KBIPLEX_API_SOLUTION_SINK_H_
