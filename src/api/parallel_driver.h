// The multi-threaded enumeration driver behind EnumerateRequest::threads.
//
// Parallelism lives at the facade layer: every worker runs an existing
// sequential engine on a shard chosen so that the union of the shards'
// solution sets provably equals the sequential run's set. Three plans:
//
//   brute-force     left-mask ranges: each worker scans a slice of the
//                   2^|L| candidate masks; maximality is judged against
//                   the whole graph, so slices are disjoint and complete.
//                   Always available.
//   imb             root-branch ranges of the set-enumeration tree: the
//                   top-level branches are independent, so a partition of
//                   them across workers is disjoint and complete. Always
//                   available.
//   traversal       work-stealing expansion (api/traversal_scheduler.h):
//   family,         workers expand one solution per task with private
//   large-mbp       sequential engines, deduplicating through a shared
//                   store — correct on any graph, including the dense
//                   single-component case sharding cannot touch. Chosen
//                   when component sharding (below) cannot keep every
//                   worker busy.
//   everything else connected-component sharding: each worker enumerates
//   (traversal      one component's induced subgraph. Only equivalent
//   family,         when the size thresholds provably exclude solutions
//   large-mbp,      spanning several components (see
//   inflation)      ComponentShardingIsSafe); otherwise the facade falls
//                   back to the sequential path rather than risk a wrong
//                   answer.
//
// Global budgets stay global: workers share one Delivery guarding the
// caller's sink with a mutex and counting delivered solutions atomically;
// reaching max_results (or a sink refusal) fires a driver-owned
// CancellationToken chained to the caller's token, stopping every worker
// at its next poll point.
#ifndef KBIPLEX_API_PARALLEL_DRIVER_H_
#define KBIPLEX_API_PARALLEL_DRIVER_H_

#include <cstddef>
#include <optional>

#include "api/enumerate_request.h"
#include "api/enumerate_stats.h"
#include "api/prepared_graph.h"
#include "api/registry.h"
#include "api/solution_sink.h"
#include "graph/bipartite_graph.h"

namespace kbiplex {
namespace internal {

/// Resolves EnumerateRequest::threads: 0 maps to the hardware thread
/// count, everything else to itself. Callers reject negatives upfront.
size_t ResolveThreadCount(int threads);

/// True iff component sharding provably yields the sequential solution
/// set: the size thresholds must exclude every maximal k-biplex that
/// spans two or more connected components (such spanning solutions exist
/// whenever the budgets allow fully-disconnected members — two disjoint
/// edges form one maximal 1-biplex — so this is a real restriction, not
/// an optimization detail).
bool ComponentShardingIsSafe(KPair k, size_t theta_left, size_t theta_right);

/// Runs `request` with the multi-threaded driver against
/// `prepared.ExecutionGraph()`, or returns nullopt when no equivalent
/// parallel plan exists (single worker resolved, unsafe component
/// sharding, degenerate graph) — the caller then runs the normal
/// sequential path. The component plan consumes the prepared graph's
/// cached component labeling instead of recomputing it per run. Solutions
/// are delivered in execution-graph ids; renumbering map-back is the
/// caller's concern. Pre-conditions: the request passed facade validation
/// for `info` and request.threads >= 0.
std::optional<EnumerateStats> TryRunParallel(const PreparedGraph& prepared,
                                             const EnumerateRequest& request,
                                             const AlgorithmRegistry& registry,
                                             const AlgorithmInfo& info,
                                             SolutionSink* sink);

}  // namespace internal
}  // namespace kbiplex

#endif  // KBIPLEX_API_PARALLEL_DRIVER_H_
