#include "api/enumerator.h"

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "api/prepared_graph.h"
#include "api/query_session.h"
#include "baselines/imb.h"
#include "baselines/inflation_enum.h"
#include "core/brute_force.h"
#include "core/btraversal.h"
#include "core/large_mbp.h"
#include "util/timer.h"

namespace kbiplex {
namespace {

/// Consumes EnumerateRequest::backend_options entries, collecting the
/// first parse failure and flagging keys no backend recognized.
class OptionReader {
 public:
  explicit OptionReader(const std::map<std::string, std::string>& opts)
      : opts_(opts) {}

  void TakeBool(const std::string& key, bool* out) {
    auto v = Take(key);
    if (!v.has_value()) return;
    if (*v == "true" || *v == "1") {
      *out = true;
    } else if (*v == "false" || *v == "0") {
      *out = false;
    } else {
      Fail(key, *v, "true|false");
    }
  }

  void TakeSize(const std::string& key, size_t* out) {
    auto v = Take(key);
    if (!v.has_value()) return;
    try {
      *out = static_cast<size_t>(std::stoull(*v));
    } catch (...) {
      Fail(key, *v, "a non-negative integer");
    }
  }

  template <typename T>
  void TakeChoice(const std::string& key,
                  std::initializer_list<std::pair<const char*, T>> choices,
                  T* out) {
    auto v = Take(key);
    if (!v.has_value()) return;
    std::string allowed;
    for (const auto& [name, value] : choices) {
      if (*v == name) {
        *out = value;
        return;
      }
      if (!allowed.empty()) allowed += '|';
      allowed += name;
    }
    Fail(key, *v, allowed);
  }

  /// Empty string iff every option parsed and was recognized.
  std::string Finish() const {
    if (!error_.empty()) return error_;
    for (const auto& [key, value] : opts_) {
      if (consumed_.count(key) == 0) {
        return "unknown backend option '" + key + "'";
      }
    }
    return "";
  }

 private:
  std::optional<std::string> Take(const std::string& key) {
    auto it = opts_.find(key);
    if (it == opts_.end()) return std::nullopt;
    consumed_.emplace(key, true);
    return it->second;
  }

  void Fail(const std::string& key, const std::string& value,
            const std::string& expected) {
    if (error_.empty()) {
      error_ = "backend option '" + key + "' = '" + value + "' (expected " +
               expected + ")";
    }
  }

  const std::map<std::string, std::string>& opts_;
  std::map<std::string, bool> consumed_;
  std::string error_;
};

EnumerateStats Rejected(std::string message) {
  EnumerateStats out;
  out.error = std::move(message);
  out.completed = false;
  return out;
}

/// The facade-side delivery wrapper every backend routes solutions
/// through: enforces the size thresholds and max_results uniformly, even
/// for backends whose native options lack one of the knobs. A solution
/// counts as delivered only once the sink accepted it, so a sink-initiated
/// stop leaves `delivered` (and therefore stats.solutions) at the number
/// of solutions the sink actually took.
struct Delivery {
  const EnumerateRequest& request;
  SolutionSink* sink;
  uint64_t delivered = 0;

  bool Deliver(const Biplex& b) {
    if (b.left.size() < request.theta_left ||
        b.right.size() < request.theta_right) {
      return true;
    }
    if (!sink->Accept(b)) return false;
    ++delivered;
    if (request.max_results != 0 && delivered >= request.max_results) {
      return false;
    }
    return true;
  }
};

// ------------------------------------------------------ traversal family --

class TraversalBackend final : public AlgorithmBackend {
 public:
  explicit TraversalBackend(TraversalOptions base) : base_(base) {}

  EnumerateStats Run(const QueryContext& ctx, const EnumerateRequest& req,
                     SolutionSink* sink) override {
    const BipartiteGraph& g = ctx.prepared->ExecutionGraph();
    TraversalOptions opts = base_;
    opts.scratch = ctx.scratch;
    opts.k = req.k;
    opts.theta_left = req.theta_left;
    opts.theta_right = req.theta_right;
    opts.prune_small = opts.right_shrinking &&
                       (req.theta_left > 0 || req.theta_right > 0);
    opts.max_results = req.max_results;
    opts.time_budget_seconds = req.time_budget_seconds;
    opts.max_links = req.max_links;
    opts.cancel = req.cancellation;

    OptionReader reader(req.backend_options);
    reader.TakeChoice("anchored_side",
                      {{"left", Side::kLeft}, {"right", Side::kRight}},
                      &opts.anchored_side);
    reader.TakeChoice("local_impl",
                      {{"direct", LocalEnumImpl::kDirect},
                       {"inflation", LocalEnumImpl::kInflation}},
                      &opts.local_impl);
    reader.TakeChoice("local_l",
                      {{"l10", LRefinement::kL10}, {"l20", LRefinement::kL20}},
                      &opts.local.l_variant);
    reader.TakeChoice("local_r",
                      {{"r10", RRefinement::kR10}, {"r20", RRefinement::kR20}},
                      &opts.local.r_variant);
    reader.TakeBool("polynomial_delay_output",
                    &opts.polynomial_delay_output);
    reader.TakeChoice("store_backend",
                      {{"btree", StoreBackend::kBTree},
                       {"hash", StoreBackend::kHashSet},
                       {"both", StoreBackend::kBoth}},
                      &opts.store_backend);
    reader.TakeChoice("candidate_gen",
                      {{"auto", CandidateGenMode::kAuto},
                       {"scan", CandidateGenMode::kScan},
                       {"twohop", CandidateGenMode::kTwoHop}},
                      &opts.candidate_gen);
    reader.TakeChoice("adjacency_index",
                      {{"auto", AdjacencyAccelMode::kAuto},
                       {"off", AdjacencyAccelMode::kOff},
                       {"force", AdjacencyAccelMode::kForce}},
                      &opts.adjacency_accel);
    reader.TakeSize("accel_budget", &opts.accel_budget_bytes);
    if (std::string err = reader.Finish(); !err.empty()) {
      return Rejected(std::move(err));
    }
    if (opts.local_impl == LocalEnumImpl::kInflation && !req.k.IsUniform()) {
      return Rejected("local_impl=inflation requires uniform budgets");
    }

    Delivery delivery{req, sink};
    TraversalStats ts = TraversalEngine(g, opts).Run(
        [&](const Biplex& b) { return delivery.Deliver(b); });

    EnumerateStats out;
    out.solutions = delivery.delivered;
    out.work_units = ts.links;
    out.completed = ts.completed;
    out.seconds = ts.seconds;
    out.traversal = ts;
    return out;
  }

 private:
  TraversalOptions base_;
};

// ------------------------------------------------------------- large-mbp --

class LargeMbpBackend final : public AlgorithmBackend {
 public:
  EnumerateStats Run(const QueryContext& ctx, const EnumerateRequest& req,
                     SolutionSink* sink) override {
    const BipartiteGraph& g = ctx.prepared->ExecutionGraph();
    LargeMbpOptions opts;
    opts.scratch = ctx.scratch;
    opts.k = req.k;
    opts.theta_left = req.theta_left;
    opts.theta_right = req.theta_right;
    opts.max_results = req.max_results;
    opts.time_budget_seconds = req.time_budget_seconds;
    opts.cancel = req.cancellation;

    OptionReader reader(req.backend_options);
    reader.TakeBool("core_reduction", &opts.core_reduction);
    reader.TakeChoice("candidate_gen",
                      {{"auto", CandidateGenMode::kAuto},
                       {"scan", CandidateGenMode::kScan},
                       {"twohop", CandidateGenMode::kTwoHop}},
                      &opts.candidate_gen);
    reader.TakeChoice("adjacency_index",
                      {{"auto", AdjacencyAccelMode::kAuto},
                       {"off", AdjacencyAccelMode::kOff},
                       {"force", AdjacencyAccelMode::kForce}},
                      &opts.adjacency_accel);
    reader.TakeSize("accel_budget", &opts.accel_budget_bytes);
    if (std::string err = reader.Finish(); !err.empty()) {
      return Rejected(std::move(err));
    }

    Delivery delivery{req, sink};
    LargeMbpStats ls = LargeMbpEngine(g, opts).Run(
        [&](const Biplex& b) { return delivery.Deliver(b); });

    EnumerateStats out;
    out.solutions = delivery.delivered;
    out.work_units = ls.traversal.links;
    out.completed = ls.completed;
    out.seconds = ls.seconds;
    out.large_mbp = ls;
    return out;
  }
};

// ------------------------------------------------------------------- imb --

class ImbBackend final : public AlgorithmBackend {
 public:
  EnumerateStats Run(const QueryContext& ctx, const EnumerateRequest& req,
                     SolutionSink* sink) override {
    const BipartiteGraph& g = ctx.prepared->ExecutionGraph();
    ImbOptions opts;
    opts.k = req.k.left;  // uniformity validated by the facade
    opts.theta_left = req.theta_left;
    opts.theta_right = req.theta_right;
    opts.max_results = req.max_results;
    opts.time_budget_seconds = req.time_budget_seconds;
    opts.cancel = req.cancellation;

    OptionReader reader(req.backend_options);
    if (std::string err = reader.Finish(); !err.empty()) {
      return Rejected(std::move(err));
    }

    Delivery delivery{req, sink};
    ImbStats is = ImbEngine(g, opts).Run(
        [&](const Biplex& b) { return delivery.Deliver(b); });

    EnumerateStats out;
    out.solutions = delivery.delivered;
    out.work_units = is.nodes;
    out.completed = is.completed;
    out.seconds = is.seconds;
    out.imb = is;
    return out;
  }
};

// ------------------------------------------------------------- inflation --

class InflationBackend final : public AlgorithmBackend {
 public:
  EnumerateStats Run(const QueryContext& ctx, const EnumerateRequest& req,
                     SolutionSink* sink) override {
    const BipartiteGraph& g = ctx.prepared->ExecutionGraph();
    InflationBaselineOptions opts;
    opts.k = req.k.left;  // uniformity validated by the facade
    opts.time_budget_seconds = req.time_budget_seconds;
    opts.cancel = req.cancellation;
    // The baseline has no size thresholds: its result cap counts pre-filter
    // solutions, so with thresholds active the facade's Delivery enforces
    // max_results instead.
    const bool filtered = req.theta_left > 0 || req.theta_right > 0;
    opts.max_results = filtered ? 0 : req.max_results;

    OptionReader reader(req.backend_options);
    reader.TakeSize("max_inflated_edges", &opts.max_inflated_edges);
    if (std::string err = reader.Finish(); !err.empty()) {
      return Rejected(std::move(err));
    }

    Delivery delivery{req, sink};
    InflationBaselineStats is = InflationEngine(g, opts).Run(
        [&](const Biplex& b) { return delivery.Deliver(b); });

    EnumerateStats out;
    out.solutions = delivery.delivered;
    out.work_units = is.inflated_edges;
    out.completed = is.completed;
    out.out_of_memory = is.out_of_budget;
    out.seconds = is.seconds;
    out.inflation = is;
    return out;
  }
};

// ----------------------------------------------------------- brute force --

class BruteForceBackend final : public AlgorithmBackend {
 public:
  EnumerateStats Run(const QueryContext& ctx, const EnumerateRequest& req,
                     SolutionSink* sink) override {
    const BipartiteGraph& g = ctx.prepared->ExecutionGraph();
    OptionReader reader(req.backend_options);
    if (std::string err = reader.Finish(); !err.empty()) {
      return Rejected(std::move(err));
    }

    WallTimer timer;
    Deadline deadline(req.time_budget_seconds);
    bool scan_completed = true;
    std::vector<Biplex> all = BruteForceMaximalBiplexes(
        g, req.k, &deadline, req.cancellation, &scan_completed);

    EnumerateStats out;
    out.work_units = static_cast<uint64_t>(1)
                     << (g.NumLeft() + g.NumRight());  // candidate pairs
    out.completed = scan_completed;
    Delivery delivery{req, sink};
    for (const Biplex& b : all) {
      if (deadline.Expired() || Cancelled(req.cancellation)) {
        out.completed = false;
        break;
      }
      if (!delivery.Deliver(b)) {
        out.completed = false;
        break;
      }
    }
    out.solutions = delivery.delivered;
    out.seconds = timer.ElapsedSeconds();
    return out;
  }
};

}  // namespace

// ---------------------------------------------------------------- facade --

EnumerateStats Enumerator::Run(const EnumerateRequest& request,
                               SolutionSink* sink) const {
  // Prepare + single execute, with no artifacts attached and no session
  // scratch: a borrowed prepared graph executes exactly like a direct run
  // on the caller's graph, keeping the one-shot behavior of this shim
  // compatible with the pre-session API. (Sole deliberate exception: the
  // sink threading contract — threads != 1 with a sink that does not
  // declare ThreadCompatible() is now rejected; see api/solution_sink.h.)
  return internal::RunOnPrepared(*prepared_, /*scratch=*/nullptr, *registry_,
                                 request, sink);
}

EnumerateStats Enumerator::Run(
    const EnumerateRequest& request,
    const std::function<bool(const Biplex&)>& cb) const {
  CallbackSink sink(cb);
  return Run(request, &sink);
}

std::vector<Biplex> Enumerator::Collect(const EnumerateRequest& request,
                                        EnumerateStats* stats) const {
  CollectingSink sink;
  EnumerateStats s = Run(request, &sink);
  if (stats != nullptr) *stats = s;
  return sink.Take();
}

uint64_t Enumerator::Count(const EnumerateRequest& request,
                           EnumerateStats* stats) const {
  CountingSink sink;
  EnumerateStats s = Run(request, &sink);
  if (stats != nullptr) *stats = s;
  return sink.count();
}

EnumerateStats Enumerate(const BipartiteGraph& g,
                         const EnumerateRequest& request,
                         SolutionSink* sink) {
  return Enumerator(g).Run(request, sink);
}

// -------------------------------------------------------------- builtins --

namespace internal {

void RegisterBuiltinAlgorithms(AlgorithmRegistry* registry) {
  auto traversal = [registry](const char* name, const char* summary,
                              TraversalOptions base) {
    registry->Register(
        AlgorithmInfo{.name = name, .summary = summary},
        [base] { return std::make_unique<TraversalBackend>(base); });
  };
  traversal("itraversal",
            "reverse search with all three techniques (Algorithm 2)",
            MakeITraversalOptions(1));
  traversal("itraversal-es", "iTraversal without the exclusion strategy",
            MakeITraversalNoExclusionOptions(1));
  traversal("itraversal-es-rs", "left-anchored reverse search only",
            MakeITraversalLeftAnchoredOnlyOptions(1));
  traversal("btraversal",
            "conventional reverse-search framework (Algorithm 1)",
            MakeBTraversalOptions(1));
  registry->Register(
      AlgorithmInfo{.name = "large-mbp",
                    .summary = "Section 5 large-MBP enumeration with "
                               "(theta-k)-core pre-reduction",
                    .requires_theta = true},
      [] { return std::make_unique<LargeMbpBackend>(); });
  registry->Register(
      AlgorithmInfo{.name = "imb",
                    .summary = "iMB-style set-enumeration baseline",
                    .supports_asymmetric_k = false},
      [] { return std::make_unique<ImbBackend>(); });
  registry->Register(
      AlgorithmInfo{.name = "inflation",
                    .summary =
                        "FaPlexen-style graph-inflation baseline",
                    .supports_asymmetric_k = false},
      [] { return std::make_unique<InflationBackend>(); });
  registry->Register(
      AlgorithmInfo{.name = "brute-force",
                    .summary = "exhaustive reference enumerator",
                    .max_side = 20},
      [] { return std::make_unique<BruteForceBackend>(); });
}

}  // namespace internal
}  // namespace kbiplex
