// The one request type of the unified enumeration API. A request names an
// algorithm from the AlgorithmRegistry and carries every knob that is
// meaningful across backends: budgets, disconnection budgets, and size
// thresholds. Backend-specific tuning travels in `backend_options`, a
// string-keyed map documented per backend in api/enumerator.h, so adding a
// knob to one backend never changes this struct.
#ifndef KBIPLEX_API_ENUMERATE_REQUEST_H_
#define KBIPLEX_API_ENUMERATE_REQUEST_H_

#include <cstdint>
#include <map>
#include <string>

#include "core/biplex.h"
#include "util/cancellation.h"

namespace kbiplex {

/// Everything needed to run one enumeration, independent of the backend.
struct EnumerateRequest {
  /// Registry name of the backend; see AlgorithmRegistry::Names().
  /// Matching is case-insensitive.
  std::string algorithm = "itraversal";

  /// Per-side disconnection budgets (Definition 2.1). Backends that only
  /// support uniform budgets reject requests with k.left != k.right.
  KPair k = KPair::Uniform(1);

  /// Size thresholds: only solutions with |L'| >= theta_left and
  /// |R'| >= theta_right are delivered (0 = unconstrained). Backends with
  /// native size pruning (large-mbp, imb, the traversal family) push the
  /// thresholds into the search; the facade filters for the rest.
  size_t theta_left = 0;
  size_t theta_right = 0;

  /// Stop after this many delivered solutions (0 = all).
  uint64_t max_results = 0;

  /// Wall-clock budget in seconds (0 = unlimited); the paper's INF knob.
  double time_budget_seconds = 0;

  /// Abort once the backend generated this many work units — solution-graph
  /// links for the traversal family (the paper's UPP knob); ignored by
  /// backends without a comparable counter. 0 = unlimited.
  uint64_t max_links = 0;

  /// Worker threads of the run: 1 = sequential (the default), 0 = one per
  /// hardware thread, N = at most N workers (clamped to 256). With more than one thread the
  /// facade shards the enumeration across workers when a sharding plan is
  /// both available for the backend and provably equivalent to the
  /// sequential run (see api/parallel_driver.h); otherwise it falls back
  /// to the sequential path. A completed parallel run delivers exactly
  /// the 1-thread run's solution *set*, but the delivery *order* is
  /// unspecified and sinks are invoked from worker threads (serialized,
  /// one at a time). When a run stops early — max_results, time budget,
  /// sink stop — the cap is still enforced exactly, but *which* solutions
  /// arrive depends on worker interleaving. Because delivery may happen
  /// from worker threads, the sink must declare it tolerates that (see
  /// the threading contract in api/solution_sink.h): every request with
  /// threads != 1 is rejected when the sink's ThreadCompatible() returns
  /// false — wrap such a sink in SynchronizedSink or override the method.
  int threads = 1;

  /// Optional cooperative cancellation, polled by every backend at the
  /// same cadence as the wall-clock deadline. Not owned; may be null.
  const CancellationToken* cancellation = nullptr;

  /// Backend-specific knobs ("key" -> "value"); unknown keys are rejected
  /// so typos surface as errors. See the table in api/enumerator.h.
  std::map<std::string, std::string> backend_options;
};

}  // namespace kbiplex

#endif  // KBIPLEX_API_ENUMERATE_REQUEST_H_
