#include "api/enumerate_stats.h"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace kbiplex {
namespace {

void AppendEscaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

const char* Bool(bool b) { return b ? "true" : "false"; }

/// JSON has no inf/nan literals; default ostream formatting would emit
/// them bare and corrupt the document (time-budget edge cases can yield a
/// non-finite seconds value). Non-finite doubles render as null.
void AppendDouble(std::ostream& os, double value) {
  if (!std::isfinite(value)) {
    os << "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  os << buf;
}

}  // namespace

std::string EnumerateStats::ToJson() const {
  std::ostringstream os;
  os << "{\"algorithm\":";
  AppendEscaped(os, algorithm);
  if (!error.empty()) {
    os << ",\"error\":";
    AppendEscaped(os, error);
  }
  os << ",\"solutions\":" << solutions << ",\"work_units\":" << work_units
     << ",\"completed\":" << Bool(completed)
     << ",\"cancelled\":" << Bool(cancelled)
     << ",\"out_of_memory\":" << Bool(out_of_memory) << ",\"seconds\":";
  AppendDouble(os, seconds);
  if (traversal.has_value()) {
    const TraversalStats& t = *traversal;
    os << ",\"traversal\":{\"solutions_found\":" << t.solutions_found
       << ",\"solutions_emitted\":" << t.solutions_emitted
       << ",\"links\":" << t.links << ",\"links_pruned_right_shrinking\":"
       << t.links_pruned_right_shrinking
       << ",\"links_pruned_exclusion\":" << t.links_pruned_exclusion
       << ",\"almost_sat_graphs\":" << t.almost_sat_graphs
       << ",\"local_solutions\":" << t.local_solutions
       << ",\"dedup_hits\":" << t.dedup_hits
       << ",\"max_stack_depth\":" << t.max_stack_depth << "}";
  }
  if (large_mbp.has_value()) {
    const LargeMbpStats& l = *large_mbp;
    os << ",\"large_mbp\":{\"core_left\":" << l.core_left
       << ",\"core_right\":" << l.core_right
       << ",\"links\":" << l.traversal.links
       << ",\"solutions_found\":" << l.traversal.solutions_found << "}";
  }
  if (imb.has_value()) {
    os << ",\"imb\":{\"nodes\":" << imb->nodes
       << ",\"solutions\":" << imb->solutions << "}";
  }
  if (inflation.has_value()) {
    os << ",\"inflation\":{\"inflated_edges\":" << inflation->inflated_edges
       << ",\"solutions\":" << inflation->solutions
       << ",\"out_of_budget\":" << Bool(inflation->out_of_budget) << "}";
  }
  os << "}";
  return os.str();
}

}  // namespace kbiplex
