#include "api/enumerate_stats.h"

#include <sstream>

#include "util/json.h"

namespace kbiplex {

using json::AppendDouble;
using json::AppendEscaped;
using json::Bool;

std::string EnumerateStats::ToJson() const {
  std::ostringstream os;
  os << "{\"algorithm\":";
  AppendEscaped(os, algorithm);
  if (!error.empty()) {
    os << ",\"error\":";
    AppendEscaped(os, error);
  }
  os << ",\"solutions\":" << solutions << ",\"work_units\":" << work_units
     << ",\"completed\":" << Bool(completed)
     << ",\"cancelled\":" << Bool(cancelled)
     << ",\"out_of_memory\":" << Bool(out_of_memory) << ",\"seconds\":";
  AppendDouble(os, seconds);
  if (traversal.has_value()) {
    const TraversalStats& t = *traversal;
    os << ",\"traversal\":{\"solutions_found\":" << t.solutions_found
       << ",\"solutions_emitted\":" << t.solutions_emitted
       << ",\"links\":" << t.links << ",\"links_pruned_right_shrinking\":"
       << t.links_pruned_right_shrinking
       << ",\"links_pruned_exclusion\":" << t.links_pruned_exclusion
       << ",\"almost_sat_graphs\":" << t.almost_sat_graphs
       << ",\"local_solutions\":" << t.local_solutions
       << ",\"dedup_hits\":" << t.dedup_hits
       << ",\"max_stack_depth\":" << t.max_stack_depth
       << ",\"candidates_generated\":" << t.candidates_generated
       << ",\"candidates_pruned\":" << t.candidates_pruned
       << ",\"adjacency_tests\":" << t.local_stats.adjacency_tests
       << ",\"b_subsets\":" << t.local_stats.b_subsets
       << ",\"a_subsets\":" << t.local_stats.a_subsets << "}";
  }
  if (large_mbp.has_value()) {
    const LargeMbpStats& l = *large_mbp;
    os << ",\"large_mbp\":{\"core_left\":" << l.core_left
       << ",\"core_right\":" << l.core_right
       << ",\"links\":" << l.traversal.links
       << ",\"solutions_found\":" << l.traversal.solutions_found
       << ",\"candidates_generated\":" << l.traversal.candidates_generated
       << ",\"candidates_pruned\":" << l.traversal.candidates_pruned
       << ",\"adjacency_tests\":" << l.traversal.local_stats.adjacency_tests
       << "}";
  }
  if (imb.has_value()) {
    os << ",\"imb\":{\"nodes\":" << imb->nodes
       << ",\"solutions\":" << imb->solutions << "}";
  }
  if (inflation.has_value()) {
    os << ",\"inflation\":{\"inflated_edges\":" << inflation->inflated_edges
       << ",\"solutions\":" << inflation->solutions
       << ",\"out_of_budget\":" << Bool(inflation->out_of_budget) << "}";
  }
  os << "}";
  return os.str();
}

}  // namespace kbiplex
