#include "analysis/quasi_biclique.h"

#include <algorithm>
#include <cmath>

namespace kbiplex {
namespace {

/// Peeling state over a working copy of the graph restricted to `alive`
/// vertices.
struct PeelState {
  std::vector<size_t> ldeg, rdeg;
  std::vector<bool> lalive, ralive;
  size_t nl_alive = 0, nr_alive = 0;
};

PeelState InitState(const BipartiteGraph& g,
                    const std::vector<bool>& lremoved,
                    const std::vector<bool>& rremoved) {
  PeelState s;
  s.ldeg.assign(g.NumLeft(), 0);
  s.rdeg.assign(g.NumRight(), 0);
  s.lalive.assign(g.NumLeft(), false);
  s.ralive.assign(g.NumRight(), false);
  for (VertexId v = 0; v < g.NumLeft(); ++v) {
    s.lalive[v] = !lremoved[v];
    if (s.lalive[v]) ++s.nl_alive;
  }
  for (VertexId u = 0; u < g.NumRight(); ++u) {
    s.ralive[u] = !rremoved[u];
    if (s.ralive[u]) ++s.nr_alive;
  }
  for (VertexId v = 0; v < g.NumLeft(); ++v) {
    if (!s.lalive[v]) continue;
    for (VertexId u : g.LeftNeighbors(v)) {
      if (!s.ralive[u]) continue;
      ++s.ldeg[v];
      ++s.rdeg[u];
    }
  }
  return s;
}

/// True iff the alive subgraph satisfies the δ-QB property and thresholds.
bool SnapshotQualifies(const PeelState& s, double delta, size_t theta_l,
                       size_t theta_r) {
  if (s.nl_alive < theta_l || s.nr_alive < theta_r) return false;
  const double lmiss_budget = delta * static_cast<double>(s.nr_alive);
  const double rmiss_budget = delta * static_cast<double>(s.nl_alive);
  for (size_t v = 0; v < s.lalive.size(); ++v) {
    if (s.lalive[v] &&
        static_cast<double>(s.nr_alive - s.ldeg[v]) > lmiss_budget) {
      return false;
    }
  }
  for (size_t u = 0; u < s.ralive.size(); ++u) {
    if (s.ralive[u] &&
        static_cast<double>(s.nl_alive - s.rdeg[u]) > rmiss_budget) {
      return false;
    }
  }
  return true;
}

Biplex SnapshotToBiplex(const PeelState& s) {
  Biplex b;
  for (size_t v = 0; v < s.lalive.size(); ++v) {
    if (s.lalive[v]) b.left.push_back(static_cast<VertexId>(v));
  }
  for (size_t u = 0; u < s.ralive.size(); ++u) {
    if (s.ralive[u]) b.right.push_back(static_cast<VertexId>(u));
  }
  return b;
}

}  // namespace

bool IsDeltaQuasiBiclique(const BipartiteGraph& g, const Biplex& b,
                          double delta) {
  const double lmiss_budget = delta * static_cast<double>(b.right.size());
  const double rmiss_budget = delta * static_cast<double>(b.left.size());
  for (VertexId v : b.left) {
    if (static_cast<double>(g.DiscCount(Side::kLeft, v, b.right)) >
        lmiss_budget) {
      return false;
    }
  }
  for (VertexId u : b.right) {
    if (static_cast<double>(g.DiscCount(Side::kRight, u, b.left)) >
        rmiss_budget) {
      return false;
    }
  }
  return true;
}

std::vector<Biplex> FindQuasiBicliqueBlocks(
    const BipartiteGraph& g, const QuasiBicliqueOptions& opts) {
  std::vector<Biplex> blocks;
  std::vector<bool> lremoved(g.NumLeft(), false);
  std::vector<bool> rremoved(g.NumRight(), false);

  for (size_t round = 0; round < opts.max_blocks; ++round) {
    PeelState s = InitState(g, lremoved, rremoved);
    Biplex best;
    bool found = false;
    // Peel the globally min-relative-degree vertex until nothing is left;
    // keep the last snapshot satisfying the δ-QB property (the densest
    // surviving core of this round).
    while (s.nl_alive > 0 && s.nr_alive > 0) {
      if (SnapshotQualifies(s, opts.delta, opts.theta_left,
                            opts.theta_right)) {
        best = SnapshotToBiplex(s);
        found = true;
        break;  // snapshots only shrink from here; take the largest
      }
      // Remove the vertex with the largest relative miss ratio.
      double worst = -1;
      Side worst_side = Side::kLeft;
      VertexId worst_v = kInvalidVertex;
      for (size_t v = 0; v < s.lalive.size(); ++v) {
        if (!s.lalive[v]) continue;
        double miss = static_cast<double>(s.nr_alive - s.ldeg[v]) /
                      std::max<double>(1, static_cast<double>(s.nr_alive));
        if (miss > worst) {
          worst = miss;
          worst_side = Side::kLeft;
          worst_v = static_cast<VertexId>(v);
        }
      }
      for (size_t u = 0; u < s.ralive.size(); ++u) {
        if (!s.ralive[u]) continue;
        double miss = static_cast<double>(s.nl_alive - s.rdeg[u]) /
                      std::max<double>(1, static_cast<double>(s.nl_alive));
        if (miss > worst) {
          worst = miss;
          worst_side = Side::kRight;
          worst_v = static_cast<VertexId>(u);
        }
      }
      if (worst_v == kInvalidVertex) break;
      if (worst_side == Side::kLeft) {
        s.lalive[worst_v] = false;
        --s.nl_alive;
        for (VertexId u : g.LeftNeighbors(worst_v)) {
          if (s.ralive[u]) --s.rdeg[u];
        }
      } else {
        s.ralive[worst_v] = false;
        --s.nr_alive;
        for (VertexId v : g.RightNeighbors(worst_v)) {
          if (s.lalive[v]) --s.ldeg[v];
        }
      }
    }
    if (!found) break;
    for (VertexId v : best.left) lremoved[v] = true;
    for (VertexId u : best.right) rremoved[u] = true;
    blocks.push_back(std::move(best));
  }
  return blocks;
}

}  // namespace kbiplex
