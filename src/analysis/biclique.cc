#include "analysis/biclique.h"

#include "baselines/imb.h"

namespace kbiplex {

bool IsBiclique(const BipartiteGraph& g, const Biplex& b) {
  for (VertexId v : b.left) {
    if (g.ConnCount(Side::kLeft, v, b.right) != b.right.size()) {
      return false;
    }
  }
  return true;
}

BicliqueEnumStats EnumerateMaximalBicliques(
    const BipartiteGraph& g, const BicliqueEnumOptions& opts,
    const std::function<bool(const Biplex&)>& cb) {
  // A biclique is a 0-biplex; reuse the hereditary set-enumeration
  // backtracking with k = 0 and iMB's size pruning.
  ImbOptions iopts;
  iopts.k = 0;
  iopts.theta_left = opts.theta_left;
  iopts.theta_right = opts.theta_right;
  iopts.max_results = opts.max_results;
  iopts.time_budget_seconds = opts.time_budget_seconds;
  ImbStats s = ImbEngine(g, iopts).Run(cb);
  return {s.solutions, s.completed};
}

}  // namespace kbiplex
