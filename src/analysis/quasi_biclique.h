// δ-quasi-biclique detection for the fraud case study. A subgraph (L', R')
// is a δ-quasi-biclique iff every left member misses at most δ·|R'| right
// members and every right member misses at most δ·|L'| left members.
// Finding maximum δ-QBs is NP-hard and the structure is not hereditary, so
// — like the practical systems the paper references — we detect dense
// blocks with a greedy peeling heuristic and verify the δ-QB property
// exactly on each reported block (documented substitution; see DESIGN.md).
#ifndef KBIPLEX_ANALYSIS_QUASI_BICLIQUE_H_
#define KBIPLEX_ANALYSIS_QUASI_BICLIQUE_H_

#include <vector>

#include "core/biplex.h"
#include "graph/bipartite_graph.h"

namespace kbiplex {

/// Exact δ-quasi-biclique predicate.
bool IsDeltaQuasiBiclique(const BipartiteGraph& g, const Biplex& b,
                          double delta);

/// Options of the greedy block detector.
struct QuasiBicliqueOptions {
  double delta = 0.2;
  size_t theta_left = 4;
  size_t theta_right = 4;
  /// Extract at most this many disjoint blocks.
  size_t max_blocks = 8;
};

/// Finds vertex-disjoint δ-QB blocks meeting the size thresholds: peel
/// minimum-degree vertices and keep the last snapshot that satisfies the
/// δ-QB property, then remove it and repeat.
std::vector<Biplex> FindQuasiBicliqueBlocks(const BipartiteGraph& g,
                                            const QuasiBicliqueOptions& opts);

}  // namespace kbiplex

#endif  // KBIPLEX_ANALYSIS_QUASI_BICLIQUE_H_
