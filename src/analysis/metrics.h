// Binary classification metrics for the fraud-detection case study
// (Section 6.3): precision, recall and F1 over flagged vertices.
#ifndef KBIPLEX_ANALYSIS_METRICS_H_
#define KBIPLEX_ANALYSIS_METRICS_H_

#include <cstddef>
#include <vector>

namespace kbiplex {

/// Precision/recall/F1 for one flagging. `defined` is false when nothing
/// was flagged (the paper's "ND" cells).
struct BinaryMetrics {
  size_t tp = 0;
  size_t fp = 0;
  size_t fn = 0;
  double precision = 0;
  double recall = 0;
  double f1 = 0;
  bool defined = false;
};

/// Computes metrics of `flagged` against ground truth `truth`; the vectors
/// must have equal length.
BinaryMetrics ComputeMetrics(const std::vector<bool>& flagged,
                             const std::vector<bool>& truth);

/// Metrics over the concatenation of two item families (the paper flags
/// users and products jointly).
BinaryMetrics ComputeJointMetrics(const std::vector<bool>& flagged_a,
                                  const std::vector<bool>& truth_a,
                                  const std::vector<bool>& flagged_b,
                                  const std::vector<bool>& truth_b);

}  // namespace kbiplex

#endif  // KBIPLEX_ANALYSIS_METRICS_H_
