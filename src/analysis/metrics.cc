#include "analysis/metrics.h"

#include <cassert>

namespace kbiplex {
namespace {

BinaryMetrics FromCounts(size_t tp, size_t fp, size_t fn) {
  BinaryMetrics m;
  m.tp = tp;
  m.fp = fp;
  m.fn = fn;
  if (tp + fp == 0) {
    m.defined = false;  // nothing flagged: precision undefined ("ND")
    return m;
  }
  m.defined = true;
  m.precision = static_cast<double>(tp) / static_cast<double>(tp + fp);
  m.recall = tp + fn == 0
                 ? 0.0
                 : static_cast<double>(tp) / static_cast<double>(tp + fn);
  m.f1 = m.precision + m.recall == 0
             ? 0.0
             : 2 * m.precision * m.recall / (m.precision + m.recall);
  return m;
}

void Accumulate(const std::vector<bool>& flagged,
                const std::vector<bool>& truth, size_t* tp, size_t* fp,
                size_t* fn) {
  assert(flagged.size() == truth.size());
  for (size_t i = 0; i < flagged.size(); ++i) {
    if (flagged[i] && truth[i]) {
      ++*tp;
    } else if (flagged[i] && !truth[i]) {
      ++*fp;
    } else if (!flagged[i] && truth[i]) {
      ++*fn;
    }
  }
}

}  // namespace

BinaryMetrics ComputeMetrics(const std::vector<bool>& flagged,
                             const std::vector<bool>& truth) {
  size_t tp = 0, fp = 0, fn = 0;
  Accumulate(flagged, truth, &tp, &fp, &fn);
  return FromCounts(tp, fp, fn);
}

BinaryMetrics ComputeJointMetrics(const std::vector<bool>& flagged_a,
                                  const std::vector<bool>& truth_a,
                                  const std::vector<bool>& flagged_b,
                                  const std::vector<bool>& truth_b) {
  size_t tp = 0, fp = 0, fn = 0;
  Accumulate(flagged_a, truth_a, &tp, &fp, &fn);
  Accumulate(flagged_b, truth_b, &tp, &fp, &fn);
  return FromCounts(tp, fp, fn);
}

}  // namespace kbiplex
