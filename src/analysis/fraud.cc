#include "analysis/fraud.h"

#include <unordered_set>

#include "analysis/biclique.h"
#include "analysis/quasi_biclique.h"
#include "core/large_mbp.h"
#include "graph/core_decomposition.h"

namespace kbiplex {
namespace {

uint64_t EdgeKey(VertexId l, VertexId r) {
  return (static_cast<uint64_t>(l) << 32) | r;
}

/// Marks every vertex of `b` in the flag vectors.
void FlagBiplex(const Biplex& b, DetectionResult* out) {
  for (VertexId v : b.left) out->user_flagged[v] = true;
  for (VertexId u : b.right) out->product_flagged[u] = true;
  ++out->subgraphs_found;
}

DetectionResult MakeResult(const FraudDataset& data) {
  DetectionResult r;
  r.user_flagged.assign(data.graph.NumLeft(), false);
  r.product_flagged.assign(data.graph.NumRight(), false);
  return r;
}

}  // namespace

std::vector<bool> FraudDataset::UserTruth() const {
  std::vector<bool> t(graph.NumLeft(), false);
  for (size_t v = num_real_users; v < graph.NumLeft(); ++v) t[v] = true;
  return t;
}

std::vector<bool> FraudDataset::ProductTruth() const {
  std::vector<bool> t(graph.NumRight(), false);
  for (size_t u = num_real_products; u < graph.NumRight(); ++u) t[u] = true;
  return t;
}

bool DetectionResult::FlaggedAnything() const {
  for (bool f : user_flagged) {
    if (f) return true;
  }
  for (bool f : product_flagged) {
    if (f) return true;
  }
  return false;
}

FraudDataset InjectCamouflageAttack(const BipartiteGraph& organic,
                                    const CamouflageAttackConfig& config) {
  Rng rng(config.seed);
  FraudDataset data;
  data.num_real_users = organic.NumLeft();
  data.num_real_products = organic.NumRight();

  std::vector<BipartiteGraph::Edge> edges = organic.Edges();
  std::unordered_set<uint64_t> seen;
  const VertexId user0 = static_cast<VertexId>(organic.NumLeft());
  const VertexId prod0 = static_cast<VertexId>(organic.NumRight());

  // Fake comments: uniform pairs inside the fraud block, each fake user
  // receiving an equal share (the paper's random camouflage attack).
  const size_t per_user_fake = config.fake_comments / config.fake_users;
  const size_t per_user_cam = config.camouflage_comments / config.fake_users;
  for (size_t i = 0; i < config.fake_users; ++i) {
    const VertexId user = user0 + static_cast<VertexId>(i);
    size_t added = 0;
    while (added < per_user_fake) {
      const VertexId p =
          prod0 + static_cast<VertexId>(rng.NextBelow(config.fake_products));
      if (seen.insert(EdgeKey(user, p)).second) {
        edges.emplace_back(user, p);
        ++added;
      }
    }
    added = 0;
    while (added < per_user_cam && data.num_real_products > 0) {
      const VertexId p =
          static_cast<VertexId>(rng.NextBelow(data.num_real_products));
      if (seen.insert(EdgeKey(user, p)).second) {
        edges.emplace_back(user, p);
        ++added;
      }
    }
  }
  data.graph = BipartiteGraph::FromEdges(
      organic.NumLeft() + config.fake_users,
      organic.NumRight() + config.fake_products, std::move(edges));
  return data;
}

DetectionResult DetectByBiplex(const FraudDataset& data, int k,
                               size_t theta_l, size_t theta_r,
                               const DetectorBudget& budget) {
  DetectionResult out = MakeResult(data);
  LargeMbpOptions opts;
  opts.k = KPair::Uniform(k);
  opts.theta_left = theta_l;
  opts.theta_right = theta_r;
  opts.max_results = budget.max_results;
  opts.time_budget_seconds = budget.time_budget_seconds;
  LargeMbpEngine(data.graph, opts).Run([&](const Biplex& b) {
    FlagBiplex(b, &out);
    return true;
  });
  return out;
}

DetectionResult DetectByBiclique(const FraudDataset& data, size_t theta_l,
                                 size_t theta_r,
                                 const DetectorBudget& budget) {
  DetectionResult out = MakeResult(data);
  // Pre-reduce with the (θ_R, θ_L)-core: every biclique with sides
  // >= (θ_L, θ_R) survives it.
  InducedSubgraph core =
      AlphaBetaCoreSubgraph(data.graph, theta_r, theta_l);
  BicliqueEnumOptions opts;
  opts.theta_left = theta_l;
  opts.theta_right = theta_r;
  opts.max_results = budget.max_results;
  opts.time_budget_seconds = budget.time_budget_seconds;
  EnumerateMaximalBicliques(core.graph, opts, [&](const Biplex& b) {
    Biplex mapped;
    for (VertexId v : b.left) mapped.left.push_back(core.left_map[v]);
    for (VertexId u : b.right) mapped.right.push_back(core.right_map[u]);
    FlagBiplex(mapped, &out);
    return true;
  });
  return out;
}

DetectionResult DetectByAlphaBetaCore(const FraudDataset& data, size_t alpha,
                                      size_t beta) {
  DetectionResult out = MakeResult(data);
  CoreResult core = AlphaBetaCore(data.graph, alpha, beta);
  if (core.Empty()) return out;
  Biplex b{core.left, core.right};
  FlagBiplex(b, &out);
  return out;
}

DetectionResult DetectByQuasiBiclique(const FraudDataset& data, double delta,
                                      size_t theta_l, size_t theta_r) {
  DetectionResult out = MakeResult(data);
  QuasiBicliqueOptions opts;
  opts.delta = delta;
  opts.theta_left = theta_l;
  opts.theta_right = theta_r;
  for (const Biplex& b : FindQuasiBicliqueBlocks(data.graph, opts)) {
    FlagBiplex(b, &out);
  }
  return out;
}

BinaryMetrics EvaluateDetection(const FraudDataset& data,
                                const DetectionResult& result) {
  return ComputeJointMetrics(result.user_flagged, data.UserTruth(),
                             result.product_flagged, data.ProductTruth());
}

}  // namespace kbiplex
