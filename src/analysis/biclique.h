// Maximal biclique enumeration. A biclique is exactly a 0-biplex, so the
// hereditary set-enumeration baseline enumerates them; this module exists
// as the biclique detector of the fraud case study and as an oracle for
// the k → 0 limit of the biplex machinery.
#ifndef KBIPLEX_ANALYSIS_BICLIQUE_H_
#define KBIPLEX_ANALYSIS_BICLIQUE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "core/biplex.h"
#include "graph/bipartite_graph.h"

namespace kbiplex {

/// True iff every left member of `b` connects every right member.
bool IsBiclique(const BipartiteGraph& g, const Biplex& b);

/// Options of one enumeration run.
struct BicliqueEnumOptions {
  size_t theta_left = 0;   // report only bicliques with |L'| >= theta_left
  size_t theta_right = 0;  // and |R'| >= theta_right
  uint64_t max_results = 0;
  double time_budget_seconds = 0;
};

/// Enumerates maximal bicliques meeting the size thresholds; returns the
/// number reported and whether the run completed.
struct BicliqueEnumStats {
  uint64_t solutions = 0;
  bool completed = true;
};
BicliqueEnumStats EnumerateMaximalBicliques(
    const BipartiteGraph& g, const BicliqueEnumOptions& opts,
    const std::function<bool(const Biplex&)>& cb);

}  // namespace kbiplex

#endif  // KBIPLEX_ANALYSIS_BICLIQUE_H_
