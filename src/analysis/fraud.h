// Fraud-detection case study (Section 6.3): inject a random camouflage
// attack into an organic review graph, run the four cohesive-structure
// detectors (biclique, k-biplex, (α,β)-core, δ-quasi-biclique), and score
// precision / recall / F1 of the flagged users and products.
#ifndef KBIPLEX_ANALYSIS_FRAUD_H_
#define KBIPLEX_ANALYSIS_FRAUD_H_

#include <cstdint>
#include <vector>

#include "analysis/metrics.h"
#include "graph/bipartite_graph.h"
#include "util/random.h"

namespace kbiplex {

/// Parameters of the random camouflage attack of Hooi et al. (FRAUDAR):
/// fake users post `fake_comments` comments on fake products and the same
/// number of camouflage comments on random real products.
struct CamouflageAttackConfig {
  size_t fake_users = 200;
  size_t fake_products = 200;
  size_t fake_comments = 8000;        // fake-user -> fake-product edges
  size_t camouflage_comments = 8000;  // fake-user -> real-product edges
  uint64_t seed = 7;
};

/// The attacked dataset: fake users/products are appended after the
/// organic ids.
struct FraudDataset {
  BipartiteGraph graph;
  size_t num_real_users = 0;
  size_t num_real_products = 0;

  bool IsFakeUser(VertexId v) const { return v >= num_real_users; }
  bool IsFakeProduct(VertexId u) const { return u >= num_real_products; }
  std::vector<bool> UserTruth() const;
  std::vector<bool> ProductTruth() const;
};

/// Injects the attack into `organic` (users on the left, products on the
/// right).
FraudDataset InjectCamouflageAttack(const BipartiteGraph& organic,
                                    const CamouflageAttackConfig& config);

/// Vertices flagged by one detector.
struct DetectionResult {
  std::vector<bool> user_flagged;
  std::vector<bool> product_flagged;
  uint64_t subgraphs_found = 0;

  /// True iff at least one vertex was flagged ("ND" rows never happen).
  bool FlaggedAnything() const;
};

/// Shared knobs of the subgraph-based detectors.
struct DetectorBudget {
  uint64_t max_results = 100000;
  double time_budget_seconds = 10;
};

/// Flags vertices of maximal k-biplexes with sides >= (theta_l, theta_r).
DetectionResult DetectByBiplex(const FraudDataset& data, int k,
                               size_t theta_l, size_t theta_r,
                               const DetectorBudget& budget = {});

/// Flags vertices of maximal bicliques with sides >= (theta_l, theta_r).
DetectionResult DetectByBiclique(const FraudDataset& data, size_t theta_l,
                                 size_t theta_r,
                                 const DetectorBudget& budget = {});

/// Flags all vertices of the (α,β)-core.
DetectionResult DetectByAlphaBetaCore(const FraudDataset& data, size_t alpha,
                                      size_t beta);

/// Flags vertices of greedy δ-quasi-biclique blocks with sides >=
/// (theta_l, theta_r).
DetectionResult DetectByQuasiBiclique(const FraudDataset& data, double delta,
                                      size_t theta_l, size_t theta_r);

/// Scores a detection against the injected ground truth, jointly over
/// users and products as the paper reports.
BinaryMetrics EvaluateDetection(const FraudDataset& data,
                                const DetectionResult& result);

}  // namespace kbiplex

#endif  // KBIPLEX_ANALYSIS_FRAUD_H_
