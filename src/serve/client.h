// A minimal blocking NDJSON line client for kbiplexd: connect, send a
// line, read response lines until the terminal one. Shared by the
// kbiplex-client tool and the in-process serving tests so both exercise
// the daemon through a real socket, not a shortcut.
#ifndef KBIPLEX_SERVE_CLIENT_H_
#define KBIPLEX_SERVE_CLIENT_H_

#include <cstdint>
#include <string>

namespace kbiplex {
namespace serve {

class LineClient {
 public:
  LineClient() = default;
  ~LineClient();

  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;

  /// Connects to `host:port` (host is a dotted-quad, typically
  /// 127.0.0.1). Returns the error message, empty on success.
  std::string Connect(const std::string& host, uint16_t port);

  /// Sends `line` plus the newline frame; false once the peer is gone.
  bool SendLine(const std::string& line);

  /// Blocks for the next line (without its newline); false on EOF or
  /// error.
  bool ReadLine(std::string* line);

  void Close();

  bool connected() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
  std::string buffer_;
};

}  // namespace serve
}  // namespace kbiplex

#endif  // KBIPLEX_SERVE_CLIENT_H_
