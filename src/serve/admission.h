// Admission control of the serving daemon: a bounded FIFO of pending
// query jobs. Connection threads push, worker threads pop; a full queue
// rejects immediately (the 429 path — queueing further work would only
// grow tail latency without bound), and a closed queue rejects new work
// while letting workers drain what was already admitted (the graceful
// half of shutdown).
#ifndef KBIPLEX_SERVE_ADMISSION_H_
#define KBIPLEX_SERVE_ADMISSION_H_

#include <cstdint>
#include <deque>
#include <functional>

#include "util/sync.h"
#include "util/thread_annotations.h"

namespace kbiplex {
namespace serve {

/// Per-worker mutable state (the QuerySession cache); defined by the
/// server. Jobs receive the context of whichever worker pops them.
struct WorkerContext;

class AdmissionQueue {
 public:
  using Job = std::function<void(WorkerContext&)>;

  enum class Outcome {
    kAccepted,    // job queued; a worker will run it
    kOverloaded,  // queue at capacity — reject with 429
    kClosed,      // draining — reject with 503
  };

  explicit AdmissionQueue(size_t capacity) : capacity_(capacity) {}

  Outcome Push(Job job) KBIPLEX_EXCLUDES(mu_);

  /// Blocks until a job is available or the queue is closed and empty;
  /// false means "no more work, worker should exit".
  bool Pop(Job* out) KBIPLEX_EXCLUDES(mu_);

  /// Stops admitting; queued jobs still drain through Pop. Idempotent.
  void Close() KBIPLEX_EXCLUDES(mu_);

  struct Counters {
    uint64_t admitted = 0;
    uint64_t rejected_overload = 0;
    uint64_t rejected_closed = 0;
    size_t depth = 0;  // currently queued (not yet popped)
  };
  Counters counters() const KBIPLEX_EXCLUDES(mu_);

  size_t depth() const KBIPLEX_EXCLUDES(mu_);
  bool closed() const KBIPLEX_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  CondVar cv_;
  std::deque<Job> queue_ KBIPLEX_GUARDED_BY(mu_);
  const size_t capacity_;
  bool closed_ KBIPLEX_GUARDED_BY(mu_) = false;
  uint64_t admitted_ KBIPLEX_GUARDED_BY(mu_) = 0;
  uint64_t rejected_overload_ KBIPLEX_GUARDED_BY(mu_) = 0;
  uint64_t rejected_closed_ KBIPLEX_GUARDED_BY(mu_) = 0;
};

}  // namespace serve
}  // namespace kbiplex

#endif  // KBIPLEX_SERVE_ADMISSION_H_
