#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace kbiplex {
namespace serve {

LineClient::~LineClient() { Close(); }

std::string LineClient::Connect(const std::string& host, uint16_t port) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return std::string("socket: ") + std::strerror(errno);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return "bad host address '" + host + "'";
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const std::string err = std::string("connect: ") + std::strerror(errno);
    Close();
    return err;
  }
  return "";
}

bool LineClient::SendLine(const std::string& line) {
  if (fd_ < 0) return false;
  std::string framed = line;
  framed.push_back('\n');
  size_t off = 0;
  while (off < framed.size()) {
    const ssize_t n =
        ::send(fd_, framed.data() + off, framed.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

bool LineClient::ReadLine(std::string* line) {
  for (;;) {
    const size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      line->assign(buffer_, 0, nl);
      buffer_.erase(0, nl + 1);
      if (!line->empty() && line->back() == '\r') line->pop_back();
      return true;
    }
    if (fd_ < 0) return false;
    char chunk[65536];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

void LineClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

}  // namespace serve
}  // namespace kbiplex
