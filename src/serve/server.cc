#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <map>
#include <memory>
#include <queue>
#include <sstream>
#include <utility>

#include "api/query_session.h"
#include "util/json.h"

namespace kbiplex {
namespace serve {

namespace {

using Clock = std::chrono::steady_clock;

// A line longer than this is a protocol violation, not a big request;
// cutting the connection bounds per-connection buffer memory.
constexpr size_t kMaxLineBytes = 1 << 20;

}  // namespace

// Declared in admission.h. Sessions are keyed (graph name, generation) so
// an evict or reload naturally invalidates: the next query misses, drops
// every stale generation of that name, and builds against the new one.
struct WorkerContext {
  std::map<std::pair<std::string, uint64_t>, std::unique_ptr<QuerySession>>
      sessions;
};

struct Server::Connection {
  Mutex mu;  // guards fd lifecycle and serializes writes
  int fd KBIPLEX_GUARDED_BY(mu) = -1;
  std::atomic<bool> alive{true};

  /// The socket, for the owning connection thread's recv loop. Only that
  /// thread ever closes the fd (CloseFd, at loop exit), so the value it
  /// reads here stays valid for the duration of the loop.
  int Fd() {
    MutexLock lock(&mu);
    return fd;
  }

  /// Sends `line` plus the newline frame. False once the peer is gone —
  /// the streaming sink uses that to stop the enumeration.
  bool WriteLine(const std::string& line) {
    MutexLock lock(&mu);
    if (!alive.load() || fd < 0) return false;
    std::string framed = line;
    framed.push_back('\n');
    size_t off = 0;
    while (off < framed.size()) {
      const ssize_t n =
          ::send(fd, framed.data() + off, framed.size() - off, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        alive.store(false);
        return false;
      }
      off += static_cast<size_t>(n);
    }
    return true;
  }

  /// Kicks a connection thread out of recv() without freeing the fd (the
  /// owning thread still holds it); safe against concurrent writes.
  void ShutdownBoth() {
    MutexLock lock(&mu);
    if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
  }

  /// Final close by the owning connection thread.
  void CloseFd() {
    MutexLock lock(&mu);
    alive.store(false);
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
};

namespace {

/// Streams each accepted solution as one wire line. A failed write (peer
/// hung up) returns false, which stops the enumeration — no point
/// computing solutions nobody reads. "emit":"count" queries accept
/// without writing; the solution count still arrives in the done stats.
class WireSink final : public SolutionSink {
 public:
  WireSink(Server::Connection* conn, std::string id, bool count_only)
      : conn_(conn), id_(std::move(id)), count_only_(count_only) {}

  bool Accept(const Biplex& solution) override {
    if (count_only_) return true;
    return conn_->WriteLine(SolutionLine(id_, solution));
  }

  // Parallel runs serialize Accept calls, and the connection write lock
  // makes the write itself thread-agnostic.
  bool ThreadCompatible() const override { return true; }

 private:
  Server::Connection* conn_;
  std::string id_;
  bool count_only_;
};

}  // namespace

// Cancels request tokens when their wire deadline passes: a min-heap of
// (deadline, token) serviced by one thread sleeping until the earliest
// entry. Tokens are held as shared_ptrs, so an entry whose request
// already finished cancels a token nobody reads — cheap and harmless.
class Server::DeadlineReaper {
 public:
  DeadlineReaper() : thread_([this] { Loop(); }) {}

  ~DeadlineReaper() {
    {
      MutexLock lock(&mu_);
      stop_ = true;
    }
    cv_.NotifyAll();
    thread_.join();
  }

  void Schedule(Clock::time_point when,
                std::shared_ptr<CancellationToken> token)
      KBIPLEX_EXCLUDES(mu_) {
    {
      MutexLock lock(&mu_);
      heap_.push(Entry{when, std::move(token)});
    }
    cv_.NotifyAll();
  }

 private:
  struct Entry {
    Clock::time_point when;
    std::shared_ptr<CancellationToken> token;
    bool operator>(const Entry& other) const { return when > other.when; }
  };

  void Loop() KBIPLEX_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    while (!stop_) {
      if (heap_.empty()) {
        cv_.Wait(&mu_);
        continue;
      }
      const Clock::time_point next = heap_.top().when;
      if (Clock::now() < next) {
        cv_.WaitUntil(&mu_, next);
        continue;
      }
      while (!heap_.empty() && heap_.top().when <= Clock::now()) {
        heap_.top().token->Cancel();
        heap_.pop();
      }
    }
  }

  Mutex mu_;
  CondVar cv_;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap_
      KBIPLEX_GUARDED_BY(mu_);
  bool stop_ KBIPLEX_GUARDED_BY(mu_) = false;
  std::thread thread_;  // last: starts in the constructor
};

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      queue_(std::make_unique<AdmissionQueue>(
          std::max<size_t>(1, options_.queue_capacity))) {}

Server::~Server() {
  if (started_) {
    RequestDrain();
    Wait();
  }
  if (wake_pipe_[0] >= 0) ::close(wake_pipe_[0]);
  if (wake_pipe_[1] >= 0) ::close(wake_pipe_[1]);
}

std::string Server::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return std::string("socket: ") + std::strerror(errno);
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    const std::string err = std::string("bind: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return err;
  }
  if (::listen(listen_fd_, 64) < 0) {
    const std::string err = std::string("listen: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return err;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) <
      0) {
    const std::string err = std::string("getsockname: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return err;
  }
  port_ = ntohs(bound.sin_port);
  if (::pipe(wake_pipe_) != 0) {
    const std::string err = std::string("pipe: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return err;
  }

  reaper_ = std::make_unique<DeadlineReaper>();
  const size_t workers = std::max<size_t>(1, options_.workers);
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i)
    workers_.emplace_back([this] { WorkerLoop(); });
  acceptor_ = std::thread([this] { AcceptLoop(); });
  started_ = true;
  return "";
}

void Server::AcceptLoop() {
  for (;;) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (draining_.load()) break;
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    auto conn = std::make_shared<Connection>();
    {
      // No other thread can see `conn` yet, but the analysis (rightly)
      // demands the lock for the guarded write.
      MutexLock fd_lock(&conn->mu);
      conn->fd = fd;
    }
    ++open_connections_;
    MutexLock lock(&conn_mu_);
    // Prune entries whose thread already exited so a long-lived daemon's
    // connection list tracks live connections, not history. (The thread
    // handles are only reclaimed at Wait(); acceptable for this scale.)
    connections_.erase(
        std::remove_if(connections_.begin(), connections_.end(),
                       [](const std::shared_ptr<Connection>& c) {
                         return !c->alive.load();
                       }),
        connections_.end());
    connections_.push_back(conn);
    conn_threads_.emplace_back([this, conn] { ConnectionLoop(conn); });
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void Server::ConnectionLoop(std::shared_ptr<Connection> conn) {
  // Stable for the whole loop: only this thread closes the fd, below.
  const int fd = conn->Fd();
  std::string buffer;
  char chunk[65536];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    buffer.append(chunk, static_cast<size_t>(n));
    size_t start = 0;
    for (;;) {
      const size_t nl = buffer.find('\n', start);
      if (nl == std::string::npos) break;
      std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (!line.empty()) HandleLine(conn, line);
    }
    buffer.erase(0, start);
    if (buffer.size() > kMaxLineBytes) {
      conn->WriteLine(ErrorLine("null", kBadRequest, "line too long"));
      break;
    }
  }
  conn->CloseFd();
  --open_connections_;
}

void Server::HandleLine(const std::shared_ptr<Connection>& conn,
                        const std::string& line) {
  WireCommand cmd;
  const std::string err = ParseCommand(line, &cmd);
  if (!err.empty()) {
    conn->WriteLine(ErrorLine(cmd.id, kBadRequest, err));
    return;
  }

  if (cmd.op == "query") {
    HandleQuery(conn, std::move(cmd));
    return;
  }
  if (cmd.op == "load") {
    PrepareOptions prepare = options_.prepare;
    if (cmd.accel) prepare.adjacency_index = AdjacencyAccelMode::kForce;
    if (cmd.renumber) prepare.renumber = true;
    if (cmd.accel_budget != 0) {
      prepare.accel_budget_bytes = static_cast<size_t>(cmd.accel_budget);
    }
    const std::string load_err = registry_.LoadFile(cmd.graph, cmd.path, prepare);
    if (!load_err.empty()) {
      conn->WriteLine(ErrorLine(cmd.id, kBadRequest, load_err));
      return;
    }
    const auto entry = registry_.Get(cmd.graph);
    std::ostringstream body;
    body << "\"graph\":";
    json::AppendEscaped(body, cmd.graph);
    if (entry) {
      const BipartiteGraph& g = entry->prepared->graph();
      body << ",\"left\":" << g.NumLeft() << ",\"right\":" << g.NumRight()
           << ",\"edges\":" << g.NumEdges()
           << ",\"generation\":" << entry->generation;
    }
    conn->WriteLine(ResponseLine(cmd.id, "loaded", body.str()));
    return;
  }
  if (cmd.op == "update") {
    update::UpdateBatch batch;
    for (const auto& [l, r] : cmd.insert_edges) batch.Insert(l, r);
    for (const auto& [l, r] : cmd.erase_edges) batch.Remove(l, r);
    update::UpdateOptions opts;
    if (cmd.max_delta_fraction >= 0) {
      opts.max_delta_fraction = cmd.max_delta_fraction;
    }
    opts.force_rebuild = cmd.force_rebuild;
    // The apply itself runs on the connection thread, outside the
    // registry lock — concurrent queries keep their snapshot and are
    // never blocked; updates to the same graph serialize in the registry.
    const UpdateApplyOutcome outcome =
        registry_.ApplyUpdates(cmd.graph, batch, opts);
    if (!outcome.ok()) {
      conn->WriteLine(ErrorLine(cmd.id, outcome.error_code, outcome.error));
      return;
    }
    const update::UpdateResult& r = outcome.result;
    std::ostringstream body;
    body << "\"graph\":";
    json::AppendEscaped(body, cmd.graph);
    body << ",\"generation\":" << outcome.generation
         << ",\"epoch\":" << r.prepared->epoch()
         << ",\"inserted\":" << r.edges_inserted
         << ",\"deleted\":" << r.edges_deleted
         << ",\"noop_inserts\":" << r.noop_inserts
         << ",\"noop_deletes\":" << r.noop_deletes
         << ",\"rebuilt\":" << json::Bool(r.rebuilt) << ",\"seconds\":";
    json::AppendDouble(body, r.seconds);
    conn->WriteLine(ResponseLine(cmd.id, "updated", body.str()));
    return;
  }
  if (cmd.op == "evict") {
    if (!registry_.Evict(cmd.graph)) {
      conn->WriteLine(ErrorLine(cmd.id, kUnknownGraph,
                                "unknown graph '" + cmd.graph + "'"));
      return;
    }
    std::ostringstream body;
    body << "\"graph\":";
    json::AppendEscaped(body, cmd.graph);
    conn->WriteLine(ResponseLine(cmd.id, "evicted", body.str()));
    return;
  }
  if (cmd.op == "list") {
    std::ostringstream body;
    body << "\"graphs\":[";
    bool first = true;
    for (const auto& [name, entry] : registry_.List()) {
      if (!first) body << ',';
      first = false;
      const BipartiteGraph& g = entry.prepared->graph();
      body << "{\"name\":";
      json::AppendEscaped(body, name);
      body << ",\"left\":" << g.NumLeft() << ",\"right\":" << g.NumRight()
           << ",\"edges\":" << g.NumEdges()
           << ",\"generation\":" << entry.generation << ",\"path\":";
      json::AppendEscaped(body, entry.path);
      body << '}';
    }
    body << ']';
    conn->WriteLine(ResponseLine(cmd.id, "graphs", body.str()));
    return;
  }
  if (cmd.op == "stats") {
    conn->WriteLine(ResponseLine(cmd.id, "stats", ServerStatsBody()));
    return;
  }
  if (cmd.op == "ping") {
    std::ostringstream body;
    body << "\"uptime_s\":";
    json::AppendDouble(body, uptime_.ElapsedSeconds());
    conn->WriteLine(ResponseLine(cmd.id, "pong", body.str()));
    return;
  }
  if (cmd.op == "drain") {
    conn->WriteLine(ResponseLine(cmd.id, "draining"));
    RequestDrain();
    return;
  }
  // ParseCommand rejects unknown ops; reaching here is a grammar/server
  // mismatch worth surfacing rather than silencing.
  conn->WriteLine(
      ErrorLine(cmd.id, kBadRequest, "unhandled op '" + cmd.op + "'"));
}

void Server::HandleQuery(const std::shared_ptr<Connection>& conn,
                         WireCommand cmd) {
  const auto entry = registry_.Get(cmd.graph);
  if (!entry) {
    conn->WriteLine(
        ErrorLine(cmd.id, kUnknownGraph, "unknown graph '" + cmd.graph + "'"));
    return;
  }
  const bool has_deadline = cmd.deadline_ms > 0;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(cmd.deadline_ms);
  const std::string id = cmd.id;
  // Captures by copy: std::function requires a copyable callable, and the
  // job must own its command and registry entry past this frame.
  AdmissionQueue::Job job = [this, conn, cmd, entry = *entry, deadline,
                             has_deadline](WorkerContext& ctx) {
    ExecuteQuery(ctx, conn, cmd, entry, deadline, has_deadline);
  };
  switch (queue_->Push(std::move(job))) {
    case AdmissionQueue::Outcome::kAccepted:
      break;
    case AdmissionQueue::Outcome::kOverloaded:
      conn->WriteLine(ErrorLine(id, kOverloaded, "admission queue full"));
      break;
    case AdmissionQueue::Outcome::kClosed:
      conn->WriteLine(ErrorLine(id, kDraining, "server draining"));
      break;
  }
}

void Server::WorkerLoop() {
  WorkerContext ctx;
  AdmissionQueue::Job job;
  while (queue_->Pop(&job)) {
    ++active_jobs_;
    job(ctx);
    --active_jobs_;
    ++completed_jobs_;
    job = nullptr;
  }
}

void Server::ExecuteQuery(WorkerContext& ctx,
                          const std::shared_ptr<Connection>& conn,
                          const WireCommand& cmd, const RegisteredGraph& entry,
                          Clock::time_point deadline, bool has_deadline) {
  // Admission latency counts against the deadline: a request that waited
  // past it fails before any enumeration work.
  double remaining_seconds = 0;
  if (has_deadline) {
    remaining_seconds =
        std::chrono::duration<double>(deadline - Clock::now()).count();
    if (remaining_seconds <= 0) {
      EnumerateStats expired;
      expired.algorithm = cmd.request.algorithm;
      expired.error = "deadline exceeded before execution";
      expired.completed = false;
      aggregator_.Record(cmd.graph, expired.algorithm, expired);
      conn->WriteLine(ErrorLine(cmd.id, kDeadlineExceeded,
                                "deadline exceeded before execution"));
      return;
    }
  }

  const auto key = std::make_pair(cmd.graph, entry.generation);
  auto it = ctx.sessions.find(key);
  if (it == ctx.sessions.end()) {
    // A miss means this worker never served this generation; stale
    // generations of the same name must not pin their dead PreparedGraph.
    for (auto stale = ctx.sessions.lower_bound({cmd.graph, 0});
         stale != ctx.sessions.end() && stale->first.first == cmd.graph;)
      stale = ctx.sessions.erase(stale);
    it = ctx.sessions
             .emplace(key, std::make_unique<QuerySession>(entry.prepared))
             .first;
  }
  QuerySession& session = *it->second;

  const auto token = std::make_shared<CancellationToken>(&drain_token_);
  EnumerateRequest request = cmd.request;
  request.cancellation = token.get();
  if (has_deadline) {
    if (request.time_budget_seconds <= 0 ||
        request.time_budget_seconds > remaining_seconds)
      request.time_budget_seconds = remaining_seconds;
    reaper_->Schedule(deadline, token);
  }

  WireSink sink(conn.get(), cmd.id, cmd.count_only);
  // "sort":true buffers the run and streams the solution lines in
  // canonical order before the terminal line, making a parallel query's
  // stream byte-identical across thread counts (solution sets are
  // order-deterministic, delivery order is not; docs/wire_protocol.md).
  SortingSink sorter(&sink);
  const bool sorting = cmd.sort && !cmd.count_only;
  const EnumerateStats stats =
      session.Run(request, sorting ? static_cast<SolutionSink*>(&sorter)
                                   : &sink);
  if (sorting) sorter.Flush();
  aggregator_.Record(
      cmd.graph,
      stats.algorithm.empty() ? request.algorithm : stats.algorithm, stats);

  if (!stats.ok()) {
    conn->WriteLine(ErrorLine(cmd.id, kBadRequest, stats.error, stats.ToJson()));
  } else if (has_deadline && !stats.completed && Clock::now() >= deadline) {
    conn->WriteLine(
        ErrorLine(cmd.id, kDeadlineExceeded, "deadline exceeded", stats.ToJson()));
  } else {
    conn->WriteLine(DoneLine(cmd.id, stats.ToJson()));
  }
}

std::string Server::ServerStatsBody() const {
  const AdmissionQueue::Counters counters = queue_->counters();
  std::ostringstream body;
  body << "\"uptime_s\":";
  json::AppendDouble(body, uptime_.ElapsedSeconds());
  body << ",\"draining\":" << json::Bool(draining_.load())
       << ",\"connections\":" << open_connections_.load()
       << ",\"queued\":" << counters.depth
       << ",\"active\":" << active_jobs_.load()
       << ",\"admitted\":" << counters.admitted
       << ",\"rejected_overload\":" << counters.rejected_overload
       << ",\"rejected_draining\":" << counters.rejected_closed
       << ",\"requests\":" << aggregator_.ToJson();
  // Per-graph artifact/memory block (additive schema): the prepare
  // counters plus the adjacency-index representation footprint.
  body << ",\"graphs\":[";
  bool first = true;
  for (const auto& [name, entry] : registry_.List()) {
    if (!first) body << ',';
    first = false;
    body << "{\"name\":";
    json::AppendEscaped(body, name);
    body << ",\"generation\":" << entry.generation
         << ",\"epoch\":" << entry.prepared->epoch()
         << ",\"pending_retired_epochs\":"
         << registry_.PendingRetiredEpochs(name)
         << ",\"updates\":" << entry.prepared->lineage().ToJson()
         << ",\"artifacts\":" << entry.prepared->artifact_stats().ToJson()
         << '}';
  }
  body << ']';
  return body.str();
}

AdmissionQueue::Counters Server::admission_counters() const {
  return queue_->counters();
}

void Server::WakeAcceptor() {
  if (wake_pipe_[1] < 0) return;
  const char byte = 0;
  ssize_t rc;
  do {
    rc = ::write(wake_pipe_[1], &byte, 1);
  } while (rc < 0 && errno == EINTR);
}

void Server::RequestDrain() {
  bool expected = false;
  if (!draining_.compare_exchange_strong(expected, true)) return;
  queue_->Close();  // new queries now answer 503
  WakeAcceptor();   // acceptor observes draining_ and stops
  MutexLock lock(&state_mu_);
  drain_thread_ = std::thread([this] { DrainLoop(); });
}

void Server::DrainLoop() {
  // Let admitted work (queued and in flight) finish within the grace
  // period. `admitted > completed` also covers the instant between a
  // worker popping a job and starting it, which depth/active would miss.
  const auto outstanding = [this] {
    return queue_->counters().admitted > completed_jobs_.load();
  };
  WallTimer grace;
  while (outstanding() &&
         grace.ElapsedSeconds() < options_.drain_grace_seconds)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  // Grace over: cancel whatever is still running. Every request token
  // chains to the drain token, so this reaches all of them.
  drain_token_.Cancel();
  while (outstanding())
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  // Unblock connection threads; re-deliver until each one has exited, in
  // case a connection was accepted concurrently with the drain start.
  for (;;) {
    {
      MutexLock lock(&conn_mu_);
      for (const auto& conn : connections_) conn->ShutdownBoth();
    }
    if (open_connections_.load() == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  {
    MutexLock lock(&state_mu_);
    drained_ = true;
  }
  state_cv_.NotifyAll();
}

void Server::Wait() {
  {
    MutexLock lock(&state_mu_);
    while (!drained_) state_cv_.Wait(&state_mu_);
    if (joined_) return;
    joined_ = true;
  }
  if (acceptor_.joinable()) acceptor_.join();
  for (std::thread& worker : workers_)
    if (worker.joinable()) worker.join();
  {
    MutexLock lock(&conn_mu_);
    for (std::thread& thread : conn_threads_)
      if (thread.joinable()) thread.join();
  }
  {
    // Safe to join while holding state_mu_: once drained_ is set the
    // drain thread touches no Server state and is about to return.
    MutexLock lock(&state_mu_);
    if (drain_thread_.joinable()) drain_thread_.join();
  }
  reaper_.reset();
}

}  // namespace serve
}  // namespace kbiplex
