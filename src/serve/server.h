// kbiplexd's serving core: a TCP loop on loopback speaking the NDJSON
// wire protocol (serve/wire.h, docs/wire_protocol.md) over long-lived
// connections, executing queries on a worker pool where each worker owns
// one QuerySession per (graph, generation) — the prepare/execute split
// amortized across every request the daemon ever serves.
//
// Threading model:
//   - an acceptor thread accepts connections until drain;
//   - one thread per connection parses lines; control ops (load, evict,
//     list, stats, ping, drain) execute inline, queries go through the
//     bounded admission queue (full -> 429, draining -> 503);
//   - `workers` threads pop queries and run them, streaming solution
//     lines as the engine emits them and finishing each request with one
//     terminal done/error line;
//   - a deadline reaper cancels the token of any request whose
//     deadline_ms elapses, and the remaining deadline also tightens the
//     request's time budget at dequeue (admission latency counts);
//   - drain (signal or wire op) stops accepting, rejects new queries,
//     lets in-flight and queued work finish within the grace period,
//     then cancels the drain token every request token chains to.
//
// The server binds loopback only: the daemon is a local sidecar, not an
// internet-facing service; anything wider belongs behind a real proxy.
#ifndef KBIPLEX_SERVE_SERVER_H_
#define KBIPLEX_SERVE_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/stats_aggregator.h"
#include "serve/admission.h"
#include "serve/graph_registry.h"
#include "serve/wire.h"
#include "util/cancellation.h"
#include "util/sync.h"
#include "util/thread_annotations.h"
#include "util/timer.h"

namespace kbiplex {
namespace serve {

struct ServerOptions {
  uint16_t port = 0;  // 0 = pick an ephemeral port (read back via port())
  size_t workers = 4;
  size_t queue_capacity = 64;  // bounded admission queue (429 beyond)
  double drain_grace_seconds = 5.0;
  /// Artifact policy applied to graphs loaded over the wire or through
  /// registry() preloads that go via LoadFile.
  PrepareOptions prepare;
};

class Server {
 public:
  /// One accepted client socket; public so the streaming sink in
  /// server.cc can hold one. Opaque outside the implementation.
  struct Connection;

  explicit Server(ServerOptions options);
  ~Server();  // drains and joins if still running

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the serving threads. Returns the error
  /// message, empty on success.
  std::string Start();

  /// The bound port (useful with options.port = 0).
  uint16_t port() const { return port_; }

  /// The graph registry, e.g. for preloading before Start().
  GraphRegistry& registry() { return registry_; }

  /// Cross-request stats, aggregated per graph and algorithm.
  const StatsAggregator& stats() const { return aggregator_; }

  AdmissionQueue::Counters admission_counters() const;

  /// Begins a graceful drain (idempotent, non-blocking): stop accepting,
  /// reject new queries with 503, let admitted work finish within the
  /// grace period, then cancel what remains.
  void RequestDrain() KBIPLEX_EXCLUDES(state_mu_);

  /// Blocks until a requested drain completes and every thread joined.
  void Wait() KBIPLEX_EXCLUDES(state_mu_, conn_mu_);

  bool draining() const { return draining_.load(); }

 private:
  class DeadlineReaper;

  void AcceptLoop() KBIPLEX_EXCLUDES(conn_mu_);
  void ConnectionLoop(std::shared_ptr<Connection> conn);
  void WorkerLoop();
  void DrainLoop() KBIPLEX_EXCLUDES(state_mu_, conn_mu_);
  void HandleLine(const std::shared_ptr<Connection>& conn,
                  const std::string& line);
  void HandleQuery(const std::shared_ptr<Connection>& conn, WireCommand cmd);
  void ExecuteQuery(WorkerContext& ctx,
                    const std::shared_ptr<Connection>& conn,
                    const WireCommand& cmd, const RegisteredGraph& entry,
                    std::chrono::steady_clock::time_point deadline,
                    bool has_deadline);
  std::string ServerStatsBody() const;
  void WakeAcceptor();

  // Set at construction, immutable afterwards (prepare options, queue
  // capacity); the queue object itself is internally synchronized.
  ServerOptions options_;  // NOLINT(kbiplex-guarded-by): const after ctor
  GraphRegistry registry_;       // NOLINT(kbiplex-guarded-by): internal lock
  StatsAggregator aggregator_;   // NOLINT(kbiplex-guarded-by): internal lock
  const std::unique_ptr<AdmissionQueue> queue_;
  // Created in Start() before any request can reference it, destroyed in
  // Wait() after every worker joined.
  std::unique_ptr<DeadlineReaper> reaper_;  // NOLINT(kbiplex-guarded-by): lifecycle
  WallTimer uptime_;  // NOLINT(kbiplex-guarded-by): immutable start time

  // Socket state: written by Start() before the serving threads exist;
  // listen_fd_ is then owned by the acceptor thread, wake_pipe_ write
  // ends are safe to use concurrently (pipe writes are atomic).
  int listen_fd_ = -1;        // NOLINT(kbiplex-guarded-by): lifecycle
  int wake_pipe_[2] = {-1, -1};  // NOLINT(kbiplex-guarded-by): lifecycle
  uint16_t port_ = 0;         // NOLINT(kbiplex-guarded-by): set in Start()
  bool started_ = false;      // NOLINT(kbiplex-guarded-by): ctor-thread only

  CancellationToken drain_token_;  // NOLINT(kbiplex-guarded-by): atomic flag
  std::atomic<bool> draining_{false};
  std::atomic<size_t> active_jobs_{0};
  std::atomic<uint64_t> completed_jobs_{0};
  std::atomic<size_t> open_connections_{0};

  std::thread acceptor_;
  std::vector<std::thread> workers_;

  Mutex conn_mu_;
  std::vector<std::shared_ptr<Connection>> connections_
      KBIPLEX_GUARDED_BY(conn_mu_);
  std::vector<std::thread> conn_threads_ KBIPLEX_GUARDED_BY(conn_mu_);

  // Lock-ordering rule: conn_mu_ and state_mu_ are leaf locks — no code
  // path holds both at once (docs/concurrency.md).
  Mutex state_mu_;
  CondVar state_cv_;
  std::thread drain_thread_ KBIPLEX_GUARDED_BY(state_mu_);
  bool drained_ KBIPLEX_GUARDED_BY(state_mu_) = false;
  bool joined_ KBIPLEX_GUARDED_BY(state_mu_) = false;
};

}  // namespace serve
}  // namespace kbiplex

#endif  // KBIPLEX_SERVE_SERVER_H_
