#include "serve/admission.h"

#include <utility>

namespace kbiplex {
namespace serve {

AdmissionQueue::Outcome AdmissionQueue::Push(Job job) {
  {
    MutexLock lock(&mu_);
    if (closed_) {
      ++rejected_closed_;
      return Outcome::kClosed;
    }
    if (queue_.size() >= capacity_) {
      ++rejected_overload_;
      return Outcome::kOverloaded;
    }
    queue_.push_back(std::move(job));
    ++admitted_;
  }
  cv_.NotifyOne();
  return Outcome::kAccepted;
}

bool AdmissionQueue::Pop(Job* out) {
  MutexLock lock(&mu_);
  while (!closed_ && queue_.empty()) cv_.Wait(&mu_);
  if (queue_.empty()) return false;  // closed and drained
  *out = std::move(queue_.front());
  queue_.pop_front();
  return true;
}

void AdmissionQueue::Close() {
  {
    MutexLock lock(&mu_);
    closed_ = true;
  }
  cv_.NotifyAll();
}

AdmissionQueue::Counters AdmissionQueue::counters() const {
  MutexLock lock(&mu_);
  return {admitted_, rejected_overload_, rejected_closed_, queue_.size()};
}

size_t AdmissionQueue::depth() const {
  MutexLock lock(&mu_);
  return queue_.size();
}

bool AdmissionQueue::closed() const {
  MutexLock lock(&mu_);
  return closed_;
}

}  // namespace serve
}  // namespace kbiplex
