#include "serve/admission.h"

#include <utility>

namespace kbiplex {
namespace serve {

AdmissionQueue::Outcome AdmissionQueue::Push(Job job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) {
      ++rejected_closed_;
      return Outcome::kClosed;
    }
    if (queue_.size() >= capacity_) {
      ++rejected_overload_;
      return Outcome::kOverloaded;
    }
    queue_.push_back(std::move(job));
    ++admitted_;
  }
  cv_.notify_one();
  return Outcome::kAccepted;
}

bool AdmissionQueue::Pop(Job* out) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return closed_ || !queue_.empty(); });
  if (queue_.empty()) return false;  // closed and drained
  *out = std::move(queue_.front());
  queue_.pop_front();
  return true;
}

void AdmissionQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

AdmissionQueue::Counters AdmissionQueue::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {admitted_, rejected_overload_, rejected_closed_, queue_.size()};
}

size_t AdmissionQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

bool AdmissionQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

}  // namespace serve
}  // namespace kbiplex
