#include "serve/graph_registry.h"

#include <utility>

#include "graph/graph_io.h"

namespace kbiplex {
namespace serve {

std::string GraphRegistry::LoadFile(const std::string& name,
                                    const std::string& path,
                                    const PrepareOptions& options) {
  LoadResult r = LoadEdgeList(path);
  if (!r.ok()) return r.error;
  RegisteredGraph entry;
  entry.prepared = PreparedGraph::Prepare(std::move(*r.graph), options);
  entry.path = path;
  Put(name, std::move(entry));
  return "";
}

void GraphRegistry::Add(const std::string& name, BipartiteGraph graph,
                        const PrepareOptions& options) {
  RegisteredGraph entry;
  entry.prepared = PreparedGraph::Prepare(std::move(graph), options);
  Put(name, std::move(entry));
}

void GraphRegistry::Put(const std::string& name, RegisteredGraph entry) {
  WriterLock lock(&mu_);
  entry.generation = next_generation_++;
  graphs_[name] = std::move(entry);
}

bool GraphRegistry::Evict(const std::string& name) {
  WriterLock lock(&mu_);
  return graphs_.erase(name) != 0;
}

std::optional<RegisteredGraph> GraphRegistry::Get(
    const std::string& name) const {
  ReaderLock lock(&mu_);
  const auto it = graphs_.find(name);
  if (it == graphs_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::pair<std::string, RegisteredGraph>> GraphRegistry::List()
    const {
  ReaderLock lock(&mu_);
  return {graphs_.begin(), graphs_.end()};
}

size_t GraphRegistry::size() const {
  ReaderLock lock(&mu_);
  return graphs_.size();
}

}  // namespace serve
}  // namespace kbiplex
