#include "serve/graph_registry.h"

#include <algorithm>
#include <utility>

#include "graph/graph_io.h"

namespace kbiplex {
namespace serve {

std::string GraphRegistry::LoadFile(const std::string& name,
                                    const std::string& path,
                                    const PrepareOptions& options) {
  LoadResult r = LoadEdgeList(path);
  if (!r.ok()) return r.error;
  RegisteredGraph entry;
  entry.prepared = PreparedGraph::Prepare(std::move(*r.graph), options);
  entry.path = path;
  Put(name, std::move(entry));
  return "";
}

void GraphRegistry::Add(const std::string& name, BipartiteGraph graph,
                        const PrepareOptions& options) {
  RegisteredGraph entry;
  entry.prepared = PreparedGraph::Prepare(std::move(graph), options);
  Put(name, std::move(entry));
}

void GraphRegistry::Put(const std::string& name, RegisteredGraph entry) {
  WriterLock lock(&mu_);
  entry.generation = next_generation_++;
  const auto it = graphs_.find(name);
  if (it != graphs_.end()) RetireLocked(name, it->second.prepared);
  graphs_[name] = std::move(entry);
}

bool GraphRegistry::Evict(const std::string& name) {
  WriterLock lock(&mu_);
  const auto it = graphs_.find(name);
  if (it == graphs_.end()) return false;
  RetireLocked(name, it->second.prepared);
  graphs_.erase(it);
  update_locks_.erase(name);
  return true;
}

void GraphRegistry::RetireLocked(
    const std::string& name,
    const std::shared_ptr<const PreparedGraph>& prepared) {
  auto& trackers = retired_[name];
  trackers.erase(
      std::remove_if(trackers.begin(), trackers.end(),
                     [](const std::weak_ptr<const PreparedGraph>& w) {
                       return w.expired();
                     }),
      trackers.end());
  trackers.push_back(prepared);
}

size_t GraphRegistry::PendingRetiredEpochs(const std::string& name) const {
  ReaderLock lock(&mu_);
  const auto it = retired_.find(name);
  if (it == retired_.end()) return 0;
  size_t pinned = 0;
  for (const auto& w : it->second) {
    if (!w.expired()) ++pinned;
  }
  return pinned;
}

UpdateApplyOutcome GraphRegistry::ApplyUpdates(
    const std::string& name, const update::UpdateBatch& batch,
    const update::UpdateOptions& options) {
  UpdateApplyOutcome out;
  // Step 1: resolve (or create) the per-graph update lock. The brief
  // writer section only touches the lock map; the apply never runs here.
  std::shared_ptr<Mutex> update_lock;
  {
    WriterLock lock(&mu_);
    if (graphs_.find(name) == graphs_.end()) {
      out.error_code = 404;
      out.error = "unknown graph '" + name + "'";
      return out;
    }
    auto& slot = update_locks_[name];
    if (slot == nullptr) slot = std::make_shared<Mutex>();
    update_lock = slot;
  }

  // Step 2: serialize with other updates to this graph, so each apply
  // bases on the previously published epoch — a linear chain, never a
  // fork. Loads and evicts do not take this lock; the generation check
  // at publish time catches them.
  MutexLock serialize(update_lock.get());

  std::shared_ptr<const PreparedGraph> prev;
  uint64_t snapshot_generation = 0;
  {
    ReaderLock lock(&mu_);
    const auto it = graphs_.find(name);
    if (it == graphs_.end()) {
      out.error_code = 404;
      out.error = "graph '" + name + "' evicted before update";
      return out;
    }
    prev = it->second.prepared;
    snapshot_generation = it->second.generation;
  }

  // Step 3: the actual copy-on-write apply, outside every registry lock —
  // queries keep resolving and other graphs keep updating meanwhile.
  out.result = prev->ApplyUpdates(batch, options);
  if (!out.result.ok()) {
    out.error_code = 400;
    out.error = out.result.error;
    return out;
  }

  // Step 4: publish, unless a load/evict moved the graph underneath us —
  // then the new epoch is abandoned (it descends from a replaced state)
  // and the caller gets a retryable conflict.
  {
    WriterLock lock(&mu_);
    const auto it = graphs_.find(name);
    if (it == graphs_.end()) {
      out.error_code = 404;
      out.error = "graph '" + name + "' evicted during update";
      return out;
    }
    if (it->second.generation != snapshot_generation) {
      out.error_code = 409;
      out.error = "graph '" + name +
                  "' was reloaded during the update; retry against the new "
                  "generation";
      return out;
    }
    RetireLocked(name, it->second.prepared);
    it->second.prepared = out.result.prepared;
    it->second.generation = next_generation_++;
    out.generation = it->second.generation;
  }
  return out;
}

std::optional<RegisteredGraph> GraphRegistry::Get(
    const std::string& name) const {
  ReaderLock lock(&mu_);
  const auto it = graphs_.find(name);
  if (it == graphs_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::pair<std::string, RegisteredGraph>> GraphRegistry::List()
    const {
  ReaderLock lock(&mu_);
  return {graphs_.begin(), graphs_.end()};
}

size_t GraphRegistry::size() const {
  ReaderLock lock(&mu_);
  return graphs_.size();
}

}  // namespace serve
}  // namespace kbiplex
