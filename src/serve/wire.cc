#include "serve/wire.h"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "api/request_parse.h"
#include "util/json.h"

namespace kbiplex {
namespace serve {
namespace {

/// Re-serializes the client's "id" scalar verbatim-enough to echo back:
/// strings re-escape, integral numbers print without a fraction, and
/// anything else (bool/null/containers) normalizes to its JSON spelling.
std::string SerializeId(const json::JsonValue* v) {
  if (v == nullptr || v->is_null()) return "null";
  if (v->is_bool()) return v->AsBool() ? "true" : "false";
  if (v->is_number()) {
    const double d = v->AsNumber();
    if (d == std::floor(d) && std::abs(d) < 9.007199254740992e15) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%lld",
                    static_cast<long long>(d));
      return buf;
    }
    std::ostringstream os;
    json::AppendDouble(os, d);
    return os.str();
  }
  if (v->is_string()) {
    std::ostringstream os;
    json::AppendEscaped(os, v->AsString());
    return os.str();
  }
  return "null";  // containers make no sense as an id; normalize away
}

std::string ParseLoadOptions(const json::JsonValue& v, WireCommand* cmd) {
  if (!v.is_object()) return "'options' must be an object";
  for (const auto& [key, value] : v.AsObject()) {
    if (key == "accel") {
      if (!value.is_bool()) return "load option 'accel' must be a bool";
      cmd->accel = value.AsBool();
    } else if (key == "renumber") {
      if (!value.is_bool()) return "load option 'renumber' must be a bool";
      cmd->renumber = value.AsBool();
    } else if (key == "accel_budget") {
      if (!value.is_number() || value.AsNumber() < 0 ||
          value.AsNumber() != std::floor(value.AsNumber())) {
        return "load option 'accel_budget' must be a non-negative integer";
      }
      cmd->accel_budget = static_cast<uint64_t>(value.AsNumber());
    } else {
      return "unknown load option '" + key + "'";
    }
  }
  return "";
}

std::string ParseEdgeArray(const json::JsonValue& v, const std::string& key,
                           std::vector<std::pair<uint32_t, uint32_t>>* out) {
  if (!v.is_array()) return "'" + key + "' must be an array of [L,R] pairs";
  for (const json::JsonValue& e : v.AsArray()) {
    if (!e.is_array() || e.AsArray().size() != 2) {
      return "each '" + key + "' entry must be a [left, right] pair";
    }
    uint32_t ids[2];
    for (int i = 0; i < 2; ++i) {
      const json::JsonValue& n = e.AsArray()[i];
      if (!n.is_number() || n.AsNumber() < 0 ||
          n.AsNumber() != std::floor(n.AsNumber()) ||
          n.AsNumber() > 4294967295.0) {
        return "'" + key + "' vertex ids must be 32-bit unsigned integers";
      }
      ids[i] = static_cast<uint32_t>(n.AsNumber());
    }
    out->emplace_back(ids[0], ids[1]);
  }
  return "";
}

std::string ParseUpdateOptions(const json::JsonValue& v, WireCommand* cmd) {
  if (!v.is_object()) return "'options' must be an object";
  for (const auto& [key, value] : v.AsObject()) {
    if (key == "max_delta_fraction") {
      if (!value.is_number() || value.AsNumber() < 0) {
        return "update option 'max_delta_fraction' must be a non-negative "
               "number";
      }
      cmd->max_delta_fraction = value.AsNumber();
    } else if (key == "force_rebuild") {
      if (!value.is_bool()) {
        return "update option 'force_rebuild' must be a bool";
      }
      cmd->force_rebuild = value.AsBool();
    } else {
      return "unknown update option '" + key + "'";
    }
  }
  return "";
}

}  // namespace

std::string ParseCommand(const std::string& line, WireCommand* cmd) {
  json::ParseResult parsed = json::Parse(line);
  cmd->id = "null";
  if (!parsed.ok()) return "bad JSON: " + parsed.error;
  const json::JsonValue& root = parsed.value;
  if (!root.is_object()) return "command must be a JSON object";
  cmd->id = SerializeId(root.Find("id"));

  const json::JsonValue* op = root.Find("op");
  if (op == nullptr || !op->is_string()) {
    return "command needs a string 'op'";
  }
  cmd->op = op->AsString();

  // Per-op key whitelists: unknown keys are structured errors, exactly
  // like unknown request keys (wire-protocol hygiene; a typoed
  // "deadline_ms" must not silently run without a deadline).
  for (const auto& [key, value] : root.AsObject()) {
    if (key == "op" || key == "id") continue;
    if (cmd->op == "query") {
      if (key == "graph") {
        if (!value.is_string()) return "'graph' must be a string";
        cmd->graph = value.AsString();
        continue;
      }
      if (key == "request") {
        if (std::string err = ParseRequestJson(value, &cmd->request);
            !err.empty()) {
          return err;
        }
        continue;
      }
      if (key == "deadline_ms") {
        if (!value.is_number() || value.AsNumber() < 0 ||
            value.AsNumber() != std::floor(value.AsNumber())) {
          return "'deadline_ms' must be a non-negative integer";
        }
        cmd->deadline_ms = static_cast<uint64_t>(value.AsNumber());
        continue;
      }
      if (key == "emit") {
        if (value.is_string() && value.AsString() == "count") {
          cmd->count_only = true;
          continue;
        }
        if (value.is_string() && value.AsString() == "solutions") {
          cmd->count_only = false;
          continue;
        }
        return "'emit' must be \"solutions\" or \"count\"";
      }
      if (key == "sort") {
        if (!value.is_bool()) return "'sort' must be a boolean";
        cmd->sort = value.AsBool();
        continue;
      }
    } else if (cmd->op == "load") {
      if (key == "name") {
        if (!value.is_string()) return "'name' must be a string";
        cmd->graph = value.AsString();
        continue;
      }
      if (key == "path") {
        if (!value.is_string()) return "'path' must be a string";
        cmd->path = value.AsString();
        continue;
      }
      if (key == "options") {
        if (std::string err = ParseLoadOptions(value, cmd); !err.empty()) {
          return err;
        }
        continue;
      }
    } else if (cmd->op == "evict") {
      if (key == "name") {
        if (!value.is_string()) return "'name' must be a string";
        cmd->graph = value.AsString();
        continue;
      }
    } else if (cmd->op == "update") {
      if (key == "name") {
        if (!value.is_string()) return "'name' must be a string";
        cmd->graph = value.AsString();
        continue;
      }
      if (key == "insert") {
        if (std::string err = ParseEdgeArray(value, key, &cmd->insert_edges);
            !err.empty()) {
          return err;
        }
        continue;
      }
      if (key == "delete") {
        if (std::string err = ParseEdgeArray(value, key, &cmd->erase_edges);
            !err.empty()) {
          return err;
        }
        continue;
      }
      if (key == "options") {
        if (std::string err = ParseUpdateOptions(value, cmd); !err.empty()) {
          return err;
        }
        continue;
      }
    }
    return "unknown key '" + key + "' for op '" + cmd->op + "'";
  }

  if (cmd->op == "query") {
    if (cmd->graph.empty()) return "query needs a 'graph'";
  } else if (cmd->op == "load") {
    if (cmd->graph.empty()) return "load needs a 'name'";
    if (cmd->path.empty()) return "load needs a 'path'";
  } else if (cmd->op == "evict") {
    if (cmd->graph.empty()) return "evict needs a 'name'";
  } else if (cmd->op == "update") {
    if (cmd->graph.empty()) return "update needs a 'name'";
  } else if (cmd->op != "list" && cmd->op != "stats" && cmd->op != "ping" &&
             cmd->op != "drain") {
    return "unknown op '" + cmd->op + "'";
  }
  return "";
}

std::string SolutionLine(const std::string& id, const Biplex& solution) {
  std::ostringstream os;
  os << "{\"id\":" << id << ",\"type\":\"solution\",\"left\":[";
  for (size_t i = 0; i < solution.left.size(); ++i) {
    if (i != 0) os << ",";
    os << solution.left[i];
  }
  os << "],\"right\":[";
  for (size_t i = 0; i < solution.right.size(); ++i) {
    if (i != 0) os << ",";
    os << solution.right[i];
  }
  os << "]}";
  return os.str();
}

std::string DoneLine(const std::string& id, const std::string& stats_json) {
  return "{\"id\":" + id + ",\"type\":\"done\",\"stats\":" + stats_json +
         "}";
}

std::string ErrorLine(const std::string& id, int code,
                      const std::string& message,
                      const std::string& stats_json) {
  std::ostringstream os;
  os << "{\"id\":" << id << ",\"type\":\"error\",\"code\":" << code
     << ",\"message\":";
  json::AppendEscaped(os, message);
  if (!stats_json.empty()) os << ",\"stats\":" << stats_json;
  os << "}";
  return os.str();
}

std::string ResponseLine(const std::string& id, const std::string& type,
                         const std::string& body) {
  std::ostringstream os;
  os << "{\"id\":" << id << ",\"type\":";
  json::AppendEscaped(os, type);
  if (!body.empty()) os << "," << body;
  os << "}";
  return os.str();
}

}  // namespace serve
}  // namespace kbiplex
