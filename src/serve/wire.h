// The daemon's NDJSON wire grammar (see docs/wire_protocol.md): one JSON
// object per line in both directions. This header owns parsing of command
// lines into typed values and formatting of every response line, so the
// server, the client tool, and the tests all speak from one definition.
//
// Command lines:
//   {"op":"query","id":ID,"graph":NAME,"request":{...},
//    "deadline_ms":N,"emit":"solutions"|"count","sort":BOOL}
//   {"op":"load","id":ID,"name":NAME,"path":PATH,
//    "options":{"accel":BOOL,"renumber":BOOL,"accel_budget":BYTES}}
//   {"op":"evict","id":ID,"name":NAME}
//   {"op":"update","id":ID,"name":NAME,"insert":[[L,R],...],
//    "delete":[[L,R],...],
//    "options":{"max_delta_fraction":F,"force_rebuild":BOOL}}
//   {"op":"list","id":ID}   {"op":"stats","id":ID}
//   {"op":"ping","id":ID}   {"op":"drain","id":ID}
//
// Response lines always carry the echoed "id" plus a "type"; "solution"
// is the only non-terminal type (a query streams zero or more solutions,
// then exactly one terminal "done" or "error").
#ifndef KBIPLEX_SERVE_WIRE_H_
#define KBIPLEX_SERVE_WIRE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "api/enumerate_request.h"
#include "core/biplex.h"
#include "util/json_value.h"

namespace kbiplex {
namespace serve {

/// Structured wire error codes, HTTP-flavored so operators can read them
/// without a legend.
enum WireError : int {
  kBadRequest = 400,        // malformed JSON, unknown op/key, bad value
  kUnknownGraph = 404,      // query/evict names a graph not in the registry
  kConflict = 409,          // update raced a reload/evict; retry
  kOverloaded = 429,        // admission queue full
  kDraining = 503,          // server is shutting down
  kDeadlineExceeded = 504,  // per-request deadline expired
};

/// One parsed command line.
struct WireCommand {
  std::string op;       // "query", "load", "evict", "list", ...
  std::string id;       // the "id" member re-serialized verbatim ("null"
                        // when absent) — echoed on every response line
  std::string graph;    // query: target graph; load/evict: graph name
  std::string path;     // load: edge-list path
  bool accel = false;     // load option: attach the adjacency index
  bool renumber = false;  // load option: degeneracy-renumber
  uint64_t accel_budget = 0;  // load option: index memory budget in bytes
                              // (0 = unlimited; see adjacency_index.h)
  EnumerateRequest request;  // query: the parsed request
  uint64_t deadline_ms = 0;  // query: 0 = no deadline
  bool count_only = false;   // query: "emit":"count" suppresses solutions
  bool sort = false;  // query: stream solutions in canonical order (the
                      // buffered-then-sorted emission that makes parallel
                      // runs' solution streams order-deterministic)
  // update: edge delta as (left, right) pairs, in client order (the
  // normalizer sorts/dedups them).
  std::vector<std::pair<uint32_t, uint32_t>> insert_edges;
  std::vector<std::pair<uint32_t, uint32_t>> erase_edges;
  double max_delta_fraction = -1;  // update option: < 0 = server default
  bool force_rebuild = false;      // update option: skip artifact patching
};

/// Parses one command line. Returns the error message (empty on
/// success); `cmd->id` is filled even on failure whenever the line was
/// valid JSON with an "id", so the error response can still be matched.
std::string ParseCommand(const std::string& line, WireCommand* cmd);

// --------------------------------------------------------- responses ----

/// {"id":ID,"type":"solution","left":[...],"right":[...]}
std::string SolutionLine(const std::string& id, const Biplex& solution);

/// {"id":ID,"type":"done","stats":STATS_JSON}
std::string DoneLine(const std::string& id, const std::string& stats_json);

/// {"id":ID,"type":"error","code":N,"message":MSG} with an optional
/// trailing "stats" member for runs that failed after doing work.
std::string ErrorLine(const std::string& id, int code,
                      const std::string& message,
                      const std::string& stats_json = "");

/// {"id":ID,"type":TYPE, ...BODY} where `body` is a pre-rendered list of
/// `"key":value` members (may be empty).
std::string ResponseLine(const std::string& id, const std::string& type,
                         const std::string& body = "");

}  // namespace serve
}  // namespace kbiplex

#endif  // KBIPLEX_SERVE_WIRE_H_
