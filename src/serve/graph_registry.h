// Named multi-graph registry of the serving daemon: maps graph names to
// shared PreparedGraphs under a reader/writer lock, so any number of
// concurrent queries resolve their target graph without contending with
// each other, and loads/evicts are rare exclusive writes.
//
// Eviction, reload, and update are generation-based: each successful
// (re)load or applied update batch bumps a registry-wide generation
// counter, and workers key their cached QuerySessions on (name,
// generation). An evicted or replaced graph's PreparedGraph stays alive —
// shared_ptr — until the last in-flight query over it finishes; stale
// worker sessions simply miss on the next lookup and are rebuilt against
// the new generation. Every replaced PreparedGraph is additionally
// tracked as a retired epoch (weak_ptr): PendingRetiredEpochs reports how
// many are still pinned by in-flight borrowers, making the
// snapshot-until-released contract observable from the stats op.
#ifndef KBIPLEX_SERVE_GRAPH_REGISTRY_H_
#define KBIPLEX_SERVE_GRAPH_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "api/prepared_graph.h"
#include "graph/bipartite_graph.h"
#include "update/incremental.h"
#include "update/update_batch.h"
#include "util/sync.h"
#include "util/thread_annotations.h"

namespace kbiplex {
namespace serve {

/// One registered graph: the shared artifact holder plus the metadata the
/// `list` command reports.
struct RegisteredGraph {
  std::shared_ptr<const PreparedGraph> prepared;
  uint64_t generation = 0;  // unique per (re)load; session-cache key
  std::string path;         // source path ("" for graphs added in-process)
};

/// Outcome of a registry-level update apply, wire-error-coded so the
/// server can answer without re-deriving the failure class.
struct UpdateApplyOutcome {
  /// 0 on success; otherwise a WireError value — 404 (unknown graph),
  /// 409 (a reload/evict raced the apply; retry against the new
  /// generation), 400 (the batch itself was invalid).
  int error_code = 0;
  std::string error;
  uint64_t generation = 0;       // generation of the published epoch
  update::UpdateResult result;   // apply details; result.prepared = epoch

  bool ok() const { return error_code == 0; }
};

class GraphRegistry {
 public:
  /// Loads an edge list from `path` and registers it under `name`,
  /// replacing any previous graph of that name (its generation changes).
  /// Returns the error message, empty on success. The load and prepare
  /// run outside the lock: concurrent queries are never blocked behind
  /// file I/O.
  std::string LoadFile(const std::string& name, const std::string& path,
                       const PrepareOptions& options) KBIPLEX_EXCLUDES(mu_);

  /// Registers an already-built graph (daemon preload, tests).
  void Add(const std::string& name, BipartiteGraph graph,
           const PrepareOptions& options) KBIPLEX_EXCLUDES(mu_);

  /// Removes `name`; returns false when it was not registered. In-flight
  /// queries holding the shared_ptr keep running to completion.
  bool Evict(const std::string& name) KBIPLEX_EXCLUDES(mu_);

  /// Applies `batch` to the current epoch of `name` and publishes the
  /// successor under a fresh generation. Updates to one graph serialize
  /// on a per-graph lock; the apply itself runs outside the registry
  /// lock, so queries and other graphs never block behind it. If a load
  /// or evict races the apply (the generation moved between snapshot and
  /// publish), the new epoch is discarded and the outcome is a 409 —
  /// the caller retries against the current state.
  UpdateApplyOutcome ApplyUpdates(const std::string& name,
                                  const update::UpdateBatch& batch,
                                  const update::UpdateOptions& options)
      KBIPLEX_EXCLUDES(mu_);

  /// Retired epochs of `name` (replaced by update/load or evicted) still
  /// alive because an in-flight session borrows them. Expired trackers
  /// are pruned by the next mutating operation on the name.
  size_t PendingRetiredEpochs(const std::string& name) const
      KBIPLEX_EXCLUDES(mu_);

  /// Resolves `name`; nullopt when unknown.
  std::optional<RegisteredGraph> Get(const std::string& name) const
      KBIPLEX_EXCLUDES(mu_);

  /// Snapshot of every registered graph, sorted by name.
  std::vector<std::pair<std::string, RegisteredGraph>> List() const
      KBIPLEX_EXCLUDES(mu_);

  size_t size() const KBIPLEX_EXCLUDES(mu_);

 private:
  void Put(const std::string& name, RegisteredGraph entry)
      KBIPLEX_EXCLUDES(mu_);

  /// Records `prepared` as a retired epoch of `name`, pruning trackers
  /// whose epoch already died.
  void RetireLocked(const std::string& name,
                    const std::shared_ptr<const PreparedGraph>& prepared)
      KBIPLEX_REQUIRES(mu_);

  mutable SharedMutex mu_;
  std::map<std::string, RegisteredGraph> graphs_ KBIPLEX_GUARDED_BY(mu_);
  uint64_t next_generation_ KBIPLEX_GUARDED_BY(mu_) = 1;
  // Replaced/evicted epochs, weakly tracked so the count of still-borrowed
  // snapshots is observable without pinning them.
  std::map<std::string, std::vector<std::weak_ptr<const PreparedGraph>>>
      retired_ KBIPLEX_GUARDED_BY(mu_);
  // Per-graph update serialization (lock ordering: an update lock is
  // acquired only while mu_ is NOT held, and mu_ is taken under it for
  // the snapshot and publish steps — see docs/concurrency.md). Held via
  // shared_ptr so an evict can drop the map slot while an apply still
  // holds the lock object.
  std::map<std::string, std::shared_ptr<Mutex>> update_locks_
      KBIPLEX_GUARDED_BY(mu_);
};

}  // namespace serve
}  // namespace kbiplex

#endif  // KBIPLEX_SERVE_GRAPH_REGISTRY_H_
