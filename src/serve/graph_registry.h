// Named multi-graph registry of the serving daemon: maps graph names to
// shared PreparedGraphs under a reader/writer lock, so any number of
// concurrent queries resolve their target graph without contending with
// each other, and loads/evicts are rare exclusive writes.
//
// Eviction and reload are generation-based: each successful (re)load
// bumps a registry-wide generation counter, and workers key their cached
// QuerySessions on (name, generation). An evicted or replaced graph's
// PreparedGraph stays alive — shared_ptr — until the last in-flight query
// over it finishes; stale worker sessions simply miss on the next lookup
// and are rebuilt against the new generation.
#ifndef KBIPLEX_SERVE_GRAPH_REGISTRY_H_
#define KBIPLEX_SERVE_GRAPH_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "api/prepared_graph.h"
#include "graph/bipartite_graph.h"
#include "util/sync.h"
#include "util/thread_annotations.h"

namespace kbiplex {
namespace serve {

/// One registered graph: the shared artifact holder plus the metadata the
/// `list` command reports.
struct RegisteredGraph {
  std::shared_ptr<const PreparedGraph> prepared;
  uint64_t generation = 0;  // unique per (re)load; session-cache key
  std::string path;         // source path ("" for graphs added in-process)
};

class GraphRegistry {
 public:
  /// Loads an edge list from `path` and registers it under `name`,
  /// replacing any previous graph of that name (its generation changes).
  /// Returns the error message, empty on success. The load and prepare
  /// run outside the lock: concurrent queries are never blocked behind
  /// file I/O.
  std::string LoadFile(const std::string& name, const std::string& path,
                       const PrepareOptions& options) KBIPLEX_EXCLUDES(mu_);

  /// Registers an already-built graph (daemon preload, tests).
  void Add(const std::string& name, BipartiteGraph graph,
           const PrepareOptions& options) KBIPLEX_EXCLUDES(mu_);

  /// Removes `name`; returns false when it was not registered. In-flight
  /// queries holding the shared_ptr keep running to completion.
  bool Evict(const std::string& name) KBIPLEX_EXCLUDES(mu_);

  /// Resolves `name`; nullopt when unknown.
  std::optional<RegisteredGraph> Get(const std::string& name) const
      KBIPLEX_EXCLUDES(mu_);

  /// Snapshot of every registered graph, sorted by name.
  std::vector<std::pair<std::string, RegisteredGraph>> List() const
      KBIPLEX_EXCLUDES(mu_);

  size_t size() const KBIPLEX_EXCLUDES(mu_);

 private:
  void Put(const std::string& name, RegisteredGraph entry)
      KBIPLEX_EXCLUDES(mu_);

  mutable SharedMutex mu_;
  std::map<std::string, RegisteredGraph> graphs_ KBIPLEX_GUARDED_BY(mu_);
  uint64_t next_generation_ KBIPLEX_GUARDED_BY(mu_) = 1;
};

}  // namespace serve
}  // namespace kbiplex

#endif  // KBIPLEX_SERVE_GRAPH_REGISTRY_H_
