#include "index/btree.h"

#include <algorithm>
#include <cassert>

namespace kbiplex {

BTreeSet::BTreeSet(size_t order)
    : order_(order < 4 ? 4 : order), size_(0),
      root_(std::make_unique<Node>()) {}

void BTreeSet::Clear() {
  root_ = std::make_unique<Node>();
  size_ = 0;
}

const BTreeSet::Node* BTreeSet::FindLeaf(std::string_view key) const {
  const Node* node = root_.get();
  while (!node->is_leaf) {
    size_t i = static_cast<size_t>(
        std::upper_bound(node->keys.begin(), node->keys.end(), key) -
        node->keys.begin());
    node = node->children[i].get();
  }
  return node;
}

bool BTreeSet::Contains(std::string_view key) const {
  const Node* leaf = FindLeaf(key);
  return std::binary_search(leaf->keys.begin(), leaf->keys.end(), key);
}

void BTreeSet::SplitLeaf(Node* leaf, InsertResult* result) {
  auto right = std::make_unique<Node>();
  right->is_leaf = true;
  const size_t mid = leaf->keys.size() / 2;
  right->keys.assign(std::make_move_iterator(leaf->keys.begin() +
                                             static_cast<ptrdiff_t>(mid)),
                     std::make_move_iterator(leaf->keys.end()));
  leaf->keys.resize(mid);
  right->next_leaf = leaf->next_leaf;
  leaf->next_leaf = right.get();
  result->split = true;
  result->split_key = right->keys.front();  // copy: stays in the right leaf
  result->right = std::move(right);
}

void BTreeSet::SplitInternal(Node* node, InsertResult* result) {
  auto right = std::make_unique<Node>();
  right->is_leaf = false;
  const size_t mid = node->keys.size() / 2;
  // The middle key moves up; keys after it move right.
  result->split = true;
  result->split_key = std::move(node->keys[mid]);
  right->keys.assign(
      std::make_move_iterator(node->keys.begin() +
                              static_cast<ptrdiff_t>(mid + 1)),
      std::make_move_iterator(node->keys.end()));
  node->keys.resize(mid);
  right->children.assign(
      std::make_move_iterator(node->children.begin() +
                              static_cast<ptrdiff_t>(mid + 1)),
      std::make_move_iterator(node->children.end()));
  node->children.resize(mid + 1);
  result->right = std::move(right);
}

BTreeSet::InsertResult BTreeSet::InsertInto(Node* node,
                                            std::string_view key) {
  InsertResult result;
  if (node->is_leaf) {
    auto it = std::lower_bound(node->keys.begin(), node->keys.end(), key);
    if (it != node->keys.end() && *it == key) return result;  // duplicate
    node->keys.insert(it, std::string(key));
    result.inserted = true;
    if (node->keys.size() > order_) SplitLeaf(node, &result);
    return result;
  }
  size_t i = static_cast<size_t>(
      std::upper_bound(node->keys.begin(), node->keys.end(), key) -
      node->keys.begin());
  InsertResult child = InsertInto(node->children[i].get(), key);
  result.inserted = child.inserted;
  if (child.split) {
    node->keys.insert(node->keys.begin() + static_cast<ptrdiff_t>(i),
                      std::move(child.split_key));
    node->children.insert(
        node->children.begin() + static_cast<ptrdiff_t>(i) + 1,
        std::move(child.right));
    if (node->keys.size() > order_) SplitInternal(node, &result);
  }
  return result;
}

bool BTreeSet::Insert(std::string_view key) {
  InsertResult result = InsertInto(root_.get(), key);
  if (result.split) {
    auto new_root = std::make_unique<Node>();
    new_root->is_leaf = false;
    new_root->keys.push_back(std::move(result.split_key));
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(result.right));
    root_ = std::move(new_root);
  }
  if (result.inserted) ++size_;
  return result.inserted;
}

void BTreeSet::ForEach(
    const std::function<void(std::string_view)>& fn) const {
  // Walk to the leftmost leaf, then follow the leaf chain.
  const Node* node = root_.get();
  while (!node->is_leaf) node = node->children.front().get();
  for (; node != nullptr; node = node->next_leaf) {
    for (const std::string& k : node->keys) fn(k);
  }
}

size_t BTreeSet::Height() const {
  size_t h = 1;
  const Node* node = root_.get();
  while (!node->is_leaf) {
    node = node->children.front().get();
    ++h;
  }
  return h;
}

size_t BTreeSet::LeafDepth() const { return Height(); }

bool BTreeSet::CheckNode(const Node* node, const std::string* lo,
                         const std::string* hi, size_t depth,
                         size_t leaf_depth) const {
  if (!std::is_sorted(node->keys.begin(), node->keys.end())) return false;
  if (std::adjacent_find(node->keys.begin(), node->keys.end()) !=
      node->keys.end()) {
    return false;
  }
  for (const std::string& k : node->keys) {
    if (lo != nullptr && k < *lo) return false;
    if (hi != nullptr && k >= *hi) return false;
  }
  if (node->is_leaf) {
    return depth == leaf_depth;  // all leaves at the same depth
  }
  if (node->children.size() != node->keys.size() + 1) return false;
  if (node->keys.empty()) return false;
  for (size_t i = 0; i < node->children.size(); ++i) {
    const std::string* clo = i == 0 ? lo : &node->keys[i - 1];
    const std::string* chi = i == node->keys.size() ? hi : &node->keys[i];
    if (!CheckNode(node->children[i].get(), clo, chi, depth + 1,
                   leaf_depth)) {
      return false;
    }
  }
  return true;
}

bool BTreeSet::CheckInvariants() const {
  // Leaf-chain must reproduce the sorted key sequence.
  size_t seen = 0;
  std::string prev;
  bool first = true;
  bool ordered = true;
  ForEach([&](std::string_view k) {
    if (!first && std::string_view(prev) >= k) ordered = false;
    prev = std::string(k);
    first = false;
    ++seen;
  });
  if (!ordered || seen != size_) return false;
  return CheckNode(root_.get(), nullptr, nullptr, 1, LeafDepth());
}

}  // namespace kbiplex
