// In-memory B+-tree over byte-string keys with set semantics.
//
// The paper stores every discovered solution in a B-tree keyed by the
// solution's vertex set (Algorithm 1, line 1) to deduplicate solutions that
// are reached through multiple links of the solution graph. This is that
// index: insert-if-absent, membership test, and ordered traversal. The
// store only ever grows during an enumeration, so deletion is not part of
// the interface (Clear() resets the whole tree).
#ifndef KBIPLEX_INDEX_BTREE_H_
#define KBIPLEX_INDEX_BTREE_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace kbiplex {

/// Insert-only ordered set of byte strings backed by a B+-tree.
class BTreeSet {
 public:
  /// `order` = maximum number of keys per node (>= 4). Smaller orders are
  /// useful in tests to force deep trees.
  explicit BTreeSet(size_t order = 64);

  BTreeSet(const BTreeSet&) = delete;
  BTreeSet& operator=(const BTreeSet&) = delete;
  BTreeSet(BTreeSet&&) = default;
  BTreeSet& operator=(BTreeSet&&) = default;

  /// Inserts `key` if absent. Returns true iff the key was inserted.
  bool Insert(std::string_view key);

  /// True iff `key` is present.
  bool Contains(std::string_view key) const;

  /// Number of stored keys.
  size_t Size() const { return size_; }

  bool Empty() const { return size_ == 0; }

  /// Removes all keys.
  void Clear();

  /// Visits every key in ascending order.
  void ForEach(const std::function<void(std::string_view)>& fn) const;

  /// Height of the tree (1 for a single leaf). Exposed for tests.
  size_t Height() const;

  /// Validates B+-tree structural invariants (sorted keys, node fill,
  /// leaf-link ordering). Exposed for tests; returns false on corruption.
  bool CheckInvariants() const;

 private:
  struct Node {
    bool is_leaf = true;
    std::vector<std::string> keys;
    // Internal nodes: children.size() == keys.size() + 1.
    std::vector<std::unique_ptr<Node>> children;
    // Leaf chaining for ordered scans.
    Node* next_leaf = nullptr;
  };

  // Result of inserting into a subtree: if the node split, `split_key` and
  // `right` carry the new separator and sibling.
  struct InsertResult {
    bool inserted = false;
    bool split = false;
    std::string split_key;
    std::unique_ptr<Node> right;
  };

  InsertResult InsertInto(Node* node, std::string_view key);
  void SplitLeaf(Node* leaf, InsertResult* result);
  void SplitInternal(Node* node, InsertResult* result);
  const Node* FindLeaf(std::string_view key) const;
  bool CheckNode(const Node* node, const std::string* lo,
                 const std::string* hi, size_t depth,
                 size_t leaf_depth) const;
  size_t LeafDepth() const;

  size_t order_;
  size_t size_;
  std::unique_ptr<Node> root_;
};

}  // namespace kbiplex

#endif  // KBIPLEX_INDEX_BTREE_H_
