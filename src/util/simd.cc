#include "util/simd.h"

#include <bit>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define KBIPLEX_SIMD_X86 1
#include <immintrin.h>
#endif

#if defined(__aarch64__) && (defined(__GNUC__) || defined(__clang__))
#define KBIPLEX_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace kbiplex {
namespace simd {
namespace {

// ----------------------------------------------------------- scalar ------
// The portable word loops: exactly the pre-SIMD library code, kept as the
// semantic reference every vector kernel must agree with bit for bit.

size_t ScalarIntersectCount(const uint64_t* a, const uint64_t* b, size_t n) {
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    count += static_cast<size_t>(std::popcount(a[i] & b[i]));
  }
  return count;
}

size_t ScalarPopcount(const uint64_t* w, size_t n) {
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    count += static_cast<size_t>(std::popcount(w[i]));
  }
  return count;
}

bool ScalarIsSubset(const uint64_t* a, const uint64_t* b, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (a[i] & ~b[i]) return false;
  }
  return true;
}

bool ScalarIntersects(const uint64_t* a, const uint64_t* b, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (a[i] & b[i]) return true;
  }
  return false;
}

void ScalarOr(uint64_t* dst, const uint64_t* src, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] |= src[i];
}

void ScalarAnd(uint64_t* dst, const uint64_t* src, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] &= src[i];
}

void ScalarAndNot(uint64_t* dst, const uint64_t* src, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] &= ~src[i];
}

size_t ScalarRowConnCount(const uint64_t* row, const uint32_t* subset,
                          size_t n) {
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint32_t u = subset[i];
    count += (row[u >> 6] >> (u & 63)) & 1ULL;
  }
  return count;
}

constexpr Kernels kScalar = {
    "scalar",      ScalarIntersectCount, ScalarPopcount, ScalarIsSubset,
    ScalarIntersects, ScalarOr,          ScalarAnd,      ScalarAndNot,
    ScalarRowConnCount,
};

// ------------------------------------------------------------- AVX2 ------
// Compiled with a per-function target attribute so the rest of the
// library keeps the baseline ISA; only ever called after the cpuid check.
#if defined(KBIPLEX_SIMD_X86)

/// Per-byte popcount via two 16-entry nibble lookups (Mula's method),
/// then a horizontal byte sum into the four 64-bit lanes.
__attribute__((target("avx2"))) inline __m256i Popcount256(__m256i v) {
  const __m256i lookup =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1,
                       1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  const __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lookup, lo),
                                      _mm256_shuffle_epi8(lookup, hi));
  return _mm256_sad_epu8(cnt, _mm256_setzero_si256());
}

__attribute__((target("avx2"))) inline size_t HorizontalSum(__m256i acc) {
  return static_cast<size_t>(_mm256_extract_epi64(acc, 0)) +
         static_cast<size_t>(_mm256_extract_epi64(acc, 1)) +
         static_cast<size_t>(_mm256_extract_epi64(acc, 2)) +
         static_cast<size_t>(_mm256_extract_epi64(acc, 3));
}

__attribute__((target("avx2"))) size_t Avx2IntersectCount(const uint64_t* a,
                                                          const uint64_t* b,
                                                          size_t n) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(b + i));
    acc = _mm256_add_epi64(acc, Popcount256(_mm256_and_si256(va, vb)));
  }
  size_t count = HorizontalSum(acc);
  for (; i < n; ++i) {
    count += static_cast<size_t>(std::popcount(a[i] & b[i]));
  }
  return count;
}

__attribute__((target("avx2"))) size_t Avx2Popcount(const uint64_t* w,
                                                    size_t n) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_epi64(
        acc, Popcount256(_mm256_loadu_si256(
                 reinterpret_cast<const __m256i*>(w + i))));
  }
  size_t count = HorizontalSum(acc);
  for (; i < n; ++i) count += static_cast<size_t>(std::popcount(w[i]));
  return count;
}

__attribute__((target("avx2"))) bool Avx2IsSubset(const uint64_t* a,
                                                  const uint64_t* b,
                                                  size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(b + i));
    // vptest: ZF set iff (va & ~vb) == 0.
    if (!_mm256_testc_si256(vb, va)) return false;
  }
  for (; i < n; ++i) {
    if (a[i] & ~b[i]) return false;
  }
  return true;
}

__attribute__((target("avx2"))) bool Avx2Intersects(const uint64_t* a,
                                                    const uint64_t* b,
                                                    size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(b + i));
    if (!_mm256_testz_si256(va, vb)) return true;
  }
  for (; i < n; ++i) {
    if (a[i] & b[i]) return true;
  }
  return false;
}

__attribute__((target("avx2"))) void Avx2Or(uint64_t* dst,
                                            const uint64_t* src, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i* d = reinterpret_cast<__m256i*>(dst + i);
    const __m256i vs = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(d, _mm256_or_si256(_mm256_loadu_si256(d), vs));
  }
  for (; i < n; ++i) dst[i] |= src[i];
}

__attribute__((target("avx2"))) void Avx2And(uint64_t* dst,
                                             const uint64_t* src, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i* d = reinterpret_cast<__m256i*>(dst + i);
    const __m256i vs = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(d, _mm256_and_si256(_mm256_loadu_si256(d), vs));
  }
  for (; i < n; ++i) dst[i] &= src[i];
}

__attribute__((target("avx2"))) void Avx2AndNot(uint64_t* dst,
                                                const uint64_t* src,
                                                size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i* d = reinterpret_cast<__m256i*>(dst + i);
    const __m256i vs = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(src + i));
    // vpandn computes ~first & second.
    _mm256_storeu_si256(d, _mm256_andnot_si256(vs, _mm256_loadu_si256(d)));
  }
  for (; i < n; ++i) dst[i] &= ~src[i];
}

__attribute__((target("avx2"))) size_t Avx2RowConnCount(
    const uint64_t* row, const uint32_t* subset, size_t n) {
  // Four probes per iteration: gather the four row words the ids land in
  // (vpgatherqq on 32-bit indices), shift each id's bit down with a
  // per-lane variable shift, and accumulate the low bits.
  __m256i acc = _mm256_setzero_si256();
  const __m256i one = _mm256_set1_epi64x(1);
  const __m128i mask63 = _mm_set1_epi32(63);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i ids = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(subset + i));
    const __m128i word_idx = _mm_srli_epi32(ids, 6);
    const __m256i words = _mm256_i32gather_epi64(
        reinterpret_cast<const long long*>(row), word_idx, 8);
    const __m256i shifts =
        _mm256_cvtepu32_epi64(_mm_and_si128(ids, mask63));
    acc = _mm256_add_epi64(
        acc, _mm256_and_si256(_mm256_srlv_epi64(words, shifts), one));
  }
  size_t count = HorizontalSum(acc);
  for (; i < n; ++i) {
    const uint32_t u = subset[i];
    count += (row[u >> 6] >> (u & 63)) & 1ULL;
  }
  return count;
}

constexpr Kernels kAvx2 = {
    "avx2",        Avx2IntersectCount, Avx2Popcount, Avx2IsSubset,
    Avx2Intersects, Avx2Or,            Avx2And,      Avx2AndNot,
    Avx2RowConnCount,
};

#endif  // KBIPLEX_SIMD_X86

// ------------------------------------------------------------- NEON ------
// NEON is part of the AArch64 baseline, so no runtime detection is
// needed; the kernels are plain intrinsics.
#if defined(KBIPLEX_SIMD_NEON)

inline size_t NeonPopcount128(uint64x2_t v) {
  // vcnt counts per byte; the pairwise-add ladder folds bytes to a u64.
  const uint8x16_t bytes = vcntq_u8(vreinterpretq_u8_u64(v));
  return static_cast<size_t>(vaddvq_u8(bytes));
}

size_t NeonIntersectCount(const uint64_t* a, const uint64_t* b, size_t n) {
  size_t count = 0;
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    count += NeonPopcount128(vandq_u64(vld1q_u64(a + i), vld1q_u64(b + i)));
  }
  for (; i < n; ++i) {
    count += static_cast<size_t>(std::popcount(a[i] & b[i]));
  }
  return count;
}

size_t NeonPopcountWords(const uint64_t* w, size_t n) {
  size_t count = 0;
  size_t i = 0;
  for (; i + 2 <= n; i += 2) count += NeonPopcount128(vld1q_u64(w + i));
  for (; i < n; ++i) count += static_cast<size_t>(std::popcount(w[i]));
  return count;
}

bool NeonIsSubset(const uint64_t* a, const uint64_t* b, size_t n) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t stray = vbicq_u64(vld1q_u64(a + i), vld1q_u64(b + i));
    if ((vgetq_lane_u64(stray, 0) | vgetq_lane_u64(stray, 1)) != 0) {
      return false;
    }
  }
  for (; i < n; ++i) {
    if (a[i] & ~b[i]) return false;
  }
  return true;
}

bool NeonIntersects(const uint64_t* a, const uint64_t* b, size_t n) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t both = vandq_u64(vld1q_u64(a + i), vld1q_u64(b + i));
    if ((vgetq_lane_u64(both, 0) | vgetq_lane_u64(both, 1)) != 0) {
      return true;
    }
  }
  for (; i < n; ++i) {
    if (a[i] & b[i]) return true;
  }
  return false;
}

void NeonOr(uint64_t* dst, const uint64_t* src, size_t n) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_u64(dst + i, vorrq_u64(vld1q_u64(dst + i), vld1q_u64(src + i)));
  }
  for (; i < n; ++i) dst[i] |= src[i];
}

void NeonAnd(uint64_t* dst, const uint64_t* src, size_t n) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_u64(dst + i, vandq_u64(vld1q_u64(dst + i), vld1q_u64(src + i)));
  }
  for (; i < n; ++i) dst[i] &= src[i];
}

void NeonAndNot(uint64_t* dst, const uint64_t* src, size_t n) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_u64(dst + i, vbicq_u64(vld1q_u64(dst + i), vld1q_u64(src + i)));
  }
  for (; i < n; ++i) dst[i] &= ~src[i];
}

constexpr Kernels kNeon = {
    "neon",        NeonIntersectCount, NeonPopcountWords, NeonIsSubset,
    NeonIntersects, NeonOr,            NeonAnd,           NeonAndNot,
    ScalarRowConnCount,  // no gather on NEON; the scalar probe loop wins
};

#endif  // KBIPLEX_SIMD_NEON

// --------------------------------------------------------- dispatch ------

const Kernels* DetectNative() {
#if defined(KBIPLEX_SIMD_X86)
  if (__builtin_cpu_supports("avx2")) return &kAvx2;
#endif
#if defined(KBIPLEX_SIMD_NEON)
  return &kNeon;
#endif
  return &kScalar;
}

bool ScalarForcedByEnvironment() {
#if defined(KBIPLEX_FORCE_SCALAR)
  return true;
#else
  const char* v = std::getenv("KBIPLEX_FORCE_SCALAR");
  return v != nullptr && v[0] != '\0' && std::strcmp(v, "0") != 0;
#endif
}

/// The one-time selection: function-local statics give the thread-safe
/// initialize-once semantics (same publication pattern as std::call_once).
struct Selection {
  const Kernels* native = DetectNative();
  bool forced = ScalarForcedByEnvironment();
  const Kernels* active = forced ? &kScalar : native;
};

const Selection& GetSelection() {
  static const Selection selection;
  return selection;
}

}  // namespace

const Kernels& Scalar() { return kScalar; }

const Kernels& Native() { return *GetSelection().native; }

const Kernels& Active() { return *GetSelection().active; }

bool ForcedScalar() { return GetSelection().forced; }

}  // namespace simd
}  // namespace kbiplex
