// Bounded-cardinality subset enumeration used by EnumAlmostSat (Section 4 of
// the paper): subsets are visited in ascending cardinality, and once a
// subset is accepted every superset of it can be pruned (refinement L2.0).
#ifndef KBIPLEX_UTIL_SUBSET_ENUM_H_
#define KBIPLEX_UTIL_SUBSET_ENUM_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace kbiplex {

/// Invokes `fn` with every size-`s` combination of indices {0, .., n-1},
/// passed as a sorted index vector, in lexicographic order. `fn` returns
/// false to stop early. Returns false iff stopped early.
bool ForEachCombination(size_t n, size_t s,
                        const std::function<bool(const std::vector<size_t>&)>& fn);

/// Enumerates subsets of {0, .., n-1} with cardinality 0..max_size in
/// ascending cardinality, supporting superset pruning: call
/// PruneSupersetsOfCurrent() after Next() returned a subset S to skip every
/// later subset that contains S.
///
/// Usage:
///   BoundedSubsetEnumerator e(n, k);
///   while (e.Next()) {
///     const std::vector<size_t>& s = e.current();
///     if (Accept(s)) e.PruneSupersetsOfCurrent();
///   }
class BoundedSubsetEnumerator {
 public:
  /// Enumerates subsets of a ground set of `n` elements with size at most
  /// `max_size`.
  BoundedSubsetEnumerator(size_t n, size_t max_size);

  /// Advances to the next non-pruned subset; returns false when exhausted.
  /// The empty subset is visited first.
  bool Next();

  /// The subset produced by the last successful Next(), as sorted indices.
  const std::vector<size_t>& current() const { return current_; }

  /// Marks the current subset as a "base": all of its supersets are skipped
  /// by subsequent Next() calls.
  void PruneSupersetsOfCurrent();

 private:
  bool AdvanceCombination();
  bool IsPruned(const std::vector<size_t>& subset) const;

  size_t n_;
  size_t max_size_;
  size_t size_;           // cardinality currently being enumerated
  bool started_;
  std::vector<size_t> current_;
  std::vector<std::vector<size_t>> pruned_bases_;
};

}  // namespace kbiplex

#endif  // KBIPLEX_UTIL_SUBSET_ENUM_H_
