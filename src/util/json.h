// Minimal JSON emission helpers shared by every hand-rolled JSON writer
// in the library (EnumerateStats::ToJson, the bench BENCH_*.json writer).
// One implementation keeps the escaping rules and the non-finite-double
// handling from drifting between emitters.
#ifndef KBIPLEX_UTIL_JSON_H_
#define KBIPLEX_UTIL_JSON_H_

#include <cmath>
#include <cstdio>
#include <ostream>
#include <string>

namespace kbiplex {
namespace json {

/// Appends `s` as a quoted JSON string, escaping quotes, backslashes,
/// newlines, and all other control characters.
inline void AppendEscaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

/// Appends a double as a JSON value. JSON has no inf/nan literals;
/// default ostream formatting would emit them bare and corrupt the
/// document, so non-finite values render as null.
inline void AppendDouble(std::ostream& os, double value) {
  if (!std::isfinite(value)) {
    os << "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  os << buf;
}

/// The JSON spelling of a bool.
inline const char* Bool(bool b) { return b ? "true" : "false"; }

}  // namespace json
}  // namespace kbiplex

#endif  // KBIPLEX_UTIL_JSON_H_
