#include "util/thread_pool.h"

#include <utility>

namespace kbiplex {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(&mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.NotifyOne();
}

void ThreadPool::Wait() {
  MutexLock lock(&mu_);
  while (!queue_.empty() || running_ != 0) idle_cv_.Wait(&mu_);
}

size_t ThreadPool::HardwareThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<size_t>(n);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&mu_);
      while (!shutdown_ && queue_.empty()) work_cv_.Wait(&mu_);
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
      ++running_;
    }
    task();
    {
      MutexLock lock(&mu_);
      --running_;
      if (queue_.empty() && running_ == 0) idle_cv_.NotifyAll();
    }
  }
}

}  // namespace kbiplex
