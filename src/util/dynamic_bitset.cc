#include "util/dynamic_bitset.h"

#include <bit>

namespace kbiplex {
namespace {
constexpr size_t kWordBits = 64;

size_t WordsFor(size_t bits) { return (bits + kWordBits - 1) / kWordBits; }
}  // namespace

DynamicBitset::DynamicBitset(size_t size)
    : size_(size), words_(WordsFor(size), 0) {}

void DynamicBitset::Resize(size_t size) {
  size_ = size;
  words_.resize(WordsFor(size), 0);
  // Clear any stale bits beyond the new size in the last word.
  if (size_ % kWordBits != 0 && !words_.empty()) {
    words_.back() &= (1ULL << (size_ % kWordBits)) - 1;
  }
}

void DynamicBitset::Reset() {
  std::fill(words_.begin(), words_.end(), 0);
}

void DynamicBitset::SetAll() {
  std::fill(words_.begin(), words_.end(), ~0ULL);
  if (size_ % kWordBits != 0 && !words_.empty()) {
    words_.back() = (1ULL << (size_ % kWordBits)) - 1;
  }
}

size_t DynamicBitset::Count() const {
  size_t n = 0;
  for (uint64_t w : words_) n += static_cast<size_t>(std::popcount(w));
  return n;
}

bool DynamicBitset::None() const {
  for (uint64_t w : words_) {
    if (w != 0) return false;
  }
  return true;
}

bool DynamicBitset::IsSubsetOf(const DynamicBitset& other) const {
  for (size_t i = 0; i < words_.size(); ++i) {
    if (words_[i] & ~other.words_[i]) return false;
  }
  return true;
}

bool DynamicBitset::Intersects(const DynamicBitset& other) const {
  for (size_t i = 0; i < words_.size(); ++i) {
    if (words_[i] & other.words_[i]) return true;
  }
  return false;
}

DynamicBitset& DynamicBitset::operator|=(const DynamicBitset& other) {
  for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

DynamicBitset& DynamicBitset::operator&=(const DynamicBitset& other) {
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

DynamicBitset& DynamicBitset::operator-=(const DynamicBitset& other) {
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= ~other.words_[i];
  return *this;
}

size_t DynamicBitset::FindNextSet(size_t from) const {
  if (from >= size_) return size_;
  size_t wi = from >> 6;
  uint64_t w = words_[wi] & (~0ULL << (from & 63));
  while (true) {
    if (w != 0) {
      size_t bit = (wi << 6) +
                   static_cast<size_t>(std::countr_zero(w));
      return bit < size_ ? bit : size_;
    }
    if (++wi >= words_.size()) return size_;
    w = words_[wi];
  }
}

size_t DynamicBitset::IntersectCount(const DynamicBitset& other) const {
  size_t n = 0;
  for (size_t i = 0; i < words_.size(); ++i) {
    n += static_cast<size_t>(std::popcount(words_[i] & other.words_[i]));
  }
  return n;
}

void DynamicBitset::AppendSetBits(std::vector<uint32_t>* out) const {
  ForEachSet([out](size_t i) { out->push_back(static_cast<uint32_t>(i)); });
}

}  // namespace kbiplex
