#include "util/dynamic_bitset.h"

#include <algorithm>
#include <bit>

#include "util/simd.h"

namespace kbiplex {
namespace {
constexpr size_t kWordBits = 64;

size_t WordsFor(size_t bits) { return (bits + kWordBits - 1) / kWordBits; }
}  // namespace

DynamicBitset::DynamicBitset(size_t size)
    : size_(size), words_(WordsFor(size), 0) {}

void DynamicBitset::Resize(size_t size) {
  size_ = size;
  words_.resize(WordsFor(size), 0);
  // Clear any stale bits beyond the new size in the last word.
  if (size_ % kWordBits != 0 && !words_.empty()) {
    words_.back() &= (1ULL << (size_ % kWordBits)) - 1;
  }
}

void DynamicBitset::Reset() {
  std::fill(words_.begin(), words_.end(), 0);
}

void DynamicBitset::SetAll() {
  std::fill(words_.begin(), words_.end(), ~0ULL);
  if (size_ % kWordBits != 0 && !words_.empty()) {
    words_.back() = (1ULL << (size_ % kWordBits)) - 1;
  }
}

void DynamicBitset::TruncateToSize() {
  if (size_ % kWordBits != 0 && !words_.empty()) {
    words_.back() &= (1ULL << (size_ % kWordBits)) - 1;
  }
}

size_t DynamicBitset::Count() const {
  return simd::Active().popcount(words_.data(), words_.size());
}

bool DynamicBitset::None() const {
  for (uint64_t w : words_) {
    if (w != 0) return false;
  }
  return true;
}

bool DynamicBitset::IsSubsetOf(const DynamicBitset& other) const {
  const size_t common = std::min(words_.size(), other.words_.size());
  if (!simd::Active().is_subset(words_.data(), other.words_.data(), common)) {
    return false;
  }
  // `other` is zero beyond its own words, so any set bit of *this there
  // breaks the subset relation. No-op in the identical-size common case.
  for (size_t i = common; i < words_.size(); ++i) {
    if (words_[i] != 0) return false;
  }
  return true;
}

bool DynamicBitset::Intersects(const DynamicBitset& other) const {
  const size_t common = std::min(words_.size(), other.words_.size());
  return simd::Active().intersects(words_.data(), other.words_.data(),
                                   common);
}

DynamicBitset& DynamicBitset::operator|=(const DynamicBitset& other) {
  const size_t common = std::min(words_.size(), other.words_.size());
  simd::Active().or_words(words_.data(), other.words_.data(), common);
  // A larger `other` may carry bits past size_ in our last word.
  if (other.size_ > size_) TruncateToSize();
  return *this;
}

DynamicBitset& DynamicBitset::operator&=(const DynamicBitset& other) {
  const size_t common = std::min(words_.size(), other.words_.size());
  simd::Active().and_words(words_.data(), other.words_.data(), common);
  // Beyond `other`'s words it is all zero: the intersection clears ours.
  std::fill(words_.begin() + static_cast<ptrdiff_t>(common), words_.end(),
            0);
  return *this;
}

DynamicBitset& DynamicBitset::operator-=(const DynamicBitset& other) {
  const size_t common = std::min(words_.size(), other.words_.size());
  simd::Active().andnot_words(words_.data(), other.words_.data(), common);
  return *this;
}

size_t DynamicBitset::FindNextSet(size_t from) const {
  if (from >= size_) return size_;
  size_t wi = from >> 6;
  uint64_t w = words_[wi] & (~0ULL << (from & 63));
  while (true) {
    if (w != 0) {
      size_t bit = (wi << 6) +
                   static_cast<size_t>(std::countr_zero(w));
      return bit < size_ ? bit : size_;
    }
    if (++wi >= words_.size()) return size_;
    w = words_[wi];
  }
}

size_t DynamicBitset::IntersectCount(const DynamicBitset& other) const {
  const size_t common = std::min(words_.size(), other.words_.size());
  return simd::Active().intersect_count(words_.data(), other.words_.data(),
                                        common);
}

void DynamicBitset::AppendSetBits(std::vector<uint32_t>* out) const {
  ForEachSet([out](size_t i) { out->push_back(static_cast<uint32_t>(i)); });
}

}  // namespace kbiplex
