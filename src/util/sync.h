// Annotated synchronization primitives: thin wrappers over std::mutex,
// std::shared_mutex, and std::condition_variable that carry the
// thread-safety capability attributes from util/thread_annotations.h, so
// `clang -Wthread-safety` can check every lock acquisition and every
// KBIPLEX_GUARDED_BY member access in the repo. These are the ONLY
// synchronization types production code may use —
// tools/lint/check_concurrency.py fails the build on a raw std::mutex /
// std::shared_mutex / std::condition_variable outside this header,
// because the analysis cannot see through the std types.
//
// The wrappers add no state and no behavior: Mutex is exactly
// std::mutex, SharedMutex exactly std::shared_mutex, CondVar exactly
// std::condition_variable (waiting through an externally-held Mutex via
// the adopt-lock idiom). Prefer the scoped guards (MutexLock,
// ReaderLock, WriterLock) over manual Lock/Unlock pairs; manual calls
// exist for the rare pattern a scope cannot express.
//
// CondVar deliberately has no predicate-taking Wait: the analysis cannot
// see that a predicate lambda runs under the caller's lock, so guarded
// reads inside it would be flagged. Write the standard explicit loop
// instead, which the analysis follows:
//
//   MutexLock lock(&mu_);
//   while (!ready_) cv_.Wait(&mu_);   // ready_ KBIPLEX_GUARDED_BY(mu_)
#ifndef KBIPLEX_UTIL_SYNC_H_
#define KBIPLEX_UTIL_SYNC_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "util/thread_annotations.h"

namespace kbiplex {

/// Exclusive mutex (std::mutex) visible to the thread-safety analysis.
class KBIPLEX_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() KBIPLEX_ACQUIRE() { mu_.lock(); }
  void Unlock() KBIPLEX_RELEASE() { mu_.unlock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// Reader/writer mutex (std::shared_mutex) visible to the analysis.
/// Reads of a KBIPLEX_GUARDED_BY member are legal under either mode;
/// writes require the exclusive mode.
class KBIPLEX_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() KBIPLEX_ACQUIRE() { mu_.lock(); }
  void Unlock() KBIPLEX_RELEASE() { mu_.unlock(); }
  void LockShared() KBIPLEX_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() KBIPLEX_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive lock on a Mutex.
class KBIPLEX_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) KBIPLEX_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() KBIPLEX_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// RAII exclusive lock on a SharedMutex (the load/evict side).
class KBIPLEX_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex* mu) KBIPLEX_ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~WriterLock() KBIPLEX_RELEASE() { mu_->Unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// RAII shared lock on a SharedMutex (the query side).
class KBIPLEX_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex* mu) KBIPLEX_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->LockShared();
  }
  ~ReaderLock() KBIPLEX_RELEASE() { mu_->UnlockShared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// Condition variable waited on through an externally-held Mutex. Each
/// Wait* call requires the mutex held; it is atomically released while
/// blocked and re-held on return (the analysis only needs the entry/exit
/// invariant, which the KBIPLEX_REQUIRES annotation states).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex* mu) KBIPLEX_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller's scope still owns the re-held mutex
  }

  std::cv_status WaitUntil(Mutex* mu,
                           std::chrono::steady_clock::time_point deadline)
      KBIPLEX_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(lock, deadline);
    lock.release();
    return status;
  }

  std::cv_status WaitFor(Mutex* mu, std::chrono::nanoseconds timeout)
      KBIPLEX_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(lock, timeout);
    lock.release();
    return status;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace kbiplex

#endif  // KBIPLEX_UTIL_SYNC_H_
