// A small fixed-size thread pool used by the parallel enumeration driver
// (api/). Lives in util/ so any layer can reuse it without depending on
// the api/ layer. Tasks are plain std::function<void()> values executed in
// FIFO order by a fixed set of worker threads; Wait() gives a barrier.
#ifndef KBIPLEX_UTIL_THREAD_POOL_H_
#define KBIPLEX_UTIL_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/sync.h"
#include "util/thread_annotations.h"

namespace kbiplex {

/// Fixed-size worker pool. Construction spawns the workers; destruction
/// waits for every submitted task and joins them. Submit and Wait may be
/// called from any thread except the workers themselves (a task must not
/// Wait() on its own pool). Tasks must not throw: exceptions escaping a
/// task would terminate the process, so callers wrap fallible work and
/// record errors through their own channel.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  /// Waits for all pending tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues one task.
  void Submit(std::function<void()> task) KBIPLEX_EXCLUDES(mu_);

  /// Blocks until every task submitted so far has finished.
  void Wait() KBIPLEX_EXCLUDES(mu_);

  size_t NumThreads() const { return workers_.size(); }

  /// Threads the hardware supports, with a floor of 1 (the value used for
  /// "threads = 0, pick for me" requests).
  static size_t HardwareThreads();

 private:
  void WorkerLoop() KBIPLEX_EXCLUDES(mu_);

  Mutex mu_;
  CondVar work_cv_;  // signals workers: task or shutdown
  CondVar idle_cv_;  // signals Wait(): everything drained
  std::deque<std::function<void()>> queue_ KBIPLEX_GUARDED_BY(mu_);
  size_t running_ KBIPLEX_GUARDED_BY(mu_) = 0;  // tasks currently executing
  bool shutdown_ KBIPLEX_GUARDED_BY(mu_) = false;
  // Written only by the constructor, before any worker exists; joined by
  // the destructor after shutdown. Size reads (NumThreads) are safe on
  // the immutable vector.
  std::vector<std::thread> workers_;
};

}  // namespace kbiplex

#endif  // KBIPLEX_UTIL_THREAD_POOL_H_
