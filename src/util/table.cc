#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <iomanip>

namespace kbiplex {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TextTable::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c >= widths.size()) widths.resize(c + 1, 0);
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << cell;
    }
    os << "\n";
  };
  print_row(headers_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
}

std::string FormatSeconds(double seconds) {
  if (seconds < 0) return "INF";
  char buf[64];
  if (seconds >= 100 || seconds == 0) {
    std::snprintf(buf, sizeof(buf), "%.1f", seconds);
  } else if (seconds >= 0.01) {
    std::snprintf(buf, sizeof(buf), "%.4f", seconds);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3e", seconds);
  }
  return buf;
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

}  // namespace kbiplex
