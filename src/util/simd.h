// Runtime-dispatched SIMD kernels for the word-loop primitives behind the
// enumeration hot paths: bitset intersection popcounts, subset/overlap
// tests, bulk bitwise operators, and the gather-style row connection count
// of the adjacency index. A dense enumeration run issues tens of millions
// of these per second (BENCH_candidate_gen.json), so the inner loops are
// worth vectorizing — but correctness must never depend on the host CPU,
// so every kernel has a portable scalar implementation and the dispatch
// happens exactly once, at first use:
//
//   - x86-64 with AVX2 (detected via cpuid at startup): 256-bit kernels,
//     nibble-LUT popcount, vpgatherqq row probing.
//   - AArch64: NEON kernels (NEON is baseline on AArch64, no detection
//     needed) with vcnt-based popcount.
//   - everything else, or when forced: the portable scalar word loops.
//
// Forcing the scalar path — for A/B benchmarking and for the CI job that
// diffs scalar vs native enumeration output — works two ways:
//   - at build time: compile with -DKBIPLEX_FORCE_SCALAR;
//   - at run time: set the KBIPLEX_FORCE_SCALAR environment variable to
//     anything but "0" or the empty string before the first kernel call.
//
// Callers hold the selected table by reference (simd::Active()) or go
// through the convenience wrappers below; tests can pin either table
// explicitly (simd::Scalar(), simd::Native()) to prove both agree.
#ifndef KBIPLEX_UTIL_SIMD_H_
#define KBIPLEX_UTIL_SIMD_H_

#include <cstddef>
#include <cstdint>

namespace kbiplex {
namespace simd {

/// One implementation of the word-loop primitives. All pointers may be
/// null only when the word count `n` is zero; buffers never alias unless
/// the kernel writes in place (the bitwise operators' destination).
struct Kernels {
  /// Human-readable implementation name ("scalar", "avx2", "neon").
  const char* name;

  /// popcount(a & b) over `n` words, without materializing the AND.
  size_t (*intersect_count)(const uint64_t* a, const uint64_t* b, size_t n);

  /// popcount over `n` words.
  size_t (*popcount)(const uint64_t* w, size_t n);

  /// True iff (a & ~b) == 0 over `n` words (a is a subset of b).
  bool (*is_subset)(const uint64_t* a, const uint64_t* b, size_t n);

  /// True iff (a & b) != 0 for some word (the sets overlap).
  bool (*intersects)(const uint64_t* a, const uint64_t* b, size_t n);

  /// dst |= src, dst &= src, dst &= ~src over `n` words.
  void (*or_words)(uint64_t* dst, const uint64_t* src, size_t n);
  void (*and_words)(uint64_t* dst, const uint64_t* src, size_t n);
  void (*andnot_words)(uint64_t* dst, const uint64_t* src, size_t n);

  /// Gather/popcount row probe: counts ids u in `subset[0..n)` whose bit
  /// (row[u >> 6] >> (u & 63)) is set. The adjacency-index RowConnCount
  /// primitive; `row` must cover the largest id's word.
  size_t (*row_conn_count)(const uint64_t* row, const uint32_t* subset,
                           size_t n);
};

/// The portable scalar implementation (always available).
const Kernels& Scalar();

/// The best implementation the build and CPU support, ignoring the
/// KBIPLEX_FORCE_SCALAR override. Equals Scalar() on hosts without SIMD.
const Kernels& Native();

/// The table every production caller uses: Native(), unless scalar was
/// forced at build or run time (see the header comment). Selected once;
/// later environment changes have no effect.
const Kernels& Active();

/// True iff Active() resolved to the scalar table because of the build
/// define or the KBIPLEX_FORCE_SCALAR environment variable.
bool ForcedScalar();

}  // namespace simd
}  // namespace kbiplex

#endif  // KBIPLEX_UTIL_SIMD_H_
