// Common small types and sorted-vector helpers shared across the library.
#ifndef KBIPLEX_UTIL_COMMON_H_
#define KBIPLEX_UTIL_COMMON_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

namespace kbiplex {

/// Vertex identifier. Left and right vertices of a bipartite graph live in
/// separate id spaces, each starting at 0.
using VertexId = uint32_t;

/// Sentinel for "no vertex".
inline constexpr VertexId kInvalidVertex =
    std::numeric_limits<VertexId>::max();

/// Which side of the bipartite graph a vertex belongs to.
enum class Side : uint8_t { kLeft = 0, kRight = 1 };

/// Returns the opposite side.
inline Side Opposite(Side s) {
  return s == Side::kLeft ? Side::kRight : Side::kLeft;
}

/// Sorted-vector set algebra. All functions below require their inputs to be
/// sorted ascending and duplicate-free; outputs preserve that invariant.
namespace sorted {

/// Below this size a predictable early-exit linear pass beats the
/// branch-mispredicting binary search. Member sets in the enumeration
/// recursion are mostly tiny, so this is the common case.
inline constexpr size_t kLinearScanMax = 16;

/// True iff `x` occurs in sorted vector `v`.
inline bool Contains(const std::vector<VertexId>& v, VertexId x) {
  if (v.size() <= kLinearScanMax) {
    for (VertexId y : v) {
      if (y >= x) return y == x;
    }
    return false;
  }
  return std::binary_search(v.begin(), v.end(), x);
}

/// Number of elements common to `a` and `b`.
inline size_t IntersectionSize(const std::vector<VertexId>& a,
                               const std::vector<VertexId>& b) {
  size_t n = 0;
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      ++n;
      ++ia;
      ++ib;
    }
  }
  return n;
}

/// Set intersection `a ∩ b`.
inline std::vector<VertexId> Intersect(const std::vector<VertexId>& a,
                                       const std::vector<VertexId>& b) {
  std::vector<VertexId> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

/// Set union `a ∪ b`.
inline std::vector<VertexId> Union(const std::vector<VertexId>& a,
                                   const std::vector<VertexId>& b) {
  std::vector<VertexId> out;
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

/// Set difference `a \ b`.
inline std::vector<VertexId> Difference(const std::vector<VertexId>& a,
                                        const std::vector<VertexId>& b) {
  std::vector<VertexId> out;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

/// True iff `a ⊆ b`.
inline bool IsSubset(const std::vector<VertexId>& a,
                     const std::vector<VertexId>& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

/// Inserts `x` into sorted vector `v` if absent. Returns true if inserted.
inline bool Insert(std::vector<VertexId>* v, VertexId x) {
  auto it = std::lower_bound(v->begin(), v->end(), x);
  if (it != v->end() && *it == x) return false;
  v->insert(it, x);
  return true;
}

/// Removes `x` from sorted vector `v` if present. Returns true if removed.
inline bool Erase(std::vector<VertexId>* v, VertexId x) {
  auto it = std::lower_bound(v->begin(), v->end(), x);
  if (it == v->end() || *it != x) return false;
  v->erase(it);
  return true;
}

}  // namespace sorted
}  // namespace kbiplex

#endif  // KBIPLEX_UTIL_COMMON_H_
