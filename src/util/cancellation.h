// Cooperative cancellation for long-running enumerations. The token lives
// low in the dependency graph (util/) so every backend options struct can
// carry a pointer to one without depending on the api/ layer that usually
// hands it out.
#ifndef KBIPLEX_UTIL_CANCELLATION_H_
#define KBIPLEX_UTIL_CANCELLATION_H_

#include <atomic>

namespace kbiplex {

/// A cancellation flag shared between a controller (any thread) and a
/// running enumeration. Backends poll IsCancelled() at the same cadence as
/// their wall-clock deadline and stop with `completed = false` once it is
/// set. Cancel() may be called from a signal handler or another thread;
/// Reset() must not race with a running enumeration.
class CancellationToken {
 public:
  CancellationToken() = default;

  /// A token chained to `parent`: it reports cancelled once either it or
  /// the parent fires, while Cancel() only fires this token. The parallel
  /// enumeration driver hands one such token to its workers so a global
  /// stop (result cap, sink refusal) doesn't touch the caller's token and
  /// a caller-side Cancel() still reaches every worker. `parent` is not
  /// owned, may be null, and must outlive this token.
  explicit CancellationToken(const CancellationToken* parent)
      : parent_(parent) {}

  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  /// Requests the enumeration to stop at its next poll point.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// True once Cancel() was called on this token or an ancestor.
  bool IsCancelled() const {
    return cancelled_.load(std::memory_order_relaxed) ||
           (parent_ != nullptr && parent_->IsCancelled());
  }

  /// Re-arms this token for a new run (the parent, if any, is untouched).
  void Reset() { cancelled_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> cancelled_{false};
  const CancellationToken* parent_ = nullptr;
};

/// True iff `token` is non-null and cancelled; the form every backend's
/// poll site uses so a null token costs one branch.
inline bool Cancelled(const CancellationToken* token) {
  return token != nullptr && token->IsCancelled();
}

}  // namespace kbiplex

#endif  // KBIPLEX_UTIL_CANCELLATION_H_
