// Cooperative cancellation for long-running enumerations. The token lives
// low in the dependency graph (util/) so every backend options struct can
// carry a pointer to one without depending on the api/ layer that usually
// hands it out.
#ifndef KBIPLEX_UTIL_CANCELLATION_H_
#define KBIPLEX_UTIL_CANCELLATION_H_

#include <atomic>

namespace kbiplex {

/// A cancellation flag shared between a controller (any thread) and a
/// running enumeration. Backends poll IsCancelled() at the same cadence as
/// their wall-clock deadline and stop with `completed = false` once it is
/// set. Cancel() may be called from a signal handler or another thread;
/// Reset() must not race with a running enumeration.
class CancellationToken {
 public:
  CancellationToken() = default;
  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  /// Requests the enumeration to stop at its next poll point.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// True once Cancel() was called.
  bool IsCancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// Re-arms the token for a new run.
  void Reset() { cancelled_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> cancelled_{false};
};

/// True iff `token` is non-null and cancelled; the form every backend's
/// poll site uses so a null token costs one branch.
inline bool Cancelled(const CancellationToken* token) {
  return token != nullptr && token->IsCancelled();
}

}  // namespace kbiplex

#endif  // KBIPLEX_UTIL_CANCELLATION_H_
