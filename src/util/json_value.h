// A small JSON document model and recursive-descent parser. The wire
// protocol of the serving daemon (serve/) is line-delimited JSON, and the
// library must parse requests without external dependencies; this header
// is the read-side counterpart of the emission helpers in util/json.h.
//
// The parser accepts strict RFC 8259 JSON (no comments, no trailing
// commas) with two deliberate limits that match the NDJSON use case:
// documents nest at most kMaxDepth levels, and numbers are surfaced as
// double (wire requests carry small integers and seconds, both exact in a
// double well past the ranges the protocol uses).
#ifndef KBIPLEX_UTIL_JSON_VALUE_H_
#define KBIPLEX_UTIL_JSON_VALUE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace kbiplex {
namespace json {

/// One parsed JSON value. Object members keep their source order so
/// error messages and re-serialization stay readable.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  using Member = std::pair<std::string, JsonValue>;

  JsonValue() = default;  // null

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; calling the wrong one is a programming error
  /// (callers check type() / the is_*() helpers first).
  bool AsBool() const { return bool_; }
  double AsNumber() const { return number_; }
  const std::string& AsString() const { return string_; }
  const std::vector<JsonValue>& AsArray() const { return array_; }
  const std::vector<Member>& AsObject() const { return object_; }

  /// Member lookup on an object; null when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

  /// Construction helpers used by the parser and by tests.
  static JsonValue Null() { return JsonValue(); }
  static JsonValue MakeBool(bool b);
  static JsonValue MakeNumber(double d);
  static JsonValue MakeString(std::string s);
  static JsonValue MakeArray(std::vector<JsonValue> items);
  static JsonValue MakeObject(std::vector<Member> members);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<Member> object_;
};

/// Outcome of a parse: a value, or a position-annotated error.
struct ParseResult {
  JsonValue value;
  std::string error;  // non-empty iff the parse failed

  bool ok() const { return error.empty(); }
};

/// Parses one complete JSON document from `text`; trailing content other
/// than whitespace is an error (NDJSON framing already split the lines).
ParseResult Parse(const std::string& text);

}  // namespace json
}  // namespace kbiplex

#endif  // KBIPLEX_UTIL_JSON_VALUE_H_
