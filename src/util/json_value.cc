#include "util/json_value.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace kbiplex {
namespace json {
namespace {

/// Nesting limit: wire requests are a couple of levels deep; a hostile
/// client must not be able to overflow the parser's stack.
constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  ParseResult Run() {
    ParseResult out;
    SkipWhitespace();
    if (!ParseValue(&out.value, 0)) {
      out.error = error_;
      return out;
    }
    SkipWhitespace();
    if (pos_ != text_.size()) {
      out.value = JsonValue();
      out.error = Error("trailing content after JSON document");
    }
    return out;
  }

 private:
  bool ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Fail("document nests too deeply");
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"': {
        std::string s;
        if (!ParseString(&s)) return false;
        *out = JsonValue::MakeString(std::move(s));
        return true;
      }
      case 't':
        if (!ConsumeLiteral("true")) return false;
        *out = JsonValue::MakeBool(true);
        return true;
      case 'f':
        if (!ConsumeLiteral("false")) return false;
        *out = JsonValue::MakeBool(false);
        return true;
      case 'n':
        if (!ConsumeLiteral("null")) return false;
        *out = JsonValue::Null();
        return true;
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    std::vector<JsonValue::Member> members;
    SkipWhitespace();
    if (Peek() == '}') {
      ++pos_;
      *out = JsonValue::MakeObject(std::move(members));
      return true;
    }
    while (true) {
      SkipWhitespace();
      if (Peek() != '"') return Fail("expected object key string");
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWhitespace();
      if (Peek() != ':') return Fail("expected ':' after object key");
      ++pos_;
      SkipWhitespace();
      JsonValue value;
      if (!ParseValue(&value, depth + 1)) return false;
      members.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        *out = JsonValue::MakeObject(std::move(members));
        return true;
      }
      return Fail("expected ',' or '}' in object");
    }
  }

  bool ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    std::vector<JsonValue> items;
    SkipWhitespace();
    if (Peek() == ']') {
      ++pos_;
      *out = JsonValue::MakeArray(std::move(items));
      return true;
    }
    while (true) {
      SkipWhitespace();
      JsonValue value;
      if (!ParseValue(&value, depth + 1)) return false;
      items.push_back(std::move(value));
      SkipWhitespace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        *out = JsonValue::MakeArray(std::move(items));
        return true;
      }
      return Fail("expected ',' or ']' in array");
    }
  }

  bool ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        ++pos_;
        continue;
      }
      if (pos_ + 1 >= text_.size()) return Fail("dangling escape in string");
      const char esc = text_[pos_ + 1];
      pos_ += 2;
      switch (esc) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          unsigned code = 0;
          if (!ParseHex4(&code)) return false;
          if (code >= 0xD800 && code <= 0xDBFF) {
            // Surrogate pair: the low half must follow immediately.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return Fail("unpaired UTF-16 surrogate in \\u escape");
            }
            pos_ += 2;
            unsigned low = 0;
            if (!ParseHex4(&low)) return false;
            if (low < 0xDC00 || low > 0xDFFF) {
              return Fail("invalid UTF-16 low surrogate in \\u escape");
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            return Fail("unpaired UTF-16 surrogate in \\u escape");
          }
          AppendUtf8(out, code);
          break;
        }
        default:
          return Fail("unknown escape in string");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseHex4(unsigned* out) {
    if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + i];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return Fail("invalid hex digit in \\u escape");
      }
    }
    pos_ += 4;
    *out = value;
    return true;
  }

  static void AppendUtf8(std::string* out, unsigned code) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (Peek() == '-') ++pos_;
    if (!std::isdigit(static_cast<unsigned char>(Peek()))) {
      return Fail("invalid number");
    }
    // RFC 8259: the integer part is "0" or starts with a nonzero digit —
    // "01" is two tokens, i.e. malformed.
    if (Peek() == '0') {
      ++pos_;
    } else {
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    if (Peek() == '.') {
      ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(Peek()))) {
        return Fail("digit must follow decimal point");
      }
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(Peek()))) {
        return Fail("digit must follow exponent");
      }
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    const std::string token = text_.substr(start, pos_ - start);
    const double value = std::strtod(token.c_str(), nullptr);
    if (!std::isfinite(value)) return Fail("number out of range");
    *out = JsonValue::MakeNumber(value);
    return true;
  }

  bool ConsumeLiteral(const char* literal) {
    for (const char* p = literal; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= text_.size() || text_[pos_] != *p) {
        return Fail(std::string("invalid literal (expected '") + literal +
                    "')");
      }
    }
    return true;
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  /// One-past-the-end reads as '\0' so lookahead never branches on size.
  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  std::string Error(const std::string& message) const {
    char buf[32];
    std::snprintf(buf, sizeof(buf), " at byte %zu", pos_);
    return message + buf;
  }

  bool Fail(const std::string& message) {
    if (error_.empty()) error_ = Error(message);
    return false;
  }

  const std::string& text_;
  size_t pos_ = 0;
  std::string error_;
};

}  // namespace

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const Member& m : object_) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

JsonValue JsonValue::MakeBool(bool b) {
  JsonValue v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::MakeNumber(double d) {
  JsonValue v;
  v.type_ = Type::kNumber;
  v.number_ = d;
  return v;
}

JsonValue JsonValue::MakeString(std::string s) {
  JsonValue v;
  v.type_ = Type::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::MakeArray(std::vector<JsonValue> items) {
  JsonValue v;
  v.type_ = Type::kArray;
  v.array_ = std::move(items);
  return v;
}

JsonValue JsonValue::MakeObject(std::vector<Member> members) {
  JsonValue v;
  v.type_ = Type::kObject;
  v.object_ = std::move(members);
  return v;
}

ParseResult Parse(const std::string& text) { return Parser(text).Run(); }

}  // namespace json
}  // namespace kbiplex
