// Minimal leveled logging for the library. Benchmarks and examples use it
// for progress reporting; the core algorithms never log on hot paths.
#ifndef KBIPLEX_UTIL_LOGGING_H_
#define KBIPLEX_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace kbiplex {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum level that is emitted (default kInfo).
void SetLogLevel(LogLevel level);

/// Current minimum level.
LogLevel GetLogLevel();

namespace internal {

/// Emits one formatted log line to stderr if `level` passes the filter.
void LogMessage(LogLevel level, const std::string& message);

/// Stream-style log statement collector.
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { LogMessage(level_, stream_.str()); }

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define KBIPLEX_LOG(level) \
  ::kbiplex::internal::LogStream(::kbiplex::LogLevel::level)

}  // namespace kbiplex

#endif  // KBIPLEX_UTIL_LOGGING_H_
