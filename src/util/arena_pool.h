// A freelist object pool for hot recursion frames. The traversal engines
// push and pop thousands of frames per second; each frame owns several
// vectors and bitsets, so allocating a fresh frame per recursion step
// churns the allocator. The pool recycles released objects: a recycled
// object keeps its heap buffers (vector capacity, bitset words), so steady
// state recursion allocates nothing.
//
// Objects must provide `void Reset()` restoring logical emptiness while
// keeping capacity (e.g. vector::clear). Acquire() calls it on recycled
// objects; freshly constructed objects are handed out as built.
#ifndef KBIPLEX_UTIL_ARENA_POOL_H_
#define KBIPLEX_UTIL_ARENA_POOL_H_

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

namespace kbiplex {

template <typename T>
class ArenaPool {
 public:
  /// A pooled object, or a fresh default-constructed one when the
  /// freelist is empty. Recycled objects are Reset() before hand-out.
  std::unique_ptr<T> Acquire() {
    if (free_.empty()) {
      ++allocated_;
      return std::make_unique<T>();
    }
    std::unique_ptr<T> obj = std::move(free_.back());
    free_.pop_back();
    ++reused_;
    obj->Reset();
    return obj;
  }

  /// Returns an object to the freelist. Its buffers stay allocated.
  void Release(std::unique_ptr<T> obj) {
    if (obj != nullptr) free_.push_back(std::move(obj));
  }

  /// Objects constructed because the freelist was empty.
  size_t allocated() const { return allocated_; }

  /// Acquire() calls served from the freelist.
  size_t reused() const { return reused_; }

  /// Objects currently parked in the freelist.
  size_t free_size() const { return free_.size(); }

 private:
  std::vector<std::unique_ptr<T>> free_;
  size_t allocated_ = 0;
  size_t reused_ = 0;
};

}  // namespace kbiplex

#endif  // KBIPLEX_UTIL_ARENA_POOL_H_
