// Deterministic pseudo-random number generation used by all generators,
// benchmarks and property tests. We implement xoshiro256** seeded with
// SplitMix64 so results are reproducible across platforms and standard
// library versions (std::mt19937 distributions are not portable).
#ifndef KBIPLEX_UTIL_RANDOM_H_
#define KBIPLEX_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace kbiplex {

/// Deterministic, portable PRNG (xoshiro256**).
class Rng {
 public:
  /// Creates a generator from a 64-bit seed; identical seeds yield identical
  /// streams on every platform.
  explicit Rng(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextBelow(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli trial with probability `p` of returning true.
  bool NextBool(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBelow(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Samples `count` distinct values from [0, universe) in sorted order.
  /// Requires count <= universe.
  std::vector<uint64_t> SampleDistinct(uint64_t universe, size_t count);

 private:
  uint64_t s_[4];
};

}  // namespace kbiplex

#endif  // KBIPLEX_UTIL_RANDOM_H_
