// Work-stealing task scheduler for intra-component parallel traversal.
//
// Each worker owns a deque of tasks: the owner pushes and pops at the
// back (LIFO, preserving DFS locality), idle workers steal from the
// front of a victim's deque (the shallowest, typically largest subtree).
// Tasks may push further tasks while executing — the scheduler counts
// every pushed-but-not-finished task in an atomic, and a run terminates
// exactly when that count reaches zero: a task's count is released only
// *after* its body returned, so a nonzero count means some running task
// may still produce work, and a zero count means no task exists and none
// can appear.
//
// Locking discipline (docs/concurrency.md): every per-worker deque has
// its own leaf Mutex, and the idle protocol uses one further leaf Mutex
// (`idle_mu_`) with a wake-epoch counter. No code path holds two
// scheduler locks at once. The epoch closes the classic lost-wakeup
// race: a worker snapshots the epoch, scans every deque, and sleeps only
// if the epoch is unchanged — any push bumps the epoch *after* making
// the task visible, so a sleeper either saw the task or sees the bump.
#ifndef KBIPLEX_UTIL_WORK_STEALING_H_
#define KBIPLEX_UTIL_WORK_STEALING_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "util/sync.h"
#include "util/thread_annotations.h"

namespace kbiplex {

/// Bounded crew of workers draining per-worker stealable deques. `Task`
/// must be movable and default-constructible. Single-use: seed tasks with
/// Push, then Run once.
template <typename Task>
class WorkStealingScheduler {
 public:
  explicit WorkStealingScheduler(size_t num_workers)
      : num_workers_(num_workers == 0 ? 1 : num_workers),
        deques_(new Deque[num_workers == 0 ? 1 : num_workers]) {}

  WorkStealingScheduler(const WorkStealingScheduler&) = delete;
  WorkStealingScheduler& operator=(const WorkStealingScheduler&) = delete;

  size_t num_workers() const { return num_workers_; }

  /// Enqueues a task on `worker`'s deque (callers outside a task body may
  /// pass any index; seeds conventionally go to worker 0). Safe from
  /// concurrent task bodies: a task pushed from a running body lands on
  /// the executing worker's own deque and is counted before the parent
  /// task finishes, so the outstanding count can never dip to zero while
  /// descendants are pending.
  void Push(size_t worker, Task task) {
    outstanding_.fetch_add(1, std::memory_order_acq_rel);
    {
      Deque& d = deques_[worker % num_workers_];
      MutexLock lock(&d.mu);
      d.items.push_back(std::move(task));
    }
    BumpEpochAndWake();
  }

  /// Requests an early stop: queued tasks are abandoned (never executed)
  /// and workers return as soon as their current body finishes.
  void Stop() {
    stop_.store(true, std::memory_order_release);
    BumpEpochAndWake();
  }

  bool stopped() const { return stop_.load(std::memory_order_acquire); }

  /// Runs `body(worker_index, task)` over every task until the queues
  /// drain (or Stop). Spawns num_workers - 1 threads and participates as
  /// worker 0; returns after every spawned worker joined, so no body is
  /// running once Run returns.
  void Run(const std::function<void(size_t, Task&&)>& body) {
    std::vector<std::thread> threads;
    threads.reserve(num_workers_ - 1);
    for (size_t w = 1; w < num_workers_; ++w) {
      threads.emplace_back([this, &body, w] { WorkerLoop(w, body); });
    }
    WorkerLoop(0, body);
    for (std::thread& t : threads) t.join();
  }

  /// Tasks whose body ran to completion.
  uint64_t executed() const {
    return executed_.load(std::memory_order_relaxed);
  }
  /// Tasks acquired from another worker's deque.
  uint64_t steals() const { return steals_.load(std::memory_order_relaxed); }

 private:
  struct Deque {
    Mutex mu;
    std::deque<Task> items KBIPLEX_GUARDED_BY(mu);
  };

  void BumpEpochAndWake() {
    {
      MutexLock lock(&idle_mu_);
      ++wake_epoch_;
    }
    idle_cv_.NotifyAll();
  }

  /// Own deque back first (depth-first continuation), then steal from the
  /// front of the other deques in ring order starting at w + 1.
  bool TryAcquire(size_t w, Task* out) {
    {
      Deque& d = deques_[w];
      MutexLock lock(&d.mu);
      if (!d.items.empty()) {
        *out = std::move(d.items.back());
        d.items.pop_back();
        return true;
      }
    }
    for (size_t i = 1; i < num_workers_; ++i) {
      Deque& d = deques_[(w + i) % num_workers_];
      MutexLock lock(&d.mu);
      if (!d.items.empty()) {
        *out = std::move(d.items.front());
        d.items.pop_front();
        steals_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
    return false;
  }

  void WorkerLoop(size_t w, const std::function<void(size_t, Task&&)>& body) {
    while (true) {
      if (stop_.load(std::memory_order_acquire)) return;
      uint64_t epoch;
      {
        MutexLock lock(&idle_mu_);
        epoch = wake_epoch_;
      }
      Task task;
      if (TryAcquire(w, &task)) {
        body(w, std::move(task));
        executed_.fetch_add(1, std::memory_order_relaxed);
        // Release the task only now: a body that pushed children already
        // raised the count, so it cannot reach zero while work is hidden
        // inside a running body.
        if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          BumpEpochAndWake();
        }
        continue;
      }
      if (outstanding_.load(std::memory_order_acquire) == 0) {
        // Termination: no queued or running task anywhere. Wake the other
        // idlers so they observe the same state and return.
        BumpEpochAndWake();
        return;
      }
      MutexLock lock(&idle_mu_);
      // Sleep only if nothing changed since the (failed) scan above; any
      // push or final release bumps the epoch after publishing, so an
      // unchanged epoch proves the scan did not race a new task.
      if (wake_epoch_ == epoch && !stop_.load(std::memory_order_relaxed)) {
        idle_cv_.Wait(&idle_mu_);
      }
    }
  }

  const size_t num_workers_;
  // Fixed-size array created at construction; element state is guarded by
  // each Deque's own mu.
  const std::unique_ptr<Deque[]> deques_;
  std::atomic<uint64_t> outstanding_{0};
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> executed_{0};
  std::atomic<uint64_t> steals_{0};
  Mutex idle_mu_;
  uint64_t wake_epoch_ KBIPLEX_GUARDED_BY(idle_mu_) = 0;
  CondVar idle_cv_;
};

}  // namespace kbiplex

#endif  // KBIPLEX_UTIL_WORK_STEALING_H_
