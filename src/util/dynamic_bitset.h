// A compact runtime-sized bitset used for adjacency tests, candidate sets
// and the exclusion sets of the traversal algorithms.
#ifndef KBIPLEX_UTIL_DYNAMIC_BITSET_H_
#define KBIPLEX_UTIL_DYNAMIC_BITSET_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace kbiplex {

/// Runtime-sized bitset with word-parallel set operations.
class DynamicBitset {
 public:
  DynamicBitset() : size_(0) {}

  /// Creates a bitset of `size` bits, all clear.
  explicit DynamicBitset(size_t size);

  /// Number of bits.
  size_t size() const { return size_; }

  /// Resizes to `size` bits; newly added bits are clear.
  void Resize(size_t size);

  /// Sets bit `i`.
  void Set(size_t i) { words_[i >> 6] |= (1ULL << (i & 63)); }

  /// Clears bit `i`.
  void Clear(size_t i) { words_[i >> 6] &= ~(1ULL << (i & 63)); }

  /// Assigns bit `i`.
  void Assign(size_t i, bool value) {
    if (value) {
      Set(i);
    } else {
      Clear(i);
    }
  }

  /// Tests bit `i`.
  bool Test(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }

  /// Clears every bit.
  void Reset();

  /// Sets every bit.
  void SetAll();

  /// Number of set bits.
  size_t Count() const;

  /// True iff no bit is set.
  bool None() const;

  /// True iff every set bit of *this is also set in `other`.
  ///
  /// Set operations below accept operands of any size: `other` behaves as
  /// if zero-extended (or truncated) to this bitset's size, and the result
  /// never carries bits past size(). Callers normally pass identical
  /// sizes; the defined mixed-size semantics exist so a mismatch can never
  /// read or write out of bounds (it used to index other's words by this
  /// bitset's word count unchecked).
  bool IsSubsetOf(const DynamicBitset& other) const;

  /// True iff *this and `other` share at least one set bit.
  bool Intersects(const DynamicBitset& other) const;

  /// In-place union / intersection / difference with `other`
  /// (zero-extended/truncated to size(), see IsSubsetOf).
  DynamicBitset& operator|=(const DynamicBitset& other);
  DynamicBitset& operator&=(const DynamicBitset& other);
  DynamicBitset& operator-=(const DynamicBitset& other);

  friend bool operator==(const DynamicBitset& a, const DynamicBitset& b) {
    return a.size_ == b.size_ && a.words_ == b.words_;
  }

  /// Index of the first set bit at or after `from`, or `size()` if none.
  /// Word-level: skips clear words eight bytes at a time.
  size_t FindNextSet(size_t from) const;

  /// Deprecated alias of FindNextSet.
  size_t FindNext(size_t from) const { return FindNextSet(from); }

  /// Number of bits set in both *this and `other` (popcount of the
  /// intersection, without materializing it; mixed sizes per IsSubsetOf).
  size_t IntersectCount(const DynamicBitset& other) const;

  /// Invokes `fn(size_t index)` for every set bit in ascending order.
  /// Word-level: one countr_zero per set bit, no per-clear-bit work.
  template <typename Fn>
  void ForEachSet(Fn&& fn) const {
    for (size_t wi = 0; wi < words_.size(); ++wi) {
      uint64_t w = words_[wi];
      while (w != 0) {
        const uint64_t bit = w & (~w + 1);  // lowest set bit
        fn((wi << 6) + static_cast<size_t>(std::countr_zero(w)));
        w ^= bit;
      }
    }
  }

  /// Appends the indices of all set bits to `out`.
  void AppendSetBits(std::vector<uint32_t>* out) const;

 private:
  /// Clears any bits of the last word at or past size().
  void TruncateToSize();

  size_t size_;
  std::vector<uint64_t> words_;
};

}  // namespace kbiplex

#endif  // KBIPLEX_UTIL_DYNAMIC_BITSET_H_
