// A compact runtime-sized bitset used for adjacency tests, candidate sets
// and the exclusion sets of the traversal algorithms.
#ifndef KBIPLEX_UTIL_DYNAMIC_BITSET_H_
#define KBIPLEX_UTIL_DYNAMIC_BITSET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace kbiplex {

/// Runtime-sized bitset with word-parallel set operations.
class DynamicBitset {
 public:
  DynamicBitset() : size_(0) {}

  /// Creates a bitset of `size` bits, all clear.
  explicit DynamicBitset(size_t size);

  /// Number of bits.
  size_t size() const { return size_; }

  /// Resizes to `size` bits; newly added bits are clear.
  void Resize(size_t size);

  /// Sets bit `i`.
  void Set(size_t i) { words_[i >> 6] |= (1ULL << (i & 63)); }

  /// Clears bit `i`.
  void Clear(size_t i) { words_[i >> 6] &= ~(1ULL << (i & 63)); }

  /// Assigns bit `i`.
  void Assign(size_t i, bool value) {
    if (value) {
      Set(i);
    } else {
      Clear(i);
    }
  }

  /// Tests bit `i`.
  bool Test(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }

  /// Clears every bit.
  void Reset();

  /// Sets every bit.
  void SetAll();

  /// Number of set bits.
  size_t Count() const;

  /// True iff no bit is set.
  bool None() const;

  /// True iff every set bit of *this is also set in `other`.
  /// Requires identical sizes.
  bool IsSubsetOf(const DynamicBitset& other) const;

  /// True iff *this and `other` share at least one set bit.
  /// Requires identical sizes.
  bool Intersects(const DynamicBitset& other) const;

  /// In-place union / intersection / difference. Require identical sizes.
  DynamicBitset& operator|=(const DynamicBitset& other);
  DynamicBitset& operator&=(const DynamicBitset& other);
  DynamicBitset& operator-=(const DynamicBitset& other);

  friend bool operator==(const DynamicBitset& a, const DynamicBitset& b) {
    return a.size_ == b.size_ && a.words_ == b.words_;
  }

  /// Index of the first set bit at or after `from`, or `size()` if none.
  size_t FindNext(size_t from) const;

  /// Appends the indices of all set bits to `out`.
  void AppendSetBits(std::vector<uint32_t>* out) const;

 private:
  size_t size_;
  std::vector<uint64_t> words_;
};

}  // namespace kbiplex

#endif  // KBIPLEX_UTIL_DYNAMIC_BITSET_H_
