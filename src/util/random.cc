#include "util/random.h"

#include <algorithm>
#include <unordered_set>

namespace kbiplex {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int n) { return (x << n) | (x >> (64 - n)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  while (true) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(
                  NextBelow(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

std::vector<uint64_t> Rng::SampleDistinct(uint64_t universe, size_t count) {
  std::vector<uint64_t> out;
  out.reserve(count);
  if (count * 3 >= universe) {
    // Dense case: reservoir over the whole universe.
    std::vector<uint64_t> all(universe);
    for (uint64_t i = 0; i < universe; ++i) all[i] = i;
    Shuffle(&all);
    out.assign(all.begin(), all.begin() + static_cast<ptrdiff_t>(count));
  } else {
    std::unordered_set<uint64_t> seen;
    while (seen.size() < count) seen.insert(NextBelow(universe));
    out.assign(seen.begin(), seen.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace kbiplex
