// Simple wall-clock timing utilities.
#ifndef KBIPLEX_UTIL_TIMER_H_
#define KBIPLEX_UTIL_TIMER_H_

#include <chrono>

namespace kbiplex {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// A soft deadline: algorithms poll Expired() and stop early when the
/// configured budget has elapsed. A budget of <= 0 means "no limit".
class Deadline {
 public:
  /// Creates a deadline `budget_seconds` from now (<= 0 disables it).
  explicit Deadline(double budget_seconds) : budget_(budget_seconds) {}

  /// True iff a limit is set and it has elapsed.
  bool Expired() const {
    return budget_ > 0 && timer_.ElapsedSeconds() >= budget_;
  }

  double ElapsedSeconds() const { return timer_.ElapsedSeconds(); }

 private:
  double budget_;
  WallTimer timer_;
};

}  // namespace kbiplex

#endif  // KBIPLEX_UTIL_TIMER_H_
