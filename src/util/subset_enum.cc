#include "util/subset_enum.h"

#include <algorithm>

namespace kbiplex {

bool ForEachCombination(
    size_t n, size_t s,
    const std::function<bool(const std::vector<size_t>&)>& fn) {
  if (s > n) return true;
  std::vector<size_t> comb(s);
  for (size_t i = 0; i < s; ++i) comb[i] = i;
  while (true) {
    if (!fn(comb)) return false;
    if (s == 0) return true;
    // Advance to the next lexicographic combination.
    size_t i = s;
    while (i > 0 && comb[i - 1] == n - s + (i - 1)) --i;
    if (i == 0) return true;
    ++comb[i - 1];
    for (size_t j = i; j < s; ++j) comb[j] = comb[j - 1] + 1;
  }
}

BoundedSubsetEnumerator::BoundedSubsetEnumerator(size_t n, size_t max_size)
    : n_(n), max_size_(std::min(max_size, n)), size_(0), started_(false) {}

bool BoundedSubsetEnumerator::AdvanceCombination() {
  if (!started_) {
    started_ = true;
    current_.clear();  // the empty subset, cardinality 0
    return true;
  }
  while (true) {
    // Try to advance within the current cardinality.
    size_t s = size_;
    if (s > 0) {
      size_t i = s;
      while (i > 0 && current_[i - 1] == n_ - s + (i - 1)) --i;
      if (i > 0) {
        ++current_[i - 1];
        for (size_t j = i; j < s; ++j) current_[j] = current_[j - 1] + 1;
        return true;
      }
    }
    // Move to the next cardinality.
    if (size_ >= max_size_) return false;
    ++size_;
    if (size_ > n_) return false;
    current_.resize(size_);
    for (size_t i = 0; i < size_; ++i) current_[i] = i;
    return true;
  }
}

bool BoundedSubsetEnumerator::IsPruned(
    const std::vector<size_t>& subset) const {
  for (const auto& base : pruned_bases_) {
    if (base.size() <= subset.size() &&
        std::includes(subset.begin(), subset.end(), base.begin(),
                      base.end())) {
      return true;
    }
  }
  return false;
}

bool BoundedSubsetEnumerator::Next() {
  while (AdvanceCombination()) {
    if (!IsPruned(current_)) return true;
  }
  return false;
}

void BoundedSubsetEnumerator::PruneSupersetsOfCurrent() {
  pruned_bases_.push_back(current_);
}

}  // namespace kbiplex
