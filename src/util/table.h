// Plain-text table rendering for the benchmark harness: every figure/table
// reproduction prints rows in the same layout the paper reports.
#ifndef KBIPLEX_UTIL_TABLE_H_
#define KBIPLEX_UTIL_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace kbiplex {

/// Accumulates rows of string cells and renders an aligned text table.
class TextTable {
 public:
  /// Creates a table with the given column headers.
  explicit TextTable(std::vector<std::string> headers);

  /// Appends a row; missing cells render empty, extra cells are kept.
  void AddRow(std::vector<std::string> cells);

  /// Renders the table with a header underline to `os`.
  void Print(std::ostream& os) const;

  size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats seconds for table cells: "INF" for negative (timed out),
/// otherwise fixed/scientific depending on magnitude.
std::string FormatSeconds(double seconds);

/// Formats a double with `digits` significant decimals.
std::string FormatDouble(double value, int digits = 3);

}  // namespace kbiplex

#endif  // KBIPLEX_UTIL_TABLE_H_
