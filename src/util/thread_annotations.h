// Clang thread-safety-analysis attribute wrappers. Annotating a member
// with KBIPLEX_GUARDED_BY(mu_) (and functions with KBIPLEX_REQUIRES /
// KBIPLEX_ACQUIRE / ...) turns the repo's locking discipline into
// something `clang -Wthread-safety` verifies at compile time: reading a
// guarded member without its mutex, or releasing a lock on the wrong
// path, becomes a build error in the thread-safety CI job instead of a
// latent race. Off clang (gcc builds this repo too) every macro expands
// to nothing.
//
// The annotations only mean something on the capability types declared
// in util/sync.h (Mutex, SharedMutex, CondVar and their scoped guards);
// raw std::mutex & friends are invisible to the analysis, which is why
// tools/lint/check_concurrency.py bans them outside sync.h.
//
// Conventions (docs/concurrency.md has the full write-up):
//   - every mutex-protected member:        T x_ KBIPLEX_GUARDED_BY(mu_);
//   - every pointee protected by a mutex:  T* p_ KBIPLEX_PT_GUARDED_BY(mu_);
//   - private helpers called under a lock: void F() KBIPLEX_REQUIRES(mu_);
//   - intentionally unguarded members carry a NOLINT(kbiplex-guarded-by)
//     comment naming the reason (lifecycle-owned, internally
//     synchronized, const-after-start).
#ifndef KBIPLEX_UTIL_THREAD_ANNOTATIONS_H_
#define KBIPLEX_UTIL_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define KBIPLEX_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef KBIPLEX_THREAD_ANNOTATION
#define KBIPLEX_THREAD_ANNOTATION(x)  // expands to nothing off clang
#endif

/// Marks a type as a lockable capability ("mutex" in diagnostics).
#define KBIPLEX_CAPABILITY(x) KBIPLEX_THREAD_ANNOTATION(capability(x))

/// Marks a guard type that acquires in its constructor and releases in
/// its destructor (MutexLock, SharedLock, ...).
#define KBIPLEX_SCOPED_CAPABILITY KBIPLEX_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding `x` (shared access
/// suffices for reads when `x` is a SharedMutex).
#define KBIPLEX_GUARDED_BY(x) KBIPLEX_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is protected by `x` (the pointer itself
/// may be read freely).
#define KBIPLEX_PT_GUARDED_BY(x) KBIPLEX_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function that must be called with the listed capabilities held
/// exclusively; they stay held across the call.
#define KBIPLEX_REQUIRES(...) \
  KBIPLEX_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function that must be called with the listed capabilities held at
/// least shared.
#define KBIPLEX_REQUIRES_SHARED(...) \
  KBIPLEX_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function that acquires the listed capabilities exclusively and does
/// not release them before returning.
#define KBIPLEX_ACQUIRE(...) \
  KBIPLEX_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Shared-mode counterpart of KBIPLEX_ACQUIRE.
#define KBIPLEX_ACQUIRE_SHARED(...) \
  KBIPLEX_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// Function that releases capabilities held on entry (exclusive mode).
#define KBIPLEX_RELEASE(...) \
  KBIPLEX_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Shared-mode counterpart of KBIPLEX_RELEASE.
#define KBIPLEX_RELEASE_SHARED(...) \
  KBIPLEX_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// Function that must NOT be called with the listed capabilities held
/// (deadlock prevention: it acquires them itself).
#define KBIPLEX_EXCLUDES(...) \
  KBIPLEX_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Return value: a reference to the capability guarding the class.
#define KBIPLEX_RETURN_CAPABILITY(x) \
  KBIPLEX_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch for code the analysis cannot follow (e.g. adopting a
/// lock held by construction). Use sparingly and justify in a comment.
#define KBIPLEX_NO_THREAD_SAFETY_ANALYSIS \
  KBIPLEX_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // KBIPLEX_UTIL_THREAD_ANNOTATIONS_H_
