#include "baselines/kplex_enum.h"

#include <algorithm>

#include "util/timer.h"

namespace kbiplex {
namespace {

/// Recursive enumerator with incremental connection counters.
class KPlexEnumerator {
 public:
  KPlexEnumerator(const GeneralGraph& g, const KPlexEnumOptions& opts,
                  const KPlexCallback& cb)
      : g_(g),
        opts_(opts),
        cb_(cb),
        p_(static_cast<size_t>(opts.p)),
        deadline_(opts.time_budget_seconds),
        conn_r_(g.NumVertices(), 0) {}

  KPlexEnumStats Run() {
    std::vector<VertexId> p_set;
    std::vector<VertexId> x_set;
    if (opts_.must_contain != kInvalidVertex) {
      AddToR(opts_.must_contain);
      for (VertexId u = 0; u < g_.NumVertices(); ++u) {
        if (u != opts_.must_contain && Addable(u)) p_set.push_back(u);
      }
    } else {
      p_set.resize(g_.NumVertices());
      for (VertexId u = 0; u < g_.NumVertices(); ++u) p_set[u] = u;
    }
    Recurse(p_set, x_set);
    if (stop_) stats_.completed = false;
    return stats_;
  }

 private:
  /// miss(v) within R for a member v: |R| - |Γ(v) ∩ R| (self counts).
  size_t MissInR(VertexId v) const { return r_.size() - conn_r_[v]; }

  /// Can `u` (not in R) join R with the p-plex property preserved?
  bool Addable(VertexId u) const {
    // u's own budget: miss within R ∪ {u} is |R| + 1 - conn_r_[u].
    if (r_.size() + 1 - conn_r_[u] > p_) return false;
    // Saturated members disconnected from u would overflow.
    auto nb = g_.Neighbors(u);
    for (VertexId w : r_) {
      if (MissInR(w) == p_ &&
          !std::binary_search(nb.begin(), nb.end(), w)) {
        return false;
      }
    }
    return true;
  }

  void AddToR(VertexId v) {
    r_.push_back(v);
    for (VertexId w : g_.Neighbors(v)) ++conn_r_[w];
  }

  void RemoveFromR() {
    VertexId v = r_.back();
    r_.pop_back();
    for (VertexId w : g_.Neighbors(v)) --conn_r_[w];
  }

  void Report() {
    if (r_.size() < opts_.min_size) return;
    std::vector<VertexId> sorted = r_;
    std::sort(sorted.begin(), sorted.end());
    ++stats_.solutions;
    if (!cb_(sorted)) stop_ = true;
    if (opts_.max_results != 0 && stats_.solutions >= opts_.max_results) {
      stop_ = true;
    }
  }

  void Recurse(const std::vector<VertexId>& p_set,
               const std::vector<VertexId>& x_set) {
    if (stop_) return;
    if ((++stats_.nodes & 0x3ffu) == 0 &&
        (deadline_.Expired() || Cancelled(opts_.cancel))) {
      stop_ = true;
      return;
    }
    if (p_set.empty()) {
      if (x_set.empty()) Report();
      return;
    }
    if (r_.size() + p_set.size() < opts_.min_size) return;  // size prune
    for (size_t i = 0; i < p_set.size() && !stop_; ++i) {
      const VertexId v = p_set[i];
      AddToR(v);
      std::vector<VertexId> p_next;
      std::vector<VertexId> x_next;
      for (size_t j = i + 1; j < p_set.size(); ++j) {
        if (Addable(p_set[j])) p_next.push_back(p_set[j]);
      }
      for (VertexId x : x_set) {
        if (Addable(x)) x_next.push_back(x);
      }
      // Earlier branches of this loop own the maximal sets containing
      // their vertices; keep them as exclusions.
      for (size_t j = 0; j < i; ++j) {
        if (Addable(p_set[j])) x_next.push_back(p_set[j]);
      }
      Recurse(p_next, x_next);
      RemoveFromR();
    }
  }

  const GeneralGraph& g_;
  const KPlexEnumOptions& opts_;
  const KPlexCallback& cb_;
  const size_t p_;
  Deadline deadline_;
  KPlexEnumStats stats_;
  bool stop_ = false;
  std::vector<VertexId> r_;
  std::vector<uint32_t> conn_r_;
};

}  // namespace

KPlexEnumStats EnumerateMaximalKPlexes(const GeneralGraph& g,
                                       const KPlexEnumOptions& opts,
                                       const KPlexCallback& cb) {
  KPlexEnumerator e(g, opts, cb);
  return e.Run();
}

bool IsKPlex(const GeneralGraph& g, const std::vector<VertexId>& s, int p) {
  for (VertexId v : s) {
    if (s.size() - g.ConnCount(v, s) > static_cast<size_t>(p)) return false;
  }
  return true;
}

bool IsMaximalKPlex(const GeneralGraph& g, const std::vector<VertexId>& s,
                    int p) {
  if (!IsKPlex(g, s, p)) return false;
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    if (std::binary_search(s.begin(), s.end(), u)) continue;
    std::vector<VertexId> t = s;
    sorted::Insert(&t, u);
    if (IsKPlex(g, t, p)) return false;
  }
  return true;
}

}  // namespace kbiplex
