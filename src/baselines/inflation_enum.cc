#include "baselines/inflation_enum.h"

#include <algorithm>
#include <cassert>

#include "baselines/kplex_enum.h"
#include "graph/inflation.h"
#include "util/timer.h"

namespace kbiplex {
namespace {

/// Splits a set of inflated-graph vertices back into a Biplex using the
/// inflation convention, mapping through optional compact-id maps.
Biplex SplitInflatedSet(const InflatedGraph& inflated,
                        const std::vector<VertexId>& set,
                        const std::vector<VertexId>* left_map,
                        const std::vector<VertexId>* right_map) {
  Biplex b;
  for (VertexId x : set) {
    if (inflated.SideOf(x) == Side::kLeft) {
      VertexId id = inflated.BipartiteId(x);
      b.left.push_back(left_map != nullptr ? (*left_map)[id] : id);
    } else {
      VertexId id = inflated.BipartiteId(x);
      b.right.push_back(right_map != nullptr ? (*right_map)[id] : id);
    }
  }
  std::sort(b.left.begin(), b.left.end());
  std::sort(b.right.begin(), b.right.end());
  return b;
}

}  // namespace

bool EnumAlmostSatByInflation(const BipartiteGraph& g, const Biplex& h,
                              Side v_side, VertexId v, KPair k,
                              const LocalSolutionCallback& cb) {
  assert(k.IsUniform());
  // Materialize the almost-satisfying subgraph (A ∪ {v}, B) with compact
  // ids, then inflate it.
  Biplex almost = h;
  sorted::Insert(&almost.MutableSideSet(v_side), v);
  InducedSubgraph sub = Induce(g, almost.left, almost.right);
  InflatedGraph inflated = Inflate(sub.graph);

  // Locate v's compact id within its side.
  const std::vector<VertexId>& v_map =
      v_side == Side::kLeft ? sub.left_map : sub.right_map;
  const auto it = std::lower_bound(v_map.begin(), v_map.end(), v);
  const VertexId v_compact = static_cast<VertexId>(it - v_map.begin());

  KPlexEnumOptions opts;
  opts.p = k.left + 1;
  opts.must_contain = inflated.GeneralId(v_side, v_compact);

  bool keep_going = true;
  EnumerateMaximalKPlexes(
      inflated.graph, opts, [&](const std::vector<VertexId>& set) {
        Biplex loc =
            SplitInflatedSet(inflated, set, &sub.left_map, &sub.right_map);
        keep_going = cb(loc);
        return keep_going;
      });
  return keep_going;
}

InflationBaselineStats InflationEngine::Run(
    const std::function<bool(const Biplex&)>& cb) {
  InflationBaselineStats stats;
  WallTimer timer;
  stats.inflated_edges = InflatedEdgeCount(g_);
  if (opts_.max_inflated_edges != 0 &&
      stats.inflated_edges > opts_.max_inflated_edges) {
    stats.completed = false;
    stats.out_of_budget = true;
    stats.seconds = timer.ElapsedSeconds();
    return stats;
  }
  InflatedGraph inflated = Inflate(g_);
  KPlexEnumOptions kopts;
  kopts.p = opts_.k + 1;
  kopts.max_results = opts_.max_results;
  kopts.time_budget_seconds = opts_.time_budget_seconds;
  kopts.cancel = opts_.cancel;
  KPlexEnumStats ks = EnumerateMaximalKPlexes(
      inflated.graph, kopts, [&](const std::vector<VertexId>& set) {
        Biplex b = SplitInflatedSet(inflated, set, nullptr, nullptr);
        return cb(b);
      });
  stats.solutions = ks.solutions;
  stats.completed = ks.completed;
  stats.seconds = timer.ElapsedSeconds();
  return stats;
}

}  // namespace kbiplex
