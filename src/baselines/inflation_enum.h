// Inflation-based enumeration baselines.
//
// (1) EnumAlmostSatByInflation: the "Inflation" implementation of the
//     EnumAlmostSat procedure compared in Figure 12 — materialize the
//     almost-satisfying subgraph, inflate it, and enumerate the maximal
//     (k+1)-plexes containing v.
// (2) InflationEngine: the FaPlexen-style global baseline — inflate the
//     whole bipartite graph and enumerate all maximal (k+1)-plexes,
//     which correspond one-to-one to maximal k-biplexes.
#ifndef KBIPLEX_BASELINES_INFLATION_ENUM_H_
#define KBIPLEX_BASELINES_INFLATION_ENUM_H_

#include <cstdint>

#include "core/biplex.h"
#include "core/enum_almost_sat.h"
#include "graph/bipartite_graph.h"
#include "util/cancellation.h"

namespace kbiplex {

/// Drop-in replacement for EnumAlmostSat (same contract) implemented by
/// graph inflation + local maximal (k+1)-plex enumeration.
/// Requires uniform budgets (k.left == k.right): the k-biplex/(k+1)-plex
/// correspondence only holds for a single k.
bool EnumAlmostSatByInflation(const BipartiteGraph& g, const Biplex& h,
                              Side v_side, VertexId v, KPair k,
                              const LocalSolutionCallback& cb);
inline bool EnumAlmostSatByInflation(const BipartiteGraph& g,
                                     const Biplex& h, Side v_side,
                                     VertexId v, int k,
                                     const LocalSolutionCallback& cb) {
  return EnumAlmostSatByInflation(g, h, v_side, v, KPair::Uniform(k), cb);
}

/// Options of the global inflation baseline.
struct InflationBaselineOptions {
  int k = 1;
  uint64_t max_results = 0;
  double time_budget_seconds = 0;
  /// Refuse to inflate beyond this many edges, mimicking the paper's OUT
  /// (out-of-memory) outcome for FaPlexen on large graphs. 0 = no guard.
  size_t max_inflated_edges = 0;
  /// Optional cooperative cancellation (polled with the deadline); not
  /// owned, may be null.
  const CancellationToken* cancel = nullptr;
};

/// Outcome of the global inflation baseline.
struct InflationBaselineStats {
  uint64_t solutions = 0;
  bool completed = true;
  /// True iff the run was refused because inflation exceeded
  /// max_inflated_edges (the paper's OUT condition).
  bool out_of_budget = false;
  size_t inflated_edges = 0;
  double seconds = 0;
};

/// Global inflation enumerator. Mirrors TraversalEngine: construct once
/// against a graph, then Run per query (each call is a fresh
/// enumeration). External callers should go through the Enumerator
/// facade (api/enumerator.h, algorithm "inflation").
class InflationEngine {
 public:
  /// `g` must outlive the engine; `opts` is copied (the cancel pointer it
  /// carries must stay valid for every Run).
  InflationEngine(const BipartiteGraph& g,
                  const InflationBaselineOptions& opts)
      : g_(g), opts_(opts) {}

  InflationEngine(const InflationEngine&) = delete;
  InflationEngine& operator=(const InflationEngine&) = delete;

  /// Enumerates maximal k-biplexes of the graph by inflating it and
  /// enumerating maximal (k+1)-plexes; solutions arrive as Biplex values.
  InflationBaselineStats Run(const std::function<bool(const Biplex&)>& cb);

 private:
  const BipartiteGraph& g_;
  InflationBaselineOptions opts_;
};

}  // namespace kbiplex

#endif  // KBIPLEX_BASELINES_INFLATION_ENUM_H_
