// iMB-style baseline: backtracking set-enumeration of maximal k-biplexes
// directly on the bipartite graph (Sim et al. / Yu et al.), with the size
// -constraint pruning that iMB relies on for large-MBP workloads.
//
// The enumerator explores the set-enumeration tree over all vertices (left
// and right) with candidate and exclusion sets; every maximal k-biplex is
// reported exactly once, but — exactly like the published iMB — the delay
// between consecutive outputs is exponential in the worst case, and
// without effective size constraints it does not scale (Figure 7).
#ifndef KBIPLEX_BASELINES_IMB_H_
#define KBIPLEX_BASELINES_IMB_H_

#include <cstdint>
#include <functional>

#include "core/biplex.h"
#include "graph/bipartite_graph.h"
#include "util/cancellation.h"

namespace kbiplex {

/// Options of one iMB run.
struct ImbOptions {
  int k = 1;
  /// Report only MBPs with |L'| >= theta_left and |R'| >= theta_right and
  /// prune branches that cannot reach these sizes (iMB's key pruning).
  size_t theta_left = 0;
  size_t theta_right = 0;
  uint64_t max_results = 0;
  double time_budget_seconds = 0;
  /// Optional cooperative cancellation (polled with the deadline); not
  /// owned, may be null.
  const CancellationToken* cancel = nullptr;
  /// Root-branch shard [root_begin, root_end) of the set-enumeration tree:
  /// the run explores only the top-level branches whose first included
  /// vertex has that rank in the root candidate order (left ids, then
  /// right ids shifted by |L|). Root branches are independent, so a
  /// partition of [0, |L|+|R|) across runs yields exactly the full
  /// solution set with no duplicates. root_end = 0 means "all branches".
  /// This is the sharding hook of the parallel enumeration driver (api/).
  size_t root_begin = 0;
  size_t root_end = 0;
};

/// Work counters.
struct ImbStats {
  uint64_t nodes = 0;
  uint64_t solutions = 0;
  bool completed = true;
  double seconds = 0;
};

/// Receives each maximal k-biplex; return false to stop.
using ImbCallback = std::function<bool(const Biplex&)>;

/// iMB-style enumerator. Mirrors TraversalEngine: construct once against
/// a graph, then Run per query (each call is a fresh enumeration).
/// External callers with k >= 1 should go through the Enumerator facade
/// (api/enumerator.h, algorithm "imb"); the k = 0 biclique reuse in
/// analysis/biclique.cc constructs the engine directly, because the
/// public biplex API requires budgets >= 1.
class ImbEngine {
 public:
  /// `g` must outlive the engine; `opts` is copied (the cancel pointer it
  /// carries must stay valid for every Run).
  ImbEngine(const BipartiteGraph& g, const ImbOptions& opts)
      : g_(g), opts_(opts) {}

  ImbEngine(const ImbEngine&) = delete;
  ImbEngine& operator=(const ImbEngine&) = delete;

  /// Runs the set-enumeration over the configured root-branch shard,
  /// delivering every maximal k-biplex exactly once.
  ImbStats Run(const ImbCallback& cb);

 private:
  const BipartiteGraph& g_;
  ImbOptions opts_;
};

}  // namespace kbiplex

#endif  // KBIPLEX_BASELINES_IMB_H_
