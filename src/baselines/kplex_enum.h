// Maximal k-plex enumeration on general graphs via Bron–Kerbosch-style
// set enumeration. This is the reimplementation of the FaPlexen-style
// baseline: combined with graph inflation it enumerates maximal k-biplexes
// (a k-biplex of a bipartite graph is a (k+1)-plex of its inflation), and
// it also implements the paper's "Inflation" variant of EnumAlmostSat.
//
// A set S is a p-plex iff every v in S has at most p non-neighbors inside
// S counting v itself, i.e. deg_S(v) >= |S| - p. The property is
// hereditary, so the candidate/exclusion-set scheme of Bron–Kerbosch
// enumerates every maximal p-plex exactly once; like the published
// baselines it has exponential delay in the worst case.
#ifndef KBIPLEX_BASELINES_KPLEX_ENUM_H_
#define KBIPLEX_BASELINES_KPLEX_ENUM_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/general_graph.h"
#include "util/cancellation.h"
#include "util/common.h"

namespace kbiplex {

/// Options of one enumeration run.
struct KPlexEnumOptions {
  /// Plex number p (>= 1). p = 1 enumerates maximal cliques.
  int p = 2;
  /// If not kInvalidVertex, enumerate only maximal p-plexes containing
  /// this vertex (used for local-solution enumeration).
  VertexId must_contain = kInvalidVertex;
  /// Report only p-plexes with at least this many vertices, and prune
  /// branches that cannot reach it.
  size_t min_size = 0;
  /// Stop after this many reported sets (0 = all).
  uint64_t max_results = 0;
  /// Wall-clock budget in seconds (0 = unlimited).
  double time_budget_seconds = 0;
  /// Optional cooperative cancellation (polled with the deadline); not
  /// owned, may be null.
  const CancellationToken* cancel = nullptr;
};

/// Work counters.
struct KPlexEnumStats {
  uint64_t nodes = 0;      // recursion-tree nodes
  uint64_t solutions = 0;  // maximal p-plexes reported
  bool completed = true;
};

/// Receives each maximal p-plex as a sorted vertex vector; return false to
/// stop.
using KPlexCallback = std::function<bool(const std::vector<VertexId>&)>;

/// Enumerates maximal p-plexes of `g`.
KPlexEnumStats EnumerateMaximalKPlexes(const GeneralGraph& g,
                                       const KPlexEnumOptions& opts,
                                       const KPlexCallback& cb);

/// True iff `s` (sorted) is a p-plex of `g`.
bool IsKPlex(const GeneralGraph& g, const std::vector<VertexId>& s, int p);

/// True iff `s` is a p-plex and no vertex can be added.
bool IsMaximalKPlex(const GeneralGraph& g, const std::vector<VertexId>& s,
                    int p);

}  // namespace kbiplex

#endif  // KBIPLEX_BASELINES_KPLEX_ENUM_H_
