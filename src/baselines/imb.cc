#include "baselines/imb.h"

#include <algorithm>

#include "util/timer.h"

namespace kbiplex {
namespace {

/// A side-tagged vertex encoded in one integer: left ids stay as-is, right
/// ids are shifted by |L|.
class ImbEnumerator {
 public:
  ImbEnumerator(const BipartiteGraph& g, const ImbOptions& opts,
                const ImbCallback& cb)
      : g_(g),
        opts_(opts),
        cb_(cb),
        deadline_(opts.time_budget_seconds),
        num_left_(static_cast<VertexId>(g.NumLeft())) {}

  ImbStats Run() {
    WallTimer timer;
    std::vector<VertexId> p_set(g_.NumLeft() + g_.NumRight());
    for (size_t i = 0; i < p_set.size(); ++i) {
      p_set[i] = static_cast<VertexId>(i);
    }
    root_begin_ = std::min(opts_.root_begin, p_set.size());
    root_end_ = opts_.root_end == 0 ? p_set.size()
                                    : std::min(opts_.root_end, p_set.size());
    Recurse(p_set, {}, /*root=*/true);
    if (stop_) stats_.completed = false;
    stats_.seconds = timer.ElapsedSeconds();
    return stats_;
  }

 private:
  Side SideOf(VertexId x) const {
    return x < num_left_ ? Side::kLeft : Side::kRight;
  }
  VertexId IdOf(VertexId x) const {
    return x < num_left_ ? x : x - num_left_;
  }

  bool Addable(VertexId x) const {
    return CanAdd(g_, cur_, SideOf(x), IdOf(x), opts_.k);
  }

  void Add(VertexId x) {
    sorted::Insert(&cur_.MutableSideSet(SideOf(x)), IdOf(x));
  }
  void Remove(VertexId x) {
    sorted::Erase(&cur_.MutableSideSet(SideOf(x)), IdOf(x));
  }

  void Report() {
    if (cur_.left.size() < opts_.theta_left ||
        cur_.right.size() < opts_.theta_right) {
      return;
    }
    ++stats_.solutions;
    if (!cb_(cur_)) stop_ = true;
    if (opts_.max_results != 0 && stats_.solutions >= opts_.max_results) {
      stop_ = true;
    }
  }

  void Recurse(const std::vector<VertexId>& p_set,
               const std::vector<VertexId>& x_set, bool root = false) {
    if (stop_) return;
    if ((++stats_.nodes & 0x3ffu) == 0 &&
        (deadline_.Expired() || Cancelled(opts_.cancel))) {
      stop_ = true;
      return;
    }
    if (p_set.empty()) {
      // Root-sharded runs over an empty graph report the empty solution
      // only from the shard that owns branch 0.
      if (x_set.empty() && (!root || root_begin_ == 0)) Report();
      return;
    }
    // iMB size pruning: the current branch can never reach the thresholds.
    if (opts_.theta_left > 0 || opts_.theta_right > 0) {
      size_t cand_left = 0;
      size_t cand_right = 0;
      for (VertexId x : p_set) {
        (SideOf(x) == Side::kLeft ? cand_left : cand_right) += 1;
      }
      if (cur_.left.size() + cand_left < opts_.theta_left ||
          cur_.right.size() + cand_right < opts_.theta_right) {
        return;
      }
    }
    const size_t begin = root ? root_begin_ : 0;
    const size_t end = root ? root_end_ : p_set.size();
    for (size_t i = begin; i < end && !stop_; ++i) {
      const VertexId v = p_set[i];
      Add(v);
      std::vector<VertexId> p_next;
      std::vector<VertexId> x_next;
      for (size_t j = i + 1; j < p_set.size(); ++j) {
        if (Addable(p_set[j])) p_next.push_back(p_set[j]);
      }
      for (VertexId x : x_set) {
        if (Addable(x)) x_next.push_back(x);
      }
      for (size_t j = 0; j < i; ++j) {
        if (Addable(p_set[j])) x_next.push_back(p_set[j]);
      }
      Recurse(p_next, x_next);
      Remove(v);
    }
  }

  const BipartiteGraph& g_;
  const ImbOptions& opts_;
  const ImbCallback& cb_;
  Deadline deadline_;
  const VertexId num_left_;
  ImbStats stats_;
  bool stop_ = false;
  size_t root_begin_ = 0;
  size_t root_end_ = 0;
  Biplex cur_;
};

}  // namespace

ImbStats ImbEngine::Run(const ImbCallback& cb) {
  ImbEnumerator e(g_, opts_, cb);
  return e.Run();
}

}  // namespace kbiplex
