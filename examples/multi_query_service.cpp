// Multi-query serving with the prepare/execute API: load (or synthesize)
// a graph once, prepare it (attached adjacency index + degeneracy
// renumbering + cached component/core artifacts), then answer a batch of
// different queries through one QuerySession — the pattern a k-biplex
// service uses to amortize preprocessing over its query stream.
//
//   ./multi_query_service            (uses a built-in synthetic graph)
//   ./multi_query_service <edge-list-file>
#include <iostream>
#include <string>
#include <vector>

#include "api/prepared_graph.h"
#include "api/query_session.h"
#include "graph/generators.h"
#include "graph/graph_io.h"
#include "util/random.h"

using namespace kbiplex;

int main(int argc, char** argv) {
  BipartiteGraph g;
  if (argc >= 2) {
    LoadResult r = LoadEdgeList(argv[1]);
    if (!r.ok()) {
      std::cerr << "failed to load " << argv[1] << ": " << r.error << "\n";
      return 1;
    }
    g = std::move(*r.graph);
  } else {
    Rng rng(7);
    g = ErdosRenyiBipartite(40, 40, 360, &rng);
  }
  std::cout << "Graph: |L| = " << g.NumLeft() << ", |R| = " << g.NumRight()
            << ", |E| = " << g.NumEdges() << "\n";

  // Prepare once. kForce attaches the hybrid bitset adjacency index
  // unconditionally; renumber = true enumerates on the degeneracy order
  // (cache-friendly) with automatic map-back to input ids.
  PrepareOptions prep;
  prep.adjacency_index = AdjacencyAccelMode::kForce;
  prep.renumber = true;
  auto prepared = PreparedGraph::Prepare(std::move(g), prep);
  prepared->Warmup();  // build all artifacts now instead of on first query
  std::cout << "Prepared: core bound = " << prepared->MaxUniformCore()
            << ", components = " << prepared->Components().num_components
            << ", artifact build time = "
            << prepared->artifact_stats().build_seconds << "s\n\n";

  // Execute many. One session per serving thread; this example serves a
  // small mixed workload sequentially.
  QuerySession session(prepared);
  struct Query {
    std::string label;
    EnumerateRequest request;
  };
  std::vector<Query> queries;
  {
    EnumerateRequest q1;  // all maximal 1-biplexes, capped
    q1.max_results = 50;
    queries.push_back({"first 50 MBPs (k=1)", q1});

    EnumerateRequest q2;  // large MBPs only; dense enumerations are
    q2.algorithm = "large-mbp";       // combinatorial, so cap the run —
    q2.k = KPair::Uniform(2);         // production queries should always
    q2.theta_left = 7;                // carry a budget
    q2.theta_right = 7;
    q2.max_results = 25;
    q2.time_budget_seconds = 5;
    queries.push_back({"first 25 large MBPs (k=2, theta=7)", q2});

    EnumerateRequest q3;  // an impossible threshold: answered from the
    q3.theta_left = 30;   // cached core bound without running a backend
    q3.theta_right = 30;
    queries.push_back({"impossible thresholds (shortcut)", q3});

    EnumerateRequest q4 = q1;  // same query again: scratch is warm now
    queries.push_back({"first 50 MBPs again (warm scratch)", q4});
  }

  for (const Query& q : queries) {
    EnumerateStats stats;
    CountingSink sink;
    stats = session.Run(q.request, &sink);
    if (!stats.ok()) {
      std::cerr << q.label << ": error: " << stats.error << "\n";
      return 1;
    }
    std::cout << q.label << ": " << stats.solutions << " solutions in "
              << stats.seconds << "s (" << stats.algorithm << ")\n";
  }
  std::cout << "\nSession answered " << session.queries_run() << " queries, "
            << session.short_circuits()
            << " of them straight from the cached core bound.\n";
  return 0;
}
