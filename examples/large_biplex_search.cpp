// Large-MBP search: find only the maximal k-biplexes whose sides meet a
// size threshold, using the Section 5 extension with (θ−k)-core
// pre-reduction — without enumerating all MBPs first.
//
//   ./large_biplex_search [theta] [k]
#include <cstdint>
#include <iostream>
#include <string>

#include "api/enumerator.h"
#include "graph/generators.h"
#include "util/random.h"

using namespace kbiplex;

int main(int argc, char** argv) {
  const size_t theta = argc >= 2 ? std::stoul(argv[1]) : 5;
  const int k = argc >= 3 ? std::stoi(argv[2]) : 1;

  // A sparse background graph with two planted dense communities.
  Rng rng(123);
  BipartiteGraph g = ErdosRenyiBipartite(400, 400, 900, &rng);
  g = PlantDenseBlock(g, 8, 9, 0.95, &rng);
  g = PlantDenseBlock(g, 7, 7, 1.0, &rng);

  std::cout << "Graph: |L| = " << g.NumLeft() << ", |R| = " << g.NumRight()
            << ", |E| = " << g.NumEdges() << "\n"
            << "Searching maximal " << k
            << "-biplexes with both sides >= " << theta << "\n\n";

  EnumerateRequest req;
  req.algorithm = "large-mbp";
  req.k = KPair::Uniform(k);
  req.theta_left = theta;
  req.theta_right = theta;
  size_t count = 0;
  Enumerator enumerator(g);
  EnumerateStats stats = enumerator.Run(req, [&](const Biplex& b) {
    ++count;
    if (count <= 10) {
      std::cout << "  #" << count << ": " << b.left.size() << " x "
                << b.right.size() << " (left ids " << b.left.front() << ".."
                << b.left.back() << ")\n";
    }
    return true;
  });
  if (!stats.ok()) {
    std::cerr << "error: " << stats.error << "\n";
    return 1;
  }
  if (count > 10) std::cout << "  ... and " << count - 10 << " more\n";

  std::cout << "\n(θ−k)-core reduction kept " << stats.large_mbp->core_left
            << " + " << stats.large_mbp->core_right << " of "
            << g.NumLeft() + g.NumRight() << " vertices\n"
            << "Large MBPs found: " << count << " in " << stats.seconds
            << " s\n";
  return 0;
}
