// Dataset explorer: load or synthesize a bipartite graph, print structure
// statistics ((α,β)-core sizes, degree profile), and sample its maximal
// k-biplexes with a bounded enumeration.
//
//   ./dataset_explorer                  (synthesizes a power-law graph)
//   ./dataset_explorer <edge-list> [k]
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "api/enumerator.h"
#include "graph/core_decomposition.h"
#include "graph/generators.h"
#include "graph/graph_io.h"
#include "util/random.h"

using namespace kbiplex;

int main(int argc, char** argv) {
  BipartiteGraph g;
  int k = 1;
  if (argc >= 2) {
    LoadResult r = LoadEdgeList(argv[1]);
    if (!r.ok()) {
      std::cerr << "failed to load " << argv[1] << ": " << r.error << "\n";
      return 1;
    }
    g = std::move(*r.graph);
    if (argc >= 3) k = std::stoi(argv[2]);
  } else {
    Rng rng(5);
    g = PowerLawBipartiteAsym(5000, 1200, 16000, 2.8, 2.2, &rng);
  }

  std::cout << "Graph: |L| = " << g.NumLeft() << ", |R| = " << g.NumRight()
            << ", |E| = " << g.NumEdges()
            << ", density = " << g.EdgeDensity() << "\n\n";

  // Degree profile.
  size_t lmax = 0, rmax = 0;
  for (VertexId v = 0; v < g.NumLeft(); ++v) {
    lmax = std::max(lmax, g.LeftDegree(v));
  }
  for (VertexId u = 0; u < g.NumRight(); ++u) {
    rmax = std::max(rmax, g.RightDegree(u));
  }
  std::cout << "Max degree: left " << lmax << ", right " << rmax << "\n";

  // Core profile: how fast does the graph peel away?
  std::cout << "(a,a)-core sizes:\n";
  for (size_t a = 1; a <= 6; ++a) {
    CoreResult core = AlphaBetaCore(g, a, a);
    std::cout << "  a=" << a << ": " << core.left.size() << " + "
              << core.right.size() << " vertices\n";
    if (core.Empty()) break;
  }

  // Sample maximal k-biplexes. For sampling we want solutions as soon as
  // they are discovered, so the polynomial-delay output scheduling is
  // turned off (it defers odd-depth solutions until their DFS subtree
  // completes).
  EnumerateRequest req;
  req.k = KPair::Uniform(k);
  req.max_results = 500;
  req.time_budget_seconds = 5;
  req.backend_options["polynomial_delay_output"] = "false";
  size_t count = 0;
  size_t best_size = 0;
  Biplex best;
  Enumerator enumerator(g);
  EnumerateStats stats = enumerator.Run(req, [&](const Biplex& b) {
    ++count;
    if (b.Size() > best_size) {
      best_size = b.Size();
      best = b;
    }
    return true;
  });
  std::cout << "\nSampled " << count << " maximal " << k << "-biplexes in "
            << stats.seconds << " s"
            << (stats.completed ? " (complete enumeration)" : " (bounded)")
            << "\n";
  if (count > 0) {
    std::cout << "Largest sampled: " << best.left.size() << " x "
              << best.right.size() << " vertices\n";
  }
  return 0;
}
