// Fraud detection on a review graph under a random camouflage attack
// (the Section 6.3 case study as a runnable application).
//
// Builds a synthetic organic user-product review graph, injects a block of
// coordinated fake users/products with camouflage comments, and flags
// suspicious accounts by enumerating large maximal 1-biplexes.
//
//   ./fraud_detection [seed]
#include <cstdint>
#include <iostream>
#include <string>

#include "analysis/fraud.h"
#include "graph/generators.h"
#include "util/random.h"

using namespace kbiplex;

int main(int argc, char** argv) {
  const uint64_t seed = argc >= 2 ? std::stoull(argv[1]) : 7;

  // Organic review data: nearly uniform users, heavy-tailed products.
  Rng rng(seed);
  BipartiteGraph organic =
      PowerLawBipartiteAsym(2000, 150, 2500, 3.0, 2.3, &rng);

  // The attack: 30 coordinated fake users promote 20 fake products and
  // post an equal number of camouflage comments on real products.
  CamouflageAttackConfig attack;
  attack.fake_users = 30;
  attack.fake_products = 20;
  attack.fake_comments = 240;
  attack.camouflage_comments = 120;
  attack.seed = seed + 1;
  FraudDataset data = InjectCamouflageAttack(organic, attack);

  std::cout << "Review graph: " << data.graph.NumLeft() << " users, "
            << data.graph.NumRight() << " products, "
            << data.graph.NumEdges() << " comments\n"
            << "Injected: " << attack.fake_users << " fake users, "
            << attack.fake_products << " fake products (camouflaged)\n\n";

  // Detect: vertices of maximal 1-biplexes with >= 4 users and >= 5
  // products are flagged as suspicious.
  DetectionResult flags = DetectByBiplex(data, /*k=*/1, /*theta_l=*/4,
                                         /*theta_r=*/5);
  BinaryMetrics m = EvaluateDetection(data, flags);

  size_t flagged_users = 0;
  size_t flagged_fake_users = 0;
  for (size_t v = 0; v < flags.user_flagged.size(); ++v) {
    if (!flags.user_flagged[v]) continue;
    ++flagged_users;
    if (data.IsFakeUser(static_cast<VertexId>(v))) ++flagged_fake_users;
  }

  std::cout << "Dense 1-biplex blocks found: " << flags.subgraphs_found
            << "\n"
            << "Flagged users: " << flagged_users << " ("
            << flagged_fake_users << " actually fake)\n\n";
  if (m.defined) {
    std::cout << "Precision: " << m.precision << "\n"
              << "Recall:    " << m.recall << "\n"
              << "F1 score:  " << m.f1 << "\n";
  } else {
    std::cout << "Nothing was flagged (ND).\n";
  }
  return 0;
}
