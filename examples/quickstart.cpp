// Quickstart: build a small bipartite graph, enumerate all maximal
// k-biplexes through the unified Enumerator facade, and inspect the
// normalized statistics.
//
//   ./quickstart            (uses the built-in example graph, k = 1)
//   ./quickstart <edge-list-file> [k] [algorithm]
#include <iostream>
#include <string>

#include "api/enumerator.h"
#include "graph/generators.h"
#include "graph/graph_io.h"

using namespace kbiplex;

namespace {

void PrintBiplex(const Biplex& b) {
  std::cout << "  L = {";
  for (size_t i = 0; i < b.left.size(); ++i) {
    std::cout << (i ? ", " : "") << "v" << b.left[i];
  }
  std::cout << "}  R = {";
  for (size_t i = 0; i < b.right.size(); ++i) {
    std::cout << (i ? ", " : "") << "u" << b.right[i];
  }
  std::cout << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  BipartiteGraph g;
  EnumerateRequest req;  // defaults: algorithm = "itraversal", k = 1
  if (argc >= 2) {
    LoadResult r = LoadEdgeList(argv[1]);
    if (!r.ok()) {
      std::cerr << "failed to load " << argv[1] << ": " << r.error << "\n";
      return 1;
    }
    g = std::move(*r.graph);
    if (argc >= 3) req.k = KPair::Uniform(std::stoi(argv[2]));
    if (argc >= 4) req.algorithm = argv[3];
  } else {
    g = RunningExampleGraph();  // the 5x5 running example of the docs
  }

  std::cout << "Graph: |L| = " << g.NumLeft() << ", |R| = " << g.NumRight()
            << ", |E| = " << g.NumEdges() << ", k = " << req.k.left
            << ", algorithm = " << req.algorithm << "\n\n";

  std::cout << "Maximal " << req.k.left << "-biplexes:\n";
  Enumerator enumerator(g);
  EnumerateStats stats = enumerator.Run(req, [&](const Biplex& b) {
    PrintBiplex(b);
    return true;  // keep enumerating
  });
  if (!stats.ok()) {
    std::cerr << "error: " << stats.error << "\n";
    return 1;
  }

  std::cout << "\nStatistics:\n"
            << "  solutions          : " << stats.solutions << "\n"
            << "  work units         : " << stats.work_units << "\n"
            << "  time               : " << stats.seconds << " s\n";
  if (stats.traversal.has_value()) {
    const TraversalStats& t = *stats.traversal;
    std::cout << "  solution-graph links: " << t.links << "\n"
              << "  links pruned (RS)  : " << t.links_pruned_right_shrinking
              << "\n"
              << "  links pruned (ES)  : " << t.links_pruned_exclusion
              << "\n"
              << "  local solutions    : " << t.local_solutions << "\n";
  }
  std::cout << "\nAs JSON: " << stats.ToJson() << "\n";
  return 0;
}
