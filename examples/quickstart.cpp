// Quickstart: build a small bipartite graph, enumerate all maximal
// k-biplexes with iTraversal, and inspect the traversal statistics.
//
//   ./quickstart            (uses the built-in example graph, k = 1)
//   ./quickstart <edge-list-file> [k]
#include <iostream>
#include <string>

#include "core/btraversal.h"
#include "core/itraversal.h"
#include "graph/generators.h"
#include "graph/graph_io.h"

using namespace kbiplex;

namespace {

void PrintBiplex(const Biplex& b) {
  std::cout << "  L = {";
  for (size_t i = 0; i < b.left.size(); ++i) {
    std::cout << (i ? ", " : "") << "v" << b.left[i];
  }
  std::cout << "}  R = {";
  for (size_t i = 0; i < b.right.size(); ++i) {
    std::cout << (i ? ", " : "") << "u" << b.right[i];
  }
  std::cout << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  BipartiteGraph g;
  int k = 1;
  if (argc >= 2) {
    LoadResult r = LoadEdgeList(argv[1]);
    if (!r.ok()) {
      std::cerr << "failed to load " << argv[1] << ": " << r.error << "\n";
      return 1;
    }
    g = std::move(*r.graph);
    if (argc >= 3) k = std::stoi(argv[2]);
  } else {
    g = RunningExampleGraph();  // the 5x5 running example of the docs
  }

  std::cout << "Graph: |L| = " << g.NumLeft() << ", |R| = " << g.NumRight()
            << ", |E| = " << g.NumEdges() << ", k = " << k << "\n\n";

  // iTraversal with every technique enabled; the engine guarantees
  // polynomial delay between outputs.
  TraversalOptions opts = MakeITraversalOptions(k);
  TraversalEngine engine(g, opts);

  std::cout << "Initial solution H0 = (L0, R):\n";
  PrintBiplex(engine.InitialSolution());
  std::cout << "\nMaximal " << k << "-biplexes:\n";

  TraversalStats stats = engine.Run([&](const Biplex& b) {
    PrintBiplex(b);
    return true;  // keep enumerating
  });

  std::cout << "\nStatistics:\n"
            << "  solutions          : " << stats.solutions_found << "\n"
            << "  solution-graph links: " << stats.links << "\n"
            << "  links pruned (RS)  : "
            << stats.links_pruned_right_shrinking << "\n"
            << "  links pruned (ES)  : " << stats.links_pruned_exclusion
            << "\n"
            << "  local solutions    : " << stats.local_solutions << "\n"
            << "  time               : " << stats.seconds << " s\n";
  return 0;
}
