// kbiplexd — the k-biplex serving daemon. Loads graphs once, keeps their
// prepared artifacts warm, and serves enumeration queries over a
// line-delimited NDJSON protocol on loopback (docs/wire_protocol.md).
//
//   kbiplexd [--port N] [--workers N] [--queue N] [--grace SECONDS]
//            [--accel] [--renumber] [--preload NAME=PATH ...]
//
// Prints "kbiplexd listening on 127.0.0.1:PORT" once ready (with --port 0
// that line is how callers learn the bound port). SIGINT/SIGTERM — or the
// wire "drain" op — trigger a graceful drain: in-flight and queued
// queries finish within the grace period, new ones are rejected with 503,
// then the process exits.

#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "api/request_parse.h"
#include "serve/server.h"

namespace {

int g_signal_pipe[2] = {-1, -1};

void OnShutdownSignal(int) {
  const char byte = 0;
  // Best-effort, async-signal-safe; a full pipe means a wake is already
  // pending.
  (void)!write(g_signal_pipe[1], &byte, 1);
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--port N] [--workers N] [--queue N]\n"
               "          [--grace SECONDS] [--accel] [--renumber]\n"
               "          [--preload NAME=PATH ...]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using kbiplex::serve::Server;
  using kbiplex::serve::ServerOptions;

  ServerOptions options;
  std::vector<std::pair<std::string, std::string>> preloads;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--port" && has_value) {
      int port = 0;
      if (!kbiplex::ParseInt(argv[++i], &port) || port < 0 || port > 65535) {
        std::fprintf(stderr, "kbiplexd: bad --port '%s'\n", argv[i]);
        return 2;
      }
      options.port = static_cast<uint16_t>(port);
    } else if (arg == "--workers" && has_value) {
      if (!kbiplex::ParseSize(argv[++i], &options.workers) ||
          options.workers == 0) {
        std::fprintf(stderr, "kbiplexd: bad --workers '%s'\n", argv[i]);
        return 2;
      }
    } else if (arg == "--queue" && has_value) {
      if (!kbiplex::ParseSize(argv[++i], &options.queue_capacity) ||
          options.queue_capacity == 0) {
        std::fprintf(stderr, "kbiplexd: bad --queue '%s'\n", argv[i]);
        return 2;
      }
    } else if (arg == "--grace" && has_value) {
      if (!kbiplex::ParseDouble(argv[++i], &options.drain_grace_seconds) ||
          options.drain_grace_seconds < 0) {
        std::fprintf(stderr, "kbiplexd: bad --grace '%s'\n", argv[i]);
        return 2;
      }
    } else if (arg == "--accel") {
      options.prepare.adjacency_index = kbiplex::AdjacencyAccelMode::kForce;
    } else if (arg == "--renumber") {
      options.prepare.renumber = true;
    } else if (arg == "--preload" && has_value) {
      const std::string spec = argv[++i];
      const size_t eq = spec.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == spec.size()) {
        std::fprintf(stderr, "kbiplexd: bad --preload '%s' (want NAME=PATH)\n",
                     spec.c_str());
        return 2;
      }
      preloads.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
    } else {
      return Usage(argv[0]);
    }
  }

  Server server(options);
  for (const auto& [name, path] : preloads) {
    const std::string err =
        server.registry().LoadFile(name, path, options.prepare);
    if (!err.empty()) {
      std::fprintf(stderr, "kbiplexd: preload %s: %s\n", name.c_str(),
                   err.c_str());
      return 1;
    }
    std::fprintf(stderr, "kbiplexd: preloaded %s from %s\n", name.c_str(),
                 path.c_str());
  }

  if (pipe(g_signal_pipe) != 0) {
    std::perror("kbiplexd: pipe");
    return 1;
  }
  struct sigaction sa = {};
  sa.sa_handler = OnShutdownSignal;
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);

  const std::string err = server.Start();
  if (!err.empty()) {
    std::fprintf(stderr, "kbiplexd: %s\n", err.c_str());
    return 1;
  }
  std::printf("kbiplexd listening on 127.0.0.1:%u\n",
              static_cast<unsigned>(server.port()));
  std::fflush(stdout);

  // Wait for a shutdown signal — or for a wire-initiated drain, which the
  // server starts on its own; poll the flag so either path exits.
  for (;;) {
    if (server.draining()) break;
    pollfd pfd = {g_signal_pipe[0], POLLIN, 0};
    const int rc = poll(&pfd, 1, 200);
    if (rc > 0 && (pfd.revents & POLLIN)) break;
  }
  std::fprintf(stderr, "kbiplexd: draining\n");
  server.RequestDrain();
  server.Wait();
  std::fprintf(stderr, "kbiplexd: drained, exiting\n");
  return 0;
}
