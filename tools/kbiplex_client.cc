// kbiplex-client — a thin command-line client for kbiplexd.
//
// Passthrough mode (default): reads NDJSON command lines from stdin,
// sends each to the daemon, and prints every response line; after each
// command it waits for the terminal response ("solution" is the only
// non-terminal type) before sending the next, so output is never
// interleaved across commands.
//
//   kbiplex-client --port N [--host H]            < commands.ndjson
//
// Query mode: builds one query from the shared request-flag grammar
// (the same flags `kbiplex batch` lines use) and streams its responses.
//
//   kbiplex-client --port N query GRAPH [request flags...]
//                  [--deadline-ms N] [--count]
//
// Update mode: builds one update command from edge flags and prints its
// terminal response (see docs/wire_protocol.md, "Updates").
//
//   kbiplex-client --port N update GRAPH [--insert L:R]... [--delete L:R]...
//                  [--max-delta-fraction F] [--force-rebuild]
//
// Exit status: 0 when every command ended in a non-error terminal
// response, 1 otherwise.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "api/request_parse.h"
#include "serve/client.h"
#include "util/json_value.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --port N [--host H]                 (stdin NDJSON)\n"
               "       %s --port N query GRAPH [request flags]\n"
               "                  [--deadline-ms N] [--count]\n"
               "       %s --port N update GRAPH [--insert L:R]... "
               "[--delete L:R]...\n"
               "                  [--max-delta-fraction F] [--force-rebuild]\n",
               argv0, argv0, argv0);
  return 2;
}

/// Parses "L:R" into an edge; false on malformed input.
bool ParseEdgeFlag(const std::string& s, uint64_t* l, uint64_t* r) {
  const size_t colon = s.find(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= s.size())
    return false;
  return kbiplex::ParseUint64(s.substr(0, colon), l) &&
         kbiplex::ParseUint64(s.substr(colon + 1), r);
}

enum class Pump { kOk, kError, kFatal };

/// Reads response lines for one command, printing each. kError means the
/// terminal response was an error (the session can continue with the
/// next command); kFatal means the connection died or the server spoke
/// something that is not the protocol.
Pump PumpResponses(kbiplex::serve::LineClient* client) {
  std::string line;
  for (;;) {
    if (!client->ReadLine(&line)) {
      std::fprintf(stderr, "kbiplex-client: connection closed\n");
      return Pump::kFatal;
    }
    std::printf("%s\n", line.c_str());
    const kbiplex::json::ParseResult parsed = kbiplex::json::Parse(line);
    if (!parsed.ok()) return Pump::kFatal;
    const kbiplex::json::JsonValue* type = parsed.value.Find("type");
    if (type == nullptr || !type->is_string()) return Pump::kFatal;
    if (type->AsString() == "solution") continue;
    return type->AsString() == "error" ? Pump::kError : Pump::kOk;
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 0;
  int i = 1;
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--host" && i + 1 < argc) {
      host = argv[++i];
    } else if (arg == "--port" && i + 1 < argc) {
      if (!kbiplex::ParseInt(argv[++i], &port) || port <= 0 || port > 65535) {
        std::fprintf(stderr, "kbiplex-client: bad --port '%s'\n", argv[i]);
        return 2;
      }
    } else {
      break;
    }
  }
  if (port == 0) return Usage(argv[0]);

  std::string query_line;
  if (i < argc && std::string(argv[i]) == "update") {
    if (i + 1 >= argc) return Usage(argv[0]);
    const std::string graph = argv[i + 1];
    std::string inserts, deletes, options;
    for (int t = i + 2; t < argc; ++t) {
      const std::string flag = argv[t];
      if ((flag == "--insert" || flag == "--delete") && t + 1 < argc) {
        uint64_t l = 0, r = 0;
        if (!ParseEdgeFlag(argv[++t], &l, &r)) {
          std::fprintf(stderr, "kbiplex-client: bad %s edge '%s'\n",
                       flag.c_str(), argv[t]);
          return 2;
        }
        std::string& list = flag == "--insert" ? inserts : deletes;
        if (!list.empty()) list += ",";
        list += "[" + std::to_string(l) + "," + std::to_string(r) + "]";
      } else if (flag == "--max-delta-fraction" && t + 1 < argc) {
        double f = 0;
        if (!kbiplex::ParseDouble(argv[++t], &f) || f < 0) {
          std::fprintf(stderr,
                       "kbiplex-client: bad --max-delta-fraction '%s'\n",
                       argv[t]);
          return 2;
        }
        if (!options.empty()) options += ",";
        options += "\"max_delta_fraction\":" + std::string(argv[t]);
      } else if (flag == "--force-rebuild") {
        if (!options.empty()) options += ",";
        options += "\"force_rebuild\":true";
      } else {
        std::fprintf(stderr, "kbiplex-client: unknown flag '%s'\n",
                     flag.c_str());
        return 2;
      }
    }
    std::string line = "{\"op\":\"update\",\"id\":1,\"name\":\"" + graph +
                       "\",\"insert\":[" + inserts + "],\"delete\":[" +
                       deletes + "]";
    if (!options.empty()) line += ",\"options\":{" + options + "}";
    line += "}";
    query_line = std::move(line);
  } else if (i < argc) {
    if (std::string(argv[i]) != "query" || i + 1 >= argc)
      return Usage(argv[0]);
    const std::string graph = argv[i + 1];
    std::vector<std::string> tokens(argv + i + 2, argv + argc);
    kbiplex::EnumerateRequest request;
    uint64_t deadline_ms = 0;
    bool count_only = false;
    for (size_t t = 0; t < tokens.size();) {
      std::string error;
      switch (kbiplex::ParseRequestFlag(tokens, &t, &request, &error)) {
        case kbiplex::RequestFlagParse::kConsumed:
          ++t;  // ParseRequestFlag leaves t on the last consumed token
          continue;
        case kbiplex::RequestFlagParse::kError:
          std::fprintf(stderr, "kbiplex-client: %s\n", error.c_str());
          return 2;
        case kbiplex::RequestFlagParse::kUnknown:
          break;
      }
      if (tokens[t] == "--deadline-ms" && t + 1 < tokens.size()) {
        if (!kbiplex::ParseUint64(tokens[t + 1], &deadline_ms)) {
          std::fprintf(stderr, "kbiplex-client: bad --deadline-ms '%s'\n",
                       tokens[t + 1].c_str());
          return 2;
        }
        t += 2;
      } else if (tokens[t] == "--count") {
        count_only = true;
        ++t;
      } else {
        std::fprintf(stderr, "kbiplex-client: unknown flag '%s'\n",
                     tokens[t].c_str());
        return 2;
      }
    }
    std::string line = "{\"op\":\"query\",\"id\":1,\"graph\":\"" + graph +
                       "\",\"request\":" +
                       kbiplex::RequestToWireJson(request);
    if (deadline_ms > 0)
      line += ",\"deadline_ms\":" + std::to_string(deadline_ms);
    if (count_only) line += ",\"emit\":\"count\"";
    line += "}";
    query_line = std::move(line);
  }

  kbiplex::serve::LineClient client;
  const std::string err = client.Connect(host, static_cast<uint16_t>(port));
  if (!err.empty()) {
    std::fprintf(stderr, "kbiplex-client: %s\n", err.c_str());
    return 1;
  }

  bool all_ok = true;
  if (!query_line.empty()) {
    if (!client.SendLine(query_line) ||
        PumpResponses(&client) != Pump::kOk) {
      all_ok = false;
    }
  } else {
    std::string line;
    while (std::getline(std::cin, line)) {
      if (line.empty()) continue;
      if (!client.SendLine(line)) {
        all_ok = false;
        break;
      }
      const Pump pump = PumpResponses(&client);
      if (pump == Pump::kFatal) {
        all_ok = false;
        break;
      }
      if (pump == Pump::kError) all_ok = false;  // keep pumping commands
    }
  }
  return all_ok ? 0 : 1;
}
