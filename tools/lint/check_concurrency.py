#!/usr/bin/env python3
"""Concurrency lint for the kbiplex tree.

Two rules keep every lock visible to clang's thread-safety analysis
(docs/concurrency.md):

  A. Raw standard synchronization primitives (std::mutex,
     std::shared_mutex, std::condition_variable and their lock RAII
     types) are banned everywhere under src/ and tools/ except inside
     src/util/sync.h, the one file that wraps them into the annotated
     Mutex / SharedMutex / CondVar types.

  B. In any class that declares a Mutex or SharedMutex member, every
     other data member must either carry KBIPLEX_GUARDED_BY /
     KBIPLEX_PT_GUARDED_BY, be exempt by type (const members, statics,
     std::atomic, std::thread, std::once_flag, the sync wrapper types
     themselves), or carry an explicit
        // NOLINT(kbiplex-guarded-by): <reason>
     waiver stating why the member needs no lock.

  C. Every KBIPLEX_GUARDED_BY(x) / KBIPLEX_PT_GUARDED_BY(x) whose
     argument is a plain identifier must name a Mutex or SharedMutex
     value member declared in the same class: an annotation against a
     typoed or deleted lock name still compiles (the macro only feeds
     the analysis) but guards nothing. Non-identifier arguments
     (member paths, expressions) are left to clang.

The member scan is a heuristic (regex + brace matching, not a real C++
parser): it intentionally favors false negatives over false positives, so
an unflagged member is not a proof of safety — clang -Wthread-safety is
the authority; this lint catches the annotation *gaps* that analysis
cannot see (a member nobody annotated is invisible to -Wthread-safety).

Usage:
  tools/lint/check_concurrency.py [--root DIR]   # lint the tree
  tools/lint/check_concurrency.py --self-test    # verify the lint fires
"""

import argparse
import os
import re
import sys

RAW_PRIMITIVE = re.compile(
    r"\bstd::(mutex|shared_mutex|recursive_mutex|timed_mutex|"
    r"recursive_timed_mutex|shared_timed_mutex|condition_variable(_any)?|"
    r"lock_guard|unique_lock|shared_lock|scoped_lock)\b"
)

# A *value* member of an annotated wrapper type ("Mutex mu_;"), not a
# pointer/reference to one ("Mutex* const mu_;" in the RAII helpers).
WRAPPER_MUTEX_MEMBER = re.compile(
    r"(^|\s)(mutable\s+)?(kbiplex::)?(Mutex|SharedMutex)\s+"
    r"([A-Za-z_]\w*)\s*(;|$)"
)

# The argument of a guard annotation, for rule C.
GUARD_ARGUMENT = re.compile(r"\bKBIPLEX_(?:PT_)?GUARDED_BY\s*\(\s*([^)]*?)\s*\)")
IDENTIFIER = re.compile(r"^[A-Za-z_]\w*$")

GUARD_ANNOTATION = re.compile(r"\bKBIPLEX_(PT_)?GUARDED_BY\b")
NOLINT_TOKEN = "KBIPLEX_NOLINT_GUARDED_BY_TOKEN"
NOLINT_COMMENT = re.compile(r"//\s*NOLINT\(kbiplex-guarded-by\)")

# Type-based exemptions: members that synchronize themselves, are
# immutable, or are only touched by their owning thread by construction.
EXEMPT_TYPE = re.compile(
    r"\bconst\b|\bstatic\b|\bconstexpr\b|std::atomic\b|std::thread\b|"
    r"std::once_flag\b|\b(kbiplex::)?(Mutex|SharedMutex|CondVar)\b"
)

# Statements that are not data members at all.
NON_MEMBER = re.compile(
    r"^\s*(using\b|typedef\b|friend\b|enum\b|class\b|struct\b|template\b|"
    r"public:|private:|protected:|#|KBIPLEX_\w+$|$)"
)


def strip_comments(text):
    """Removes // and /* */ comments, preserving line structure.

    A // NOLINT(kbiplex-guarded-by) comment is replaced by a magic token
    so rule B can still see the waiver after stripping.
    """
    out = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch == '"':  # string literal
            j = i + 1
            while j < n and text[j] != '"':
                j += 2 if text[j] == "\\" else 1
            out.append(text[i : j + 1])
            i = j + 1
        elif text.startswith("//", i):
            j = text.find("\n", i)
            if j < 0:
                j = n
            if NOLINT_COMMENT.search(text[i:j]):
                out.append(" " + NOLINT_TOKEN)
            i = j
        elif text.startswith("/*", i):
            j = text.find("*/", i)
            j = n if j < 0 else j + 2
            out.append("\n" * text.count("\n", i, j))  # keep line numbers
            i = j
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def class_bodies(text):
    """Yields (header_line, body_text) for each class/struct definition."""
    for m in re.finditer(r"\b(class|struct)\b[^;{()]*\{", text):
        depth = 1
        i = m.end()
        while i < len(text) and depth > 0:
            if text[i] == "{":
                depth += 1
            elif text[i] == "}":
                depth -= 1
            i += 1
        yield text.count("\n", 0, m.start()) + 1, text[m.end() : i - 1]


def top_level_statements(body):
    """Splits a class body into top-level statements (inline function
    bodies and nested classes collapse into their statement)."""
    statements, depth, start = [], 0, 0
    for i, ch in enumerate(body):
        if ch in "{(":
            depth += 1
        elif ch in "})":
            depth -= 1
        elif ch == ";" and depth == 0:
            statements.append(body[start:i])
            start = i + 1
    return statements


def strip_templates_and_macros(stmt):
    """Drops <...> template arguments and KBIPLEX_*(...) macro calls so a
    leftover '(' reliably means "function declaration"."""
    stmt = re.sub(r"KBIPLEX_\w+\s*\([^()]*\)", " KBIPLEX_STRIPPED", stmt)
    # Balanced angle brackets, innermost-out, few passes suffice here.
    for _ in range(8):
        reduced = re.sub(r"<[^<>]*>", "", stmt)
        if reduced == stmt:
            break
        stmt = reduced
    return stmt


def lint_rule_a(path, text, report):
    if path.replace(os.sep, "/").endswith("src/util/sync.h"):
        return
    for lineno, line in enumerate(text.splitlines(), 1):
        if RAW_PRIMITIVE.search(line):
            report(
                path,
                lineno,
                "raw standard sync primitive; use Mutex/SharedMutex/CondVar "
                "from src/util/sync.h (rule A)",
            )


def lint_rule_b(path, text, report):
    for header_line, body in class_bodies(text):
        statements = [s for s in top_level_statements(body) if s.strip()]
        stripped = [strip_templates_and_macros(s) for s in statements]
        # A statement containing '{' is a nested class or an inline
        # function body — a Mutex inside it belongs to that scope (the
        # nested class gets its own class_bodies pass), not to this one.
        if not any(
            WRAPPER_MUTEX_MEMBER.search(s)
            for s in stripped
            if "{" not in s
        ):
            continue
        offset = 0  # line offset of each statement within the body
        for idx, (raw, stmt) in enumerate(zip(statements, stripped)):
            stmt_line = header_line + body.count("\n", 0, offset + len(raw))
            offset += len(raw) + 1
            # A trailing "// NOLINT..." comment sits after the ';', so its
            # token opens the *next* statement chunk.
            trailer = ""
            if idx + 1 < len(statements):
                trailer = statements[idx + 1].split("\n", 1)[0]
            flat = " ".join(stmt.split())
            # Leading access specifiers glom onto the next statement.
            flat = re.sub(r"^(public:|private:|protected:)\s*", "", flat)
            if NON_MEMBER.match(flat):
                continue
            if "(" in flat:  # function/constructor declaration
                continue
            if not re.search(r"[A-Za-z_]\w*(\[\d*\])?\s*(=[^=].*)?$", flat):
                continue
            if GUARD_ANNOTATION.search(raw):
                continue
            if NOLINT_TOKEN in raw or NOLINT_TOKEN in trailer:
                continue
            # Exemptions match the raw statement: template stripping would
            # hide std::thread in std::vector<std::thread>.
            if EXEMPT_TYPE.search(raw):
                continue
            report(
                path,
                stmt_line,
                "member '%s' of a mutex-bearing class lacks "
                "KBIPLEX_GUARDED_BY / KBIPLEX_PT_GUARDED_BY or a "
                "NOLINT(kbiplex-guarded-by) waiver (rule B)" % flat[:60],
            )


def strip_braced(s):
    """Removes balanced {...} regions (inline method bodies, nested
    classes), leaving only this class's own member declarations."""
    out, depth = [], 0
    for ch in s:
        if ch == "{":
            depth += 1
        elif ch == "}":
            depth = max(0, depth - 1)
        elif depth == 0:
            out.append(ch)
    return "".join(out)


def lint_rule_c(path, text, report):
    for header_line, body in class_bodies(text):
        # Brace-stripping keeps the declarations of *this* class only: a
        # nested class's mutex (or guard annotation) lives inside braces
        # and gets its own class_bodies pass.
        statements = [s for s in top_level_statements(body) if s.strip()]
        stripped = [strip_braced(s) for s in statements]
        declared = {
            m.group(5)
            for s in stripped
            for m in WRAPPER_MUTEX_MEMBER.finditer(s)
        }
        offset = 0
        for raw, flat in zip(statements, stripped):
            stmt_line = header_line + body.count("\n", 0, offset + len(raw))
            offset += len(raw) + 1
            for m in GUARD_ARGUMENT.finditer(flat):
                arg = m.group(1)
                if not IDENTIFIER.match(arg):
                    continue  # member path / expression: out of scope
                if arg not in declared:
                    report(
                        path,
                        stmt_line,
                        "KBIPLEX_GUARDED_BY(%s) names no Mutex/SharedMutex "
                        "member declared in this class (rule C)" % arg,
                    )


def lint_file(path, text, report):
    stripped = strip_comments(text)
    lint_rule_a(path, stripped, report)
    lint_rule_b(path, stripped, report)
    lint_rule_c(path, stripped, report)


def lint_tree(root):
    findings = []

    def report(path, lineno, message):
        findings.append("%s:%d: %s" % (os.path.relpath(path, root), lineno,
                                       message))

    for subdir in ("src", "tools"):
        for dirpath, _, filenames in os.walk(os.path.join(root, subdir)):
            for name in sorted(filenames):
                if not name.endswith((".h", ".cc")):
                    continue
                path = os.path.join(dirpath, name)
                with open(path, encoding="utf-8") as f:
                    lint_file(path, f.read(), report)
    return findings


SELF_TEST_BAD = """
#include <mutex>
class Broken {
 public:
  void Touch();
 private:
  Mutex mu_;
  int unguarded_counter_;
  std::mutex raw_;
};
"""

SELF_TEST_GOOD = """
class Fine {
 private:
  Mutex mu_;
  int counter_ KBIPLEX_GUARDED_BY(mu_) = 0;
  std::atomic<int> hits_{0};
  const int capacity_ = 4;
  WallTimer uptime_;  // NOLINT(kbiplex-guarded-by): immutable start time
  std::vector<std::thread> workers_;
  CondVar cv_;
};
class Raii {
 private:
  Mutex* const mu_;  // pointer member must not trip the Mutex detector
};
"""

SELF_TEST_STALE_GUARD = """
class StaleGuard {
 private:
  Mutex mu_;
  int counter_ KBIPLEX_GUARDED_BY(lock_) = 0;  // no such member
  SolutionSink* sink_ KBIPLEX_PT_GUARDED_BY(mu);  // typo: mu_ declared
};
"""


def self_test():
    failures = []

    def expect(name, text, want_substrings):
        found = []
        lint_file("self_test.h", text, lambda p, l, m: found.append(m))
        for want in want_substrings:
            if not any(want in m for m in found):
                failures.append("%s: expected a finding containing %r, got %r"
                                % (name, want, found))
        if not want_substrings and found:
            failures.append("%s: expected no findings, got %r" % (name, found))

    expect("bad-class", SELF_TEST_BAD,
           ["unguarded_counter_", "raw standard sync primitive"])
    expect("good-class", SELF_TEST_GOOD, [])
    expect("stale-guard", SELF_TEST_STALE_GUARD,
           ["KBIPLEX_GUARDED_BY(lock_) names no",
            "KBIPLEX_GUARDED_BY(mu) names no"])
    if failures:
        print("SELF-TEST FAILED")
        for f in failures:
            print("  " + f)
        return 1
    print("self-test passed: lint fires on unannotated mutex members, raw "
          "primitives, and guard annotations naming undeclared locks; "
          "stays quiet on annotated ones")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=None,
                        help="repo root (default: two dirs above this file)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the lint detects seeded violations")
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    root = args.root or os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    findings = lint_tree(root)
    if findings:
        print("concurrency lint: %d finding(s)" % len(findings))
        for f in findings:
            print("  " + f)
        return 1
    print("concurrency lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
