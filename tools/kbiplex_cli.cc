// kbiplex command-line tool: enumerate maximal k-biplexes of an edge-list
// graph from the shell.
//
//   kbiplex enumerate <edge-list> [--k N] [--kl N --kr N] [--max N]
//                     [--budget SECONDS] [--algo itraversal|btraversal]
//   kbiplex large     <edge-list> --theta-l N --theta-r N [--k N] [...]
//   kbiplex stats     <edge-list>
//
// Solutions print one per line as "l1 l2 .. | r1 r2 ..".
#include <cstdio>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>

#include "core/btraversal.h"
#include "core/large_mbp.h"
#include "graph/core_decomposition.h"
#include "graph/graph_io.h"

using namespace kbiplex;

namespace {

struct CliArgs {
  std::string command;
  std::string path;
  KPair k = KPair::Uniform(1);
  uint64_t max_results = 0;
  double budget = 0;
  size_t theta_l = 0;
  size_t theta_r = 0;
  bool btraversal = false;
  bool quiet = false;  // suppress solution lines, print counts only
};

void PrintUsage() {
  std::cerr
      << "usage:\n"
         "  kbiplex enumerate <edge-list> [--k N | --kl N --kr N] "
         "[--max N] [--budget S] [--algo itraversal|btraversal] [--quiet]\n"
         "  kbiplex large <edge-list> --theta-l N --theta-r N [--k N] "
         "[--max N] [--budget S] [--quiet]\n"
         "  kbiplex stats <edge-list>\n";
}

std::optional<CliArgs> Parse(int argc, char** argv) {
  if (argc < 3) return std::nullopt;
  CliArgs args;
  args.command = argv[1];
  args.path = argv[2];
  for (int i = 3; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> std::optional<std::string> {
      if (i + 1 >= argc) return std::nullopt;
      return std::string(argv[++i]);
    };
    if (flag == "--quiet") {
      args.quiet = true;
    } else if (flag == "--k") {
      auto v = next();
      if (!v) return std::nullopt;
      args.k = KPair::Uniform(std::stoi(*v));
    } else if (flag == "--kl") {
      auto v = next();
      if (!v) return std::nullopt;
      args.k.left = std::stoi(*v);
    } else if (flag == "--kr") {
      auto v = next();
      if (!v) return std::nullopt;
      args.k.right = std::stoi(*v);
    } else if (flag == "--max") {
      auto v = next();
      if (!v) return std::nullopt;
      args.max_results = std::stoull(*v);
    } else if (flag == "--budget") {
      auto v = next();
      if (!v) return std::nullopt;
      args.budget = std::stod(*v);
    } else if (flag == "--theta-l") {
      auto v = next();
      if (!v) return std::nullopt;
      args.theta_l = std::stoul(*v);
    } else if (flag == "--theta-r") {
      auto v = next();
      if (!v) return std::nullopt;
      args.theta_r = std::stoul(*v);
    } else if (flag == "--algo") {
      auto v = next();
      if (!v) return std::nullopt;
      args.btraversal = (*v == "btraversal");
    } else {
      std::cerr << "unknown flag: " << flag << "\n";
      return std::nullopt;
    }
  }
  if (args.k.left < 1 || args.k.right < 1) {
    std::cerr << "budgets must be >= 1\n";
    return std::nullopt;
  }
  return args;
}

void PrintSolution(const Biplex& b) {
  for (size_t i = 0; i < b.left.size(); ++i) {
    std::printf(i ? " %u" : "%u", b.left[i]);
  }
  std::printf(" |");
  for (VertexId u : b.right) std::printf(" %u", u);
  std::printf("\n");
}

int CmdEnumerate(const CliArgs& args, const BipartiteGraph& g) {
  TraversalOptions opts =
      args.btraversal ? MakeBTraversalOptions(1) : MakeITraversalOptions(1);
  opts.k = args.k;
  opts.max_results = args.max_results;
  opts.time_budget_seconds = args.budget;
  uint64_t n = 0;
  TraversalStats stats = RunTraversal(g, opts, [&](const Biplex& b) {
    ++n;
    if (!args.quiet) PrintSolution(b);
    return true;
  });
  std::fprintf(stderr, "# %llu maximal biplexes, %.3fs%s\n",
               static_cast<unsigned long long>(n), stats.seconds,
               stats.completed ? "" : " (stopped early)");
  return 0;
}

int CmdLarge(const CliArgs& args, const BipartiteGraph& g) {
  if (args.theta_l == 0 || args.theta_r == 0) {
    std::cerr << "large requires --theta-l and --theta-r\n";
    return 2;
  }
  LargeMbpOptions opts;
  opts.k = args.k;
  opts.theta_left = args.theta_l;
  opts.theta_right = args.theta_r;
  opts.max_results = args.max_results;
  opts.time_budget_seconds = args.budget;
  uint64_t n = 0;
  LargeMbpStats stats = EnumerateLargeMbps(g, opts, [&](const Biplex& b) {
    ++n;
    if (!args.quiet) PrintSolution(b);
    return true;
  });
  std::fprintf(stderr,
               "# %llu large maximal biplexes, core %zu+%zu of %zu "
               "vertices, %.3fs%s\n",
               static_cast<unsigned long long>(n), stats.core_left,
               stats.core_right, g.NumVertices(), stats.seconds,
               stats.completed ? "" : " (stopped early)");
  return 0;
}

int CmdStats(const BipartiteGraph& g) {
  std::printf("|L| = %zu\n|R| = %zu\n|E| = %zu\ndensity = %.4f\n",
              g.NumLeft(), g.NumRight(), g.NumEdges(), g.EdgeDensity());
  for (size_t a = 1; a <= 8; ++a) {
    CoreResult core = AlphaBetaCore(g, a, a);
    std::printf("(%zu,%zu)-core: %zu + %zu vertices\n", a, a,
                core.left.size(), core.right.size());
    if (core.Empty()) break;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::optional<CliArgs> args = Parse(argc, argv);
  if (!args) {
    PrintUsage();
    return 2;
  }
  LoadResult r = LoadEdgeList(args->path);
  if (!r.ok()) {
    std::cerr << "error: " << r.error << "\n";
    return 1;
  }
  const BipartiteGraph& g = *r.graph;
  if (args->command == "enumerate") return CmdEnumerate(*args, g);
  if (args->command == "large") return CmdLarge(*args, g);
  if (args->command == "stats") return CmdStats(g);
  PrintUsage();
  return 2;
}
