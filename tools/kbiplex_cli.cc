// kbiplex command-line tool: enumerate maximal k-biplexes of an edge-list
// graph from the shell, through the prepare/execute session API.
//
//   kbiplex enumerate <edge-list> [--k N | --kl N --kr N] [--max N]
//                     [--budget SECONDS] [--algo NAME] [--theta-l N]
//                     [--theta-r N] [--threads N] [--opt KEY=VALUE]...
//                     [--format text|json] [--quiet]
//   kbiplex large     <edge-list> --theta-l N --theta-r N [--k N] [...]
//   kbiplex batch     <edge-list> [--queries FILE] [--accel] [--renumber]
//   kbiplex stats     <edge-list>
//   kbiplex algos
//
// --algo accepts every name in the algorithm registry (see `kbiplex
// algos`); --opt passes backend-specific options through. With --format
// json, solutions print as JSON lines and the unified run statistics
// follow as a final JSON object on stdout, ready for scripting.
//
// `batch` is the amortized serving mode: the graph is prepared once
// (optionally with an attached adjacency index and degeneracy
// renumbering), then every line of the query file — request flags in the
// same syntax as `enumerate`, e.g. "--algo itraversal --k 2 --max 100" —
// executes against one QuerySession. Empty lines and lines starting with
// '#' are skipped. Exactly one JSON stats object is printed per query
// line; solutions themselves are not printed. --queries defaults to "-"
// (stdin).
//
// Batch files may also mutate the graph between queries:
//   update +L:R -L:R ... [--max-delta-fraction F] [--force-rebuild]
// applies the edge delta (+ inserts, - deletes) as one batch, publishing
// a new epoch that subsequent query lines run against; one JSON object
// describing the apply is printed per update line.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "api/enumerator.h"
#include "api/prepared_graph.h"
#include "api/query_session.h"
#include "api/request_parse.h"
#include "graph/core_decomposition.h"
#include "graph/graph_io.h"
#include "update/incremental.h"
#include "update/update_batch.h"
#include "util/json.h"

using namespace kbiplex;

namespace {

struct CliArgs {
  std::string command;
  std::string path;
  EnumerateRequest request;
  std::string queries_path = "-";  // batch query source ("-" = stdin)
  bool json = false;
  bool sort = false;    // buffer + emit solutions in canonical order
  bool quiet = false;   // suppress solution lines, print counts only
  bool accel = false;   // attach the hybrid adjacency index at prepare time
  bool renumber = false;  // degeneracy-renumber; ids mapped back on output
  size_t accel_budget = 0;  // index memory budget in bytes (0 = unlimited)
};

void PrintUsage() {
  std::string names;
  for (const std::string& n : AlgorithmRegistry::Global().Names()) {
    if (!names.empty()) names += "|";
    names += n;
  }
  std::cerr << "usage:\n"
               "  kbiplex enumerate <edge-list> [--k N | --kl N --kr N] "
               "[--max N] [--budget S]\n"
               "                    [--algo NAME] [--theta-l N] [--theta-r N] "
               "[--threads N]\n"
               "                    [--opt KEY=VALUE]... [--format text|json] "
               "[--quiet]\n"
               "                    [--sort] [--accel] [--accel-budget B] "
               "[--renumber]\n"
               "  kbiplex large <edge-list> --theta-l N --theta-r N [--k N] "
               "[--max N] [--budget S] [--quiet]\n"
               "  kbiplex batch <edge-list> [--queries FILE|-] [--accel] "
               "[--renumber]\n"
               "  kbiplex stats <edge-list>\n"
               "  kbiplex algos\n"
               "batch reads one query per line (request flags, e.g. \"--algo "
               "imb --k 1 --max 50\"),\n"
               "prepares the graph once, and prints one JSON stats object "
               "per query.\n"
               "batch lines starting with \"update\" mutate the graph: "
               "update +L:R -L:R ...\n"
               "  [--max-delta-fraction F] [--force-rebuild] — later queries "
               "see the new epoch.\n"
               "algorithms: "
            << names << "\n";
}

std::optional<CliArgs> Parse(int argc, char** argv) {
  if (argc < 2) return std::nullopt;
  CliArgs args;
  args.command = argv[1];
  if (args.command == "algos") return args;
  if (argc < 3) return std::nullopt;
  args.path = argv[2];
  std::vector<std::string> tokens(argv + 3, argv + argc);
  for (size_t i = 0; i < tokens.size(); ++i) {
    const std::string& flag = tokens[i];
    std::string error;
    switch (ParseRequestFlag(tokens, &i, &args.request, &error)) {
      case RequestFlagParse::kConsumed:
        continue;
      case RequestFlagParse::kError:
        std::cerr << error << "\n";
        return std::nullopt;
      case RequestFlagParse::kUnknown:
        break;
    }
    auto next = [&]() -> std::optional<std::string> {
      if (i + 1 >= tokens.size()) return std::nullopt;
      return tokens[++i];
    };
    if (flag == "--quiet") {
      args.quiet = true;
    } else if (flag == "--sort") {
      args.sort = true;
    } else if (flag == "--accel") {
      args.accel = true;
    } else if (flag == "--accel-budget") {
      auto v = next();
      if (!v) return std::nullopt;
      try {
        args.accel_budget = static_cast<size_t>(std::stoull(*v));
      } catch (...) {
        std::cerr << "--accel-budget expects a byte count, got: " << *v
                  << "\n";
        return std::nullopt;
      }
    } else if (flag == "--renumber") {
      args.renumber = true;
    } else if (flag == "--queries") {
      auto v = next();
      if (!v) return std::nullopt;
      args.queries_path = *v;
    } else if (flag == "--format") {
      auto v = next();
      if (!v) return std::nullopt;
      if (*v == "json") {
        args.json = true;
      } else if (*v != "text") {
        std::cerr << "unknown format: " << *v << "\n";
        return std::nullopt;
      }
    } else {
      std::cerr << "unknown flag: " << flag << "\n";
      return std::nullopt;
    }
  }
  return args;
}

/// The prepare-time artifact policy of the CLI: no flag leaves the graph
/// exactly as loaded (engines may still build per-run indexes under their
/// own kAuto policy, matching the pre-session CLI byte for byte); --accel
/// attaches the shared index unconditionally; --renumber enumerates on
/// the degeneracy-renumbered graph with automatic map-back. The
/// core-bound short-circuit stays off for the one-shot commands
/// (enumerate/large answer one query — pre-session stats output,
/// including the backend counter blocks, must not change) and on for
/// batch, where the bound amortizes over the query stream.
PrepareOptions PreparePolicy(const CliArgs& args, bool one_shot) {
  PrepareOptions opts;
  opts.adjacency_index =
      args.accel ? AdjacencyAccelMode::kForce : AdjacencyAccelMode::kOff;
  opts.accel_budget_bytes = args.accel_budget;
  opts.renumber = args.renumber;
  opts.core_bound_shortcut = !one_shot;
  return opts;
}

int RunRequest(const CliArgs& args, BipartiteGraph g) {
  const size_t num_vertices = g.NumVertices();
  QuerySession session(PreparedGraph::Prepare(std::move(g),
                                              PreparePolicy(args,
                                                            /*one_shot=*/true)));
  StreamWriterSink writer(&std::cout,
                          args.json ? StreamWriterSink::Format::kJsonLines
                                    : StreamWriterSink::Format::kText);
  CountingSink counter;
  SolutionSink* sink =
      args.quiet ? static_cast<SolutionSink*>(&counter) : &writer;
  // --sort buffers the run and emits in canonical order, making the
  // solution lines byte-identical across --threads values (a parallel
  // run's delivery order is scheduling-dependent; see
  // docs/wire_protocol.md).
  SortingSink sorter(sink);
  const bool sorting = args.sort && !args.quiet;
  if (sorting) sink = &sorter;
  EnumerateStats stats = session.Run(args.request, sink);
  if (sorting) sorter.Flush();
  if (!stats.ok()) {
    std::cerr << "error: " << stats.error << "\n";
    if (args.json) std::cout << stats.ToJson() << "\n";
    return 2;
  }
  if (args.json) {
    std::cout << stats.ToJson() << "\n";
  } else {
    std::fprintf(stderr, "# %s: %llu maximal biplexes, %.3fs%s\n",
                 stats.algorithm.c_str(),
                 static_cast<unsigned long long>(stats.solutions),
                 stats.seconds, stats.completed ? "" : " (stopped early)");
    if (stats.large_mbp.has_value()) {
      std::fprintf(stderr, "# core %zu+%zu of %zu vertices\n",
                   stats.large_mbp->core_left, stats.large_mbp->core_right,
                   num_vertices);
    }
  }
  return 0;
}

int CmdLarge(CliArgs args, BipartiteGraph g) {
  if (args.request.theta_left == 0 || args.request.theta_right == 0) {
    std::cerr << "large requires --theta-l and --theta-r\n";
    return 2;
  }
  args.request.algorithm = "large-mbp";
  return RunRequest(args, std::move(g));
}

/// Parses one batch `update` line (everything after the keyword):
/// "+L:R" inserts, "-L:R" deletes, plus the two option flags. Returns the
/// error message, empty on success.
std::string ParseUpdateLine(const std::string& rest,
                            update::UpdateBatch* batch,
                            update::UpdateOptions* options) {
  std::istringstream is(rest);
  std::string token;
  while (is >> token) {
    if (token == "--force-rebuild") {
      options->force_rebuild = true;
      continue;
    }
    if (token == "--max-delta-fraction") {
      std::string value;
      if (!(is >> value)) return "--max-delta-fraction expects a number";
      try {
        options->max_delta_fraction = std::stod(value);
      } catch (...) {
        return "--max-delta-fraction expects a number, got: " + value;
      }
      if (options->max_delta_fraction < 0) {
        return "--max-delta-fraction must be non-negative";
      }
      continue;
    }
    if (token.size() < 4 || (token[0] != '+' && token[0] != '-')) {
      return "bad update token '" + token + "' (want +L:R or -L:R)";
    }
    const size_t colon = token.find(':', 1);
    if (colon == std::string::npos || colon == 1 ||
        colon + 1 >= token.size()) {
      return "bad update token '" + token + "' (want +L:R or -L:R)";
    }
    VertexId l, r;
    try {
      l = static_cast<VertexId>(std::stoul(token.substr(1, colon - 1)));
      r = static_cast<VertexId>(std::stoul(token.substr(colon + 1)));
    } catch (...) {
      return "bad vertex ids in update token '" + token + "'";
    }
    if (token[0] == '+') {
      batch->Insert(l, r);
    } else {
      batch->Remove(l, r);
    }
  }
  if (batch->empty()) return "update line has no edges";
  return "";
}

int CmdBatch(const CliArgs& args, BipartiteGraph g) {
  std::ifstream file;
  std::istream* in = &std::cin;
  if (args.queries_path != "-") {
    file.open(args.queries_path);
    if (!file) {
      std::cerr << "error: cannot open query file " << args.queries_path
                << "\n";
      return 1;
    }
    in = &file;
  }

  // One prepare, N executes: every artifact (index, renumbering,
  // components, core bounds) and all engine scratch is shared across the
  // whole batch through the session. An `update` line replaces the
  // prepared epoch (copy-on-write) and the session is rebuilt against it;
  // engine scratch is the only thing lost.
  std::shared_ptr<const PreparedGraph> prepared = PreparedGraph::Prepare(
      std::move(g), PreparePolicy(args, /*one_shot=*/false));
  auto session = std::make_unique<QuerySession>(prepared);
  bool all_ok = true;
  std::string line;
  while (std::getline(*in, line)) {
    const size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos || line[start] == '#') continue;
    if (line.compare(start, 6, "update") == 0 &&
        (start + 6 == line.size() || line[start + 6] == ' ' ||
         line[start + 6] == '\t')) {
      update::UpdateBatch batch;
      update::UpdateOptions options;
      std::string err =
          ParseUpdateLine(line.substr(start + 6), &batch, &options);
      update::UpdateResult result;
      if (err.empty()) {
        result = prepared->ApplyUpdates(batch, options);
        err = result.error;
      }
      // Exactly one JSON object per update line, mirroring the per-query
      // stats contract.
      std::ostringstream os;
      if (!err.empty()) {
        os << "{\"update\":\"error\",\"error\":";
        json::AppendEscaped(os, err);
        os << '}';
        all_ok = false;
      } else {
        prepared = result.prepared;
        session = std::make_unique<QuerySession>(prepared);
        os << "{\"update\":\"ok\",\"epoch\":" << prepared->epoch()
           << ",\"inserted\":" << result.edges_inserted
           << ",\"deleted\":" << result.edges_deleted
           << ",\"noop_inserts\":" << result.noop_inserts
           << ",\"noop_deletes\":" << result.noop_deletes
           << ",\"rebuilt\":" << json::Bool(result.rebuilt)
           << ",\"seconds\":";
        json::AppendDouble(os, result.seconds);
        os << '}';
      }
      std::cout << os.str() << "\n";
      continue;
    }
    EnumerateRequest request;
    EnumerateStats stats;
    if (std::string err = ParseRequestLine(line, &request); !err.empty()) {
      stats.error = "bad query line: " + err;
      stats.completed = false;
    } else {
      CountingSink counter;
      stats = session->Run(request, &counter);
    }
    // Exactly one JSON stats object per query line, errors included, so
    // scripted consumers can zip queries with results.
    std::cout << stats.ToJson() << "\n";
    if (!stats.ok()) all_ok = false;
  }
  return all_ok ? 0 : 2;
}

int CmdStats(const BipartiteGraph& g) {
  std::printf("|L| = %zu\n|R| = %zu\n|E| = %zu\ndensity = %.4f\n",
              g.NumLeft(), g.NumRight(), g.NumEdges(), g.EdgeDensity());
  for (size_t a = 1; a <= 8; ++a) {
    CoreResult core = AlphaBetaCore(g, a, a);
    std::printf("(%zu,%zu)-core: %zu + %zu vertices\n", a, a,
                core.left.size(), core.right.size());
    if (core.Empty()) break;
  }
  return 0;
}

int CmdAlgos() {
  for (const AlgorithmInfo& info : AlgorithmRegistry::Global().List()) {
    std::printf("%-18s %s", info.name.c_str(), info.summary.c_str());
    if (!info.supports_asymmetric_k) std::printf(" [uniform k]");
    if (info.requires_theta) std::printf(" [requires theta]");
    if (info.max_side != 0) {
      std::printf(" [sides <= %zu]", info.max_side);
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::optional<CliArgs> args = Parse(argc, argv);
  if (!args) {
    PrintUsage();
    return 2;
  }
  if (args->command == "algos") return CmdAlgos();
  LoadResult r = LoadEdgeList(args->path);
  if (!r.ok()) {
    std::cerr << "error: " << r.error << "\n";
    return 1;
  }
  BipartiteGraph& g = *r.graph;
  if (args->command == "enumerate") return RunRequest(*args, std::move(g));
  if (args->command == "large") return CmdLarge(*args, std::move(g));
  if (args->command == "batch") return CmdBatch(*args, std::move(g));
  if (args->command == "stats") return CmdStats(g);
  PrintUsage();
  return 2;
}
