// kbiplex command-line tool: enumerate maximal k-biplexes of an edge-list
// graph from the shell, through the unified Enumerator facade.
//
//   kbiplex enumerate <edge-list> [--k N | --kl N --kr N] [--max N]
//                     [--budget SECONDS] [--algo NAME] [--theta-l N]
//                     [--theta-r N] [--threads N] [--opt KEY=VALUE]...
//                     [--format text|json] [--quiet]
//   kbiplex large     <edge-list> --theta-l N --theta-r N [--k N] [...]
//   kbiplex stats     <edge-list>
//   kbiplex algos
//
// --algo accepts every name in the algorithm registry (see `kbiplex
// algos`); --opt passes backend-specific options through. With --format
// json, solutions print as JSON lines and the unified run statistics
// follow as a final JSON object on stdout, ready for scripting.
#include <cctype>
#include <cerrno>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>

#include "api/enumerator.h"
#include "graph/core_decomposition.h"
#include "graph/graph_io.h"
#include "graph/renumber.h"

using namespace kbiplex;

namespace {

struct CliArgs {
  std::string command;
  std::string path;
  EnumerateRequest request;
  bool json = false;
  bool quiet = false;   // suppress solution lines, print counts only
  bool accel = false;   // attach the hybrid adjacency index before running
  bool renumber = false;  // degeneracy-renumber; ids mapped back on output
};

void PrintUsage() {
  std::string names;
  for (const std::string& n : AlgorithmRegistry::Global().Names()) {
    if (!names.empty()) names += "|";
    names += n;
  }
  std::cerr << "usage:\n"
               "  kbiplex enumerate <edge-list> [--k N | --kl N --kr N] "
               "[--max N] [--budget S]\n"
               "                    [--algo NAME] [--theta-l N] [--theta-r N] "
               "[--threads N]\n"
               "                    [--opt KEY=VALUE]... [--format text|json] "
               "[--quiet]\n"
               "                    [--accel] [--renumber]\n"
               "  kbiplex large <edge-list> --theta-l N --theta-r N [--k N] "
               "[--max N] [--budget S] [--quiet]\n"
               "  kbiplex stats <edge-list>\n"
               "  kbiplex algos\n"
               "algorithms: "
            << names << "\n";
}

std::optional<CliArgs> Parse(int argc, char** argv) {
  if (argc < 2) return std::nullopt;
  CliArgs args;
  args.command = argv[1];
  if (args.command == "algos") return args;
  if (argc < 3) return std::nullopt;
  args.path = argv[2];
  for (int i = 3; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> std::optional<std::string> {
      if (i + 1 >= argc) return std::nullopt;
      return std::string(argv[++i]);
    };
    // Parses the next argument into *out with strict full-token numeric
    // parsing: trailing garbage ("5x"), a lone "-", and negative values
    // for unsigned flags are usage errors, not silently-truncated or
    // wrapped values (std::stoull("-1") would "succeed" as 2^64 - 1, and
    // std::stoi("12x") as 12).
    auto next_parsed = [&](auto parse, auto* out) -> bool {
      auto v = next();
      bool ok = v.has_value() && parse(*v, out);
      if (!ok && v.has_value()) {
        std::cerr << "invalid value for " << flag << ": '" << *v << "'\n";
      } else if (!v.has_value()) {
        std::cerr << flag << " requires a value\n";
      }
      return ok;
    };
    auto to_int = [](const std::string& s, int* out) {
      const char* end = s.data() + s.size();
      auto [ptr, ec] = std::from_chars(s.data(), end, *out);
      return ec == std::errc() && ptr == end;
    };
    auto to_uint64 = [](const std::string& s, uint64_t* out) {
      const char* end = s.data() + s.size();
      auto [ptr, ec] = std::from_chars(s.data(), end, *out);
      return ec == std::errc() && ptr == end;
    };
    auto to_size = [&to_uint64](const std::string& s, size_t* out) {
      uint64_t v = 0;
      if (!to_uint64(s, &v)) return false;
      *out = static_cast<size_t>(v);
      return true;
    };
    // strtod instead of std::from_chars: the floating-point from_chars
    // overloads are still missing from some standard libraries (libc++).
    // strtod alone is too permissive ("inf", "nan", hex floats, leading
    // whitespace/'+' all parse), so the token shape is checked first:
    // plain decimal with an optional exponent only.
    auto to_double = [](const std::string& s, double* out) {
      if (s.empty()) return false;
      const char c0 = s[0];
      if (c0 != '-' && c0 != '.' && !(c0 >= '0' && c0 <= '9')) return false;
      for (char c : s) {
        if (std::isalpha(static_cast<unsigned char>(c)) && c != 'e' &&
            c != 'E') {
          return false;
        }
      }
      errno = 0;
      char* end = nullptr;
      const double value = std::strtod(s.c_str(), &end);
      if (end != s.c_str() + s.size() || errno == ERANGE) return false;
      *out = value;
      return true;
    };
    if (flag == "--quiet") {
      args.quiet = true;
    } else if (flag == "--accel") {
      args.accel = true;
    } else if (flag == "--renumber") {
      args.renumber = true;
    } else if (flag == "--k") {
      int k = 0;
      if (!next_parsed(to_int, &k)) return std::nullopt;
      args.request.k = KPair::Uniform(k);
    } else if (flag == "--kl") {
      if (!next_parsed(to_int, &args.request.k.left)) return std::nullopt;
    } else if (flag == "--kr") {
      if (!next_parsed(to_int, &args.request.k.right)) return std::nullopt;
    } else if (flag == "--max") {
      if (!next_parsed(to_uint64, &args.request.max_results)) {
        return std::nullopt;
      }
    } else if (flag == "--budget") {
      if (!next_parsed(to_double, &args.request.time_budget_seconds)) {
        return std::nullopt;
      }
    } else if (flag == "--theta-l") {
      if (!next_parsed(to_size, &args.request.theta_left)) {
        return std::nullopt;
      }
    } else if (flag == "--theta-r") {
      if (!next_parsed(to_size, &args.request.theta_right)) {
        return std::nullopt;
      }
    } else if (flag == "--threads") {
      if (!next_parsed(to_int, &args.request.threads)) return std::nullopt;
      if (args.request.threads < 0) {
        std::cerr << "--threads must be >= 0 (0 = one per hardware "
                     "thread)\n";
        return std::nullopt;
      }
    } else if (flag == "--algo") {
      auto v = next();
      if (!v) return std::nullopt;
      args.request.algorithm = *v;
    } else if (flag == "--opt") {
      auto v = next();
      if (!v) return std::nullopt;
      const size_t eq = v->find('=');
      if (eq == std::string::npos || eq == 0) {
        std::cerr << "--opt expects KEY=VALUE, got: '" << *v << "'\n";
        return std::nullopt;
      }
      args.request.backend_options[v->substr(0, eq)] = v->substr(eq + 1);
    } else if (flag == "--format") {
      auto v = next();
      if (!v) return std::nullopt;
      if (*v == "json") {
        args.json = true;
      } else if (*v != "text") {
        std::cerr << "unknown format: " << *v << "\n";
        return std::nullopt;
      }
    } else {
      std::cerr << "unknown flag: " << flag << "\n";
      return std::nullopt;
    }
  }
  return args;
}

int RunRequest(const CliArgs& args, const BipartiteGraph& g) {
  // Optional degeneracy renumbering: enumerate on the permuted graph for
  // cache locality, mapping every solution back to the input ids. The
  // solution set is identical; only the delivery order may differ.
  RenumberedGraph renum;
  if (args.renumber) renum = RenumberByDegeneracy(g);
  const BipartiteGraph& run_graph = args.renumber ? renum.graph : g;
  Enumerator enumerator(run_graph);
  StreamWriterSink writer(&std::cout,
                          args.json ? StreamWriterSink::Format::kJsonLines
                                    : StreamWriterSink::Format::kText);
  CountingSink counter;
  SolutionSink* sink =
      args.quiet ? static_cast<SolutionSink*>(&counter) : &writer;
  CallbackSink mapper([&](const Biplex& b) {
    VertexSetPair mapped = renum.MapBack(b.left, b.right);
    Biplex original{std::move(mapped.left), std::move(mapped.right)};
    return sink->Accept(original);
  });
  EnumerateStats stats = enumerator.Run(
      args.request, args.renumber ? static_cast<SolutionSink*>(&mapper)
                                  : sink);
  if (!stats.ok()) {
    std::cerr << "error: " << stats.error << "\n";
    if (args.json) std::cout << stats.ToJson() << "\n";
    return 2;
  }
  if (args.json) {
    std::cout << stats.ToJson() << "\n";
  } else {
    std::fprintf(stderr, "# %s: %llu maximal biplexes, %.3fs%s\n",
                 stats.algorithm.c_str(),
                 static_cast<unsigned long long>(stats.solutions),
                 stats.seconds, stats.completed ? "" : " (stopped early)");
    if (stats.large_mbp.has_value()) {
      std::fprintf(stderr, "# core %zu+%zu of %zu vertices\n",
                   stats.large_mbp->core_left, stats.large_mbp->core_right,
                   g.NumVertices());
    }
  }
  return 0;
}

int CmdLarge(CliArgs args, const BipartiteGraph& g) {
  if (args.request.theta_left == 0 || args.request.theta_right == 0) {
    std::cerr << "large requires --theta-l and --theta-r\n";
    return 2;
  }
  args.request.algorithm = "large-mbp";
  return RunRequest(args, g);
}

int CmdStats(const BipartiteGraph& g) {
  std::printf("|L| = %zu\n|R| = %zu\n|E| = %zu\ndensity = %.4f\n",
              g.NumLeft(), g.NumRight(), g.NumEdges(), g.EdgeDensity());
  for (size_t a = 1; a <= 8; ++a) {
    CoreResult core = AlphaBetaCore(g, a, a);
    std::printf("(%zu,%zu)-core: %zu + %zu vertices\n", a, a,
                core.left.size(), core.right.size());
    if (core.Empty()) break;
  }
  return 0;
}

int CmdAlgos() {
  for (const AlgorithmInfo& info : AlgorithmRegistry::Global().List()) {
    std::printf("%-18s %s", info.name.c_str(), info.summary.c_str());
    if (!info.supports_asymmetric_k) std::printf(" [uniform k]");
    if (info.requires_theta) std::printf(" [requires theta]");
    if (info.max_side != 0) {
      std::printf(" [sides <= %zu]", info.max_side);
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::optional<CliArgs> args = Parse(argc, argv);
  if (!args) {
    PrintUsage();
    return 2;
  }
  if (args->command == "algos") return CmdAlgos();
  LoadResult r = LoadEdgeList(args->path);
  if (!r.ok()) {
    std::cerr << "error: " << r.error << "\n";
    return 1;
  }
  BipartiteGraph& g = *r.graph;
  if (args->accel) g.BuildAdjacencyIndex();
  if (args->command == "enumerate") return RunRequest(*args, g);
  if (args->command == "large") return CmdLarge(*args, g);
  if (args->command == "stats") return CmdStats(g);
  PrintUsage();
  return 2;
}
