// Figure 8: delay (maximum wait between consecutive outputs, including
// start-up and termination) of the four algorithms.
//   (a) small datasets at k = 1,
//   (b) varying k on the Divorce stand-in.
// The paper measures delay over complete enumerations within a 24h limit;
// to keep this harness laptop-fast we measure the observed maximum delay
// over a budgeted prefix of the enumeration (first 50k outputs or the time
// budget) and mark entries produced by a partial run with '*'. Entries
// with no output inside the budget print INF.
#include <iostream>
#include <string>

#include "baselines/imb.h"
#include "baselines/inflation_enum.h"
#include "bench_common.h"
#include "core/btraversal.h"
#include "core/delay_tracker.h"
#include "util/table.h"

using namespace kbiplex;
using namespace kbiplex::bench;

namespace {

constexpr uint64_t kMaxOutputs = 50'000;

std::string DelayCell(const DelayTracker& d, bool completed) {
  if (d.outputs() == 0) return "INF";
  std::string s = FormatSeconds(d.MaxDelaySeconds());
  if (!completed) s += "*";
  return s;
}

std::string MeasureImb(const BipartiteGraph& g, int k, double budget) {
  ImbOptions opts;
  opts.k = k;
  opts.time_budget_seconds = budget;
  opts.max_results = kMaxOutputs;
  DelayTracker d;
  d.Start();
  ImbStats stats = RunImb(g, opts, [&](const Biplex&) {
    d.RecordOutput();
    return true;
  });
  if (stats.completed) d.Finish();
  return DelayCell(d, stats.completed);
}

std::string MeasureFaPlexen(const BipartiteGraph& g, int k, double budget) {
  InflationBaselineOptions opts;
  opts.k = k;
  opts.time_budget_seconds = budget;
  opts.max_results = kMaxOutputs;
  DelayTracker d;
  d.Start();
  auto stats = RunInflationBaseline(g, opts, [&](const Biplex&) {
    d.RecordOutput();
    return true;
  });
  if (stats.completed) d.Finish();
  return DelayCell(d, stats.completed);
}

std::string MeasureEngine(const BipartiteGraph& g, TraversalOptions opts,
                          double budget) {
  opts.time_budget_seconds = budget;
  opts.max_results = kMaxOutputs;
  DelayTracker d;
  d.Start();
  TraversalStats stats = RunTraversal(g, opts, [&](const Biplex&) {
    d.RecordOutput();
    return true;
  });
  if (stats.completed) d.Finish();
  return DelayCell(d, stats.completed);
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = QuickMode(argc, argv);
  const double budget = quick ? 3.0 : 60.0;

  std::cout << "== Figure 8(a): delay on small datasets (k=1) ==\n";
  TextTable ta({"Dataset", "iMB", "FaPlexen", "bTraversal", "iTraversal"});
  for (const DatasetSpec& spec : SmallDatasets()) {
    BipartiteGraph g = MakeDataset(spec);
    ta.AddRow({spec.name, MeasureImb(g, 1, budget),
               MeasureFaPlexen(g, 1, budget),
               MeasureEngine(g, MakeBTraversalOptions(1), budget),
               MeasureEngine(g, MakeITraversalOptions(1), budget)});
  }
  ta.Print(std::cout);

  std::cout << "\n== Figure 8(b): delay vs k (Divorce stand-in) ==\n";
  BipartiteGraph divorce = MakeDataset(FindDataset("Divorce"));
  TextTable tk({"k", "iMB", "FaPlexen", "bTraversal", "iTraversal"});
  const int kmax = quick ? 3 : 4;
  for (int k = 1; k <= kmax; ++k) {
    tk.AddRow({std::to_string(k), MeasureImb(divorce, k, budget),
               MeasureFaPlexen(divorce, k, budget),
               MeasureEngine(divorce, MakeBTraversalOptions(k), budget),
               MeasureEngine(divorce, MakeITraversalOptions(k), budget)});
  }
  tk.Print(std::cout);

  std::cout << "\n(delay = max gap between consecutive outputs; *: "
               "measured over a partial run ("
            << budget << "s / " << kMaxOutputs
            << " outputs); INF: no output inside the budget)\n";
  return 0;
}
