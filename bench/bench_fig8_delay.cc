// Figure 8: delay (maximum wait between consecutive outputs, including
// start-up and termination) of the four algorithms.
//   (a) small datasets at k = 1,
//   (b) varying k on the Divorce stand-in.
// The paper measures delay over complete enumerations within a 24h limit;
// to keep this harness laptop-fast we measure the observed maximum delay
// over a budgeted prefix of the enumeration (first 50k outputs or the time
// budget) and mark entries produced by a partial run with '*'. Entries
// with no output inside the budget print INF. Every algorithm runs through
// the unified Enumerator facade, selected by registry name.
#include <iostream>
#include <string>

#include "bench_common.h"
#include "core/delay_tracker.h"
#include "util/table.h"

using namespace kbiplex;
using namespace kbiplex::bench;

namespace {

constexpr uint64_t kMaxOutputs = 50'000;

std::string DelayCell(const DelayTracker& d, bool completed) {
  if (d.outputs() == 0) return "INF";
  std::string s = FormatSeconds(d.MaxDelaySeconds());
  if (!completed) s += "*";
  return s;
}

std::string Measure(BenchJsonWriter* writer, const std::string& row,
                    const std::string& dataset, const BipartiteGraph& g,
                    const std::string& algo, int k, double budget) {
  EnumerateRequest req = MakeRequest(algo, k, kMaxOutputs, budget);
  DelayTracker d;
  d.Start();
  CallbackSink sink([&](const Biplex&) {
    d.RecordOutput();
    return true;
  });
  EnumerateStats stats = Enumerator(g).Run(req, &sink);
  if (stats.completed) d.Finish();
  BenchJsonWriter::Record r;
  r.name = row + "/" + algo;
  r.dataset = dataset;
  r.algorithm = stats.algorithm;
  r.k_left = r.k_right = k;
  r.wall_seconds = stats.seconds;
  r.solutions = stats.solutions;
  r.work_units = stats.work_units;
  r.completed = stats.completed;
  if (d.outputs() != 0) {
    r.counters.emplace_back("max_delay_seconds", d.MaxDelaySeconds());
  }
  writer->Add(std::move(r));
  return DelayCell(d, stats.completed);
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = QuickMode(argc, argv);
  const double budget = quick ? 3.0 : 60.0;
  BenchJsonWriter writer("fig8_delay");

  std::cout << "== Figure 8(a): delay on small datasets (k=1) ==\n";
  TextTable ta({"Dataset", "iMB", "FaPlexen", "bTraversal", "iTraversal"});
  for (const DatasetSpec& spec : SmallDatasets()) {
    BipartiteGraph g = MakeDataset(spec);
    auto cell = [&](const std::string& algo) {
      return Measure(&writer, "a/k=1", spec.name, g, algo, 1, budget);
    };
    ta.AddRow({spec.name, cell("imb"), cell("inflation"),
               cell("btraversal"), cell("itraversal")});
  }
  ta.Print(std::cout);

  std::cout << "\n== Figure 8(b): delay vs k (Divorce stand-in) ==\n";
  BipartiteGraph divorce = MakeDataset(FindDataset("Divorce"));
  TextTable tk({"k", "iMB", "FaPlexen", "bTraversal", "iTraversal"});
  const int kmax = quick ? 3 : 4;
  for (int k = 1; k <= kmax; ++k) {
    const std::string row = "b/k=" + std::to_string(k);
    auto cell = [&](const std::string& algo) {
      return Measure(&writer, row, "Divorce", divorce, algo, k, budget);
    };
    tk.AddRow({std::to_string(k), cell("imb"), cell("inflation"),
               cell("btraversal"), cell("itraversal")});
  }
  tk.Print(std::cout);

  std::cout << "\n(delay = max gap between consecutive outputs; *: "
               "measured over a partial run ("
            << budget << "s / " << kMaxOutputs
            << " outputs); INF: no output inside the budget)\n";
  return 0;
}
