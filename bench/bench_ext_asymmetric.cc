// Extension benchmark (not in the paper): asymmetric disconnection budgets
// (k_l, k_r), the generalization Section 2 mentions. Reports the number of
// maximal biplexes and the time to the first 1000 for a grid of budgets on
// the Opsahl stand-in, demonstrating that a loose budget on one side is
// much cheaper than loose budgets on both.
#include <iostream>
#include <string>

#include "bench_common.h"
#include "util/table.h"

using namespace kbiplex;
using namespace kbiplex::bench;

int main(int argc, char** argv) {
  const bool quick = QuickMode(argc, argv);
  const double budget = RunBudgetSeconds(quick);

  std::cout << "== Extension: asymmetric budgets (k_l, k_r), Opsahl "
               "stand-in, first 1000 MBPs ==\n";
  BenchJsonWriter writer("ext_asymmetric");
  BipartiteGraph g = MakeDataset(FindDataset("Opsahl"));
  TextTable t({"k_l", "k_r", "time (s)", "#returned"});
  for (int kl = 1; kl <= 2; ++kl) {
    for (int kr = 1; kr <= 3; ++kr) {
      EnumerateRequest req = MakeRequest("itraversal", 1, 1000, budget);
      req.k = KPair{kl, kr};
      EnumerateStats stats = RunCountingLogged(
          &writer,
          "kl=" + std::to_string(kl) + "/kr=" + std::to_string(kr),
          "Opsahl", g, req);
      const bool finished = FinishedFirstN(stats, 1000);
      t.AddRow({std::to_string(kl), std::to_string(kr),
                finished ? FormatSeconds(stats.seconds)
                         : FormatSeconds(stats.seconds) + "*",
                std::to_string(stats.solutions)});
    }
  }
  t.Print(std::cout);
  std::cout << "\n(*: " << budget
            << "s budget hit; every configuration is validated against an "
               "exhaustive oracle in tests/asymmetric_k_test.cc)\n";
  return 0;
}
