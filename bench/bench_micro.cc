// Google-benchmark micro benchmarks for the core primitives: B-tree
// insertion, bitset sweeps, graph construction, core decomposition,
// EnumAlmostSat and maximal extension. These track the constant factors
// behind the figure-level harnesses.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/biplex.h"
#include "core/enum_almost_sat.h"
#include "graph/core_decomposition.h"
#include "graph/generators.h"
#include "index/btree.h"
#include "util/dynamic_bitset.h"
#include "util/random.h"

namespace kbiplex {
namespace {

void BM_BTreeInsert(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(1);
  std::vector<std::string> keys;
  keys.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Biplex b{{static_cast<VertexId>(rng.NextBelow(1u << 20))},
             {static_cast<VertexId>(rng.NextBelow(1u << 20)),
              static_cast<VertexId>(i)}};
    keys.push_back(EncodeBiplexKey(b));
  }
  for (auto _ : state) {
    BTreeSet tree;
    for (const auto& k : keys) tree.Insert(k);
    benchmark::DoNotOptimize(tree.Size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_BTreeInsert)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_BTreeLookup(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(2);
  BTreeSet tree;
  std::vector<std::string> keys;
  for (size_t i = 0; i < n; ++i) {
    Biplex b{{static_cast<VertexId>(i)},
             {static_cast<VertexId>(rng.NextBelow(1u << 20))}};
    keys.push_back(EncodeBiplexKey(b));
    tree.Insert(keys.back());
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Contains(keys[i++ % n]));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_BTreeLookup)->Arg(10000)->Arg(100000);

void BM_BitsetIntersects(benchmark::State& state) {
  const size_t bits = static_cast<size_t>(state.range(0));
  DynamicBitset a(bits), b(bits);
  Rng rng(3);
  for (size_t i = 0; i < bits / 50 + 1; ++i) {
    a.Set(rng.NextBelow(bits));
    b.Set(rng.NextBelow(bits));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Intersects(b));
  }
}
BENCHMARK(BM_BitsetIntersects)->Arg(1024)->Arg(65536)->Arg(1048576);

void BM_GraphBuild(benchmark::State& state) {
  const size_t edges = static_cast<size_t>(state.range(0));
  Rng rng(4);
  auto g0 = ErdosRenyiBipartite(edges / 8, edges / 8, edges, &rng);
  auto edge_list = g0.Edges();
  for (auto _ : state) {
    auto g =
        BipartiteGraph::FromEdges(edges / 8, edges / 8, edge_list);
    benchmark::DoNotOptimize(g.NumEdges());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(edges));
}
BENCHMARK(BM_GraphBuild)->Arg(10000)->Arg(100000)->Arg(1000000);

void BM_CoreDecomposition(benchmark::State& state) {
  const size_t edges = static_cast<size_t>(state.range(0));
  Rng rng(5);
  auto g = PowerLawBipartiteAsym(edges / 4, edges / 16, edges, 3.0, 2.2,
                                 &rng);
  for (auto _ : state) {
    auto core = AlphaBetaCore(g, 3, 3);
    benchmark::DoNotOptimize(core.left.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(edges));
}
BENCHMARK(BM_CoreDecomposition)->Arg(100000)->Arg(1000000);

void BM_EnumAlmostSat(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  auto spec = bench::FindDataset("Writer");
  auto g = bench::MakeDataset(spec);
  // Build one realistic workload: the first solution and an outside vertex.
  std::vector<Biplex> sols;
  CallbackSink sink([&](const Biplex& b) {
    // Skip the giant near-H0 solutions: with |R| in the thousands the
    // subset enumeration is O(|R|^k) and would swamp the benchmark.
    if (b.Size() <= 300) sols.push_back(b);
    return true;
  });
  Enumerator(g).Run(bench::MakeRequest("itraversal", k, 50, 0), &sink);
  if (sols.empty()) {
    state.SkipWithError("no solutions");
    return;
  }
  Rng rng(6);
  size_t i = 0;
  for (auto _ : state) {
    const Biplex& h = sols[i++ % sols.size()];
    VertexId v;
    do {
      v = static_cast<VertexId>(rng.NextBelow(g.NumLeft()));
    } while (sorted::Contains(h.left, v));
    size_t found = 0;
    EnumAlmostSat(g, h, Side::kLeft, v, k, EnumAlmostSatOptions{},
                  [&](const Biplex&) {
                    ++found;
                    return true;
                  });
    benchmark::DoNotOptimize(found);
  }
}
BENCHMARK(BM_EnumAlmostSat)->Arg(1)->Arg(2)->Arg(3);

void BM_ExtendToMaximal(benchmark::State& state) {
  auto g = bench::MakeDataset(bench::FindDataset("Opsahl"));
  MaximalExtender ext(g, 1);
  Rng rng(7);
  for (auto _ : state) {
    Biplex b;
    b.left.push_back(static_cast<VertexId>(rng.NextBelow(g.NumLeft())));
    ext.Extend(&b, true, true);
    benchmark::DoNotOptimize(b.Size());
  }
}
BENCHMARK(BM_ExtendToMaximal);

void BM_ITraversalFirst100(benchmark::State& state) {
  auto g = bench::MakeDataset(bench::FindDataset("Crime"));
  Enumerator enumerator(g);
  for (auto _ : state) {
    CountingSink sink;
    enumerator.Run(bench::MakeRequest("itraversal", 1, 100, 0), &sink);
    benchmark::DoNotOptimize(sink.count());
  }
}
BENCHMARK(BM_ITraversalFirst100);

}  // namespace
}  // namespace kbiplex

BENCHMARK_MAIN();
