// Google-benchmark micro benchmarks for the core primitives: B-tree
// insertion, bitset sweeps, graph construction, core decomposition,
// EnumAlmostSat and maximal extension. These track the constant factors
// behind the figure-level harnesses.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <fstream>
#include <string>

#include "bench_common.h"
#include "core/biplex.h"
#include "core/enum_almost_sat.h"
#include "graph/adjacency_index.h"
#include "graph/core_decomposition.h"
#include "graph/generators.h"
#include "graph/renumber.h"
#include "index/btree.h"
#include "util/dynamic_bitset.h"
#include "util/random.h"

namespace kbiplex {
namespace {

void BM_BTreeInsert(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(1);
  std::vector<std::string> keys;
  keys.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Biplex b{{static_cast<VertexId>(rng.NextBelow(1u << 20))},
             {static_cast<VertexId>(rng.NextBelow(1u << 20)),
              static_cast<VertexId>(i)}};
    keys.push_back(EncodeBiplexKey(b));
  }
  for (auto _ : state) {
    BTreeSet tree;
    for (const auto& k : keys) tree.Insert(k);
    benchmark::DoNotOptimize(tree.Size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_BTreeInsert)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_BTreeLookup(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(2);
  BTreeSet tree;
  std::vector<std::string> keys;
  for (size_t i = 0; i < n; ++i) {
    Biplex b{{static_cast<VertexId>(i)},
             {static_cast<VertexId>(rng.NextBelow(1u << 20))}};
    keys.push_back(EncodeBiplexKey(b));
    tree.Insert(keys.back());
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Contains(keys[i++ % n]));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_BTreeLookup)->Arg(10000)->Arg(100000);

void BM_BitsetIntersects(benchmark::State& state) {
  const size_t bits = static_cast<size_t>(state.range(0));
  DynamicBitset a(bits), b(bits);
  Rng rng(3);
  for (size_t i = 0; i < bits / 50 + 1; ++i) {
    a.Set(rng.NextBelow(bits));
    b.Set(rng.NextBelow(bits));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Intersects(b));
  }
}
BENCHMARK(BM_BitsetIntersects)->Arg(1024)->Arg(65536)->Arg(1048576);

void BM_GraphBuild(benchmark::State& state) {
  const size_t edges = static_cast<size_t>(state.range(0));
  Rng rng(4);
  auto g0 = ErdosRenyiBipartite(edges / 8, edges / 8, edges, &rng);
  auto edge_list = g0.Edges();
  for (auto _ : state) {
    auto g =
        BipartiteGraph::FromEdges(edges / 8, edges / 8, edge_list);
    benchmark::DoNotOptimize(g.NumEdges());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(edges));
}
BENCHMARK(BM_GraphBuild)->Arg(10000)->Arg(100000)->Arg(1000000);

void BM_CoreDecomposition(benchmark::State& state) {
  const size_t edges = static_cast<size_t>(state.range(0));
  Rng rng(5);
  auto g = PowerLawBipartiteAsym(edges / 4, edges / 16, edges, 3.0, 2.2,
                                 &rng);
  for (auto _ : state) {
    auto core = AlphaBetaCore(g, 3, 3);
    benchmark::DoNotOptimize(core.left.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(edges));
}
BENCHMARK(BM_CoreDecomposition)->Arg(100000)->Arg(1000000);

void BM_EnumAlmostSat(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  auto spec = bench::FindDataset("Writer");
  auto g = bench::MakeDataset(spec);
  // Build one realistic workload: the first solution and an outside vertex.
  std::vector<Biplex> sols;
  CallbackSink sink([&](const Biplex& b) {
    // Skip the giant near-H0 solutions: with |R| in the thousands the
    // subset enumeration is O(|R|^k) and would swamp the benchmark.
    if (b.Size() <= 300) sols.push_back(b);
    return true;
  });
  Enumerator(g).Run(bench::MakeRequest("itraversal", k, 50, 0), &sink);
  if (sols.empty()) {
    state.SkipWithError("no solutions");
    return;
  }
  Rng rng(6);
  size_t i = 0;
  for (auto _ : state) {
    const Biplex& h = sols[i++ % sols.size()];
    VertexId v;
    do {
      v = static_cast<VertexId>(rng.NextBelow(g.NumLeft()));
    } while (sorted::Contains(h.left, v));
    size_t found = 0;
    EnumAlmostSat(g, h, Side::kLeft, v, k, EnumAlmostSatOptions{},
                  [&](const Biplex&) {
                    ++found;
                    return true;
                  });
    benchmark::DoNotOptimize(found);
  }
}
BENCHMARK(BM_EnumAlmostSat)->Arg(1)->Arg(2)->Arg(3);

void BM_ExtendToMaximal(benchmark::State& state) {
  auto g = bench::MakeDataset(bench::FindDataset("Opsahl"));
  MaximalExtender ext(g, 1);
  Rng rng(7);
  for (auto _ : state) {
    Biplex b;
    b.left.push_back(static_cast<VertexId>(rng.NextBelow(g.NumLeft())));
    ext.Extend(&b, true, true);
    benchmark::DoNotOptimize(b.Size());
  }
}
BENCHMARK(BM_ExtendToMaximal);

void BM_ITraversalFirst100(benchmark::State& state) {
  auto g = bench::MakeDataset(bench::FindDataset("Crime"));
  Enumerator enumerator(g);
  for (auto _ : state) {
    CountingSink sink;
    enumerator.Run(bench::MakeRequest("itraversal", 1, 100, 0), &sink);
    benchmark::DoNotOptimize(sink.count());
  }
}
BENCHMARK(BM_ITraversalFirst100);

// The same workload with the full acceleration stack: attached adjacency
// index + 2-hop-eligible configuration. Compare against
// BM_ITraversalFirst100 to see the constant-factor win.
void BM_ITraversalFirst100Accel(benchmark::State& state) {
  auto g = bench::MakeDataset(bench::FindDataset("Crime"));
  g.BuildAdjacencyIndex();
  Enumerator enumerator(g);
  for (auto _ : state) {
    CountingSink sink;
    enumerator.Run(bench::MakeRequest("itraversal", 1, 100, 0), &sink);
    benchmark::DoNotOptimize(sink.count());
  }
}
BENCHMARK(BM_ITraversalFirst100Accel);

void BM_AdjacencyTest(benchmark::State& state) {
  const bool indexed = state.range(0) != 0;
  Rng rng(8);
  auto g = ErdosRenyiBipartite(2000, 2000, 200000, &rng);
  if (indexed) g.BuildAdjacencyIndex();
  std::vector<std::pair<VertexId, VertexId>> probes;
  for (size_t i = 0; i < 1024; ++i) {
    probes.emplace_back(static_cast<VertexId>(rng.NextBelow(2000)),
                        static_cast<VertexId>(rng.NextBelow(2000)));
  }
  size_t i = 0;
  for (auto _ : state) {
    const auto& [l, r] = probes[i++ & 1023];
    benchmark::DoNotOptimize(g.IsAdjacent(Side::kLeft, l, r));
  }
}
BENCHMARK(BM_AdjacencyTest)->Arg(0)->Arg(1);

void BM_BitsetIntersectCount(benchmark::State& state) {
  const size_t bits = static_cast<size_t>(state.range(0));
  DynamicBitset a(bits), b(bits);
  Rng rng(9);
  for (size_t i = 0; i < bits / 20 + 1; ++i) {
    a.Set(rng.NextBelow(bits));
    b.Set(rng.NextBelow(bits));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.IntersectCount(b));
  }
}
BENCHMARK(BM_BitsetIntersectCount)->Arg(1024)->Arg(65536);

void BM_SortedContains(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<VertexId> v;
  for (size_t i = 0; i < n; ++i) v.push_back(static_cast<VertexId>(2 * i));
  Rng rng(10);
  size_t i = 0;
  std::vector<VertexId> probes;
  for (size_t p = 0; p < 256; ++p) {
    probes.push_back(static_cast<VertexId>(rng.NextBelow(2 * n + 1)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(sorted::Contains(v, probes[i++ & 255]));
  }
}
BENCHMARK(BM_SortedContains)->Arg(4)->Arg(16)->Arg(64)->Arg(1024);

void BM_RenumberByDegeneracy(benchmark::State& state) {
  const size_t edges = static_cast<size_t>(state.range(0));
  Rng rng(11);
  auto g = PowerLawBipartiteAsym(edges / 4, edges / 16, edges, 3.0, 2.2,
                                 &rng);
  for (auto _ : state) {
    auto r = RenumberByDegeneracy(g);
    benchmark::DoNotOptimize(r.graph.NumEdges());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(edges));
}
BENCHMARK(BM_RenumberByDegeneracy)->Arg(100000);

}  // namespace
}  // namespace kbiplex

// Custom main instead of BENCHMARK_MAIN(): console output stays the
// google-benchmark default, and the run is additionally recorded as
// machine-readable BENCH_micro.json (KBIPLEX_BENCH_JSON_DIR selects the
// directory), mirroring the suite-wide BENCH_*.json convention. The JSON
// file is produced by injecting --benchmark_out before Initialize — the
// portable mechanism across google-benchmark versions — so an explicit
// --benchmark_out on the command line wins.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out=", 0) == 0) {
      has_out = true;
    }
  }
  std::string out_flag;
  char format_flag[] = "--benchmark_out_format=json";
  if (!has_out) {
    const char* dir = std::getenv("KBIPLEX_BENCH_JSON_DIR");
    std::string path = dir != nullptr && dir[0] != '\0'
                           ? std::string(dir) + "/BENCH_micro.json"
                           : "BENCH_micro.json";
    out_flag = "--benchmark_out=" + path;
    args.push_back(out_flag.data());
    args.push_back(format_flag);
  }
  int adjusted_argc = static_cast<int>(args.size());
  benchmark::Initialize(&adjusted_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(adjusted_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
