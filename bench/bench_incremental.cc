// Incremental update benchmark: the cost of publishing a new epoch via
// PreparedGraph::ApplyUpdates (CSR splice, patched adjacency index,
// union-find component relabel, carried core bound) versus a full
// re-Prepare of the mutated edge list, at delta sizes of 0.1%, 1% and 10%
// of the edges. Both paths end fully warmed (every artifact built), so
// the speedup compares equal end states.
//
// Correctness gate first: on a small random graph, a chain of update
// batches applied incrementally must enumerate the exact same sorted
// solution set as a fresh Prepare of the final edge list, for every
// backend in the registry, sequentially and with threads=4, under
// renumbering + a forced adjacency index with a row budget that yields
// mixed dense/sparse/dropped rows. Any divergence aborts the benchmark —
// a fast wrong answer is not a result.
//
// Results are recorded in BENCH_incremental.json. Flags: --smoke (tiny
// sizes for CI), --full (the committed configuration).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "api/prepared_graph.h"
#include "api/query_session.h"
#include "bench_common.h"
#include "graph/generators.h"
#include "update/incremental.h"
#include "update/update_batch.h"
#include "util/random.h"
#include "util/timer.h"

namespace kbiplex {
namespace bench {
namespace {

using Edge = BipartiteGraph::Edge;

std::vector<Edge> AllEdges(const BipartiteGraph& g) {
  std::vector<Edge> edges;
  edges.reserve(g.NumEdges());
  for (VertexId l = 0; l < g.NumLeft(); ++l) {
    for (VertexId r : g.LeftNeighbors(l)) edges.emplace_back(l, r);
  }
  return edges;
}

/// A random delta against `g`: `deletes` existing edges and `inserts`
/// absent ones, disjoint and deterministic in `rng`.
void RandomDelta(const BipartiteGraph& g, size_t inserts, size_t deletes,
                 Rng* rng, std::vector<Edge>* ins, std::vector<Edge>* del) {
  const std::vector<Edge> edges = AllEdges(g);
  for (uint64_t idx : rng->SampleDistinct(edges.size(),
                                          std::min(deletes, edges.size()))) {
    del->push_back(edges[idx]);
  }
  std::set<Edge> chosen(del->begin(), del->end());
  while (ins->size() < inserts) {
    const Edge e{static_cast<VertexId>(rng->NextBelow(g.NumLeft())),
                 static_cast<VertexId>(rng->NextBelow(g.NumRight()))};
    if (g.HasEdge(e.first, e.second) || !chosen.insert(e).second) continue;
    ins->push_back(e);
  }
}

/// Collects solutions as canonical "l,l|r,r" strings; sorting the vector
/// gives a set fingerprint independent of delivery order and threads.
class CollectSink final : public SolutionSink {
 public:
  bool Accept(const Biplex& solution) override {
    std::string key;
    for (VertexId v : solution.left) key += std::to_string(v) + ",";
    key += "|";
    for (VertexId v : solution.right) key += std::to_string(v) + ",";
    keys_.push_back(std::move(key));
    return true;
  }
  // Parallel drivers serialize Accept calls; no extra locking needed.
  bool ThreadCompatible() const override { return true; }

  std::vector<std::string> Sorted() && {
    std::sort(keys_.begin(), keys_.end());
    return std::move(keys_);
  }

 private:
  std::vector<std::string> keys_;
};

std::vector<std::string> SortedSolutions(
    const std::shared_ptr<const PreparedGraph>& prepared,
    const std::string& algorithm, int threads) {
  EnumerateRequest req = MakeRequest(algorithm, 1, 0, 0);
  req.theta_left = req.theta_right = 1;  // large-mbp requires thresholds
  req.threads = threads;
  QuerySession session(prepared);
  CollectSink sink;
  const EnumerateStats stats = session.Run(req, &sink);
  if (!stats.ok()) {
    std::fprintf(stderr, "FATAL: %s (threads=%d) rejected: %s\n",
                 algorithm.c_str(), threads, stats.error.c_str());
    std::abort();
  }
  return std::move(sink).Sorted();
}

/// The correctness gate: chains `rounds` random update batches through
/// ApplyUpdates (always incremental: max_delta_fraction=1) and checks the
/// final epoch enumerates exactly like a fresh Prepare of the final edge
/// list — every registered backend, threads 1 and 4. Returns the number
/// of agreeing (backend, threads) cells.
size_t AgreementGate(bool smoke, BenchJsonWriter* json) {
  const size_t nl = smoke ? 8 : 14, nr = smoke ? 8 : 14;
  const size_t ne = smoke ? 24 : 60;
  Rng rng(2024);
  BipartiteGraph start = ErdosRenyiBipartite(nl, nr, ne, &rng);

  PrepareOptions prep;
  prep.renumber = true;
  prep.adjacency_index = AdjacencyAccelMode::kForce;
  prep.adjacency_min_degree = 1;
  // A budget too small for all-dense rows: the patched index must
  // reproduce the planner's mixed dense/sparse/dropped layout.
  prep.accel_budget_bytes = 256;

  auto incremental = PreparedGraph::Prepare(BipartiteGraph(start), prep);
  incremental->Warmup();
  const int rounds = smoke ? 2 : 4;
  update::UpdateOptions opts;
  opts.max_delta_fraction = 1.0;  // stay on the incremental path
  for (int i = 0; i < rounds; ++i) {
    std::vector<Edge> ins, del;
    RandomDelta(incremental->graph(), 3, 3, &rng, &ins, &del);
    update::UpdateBatch batch;
    for (const Edge& e : ins) batch.Insert(e.first, e.second);
    for (const Edge& e : del) batch.Remove(e.first, e.second);
    update::UpdateResult result = incremental->ApplyUpdates(batch, opts);
    if (!result.ok() || result.rebuilt) {
      std::fprintf(stderr, "FATAL: incremental apply failed: %s\n",
                   result.error.c_str());
      std::abort();
    }
    incremental = result.prepared;
    incremental->Warmup();
  }

  auto rebuilt = PreparedGraph::Prepare(
      BipartiteGraph::FromEdges(nl, nr, AllEdges(incremental->graph())),
      prep);
  rebuilt->Warmup();

  size_t cells = 0;
  for (const AlgorithmInfo& info : AlgorithmRegistry::Global().List()) {
    for (int threads : {1, 4}) {
      const std::vector<std::string> a =
          SortedSolutions(incremental, info.name, threads);
      const std::vector<std::string> b =
          SortedSolutions(rebuilt, info.name, threads);
      if (a != b) {
        std::fprintf(stderr,
                     "FATAL: %s threads=%d diverges: incremental %zu vs "
                     "rebuilt %zu solutions\n",
                     info.name.c_str(), threads, a.size(), b.size());
        std::abort();
      }
      ++cells;
    }
  }
  std::printf("agreement: %zu (backend, threads) cells identical after %d "
              "incremental batches (epoch %llu)\n",
              cells, rounds,
              static_cast<unsigned long long>(incremental->epoch()));

  BenchJsonWriter::Record r;
  r.name = "agreement";
  r.dataset = "er-small";
  r.algorithm = "all";
  r.completed = true;
  r.counters.emplace_back("cells", static_cast<double>(cells));
  r.counters.emplace_back("rounds", static_cast<double>(rounds));
  json->Add(std::move(r));
  return cells;
}

/// One timed cell: incremental ApplyUpdates vs full re-Prepare at delta
/// fraction `fraction`, both ending fully warmed. Best of `reps`.
void TimeFraction(const BipartiteGraph& base,
                  const std::shared_ptr<const PreparedGraph>& warmed,
                  const PrepareOptions& prep, double fraction, int reps,
                  BenchJsonWriter* json) {
  const size_t delta_edges = std::max<size_t>(
      2, static_cast<size_t>(fraction * static_cast<double>(base.NumEdges())));
  Rng rng(7000 + static_cast<uint64_t>(fraction * 100000));
  std::vector<Edge> ins, del;
  RandomDelta(base, delta_edges / 2, delta_edges - delta_edges / 2, &rng,
              &ins, &del);
  update::UpdateBatch batch;
  for (const Edge& e : ins) batch.Insert(e.first, e.second);
  for (const Edge& e : del) batch.Remove(e.first, e.second);
  update::UpdateOptions opts;
  opts.max_delta_fraction = 1.0;  // measure the incremental path itself

  double inc_seconds = 1e100;
  std::shared_ptr<const PreparedGraph> epoch;
  for (int i = 0; i < reps; ++i) {
    WallTimer t;
    update::UpdateResult result = warmed->ApplyUpdates(batch, opts);
    if (!result.ok() || result.rebuilt) {
      std::fprintf(stderr, "FATAL: apply failed: %s\n",
                   result.error.c_str());
      std::abort();
    }
    result.prepared->Warmup();  // no-op: the apply pre-populates, but be
                                // honest and charge it to the timed region
    inc_seconds = std::min(inc_seconds, t.ElapsedSeconds());
    epoch = result.prepared;
  }

  // The full path replays what a from-scratch load would do: materialize
  // the mutated edge list, FromEdges, Prepare, warm every artifact.
  const std::set<Edge> deleted(del.begin(), del.end());
  double full_seconds = 1e100;
  std::shared_ptr<const PreparedGraph> rebuilt;
  for (int i = 0; i < reps; ++i) {
    WallTimer t;
    std::vector<Edge> edges;
    edges.reserve(base.NumEdges() + ins.size());
    for (const Edge& e : AllEdges(base)) {
      if (deleted.count(e) == 0) edges.push_back(e);
    }
    edges.insert(edges.end(), ins.begin(), ins.end());
    rebuilt = PreparedGraph::Prepare(
        BipartiteGraph::FromEdges(base.NumLeft(), base.NumRight(),
                                  std::move(edges)),
        prep);
    rebuilt->Warmup();
    full_seconds = std::min(full_seconds, t.ElapsedSeconds());
  }

  if (epoch->graph().NumEdges() != rebuilt->graph().NumEdges()) {
    std::fprintf(stderr, "FATAL: edge count mismatch %zu vs %zu\n",
                 epoch->graph().NumEdges(), rebuilt->graph().NumEdges());
    std::abort();
  }

  const double speedup = inc_seconds > 0 ? full_seconds / inc_seconds : 0;
  std::printf("  %7.3f%%  %10zu  %12.6f  %12.6f  %8.2fx\n", fraction * 100,
              delta_edges, inc_seconds, full_seconds, speedup);

  BenchJsonWriter::Record r;
  char label[64];
  std::snprintf(label, sizeof(label), "delta=%g", fraction);
  r.name = std::string("incremental/") + label;
  r.dataset = "er-large";
  r.algorithm = "apply";
  r.wall_seconds = inc_seconds;
  r.completed = true;
  r.counters.emplace_back("delta_fraction", fraction);
  r.counters.emplace_back("delta_edges", static_cast<double>(delta_edges));
  r.counters.emplace_back("incremental_seconds", inc_seconds);
  r.counters.emplace_back("full_prepare_seconds", full_seconds);
  r.counters.emplace_back("speedup_vs_full", speedup);
  json->Add(std::move(r));
}

}  // namespace
}  // namespace bench
}  // namespace kbiplex

int main(int argc, char** argv) {
  using namespace kbiplex;
  using namespace kbiplex::bench;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  BenchJsonWriter json("incremental");
  AgreementGate(smoke, &json);

  // Timing workload: a graph big enough that a full re-Prepare (edge sort,
  // degeneracy renumber, index build, component BFS, core peel) costs
  // measurable milliseconds, under the serving configuration (renumber +
  // forced index under a memory budget, i.e. mixed compressed rows).
  const size_t nl = smoke ? 200 : 20000, nr = smoke ? 200 : 20000;
  const size_t ne = smoke ? 4000 : 1200000;
  Rng rng(99);
  const BipartiteGraph base = ErdosRenyiBipartite(nl, nr, ne, &rng);
  PrepareOptions prep;
  prep.renumber = true;
  prep.adjacency_index = AdjacencyAccelMode::kForce;
  prep.accel_budget_bytes = smoke ? 64 * 1024 : 8 * 1024 * 1024;
  auto warmed = PreparedGraph::Prepare(BipartiteGraph(base), prep);
  warmed->Warmup();

  std::printf("\nincremental apply vs full re-Prepare, %zux%zu, %zu edges\n",
              base.NumLeft(), base.NumRight(), base.NumEdges());
  std::printf("  %8s  %10s  %12s  %12s  %8s\n", "delta", "edges",
              "apply (s)", "full (s)", "speedup");
  const int reps = smoke ? 2 : 3;
  for (double fraction : {0.001, 0.01, 0.10}) {
    TimeFraction(base, warmed, prep, fraction, reps, &json);
  }

  if (!json.Write()) return 1;
  std::printf("wrote %s\n", json.path().c_str());
  return 0;
}
