// Parallel-enumeration scaling: sweeps the EnumerateRequest::threads knob
// over 1/2/4/8 workers for one workload per sharding plan of the parallel
// driver (api/parallel_driver.h):
//
//   brute-force   left-mask range sharding on one dense graph
//   imb           root-branch sharding of the set-enumeration tree
//   itraversal    connected-component sharding (multi-component graph,
//   large-mbp     thresholds chosen so the component plan is safe)
//   itraversal    work-stealing expansion scheduler (one dense component
//   btraversal    that component sharding cannot split)
//
// Each row reports wall seconds, the speedup over the 1-thread run, and
// the delivered solution count — which must be identical down the column;
// a mismatch means a sharding bug, and the bench says so loudly.
//
// Speedups track the machine: on a single-core container every row is
// ~1.0x; the >1 numbers need real hardware threads.
#include <cstdio>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "api/enumerator.h"
#include "bench_common.h"
#include "graph/generators.h"
#include "util/random.h"
#include "util/table.h"

using namespace kbiplex;
using namespace kbiplex::bench;

namespace {

struct Workload {
  std::string name;
  BipartiteGraph graph;
  EnumerateRequest request;  // threads overwritten per run
};

BipartiteGraph MultiComponentGraph(size_t components, size_t side,
                                   double p, uint64_t seed) {
  Rng rng(seed);
  std::vector<BipartiteGraph::Edge> edges;
  for (size_t c = 0; c < components; ++c) {
    BipartiteGraph block = ErdosRenyiProbBipartite(side, side, p, &rng);
    const VertexId off = static_cast<VertexId>(c * side);
    for (const auto& [l, r] : block.Edges()) {
      edges.emplace_back(l + off, r + off);
    }
  }
  return BipartiteGraph::FromEdges(components * side, components * side,
                                   std::move(edges));
}

std::vector<Workload> MakeWorkloads(bool quick) {
  std::vector<Workload> out;
  Rng rng(1234);

  {
    Workload w;
    w.name = "brute-force (mask sharding)";
    const size_t side = quick ? 12 : 14;
    w.graph = ErdosRenyiProbBipartite(side, side, 0.5, &rng);
    w.request.algorithm = "brute-force";
    out.push_back(std::move(w));
  }
  {
    Workload w;
    w.name = "imb (root-branch sharding)";
    w.graph = ErdosRenyiProbBipartite(quick ? 24 : 30, quick ? 24 : 30,
                                      0.25, &rng);
    w.request.algorithm = "imb";
    w.request.theta_left = 3;
    w.request.theta_right = 3;
    out.push_back(std::move(w));
  }
  {
    Workload w;
    w.name = "itraversal (component sharding)";
    w.graph = MultiComponentGraph(8, quick ? 14 : 18, 0.45, 99);
    w.request.algorithm = "itraversal";
    w.request.theta_left = 3;   // safe: theta_l > k_r, theta_r > 2 k_l
    w.request.theta_right = 3;
    out.push_back(std::move(w));
  }
  {
    Workload w;
    w.name = "large-mbp (component sharding)";
    w.graph = MultiComponentGraph(8, quick ? 16 : 20, 0.4, 77);
    w.request.algorithm = "large-mbp";
    w.request.theta_left = 4;
    w.request.theta_right = 4;
    out.push_back(std::move(w));
  }
  // One dense connected component with no size thresholds: the component
  // plan is both unsafe (thetas do not exclude cross-component MBPs) and
  // useless (one shard), so these rows exercise the work-stealing
  // traversal scheduler.
  {
    Workload w;
    w.name = "itraversal (work stealing, one dense component)";
    const size_t side = quick ? 9 : 11;
    w.graph = ErdosRenyiProbBipartite(side, side, 0.6, &rng);
    w.request.algorithm = "itraversal";
    out.push_back(std::move(w));
  }
  {
    Workload w;
    w.name = "btraversal (work stealing, one dense component)";
    const size_t side = quick ? 9 : 10;
    w.graph = ErdosRenyiProbBipartite(side, side, 0.6, &rng);
    w.request.algorithm = "btraversal";
    out.push_back(std::move(w));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = QuickMode(argc, argv);
  std::printf("hardware threads: %u\n\n",
              std::thread::hardware_concurrency());

  BenchJsonWriter writer("parallel_scaling");
  bool consistent = true;
  for (Workload& w : MakeWorkloads(quick)) {
    Enumerator enumerator(w.graph);
    std::cout << "== " << w.name << " (|L|=" << w.graph.NumLeft()
              << ", |R|=" << w.graph.NumRight()
              << ", |E|=" << w.graph.NumEdges() << ", k=1) ==\n";
    TextTable table({"threads", "seconds", "speedup", "solutions"});
    double base_seconds = 0;
    uint64_t base_solutions = 0;
    for (int threads : {1, 2, 4, 8}) {
      w.request.threads = threads;
      EnumerateStats stats;
      CountingSink sink;
      stats = enumerator.Run(w.request, &sink);
      if (!stats.ok()) {
        std::cout << "request rejected: " << stats.error << "\n";
        consistent = false;
        break;
      }
      if (threads == 1) {
        base_seconds = stats.seconds;
        base_solutions = stats.solutions;
      } else if (stats.solutions != base_solutions) {
        consistent = false;
      }
      writer.AddRun(w.request.algorithm + "/threads=" +
                        std::to_string(threads),
                    w.name, w.request, stats);
      char speedup[32];
      std::snprintf(speedup, sizeof(speedup), "%.2fx",
                    stats.seconds > 0 ? base_seconds / stats.seconds : 1.0);
      table.AddRow({std::to_string(threads), FormatSeconds(stats.seconds),
                    speedup, std::to_string(stats.solutions)});
    }
    table.Print(std::cout);
    std::cout << "\n";
  }
  if (!consistent) {
    std::cout << "ERROR: solution counts diverged across thread counts\n";
    return 1;
  }
  return 0;
}
