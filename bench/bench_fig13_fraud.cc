// Figure 13: fraud-detection case study under a random camouflage attack.
// Compares biclique, 1-biplex, 2-biplex, (α,β)-core and δ-quasi-biclique
// detectors, reporting precision / recall / F1 for θ_L(β) = 4 and
// θ_R(α) ∈ {3..7}; "ND" marks detectors that flagged nothing, as in the
// paper.
#include <iostream>
#include <string>

#include "analysis/biclique.h"
#include "analysis/fraud.h"
#include "analysis/quasi_biclique.h"
#include "bench_common.h"
#include "graph/generators.h"
#include "util/random.h"
#include "util/table.h"

using namespace kbiplex;
using namespace kbiplex::bench;

namespace {

std::string MetricCell(const BinaryMetrics& m, double BinaryMetrics::*field) {
  if (!m.defined) return "ND";
  return FormatDouble(m.*field, 2);
}

void PrintMetricTable(const char* title,
                      const std::vector<std::string>& detectors,
                      const std::vector<std::vector<BinaryMetrics>>& rows,
                      double BinaryMetrics::*field, size_t theta_lo) {
  std::cout << title << "\n";
  std::vector<std::string> headers = {"theta_R (alpha)"};
  for (const auto& d : detectors) headers.push_back(d);
  TextTable t(headers);
  for (size_t i = 0; i < rows.size(); ++i) {
    std::vector<std::string> cells = {std::to_string(theta_lo + i)};
    for (const BinaryMetrics& m : rows[i]) {
      cells.push_back(MetricCell(m, field));
    }
    t.AddRow(std::move(cells));
  }
  t.Print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = QuickMode(argc, argv);

  // The attacked dataset: organic review graph with a thin user side and a
  // heavy-tailed product side, plus the random camouflage attack
  // (Section 6.3 / DESIGN.md substitutions).
  Rng rng(31);
  const size_t users = quick ? 2000 : 8000;
  const size_t products = quick ? 150 : 600;
  auto organic = PowerLawBipartiteAsym(users, products, users * 5 / 4, 3.0,
                                       2.3, &rng);
  CamouflageAttackConfig cfg;
  cfg.fake_users = quick ? 30 : 120;
  cfg.fake_products = quick ? 20 : 80;
  cfg.fake_comments = cfg.fake_users * 8;
  cfg.camouflage_comments = cfg.fake_users * 4;
  cfg.seed = 32;
  FraudDataset data = InjectCamouflageAttack(organic, cfg);
  std::cout << "Attacked review graph: " << data.graph.NumLeft()
            << " users x " << data.graph.NumRight() << " products, "
            << data.graph.NumEdges() << " comments (" << cfg.fake_users
            << " fake users, " << cfg.fake_products << " fake products)\n\n";

  const size_t theta_l = 4;
  const size_t theta_lo = 3;
  const size_t theta_hi = 7;
  const std::vector<std::string> detectors = {
      "biclique", "1-biplex", "2-biplex", "(a,b)-core",
      "0.01-QB",  "0.1-QB",   "0.2-QB",   "0.3-QB"};

  BenchJsonWriter writer("fig13_fraud");
  std::vector<std::vector<BinaryMetrics>> rows;
  DetectorBudget budget;
  budget.time_budget_seconds = quick ? 10 : 60;
  for (size_t tr = theta_lo; tr <= theta_hi; ++tr) {
    std::vector<BinaryMetrics> row;
    row.push_back(EvaluateDetection(
        data, DetectByBiclique(data, theta_l, tr, budget)));
    row.push_back(EvaluateDetection(
        data, DetectByBiplex(data, 1, theta_l, tr, budget)));
    row.push_back(EvaluateDetection(
        data, DetectByBiplex(data, 2, theta_l, tr, budget)));
    row.push_back(EvaluateDetection(
        data, DetectByAlphaBetaCore(data, /*alpha=*/tr, /*beta=*/theta_l)));
    for (double delta : {0.01, 0.1, 0.2, 0.3}) {
      row.push_back(EvaluateDetection(
          data, DetectByQuasiBiclique(data, delta, theta_l, tr)));
    }
    for (size_t d = 0; d < detectors.size(); ++d) {
      const BinaryMetrics& m = row[d];
      BenchJsonWriter::Record r;
      r.name = detectors[d] + "/theta_r=" + std::to_string(tr);
      r.dataset = "attacked-review-graph";
      r.algorithm = detectors[d];
      r.completed = m.defined;
      if (m.defined) {
        r.counters.emplace_back("precision", m.precision);
        r.counters.emplace_back("recall", m.recall);
        r.counters.emplace_back("f1", m.f1);
      }
      writer.Add(std::move(r));
    }
    rows.push_back(std::move(row));
  }

  PrintMetricTable("== Figure 13(a): precision ==", detectors, rows,
                   &BinaryMetrics::precision, theta_lo);
  PrintMetricTable("== Figure 13(b): recall ==", detectors, rows,
                   &BinaryMetrics::recall, theta_lo);
  PrintMetricTable("== Figure 13(c): F1 score ==", detectors, rows,
                   &BinaryMetrics::f1, theta_lo);

  std::cout << "(theta_L (beta) fixed at " << theta_l
            << "; ND: detector flagged nothing. Expected shape: 1-biplex "
               "achieves the best F1, bicliques lose recall as theta_R "
               "grows, the (a,b)-core keeps recall but loses precision.)\n";
  return 0;
}
