// Serving-daemon throughput/latency benchmark: an in-process Server on a
// loopback socket, driven by concurrent LineClients — the full kbiplexd
// path (wire parse, admission queue, worker pool, per-worker sessions,
// NDJSON responses) minus process startup.
//
// Each request is a budget-bounded count query over a dense prepared
// graph, so per-request enumeration cost is constant by construction and
// the measured deltas are serving overhead and worker-pool scaling. For
// each worker-pool size (1, 4, 8) the harness runs `clients` connections
// sending requests back-to-back and reports requests/sec plus client-side
// p50/p99 latency into BENCH_serving.json.
//
// Flags: --smoke (fewer requests, for CI), --full (more requests).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "graph/bipartite_graph.h"
#include "serve/client.h"
#include "serve/server.h"
#include "util/timer.h"

namespace kbiplex {
namespace bench {
namespace {

/// Pseudo-random half-dense bipartite graph (the serve_test workload
/// shape, scaled up): hard enough that every query runs to its budget.
BipartiteGraph DenseGraph(VertexId n) {
  std::vector<BipartiteGraph::Edge> edges;
  for (VertexId l = 0; l < n; ++l)
    for (VertexId r = 0; r < n; ++r)
      if ((l * 31 + r * 17 + l * r) % 97 < 55) edges.push_back({l, r});
  return BipartiteGraph::FromEdges(static_cast<size_t>(n),
                                   static_cast<size_t>(n), std::move(edges));
}

struct RunResult {
  uint64_t requests = 0;
  uint64_t failures = 0;
  double wall_seconds = 0;
  double p50_s = 0;
  double p99_s = 0;
  double requests_per_sec = 0;
};

double Quantile(std::vector<double>* sorted_latencies, double q) {
  if (sorted_latencies->empty()) return 0;
  const size_t rank = std::min(
      sorted_latencies->size() - 1,
      static_cast<size_t>(q * static_cast<double>(sorted_latencies->size())));
  return (*sorted_latencies)[rank];
}

RunResult RunOnce(size_t workers, size_t clients, uint64_t requests_per_client,
                  double query_budget_seconds) {
  serve::ServerOptions options;
  options.workers = workers;
  options.queue_capacity = 4 * clients;  // the load is closed-loop; never 429
  serve::Server server(options);
  server.registry().Add("dense", DenseGraph(48), options.prepare);
  std::string err = server.Start();
  if (!err.empty()) {
    std::fprintf(stderr, "bench_serving: %s\n", err.c_str());
    std::abort();
  }

  const std::string query =
      "{\"op\":\"query\",\"id\":1,\"graph\":\"dense\",\"emit\":\"count\","
      "\"request\":{\"algo\":\"itraversal\",\"k\":2,\"budget_s\":" +
      std::to_string(query_budget_seconds) + "}}";

  std::vector<std::vector<double>> latencies(clients);
  std::atomic<uint64_t> failures{0};
  std::vector<std::thread> threads;
  WallTimer wall;
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      serve::LineClient client;
      if (!client.Connect("127.0.0.1", server.port()).empty()) {
        failures += requests_per_client;
        return;
      }
      latencies[c].reserve(requests_per_client);
      std::string reply;
      for (uint64_t r = 0; r < requests_per_client; ++r) {
        const auto start = std::chrono::steady_clock::now();
        if (!client.SendLine(query) || !client.ReadLine(&reply) ||
            reply.find("\"type\":\"done\"") == std::string::npos) {
          ++failures;
          continue;
        }
        latencies[c].push_back(
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count());
      }
    });
  }
  for (std::thread& t : threads) t.join();

  RunResult result;
  result.wall_seconds = wall.ElapsedSeconds();
  result.failures = failures.load();
  std::vector<double> all;
  for (const std::vector<double>& per_client : latencies)
    all.insert(all.end(), per_client.begin(), per_client.end());
  std::sort(all.begin(), all.end());
  result.requests = all.size();
  result.p50_s = Quantile(&all, 0.50);
  result.p99_s = Quantile(&all, 0.99);
  result.requests_per_sec =
      result.wall_seconds > 0
          ? static_cast<double>(result.requests) / result.wall_seconds
          : 0;

  server.RequestDrain();
  server.Wait();
  return result;
}

}  // namespace
}  // namespace bench
}  // namespace kbiplex

int main(int argc, char** argv) {
  using namespace kbiplex::bench;
  bool smoke = false;
  bool full = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--full") == 0) full = true;
  }
  const uint64_t requests_per_client = smoke ? 10 : (full ? 400 : 100);
  const double query_budget_seconds = smoke ? 0.002 : 0.005;

  BenchJsonWriter json("serving");
  std::printf("%-10s %8s %10s %10s %10s %9s\n", "workers", "clients", "req/s",
              "p50_ms", "p99_ms", "failures");
  for (const size_t workers : {size_t{1}, size_t{4}, size_t{8}}) {
    const size_t clients = 2 * workers;  // keep every worker saturated
    const RunResult r =
        RunOnce(workers, clients, requests_per_client, query_budget_seconds);
    std::printf("%-10zu %8zu %10.1f %10.3f %10.3f %9llu\n", workers, clients,
                r.requests_per_sec, r.p50_s * 1e3, r.p99_s * 1e3,
                static_cast<unsigned long long>(r.failures));
    if (r.failures > 0) {
      std::fprintf(stderr, "bench_serving: %llu failed requests\n",
                   static_cast<unsigned long long>(r.failures));
      return 1;
    }
    BenchJsonWriter::Record record;
    record.name = "serving/workers" + std::to_string(workers);
    record.dataset = "dense48";
    record.algorithm = "itraversal";
    record.k_left = 2;
    record.k_right = 2;
    record.threads = static_cast<int>(workers);
    record.wall_seconds = r.wall_seconds;
    record.solutions = 0;
    record.work_units = r.requests;
    record.completed = true;
    record.counters = {
        {"clients", static_cast<double>(clients)},
        {"requests", static_cast<double>(r.requests)},
        {"requests_per_sec", r.requests_per_sec},
        {"p50_s", r.p50_s},
        {"p99_s", r.p99_s},
        {"query_budget_s", query_budget_seconds},
    };
    json.Add(std::move(record));
  }
  if (!json.Write()) return 1;
  std::printf("wrote %s\n", json.path().c_str());
  return 0;
}
