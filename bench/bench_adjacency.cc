// Adjacency acceleration benchmark: the two perf claims of the SIMD +
// compressed-row work, measured end to end.
//
//  1. Kernel speedup — the runtime-dispatched native SIMD table
//     (util/simd.h) versus the portable scalar table on IntersectCount
//     and RowConnCount over rows of >= 4096 bits. On an AVX2 host the
//     native table must win by >= 2x; on a host without vector units the
//     tables are the same and the ratio prints as ~1.
//
//  2. Compressed rows — a memory-budgeted AdjacencyIndex (roaring-style
//     dense/sparse hybrid) on a sparse workload must fit in <= 50% of the
//     all-dense index's bytes while the enumeration delivers the
//     *identical* solution set. The bench collects both solution sets in
//     canonical order and aborts on any difference: compression is a
//     memory knob, never a semantics knob.
//
// Results print as tables and are recorded in BENCH_adjacency.json
// (KBIPLEX_BENCH_JSON_DIR selects the directory). Quick mode is the
// default; pass --full for the larger graph and longer kernel loops.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "api/enumerator.h"
#include "bench_common.h"
#include "graph/adjacency_index.h"
#include "graph/bipartite_graph.h"
#include "graph/generators.h"
#include "util/random.h"
#include "util/simd.h"
#include "util/timer.h"

namespace kbiplex {
namespace bench {
namespace {

std::vector<uint64_t> RandomWords(size_t n, Rng* rng) {
  std::vector<uint64_t> w(n);
  for (uint64_t& x : w) x = rng->Next();
  return w;
}

/// Times `reps` indirect calls of a kernel loop and returns seconds.
/// The checksum defeats dead-code elimination and doubles as an
/// agreement check between the two tables.
template <typename Fn>
double TimeLoop(size_t reps, uint64_t* checksum, Fn&& body) {
  WallTimer timer;
  uint64_t sum = 0;
  for (size_t i = 0; i < reps; ++i) sum += body();
  *checksum += sum;
  return timer.ElapsedSeconds();
}

void RecordKernel(BenchJsonWriter* json, const std::string& kernel,
                  size_t bits, const char* table, double seconds,
                  size_t reps, double speedup) {
  BenchJsonWriter::Record r;
  r.name = "simd/" + kernel + "/bits=" + std::to_string(bits) + "/" + table;
  r.dataset = "synthetic-words";
  r.algorithm = table;
  r.wall_seconds = seconds;
  r.work_units = reps;
  r.counters.emplace_back("bits", static_cast<double>(bits));
  if (speedup > 0) r.counters.emplace_back("speedup_vs_scalar", speedup);
  json->Add(std::move(r));
}

/// Workload sizes for the three tiers: --smoke (CI), quick (default),
/// --full.
struct BenchScale {
  size_t kernel_work;    // total words touched per kernel timing loop
  size_t graph_n;        // per-side vertices of the compressed workload
  uint64_t max_results;  // enumeration safety cap
};

void RunKernelBench(const BenchScale& scale, BenchJsonWriter* json) {
  const simd::Kernels& scalar = simd::Scalar();
  const simd::Kernels& native = simd::Native();
  std::printf("SIMD kernels: native table '%s'%s vs scalar\n", native.name,
              simd::ForcedScalar() ? " (KBIPLEX_FORCE_SCALAR active)" : "");
  std::printf("  %-22s %10s %14s %14s %8s\n", "kernel", "bits",
              "scalar (s)", "native (s)", "speedup");

  Rng rng(91);
  uint64_t checksum = 0;
  const size_t work = scale.kernel_work;
  for (size_t bits : {size_t{4096}, size_t{65536}}) {
    const size_t words = bits / 64;
    const std::vector<uint64_t> a = RandomWords(words, &rng);
    const std::vector<uint64_t> b = RandomWords(words, &rng);

    // IntersectCount: `reps` full-row AND+popcount sweeps per table.
    size_t reps = work / words;
    double ss = TimeLoop(reps, &checksum, [&] {
      return scalar.intersect_count(a.data(), b.data(), words);
    });
    double ns = TimeLoop(reps, &checksum, [&] {
      return native.intersect_count(a.data(), b.data(), words);
    });
    double speedup = ns > 0 ? ss / ns : 0;
    std::printf("  %-22s %10zu %14.3f %14.3f %7.2fx\n", "intersect_count",
                bits, ss, ns, speedup);
    RecordKernel(json, "intersect_count", bits, "scalar", ss, reps, 0);
    RecordKernel(json, "intersect_count", bits, "native", ns, reps, speedup);

    // RowConnCount: gather+test over a half-universe subset of probes.
    const std::vector<uint64_t> sample = rng.SampleDistinct(bits, bits / 2);
    const std::vector<uint32_t> subset(sample.begin(), sample.end());
    reps = work / subset.size();
    ss = TimeLoop(reps, &checksum, [&] {
      return scalar.row_conn_count(a.data(), subset.data(), subset.size());
    });
    ns = TimeLoop(reps, &checksum, [&] {
      return native.row_conn_count(a.data(), subset.data(), subset.size());
    });
    speedup = ns > 0 ? ss / ns : 0;
    std::printf("  %-22s %10zu %14.3f %14.3f %7.2fx\n", "row_conn_count",
                bits, ss, ns, speedup);
    RecordKernel(json, "row_conn_count", bits, "scalar", ss, reps, 0);
    RecordKernel(json, "row_conn_count", bits, "native", ns, reps, speedup);
  }
  std::printf("  (checksum %llu)\n\n",
              static_cast<unsigned long long>(checksum));
}

/// One timed enumeration returning the canonical solution set.
std::vector<Biplex> TimedRun(const BipartiteGraph& g,
                             const EnumerateRequest& req, double* seconds,
                             EnumerateStats* stats) {
  CollectingSink sink(/*sorted=*/true);
  WallTimer timer;
  *stats = Enumerator(g).Run(req, &sink);
  *seconds = timer.ElapsedSeconds();
  if (!stats->ok()) {
    std::fprintf(stderr, "FATAL: run rejected: %s\n", stats->error.c_str());
    std::abort();
  }
  return sink.Take();
}

void RunCompressedBench(const BenchScale& scale, BenchJsonWriter* json) {
  // Sparse workload: a wide, low-degree random graph. A dense row over a
  // multi-thousand-vertex opposite side costs hundreds of bytes; the same
  // row as a sorted id run costs tens — the regime the budget planner is
  // built for.
  const size_t n = scale.graph_n;
  const size_t edges = n * 8;
  Rng rng(92);
  const BipartiteGraph base = ErdosRenyiBipartite(n, n, edges, &rng);

  BipartiteGraph dense_g(base);
  dense_g.BuildAdjacencyIndex();
  const AdjacencyIndex* dense_index = dense_g.adjacency_index();
  const size_t dense_bytes = dense_index->MemoryBytes();
  if (dense_bytes == 0) {
    std::fprintf(stderr, "FATAL: dense index indexed no rows\n");
    std::abort();
  }

  BipartiteGraph comp_g(base);
  comp_g.BuildAdjacencyIndex(AdjacencyIndex::kAutoThreshold,
                             dense_bytes / 2);
  const AdjacencyIndex* comp_index = comp_g.adjacency_index();
  const size_t comp_bytes = comp_index->MemoryBytes();
  const AdjacencyIndex::RepresentationStats& rep =
      comp_index->representation_stats();
  const double ratio = static_cast<double>(comp_bytes) /
                       static_cast<double>(dense_bytes);

  std::printf("compressed rows: %zux%zu, %zu edges, budget = dense/2\n", n,
              n, base.NumEdges());
  std::printf("  %-12s %14s %12s %12s %12s\n", "index", "bytes", "dense",
              "sparse", "dropped");
  const AdjacencyIndex::RepresentationStats& dense_rep =
      dense_index->representation_stats();
  std::printf("  %-12s %14zu %12zu %12zu %12zu\n", "all-dense", dense_bytes,
              dense_rep.dense_rows, dense_rep.sparse_rows,
              dense_rep.dropped_rows);
  std::printf("  %-12s %14zu %12zu %12zu %12zu   (%.1f%% of dense)\n",
              "budgeted", comp_bytes, rep.dense_rows, rep.sparse_rows,
              rep.dropped_rows, 100.0 * ratio);
  if (ratio > 0.5) {
    std::fprintf(stderr, "FATAL: budgeted index used %.1f%% of dense\n",
                 100.0 * ratio);
    std::abort();
  }

  // Identical solution sets through the facade, dense vs budgeted index.
  EnumerateRequest req = MakeRequest("itraversal", 1, scale.max_results, 0);
  req.theta_left = 3;
  req.theta_right = 3;
  double dense_seconds = 0, comp_seconds = 0;
  EnumerateStats dense_stats, comp_stats;
  const std::vector<Biplex> dense_solutions =
      TimedRun(dense_g, req, &dense_seconds, &dense_stats);
  const std::vector<Biplex> comp_solutions =
      TimedRun(comp_g, req, &comp_seconds, &comp_stats);
  if (dense_solutions != comp_solutions) {
    std::fprintf(stderr,
                 "FATAL: solution sets differ (dense %zu, budgeted %zu)\n",
                 dense_solutions.size(), comp_solutions.size());
    std::abort();
  }
  std::printf("  enumeration: %zu solutions; dense %.3fs, budgeted %.3fs "
              "(identical sets)\n\n",
              dense_solutions.size(), dense_seconds, comp_seconds);

  for (const char* variant : {"all-dense", "budgeted"}) {
    const bool is_dense = std::string(variant) == "all-dense";
    BenchJsonWriter::Record r;
    r.name = std::string("compressed/") + variant;
    r.dataset = "er-sparse-" + std::to_string(n);
    r.algorithm = req.algorithm;
    r.k_left = r.k_right = 1;
    r.wall_seconds = is_dense ? dense_seconds : comp_seconds;
    r.solutions = dense_solutions.size();
    r.completed = true;
    r.counters.emplace_back("index_bytes", static_cast<double>(
                                               is_dense ? dense_bytes
                                                        : comp_bytes));
    if (!is_dense) {
      r.counters.emplace_back("bytes_ratio_vs_dense", ratio);
      r.counters.emplace_back("sparse_rows",
                              static_cast<double>(rep.sparse_rows));
      r.counters.emplace_back("dropped_rows",
                              static_cast<double>(rep.dropped_rows));
    }
    json->Add(std::move(r));
  }
}

}  // namespace
}  // namespace bench
}  // namespace kbiplex

int main(int argc, char** argv) {
  using namespace kbiplex::bench;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") smoke = true;
  }
  const bool quick = QuickMode(argc, argv);
  BenchScale scale;
  if (smoke) {
    scale = {size_t{1} << 22, 300, 2000};
  } else if (quick) {
    scale = {size_t{1} << 24, 1200, 20000};
  } else {
    scale = {size_t{1} << 27, 3000, 100000};
  }
  BenchJsonWriter json("adjacency");
  RunKernelBench(scale, &json);
  RunCompressedBench(scale, &json);
  if (!json.Write()) {
    std::fprintf(stderr, "warning: could not write %s\n",
                 json.path().c_str());
  }
  std::printf("wrote %s\n", json.path().c_str());
  return 0;
}
