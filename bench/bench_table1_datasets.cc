// Table 1: the real-dataset summary. Prints the paper's original sizes
// next to the synthetic stand-ins this repository uses offline.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "util/table.h"

using namespace kbiplex;
using namespace kbiplex::bench;

int main(int argc, char** argv) {
  (void)argc;
  (void)argv;
  std::cout << "== Table 1: real datasets and their offline stand-ins ==\n";
  BenchJsonWriter writer("table1_datasets");
  TextTable t({"Name", "Category", "|L| (paper)", "|R| (paper)",
               "|E| (paper)", "scale", "|L| (ours)", "|R| (ours)",
               "|E| (ours)", "density"});
  for (const DatasetSpec& spec : StandInDatasets()) {
    BipartiteGraph g = MakeDataset(spec);
    BenchJsonWriter::Record r;
    r.name = "standin/" + spec.name;
    r.dataset = spec.name;
    r.algorithm = "dataset";
    r.counters.emplace_back("num_left", static_cast<double>(g.NumLeft()));
    r.counters.emplace_back("num_right", static_cast<double>(g.NumRight()));
    r.counters.emplace_back("num_edges", static_cast<double>(g.NumEdges()));
    r.counters.emplace_back("density", g.EdgeDensity());
    writer.Add(std::move(r));
    t.AddRow({spec.name, spec.category, std::to_string(spec.paper_left),
              std::to_string(spec.paper_right),
              std::to_string(spec.paper_edges),
              "1/" + std::to_string(spec.scale), std::to_string(g.NumLeft()),
              std::to_string(g.NumRight()), std::to_string(g.NumEdges()),
              FormatDouble(g.EdgeDensity(), 2)});
  }
  t.Print(std::cout);
  std::cout << "\nStand-ins are seeded synthetic graphs (see DESIGN.md); "
               "the four smallest are full-size, larger ones are scaled by "
               "the listed factor.\n";
  return 0;
}
