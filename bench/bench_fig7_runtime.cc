// Figure 7: running time of iMB, FaPlexen (graph inflation), bTraversal
// and iTraversal when returning the first 1,000 MBPs.
//   (a) across datasets at k = 1,
//   (b)(c) varying k on the Writer and DBLP stand-ins,
//   (d)(e) varying the number of returned MBPs.
// Entries print INF when the per-run time budget was exhausted and OUT
// when the inflation baseline refuses the memory blow-up, mirroring the
// paper's INF/OUT markers. All four algorithms run through the unified
// Enumerator facade, selected by registry name.
#include <iostream>
#include <string>

#include "bench_common.h"
#include "util/table.h"

using namespace kbiplex;
using namespace kbiplex::bench;

namespace {

std::string Cell(BenchJsonWriter* writer, const std::string& row,
                 const std::string& dataset, const BipartiteGraph& g,
                 const std::string& algo, int k, uint64_t max_results,
                 double budget, size_t max_inflated_edges) {
  EnumerateRequest req = MakeRequest(algo, k, max_results, budget);
  if (algo == "inflation") {
    req.backend_options["max_inflated_edges"] =
        std::to_string(max_inflated_edges);
  }
  return BudgetCell(RunCountingLogged(writer, row + "/" + algo, dataset, g,
                                      req),
                    max_results);
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = QuickMode(argc, argv);
  const double budget = RunBudgetSeconds(quick);
  const uint64_t kFirst = 1000;
  // Mirror the paper's OUT threshold proportionally: FaPlexen dies on
  // Marvel's ~200M inflated edges; our guard is laptop-sized.
  const size_t kMaxInflatedEdges = 3'000'000;
  BenchJsonWriter writer("fig7_runtime");

  std::cout << "== Figure 7(a): runtime, first 1000 MBPs, k=1 ==\n";
  TextTable ta({"Dataset", "iMB", "FaPlexen", "bTraversal", "iTraversal"});
  for (const DatasetSpec& spec : StandInDatasets()) {
    BipartiteGraph g = MakeDataset(spec);
    auto cell = [&](const std::string& algo) {
      return Cell(&writer, "a/first1000/k=1", spec.name, g, algo, 1, kFirst,
                  budget, kMaxInflatedEdges);
    };
    ta.AddRow({spec.name, cell("imb"), cell("inflation"),
               cell("btraversal"), cell("itraversal")});
  }
  ta.Print(std::cout);

  for (const char* name : {"Writer", "DBLP"}) {
    std::cout << "\n== Figure 7(b/c): runtime vs k (" << name
              << " stand-in, first 1000 MBPs) ==\n";
    BipartiteGraph g = MakeDataset(FindDataset(name));
    TextTable tk({"k", "bTraversal", "iTraversal"});
    for (int k = 1; k <= 5; ++k) {
      const std::string row = "bc/first1000/k=" + std::to_string(k);
      tk.AddRow({std::to_string(k),
                 Cell(&writer, row, name, g, "btraversal", k, kFirst,
                      budget, 0),
                 Cell(&writer, row, name, g, "itraversal", k, kFirst,
                      budget, 0)});
    }
    tk.Print(std::cout);
  }

  for (const char* name : {"Writer", "DBLP"}) {
    std::cout << "\n== Figure 7(d/e): runtime vs #returned MBPs (" << name
              << " stand-in, k=1) ==\n";
    BipartiteGraph g = MakeDataset(FindDataset(name));
    TextTable tn({"#MBPs", "bTraversal", "iTraversal"});
    for (uint64_t n = 1; n <= 100000; n *= 10) {
      const std::string row = "de/first" + std::to_string(n) + "/k=1";
      tn.AddRow({std::to_string(n),
                 Cell(&writer, row, name, g, "btraversal", 1, n, budget, 0),
                 Cell(&writer, row, name, g, "itraversal", 1, n, budget,
                      0)});
    }
    tn.Print(std::cout);
  }

  std::cout << "\n(*: time budget of " << budget
            << "s hit after partial output; INF: budget hit before any "
               "output; OUT: inflation exceeded the memory guard)\n";
  return 0;
}
