// Figure 7: running time of iMB, FaPlexen (graph inflation), bTraversal
// and iTraversal when returning the first 1,000 MBPs.
//   (a) across datasets at k = 1,
//   (b)(c) varying k on the Writer and DBLP stand-ins,
//   (d)(e) varying the number of returned MBPs.
// Entries print INF when the per-run time budget was exhausted and OUT
// when the inflation baseline refuses the memory blow-up, mirroring the
// paper's INF/OUT markers.
#include <cstdio>
#include <iostream>
#include <string>

#include "baselines/imb.h"
#include "baselines/inflation_enum.h"
#include "bench_common.h"
#include "core/btraversal.h"
#include "util/table.h"
#include "util/timer.h"

using namespace kbiplex;
using namespace kbiplex::bench;

namespace {

struct RunResult {
  double seconds = 0;
  bool finished = true;
  bool out = false;  // inflation refused (memory guard)
  uint64_t results = 0;
};

std::string Cell(const RunResult& r) {
  if (r.out) return "OUT";
  if (!r.finished && r.results == 0) return "INF";
  std::string s = FormatSeconds(r.seconds);
  if (!r.finished) s += "*";  // budget hit after partial output
  return s;
}

RunResult RunImbBudget(const BipartiteGraph& g, int k, uint64_t max_results,
                       double budget) {
  ImbOptions opts;
  opts.k = k;
  opts.max_results = max_results;
  opts.time_budget_seconds = budget;
  WallTimer t;
  uint64_t n = 0;
  ImbStats stats = RunImb(g, opts, [&](const Biplex&) {
    ++n;
    return true;
  });
  // Reaching the result cap counts as success for "first N MBPs" runs.
  const bool finished = stats.completed || n >= max_results;
  return {t.ElapsedSeconds(), finished, false, n};
}

RunResult RunFaPlexen(const BipartiteGraph& g, int k, uint64_t max_results,
                      double budget, size_t max_inflated_edges) {
  InflationBaselineOptions opts;
  opts.k = k;
  opts.max_results = max_results;
  opts.time_budget_seconds = budget;
  opts.max_inflated_edges = max_inflated_edges;
  WallTimer t;
  uint64_t n = 0;
  auto stats = RunInflationBaseline(g, opts, [&](const Biplex&) {
    ++n;
    return true;
  });
  const bool finished = stats.completed || n >= max_results;
  return {t.ElapsedSeconds(), finished, stats.out_of_budget, n};
}

RunResult RunEngine(const BipartiteGraph& g, TraversalOptions opts,
                    uint64_t max_results, double budget) {
  opts.max_results = max_results;
  opts.time_budget_seconds = budget;
  WallTimer t;
  uint64_t n = 0;
  TraversalStats stats = RunTraversal(g, opts, [&](const Biplex&) {
    ++n;
    return true;
  });
  const bool finished =
      stats.completed || (max_results != 0 && n >= max_results);
  return {t.ElapsedSeconds(), finished, false, n};
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = QuickMode(argc, argv);
  const double budget = RunBudgetSeconds(quick);
  const uint64_t kFirst = 1000;
  // Mirror the paper's OUT threshold proportionally: FaPlexen dies on
  // Marvel's ~200M inflated edges; our guard is laptop-sized.
  const size_t kMaxInflatedEdges = 3'000'000;

  std::cout << "== Figure 7(a): runtime, first 1000 MBPs, k=1 ==\n";
  TextTable ta({"Dataset", "iMB", "FaPlexen", "bTraversal", "iTraversal"});
  for (const DatasetSpec& spec : StandInDatasets()) {
    BipartiteGraph g = MakeDataset(spec);
    RunResult imb = RunImbBudget(g, 1, kFirst, budget);
    RunResult fap = RunFaPlexen(g, 1, kFirst, budget, kMaxInflatedEdges);
    RunResult bt = RunEngine(g, MakeBTraversalOptions(1), kFirst, budget);
    RunResult it = RunEngine(g, MakeITraversalOptions(1), kFirst, budget);
    ta.AddRow({spec.name, Cell(imb), Cell(fap), Cell(bt), Cell(it)});
  }
  ta.Print(std::cout);

  for (const char* name : {"Writer", "DBLP"}) {
    std::cout << "\n== Figure 7(b/c): runtime vs k (" << name
              << " stand-in, first 1000 MBPs) ==\n";
    BipartiteGraph g = MakeDataset(FindDataset(name));
    TextTable tk({"k", "bTraversal", "iTraversal"});
    for (int k = 1; k <= 5; ++k) {
      RunResult bt = RunEngine(g, MakeBTraversalOptions(k), kFirst, budget);
      RunResult it = RunEngine(g, MakeITraversalOptions(k), kFirst, budget);
      tk.AddRow({std::to_string(k), Cell(bt), Cell(it)});
    }
    tk.Print(std::cout);
  }

  for (const char* name : {"Writer", "DBLP"}) {
    std::cout << "\n== Figure 7(d/e): runtime vs #returned MBPs (" << name
              << " stand-in, k=1) ==\n";
    BipartiteGraph g = MakeDataset(FindDataset(name));
    TextTable tn({"#MBPs", "bTraversal", "iTraversal"});
    for (uint64_t n = 1; n <= 100000; n *= 10) {
      RunResult bt = RunEngine(g, MakeBTraversalOptions(1), n, budget);
      RunResult it = RunEngine(g, MakeITraversalOptions(1), n, budget);
      tn.AddRow({std::to_string(n), Cell(bt), Cell(it)});
    }
    tn.Print(std::cout);
  }

  std::cout << "\n(*: time budget of " << budget
            << "s hit after partial output; INF: budget hit before any "
               "output; OUT: inflation exceeded the memory guard)\n";
  return 0;
}
