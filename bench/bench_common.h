// Shared infrastructure of the figure/table reproduction harness: the
// offline stand-ins for the paper's Table 1 datasets and small helpers for
// budgeted runs.
//
// The KONECT datasets are not available offline, so each is replaced by a
// seeded synthetic graph with the same bipartite shape; the larger ones are
// scaled down (column "scale") to keep the whole suite laptop-fast. See
// DESIGN.md ("Substitutions") and EXPERIMENTS.md for the mapping.
#ifndef KBIPLEX_BENCH_BENCH_COMMON_H_
#define KBIPLEX_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "api/enumerator.h"
#include "graph/bipartite_graph.h"

namespace kbiplex {
namespace bench {

/// How a stand-in dataset is synthesized.
enum class DatasetKind {
  kErdosRenyi,      // dense small graphs (Divorce, Cfat)
  kPowerLaw,        // skewed sparse graphs (everything else)
};

/// One stand-in for a row of the paper's Table 1.
struct DatasetSpec {
  std::string name;      // the paper's dataset name
  std::string category;  // the paper's category column
  size_t num_left;
  size_t num_right;
  size_t num_edges;
  DatasetKind kind;
  double gamma_left = 3.0;   // user-side skew for kPowerLaw
  double gamma_right = 2.5;  // item-side skew for kPowerLaw
  uint64_t seed = 1;
  /// Denominator applied to the paper's original sizes (1 = full size).
  size_t scale = 1;
  /// The paper's original sizes, for the Table 1 printout.
  size_t paper_left = 0, paper_right = 0, paper_edges = 0;
};

/// The ten stand-ins mirroring Table 1 (Divorce .. Google).
std::vector<DatasetSpec> StandInDatasets();

/// Subset of StandInDatasets() used by the small-dataset experiments
/// (Figures 8 and 11): Divorce, Cfat, Crime, Opsahl.
std::vector<DatasetSpec> SmallDatasets();

/// Looks up a stand-in by paper name; aborts if unknown.
DatasetSpec FindDataset(const std::string& name);

/// Materializes the stand-in graph.
BipartiteGraph MakeDataset(const DatasetSpec& spec);

/// True if the benchmark should run in quick mode (default). Pass --full
/// on the command line for larger budgets.
bool QuickMode(int argc, char** argv);

/// Time budget per algorithm invocation in seconds.
double RunBudgetSeconds(bool quick);

/// Builds the request shape every figure harness uses: an algorithm name,
/// a uniform budget k, a result cap, and a wall-clock budget.
EnumerateRequest MakeRequest(const std::string& algorithm, int k,
                             uint64_t max_results, double budget_seconds);

/// Runs `request` on `g` through the facade, counting solutions without
/// materializing them. Aborts on rejected requests: a bench asking for an
/// impossible configuration is a bug in the bench.
EnumerateStats RunCounting(const BipartiteGraph& g,
                           const EnumerateRequest& request);

class BenchJsonWriter;

/// RunCounting plus a machine-readable record: the run is appended to
/// `writer` (see BenchJsonWriter::AddRun) under the row label `name` and
/// dataset `dataset`. The standard way a figure harness reports every cell
/// into its BENCH_*.json.
EnumerateStats RunCountingLogged(BenchJsonWriter* writer, std::string name,
                                 const std::string& dataset,
                                 const BipartiteGraph& g,
                                 const EnumerateRequest& request);

/// The paper's notion of a finished "first N MBPs" run: the enumeration
/// completed, or it stopped exactly because the result cap was reached.
bool FinishedFirstN(const EnumerateStats& stats, uint64_t max_results);

/// Formats a budgeted run the way the paper's tables mark outcomes:
/// "OUT" when inflation refused the memory blow-up, "INF" when the budget
/// expired before any output, the runtime otherwise ("*"-suffixed after
/// partial output).
std::string BudgetCell(const EnumerateStats& stats, uint64_t max_results);

/// Machine-readable benchmark results: accumulates per-run records and
/// writes them as `BENCH_<bench-name>.json` so the perf trajectory can be
/// tracked across commits. The output directory comes from the
/// KBIPLEX_BENCH_JSON_DIR environment variable (default: the working
/// directory). Schema:
///
///   {"bench": "<name>", "schema_version": 1, "records": [
///     {"name": "...", "dataset": "...", "algorithm": "...",
///      "k_left": 1, "k_right": 1, "threads": 1,
///      "wall_seconds": 0.12, "solutions": 10, "work_units": 42,
///      "completed": true, "counters": {"adjacency_tests": 1234, ...}},
///     ...]}
class BenchJsonWriter {
 public:
  struct Record {
    std::string name;       // row label, e.g. "dense/itraversal/accel"
    std::string dataset;
    std::string algorithm;
    int k_left = 1;
    int k_right = 1;
    int threads = 1;
    double wall_seconds = 0;
    uint64_t solutions = 0;
    uint64_t work_units = 0;
    bool completed = true;
    /// Free-form numeric counters (stats counters, derived ratios, ...).
    std::vector<std::pair<std::string, double>> counters;
  };

  explicit BenchJsonWriter(std::string bench_name);

  /// Writes the file on destruction (best effort) unless Write() already
  /// ran.
  ~BenchJsonWriter();

  void Add(Record record);

  /// Convenience: builds a record from a facade run, pulling the shared
  /// stats fields plus the traversal acceleration counters when present.
  void AddRun(std::string name, const std::string& dataset,
              const EnumerateRequest& request, const EnumerateStats& stats);

  /// Destination path (directory resolved at construction).
  const std::string& path() const { return path_; }

  /// Writes the accumulated records; true on success.
  bool Write();

 private:
  std::string bench_name_;
  std::string path_;
  std::vector<Record> records_;
  bool written_ = false;
};

}  // namespace bench
}  // namespace kbiplex

#endif  // KBIPLEX_BENCH_BENCH_COMMON_H_
