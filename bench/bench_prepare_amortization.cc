// Prepare/execute amortization benchmark: the cost of answering N queries
// over one graph through the one-shot Enumerate facade (every call
// rebuilds its adjacency index and rediscovers every artifact) versus one
// PreparedGraph::Prepare followed by N QuerySession executes (index built
// once, degeneracy renumbering applied once, engine scratch carried
// across queries).
//
// The workload is the dense synthetic large-MBP shape of
// bench_candidate_gen (scaled to keep the 10x one-shot loop laptop-fast):
// both paths run the identical request with adjacency_index=force, so the
// one-shot path pays an index build per call while the session path
// amortizes it — plus the renumbering win no one-shot call can access.
// Every run must deliver the same solution count; a mismatch aborts.
//
// Results print as a table and are recorded in
// BENCH_prepare_amortization.json; the session path's seconds INCLUDE the
// prepare, so the reported speedup is end-to-end honest.
//
// Flags: --smoke (tiny dataset for CI), --full (adds the 100-execute
// one-shot loop, which is slow by construction).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "api/prepared_graph.h"
#include "api/query_session.h"
#include "bench_common.h"
#include "graph/generators.h"
#include "util/random.h"
#include "util/timer.h"

namespace kbiplex {
namespace bench {
namespace {

struct Workload {
  std::string name;
  size_t num_left;
  size_t num_right;
  size_t num_edges;
  uint64_t seed;
  int k;
  size_t theta;
  uint64_t max_results;
};

EnumerateRequest WorkloadRequest(const Workload& w) {
  EnumerateRequest req = MakeRequest("itraversal", w.k, w.max_results, 0);
  req.theta_left = w.theta;
  req.theta_right = w.theta;
  // The acceptance configuration: force the bitset adjacency index in both
  // paths. One-shot calls build a throwaway engine-local index every time;
  // the session consumes the one attached at prepare time.
  req.backend_options["adjacency_index"] = "force";
  return req;
}

void RunWorkload(const Workload& w, const std::vector<uint64_t>& execute_counts,
                 BenchJsonWriter* json) {
  Rng rng(w.seed);
  const BipartiteGraph plain =
      ErdosRenyiBipartite(w.num_left, w.num_right, w.num_edges, &rng);
  const EnumerateRequest req = WorkloadRequest(w);

  std::printf("%s: %zux%zu, %zu edges, k=%d, theta=%zu, first %llu, "
              "adjacency_index=force\n",
              w.name.c_str(), plain.NumLeft(), plain.NumRight(),
              plain.NumEdges(), w.k, w.theta,
              static_cast<unsigned long long>(w.max_results));
  std::printf("  %-10s %14s %14s %16s %8s\n", "executes", "one-shot (s)",
              "session (s)", "prepare (s)", "speedup");

  for (uint64_t n : execute_counts) {
    // N independent one-shot calls on the raw graph.
    WallTimer one_shot_timer;
    uint64_t one_shot_solutions = 0;
    for (uint64_t i = 0; i < n; ++i) {
      one_shot_solutions = RunCounting(plain, req).solutions;
    }
    const double one_shot_seconds = one_shot_timer.ElapsedSeconds();

    // One prepare + N session executes. The prepare (renumbering + index
    // attach) happens inside the timed region: the speedup charges the
    // session path its full setup cost.
    WallTimer session_timer;
    PrepareOptions prep;
    prep.adjacency_index = AdjacencyAccelMode::kForce;
    prep.renumber = true;
    auto prepared = PreparedGraph::Prepare(BipartiteGraph(plain), prep);
    prepared->Warmup();
    const double prepare_seconds = session_timer.ElapsedSeconds();
    QuerySession session(prepared);
    uint64_t session_solutions = 0;
    for (uint64_t i = 0; i < n; ++i) {
      EnumerateStats stats;
      session_solutions = session.Count(req, &stats);
      if (!stats.ok()) {
        std::fprintf(stderr, "FATAL: session run rejected: %s\n",
                     stats.error.c_str());
        std::abort();
      }
    }
    const double session_seconds = session_timer.ElapsedSeconds();

    if (session_solutions != one_shot_solutions) {
      // Renumbering permutes ids but never the solution count.
      std::fprintf(
          stderr, "FATAL: session found %llu solutions, one-shot %llu\n",
          static_cast<unsigned long long>(session_solutions),
          static_cast<unsigned long long>(one_shot_solutions));
      std::abort();
    }

    const double speedup =
        session_seconds > 0 ? one_shot_seconds / session_seconds : 0;
    std::printf("  %-10llu %14.3f %14.3f %16.3f %7.2fx\n",
                static_cast<unsigned long long>(n), one_shot_seconds,
                session_seconds, prepare_seconds, speedup);

    for (const char* path : {"one-shot", "session"}) {
      BenchJsonWriter::Record r;
      r.name = w.name + "/" + path + "/executes=" + std::to_string(n);
      r.dataset = w.name;
      r.algorithm = req.algorithm;
      r.k_left = r.k_right = w.k;
      r.wall_seconds = std::strcmp(path, "one-shot") == 0
                           ? one_shot_seconds
                           : session_seconds;
      r.solutions = one_shot_solutions;
      r.completed = true;
      if (std::strcmp(path, "session") == 0) {
        r.counters.emplace_back("prepare_seconds", prepare_seconds);
        r.counters.emplace_back("speedup_vs_one_shot", speedup);
      }
      json->Add(std::move(r));
    }
  }
  std::printf("\n");
}

}  // namespace
}  // namespace bench
}  // namespace kbiplex

int main(int argc, char** argv) {
  using namespace kbiplex::bench;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const bool quick = QuickMode(argc, argv);

  Workload w;
  std::vector<uint64_t> execute_counts;
  if (smoke) {
    w = {"dense-smoke", 20, 20, 90, 41, 1, 3, 100};
    execute_counts = {1, 10};
  } else {
    // The dense large-MBP shape of bench_candidate_gen at a size where one
    // one-shot query costs a few hundred milliseconds, so the 10x one-shot
    // loop stays laptop-fast; --full adds the (slow by construction)
    // 100-execute one-shot loop.
    w = {"dense", 110, 110, 4840, 41, 1, 7, 150};
    execute_counts = quick ? std::vector<uint64_t>{1, 10}
                           : std::vector<uint64_t>{1, 10, 100};
  }

  BenchJsonWriter json("prepare_amortization");
  RunWorkload(w, execute_counts, &json);
  if (!json.Write()) return 1;
  std::printf("wrote %s\n", json.path().c_str());
  return 0;
}
