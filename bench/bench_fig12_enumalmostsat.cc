// Figure 12: comparing the EnumAlmostSat implementations — the four
// refinement combinations L{1,2}.0 x R{1,2}.0 and the inflation-based
// variant — on random almost-satisfying graphs built from real solutions.
// Following the paper: collect the first MBPs of a dataset with
// iTraversal, add a random outside left vertex to each, and time every
// implementation on the resulting almost-satisfying graphs.
//
// Also prints the Section 6.2 appendix comparison: left-anchored vs
// right-anchored initial solutions.
#include <iostream>
#include <string>
#include <vector>

#include "baselines/inflation_enum.h"
#include "bench_common.h"
#include "core/enum_almost_sat.h"
#include "util/random.h"
#include "util/table.h"
#include "util/timer.h"
// (Deadline comes from util/timer.h)

using namespace kbiplex;
using namespace kbiplex::bench;

namespace {

struct Workload {
  Biplex solution;
  VertexId v;  // left vertex to include
};

std::vector<Workload> BuildWorkloads(const BipartiteGraph& g, int k,
                                     size_t count, uint64_t seed) {
  EnumerateRequest req = MakeRequest("itraversal", k, count, 5);
  std::vector<Biplex> solutions;
  CallbackSink collect([&](const Biplex& b) {
    solutions.push_back(b);
    return true;
  });
  Enumerator(g).Run(req, &collect);
  Rng rng(seed);
  std::vector<Workload> out;
  for (const Biplex& b : solutions) {
    if (b.left.size() >= g.NumLeft()) continue;
    // Keep typical-size solutions: the handful of giant-R solutions near
    // H0 = (L0, R) make the unrefined L1.0/R1.0 variants astronomically
    // expensive (C(|R|, k) subsets) and would dominate the average.
    if (b.Size() > 300) continue;
    // Pick a random left vertex outside the solution.
    for (int attempt = 0; attempt < 64; ++attempt) {
      VertexId v = static_cast<VertexId>(rng.NextBelow(g.NumLeft()));
      if (!sorted::Contains(b.left, v)) {
        out.push_back({b, v});
        break;
      }
    }
  }
  return out;
}

double TimeVariant(const BipartiteGraph& g,
                   const std::vector<Workload>& work, int k, LRefinement l,
                   RRefinement r) {
  EnumAlmostSatOptions opts;
  opts.l_variant = l;
  opts.r_variant = r;
  Deadline deadline(8.0);  // hard cap per variant sweep
  opts.deadline = &deadline;
  WallTimer t;
  size_t done = 0;
  for (const Workload& w : work) {
    if (deadline.Expired()) break;
    EnumAlmostSat(g, w.solution, Side::kLeft, w.v, k, opts,
                  [](const Biplex&) { return true; });
    ++done;
  }
  if (done == 0) return t.ElapsedSeconds();
  return t.ElapsedSeconds() / static_cast<double>(done);
}

double TimeInflation(const BipartiteGraph& g,
                     const std::vector<Workload>& work, int k) {
  // The inflation implementation is orders of magnitude slower, so time a
  // bounded prefix of the workloads under a hard cap.
  Deadline deadline(8.0);
  WallTimer t;
  size_t done = 0;
  for (const Workload& w : work) {
    if (deadline.Expired() || done >= 25) break;
    // A single inflated k-plex enumeration on a large local graph can run
    // for hours; keep the inflation comparison to small local graphs.
    if (w.solution.Size() > 20) continue;
    EnumAlmostSatByInflation(g, w.solution, Side::kLeft, w.v, k,
                             [](const Biplex&) { return true; });
    ++done;
  }
  if (done == 0) return t.ElapsedSeconds();
  return t.ElapsedSeconds() / static_cast<double>(done);
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = QuickMode(argc, argv);
  const size_t workloads = quick ? 100 : 1000;
  const int kmax = quick ? 2 : 4;
  BenchJsonWriter writer("fig12_enumalmostsat");
  // Variant timings are averages over synthetic almost-satisfying-graph
  // workloads, not facade runs, so they are recorded as free-form records.
  auto record = [&writer](const std::string& name, const std::string& ds,
                          int k, size_t count, double avg_seconds) {
    BenchJsonWriter::Record r;
    r.name = name;
    r.dataset = ds;
    r.algorithm = "enum-almost-sat";
    r.k_left = r.k_right = k;
    r.wall_seconds = avg_seconds;
    r.counters.emplace_back("workloads", static_cast<double>(count));
    writer.Add(std::move(r));
  };

  for (const char* name : {"Writer", "DBLP"}) {
    std::cout << "== Figure 12 (" << name
              << " stand-in): avg EnumAlmostSat time over " << workloads
              << " random almost-satisfying graphs ==\n";
    BipartiteGraph g = MakeDataset(FindDataset(name));
    TextTable t({"k", "L1.0+R1.0", "L1.0+R2.0", "L2.0+R1.0", "L2.0+R2.0",
                 "Inflation"});
    for (int k = 1; k <= kmax; ++k) {
      auto work = BuildWorkloads(g, k, workloads, 900 + k);
      if (work.empty()) {
        t.AddRow({std::to_string(k), "-", "-", "-", "-", "-"});
        continue;
      }
      auto timed = [&](const char* label, LRefinement l, RRefinement rr) {
        const double avg = TimeVariant(g, work, k, l, rr);
        record(std::string(label) + "/k=" + std::to_string(k), name, k,
               work.size(), avg);
        return FormatSeconds(avg);
      };
      const double inflation_avg = TimeInflation(g, work, k);
      record("inflation/k=" + std::to_string(k), name, k, work.size(),
             inflation_avg);
      t.AddRow({std::to_string(k),
                timed("l10r10", LRefinement::kL10, RRefinement::kR10),
                timed("l10r20", LRefinement::kL10, RRefinement::kR20),
                timed("l20r10", LRefinement::kL20, RRefinement::kR10),
                timed("l20r20", LRefinement::kL20, RRefinement::kR20),
                FormatSeconds(inflation_avg)});
    }
    t.Print(std::cout);
    std::cout << "\n";
  }

  std::cout << "== Section 6.2 appendix: left- vs right-anchored initial "
               "solution (first 1000 MBPs) ==\n";
  TextTable ts({"Dataset", "k", "left-anchored (L0,R)",
                "right-anchored (L,R0)"});
  for (const char* name : {"Writer", "DBLP"}) {
    BipartiteGraph g = MakeDataset(FindDataset(name));
    for (int k = 1; k <= 2; ++k) {
      EnumerateRequest left =
          MakeRequest("itraversal", k, 1000, RunBudgetSeconds(quick));
      EnumerateRequest right = left;
      right.backend_options["anchored_side"] = "right";
      const std::string row = "anchored/k=" + std::to_string(k);
      const double lsec =
          RunCountingLogged(&writer, row + "/left", name, g, left).seconds;
      const double rsec =
          RunCountingLogged(&writer, row + "/right", name, g, right).seconds;
      ts.AddRow({name, std::to_string(k), FormatSeconds(lsec),
                 FormatSeconds(rsec)});
    }
  }
  ts.Print(std::cout);
  return 0;
}
