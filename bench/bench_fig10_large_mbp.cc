// Figure 10: enumerating large MBPs (both sides >= θ) with k = 1,
// comparing the iMB baseline (with its size pruning) against the
// iTraversal extension of Section 5; both run after a (θ−k)-core
// pre-reduction, as in the paper.
#include <algorithm>
#include <iostream>
#include <string>

#include "bench_common.h"
#include "graph/core_decomposition.h"
#include "graph/generators.h"
#include "util/random.h"
#include "util/table.h"

using namespace kbiplex;
using namespace kbiplex::bench;

namespace {

struct Row {
  std::string imb;
  std::string itraversal;
  uint64_t count_imb = 0;
  uint64_t count_it = 0;
  bool complete_imb = false;
  bool complete_it = false;
};

Row RunTheta(BenchJsonWriter* writer, const std::string& dataset,
             const BipartiteGraph& g, int k, size_t theta, double budget) {
  const std::string row_name = "theta=" + std::to_string(theta);
  Row row;
  // iMB with size pruning on the (θ−k)-core.
  {
    const size_t alpha = theta > static_cast<size_t>(k)
                             ? theta - static_cast<size_t>(k)
                             : 0;
    InducedSubgraph core = AlphaBetaCoreSubgraph(g, alpha, alpha);
    EnumerateRequest req = MakeRequest("imb", k, 0, budget);
    req.theta_left = theta;
    req.theta_right = theta;
    EnumerateStats stats =
        RunCountingLogged(writer, row_name + "/imb-core", dataset,
                          core.graph, req);
    row.count_imb = stats.solutions;
    row.complete_imb = stats.completed;
    row.imb = stats.completed ? FormatSeconds(stats.seconds) : "INF";
  }
  // iTraversal extension (its backend performs the core reduction).
  {
    EnumerateRequest req = MakeRequest("large-mbp", k, 0, budget);
    req.theta_left = theta;
    req.theta_right = theta;
    EnumerateStats stats =
        RunCountingLogged(writer, row_name + "/large-mbp", dataset, g, req);
    row.count_it = stats.solutions;
    row.complete_it = stats.completed;
    row.itraversal =
        stats.completed ? FormatSeconds(stats.seconds) : "INF";
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = QuickMode(argc, argv);
  const double budget = RunBudgetSeconds(quick);
  BenchJsonWriter writer("fig10_large_mbp");

  for (const char* name : {"Writer", "DBLP"}) {
    std::cout << "== Figure 10 (" << name
              << " stand-in): enumerate MBPs with both sides >= theta, "
                 "k=1 ==\n";
    // The scaled power-law stand-ins lack the large cohesive author groups
    // of the real affiliation graphs, so plant a few dense communities —
    // the structures whose retrieval this experiment measures (documented
    // substitution, DESIGN.md §7).
    BipartiteGraph g = MakeDataset(FindDataset(name));
    Rng rng(404);
    g = PlantDenseBlock(g, 8, 8, 0.9, &rng);
    g = PlantDenseBlock(g, 10, 9, 0.9, &rng);
    g = PlantDenseBlock(g, 12, 12, 0.85, &rng);
    TextTable t({"theta", "iMB", "iTraversal", "#large MBPs"});
    for (size_t theta = 4; theta <= 7; ++theta) {
      Row row = RunTheta(&writer, name, g, 1, theta, budget);
      std::string count;
      if (row.complete_it) {
        count = std::to_string(row.count_it);
        if (row.complete_imb && row.count_imb != row.count_it) {
          count += " (iMB disagrees: " + std::to_string(row.count_imb) + ")";
        }
      } else {
        count = ">=" + std::to_string(std::max(row.count_it, row.count_imb)) +
                " (partial)";
      }
      t.AddRow({std::to_string(theta), row.imb, row.itraversal, count});
    }
    t.Print(std::cout);
    std::cout << "\n";
  }
  std::cout << "(runtime should decrease with theta as the (θ−k)-core "
               "shrinks; INF: budget of "
            << budget << "s expired)\n";
  return 0;
}
