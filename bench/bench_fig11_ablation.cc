// Figure 11: bTraversal vs iTraversal ablation. Measures the number of
// links of the (sparsified) solution graph and the running time for
//   bTraversal, iTraversal-ES-RS, iTraversal-ES, iTraversal
// on the small datasets (a)(b) and varying k on Divorce (c)(d). All four
// configurations share the L2.0+R2.0 EnumAlmostSat for fair comparison,
// exactly as the paper does. Runs hitting the link cap print UPP, runs
// hitting the time budget print INF.
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "util/table.h"

using namespace kbiplex;
using namespace kbiplex::bench;

namespace {

struct Cells {
  std::string links;
  std::string seconds;
};

Cells RunConfig(BenchJsonWriter* writer, const std::string& row,
                const std::string& dataset, const BipartiteGraph& g,
                const std::string& algo, int k, double budget,
                uint64_t max_links) {
  EnumerateRequest req = MakeRequest(algo, k, 0, budget);
  req.max_links = max_links;
  EnumerateStats stats =
      RunCountingLogged(writer, row + "/" + algo, dataset, g, req);
  const uint64_t links = stats.work_units;  // solution-graph links
  Cells c;
  if (links >= max_links) {
    c.links = "UPP";
    c.seconds = "INF";
  } else if (!stats.completed) {
    c.links = ">" + std::to_string(links);
    c.seconds = "INF";
  } else {
    c.links = std::to_string(links);
    c.seconds = FormatSeconds(stats.seconds);
  }
  return c;
}

// Display name -> registry name of the four Figure 11 configurations,
// weakest to strongest.
std::vector<std::pair<std::string, std::string>> Configs() {
  return {
      {"bTraversal", "btraversal"},
      {"iTraversal-ES-RS", "itraversal-es-rs"},
      {"iTraversal-ES", "itraversal-es"},
      {"iTraversal", "itraversal"},
  };
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = QuickMode(argc, argv);
  const double budget = RunBudgetSeconds(quick);
  const uint64_t kUpp = quick ? 20'000'000 : 1'000'000'000;
  BenchJsonWriter writer("fig11_ablation");

  std::cout << "== Figure 11(a)(b): solution-graph links and runtime "
               "(k=1) ==\n";
  TextTable t({"Dataset", "Config", "#links", "time (s)"});
  for (const DatasetSpec& spec : SmallDatasets()) {
    BipartiteGraph g = MakeDataset(spec);
    for (const auto& [name, algo] : Configs()) {
      Cells c = RunConfig(&writer, "ab/k=1", spec.name, g, algo, 1,
                          budget, kUpp);
      t.AddRow({spec.name, name, c.links, c.seconds});
    }
  }
  t.Print(std::cout);

  std::cout << "\n== Figure 11(c)(d): varying k (Divorce stand-in) ==\n";
  BipartiteGraph divorce = MakeDataset(FindDataset("Divorce"));
  TextTable tk({"k", "Config", "#links", "time (s)"});
  const int kmax = quick ? 3 : 4;
  for (int k = 1; k <= kmax; ++k) {
    for (const auto& [name, algo] : Configs()) {
      Cells c = RunConfig(&writer, "cd/k=" + std::to_string(k), "Divorce",
                          divorce, algo, k, budget, kUpp);
      tk.AddRow({std::to_string(k), name, c.links, c.seconds});
    }
  }
  tk.Print(std::cout);

  std::cout << "\n(UPP: link cap of " << kUpp
            << " reached; INF: time budget of " << budget
            << "s expired; links shrink as techniques stack up)\n";
  return 0;
}
