// Figure 9: scalability on synthetic Erdős–Rényi bipartite graphs,
// returning the first 1,000 MBPs with k = 1.
//   (a) varying the number of vertices at edge density 10,
//   (b) varying the edge density at a fixed vertex count.
// Edge density is the paper's |E| / (|L| + |R|).
#include <iostream>
#include <string>

#include "bench_common.h"
#include "graph/generators.h"
#include "util/random.h"
#include "util/table.h"

using namespace kbiplex;
using namespace kbiplex::bench;

namespace {

std::string RunCell(BenchJsonWriter* writer, const std::string& row,
                    const std::string& dataset, const BipartiteGraph& g,
                    const std::string& algo, double budget) {
  EnumerateStats stats =
      RunCountingLogged(writer, row + "/" + algo, dataset, g,
                        MakeRequest(algo, 1, 1000, budget));
  if (!stats.completed && stats.solutions < 1000 &&
      stats.seconds >= budget) {
    return "INF";
  }
  return FormatSeconds(stats.seconds);
}

BipartiteGraph MakeEr(size_t vertices, double density, uint64_t seed) {
  Rng rng(seed);
  const size_t nl = vertices / 2;
  const size_t nr = vertices - nl;
  const size_t edges = static_cast<size_t>(density * vertices);
  return ErdosRenyiBipartite(nl, nr, edges, &rng);
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = QuickMode(argc, argv);
  const double budget = RunBudgetSeconds(quick);
  BenchJsonWriter writer("fig9_synthetic");

  std::cout << "== Figure 9(a): varying #vertices (ER, density 10, k=1, "
               "first 1000 MBPs) ==\n";
  TextTable ta({"#vertices", "bTraversal", "iTraversal"});
  std::vector<size_t> sizes = quick
                                  ? std::vector<size_t>{10'000, 100'000,
                                                        1'000'000}
                                  : std::vector<size_t>{10'000, 100'000,
                                                        1'000'000,
                                                        10'000'000};
  for (size_t n : sizes) {
    BipartiteGraph g = MakeEr(n, 10.0, 42 + n);
    const std::string ds = "er/n=" + std::to_string(n) + "/d=10";
    ta.AddRow({std::to_string(n),
               RunCell(&writer, "a/first1000/k=1", ds, g, "btraversal",
                       budget),
               RunCell(&writer, "a/first1000/k=1", ds, g, "itraversal",
                       budget)});
  }
  ta.Print(std::cout);

  std::cout << "\n== Figure 9(b): varying edge density (ER, "
            << (quick ? 20'000 : 100'000)
            << " vertices, k=1, first 1000 MBPs) ==\n";
  const size_t fixed_n = quick ? 20'000 : 100'000;
  TextTable tb({"density", "bTraversal", "iTraversal"});
  for (double density : {0.1, 1.0, 10.0, 100.0}) {
    BipartiteGraph g = MakeEr(fixed_n, density, 77);
    const std::string ds =
        "er/n=" + std::to_string(fixed_n) + "/d=" + FormatDouble(density, 1);
    tb.AddRow({FormatDouble(density, 1),
               RunCell(&writer, "b/first1000/k=1", ds, g, "btraversal",
                       budget),
               RunCell(&writer, "b/first1000/k=1", ds, g, "itraversal",
                       budget)});
  }
  tb.Print(std::cout);

  std::cout << "\n(INF: " << budget
            << "s budget expired before 1000 MBPs were returned)\n";
  return 0;
}
