// Candidate-generation benchmark: measures the hot-path acceleration of
// the traversal engines on dense synthetic workloads — the hybrid bitset
// adjacency index, the incrementally maintained 2-hop candidate
// generator, and the degeneracy renumbering pass — against the seed
// full-scan configuration. Every configuration enumerates the exact same
// solutions (asserted), so wall-clock ratios are apples to apples.
//
// Results print as a table and are recorded machine-readably in
// BENCH_candidate_gen.json (see bench_common.h for the schema).
//
// Flags: --smoke (tiny datasets for CI), --full (bigger budgets).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "graph/generators.h"
#include "graph/renumber.h"
#include "util/random.h"

namespace kbiplex {
namespace bench {
namespace {

struct Workload {
  std::string name;
  size_t num_left;
  size_t num_right;
  size_t num_edges;
  uint64_t seed;
  int k;
  size_t theta;          // 0 = plain enumeration (2-hop gate disengaged)
  uint64_t max_results;  // first-N workload keeps runs bounded
};

struct Config {
  const char* name;
  bool indexed;     // run on the graph with an attached adjacency index
  bool renumbered;  // run on the degeneracy-renumbered copy
  const char* candidate_gen;
  const char* adjacency_index;
};

constexpr Config kConfigs[] = {
    {"seed", false, false, "scan", "off"},
    {"bitset", true, false, "scan", "auto"},
    {"twohop", false, false, "twohop", "off"},
    {"full", true, false, "twohop", "auto"},
    {"full+renum", true, true, "twohop", "auto"},
};

void RunWorkload(const Workload& w, double budget_seconds,
                 BenchJsonWriter* json) {
  Rng rng(w.seed);
  BipartiteGraph plain =
      ErdosRenyiBipartite(w.num_left, w.num_right, w.num_edges, &rng);
  BipartiteGraph indexed = plain;
  indexed.BuildAdjacencyIndex();
  RenumberedGraph renum = RenumberByDegeneracy(indexed);

  std::printf("%s: %zux%zu, %zu edges, k=%d, theta=%zu, first %llu\n",
              w.name.c_str(), plain.NumLeft(), plain.NumRight(),
              plain.NumEdges(), w.k, w.theta,
              static_cast<unsigned long long>(w.max_results));
  std::printf("  %-12s %10s %10s %12s %12s %14s %8s\n", "config",
              "seconds", "solutions", "cand_gen", "cand_pruned",
              "adj_tests", "speedup");

  double seed_seconds = 0;
  uint64_t seed_solutions = 0;
  bool seed_completed = false;
  for (const Config& c : kConfigs) {
    EnumerateRequest req =
        MakeRequest("itraversal", w.k, w.max_results, budget_seconds);
    req.theta_left = w.theta;
    req.theta_right = w.theta;
    req.backend_options["candidate_gen"] = c.candidate_gen;
    req.backend_options["adjacency_index"] = c.adjacency_index;
    const BipartiteGraph& g =
        c.renumbered ? renum.graph : (c.indexed ? indexed : plain);
    EnumerateStats stats = RunCounting(g, req);

    if (std::strcmp(c.name, "seed") == 0) {
      seed_seconds = stats.seconds;
      seed_solutions = stats.solutions;
      seed_completed = FinishedFirstN(stats, w.max_results);
    } else if (seed_completed && FinishedFirstN(stats, w.max_results) &&
               stats.solutions != seed_solutions) {
      // Renumbering permutes ids but never the solution count; any other
      // configuration must match the seed run exactly.
      std::fprintf(stderr,
                   "FATAL: %s/%s found %llu solutions, seed found %llu\n",
                   w.name.c_str(), c.name,
                   static_cast<unsigned long long>(stats.solutions),
                   static_cast<unsigned long long>(seed_solutions));
      std::abort();
    }
    const double speedup =
        stats.seconds > 0 ? seed_seconds / stats.seconds : 0;
    if (!stats.traversal.has_value()) {
      // RunCounting aborts on rejected requests, so a missing detail
      // block means the backend wiring changed underneath the bench.
      std::fprintf(stderr, "FATAL: %s/%s returned no traversal stats\n",
                   w.name.c_str(), c.name);
      std::abort();
    }
    const TraversalStats& t = *stats.traversal;
    std::printf("  %-12s %10.3f %10llu %12llu %12llu %14llu %7.2fx\n",
                c.name, stats.seconds,
                static_cast<unsigned long long>(stats.solutions),
                static_cast<unsigned long long>(t.candidates_generated),
                static_cast<unsigned long long>(t.candidates_pruned),
                static_cast<unsigned long long>(
                    t.local_stats.adjacency_tests),
                speedup);

    std::string row = w.name + "/" + c.name;
    json->AddRun(row, w.name, req, stats);
    json->Add([&] {
      BenchJsonWriter::Record r;
      r.name = row + "/speedup";
      r.dataset = w.name;
      r.algorithm = "itraversal";
      r.k_left = r.k_right = w.k;
      r.wall_seconds = stats.seconds;
      r.solutions = stats.solutions;
      r.completed = stats.completed;
      r.counters.emplace_back("speedup_vs_seed", speedup);
      return r;
    }());
  }
  std::printf("\n");
}

}  // namespace
}  // namespace bench
}  // namespace kbiplex

int main(int argc, char** argv) {
  using namespace kbiplex::bench;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const bool quick = QuickMode(argc, argv);
  const double budget = quick ? 120.0 : 600.0;

  std::vector<Workload> workloads;
  if (smoke) {
    workloads.push_back({"dense-smoke", 20, 20, 90, 41, 1, 3, 100});
    workloads.push_back({"plain-smoke", 16, 16, 60, 42, 1, 0, 100});
  } else {
    // The dense synthetic workload: average degree 60, size thresholds
    // above the budget so the 2-hop gate engages. First-N keeps the run
    // bounded (complete enumeration is combinatorial at this density);
    // all non-renumbered configurations perform the identical traversal,
    // so their ratios are exact.
    workloads.push_back(
        {"dense-large-mbp", 150, 150, 9000, 41, 1, 8, 200});
    // Plain full enumeration (gate disengaged): isolates the bitset
    // adjacency + workspace/arena gains.
    workloads.push_back({"dense-full-enum", 40, 40, 520, 42, 1, 0, 4000});
  }

  BenchJsonWriter json("candidate_gen");
  for (const Workload& w : workloads) RunWorkload(w, budget, &json);
  if (!json.Write()) return 1;
  std::printf("wrote %s\n", json.path().c_str());
  return 0;
}
