#include "bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "graph/generators.h"
#include "util/json.h"
#include "util/random.h"
#include "util/table.h"

namespace kbiplex {
namespace bench {
namespace {

DatasetSpec Spec(const char* name, const char* category, size_t pl,
                 size_t pr, size_t pe, size_t scale, DatasetKind kind,
                 uint64_t seed) {
  DatasetSpec s;
  s.name = name;
  s.category = category;
  s.paper_left = pl;
  s.paper_right = pr;
  s.paper_edges = pe;
  s.scale = scale;
  s.num_left = pl / scale;
  s.num_right = pr / scale;
  s.num_edges = pe / scale;
  s.kind = kind;
  s.seed = seed;
  return s;
}

}  // namespace

std::vector<DatasetSpec> StandInDatasets() {
  // The four smallest datasets keep their original sizes; the rest are
  // scaled down so the full suite runs in seconds. Edge counts scale with
  // the vertex counts to preserve edge density |E|/(|L|+|R|).
  return {
      Spec("Divorce", "HumanSocial", 9, 50, 225, 1, DatasetKind::kErdosRenyi,
           11),
      Spec("Cfat", "Miscellaneous", 100, 100, 802, 1,
           DatasetKind::kErdosRenyi, 12),
      Spec("Crime", "Social", 551, 829, 1476, 1, DatasetKind::kPowerLaw, 13),
      Spec("Opsahl", "Authorship", 2865, 4558, 16910, 1,
           DatasetKind::kPowerLaw, 14),
      Spec("Marvel", "Collaboration", 19428, 6486, 96662, 4,
           DatasetKind::kPowerLaw, 15),
      Spec("Writer", "Affiliation", 89356, 46213, 144340, 8,
           DatasetKind::kPowerLaw, 16),
      Spec("Actors", "Affiliation", 392400, 127823, 1470404, 40,
           DatasetKind::kPowerLaw, 17),
      Spec("IMDB", "Communication", 428440, 896308, 3782463, 60,
           DatasetKind::kPowerLaw, 18),
      Spec("DBLP", "Authorship", 1425813, 4000150, 8649016, 200,
           DatasetKind::kPowerLaw, 19),
      Spec("Google", "Hyperlink", 17091929, 3108141, 14693125, 800,
           DatasetKind::kPowerLaw, 20),
  };
}

std::vector<DatasetSpec> SmallDatasets() {
  return {FindDataset("Divorce"), FindDataset("Cfat"), FindDataset("Crime"),
          FindDataset("Opsahl")};
}

DatasetSpec FindDataset(const std::string& name) {
  for (const DatasetSpec& s : StandInDatasets()) {
    if (s.name == name) return s;
  }
  std::fprintf(stderr, "unknown dataset: %s\n", name.c_str());
  std::abort();
}

BipartiteGraph MakeDataset(const DatasetSpec& spec) {
  Rng rng(spec.seed);
  switch (spec.kind) {
    case DatasetKind::kErdosRenyi:
      return ErdosRenyiBipartite(spec.num_left, spec.num_right,
                                 spec.num_edges, &rng);
    case DatasetKind::kPowerLaw:
      return PowerLawBipartiteAsym(spec.num_left, spec.num_right,
                                   spec.num_edges, spec.gamma_left,
                                   spec.gamma_right, &rng);
  }
  return {};
}

bool QuickMode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) return false;
  }
  return true;
}

double RunBudgetSeconds(bool quick) { return quick ? 5.0 : 120.0; }

EnumerateRequest MakeRequest(const std::string& algorithm, int k,
                             uint64_t max_results, double budget_seconds) {
  EnumerateRequest request;
  request.algorithm = algorithm;
  request.k = KPair::Uniform(k);
  request.max_results = max_results;
  request.time_budget_seconds = budget_seconds;
  return request;
}

EnumerateStats RunCounting(const BipartiteGraph& g,
                           const EnumerateRequest& request) {
  CountingSink sink;
  EnumerateStats stats = Enumerator(g).Run(request, &sink);
  if (!stats.ok()) {
    std::fprintf(stderr, "bench request rejected (%s): %s\n",
                 request.algorithm.c_str(), stats.error.c_str());
    std::abort();
  }
  return stats;
}

EnumerateStats RunCountingLogged(BenchJsonWriter* writer, std::string name,
                                 const std::string& dataset,
                                 const BipartiteGraph& g,
                                 const EnumerateRequest& request) {
  EnumerateStats stats = RunCounting(g, request);
  writer->AddRun(std::move(name), dataset, request, stats);
  return stats;
}

bool FinishedFirstN(const EnumerateStats& stats, uint64_t max_results) {
  return stats.completed ||
         (max_results != 0 && stats.solutions >= max_results);
}

std::string BudgetCell(const EnumerateStats& stats, uint64_t max_results) {
  if (stats.out_of_memory) return "OUT";
  const bool finished = FinishedFirstN(stats, max_results);
  if (!finished && stats.solutions == 0) return "INF";
  std::string s = FormatSeconds(stats.seconds);
  if (!finished) s += "*";
  return s;
}

using json::AppendDouble;
using json::AppendEscaped;

BenchJsonWriter::BenchJsonWriter(std::string bench_name)
    : bench_name_(std::move(bench_name)) {
  const char* dir = std::getenv("KBIPLEX_BENCH_JSON_DIR");
  path_ = dir != nullptr && dir[0] != '\0' ? std::string(dir) + "/" : "";
  path_ += "BENCH_" + bench_name_ + ".json";
}

BenchJsonWriter::~BenchJsonWriter() {
  if (!written_) Write();
}

void BenchJsonWriter::Add(Record record) {
  records_.push_back(std::move(record));
}

void BenchJsonWriter::AddRun(std::string name, const std::string& dataset,
                             const EnumerateRequest& request,
                             const EnumerateStats& stats) {
  Record r;
  r.name = std::move(name);
  r.dataset = dataset;
  r.algorithm = stats.algorithm.empty() ? request.algorithm
                                        : stats.algorithm;
  r.k_left = request.k.left;
  r.k_right = request.k.right;
  r.threads = request.threads;
  r.wall_seconds = stats.seconds;
  r.solutions = stats.solutions;
  r.work_units = stats.work_units;
  r.completed = stats.completed;
  const TraversalStats* t = nullptr;
  if (stats.traversal.has_value()) {
    t = &*stats.traversal;
  } else if (stats.large_mbp.has_value()) {
    t = &stats.large_mbp->traversal;
  }
  if (t != nullptr) {
    r.counters.emplace_back("almost_sat_graphs",
                            static_cast<double>(t->almost_sat_graphs));
    r.counters.emplace_back("candidates_generated",
                            static_cast<double>(t->candidates_generated));
    r.counters.emplace_back("candidates_pruned",
                            static_cast<double>(t->candidates_pruned));
    r.counters.emplace_back(
        "adjacency_tests",
        static_cast<double>(t->local_stats.adjacency_tests));
    r.counters.emplace_back("local_solutions",
                            static_cast<double>(t->local_solutions));
  }
  Add(std::move(r));
}

bool BenchJsonWriter::Write() {
  written_ = true;
  std::ostringstream os;
  os << "{\"bench\":";
  AppendEscaped(os, bench_name_);
  os << ",\"schema_version\":1,\"records\":[";
  for (size_t i = 0; i < records_.size(); ++i) {
    const Record& r = records_[i];
    if (i != 0) os << ",";
    os << "\n{\"name\":";
    AppendEscaped(os, r.name);
    os << ",\"dataset\":";
    AppendEscaped(os, r.dataset);
    os << ",\"algorithm\":";
    AppendEscaped(os, r.algorithm);
    os << ",\"k_left\":" << r.k_left << ",\"k_right\":" << r.k_right
       << ",\"threads\":" << r.threads << ",\"wall_seconds\":";
    AppendDouble(os, r.wall_seconds);
    os << ",\"solutions\":" << r.solutions
       << ",\"work_units\":" << r.work_units
       << ",\"completed\":" << (r.completed ? "true" : "false")
       << ",\"counters\":{";
    for (size_t c = 0; c < r.counters.size(); ++c) {
      if (c != 0) os << ",";
      AppendEscaped(os, r.counters[c].first);
      os << ":";
      AppendDouble(os, r.counters[c].second);
    }
    os << "}}";
  }
  os << "\n]}\n";
  std::ofstream out(path_);
  if (!out) {
    std::fprintf(stderr, "BenchJsonWriter: cannot write %s\n",
                 path_.c_str());
    return false;
  }
  out << os.str();
  out.flush();
  return out.good();
}

}  // namespace bench
}  // namespace kbiplex
