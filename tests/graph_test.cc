#include <algorithm>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "graph/bipartite_graph.h"
#include "graph/core_decomposition.h"
#include "graph/general_graph.h"
#include "graph/generators.h"
#include "graph/graph_io.h"
#include "graph/inflation.h"
#include "test_support.h"
#include "util/random.h"

namespace kbiplex {
namespace {

using testing_support::MakeGraph;

// --------------------------------------------------------- BipartiteGraph --

TEST(BipartiteGraph, EmptyGraph) {
  BipartiteGraph g;
  EXPECT_EQ(g.NumLeft(), 0u);
  EXPECT_EQ(g.NumRight(), 0u);
  EXPECT_EQ(g.NumEdges(), 0u);
}

TEST(BipartiteGraph, BasicAdjacency) {
  auto g = MakeGraph(3, 4, {{0, 1}, {0, 3}, {1, 0}, {2, 2}, {0, 0}});
  EXPECT_EQ(g.NumLeft(), 3u);
  EXPECT_EQ(g.NumRight(), 4u);
  EXPECT_EQ(g.NumEdges(), 5u);
  EXPECT_EQ(g.LeftDegree(0), 3u);
  EXPECT_EQ(g.LeftDegree(1), 1u);
  EXPECT_EQ(g.RightDegree(0), 2u);
  auto nb = g.LeftNeighbors(0);
  EXPECT_TRUE(std::is_sorted(nb.begin(), nb.end()));
  EXPECT_TRUE(g.HasEdge(0, 0));
  EXPECT_TRUE(g.HasEdge(2, 2));
  EXPECT_FALSE(g.HasEdge(2, 3));
}

TEST(BipartiteGraph, DuplicateEdgesCollapsed) {
  auto g = MakeGraph(2, 2, {{0, 0}, {0, 0}, {1, 1}, {1, 1}});
  EXPECT_EQ(g.NumEdges(), 2u);
}

TEST(BipartiteGraph, EdgesRoundTrip) {
  std::vector<BipartiteGraph::Edge> edges = {{0, 1}, {1, 0}, {2, 2}};
  auto g = MakeGraph(3, 3, edges);
  auto out = g.Edges();
  std::sort(edges.begin(), edges.end());
  EXPECT_EQ(out, edges);
}

TEST(BipartiteGraph, Transposed) {
  auto g = MakeGraph(2, 3, {{0, 2}, {1, 0}});
  auto t = g.Transposed();
  EXPECT_EQ(t.NumLeft(), 3u);
  EXPECT_EQ(t.NumRight(), 2u);
  EXPECT_TRUE(t.HasEdge(2, 0));
  EXPECT_TRUE(t.HasEdge(0, 1));
  EXPECT_EQ(t.NumEdges(), 2u);
}

TEST(BipartiteGraph, ConnAndDiscCounts) {
  auto g = MakeGraph(2, 4, {{0, 0}, {0, 1}, {0, 2}, {1, 3}});
  std::vector<VertexId> subset = {0, 2, 3};
  EXPECT_EQ(g.ConnCount(Side::kLeft, 0, subset), 2u);
  EXPECT_EQ(g.DiscCount(Side::kLeft, 0, subset), 1u);
  EXPECT_EQ(g.ConnCount(Side::kLeft, 1, subset), 1u);
  std::vector<VertexId> lsub = {0, 1};
  EXPECT_EQ(g.ConnCount(Side::kRight, 3, lsub), 1u);
  EXPECT_EQ(g.DiscCount(Side::kRight, 3, lsub), 1u);
}

TEST(BipartiteGraph, EdgeDensity) {
  auto g = MakeGraph(5, 5, {{0, 0}, {1, 1}});
  EXPECT_DOUBLE_EQ(g.EdgeDensity(), 0.2);
}

TEST(Induce, CompactsIdsAndKeepsEdges) {
  auto g = MakeGraph(4, 4, {{0, 0}, {1, 1}, {2, 2}, {3, 3}, {1, 2}});
  InducedSubgraph sub = Induce(g, {1, 3}, {1, 2});
  EXPECT_EQ(sub.graph.NumLeft(), 2u);
  EXPECT_EQ(sub.graph.NumRight(), 2u);
  EXPECT_EQ(sub.graph.NumEdges(), 2u);  // (1,1) and (1,2)
  EXPECT_TRUE(sub.graph.HasEdge(0, 0));
  EXPECT_TRUE(sub.graph.HasEdge(0, 1));
  EXPECT_EQ(sub.left_map, (std::vector<VertexId>{1, 3}));
  EXPECT_EQ(sub.right_map, (std::vector<VertexId>{1, 2}));
}

// ---------------------------------------------------------------- graph_io --

TEST(GraphIo, ParseWithHeader) {
  auto r = ParseEdgeList("% comment\n3 4 2\n0 1\n2 3\n");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.graph->NumLeft(), 3u);
  EXPECT_EQ(r.graph->NumRight(), 4u);
  EXPECT_EQ(r.graph->NumEdges(), 2u);
}

TEST(GraphIo, ParseWithoutHeaderInfersSizes) {
  auto r = ParseEdgeList("0 1\n2 3\n");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.graph->NumLeft(), 3u);
  EXPECT_EQ(r.graph->NumRight(), 4u);
}

TEST(GraphIo, ParseRejectsGarbage) {
  auto r = ParseEdgeList("0 1\nnot an edge\n");
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("line 2"), std::string::npos);
}

TEST(GraphIo, ParseRejectsOutOfRange) {
  auto r = ParseEdgeList("2 2 1\n5 0\n");
  EXPECT_FALSE(r.ok());
}

TEST(GraphIo, SaveLoadRoundTrip) {
  Rng rng(3);
  auto g = ErdosRenyiBipartite(10, 12, 40, &rng);
  auto path =
      std::filesystem::temp_directory_path() / "kbiplex_io_test.txt";
  ASSERT_EQ(SaveEdgeList(g, path.string()), "");
  auto r = LoadEdgeList(path.string());
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.graph->NumLeft(), g.NumLeft());
  EXPECT_EQ(r.graph->NumRight(), g.NumRight());
  EXPECT_EQ(r.graph->Edges(), g.Edges());
  std::filesystem::remove(path);
}

TEST(GraphIo, LoadMissingFileFails) {
  auto r = LoadEdgeList("/nonexistent/path/graph.txt");
  EXPECT_FALSE(r.ok());
}

// ----------------------------------------------------- streaming loader --

/// Writes `text` to a temp file and returns the path (caller removes).
std::filesystem::path WriteTempEdgeList(const std::string& text) {
  auto path =
      std::filesystem::temp_directory_path() / "kbiplex_stream_test.txt";
  std::ofstream f(path, std::ios::binary);
  f << text;
  return path;
}

// The chunked reader must parse byte-identically to the in-memory parser
// for every chunk size — including chunks of 1 byte, where every line
// straddles a boundary — across inputs exercising each header heuristic.
TEST(GraphIo, StreamingLoaderMatchesInMemoryParserAtEveryChunkSize) {
  const std::string corpora[] = {
      "",                                  // empty file
      "% only a comment\n",                // no data lines
      "3 4 2\n0 1\n2 3\n",                 // header
      "0 1\n2 3\n",                        // headerless, sizes inferred
      "0 1 5\n1 0 7\n2 2 9\n",             // headerless weighted (KONECT)
      "5 5 3\n0 1 2\n1 2 9\n2 0 1\n",      // header over weighted lines
      "% c\r\n2 2 1\r\n0 0\r\n",           // CRLF + comments
      "0 1\n\n  \n2 3",                    // blanks, no trailing newline
      "10 10 0\n",                         // lone header, zero edges
      "0 1\n0 1\n1 0\n",                   // duplicate edge lines
  };
  for (const std::string& text : corpora) {
    const LoadResult expect = ParseEdgeList(text);
    auto path = WriteTempEdgeList(text);
    for (size_t chunk : {size_t{1}, size_t{2}, size_t{3}, size_t{7},
                         size_t{64}, kDefaultLoadChunkBytes}) {
      const LoadResult got = LoadEdgeList(path.string(), chunk);
      ASSERT_EQ(got.ok(), expect.ok())
          << "chunk=" << chunk << " text=[" << text << "] got error '"
          << got.error << "' expect '" << expect.error << "'";
      if (expect.ok()) {
        EXPECT_EQ(got.graph->NumLeft(), expect.graph->NumLeft())
            << "chunk=" << chunk << " text=[" << text << "]";
        EXPECT_EQ(got.graph->NumRight(), expect.graph->NumRight())
            << "chunk=" << chunk << " text=[" << text << "]";
        EXPECT_EQ(got.graph->Edges(), expect.graph->Edges())
            << "chunk=" << chunk << " text=[" << text << "]";
      } else {
        EXPECT_EQ(got.error, expect.error) << "chunk=" << chunk;
      }
    }
    std::filesystem::remove(path);
  }
}

TEST(GraphIo, StreamingLoaderPreservesErrorLineNumbersAcrossChunks) {
  // The bad line sits past several boundary-straddling good lines; the
  // reported line number must not shift with the chunk size.
  auto path = WriteTempEdgeList("0 1\n2 3\n4 5\nbogus line\n");
  for (size_t chunk : {size_t{1}, size_t{5}, size_t{1024}}) {
    const LoadResult r = LoadEdgeList(path.string(), chunk);
    ASSERT_FALSE(r.ok()) << "chunk=" << chunk;
    EXPECT_NE(r.error.find("line 4"), std::string::npos)
        << "chunk=" << chunk << " error=" << r.error;
  }
  std::filesystem::remove(path);
}

TEST(GraphIo, StreamingLoaderHandlesLinesLongerThanTheChunk) {
  // A comment line much longer than the chunk forces repeated carryover
  // growth; the data after it must still parse.
  std::string text = "% " + std::string(300, 'x') + "\n7 8\n";
  auto path = WriteTempEdgeList(text);
  const LoadResult r = LoadEdgeList(path.string(), /*chunk_bytes=*/16);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.graph->NumLeft(), 8u);
  EXPECT_EQ(r.graph->NumRight(), 9u);
  EXPECT_TRUE(r.graph->HasEdge(7, 8));
  std::filesystem::remove(path);
}

// Regression: a headerless KONECT-style edge list whose lines carry a
// weight/timestamp column used to have its first edge swallowed as an
// "L R M" header (and later edges could then fail the range check).
TEST(GraphIo, HeaderlessWeightedEdgeListIsNotMisreadAsHeader) {
  auto r = ParseEdgeList("1 2 3\n0 5 7\n");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.graph->NumLeft(), 2u);   // max left id 1
  EXPECT_EQ(r.graph->NumRight(), 6u);  // max right id 5
  EXPECT_EQ(r.graph->NumEdges(), 2u);
  EXPECT_TRUE(r.graph->HasEdge(1, 2));
  EXPECT_TRUE(r.graph->HasEdge(0, 5));
}

TEST(GraphIo, LoneThreeColumnLineWithNonzeroCountFailsLoudly) {
  // Reads both as a truncated "L R M" header and as a single weighted
  // edge; either silent guess corrupts somebody's data, so it errors.
  auto r = ParseEdgeList("% weighted\n1 2 3\n");
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("ambiguous"), std::string::npos);
}

TEST(GraphIo, HeaderCountMayReferToDistinctEdges) {
  // Interaction data repeats edges; the graph collapses duplicates, so a
  // header declaring the distinct count is honest and must load.
  auto r = ParseEdgeList("2 2 2\n0 0\n0 1\n0 1\n");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.graph->NumLeft(), 2u);
  EXPECT_EQ(r.graph->NumEdges(), 2u);
}

TEST(GraphIo, TrailingColumnsOnDataLinesAreIgnored) {
  auto r = ParseEdgeList("0 1 0.75\n1 0 0.5 1234567\n1 1 x\n");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.graph->NumEdges(), 3u);
  EXPECT_TRUE(r.graph->HasEdge(0, 1));
  EXPECT_TRUE(r.graph->HasEdge(1, 0));
  EXPECT_TRUE(r.graph->HasEdge(1, 1));
}

TEST(GraphIo, HeaderOverWeightedDataLinesStillRecognized) {
  // A valid "L R M" header followed by weighted edges is ambiguous with a
  // purely-weighted file; the header wins when it validates (declared
  // count matches and every id is in range).
  auto r = ParseEdgeList("2 2 2\n0 0 1\n0 1 1\n");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.graph->NumLeft(), 2u);
  EXPECT_EQ(r.graph->NumRight(), 2u);
  EXPECT_EQ(r.graph->NumEdges(), 2u);
  EXPECT_TRUE(r.graph->HasEdge(0, 0));
  EXPECT_TRUE(r.graph->HasEdge(0, 1));
}

TEST(GraphIo, HeaderEdgeCountIsValidated) {
  auto r = ParseEdgeList("3 3 5\n0 0\n");
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("declares"), std::string::npos);
}

TEST(GraphIo, AmbiguousHeaderOverWeightedLinesFailsLoudly) {
  // Looks like a header whose edge count is stale (ids respect the
  // declared sizes) and like a weighted edge; refusing to guess beats
  // silently corrupting the graph either way.
  auto r = ParseEdgeList("3 3 99\n0 0 1\n0 1 1\n");
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("ambiguous"), std::string::npos);
}

TEST(GraphIo, RejectsNegativeAndMalformedIds) {
  EXPECT_FALSE(ParseEdgeList("0 1\n-1 2\n").ok());
  EXPECT_FALSE(ParseEdgeList("0.5 1\n").ok());
  EXPECT_FALSE(ParseEdgeList("3x 1\n").ok());
  EXPECT_FALSE(ParseEdgeList("7\n").ok());
  auto r = ParseEdgeList("0 1\n2 oops\n");
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("line 2"), std::string::npos);
}

TEST(GraphIo, StringRoundTripPreservesIsolatedVertices) {
  // Isolated vertices only survive a round trip through the header, so
  // this pins both ToEdgeListString's header and its re-parsing.
  auto g = MakeGraph(5, 7, {{0, 0}, {1, 1}, {1, 2}});
  auto r = ParseEdgeList(ToEdgeListString(g));
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.graph->NumLeft(), 5u);
  EXPECT_EQ(r.graph->NumRight(), 7u);
  EXPECT_EQ(r.graph->Edges(), g.Edges());
}

TEST(GraphIo, CrlfLinesParse) {
  auto r = ParseEdgeList("2 2 1\r\n0 1\r\n");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.graph->NumLeft(), 2u);
  EXPECT_EQ(r.graph->NumEdges(), 1u);
}

// -------------------------------------------------------------- generators --

TEST(Generators, ErdosRenyiExactEdgeCount) {
  Rng rng(5);
  auto g = ErdosRenyiBipartite(20, 30, 111, &rng);
  EXPECT_EQ(g.NumLeft(), 20u);
  EXPECT_EQ(g.NumRight(), 30u);
  EXPECT_EQ(g.NumEdges(), 111u);
}

TEST(Generators, ErdosRenyiDeterministic) {
  Rng a(5), b(5);
  auto g1 = ErdosRenyiBipartite(15, 15, 60, &a);
  auto g2 = ErdosRenyiBipartite(15, 15, 60, &b);
  EXPECT_EQ(g1.Edges(), g2.Edges());
}

TEST(Generators, ErdosRenyiProbApproximatesDensity) {
  Rng rng(6);
  auto g = ErdosRenyiProbBipartite(100, 100, 0.3, &rng);
  double density = static_cast<double>(g.NumEdges()) / (100.0 * 100.0);
  EXPECT_NEAR(density, 0.3, 0.05);
}

TEST(Generators, PowerLawHasTargetEdgesAndSkew) {
  Rng rng(8);
  auto g = PowerLawBipartite(200, 200, 1000, 2.2, &rng);
  EXPECT_EQ(g.NumEdges(), 1000u);
  // Degree skew: the max degree should significantly exceed the mean.
  size_t max_deg = 0;
  for (VertexId v = 0; v < g.NumLeft(); ++v) {
    max_deg = std::max(max_deg, g.LeftDegree(v));
  }
  EXPECT_GT(max_deg, 3u * g.NumEdges() / g.NumLeft());
}

TEST(Generators, PlantDenseBlockAppendsVertices) {
  Rng rng(9);
  auto base = ErdosRenyiBipartite(10, 10, 20, &rng);
  auto g = PlantDenseBlock(base, 5, 6, 1.0, &rng);
  EXPECT_EQ(g.NumLeft(), 15u);
  EXPECT_EQ(g.NumRight(), 16u);
  EXPECT_EQ(g.NumEdges(), 20u + 30u);
  // The planted block is complete.
  for (VertexId l = 10; l < 15; ++l) {
    for (VertexId r = 10; r < 16; ++r) EXPECT_TRUE(g.HasEdge(l, r));
  }
}

TEST(Generators, RunningExampleProperties) {
  auto g = RunningExampleGraph();
  EXPECT_EQ(g.NumLeft(), 5u);
  EXPECT_EQ(g.NumRight(), 5u);
  // v4 misses only u4.
  EXPECT_EQ(g.LeftDegree(4), 4u);
  EXPECT_FALSE(g.HasEdge(4, 4));
  // Every other left vertex misses at least two right vertices.
  for (VertexId v = 0; v < 4; ++v) EXPECT_LE(g.LeftDegree(v), 3u);
}

// ------------------------------------------------------ core decomposition --

TEST(AlphaBetaCore, WholeGraphWhenThresholdsAreLow) {
  auto g = MakeGraph(3, 3, {{0, 0}, {1, 1}, {2, 2}});
  CoreResult core = AlphaBetaCore(g, 1, 1);
  EXPECT_EQ(core.left.size(), 3u);
  EXPECT_EQ(core.right.size(), 3u);
}

TEST(AlphaBetaCore, PeelsLowDegreeVertices) {
  // Left 0 has degree 3; left 1 degree 1; rights have mixed degrees.
  auto g = MakeGraph(2, 3, {{0, 0}, {0, 1}, {0, 2}, {1, 0}});
  CoreResult core = AlphaBetaCore(g, 2, 1);
  // Left 1 (degree 1 < 2) is peeled; rights keep degree 1 from left 0.
  EXPECT_EQ(core.left, (std::vector<VertexId>{0}));
  EXPECT_EQ(core.right.size(), 3u);
}

TEST(AlphaBetaCore, CascadingPeel) {
  // A path-like structure that collapses entirely under (2,2).
  auto g = MakeGraph(3, 3, {{0, 0}, {0, 1}, {1, 1}, {1, 2}, {2, 2}});
  CoreResult core = AlphaBetaCore(g, 2, 2);
  EXPECT_TRUE(core.Empty());
}

TEST(AlphaBetaCore, DenseBlockSurvives) {
  Rng rng(10);
  auto base = ErdosRenyiBipartite(30, 30, 30, &rng);
  auto g = PlantDenseBlock(base, 8, 8, 1.0, &rng);
  CoreResult core = AlphaBetaCore(g, 5, 5);
  // The complete 8x8 block must survive a (5,5)-core.
  for (VertexId v = 30; v < 38; ++v) {
    EXPECT_TRUE(sorted::Contains(core.left, v));
    EXPECT_TRUE(sorted::Contains(core.right, v));
  }
  // Invariant: all survivors meet the degree thresholds inside the core.
  InducedSubgraph sub = AlphaBetaCoreSubgraph(g, 5, 5);
  for (VertexId v = 0; v < sub.graph.NumLeft(); ++v) {
    EXPECT_GE(sub.graph.LeftDegree(v), 5u);
  }
  for (VertexId u = 0; u < sub.graph.NumRight(); ++u) {
    EXPECT_GE(sub.graph.RightDegree(u), 5u);
  }
}

TEST(AlphaBetaCore, IsMaximal) {
  // No vertex outside the core can satisfy the thresholds against the
  // core: verify on a random graph by re-adding each removed vertex.
  Rng rng(11);
  auto g = ErdosRenyiBipartite(25, 25, 120, &rng);
  CoreResult core = AlphaBetaCore(g, 3, 3);
  for (VertexId v = 0; v < g.NumLeft(); ++v) {
    if (sorted::Contains(core.left, v)) continue;
    EXPECT_LT(g.ConnCount(Side::kLeft, v, core.right), 3u);
  }
}

// ------------------------------------------------------------ GeneralGraph --

TEST(GeneralGraph, BasicsAndSymmetry) {
  auto g = GeneralGraph::FromEdges(4, {{0, 1}, {1, 2}, {0, 1}, {3, 3}});
  EXPECT_EQ(g.NumVertices(), 4u);
  EXPECT_EQ(g.NumEdges(), 2u);  // dup collapsed, self-loop dropped
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(0, 2));
  EXPECT_EQ(g.Degree(1), 2u);
  EXPECT_EQ(g.ConnCount(1, {0, 2, 3}), 2u);
}

// --------------------------------------------------------------- inflation --

TEST(Inflation, CountsAndStructure) {
  auto g = MakeGraph(3, 2, {{0, 0}, {1, 1}});
  EXPECT_EQ(InflatedEdgeCount(g), 3u + 1u + 2u);
  InflatedGraph inf = Inflate(g);
  EXPECT_EQ(inf.graph.NumVertices(), 5u);
  EXPECT_EQ(inf.graph.NumEdges(), 6u);
  // Same-side cliques.
  EXPECT_TRUE(inf.graph.HasEdge(0, 1));
  EXPECT_TRUE(inf.graph.HasEdge(0, 2));
  EXPECT_TRUE(inf.graph.HasEdge(3, 4));
  // Cross edges only where the bipartite graph has them.
  EXPECT_TRUE(inf.graph.HasEdge(0, 3));
  EXPECT_FALSE(inf.graph.HasEdge(0, 4));
  // Id mapping.
  EXPECT_EQ(inf.SideOf(2), Side::kLeft);
  EXPECT_EQ(inf.SideOf(3), Side::kRight);
  EXPECT_EQ(inf.BipartiteId(4), 1u);
  EXPECT_EQ(inf.GeneralId(Side::kRight, 1), 4u);
}

}  // namespace
}  // namespace kbiplex
