#include <algorithm>

#include <gtest/gtest.h>

#include "analysis/biclique.h"
#include "analysis/fraud.h"
#include "analysis/metrics.h"
#include "analysis/quasi_biclique.h"
#include "core/brute_force.h"
#include "graph/generators.h"
#include "test_support.h"
#include "util/random.h"

namespace kbiplex {
namespace {

using testing_support::MakeGraph;
using testing_support::MakeRandomGraph;

// ----------------------------------------------------------------- metrics --

TEST(Metrics, PerfectDetection) {
  std::vector<bool> truth = {true, false, true, false};
  BinaryMetrics m = ComputeMetrics(truth, truth);
  EXPECT_TRUE(m.defined);
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
  EXPECT_DOUBLE_EQ(m.f1, 1.0);
}

TEST(Metrics, NothingFlaggedIsUndefined) {
  BinaryMetrics m =
      ComputeMetrics({false, false}, {true, false});
  EXPECT_FALSE(m.defined);  // the paper's "ND"
}

TEST(Metrics, MixedCounts) {
  // flagged: {0,1}; truth: {1,2}.
  BinaryMetrics m = ComputeMetrics({true, true, false},
                                   {false, true, true});
  EXPECT_EQ(m.tp, 1u);
  EXPECT_EQ(m.fp, 1u);
  EXPECT_EQ(m.fn, 1u);
  EXPECT_DOUBLE_EQ(m.precision, 0.5);
  EXPECT_DOUBLE_EQ(m.recall, 0.5);
  EXPECT_DOUBLE_EQ(m.f1, 0.5);
}

TEST(Metrics, JointCombinesFamilies) {
  BinaryMetrics m = ComputeJointMetrics({true}, {true}, {true, false},
                                        {false, false});
  EXPECT_EQ(m.tp, 1u);
  EXPECT_EQ(m.fp, 1u);
  EXPECT_EQ(m.fn, 0u);
}

// ---------------------------------------------------------------- biclique --

TEST(Biclique, Predicate) {
  auto g = MakeGraph(2, 2, {{0, 0}, {0, 1}, {1, 0}});
  EXPECT_TRUE(IsBiclique(g, Biplex{{0}, {0, 1}}));
  EXPECT_FALSE(IsBiclique(g, Biplex{{0, 1}, {0, 1}}));
  EXPECT_TRUE(IsBiclique(g, Biplex{{0, 1}, {0}}));
}

TEST(Biclique, EnumerationMatchesZeroBiplexBruteForce) {
  for (uint64_t seed : {1u, 2u, 3u, 4u}) {
    auto g = MakeRandomGraph({5, 5, 0.5, seed});
    auto expect = BruteForceMaximalBiplexes(g, 0);
    std::vector<Biplex> got;
    EnumerateMaximalBicliques(g, BicliqueEnumOptions{},
                              [&](const Biplex& b) {
                                got.push_back(b);
                                return true;
                              });
    std::sort(got.begin(), got.end());
    ASSERT_EQ(got, expect) << "seed=" << seed;
  }
}

TEST(Biclique, SizeThresholdsFilter) {
  auto g = MakeRandomGraph({6, 6, 0.6, 5});
  BicliqueEnumOptions opts;
  opts.theta_left = 2;
  opts.theta_right = 2;
  std::vector<Biplex> got;
  EnumerateMaximalBicliques(g, opts, [&](const Biplex& b) {
    got.push_back(b);
    return true;
  });
  std::sort(got.begin(), got.end());
  ASSERT_EQ(got, FilterBySize(BruteForceMaximalBiplexes(g, 0), 2, 2));
}

// ----------------------------------------------------------------- δ-QB ----

TEST(QuasiBiclique, PredicateBoundaries) {
  // Complete 3x3 minus one edge.
  std::vector<BipartiteGraph::Edge> edges;
  for (VertexId l = 0; l < 3; ++l) {
    for (VertexId r = 0; r < 3; ++r) {
      if (!(l == 0 && r == 0)) edges.emplace_back(l, r);
    }
  }
  auto g = BipartiteGraph::FromEdges(3, 3, edges);
  Biplex whole{{0, 1, 2}, {0, 1, 2}};
  EXPECT_FALSE(IsDeltaQuasiBiclique(g, whole, 0.0));
  // One miss out of three columns = 1/3.
  EXPECT_FALSE(IsDeltaQuasiBiclique(g, whole, 0.2));
  EXPECT_TRUE(IsDeltaQuasiBiclique(g, whole, 0.34));
}

TEST(QuasiBiclique, FindsPlantedBlock) {
  Rng rng(8);
  auto base = ErdosRenyiBipartite(40, 40, 50, &rng);
  auto g = PlantDenseBlock(base, 8, 8, 0.95, &rng);
  QuasiBicliqueOptions opts;
  opts.delta = 0.3;
  opts.theta_left = 5;
  opts.theta_right = 5;
  auto blocks = FindQuasiBicliqueBlocks(g, opts);
  ASSERT_FALSE(blocks.empty());
  // The found block overlaps the planted one substantially.
  size_t planted_hits = 0;
  for (VertexId v : blocks[0].left) {
    if (v >= 40) ++planted_hits;
  }
  EXPECT_GE(planted_hits, 4u);
  // Every reported block satisfies the predicate and thresholds.
  for (const Biplex& b : blocks) {
    EXPECT_TRUE(IsDeltaQuasiBiclique(g, b, opts.delta));
    EXPECT_GE(b.left.size(), opts.theta_left);
    EXPECT_GE(b.right.size(), opts.theta_right);
  }
}

TEST(QuasiBiclique, BlocksAreDisjoint) {
  Rng rng(9);
  auto base = ErdosRenyiBipartite(30, 30, 40, &rng);
  auto g1 = PlantDenseBlock(base, 6, 6, 1.0, &rng);
  auto g = PlantDenseBlock(g1, 6, 6, 1.0, &rng);
  QuasiBicliqueOptions opts;
  opts.delta = 0.1;
  opts.theta_left = 4;
  opts.theta_right = 4;
  auto blocks = FindQuasiBicliqueBlocks(g, opts);
  std::vector<bool> seen_left(g.NumLeft(), false);
  for (const Biplex& b : blocks) {
    for (VertexId v : b.left) {
      EXPECT_FALSE(seen_left[v]) << "blocks overlap";
      seen_left[v] = true;
    }
  }
  EXPECT_GE(blocks.size(), 2u);
}

// ------------------------------------------------------------------ fraud --

FraudDataset SmallAttack(uint64_t seed) {
  Rng rng(seed);
  // Mirrors the paper's proportions at laptop scale: camouflage comments
  // spread thinly over many real products (<3% per pair), a fraud block
  // around 40% dense.
  auto organic = PowerLawBipartiteAsym(2000, 150, 2500, 3.0, 2.3, &rng);
  CamouflageAttackConfig cfg;
  cfg.fake_users = 30;
  cfg.fake_products = 20;
  cfg.fake_comments = 30 * 8;        // 8 fake comments per fake user
  cfg.camouflage_comments = 30 * 4;  // thin camouflage (~1% per pair)
  cfg.seed = seed + 1;
  return InjectCamouflageAttack(organic, cfg);
}

TEST(Fraud, InjectionShapes) {
  FraudDataset data = SmallAttack(3);
  EXPECT_EQ(data.graph.NumLeft(), 2030u);
  EXPECT_EQ(data.graph.NumRight(), 170u);
  EXPECT_EQ(data.num_real_users, 2000u);
  EXPECT_FALSE(data.IsFakeUser(0));
  EXPECT_TRUE(data.IsFakeUser(2000));
  EXPECT_TRUE(data.IsFakeProduct(150));
  auto ut = data.UserTruth();
  EXPECT_EQ(std::count(ut.begin(), ut.end(), true), 30);
  // Every fake user got its full comment quota.
  for (VertexId v = 2000; v < 2030; ++v) {
    EXPECT_EQ(data.graph.LeftDegree(v), 12u);
  }
}

TEST(Fraud, BiplexDetectorFindsFraudBlock) {
  FraudDataset data = SmallAttack(4);
  // Paper-like thresholds (θ_L = 4, θ_R = 5) suppress the organic hubs.
  DetectionResult r = DetectByBiplex(data, /*k=*/1, /*theta_l=*/4,
                                     /*theta_r=*/5);
  ASSERT_TRUE(r.FlaggedAnything());
  BinaryMetrics m = EvaluateDetection(data, r);
  ASSERT_TRUE(m.defined);
  // The dense fraud block dominates: most flags should be fake items.
  EXPECT_GT(m.precision, 0.45);
  EXPECT_GT(m.recall, 0.9);
}

TEST(Fraud, AlphaBetaCoreHasHighRecallLowerPrecision) {
  FraudDataset data = SmallAttack(5);
  DetectionResult core = DetectByAlphaBetaCore(data, /*alpha=*/5,
                                               /*beta=*/4);
  BinaryMetrics mc = EvaluateDetection(data, core);
  DetectionResult biplex = DetectByBiplex(data, 1, /*theta_l=*/4,
                                          /*theta_r=*/5);
  BinaryMetrics mb = EvaluateDetection(data, biplex);
  ASSERT_TRUE(mc.defined);
  ASSERT_TRUE(mb.defined);
  // The (α,β)-core is coarse: recall at least as high as the biplex
  // detector, precision no better (Figure 13's qualitative shape).
  EXPECT_GE(mc.recall + 1e-9, mb.recall);
  EXPECT_LE(mc.precision, mb.precision + 1e-9);
}

TEST(Fraud, QuasiBicliqueDetectorRuns) {
  FraudDataset data = SmallAttack(6);
  DetectionResult r = DetectByQuasiBiclique(data, 0.45, 4, 5);
  BinaryMetrics m = EvaluateDetection(data, r);
  if (m.defined) {
    EXPECT_GT(m.recall, 0.0);
  }
}

TEST(Fraud, BicliqueRecallCollapsesAtHighThresholds) {
  FraudDataset data = SmallAttack(7);
  DetectionResult strict = DetectByBiclique(data, 4, 5);
  DetectionResult biplex = DetectByBiplex(data, 1, 4, 5);
  BinaryMetrics ms = EvaluateDetection(data, strict);
  BinaryMetrics mb = EvaluateDetection(data, biplex);
  ASSERT_TRUE(mb.defined);
  // Bicliques demand complete connections, so at the same thresholds their
  // recall is (much) lower than 1-biplexes' (Figure 13(b)).
  const double biclique_recall = ms.defined ? ms.recall : 0.0;
  EXPECT_LT(biclique_recall, mb.recall + 1e-9);
}

}  // namespace
}  // namespace kbiplex
