// Shared helpers for the test suites.
#ifndef KBIPLEX_TESTS_TEST_SUPPORT_H_
#define KBIPLEX_TESTS_TEST_SUPPORT_H_

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "core/biplex.h"
#include "core/itraversal.h"
#include "core/large_mbp.h"
#include "graph/bipartite_graph.h"
#include "graph/generators.h"
#include "util/random.h"

namespace kbiplex {
namespace testing_support {

/// Builds a bipartite graph from an initializer-friendly edge list.
inline BipartiteGraph MakeGraph(size_t nl, size_t nr,
                                std::vector<BipartiteGraph::Edge> edges) {
  return BipartiteGraph::FromEdges(nl, nr, std::move(edges));
}

/// Renders a biplex as "{l0 l1 | r0 r1}" for failure messages.
inline std::string ToString(const Biplex& b) {
  std::ostringstream os;
  os << "{";
  for (VertexId v : b.left) os << " " << v;
  os << " |";
  for (VertexId u : b.right) os << " " << u;
  os << " }";
  return os.str();
}

/// Renders a list of biplexes.
inline std::string ToString(const std::vector<Biplex>& bs) {
  std::ostringstream os;
  for (const Biplex& b : bs) os << ToString(b) << "\n";
  return os.str();
}

/// A reproducible family of small random graphs for property sweeps.
struct RandomGraphCase {
  size_t nl;
  size_t nr;
  double p;
  uint64_t seed;
};

inline BipartiteGraph MakeRandomGraph(const RandomGraphCase& c) {
  Rng rng(c.seed);
  return ErdosRenyiProbBipartite(c.nl, c.nr, c.p, &rng);
}

/// Runs the traversal engine once and returns its solutions, sorted;
/// the test-suite shorthand for one engine-level enumeration.
inline std::vector<Biplex> CollectWith(const BipartiteGraph& g,
                                       const TraversalOptions& opts,
                                       TraversalStats* stats = nullptr) {
  std::vector<Biplex> out;
  TraversalStats s = TraversalEngine(g, opts).Run([&](const Biplex& b) {
    out.push_back(b);
    return true;
  });
  if (stats != nullptr) *stats = s;
  std::sort(out.begin(), out.end());
  return out;
}

/// Runs the large-MBP engine once and returns its solutions, sorted.
inline std::vector<Biplex> CollectLargeWith(const BipartiteGraph& g,
                                            const LargeMbpOptions& opts,
                                            LargeMbpStats* stats = nullptr) {
  std::vector<Biplex> out;
  LargeMbpStats s = LargeMbpEngine(g, opts).Run([&](const Biplex& b) {
    out.push_back(b);
    return true;
  });
  if (stats != nullptr) *stats = s;
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace testing_support
}  // namespace kbiplex

#endif  // KBIPLEX_TESTS_TEST_SUPPORT_H_
