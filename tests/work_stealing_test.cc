// Tests of the work-stealing traversal scheduler: the generic scheduler
// primitive (termination, task spawning, stealing, early stop), the
// intra-component parallel plan's agreement with the sequential solution
// set for every traversal-family backend at 1/2/4/8 threads, global
// budget/result-cap truncation, and the canonical-order SortingSink that
// makes parallel output streams deterministic.
#include <atomic>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/enumerator.h"
#include "api/solution_sink.h"
#include "api/traversal_scheduler.h"
#include "graph/generators.h"
#include "test_support.h"
#include "util/work_stealing.h"

namespace kbiplex {
namespace {

using testing_support::MakeGraph;
using testing_support::MakeRandomGraph;
using testing_support::ToString;

// ------------------------------------------------- scheduler primitive ---

TEST(WorkStealingScheduler, ExecutesEverySeededTask) {
  WorkStealingScheduler<int> sched(4);
  EXPECT_EQ(sched.num_workers(), 4u);
  std::atomic<int> sum{0};
  for (int i = 0; i < 100; ++i) sched.Push(i % 4, i);
  sched.Run([&](size_t, int&& task) { sum.fetch_add(task); });
  EXPECT_EQ(sum.load(), 99 * 100 / 2);
  EXPECT_EQ(sched.executed(), 100u);
  EXPECT_FALSE(sched.stopped());
}

TEST(WorkStealingScheduler, TasksSpawnTasksUntilTreeExhausted) {
  // One seed fans out into a complete ternary tree of depth 4; the
  // scheduler must terminate only after every spawned descendant ran:
  // 1 + 3 + 9 + 27 + 81 = 121 tasks.
  WorkStealingScheduler<int> sched(4);
  std::atomic<int> executed{0};
  sched.Push(0, 0);
  sched.Run([&](size_t w, int&& depth) {
    executed.fetch_add(1);
    if (depth < 4) {
      for (int i = 0; i < 3; ++i) sched.Push(w, depth + 1);
    }
  });
  EXPECT_EQ(executed.load(), 121);
  EXPECT_EQ(sched.executed(), 121u);
}

TEST(WorkStealingScheduler, SeedsOnOneDequeReachEveryWorker) {
  // All seeds land on worker 0's deque; the other workers only get work
  // by stealing. Every task must still execute exactly once.
  WorkStealingScheduler<int> sched(4);
  std::atomic<int> executed{0};
  for (int i = 0; i < 64; ++i) sched.Push(0, i);
  sched.Run([&](size_t, int&&) { executed.fetch_add(1); });
  EXPECT_EQ(executed.load(), 64);
}

TEST(WorkStealingScheduler, StopAbandonsQueuedTasks) {
  WorkStealingScheduler<int> sched(2);
  std::atomic<int> executed{0};
  for (int i = 0; i < 1000; ++i) sched.Push(i % 2, i);
  sched.Run([&](size_t, int&&) {
    if (executed.fetch_add(1) + 1 >= 10) sched.Stop();
  });
  EXPECT_TRUE(sched.stopped());
  EXPECT_GE(executed.load(), 10);
  // Queued tasks were abandoned, not run: only the bodies in flight when
  // Stop was called could still finish.
  EXPECT_LT(executed.load(), 1000);
}

TEST(WorkStealingScheduler, SingleWorkerRunsInline) {
  WorkStealingScheduler<int> sched(1);
  std::atomic<int> executed{0};
  sched.Push(0, 0);
  sched.Run([&](size_t w, int&& depth) {
    EXPECT_EQ(w, 0u);
    executed.fetch_add(1);
    if (depth < 3) sched.Push(w, depth + 1);
  });
  EXPECT_EQ(executed.load(), 4);
  EXPECT_EQ(sched.steals(), 0u);
}

TEST(WorkStealingScheduler, ZeroWorkersClampsToOne) {
  WorkStealingScheduler<int> sched(0);
  EXPECT_EQ(sched.num_workers(), 1u);
  std::atomic<int> executed{0};
  sched.Push(7, 1);  // worker index is taken modulo num_workers
  sched.Run([&](size_t, int&&) { executed.fetch_add(1); });
  EXPECT_EQ(executed.load(), 1);
}

// ------------------------------------- scheduler plan: set agreement ----

/// A dense graph that is one connected component with high probability —
/// the case component sharding cannot parallelize at all.
BipartiteGraph DenseComponent() { return MakeRandomGraph({7, 7, 0.7, 91}); }

struct SchedulerCase {
  KPair k;
  size_t theta_left;
  size_t theta_right;
};

std::vector<Biplex> RunSchedulerPlan(const BipartiteGraph& g,
                                     const EnumerateRequest& req,
                                     const std::string& algorithm,
                                     size_t threads, EnumerateStats* stats) {
  CollectingSink sink;
  std::optional<EnumerateStats> s =
      internal::TryRunTraversalScheduler(g, req, algorithm, threads, &sink);
  EXPECT_TRUE(s.has_value()) << algorithm;
  if (stats != nullptr && s.has_value()) *stats = *s;
  return sink.Take();  // sorted canonically
}

TEST(TraversalSchedulerPlan, MatchesSequentialSetOnDenseComponent) {
  const BipartiteGraph g = DenseComponent();
  Enumerator enumerator(g);
  const std::vector<SchedulerCase> cases = {
      {KPair::Uniform(1), 0, 0},  // component sharding provably unsafe
      {KPair::Uniform(1), 3, 3},  // safe but useless: one component
      {KPair::Uniform(2), 2, 2},
  };
  for (const SchedulerCase& c : cases) {
    for (const char* name : {"itraversal", "itraversal-es",
                             "itraversal-es-rs", "btraversal", "large-mbp"}) {
      const bool large = name == std::string("large-mbp");
      if (large && (c.theta_left == 0 || c.theta_right == 0)) continue;
      EnumerateRequest req;
      req.algorithm = name;
      req.k = c.k;
      req.theta_left = c.theta_left;
      req.theta_right = c.theta_right;
      req.threads = 1;
      EnumerateStats seq_stats;
      const std::vector<Biplex> expect = enumerator.Collect(req, &seq_stats);
      ASSERT_TRUE(seq_stats.ok()) << name << ": " << seq_stats.error;
      for (size_t threads : {2u, 4u, 8u}) {
        EnumerateStats stats;
        const std::vector<Biplex> got =
            RunSchedulerPlan(g, req, name, threads, &stats);
        ASSERT_TRUE(stats.ok()) << name << ": " << stats.error;
        EXPECT_TRUE(stats.completed) << name << " threads=" << threads;
        EXPECT_EQ(stats.solutions, seq_stats.solutions) << name;
        ASSERT_EQ(got, expect)
            << name << " threads=" << threads << " k=(" << c.k.left << ","
            << c.k.right << ") theta=(" << c.theta_left << ","
            << c.theta_right << ")\ngot:\n"
            << ToString(got) << "want:\n"
            << ToString(expect);
        // The detail block matches the backend family, and the unique
        // solution count agrees with the delivered count when no
        // threshold filters (thetas filter delivery, not discovery).
        if (large) {
          ASSERT_TRUE(stats.large_mbp.has_value()) << name;
        } else {
          ASSERT_TRUE(stats.traversal.has_value()) << name;
          if (c.theta_left == 0 && c.theta_right == 0) {
            EXPECT_EQ(stats.traversal->solutions_found, stats.solutions)
                << name;
          }
        }
      }
    }
  }
}

TEST(TraversalSchedulerPlan, HandlesDisconnectedGraphsToo) {
  // The expansion closure spans components exactly like the sequential
  // traversal does, so the scheduler needs no sharding-safety gate.
  std::vector<BipartiteGraph::Edge> edges;
  const BipartiteGraph a = MakeRandomGraph({4, 4, 0.7, 92});
  const BipartiteGraph b = MakeRandomGraph({4, 4, 0.6, 93});
  for (const auto& [l, r] : a.Edges()) edges.emplace_back(l, r);
  for (const auto& [l, r] : b.Edges()) {
    edges.emplace_back(l + 4, r + 4);
  }
  const BipartiteGraph g = BipartiteGraph::FromEdges(8, 8, std::move(edges));
  Enumerator enumerator(g);
  EnumerateRequest req;
  req.algorithm = "btraversal";
  req.threads = 1;
  const std::vector<Biplex> expect = enumerator.Collect(req);
  const std::vector<Biplex> got =
      RunSchedulerPlan(g, req, "btraversal", 4, nullptr);
  EXPECT_EQ(got, expect);
}

TEST(TraversalSchedulerPlan, DeclinesWhatItCannotReplicate) {
  const BipartiteGraph g = DenseComponent();
  CollectingSink sink;
  EnumerateRequest req;
  req.algorithm = "itraversal";

  EnumerateRequest with_options = req;
  with_options.backend_options["anchored_side"] = "right";
  EXPECT_FALSE(internal::TryRunTraversalScheduler(g, with_options,
                                                  "itraversal", 4, &sink)
                   .has_value());

  EnumerateRequest with_links = req;
  with_links.max_links = 100;
  EXPECT_FALSE(
      internal::TryRunTraversalScheduler(g, with_links, "itraversal", 4, &sink)
          .has_value());

  EXPECT_FALSE(
      internal::TryRunTraversalScheduler(g, req, "imb", 4, &sink).has_value());

  const BipartiteGraph empty = MakeGraph(3, 3, {});
  EXPECT_FALSE(internal::TryRunTraversalScheduler(empty, req, "itraversal", 4,
                                                  &sink)
                   .has_value());
}

// --------------------------------------------- global budgets and caps ---

TEST(TraversalSchedulerPlan, MaxResultsIsGlobalAcrossWorkers) {
  const BipartiteGraph g = DenseComponent();
  Enumerator enumerator(g);
  EnumerateRequest req;
  req.algorithm = "itraversal";
  req.threads = 1;
  EnumerateStats full;
  const std::vector<Biplex> all = enumerator.Collect(req, &full);
  ASSERT_GT(all.size(), 4u);

  req.max_results = 4;
  EnumerateStats stats;
  const std::vector<Biplex> got =
      RunSchedulerPlan(g, req, "itraversal", 4, &stats);
  EXPECT_EQ(got.size(), 4u);
  EXPECT_EQ(stats.solutions, 4u);
  EXPECT_FALSE(stats.completed);
  // Every truncated delivery is a member of the full set.
  for (const Biplex& b : got) {
    EXPECT_TRUE(std::binary_search(all.begin(), all.end(), b))
        << ToString(b);
  }
}

TEST(TraversalSchedulerPlan, ExpiredBudgetStopsWithoutCompleting) {
  const BipartiteGraph g = DenseComponent();
  EnumerateRequest req;
  req.algorithm = "itraversal";
  req.time_budget_seconds = 1e-12;
  EnumerateStats stats;
  RunSchedulerPlan(g, req, "itraversal", 4, &stats);
  EXPECT_FALSE(stats.completed);
}

TEST(TraversalSchedulerPlan, PreCancelledTokenStopsRun) {
  const BipartiteGraph g = DenseComponent();
  CancellationToken token;
  token.Cancel();
  EnumerateRequest req;
  req.algorithm = "btraversal";
  req.cancellation = &token;
  EnumerateStats stats;
  const std::vector<Biplex> got =
      RunSchedulerPlan(g, req, "btraversal", 4, &stats);
  EXPECT_FALSE(stats.completed);
  // At most the seed solution slipped out before the first poll.
  EXPECT_LE(got.size(), 1u);
}

// ------------------------------------------ facade plan composition ------

TEST(ParallelFacade, TraversalFamilyAgreesOnSingleDenseComponent) {
  // End-to-end: the facade must route single-component traversal-family
  // requests to the scheduler plan (component sharding cannot split this
  // graph) and still produce the sequential set at every thread count.
  const BipartiteGraph g = DenseComponent();
  Enumerator enumerator(g);
  for (const char* name : {"itraversal", "itraversal-es", "itraversal-es-rs",
                           "btraversal", "large-mbp"}) {
    const bool large = name == std::string("large-mbp");
    EnumerateRequest req;
    req.algorithm = name;
    req.theta_left = large ? 3 : 0;
    req.theta_right = large ? 3 : 0;
    req.threads = 1;
    EnumerateStats seq_stats;
    const std::vector<Biplex> expect = enumerator.Collect(req, &seq_stats);
    ASSERT_TRUE(seq_stats.ok()) << name << ": " << seq_stats.error;
    for (int threads : {2, 4, 8}) {
      req.threads = threads;
      EnumerateStats stats;
      const std::vector<Biplex> got = enumerator.Collect(req, &stats);
      ASSERT_TRUE(stats.ok()) << name << ": " << stats.error;
      EXPECT_TRUE(stats.completed) << name << " threads=" << threads;
      ASSERT_EQ(got, expect) << name << " threads=" << threads;
    }
  }
}

// --------------------------------------------------------- SortingSink ---

TEST(SortingSink, FlushForwardsInCanonicalOrder) {
  CollectingSink inner(/*sorted=*/false);
  SortingSink sorter(&inner);
  EXPECT_TRUE(sorter.ThreadCompatible());
  EXPECT_TRUE(sorter.Accept(Biplex{{2}, {0}}));
  EXPECT_TRUE(sorter.Accept(Biplex{{0, 1}, {1}}));
  EXPECT_TRUE(sorter.Accept(Biplex{{0}, {2}}));
  EXPECT_EQ(sorter.buffered(), 3u);
  EXPECT_EQ(inner.size(), 0u);  // nothing forwarded before Flush
  EXPECT_TRUE(sorter.Flush());
  EXPECT_EQ(sorter.buffered(), 0u);
  const std::vector<Biplex> got = inner.Take();
  const std::vector<Biplex> want = {
      Biplex{{0}, {2}}, Biplex{{0, 1}, {1}}, Biplex{{2}, {0}}};
  EXPECT_EQ(got, want);
}

TEST(SortingSink, InnerRefusalStopsFlushEarly) {
  int accepted = 0;
  CallbackSink inner([&](const Biplex&) { return ++accepted < 2; });
  SortingSink sorter(&inner);
  sorter.Accept(Biplex{{1}, {1}});
  sorter.Accept(Biplex{{0}, {0}});
  sorter.Accept(Biplex{{2}, {2}});
  EXPECT_FALSE(sorter.Flush());
  EXPECT_EQ(accepted, 2);  // the refusal consumed the second solution
  EXPECT_EQ(sorter.buffered(), 0u);  // buffer cleared either way
}

TEST(SortingSink, MakesParallelStreamOrderDeterministic) {
  const BipartiteGraph g = DenseComponent();
  Enumerator enumerator(g);
  EnumerateRequest req;
  req.algorithm = "itraversal";
  req.threads = 1;
  CollectingSink seq_inner(/*sorted=*/false);
  SortingSink seq_sorter(&seq_inner);
  ASSERT_TRUE(enumerator.Run(req, &seq_sorter).ok());
  seq_sorter.Flush();
  const std::vector<Biplex> expect = seq_inner.Take();

  req.threads = 4;
  CollectingSink par_inner(/*sorted=*/false);
  SortingSink par_sorter(&par_inner);
  ASSERT_TRUE(enumerator.Run(req, &par_sorter).ok());
  par_sorter.Flush();
  // Identical *sequence*, not just set: this is the property the CLI
  // --sort flag and the wire "sort" key build their byte-stability on.
  EXPECT_EQ(par_inner.Take(), expect);
}

}  // namespace
}  // namespace kbiplex
