// Tests of the parallel enumeration subsystem: the thread pool, the
// component decomposition, the thread-safe sink wrapper, cancellation
// chaining, and — the load-bearing property — that the multi-threaded
// driver delivers exactly the 1-thread solution set for every registered
// algorithm.
#include <atomic>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "api/enumerator.h"
#include "api/parallel_driver.h"
#include "graph/components.h"
#include "graph/generators.h"
#include "test_support.h"
#include "util/json_value.h"
#include "util/thread_pool.h"

namespace kbiplex {
namespace {

using testing_support::MakeGraph;
using testing_support::MakeRandomGraph;
using testing_support::ToString;

// ----------------------------------------------------------- thread pool --

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.NumThreads(), 4u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
  }
  EXPECT_EQ(counter.load(), 10);
}

// ------------------------------------------------------------ components --

TEST(Components, SplitsAndMapsBack) {
  // Two components: {l0, l1 | r0} and {l2 | r1, r2}; l3 and r3 isolated.
  BipartiteGraph g =
      MakeGraph(4, 4, {{0, 0}, {1, 0}, {2, 1}, {2, 2}});
  std::vector<InducedSubgraph> comps = ConnectedComponents(g);
  ASSERT_EQ(comps.size(), 4u);
  EXPECT_EQ(comps[0].left_map, (std::vector<VertexId>{0, 1}));
  EXPECT_EQ(comps[0].right_map, (std::vector<VertexId>{0}));
  EXPECT_EQ(comps[0].graph.NumEdges(), 2u);
  EXPECT_EQ(comps[1].left_map, (std::vector<VertexId>{2}));
  EXPECT_EQ(comps[1].right_map, (std::vector<VertexId>{1, 2}));
  EXPECT_EQ(comps[2].left_map, (std::vector<VertexId>{3}));
  EXPECT_TRUE(comps[2].right_map.empty());
  EXPECT_TRUE(comps[3].left_map.empty());
  EXPECT_EQ(comps[3].right_map, (std::vector<VertexId>{3}));
}

TEST(Components, EveryVertexAppearsExactlyOnce) {
  BipartiteGraph g = MakeRandomGraph({12, 10, 0.08, 7});
  std::vector<InducedSubgraph> comps = ConnectedComponents(g);
  std::set<VertexId> left, right;
  size_t edges = 0;
  for (const InducedSubgraph& c : comps) {
    for (VertexId v : c.left_map) EXPECT_TRUE(left.insert(v).second);
    for (VertexId u : c.right_map) EXPECT_TRUE(right.insert(u).second);
    edges += c.graph.NumEdges();
  }
  EXPECT_EQ(left.size(), g.NumLeft());
  EXPECT_EQ(right.size(), g.NumRight());
  EXPECT_EQ(edges, g.NumEdges());
}

// ------------------------------------------------- synchronized sink ------

TEST(Sinks, SynchronizedSinkStopIsSticky) {
  int accepted = 0;
  CallbackSink inner([&](const Biplex&) { return ++accepted < 2; });
  SynchronizedSink sink(&inner);
  Biplex b{{0}, {0}};
  EXPECT_TRUE(sink.Accept(b));
  EXPECT_FALSE(sink.Accept(b));  // inner refuses
  EXPECT_FALSE(sink.Accept(b));  // sticky: inner not called again
  EXPECT_EQ(accepted, 2);
}

TEST(Sinks, SynchronizedSinkSerializesConcurrentWriters) {
  CountingSink counter;
  SynchronizedSink sink(&counter);
  ThreadPool pool(4);
  for (int i = 0; i < 200; ++i) {
    pool.Submit([&sink] { sink.Accept(Biplex{{0}, {0}}); });
  }
  pool.Wait();
  EXPECT_EQ(counter.count(), 200u);
}

// ---------------------------------------------------- token chaining ------

TEST(Cancellation, ChildTokenSeesParentCancel) {
  CancellationToken parent;
  CancellationToken child(&parent);
  EXPECT_FALSE(child.IsCancelled());
  parent.Cancel();
  EXPECT_TRUE(child.IsCancelled());
}

TEST(Cancellation, ChildCancelDoesNotReachParent) {
  CancellationToken parent;
  CancellationToken child(&parent);
  child.Cancel();
  EXPECT_TRUE(child.IsCancelled());
  EXPECT_FALSE(parent.IsCancelled());
}

// -------------------------------------------------- sharding safety -------

TEST(ParallelDriver, ComponentShardingSafetyCondition) {
  // Two disjoint edges form one maximal 1-biplex spanning both
  // components, so thresholds at or below the budgets are never safe.
  EXPECT_FALSE(internal::ComponentShardingIsSafe(KPair::Uniform(1), 0, 0));
  EXPECT_FALSE(internal::ComponentShardingIsSafe(KPair::Uniform(1), 1, 1));
  EXPECT_FALSE(internal::ComponentShardingIsSafe(KPair::Uniform(1), 2, 2));
  EXPECT_TRUE(internal::ComponentShardingIsSafe(KPair::Uniform(1), 2, 3));
  EXPECT_TRUE(internal::ComponentShardingIsSafe(KPair::Uniform(1), 3, 3));
  EXPECT_FALSE(internal::ComponentShardingIsSafe(KPair::Uniform(2), 3, 3));
  EXPECT_TRUE(internal::ComponentShardingIsSafe(KPair::Uniform(2), 3, 5));
  EXPECT_TRUE(internal::ComponentShardingIsSafe(KPair{1, 2}, 3, 3));
}

// ------------------------------------------- parallel == sequential -------

/// Disjoint union: appends `b`'s vertices after `a`'s on both sides.
BipartiteGraph DisjointUnion(const BipartiteGraph& a,
                             const BipartiteGraph& b) {
  std::vector<BipartiteGraph::Edge> edges = a.Edges();
  for (const auto& [l, r] : b.Edges()) {
    edges.emplace_back(l + static_cast<VertexId>(a.NumLeft()),
                       r + static_cast<VertexId>(a.NumRight()));
  }
  return BipartiteGraph::FromEdges(a.NumLeft() + b.NumLeft(),
                                   a.NumRight() + b.NumRight(),
                                   std::move(edges));
}

struct ParallelCase {
  KPair k;
  size_t theta_left;
  size_t theta_right;
};

TEST(ParallelAgreement, EveryAlgorithmMatchesSequentialSet) {
  // Multi-component graphs exercise the component plan where it is safe
  // and the sequential fallback where it is not; the connected graph
  // exercises the mask/root-range plans and the fallback.
  std::vector<BipartiteGraph> graphs;
  graphs.push_back(DisjointUnion(MakeRandomGraph({4, 4, 0.6, 11}),
                                 MakeRandomGraph({4, 4, 0.7, 12})));
  graphs.push_back(DisjointUnion(
      DisjointUnion(MakeRandomGraph({3, 3, 0.8, 13}),
                    MakeRandomGraph({4, 3, 0.5, 14})),
      MakeRandomGraph({3, 4, 0.6, 15})));
  graphs.push_back(MakeRandomGraph({6, 6, 0.5, 16}));

  const std::vector<ParallelCase> cases = {
      {KPair::Uniform(1), 0, 0},  // unsafe for components: fallback path
      {KPair::Uniform(1), 1, 1},  // unsafe for components: fallback path
      {KPair::Uniform(1), 3, 3},  // safe: component plan engages
      {KPair::Uniform(2), 0, 0},
      {KPair::Uniform(2), 3, 5},  // safe for k = 2
      {KPair{1, 2}, 3, 3},        // asymmetric, traversal family only
  };
  const AlgorithmRegistry& registry = AlgorithmRegistry::Global();
  for (size_t gi = 0; gi < graphs.size(); ++gi) {
    Enumerator enumerator(graphs[gi]);
    for (const ParallelCase& c : cases) {
      for (const std::string& name : registry.Names()) {
        AlgorithmInfo info = *registry.Find(name);
        if (!info.supports_asymmetric_k && !c.k.IsUniform()) continue;
        if (info.requires_theta && (c.theta_left < 1 || c.theta_right < 1)) {
          continue;
        }
        EnumerateRequest req;
        req.algorithm = name;
        req.k = c.k;
        req.theta_left = c.theta_left;
        req.theta_right = c.theta_right;

        EnumerateStats seq_stats;
        req.threads = 1;
        std::vector<Biplex> expect = enumerator.Collect(req, &seq_stats);
        ASSERT_TRUE(seq_stats.ok()) << name << ": " << seq_stats.error;

        EnumerateStats par_stats;
        req.threads = 4;
        std::vector<Biplex> got = enumerator.Collect(req, &par_stats);
        ASSERT_TRUE(par_stats.ok()) << name << ": " << par_stats.error;
        EXPECT_EQ(par_stats.solutions, seq_stats.solutions) << name;
        EXPECT_TRUE(par_stats.completed) << name;
        ASSERT_EQ(got, expect)
            << name << " graph=" << gi << " k=(" << c.k.left << ","
            << c.k.right << ") theta=(" << c.theta_left << ","
            << c.theta_right << ")\ngot:\n"
            << ToString(got) << "want:\n"
            << ToString(expect);
      }
    }
  }
}

TEST(ParallelAgreement, AutoThreadCountMatchesToo) {
  BipartiteGraph g = DisjointUnion(MakeRandomGraph({4, 4, 0.6, 21}),
                                   MakeRandomGraph({4, 4, 0.6, 22}));
  Enumerator enumerator(g);
  EnumerateRequest req;
  req.algorithm = "brute-force";
  req.threads = 1;
  std::vector<Biplex> expect = enumerator.Collect(req);
  req.threads = 0;  // one worker per hardware thread
  EXPECT_EQ(enumerator.Collect(req), expect);
}

// ------------------------------------------------ budgets, cancellation ---

/// Complete bipartite K(nl, nr): its unique maximal k-biplex is the whole
/// vertex set, which makes solution counts exact in the budget tests.
BipartiteGraph CompleteBipartite(size_t nl, size_t nr) {
  std::vector<BipartiteGraph::Edge> edges;
  for (VertexId l = 0; l < nl; ++l) {
    for (VertexId r = 0; r < nr; ++r) edges.emplace_back(l, r);
  }
  return BipartiteGraph::FromEdges(nl, nr, std::move(edges));
}

TEST(ParallelBudgets, MaxResultsIsGlobalAcrossWorkers) {
  // Two complete 5x5 components: with theta = (3, 3) each holds exactly
  // one maximal 1-biplex (its full vertex set), so a global cap of 2 is
  // reached exactly and stops every worker.
  BipartiteGraph g =
      DisjointUnion(CompleteBipartite(5, 5), CompleteBipartite(5, 5));
  Enumerator enumerator(g);
  for (const char* name : {"brute-force", "imb", "itraversal"}) {
    EnumerateRequest req;
    req.algorithm = name;
    req.threads = 4;
    req.theta_left = name == std::string_view("itraversal") ? 3 : 0;
    req.theta_right = req.theta_left;
    req.max_results = 2;
    EnumerateStats stats;
    uint64_t n = enumerator.Count(req, &stats);
    ASSERT_TRUE(stats.ok()) << name << ": " << stats.error;
    EXPECT_EQ(n, 2u) << name;
    EXPECT_EQ(stats.solutions, 2u) << name;
    EXPECT_FALSE(stats.completed) << name;
  }
}

TEST(ParallelBudgets, PreCancelledTokenStopsParallelRuns) {
  BipartiteGraph g = DisjointUnion(MakeRandomGraph({5, 5, 0.6, 33}),
                                   MakeRandomGraph({5, 5, 0.6, 34}));
  Enumerator enumerator(g);
  CancellationToken token;
  token.Cancel();
  EnumerateRequest req;
  req.algorithm = "brute-force";
  req.threads = 4;
  req.cancellation = &token;
  EnumerateStats stats;
  EXPECT_EQ(enumerator.Count(req, &stats), 0u);
  EXPECT_FALSE(stats.completed);
  EXPECT_TRUE(stats.cancelled);
}

TEST(ParallelBudgets, SinkStopCountsOnlyAcceptedSolutions) {
  BipartiteGraph g = DisjointUnion(MakeRandomGraph({5, 5, 0.6, 35}),
                                   MakeRandomGraph({5, 5, 0.6, 36}));
  Enumerator enumerator(g);
  EnumerateRequest req;
  req.algorithm = "imb";
  req.threads = 4;
  std::atomic<int> calls{0};
  EnumerateStats stats = enumerator.Run(
      req, [&](const Biplex&) { return calls.fetch_add(1) + 1 < 3; });
  ASSERT_TRUE(stats.ok()) << stats.error;
  // The sink accepted exactly two solutions before refusing the third.
  EXPECT_EQ(stats.solutions, 2u);
  EXPECT_FALSE(stats.completed);
}

TEST(ParallelBudgets, NegativeThreadsRejected) {
  BipartiteGraph g = MakeGraph(2, 2, {{0, 0}});
  EnumerateRequest req;
  req.threads = -2;
  CountingSink sink;
  EnumerateStats stats = Enumerate(g, req, &sink);
  EXPECT_FALSE(stats.ok());
  EXPECT_NE(stats.error.find("threads"), std::string::npos);
}

// ----------------------------------------------- parallel imb bugfixes --

// Regression: the facade used to exclude the vertex-free graph from the
// parallel imb plan, and an embedder calling RunParallelImb directly got
// a SplitRange(0, n) shard whose handling was unpinned. The parallel run
// must reproduce the sequential result exactly: the empty biplex is the
// one maximal solution of the empty graph, and the stats carry the same
// imb detail block.
TEST(ParallelImb, EmptyGraphIsATrivialNoOp) {
  BipartiteGraph g = MakeGraph(0, 0, {});
  Enumerator enumerator(g);
  EnumerateRequest req;
  req.algorithm = "imb";
  req.threads = 1;
  EnumerateStats seq;
  const std::vector<Biplex> expect = enumerator.Collect(req, &seq);
  ASSERT_TRUE(seq.ok()) << seq.error;
  ASSERT_EQ(expect, std::vector<Biplex>{Biplex{}});  // the empty biplex

  req.threads = 4;
  EnumerateStats par;
  const std::vector<Biplex> got = enumerator.Collect(req, &par);
  ASSERT_TRUE(par.ok()) << par.error;
  EXPECT_EQ(got, expect);
  EXPECT_TRUE(par.completed);
  EXPECT_TRUE(par.imb.has_value());
  EXPECT_EQ(par.solutions, 1u);
}

/// Top-level key set of a one-line JSON object, enough to compare the
/// stats schema of two runs without comparing values.
std::set<std::string> JsonKeys(const std::string& text) {
  json::ParseResult parsed = json::Parse(text);
  EXPECT_TRUE(parsed.ok()) << parsed.error << "\nin: " << text;
  std::set<std::string> keys;
  if (parsed.ok() && parsed.value.is_object()) {
    for (const auto& [key, value] : parsed.value.AsObject()) {
      keys.insert(key);
    }
  }
  return keys;
}

// Regression: shards skipped because the time budget expired before they
// started never engaged `stats.imb`, so a budget-expired parallel run's
// JSON dropped the "imb" detail block that every other imb run carries —
// a schema divergence that breaks key-based consumers.
TEST(ParallelImb, BudgetExpiredRunKeepsStatsSchema) {
  BipartiteGraph g = MakeRandomGraph({6, 6, 0.5, 77});
  Enumerator enumerator(g);
  EnumerateRequest req;
  req.algorithm = "imb";
  req.time_budget_seconds = 1e-12;  // expired before any shard starts

  req.threads = 1;
  EnumerateStats seq;
  enumerator.Collect(req, &seq);
  ASSERT_TRUE(seq.ok()) << seq.error;
  // (The sequential run may still complete — a graph this small can
  // finish before the first deadline poll; the schema is what matters.)

  req.threads = 4;
  EnumerateStats par;
  enumerator.Collect(req, &par);
  ASSERT_TRUE(par.ok()) << par.error;
  EXPECT_FALSE(par.completed);
  ASSERT_TRUE(par.imb.has_value());
  EXPECT_FALSE(par.imb->completed);

  // Golden property: identical JSON schema regardless of thread count.
  EXPECT_EQ(JsonKeys(par.ToJson()), JsonKeys(seq.ToJson()))
      << "seq: " << seq.ToJson() << "\npar: " << par.ToJson();
}

}  // namespace
}  // namespace kbiplex
