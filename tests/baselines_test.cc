#include <algorithm>
#include <bit>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/imb.h"
#include "baselines/inflation_enum.h"
#include "baselines/kplex_enum.h"
#include "core/brute_force.h"
#include "graph/generators.h"
#include "graph/inflation.h"
#include "test_support.h"
#include "util/random.h"

namespace kbiplex {
namespace {

using testing_support::MakeRandomGraph;
using testing_support::ToString;

// ------------------------------------------------------ k-plex oracle -----

/// Exhaustive maximal p-plex enumeration on graphs with <= 20 vertices.
std::vector<std::vector<VertexId>> BruteForceMaximalKPlexes(
    const GeneralGraph& g, int p) {
  const size_t n = g.NumVertices();
  EXPECT_LE(n, 20u);
  std::vector<uint32_t> adj(n, 0);
  for (VertexId v = 0; v < n; ++v) {
    for (VertexId u : g.Neighbors(v)) adj[v] |= 1u << u;
  }
  auto is_plex = [&](uint32_t mask) {
    const int size = std::popcount(mask);
    for (uint32_t bits = mask; bits != 0; bits &= bits - 1) {
      const int v = std::countr_zero(bits);
      const int deg = std::popcount(mask & adj[static_cast<size_t>(v)]);
      if (size - deg > p) return false;
    }
    return true;
  };
  std::vector<std::vector<VertexId>> out;
  for (uint32_t mask = 0; mask < (1u << n); ++mask) {
    if (!is_plex(mask)) continue;
    bool maximal = true;
    for (size_t v = 0; v < n && maximal; ++v) {
      if ((mask >> v) & 1u) continue;
      if (is_plex(mask | (1u << v))) maximal = false;
    }
    if (!maximal) continue;
    std::vector<VertexId> set;
    for (uint32_t bits = mask; bits != 0; bits &= bits - 1) {
      set.push_back(static_cast<VertexId>(std::countr_zero(bits)));
    }
    out.push_back(std::move(set));
  }
  std::sort(out.begin(), out.end());
  return out;
}

GeneralGraph RandomGeneral(size_t n, double p, uint64_t seed) {
  Rng rng(seed);
  std::vector<GeneralGraph::Edge> edges;
  for (VertexId a = 0; a < n; ++a) {
    for (VertexId b = a + 1; b < n; ++b) {
      if (rng.NextBool(p)) edges.emplace_back(a, b);
    }
  }
  return GeneralGraph::FromEdges(n, std::move(edges));
}

class KPlexSweep
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(KPlexSweep, MatchesBruteForce) {
  const int p = std::get<0>(GetParam());
  const uint64_t seed = std::get<1>(GetParam());
  auto g = RandomGeneral(8, 0.4, seed * 3 + 1);
  auto expect = BruteForceMaximalKPlexes(g, p);
  std::vector<std::vector<VertexId>> got;
  KPlexEnumOptions opts;
  opts.p = p;
  EnumerateMaximalKPlexes(g, opts, [&](const std::vector<VertexId>& s) {
    got.push_back(s);
    return true;
  });
  std::sort(got.begin(), got.end());
  ASSERT_EQ(got, expect) << "p=" << p << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KPlexSweep,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(0, 1, 2, 3, 4, 5, 6, 7)));

TEST(KPlexEnum, MustContainFilters) {
  auto g = RandomGeneral(8, 0.5, 9);
  auto all = BruteForceMaximalKPlexes(g, 2);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    std::vector<std::vector<VertexId>> expect;
    for (const auto& s : all) {
      if (std::binary_search(s.begin(), s.end(), v)) expect.push_back(s);
    }
    std::vector<std::vector<VertexId>> got;
    KPlexEnumOptions opts;
    opts.p = 2;
    opts.must_contain = v;
    EnumerateMaximalKPlexes(g, opts, [&](const std::vector<VertexId>& s) {
      got.push_back(s);
      return true;
    });
    std::sort(got.begin(), got.end());
    ASSERT_EQ(got, expect) << "v=" << v;
  }
}

TEST(KPlexEnum, MinSizeFilters) {
  auto g = RandomGeneral(9, 0.5, 11);
  auto all = BruteForceMaximalKPlexes(g, 2);
  KPlexEnumOptions opts;
  opts.p = 2;
  opts.min_size = 4;
  std::vector<std::vector<VertexId>> got;
  EnumerateMaximalKPlexes(g, opts, [&](const std::vector<VertexId>& s) {
    got.push_back(s);
    return true;
  });
  std::sort(got.begin(), got.end());
  std::vector<std::vector<VertexId>> expect;
  for (const auto& s : all) {
    if (s.size() >= 4) expect.push_back(s);
  }
  ASSERT_EQ(got, expect);
}

TEST(KPlexEnum, CliquesWhenPIsOne) {
  // p=1 plexes are cliques: triangle plus a pendant.
  auto g = GeneralGraph::FromEdges(4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}});
  std::vector<std::vector<VertexId>> got;
  KPlexEnumOptions opts;
  opts.p = 1;
  EnumerateMaximalKPlexes(g, opts, [&](const std::vector<VertexId>& s) {
    got.push_back(s);
    return true;
  });
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, (std::vector<std::vector<VertexId>>{{0, 1, 2}, {2, 3}}));
}

TEST(KPlexEnum, PredicatesAgree) {
  auto g = RandomGeneral(8, 0.5, 13);
  for (const auto& s : BruteForceMaximalKPlexes(g, 2)) {
    EXPECT_TRUE(IsKPlex(g, s, 2));
    EXPECT_TRUE(IsMaximalKPlex(g, s, 2));
  }
}

// -------------------------------------------------- inflation equivalence --

// A k-biplex of G is exactly a (k+1)-plex of the inflation of G; maximal
// sets correspond one-to-one.
class InflationEquivalence
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(InflationEquivalence, MaximalSetsCorrespond) {
  const int k = std::get<0>(GetParam());
  const uint64_t seed = std::get<1>(GetParam());
  auto g = MakeRandomGraph({5, 5, 0.5, seed * 11});
  InflatedGraph inf = Inflate(g);
  auto plexes = BruteForceMaximalKPlexes(inf.graph, k + 1);
  std::vector<Biplex> mapped;
  for (const auto& s : plexes) {
    Biplex b;
    for (VertexId x : s) {
      if (inf.SideOf(x) == Side::kLeft) {
        b.left.push_back(inf.BipartiteId(x));
      } else {
        b.right.push_back(inf.BipartiteId(x));
      }
    }
    mapped.push_back(std::move(b));
  }
  std::sort(mapped.begin(), mapped.end());
  ASSERT_EQ(mapped, BruteForceMaximalBiplexes(g, k))
      << "k=" << k << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, InflationEquivalence,
    ::testing::Combine(::testing::Values(1, 2),
                       ::testing::Values(0, 1, 2, 3, 4)));

// ------------------------------------------------- inflation baseline -----

class InflationBaselineSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(InflationBaselineSweep, MatchesBruteForce) {
  const uint64_t seed = GetParam();
  auto g = MakeRandomGraph({6, 5, 0.5, seed + 60});
  for (int k = 1; k <= 2; ++k) {
    std::vector<Biplex> got;
    InflationBaselineOptions opts;
    opts.k = k;
    auto stats = InflationEngine(g, opts).Run([&](const Biplex& b) {
      got.push_back(b);
      return true;
    });
    EXPECT_TRUE(stats.completed);
    std::sort(got.begin(), got.end());
    ASSERT_EQ(got, BruteForceMaximalBiplexes(g, k))
        << "k=" << k << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InflationBaselineSweep,
                         ::testing::Values(0, 1, 2, 3, 4, 5));

TEST(InflationBaseline, OutGuardTriggers) {
  Rng rng(3);
  auto g = ErdosRenyiBipartite(100, 100, 300, &rng);
  InflationBaselineOptions opts;
  opts.k = 1;
  opts.max_inflated_edges = 1000;  // far below the ~10200 required
  auto stats = InflationEngine(g, opts).Run([](const Biplex&) {
    ADD_FAILURE() << "should not produce solutions";
    return true;
  });
  EXPECT_TRUE(stats.out_of_budget);
  EXPECT_FALSE(stats.completed);
}

// ----------------------------------------------------------------- iMB ----

class ImbSweep
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(ImbSweep, MatchesBruteForce) {
  const int k = std::get<0>(GetParam());
  const uint64_t seed = std::get<1>(GetParam());
  auto g = MakeRandomGraph({6, 5, 0.45, seed * 17 + 2});
  std::vector<Biplex> got;
  ImbOptions opts;
  opts.k = k;
  ImbStats stats = ImbEngine(g, opts).Run([&](const Biplex& b) {
    got.push_back(b);
    return true;
  });
  EXPECT_TRUE(stats.completed);
  std::sort(got.begin(), got.end());
  ASSERT_EQ(got, BruteForceMaximalBiplexes(g, k))
      << "k=" << k << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ImbSweep,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(0, 1, 2, 3, 4, 5, 6, 7)));

TEST(Imb, SizeConstraintsFilterAndPrune) {
  auto g = MakeRandomGraph({7, 7, 0.5, 123});
  auto all = BruteForceMaximalBiplexes(g, 1);
  ImbOptions opts;
  opts.k = 1;
  opts.theta_left = 2;
  opts.theta_right = 3;
  std::vector<Biplex> got;
  ImbStats constrained = ImbEngine(g, opts).Run([&](const Biplex& b) {
    got.push_back(b);
    return true;
  });
  std::sort(got.begin(), got.end());
  ASSERT_EQ(got, FilterBySize(all, 2, 3));
  // Pruning must not expand the search tree.
  ImbOptions unconstrained;
  unconstrained.k = 1;
  ImbStats full = ImbEngine(g, unconstrained).Run([](const Biplex&) { return true; });
  EXPECT_LE(constrained.nodes, full.nodes);
}

TEST(Imb, MaxResultsStops) {
  auto g = MakeRandomGraph({7, 7, 0.5, 9});
  ImbOptions opts;
  opts.k = 1;
  opts.max_results = 2;
  size_t count = 0;
  ImbStats stats = ImbEngine(g, opts).Run([&](const Biplex&) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 2u);
  EXPECT_FALSE(stats.completed);
}

}  // namespace
}  // namespace kbiplex
