#include <algorithm>

#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "core/btraversal.h"
#include "core/large_mbp.h"
#include "graph/generators.h"
#include "test_support.h"
#include "util/random.h"

namespace kbiplex {
namespace {

using testing_support::CollectWith;
using testing_support::CollectLargeWith;
using testing_support::MakeRandomGraph;
using testing_support::ToString;

class LargeMbpSweep : public ::testing::TestWithParam<
                          std::tuple<int, size_t, size_t, uint64_t>> {};

TEST_P(LargeMbpSweep, MatchesFilteredBruteForce) {
  const int k = std::get<0>(GetParam());
  const size_t theta_l = std::get<1>(GetParam());
  const size_t theta_r = std::get<2>(GetParam());
  const uint64_t seed = std::get<3>(GetParam());
  auto g = MakeRandomGraph({6, 6, 0.55, seed * 5 + 1});
  const auto expect =
      FilterBySize(BruteForceMaximalBiplexes(g, k), theta_l, theta_r);
  for (bool core_reduction : {false, true}) {
    LargeMbpOptions opts;
    opts.k = KPair::Uniform(k);
    opts.theta_left = theta_l;
    opts.theta_right = theta_r;
    opts.core_reduction = core_reduction;
    auto got = CollectLargeWith(g, opts);
    ASSERT_EQ(got, expect)
        << "k=" << k << " theta=(" << theta_l << "," << theta_r
        << ") seed=" << seed << " core=" << core_reduction << "\ngot:\n"
        << ToString(got) << "want:\n"
        << ToString(expect);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LargeMbpSweep,
    ::testing::Combine(::testing::Values(1, 2), ::testing::Values(1, 2, 3),
                       ::testing::Values(1, 2, 3),
                       ::testing::Values(0, 1, 2, 3)));

TEST(LargeMbp, CoreReductionShrinksGraph) {
  Rng rng(9);
  auto base = ErdosRenyiBipartite(40, 40, 60, &rng);
  auto g = PlantDenseBlock(base, 6, 6, 1.0, &rng);
  LargeMbpOptions opts;
  opts.k = KPair::Uniform(1);
  opts.theta_left = 5;
  opts.theta_right = 5;
  LargeMbpStats stats;
  auto got = CollectLargeWith(g, opts, &stats);
  // The dense block survives; most of the sparse base is peeled away.
  EXPECT_LT(stats.core_left, g.NumLeft());
  EXPECT_LT(stats.core_right, g.NumRight());
  // The planted 6x6 complete block is a large MBP (possibly extended).
  ASSERT_FALSE(got.empty());
  bool contains_block = false;
  for (const Biplex& b : got) {
    bool all = true;
    for (VertexId v = 40; v < 46 && all; ++v) {
      all = sorted::Contains(b.left, v);
    }
    for (VertexId u = 40; u < 46 && all; ++u) {
      all = sorted::Contains(b.right, u);
    }
    if (all) contains_block = true;
  }
  EXPECT_TRUE(contains_block);
}

TEST(LargeMbp, EmptyResultWhenThresholdTooHigh) {
  Rng rng(10);
  auto g = ErdosRenyiBipartite(15, 15, 30, &rng);
  LargeMbpOptions opts;
  opts.k = KPair::Uniform(1);
  opts.theta_left = 10;
  opts.theta_right = 10;
  auto got = CollectLargeWith(g, opts);
  EXPECT_TRUE(got.empty());
}

TEST(LargeMbp, SolutionsKeepOriginalIds) {
  Rng rng(11);
  auto base = ErdosRenyiBipartite(20, 20, 20, &rng);
  auto g = PlantDenseBlock(base, 5, 5, 1.0, &rng);
  LargeMbpOptions opts;
  opts.k = KPair::Uniform(1);
  opts.theta_left = 4;
  opts.theta_right = 4;
  for (const Biplex& b : CollectLargeWith(g, opts)) {
    EXPECT_TRUE(IsMaximalKBiplex(g, b, 1)) << ToString(b);
    EXPECT_GE(b.left.size(), 4u);
    EXPECT_GE(b.right.size(), 4u);
  }
}

TEST(LargeMbp, PruningDoesLessWorkThanFiltering) {
  Rng rng(12);
  auto base = ErdosRenyiBipartite(20, 20, 60, &rng);
  auto g = PlantDenseBlock(base, 5, 5, 1.0, &rng);
  // Pruned run.
  LargeMbpOptions opts;
  opts.k = KPair::Uniform(1);
  opts.theta_left = 4;
  opts.theta_right = 4;
  opts.core_reduction = false;  // isolate the Section 5 prunes
  LargeMbpStats pruned;
  auto got = CollectLargeWith(g, opts, &pruned);
  // Unpruned full enumeration with post-filtering.
  TraversalOptions full = MakeITraversalOptions(1);
  TraversalStats full_stats;
  auto all = CollectWith(g, full, &full_stats);
  ASSERT_EQ(got, FilterBySize(all, 4, 4));
  EXPECT_LE(pruned.traversal.links, full_stats.links);
  EXPECT_LE(pruned.traversal.local_solutions, full_stats.local_solutions);
}

TEST(LargeMbp, ThetaOneEqualsFullEnumerationNonEmptySides) {
  auto g = MakeRandomGraph({6, 6, 0.5, 77});
  LargeMbpOptions opts;
  opts.k = KPair::Uniform(1);
  opts.theta_left = 1;
  opts.theta_right = 1;
  auto got = CollectLargeWith(g, opts);
  auto expect = FilterBySize(BruteForceMaximalBiplexes(g, 1), 1, 1);
  ASSERT_EQ(got, expect);
}

}  // namespace
}  // namespace kbiplex
