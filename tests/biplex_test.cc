#include <algorithm>

#include <gtest/gtest.h>

#include "core/biplex.h"
#include "core/brute_force.h"
#include "graph/generators.h"
#include "test_support.h"
#include "util/random.h"

namespace kbiplex {
namespace {

using testing_support::MakeGraph;
using testing_support::MakeRandomGraph;
using testing_support::RandomGraphCase;
using testing_support::ToString;

TEST(BiplexKey, RoundTrip) {
  Biplex b{{1, 5, 9}, {0, 2}};
  Biplex back = DecodeBiplexKey(EncodeBiplexKey(b));
  EXPECT_EQ(back, b);
}

TEST(BiplexKey, EmptySides) {
  Biplex b;
  EXPECT_EQ(DecodeBiplexKey(EncodeBiplexKey(b)), b);
  Biplex l{{3}, {}};
  EXPECT_EQ(DecodeBiplexKey(EncodeBiplexKey(l)), l);
  Biplex r{{}, {7}};
  EXPECT_EQ(DecodeBiplexKey(EncodeBiplexKey(r)), r);
}

TEST(BiplexKey, DistinctBiplexesDistinctKeys) {
  // (|L|, ids...) framing distinguishes {1|2} from {1 2|}.
  Biplex a{{1}, {2}};
  Biplex b{{1, 2}, {}};
  EXPECT_NE(EncodeBiplexKey(a), EncodeBiplexKey(b));
}

TEST(IsKBiplex, Definition) {
  // Complete 2x2 minus one edge.
  auto g = MakeGraph(2, 2, {{0, 0}, {0, 1}, {1, 0}});
  Biplex all{{0, 1}, {0, 1}};
  EXPECT_FALSE(IsKBiplex(g, all, 0));
  EXPECT_TRUE(IsKBiplex(g, all, 1));
  Biplex sub{{0}, {0, 1}};
  EXPECT_TRUE(IsKBiplex(g, sub, 0));
}

TEST(IsKBiplex, EmptySidesAreAlwaysBiplexes) {
  auto g = MakeGraph(2, 2, {});
  EXPECT_TRUE(IsKBiplex(g, Biplex{}, 1));
  EXPECT_TRUE(IsKBiplex(g, Biplex{{0, 1}, {}}, 1));
  EXPECT_TRUE(IsKBiplex(g, Biplex{{}, {0, 1}}, 1));
}

TEST(HereditaryProperty, SubgraphsOfBiplexesAreBiplexes) {
  Rng rng(21);
  auto g = ErdosRenyiProbBipartite(6, 6, 0.5, &rng);
  auto solutions = BruteForceMaximalBiplexes(g, 1);
  for (const Biplex& b : solutions) {
    // Drop each single vertex; the rest must stay a 1-biplex.
    for (VertexId v : b.left) {
      Biplex sub = b;
      sorted::Erase(&sub.left, v);
      EXPECT_TRUE(IsKBiplex(g, sub, 1)) << ToString(sub);
    }
    for (VertexId u : b.right) {
      Biplex sub = b;
      sorted::Erase(&sub.right, u);
      EXPECT_TRUE(IsKBiplex(g, sub, 1)) << ToString(sub);
    }
  }
}

TEST(CanAdd, RespectsBothSidesBudgets) {
  // g: left {0,1}, right {0,1,2}; edges make right 0 miss both lefts.
  auto g = MakeGraph(2, 3, {{0, 1}, {0, 2}, {1, 1}, {1, 2}});
  Biplex b{{0, 1}, {1, 2}};
  ASSERT_TRUE(IsKBiplex(g, b, 1));
  // Adding right 0 gives it two disconnections (k=1 forbids).
  EXPECT_FALSE(CanAdd(g, b, Side::kRight, 0, 1));
  EXPECT_TRUE(CanAdd(g, b, Side::kRight, 0, 2));
}

TEST(CanAdd, MemberNotAddable) {
  auto g = MakeGraph(2, 2, {{0, 0}, {1, 1}});
  Biplex b{{0}, {0}};
  EXPECT_FALSE(CanAdd(g, b, Side::kLeft, 0, 1));
}

TEST(IsMaximalKBiplex, AgreesWithBruteForceDefinition) {
  Rng rng(33);
  auto g = ErdosRenyiProbBipartite(5, 5, 0.5, &rng);
  auto maximal = BruteForceMaximalBiplexes(g, 1);
  for (const Biplex& b : maximal) {
    EXPECT_TRUE(IsMaximalKBiplex(g, b, 1)) << ToString(b);
  }
  // A strict subset of a maximal solution is not maximal.
  for (const Biplex& b : maximal) {
    if (b.left.empty()) continue;
    Biplex sub = b;
    sub.left.erase(sub.left.begin());
    EXPECT_FALSE(IsMaximalKBiplex(g, sub, 1)) << ToString(sub);
  }
}

TEST(MaximalExtender, ExtendsToMaximal) {
  Rng rng(44);
  for (uint64_t seed = 0; seed < 20; ++seed) {
    auto g = MakeRandomGraph({6, 6, 0.4, seed});
    MaximalExtender ext(g, 1);
    Biplex b;  // empty seed
    ext.Extend(&b, true, true);
    EXPECT_TRUE(IsMaximalKBiplex(g, b, 1)) << "seed=" << seed << ToString(b);
  }
}

TEST(MaximalExtender, DeterministicForSameSeed) {
  auto g = RunningExampleGraph();
  MaximalExtender ext(g, 1);
  Biplex a{{1}, {0, 1}};
  Biplex b = a;
  ext.Extend(&a, true, true);
  ext.Extend(&b, true, true);
  EXPECT_EQ(a, b);
}

TEST(MaximalExtender, GrowLeftOnlyKeepsRightFixed) {
  auto g = RunningExampleGraph();
  MaximalExtender ext(g, 1);
  Biplex b{{}, {0, 1, 2, 3, 4}};
  ext.Extend(&b, /*grow_left=*/true, /*grow_right=*/false);
  EXPECT_EQ(b.right.size(), 5u);
  // v4 misses only u4, so it joins; all others miss >= 2.
  EXPECT_EQ(b.left, (std::vector<VertexId>{4}));
  EXPECT_TRUE(IsKBiplex(g, b, 1));
}

TEST(MaximalExtender, ExtensionPreservesSeed) {
  Rng rng(55);
  auto g = ErdosRenyiProbBipartite(7, 7, 0.5, &rng);
  MaximalExtender ext(g, 2);
  Biplex seed{{2}, {3}};
  ASSERT_TRUE(IsKBiplex(g, seed, 2));
  Biplex out = seed;
  ext.Extend(&out, true, true);
  EXPECT_TRUE(sorted::IsSubset(seed.left, out.left));
  EXPECT_TRUE(sorted::IsSubset(seed.right, out.right));
  EXPECT_TRUE(IsMaximalKBiplex(g, out, 2));
}

TEST(MaximalExtender, AnyAddableMatchesDefinition) {
  Rng rng(66);
  for (uint64_t seed = 0; seed < 10; ++seed) {
    auto g = MakeRandomGraph({5, 5, 0.5, seed + 100});
    MaximalExtender ext(g, 1);
    for (const Biplex& b : BruteForceMaximalBiplexes(g, 1)) {
      EXPECT_FALSE(ext.AnyAddable(b, Side::kLeft));
      EXPECT_FALSE(ext.AnyAddable(b, Side::kRight));
    }
  }
}

// Property sweep: for random k-biplex seeds, Extend yields a maximal
// k-biplex containing the seed.
class ExtenderSweep
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(ExtenderSweep, ExtendAlwaysMaximal) {
  const int k = std::get<0>(GetParam());
  const uint64_t seed = std::get<1>(GetParam());
  auto g = MakeRandomGraph({6, 5, 0.45, seed});
  MaximalExtender ext(g, k);
  Rng rng(seed * 31 + 7);
  for (int trial = 0; trial < 10; ++trial) {
    Biplex seed_bp;
    for (VertexId v = 0; v < g.NumLeft(); ++v) {
      if (rng.NextBool(0.3)) seed_bp.left.push_back(v);
    }
    for (VertexId u = 0; u < g.NumRight(); ++u) {
      if (rng.NextBool(0.3)) seed_bp.right.push_back(u);
    }
    if (!IsKBiplex(g, seed_bp, k)) continue;
    Biplex out = seed_bp;
    ext.Extend(&out, true, true);
    ASSERT_TRUE(IsMaximalKBiplex(g, out, k))
        << "k=" << k << " seed=" << seed << " " << ToString(out);
    ASSERT_TRUE(sorted::IsSubset(seed_bp.left, out.left));
    ASSERT_TRUE(sorted::IsSubset(seed_bp.right, out.right));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExtenderSweep,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8)));

}  // namespace
}  // namespace kbiplex
