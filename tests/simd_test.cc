// Tests of the runtime-dispatched SIMD kernel tables (util/simd.h): the
// native table must agree with the portable scalar table on every kernel,
// across word counts chosen so vector bodies, partial tails, and
// word-boundary sizes (63/64/65/127/129 bits) are all exercised.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "util/random.h"
#include "util/simd.h"

namespace kbiplex {
namespace {

// Word counts covering the boundary bit sizes 63/64/65/127/129 (1, 2, and
// 3 words) plus sizes long enough to fill AVX2 vector bodies with and
// without scalar tails.
const size_t kWordCounts[] = {0, 1, 2, 3, 4, 5, 8, 11, 64, 65};

std::vector<uint64_t> RandomWords(size_t n, Rng* rng) {
  std::vector<uint64_t> w(n);
  for (uint64_t& x : w) x = rng->Next();
  return w;
}

TEST(SimdKernels, TablesAreWellFormed) {
  for (const simd::Kernels* k :
       {&simd::Scalar(), &simd::Native(), &simd::Active()}) {
    ASSERT_NE(k->name, nullptr);
    ASSERT_NE(k->intersect_count, nullptr);
    ASSERT_NE(k->popcount, nullptr);
    ASSERT_NE(k->is_subset, nullptr);
    ASSERT_NE(k->intersects, nullptr);
    ASSERT_NE(k->or_words, nullptr);
    ASSERT_NE(k->and_words, nullptr);
    ASSERT_NE(k->andnot_words, nullptr);
    ASSERT_NE(k->row_conn_count, nullptr);
  }
  EXPECT_STREQ(simd::Scalar().name, "scalar");
  // Active is either the native table or the forced scalar table — never
  // something else.
  if (simd::ForcedScalar()) {
    EXPECT_STREQ(simd::Active().name, "scalar");
  } else {
    EXPECT_STREQ(simd::Active().name, simd::Native().name);
  }
}

TEST(SimdKernels, NativeMatchesScalarOnRandomWords) {
  const simd::Kernels& s = simd::Scalar();
  const simd::Kernels& v = simd::Native();
  Rng rng(41);
  for (size_t n : kWordCounts) {
    for (int rep = 0; rep < 8; ++rep) {
      std::vector<uint64_t> a = RandomWords(n, &rng);
      std::vector<uint64_t> b = RandomWords(n, &rng);
      EXPECT_EQ(v.popcount(a.data(), n), s.popcount(a.data(), n))
          << "n=" << n;
      EXPECT_EQ(v.intersect_count(a.data(), b.data(), n),
                s.intersect_count(a.data(), b.data(), n))
          << "n=" << n;
      EXPECT_EQ(v.is_subset(a.data(), b.data(), n),
                s.is_subset(a.data(), b.data(), n))
          << "n=" << n;
      EXPECT_EQ(v.intersects(a.data(), b.data(), n),
                s.intersects(a.data(), b.data(), n))
          << "n=" << n;

      std::vector<uint64_t> d1 = a;
      std::vector<uint64_t> d2 = a;
      v.or_words(d1.data(), b.data(), n);
      s.or_words(d2.data(), b.data(), n);
      EXPECT_EQ(d1, d2) << "or n=" << n;
      d1 = a;
      d2 = a;
      v.and_words(d1.data(), b.data(), n);
      s.and_words(d2.data(), b.data(), n);
      EXPECT_EQ(d1, d2) << "and n=" << n;
      d1 = a;
      d2 = a;
      v.andnot_words(d1.data(), b.data(), n);
      s.andnot_words(d2.data(), b.data(), n);
      EXPECT_EQ(d1, d2) << "andnot n=" << n;
    }
  }
}

TEST(SimdKernels, SubsetAndIntersectAgreeOnConstructedCases) {
  const simd::Kernels& s = simd::Scalar();
  const simd::Kernels& v = simd::Native();
  Rng rng(42);
  for (size_t n : kWordCounts) {
    if (n == 0) {
      // Empty sets: trivially subsets, never intersecting.
      EXPECT_TRUE(v.is_subset(nullptr, nullptr, 0));
      EXPECT_FALSE(v.intersects(nullptr, nullptr, 0));
      continue;
    }
    // a := b with some bits cleared is always a subset of b; flipping one
    // extra bit on breaks it in exactly one word.
    std::vector<uint64_t> b = RandomWords(n, &rng);
    std::vector<uint64_t> a = b;
    for (uint64_t& x : a) x &= rng.Next();
    EXPECT_TRUE(v.is_subset(a.data(), b.data(), n)) << "n=" << n;
    EXPECT_TRUE(s.is_subset(a.data(), b.data(), n)) << "n=" << n;
    const size_t wi = static_cast<size_t>(rng.NextBelow(n));
    const uint64_t extra = 1ULL << rng.NextBelow(64);
    if ((b[wi] & extra) == 0) {
      a[wi] |= extra;
      EXPECT_FALSE(v.is_subset(a.data(), b.data(), n)) << "n=" << n;
      EXPECT_FALSE(s.is_subset(a.data(), b.data(), n)) << "n=" << n;
    }
    // Disjoint words never intersect.
    std::vector<uint64_t> c(n);
    for (size_t i = 0; i < n; ++i) c[i] = ~b[i];
    EXPECT_FALSE(v.intersects(c.data(), b.data(), n)) << "n=" << n;
    EXPECT_FALSE(s.intersects(c.data(), b.data(), n)) << "n=" << n;
  }
}

TEST(SimdKernels, RowConnCountMatchesScalarAtWordBoundaries) {
  const simd::Kernels& s = simd::Scalar();
  const simd::Kernels& v = simd::Native();
  Rng rng(43);
  // Bit universes straddling word boundaries, the sizes the adjacency
  // index representation-agreement suite also pins.
  for (size_t bits : {63u, 64u, 65u, 127u, 129u, 4096u}) {
    const size_t words = (bits + 63) / 64;
    std::vector<uint64_t> row = RandomWords(words, &rng);
    // Clear bits past the universe so every id is addressable.
    if (bits % 64 != 0) row.back() &= (1ULL << (bits % 64)) - 1;
    for (size_t count : {size_t{0}, size_t{1}, size_t{3}, bits / 2, bits}) {
      std::vector<uint64_t> sample = rng.SampleDistinct(bits, count);
      std::vector<uint32_t> subset(sample.begin(), sample.end());
      EXPECT_EQ(v.row_conn_count(row.data(), subset.data(), subset.size()),
                s.row_conn_count(row.data(), subset.data(), subset.size()))
          << "bits=" << bits << " count=" << count;
    }
  }
}

TEST(SimdKernels, RowConnCountCountsExactly) {
  // Not just scalar/native agreement: the scalar reference itself must
  // count set bits exactly. One fixed case with hand-checkable answers.
  std::vector<uint64_t> row = {0, 0, 0};
  const auto set_bit = [&row](uint32_t u) {
    row[u >> 6] |= 1ULL << (u & 63);
  };
  for (uint32_t u : {0u, 1u, 63u, 64u, 65u, 127u, 128u, 191u}) set_bit(u);
  const std::vector<uint32_t> all = {0,  1,  2,  62, 63,  64,
                                     65, 66, 127, 128, 190, 191};
  // Present: 0, 1, 63, 64, 65, 127, 128, 191 -> 8 of the 12 probed.
  for (const simd::Kernels* k : {&simd::Scalar(), &simd::Native()}) {
    EXPECT_EQ(k->row_conn_count(row.data(), all.data(), all.size()), 8u)
        << k->name;
    EXPECT_EQ(k->row_conn_count(row.data(), all.data(), 0), 0u) << k->name;
  }
}

}  // namespace
}  // namespace kbiplex
