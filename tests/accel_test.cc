// Tests of the hot-path acceleration stack: the hybrid bitset adjacency
// index, the degeneracy renumbering pass, the 2-hop candidate generator,
// the EnumAlmostSat workspace — and, the load-bearing property, that every
// registered algorithm delivers exactly the seed solution set with
// acceleration enabled, sequentially and under --threads > 1.
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/enumerator.h"
#include "core/btraversal.h"
#include "core/enum_almost_sat.h"
#include "graph/adjacency_index.h"
#include "graph/renumber.h"
#include "test_support.h"

namespace kbiplex {
namespace {

using testing_support::CollectWith;
using testing_support::MakeGraph;
using testing_support::MakeRandomGraph;
using testing_support::RandomGraphCase;
using testing_support::ToString;

// ------------------------------------------------------- adjacency index --

TEST(AdjacencyIndex, AgreesWithCsrOnEveryPair) {
  for (const RandomGraphCase& c :
       {RandomGraphCase{7, 9, 0.4, 21}, RandomGraphCase{12, 5, 0.7, 22},
        RandomGraphCase{10, 10, 0.15, 23}}) {
    BipartiteGraph g = MakeRandomGraph(c);
    // min_degree = 1: every non-isolated vertex gets a row.
    AdjacencyIndex index(g, 1);
    for (VertexId l = 0; l < g.NumLeft(); ++l) {
      for (VertexId r = 0; r < g.NumRight(); ++r) {
        const bool expect = g.HasEdge(l, r);
        if (index.HasRow(Side::kLeft, l)) {
          EXPECT_EQ(index.TestRow(Side::kLeft, l, r), expect);
        }
        if (index.HasRow(Side::kRight, r)) {
          EXPECT_EQ(index.TestRow(Side::kRight, r, l), expect);
        }
      }
    }
  }
}

TEST(AdjacencyIndex, AttachedIndexKeepsIsAdjacentExact) {
  BipartiteGraph plain = MakeRandomGraph({11, 8, 0.5, 24});
  BipartiteGraph indexed = plain;
  indexed.BuildAdjacencyIndex(/*min_degree=*/1);
  ASSERT_NE(indexed.adjacency_index(), nullptr);
  EXPECT_EQ(plain.adjacency_index(), nullptr);
  for (VertexId l = 0; l < plain.NumLeft(); ++l) {
    for (VertexId r = 0; r < plain.NumRight(); ++r) {
      EXPECT_EQ(indexed.IsAdjacent(Side::kLeft, l, r),
                plain.IsAdjacent(Side::kLeft, l, r));
      EXPECT_EQ(indexed.IsAdjacent(Side::kRight, r, l),
                plain.IsAdjacent(Side::kRight, r, l));
    }
  }
}

TEST(AdjacencyIndex, RowConnCountMatchesConnCount) {
  BipartiteGraph g = MakeRandomGraph({9, 13, 0.45, 25});
  AdjacencyIndex index(g, 1);
  const std::vector<VertexId> subset = {0, 2, 3, 7, 11};
  for (VertexId l = 0; l < g.NumLeft(); ++l) {
    if (!index.HasRow(Side::kLeft, l)) continue;
    EXPECT_EQ(index.RowConnCount(Side::kLeft, l, subset),
              g.ConnCount(Side::kLeft, l, subset));
  }
  EXPECT_EQ(AcceleratedConnCount(&index, g, Side::kLeft, 0, subset),
            g.ConnCount(Side::kLeft, 0, subset));
  EXPECT_EQ(AcceleratedConnCount(nullptr, g, Side::kLeft, 0, subset),
            g.ConnCount(Side::kLeft, 0, subset));
}

TEST(AdjacencyIndex, AutoThresholdSkipsSparseVertices) {
  // 3-regular-ish graph: auto threshold is at least kMinAutoDegree = 16,
  // so no rows are built.
  BipartiteGraph g = MakeRandomGraph({20, 20, 0.12, 26});
  AdjacencyIndex index(g);
  EXPECT_GE(index.min_degree(), AdjacencyIndex::kMinAutoDegree);
  EXPECT_EQ(index.NumRows(Side::kLeft), 0u);
  EXPECT_EQ(index.NumRows(Side::kRight), 0u);
}

TEST(AdjacencyIndex, InduceAndTransposePropagateTheIndex) {
  BipartiteGraph g = MakeRandomGraph({10, 10, 0.5, 27});
  g.BuildAdjacencyIndex(1);
  InducedSubgraph sub = Induce(g, {0, 1, 2, 5}, {1, 3, 4, 8});
  ASSERT_NE(sub.graph.adjacency_index(), nullptr);
  for (VertexId l = 0; l < sub.graph.NumLeft(); ++l) {
    for (VertexId r = 0; r < sub.graph.NumRight(); ++r) {
      EXPECT_EQ(sub.graph.IsAdjacent(Side::kLeft, l, r),
                g.HasEdge(sub.left_map[l], sub.right_map[r]));
    }
  }
  BipartiteGraph t = g.Transposed();
  ASSERT_NE(t.adjacency_index(), nullptr);
  for (VertexId l = 0; l < t.NumLeft(); ++l) {
    for (VertexId r = 0; r < t.NumRight(); ++r) {
      EXPECT_EQ(t.IsAdjacent(Side::kLeft, l, r), g.HasEdge(r, l));
    }
  }
}

// -------------------------------------------- compressed representations --

TEST(AdjacencyIndex, NoBudgetKeepsEveryRowDense) {
  BipartiteGraph g = MakeRandomGraph({20, 20, 0.4, 71});
  AdjacencyIndex index(g, 1);
  const AdjacencyIndex::RepresentationStats& rep =
      index.representation_stats();
  EXPECT_GT(rep.dense_rows, 0u);
  EXPECT_EQ(rep.sparse_rows, 0u);
  EXPECT_EQ(rep.dropped_rows, 0u);
  EXPECT_EQ(rep.sparse_bytes, 0u);
  EXPECT_EQ(index.MemoryBytes(), rep.total_bytes());
  EXPECT_EQ(index.memory_budget_bytes(), AdjacencyIndex::kNoBudget);
}

TEST(AdjacencyIndex, BudgetDemotesToSparseAndNeverExceedsTheBound) {
  // Wide opposite side + low degree: a dense row costs 4 words (32
  // bytes) while a sparse run at average degree ~2 costs ~12 bytes, so
  // demotion genuinely compresses instead of degenerating to drops.
  BipartiteGraph g = MakeRandomGraph({200, 200, 0.01, 72});
  AdjacencyIndex dense(g, 1);
  const size_t dense_bytes = dense.MemoryBytes();
  ASSERT_GT(dense_bytes, 0u);
  // Budgets sweeping from generous to starved: the pool must fit each
  // one, and tighter budgets must engage sparse rows and then drops.
  for (size_t budget :
       {dense_bytes, dense_bytes / 2, dense_bytes / 4, size_t{64}}) {
    AdjacencyIndex bounded(g, 1, budget);
    EXPECT_LE(bounded.MemoryBytes(), budget) << "budget=" << budget;
    EXPECT_EQ(bounded.memory_budget_bytes(), budget);
    const AdjacencyIndex::RepresentationStats& rep =
        bounded.representation_stats();
    EXPECT_EQ(rep.total_bytes(), bounded.MemoryBytes());
    // Every qualifying row is accounted for in exactly one bucket.
    EXPECT_EQ(rep.dense_rows + rep.sparse_rows + rep.dropped_rows,
              dense.representation_stats().dense_rows);
  }
  // A halved budget on this sparse-ish graph demotes without dropping
  // (the sorted arrays fit comfortably) — the compression actually
  // engages rather than degenerating to row drops.
  AdjacencyIndex halved(g, 1, dense_bytes / 2);
  EXPECT_GT(halved.representation_stats().sparse_rows, 0u);
  EXPECT_EQ(halved.representation_stats().dropped_rows, 0u);
}

TEST(AdjacencyIndex, RepresentationsAgreeAtWordBoundarySizes) {
  // Opposite-side sizes straddling 64-bit word boundaries: dense rows get
  // tail words, sparse rows get the same ids; every representation must
  // answer TestRow/RowConnCount identically to the CSR ground truth.
  for (size_t nr : {63u, 64u, 65u, 127u, 129u}) {
    BipartiteGraph g = MakeRandomGraph({12, nr, 0.3, 73 + nr});
    AdjacencyIndex dense(g, 1);
    AdjacencyIndex sparse(g, 1, size_t{1});  // starved: sparse or dropped
    Rng rng(74 + nr);
    std::vector<VertexId> subset;
    for (VertexId r = 0; r < g.NumRight(); ++r) {
      if (rng.NextBool(0.5)) subset.push_back(r);
    }
    for (VertexId l = 0; l < g.NumLeft(); ++l) {
      const size_t expect_count = g.ConnCount(Side::kLeft, l, subset);
      for (const AdjacencyIndex* index : {&dense, &sparse}) {
        if (!index->HasRow(Side::kLeft, l)) continue;
        EXPECT_EQ(index->RowConnCount(Side::kLeft, l, subset), expect_count)
            << "nr=" << nr << " l=" << l;
        for (VertexId r = 0; r < g.NumRight(); ++r) {
          ASSERT_EQ(index->TestRow(Side::kLeft, l, r), g.HasEdge(l, r))
              << "nr=" << nr << " l=" << l << " r=" << r;
        }
      }
    }
    // The starved index must have engaged the compact representation.
    const AdjacencyIndex::RepresentationStats& rep =
        sparse.representation_stats();
    EXPECT_EQ(rep.dense_rows, 0u) << "nr=" << nr;
  }
}

TEST(AdjacencyIndex, BudgetPropagatesThroughInduceAndTranspose) {
  BipartiteGraph g = MakeRandomGraph({14, 14, 0.4, 75});
  g.BuildAdjacencyIndex(1, /*memory_budget_bytes=*/256);
  ASSERT_NE(g.adjacency_index(), nullptr);
  EXPECT_EQ(g.adjacency_index()->memory_budget_bytes(), 256u);
  InducedSubgraph sub = Induce(g, {0, 1, 2, 3, 4}, {0, 2, 4, 6, 8});
  ASSERT_NE(sub.graph.adjacency_index(), nullptr);
  EXPECT_EQ(sub.graph.adjacency_index()->memory_budget_bytes(), 256u);
  BipartiteGraph t = g.Transposed();
  ASSERT_NE(t.adjacency_index(), nullptr);
  EXPECT_EQ(t.adjacency_index()->memory_budget_bytes(), 256u);
  EXPECT_LE(t.adjacency_index()->MemoryBytes(), 256u);
}

// ------------------------------------------------------------- renumber --

TEST(Renumber, MapsArePermutationsAndEdgesSurvive) {
  BipartiteGraph g = MakeRandomGraph({14, 9, 0.3, 31});
  RenumberedGraph r = RenumberByDegeneracy(g);
  ASSERT_EQ(r.graph.NumLeft(), g.NumLeft());
  ASSERT_EQ(r.graph.NumRight(), g.NumRight());
  ASSERT_EQ(r.graph.NumEdges(), g.NumEdges());
  std::set<VertexId> seen_left(r.left_to_old.begin(), r.left_to_old.end());
  std::set<VertexId> seen_right(r.right_to_old.begin(),
                                r.right_to_old.end());
  EXPECT_EQ(seen_left.size(), g.NumLeft());
  EXPECT_EQ(seen_right.size(), g.NumRight());
  for (VertexId v = 0; v < g.NumLeft(); ++v) {
    EXPECT_EQ(r.old_to_new_left[r.left_to_old[v]], v);
  }
  // Every renumbered edge maps back to an original edge and vice versa.
  for (VertexId l = 0; l < r.graph.NumLeft(); ++l) {
    for (VertexId rr : r.graph.LeftNeighbors(l)) {
      EXPECT_TRUE(g.HasEdge(r.left_to_old[l], r.right_to_old[rr]));
    }
  }
}

TEST(Renumber, DenseVerticesClusterAtLowIds) {
  // A star-heavy graph: left 0 connects to everything, the rest are
  // pendant. The hub must land in the first position of the new order.
  std::vector<BipartiteGraph::Edge> edges;
  for (VertexId r = 0; r < 8; ++r) edges.push_back({0, r});
  edges.push_back({1, 0});
  edges.push_back({2, 1});
  BipartiteGraph g = MakeGraph(6, 8, std::move(edges));
  RenumberedGraph r = RenumberByDegeneracy(g);
  EXPECT_EQ(r.left_to_old[0], 0u);  // the hub gets the smallest id
}

TEST(Renumber, EnumerationAgreesAfterMapBack) {
  for (const RandomGraphCase& c :
       {RandomGraphCase{7, 7, 0.5, 32}, RandomGraphCase{9, 6, 0.35, 33}}) {
    BipartiteGraph g = MakeRandomGraph(c);
    RenumberedGraph r = RenumberByDegeneracy(g);
    for (int k : {1, 2}) {
      EnumerateRequest req;
      req.algorithm = "itraversal";
      req.k = KPair::Uniform(k);
      std::vector<Biplex> direct = Enumerator(g).Collect(req);
      std::vector<Biplex> renumbered = Enumerator(r.graph).Collect(req);
      std::vector<Biplex> mapped;
      for (const Biplex& b : renumbered) {
        VertexSetPair p = r.MapBack(b.left, b.right);
        mapped.push_back(Biplex{std::move(p.left), std::move(p.right)});
      }
      std::sort(mapped.begin(), mapped.end());
      EXPECT_EQ(mapped, direct) << "k=" << k;
    }
  }
}

// ------------------------------------------- acceleration == seed, all 8 --

struct AccelCase {
  KPair k;
  size_t theta_left;
  size_t theta_right;
};

/// Every algorithm, every acceleration surface: the indexed graph plus
/// (for the traversal family) the forced 2-hop generator must reproduce
/// the seed path exactly — the analogue of the parallel agreement suite.
TEST(AccelAgreement, EveryAlgorithmMatchesSeedSolutionSet) {
  std::vector<BipartiteGraph> graphs;
  graphs.push_back(MakeRandomGraph({6, 6, 0.5, 34}));
  graphs.push_back(MakeRandomGraph({8, 5, 0.65, 35}));
  graphs.push_back(MakeRandomGraph({7, 9, 0.3, 36}));

  const std::vector<AccelCase> cases = {
      {KPair::Uniform(1), 0, 0},
      {KPair::Uniform(1), 2, 2},  // 2-hop gate engaged (theta > k)
      {KPair::Uniform(2), 0, 0},
      {KPair::Uniform(2), 3, 3},
      {KPair{1, 2}, 2, 2},  // asymmetric, traversal family only
  };
  const AlgorithmRegistry& registry = AlgorithmRegistry::Global();
  for (size_t gi = 0; gi < graphs.size(); ++gi) {
    const BipartiteGraph& plain = graphs[gi];
    BipartiteGraph indexed = plain;
    indexed.BuildAdjacencyIndex(/*min_degree=*/1);
    for (const AccelCase& c : cases) {
      for (const std::string& name : registry.Names()) {
        AlgorithmInfo info = *registry.Find(name);
        if (!info.supports_asymmetric_k && !c.k.IsUniform()) continue;
        if (info.requires_theta &&
            (c.theta_left < 1 || c.theta_right < 1)) {
          continue;
        }
        const bool traversal_family =
            name.find("traversal") != std::string::npos ||
            name == "large-mbp";

        EnumerateRequest seed_req;
        seed_req.algorithm = name;
        seed_req.k = c.k;
        seed_req.theta_left = c.theta_left;
        seed_req.theta_right = c.theta_right;
        if (traversal_family) {
          seed_req.backend_options["candidate_gen"] = "scan";
          seed_req.backend_options["adjacency_index"] = "off";
        }
        EnumerateStats seed_stats;
        std::vector<Biplex> expect =
            Enumerator(plain).Collect(seed_req, &seed_stats);
        ASSERT_TRUE(seed_stats.ok()) << name << ": " << seed_stats.error;

        EnumerateRequest accel_req;
        accel_req.algorithm = name;
        accel_req.k = c.k;
        accel_req.theta_left = c.theta_left;
        accel_req.theta_right = c.theta_right;
        if (traversal_family) {
          accel_req.backend_options["candidate_gen"] = "twohop";
          accel_req.backend_options["adjacency_index"] = "force";
        }
        EnumerateStats accel_stats;
        std::vector<Biplex> got =
            Enumerator(indexed).Collect(accel_req, &accel_stats);
        ASSERT_TRUE(accel_stats.ok()) << name << ": " << accel_stats.error;
        ASSERT_EQ(got, expect)
            << name << " graph=" << gi << " k=(" << c.k.left << ","
            << c.k.right << ") theta=(" << c.theta_left << ","
            << c.theta_right << ")\nexpect:\n"
            << ToString(expect) << "got:\n"
            << ToString(got);

        // The accelerated path under the parallel driver must also match.
        accel_req.threads = 4;
        EnumerateStats par_stats;
        std::vector<Biplex> par =
            Enumerator(indexed).Collect(accel_req, &par_stats);
        ASSERT_TRUE(par_stats.ok()) << name << ": " << par_stats.error;
        ASSERT_EQ(par, expect) << name << " (threads=4) graph=" << gi;
      }
    }
  }
}

/// Compressed representations must be invisible to results: every
/// registered algorithm, run over a graph whose attached index was
/// budget-squeezed into a mix of dense/sparse/dropped rows (and, for the
/// traversal family, with an engine-local budget too), must deliver the
/// exact seed solution set.
TEST(AccelAgreement, EveryAlgorithmMatchesSeedUnderMemoryBudget) {
  const AlgorithmRegistry& registry = AlgorithmRegistry::Global();
  for (const RandomGraphCase& c :
       {RandomGraphCase{7, 7, 0.55, 81}, RandomGraphCase{9, 6, 0.35, 82}}) {
    const BipartiteGraph plain = MakeRandomGraph(c);
    // Pick a budget that forces a genuine mix: about half the all-dense
    // pool. The representation check below asserts the mix happened, so
    // this test cannot silently degrade into the all-dense case.
    BipartiteGraph probe = plain;
    probe.BuildAdjacencyIndex(1);
    const size_t dense_bytes = probe.adjacency_index()->MemoryBytes();
    ASSERT_GT(dense_bytes, 0u);
    const size_t budget = dense_bytes / 2;
    BipartiteGraph squeezed = plain;
    squeezed.BuildAdjacencyIndex(1, budget);
    const AdjacencyIndex::RepresentationStats& rep =
        squeezed.adjacency_index()->representation_stats();
    ASSERT_GT(rep.sparse_rows + rep.dropped_rows, 0u);
    ASSERT_LE(squeezed.adjacency_index()->MemoryBytes(), budget);

    for (const std::string& name : registry.Names()) {
      EnumerateRequest seed_req;
      seed_req.algorithm = name;
      seed_req.k = KPair::Uniform(1);
      AlgorithmInfo info = *registry.Find(name);
      if (info.requires_theta) {
        seed_req.theta_left = 2;
        seed_req.theta_right = 2;
      }
      EnumerateStats seed_stats;
      std::vector<Biplex> expect =
          Enumerator(plain).Collect(seed_req, &seed_stats);
      ASSERT_TRUE(seed_stats.ok()) << name << ": " << seed_stats.error;

      EnumerateRequest req = seed_req;
      const bool traversal_family =
          name.find("traversal") != std::string::npos || name == "large-mbp";
      if (traversal_family) {
        // Engine-local budgeted index on top of the attached one.
        req.backend_options["adjacency_index"] = "force";
        req.backend_options["accel_budget"] = std::to_string(budget);
      }
      EnumerateStats stats;
      std::vector<Biplex> got = Enumerator(squeezed).Collect(req, &stats);
      ASSERT_TRUE(stats.ok()) << name << ": " << stats.error;
      ASSERT_EQ(got, expect)
          << name << " budget=" << budget << "\nexpect:\n"
          << ToString(expect) << "got:\n"
          << ToString(got);

      if (traversal_family) {
        // No attached index: the engine builds its own under the budget.
        EnumerateStats local_stats;
        std::vector<Biplex> local =
            Enumerator(plain).Collect(req, &local_stats);
        ASSERT_TRUE(local_stats.ok()) << name << ": " << local_stats.error;
        ASSERT_EQ(local, expect) << name << " (engine-local budget)";
      }
    }
  }
}

// The 2-hop generator must engage (and prune candidates) when the gate
// holds, and fall back to the scan when it cannot be equivalence-
// preserving.
TEST(TwoHopCandidates, EngagesOnlyUnderTheGate) {
  BipartiteGraph g = MakeRandomGraph({10, 10, 0.5, 37});

  TraversalOptions gated = MakeITraversalOptions(1);
  gated.theta_left = gated.theta_right = 3;
  gated.prune_small = true;
  gated.candidate_gen = CandidateGenMode::kAuto;
  TraversalStats with;
  CollectWith(g, gated, &with);

  gated.candidate_gen = CandidateGenMode::kScan;
  TraversalStats without;
  std::vector<Biplex> scan_sols = CollectWith(g, gated, &without);
  gated.candidate_gen = CandidateGenMode::kTwoHop;
  EXPECT_EQ(CollectWith(g, gated, nullptr), scan_sols);

  // The generator materializes strictly fewer candidates than the scan
  // examines (the scan counts every non-member of the side per frame).
  EXPECT_LT(with.candidates_generated, without.candidates_generated);
  EXPECT_EQ(with.solutions_emitted, without.solutions_emitted);

  // Without thetas the gate cannot hold: kAuto and kTwoHop must behave
  // exactly like the scan.
  TraversalOptions ungated = MakeITraversalOptions(1);
  ungated.candidate_gen = CandidateGenMode::kTwoHop;
  TraversalStats t_ungated;
  std::vector<Biplex> a = CollectWith(g, ungated, &t_ungated);
  ungated.candidate_gen = CandidateGenMode::kScan;
  TraversalStats t_scan;
  std::vector<Biplex> b = CollectWith(g, ungated, &t_scan);
  EXPECT_EQ(a, b);
  EXPECT_EQ(t_ungated.candidates_generated, t_scan.candidates_generated);
}

TEST(TwoHopCandidates, RightAnchoredTraversalAgreesToo) {
  BipartiteGraph g = MakeRandomGraph({8, 11, 0.45, 38});
  std::vector<Biplex> scan_result;
  for (auto mode : {CandidateGenMode::kScan, CandidateGenMode::kTwoHop}) {
    TraversalOptions opts = MakeITraversalOptions(1);
    opts.anchored_side = Side::kRight;
    opts.theta_left = opts.theta_right = 2;
    opts.prune_small = true;
    opts.candidate_gen = mode;
    if (mode == CandidateGenMode::kScan) {
      scan_result = CollectWith(g, opts);
    } else {
      EXPECT_EQ(CollectWith(g, opts), scan_result);
    }
  }
}

// ------------------------------------------------------------ workspace --

TEST(EnumAlmostSatWorkspace, ReuseMatchesFreshAllocation) {
  BipartiteGraph g = MakeRandomGraph({8, 8, 0.5, 39});
  // A 1-biplex to expand: take the first solution of the engine.
  EnumerateRequest req;
  req.algorithm = "itraversal";
  req.max_results = 4;
  std::vector<Biplex> sols = Enumerator(g).Collect(req);
  ASSERT_FALSE(sols.empty());

  EnumAlmostSatWorkspace ws;
  for (const Biplex& h : sols) {
    for (VertexId v = 0; v < g.NumLeft(); ++v) {
      if (sorted::Contains(h.left, v)) continue;
      std::vector<Biplex> fresh, reused;
      EnumAlmostSatOptions fresh_opts;
      EnumAlmostSat(g, h, Side::kLeft, v, 1, fresh_opts,
                    [&](const Biplex& b) {
                      fresh.push_back(b);
                      return true;
                    });
      EnumAlmostSatOptions reuse_opts;
      reuse_opts.workspace = &ws;  // carries state across iterations
      EnumAlmostSat(g, h, Side::kLeft, v, 1, reuse_opts,
                    [&](const Biplex& b) {
                      reused.push_back(b);
                      return true;
                    });
      ASSERT_EQ(reused, fresh) << "v=" << v;
    }
  }
}

}  // namespace
}  // namespace kbiplex
