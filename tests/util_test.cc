#include <algorithm>
#include <set>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "util/arena_pool.h"
#include "util/common.h"
#include "util/dynamic_bitset.h"
#include "util/random.h"
#include "util/subset_enum.h"
#include "util/table.h"
#include "util/timer.h"

namespace kbiplex {
namespace {

// ---------------------------------------------------------------- sorted --

TEST(SortedOps, Contains) {
  std::vector<VertexId> v = {1, 3, 5, 9};
  EXPECT_TRUE(sorted::Contains(v, 1));
  EXPECT_TRUE(sorted::Contains(v, 9));
  EXPECT_FALSE(sorted::Contains(v, 0));
  EXPECT_FALSE(sorted::Contains(v, 4));
  EXPECT_FALSE(sorted::Contains({}, 4));
}

TEST(SortedOps, ContainsAgreesAcrossTheLinearScanThreshold) {
  // Sizes straddling kLinearScanMax: both code paths must agree with a
  // reference binary search on every probe.
  constexpr size_t kThreshold = sorted::kLinearScanMax;
  for (size_t n :
       {kThreshold - 1, kThreshold, kThreshold + 1, 4 * kThreshold}) {
    std::vector<VertexId> v;
    for (size_t i = 0; i < n; ++i) v.push_back(static_cast<VertexId>(3 * i));
    for (VertexId probe = 0; probe <= static_cast<VertexId>(3 * n); ++probe) {
      EXPECT_EQ(sorted::Contains(v, probe),
                std::binary_search(v.begin(), v.end(), probe))
          << "n=" << n << " probe=" << probe;
    }
  }
}

TEST(SortedOps, IntersectionSize) {
  EXPECT_EQ(sorted::IntersectionSize({1, 2, 3}, {2, 3, 4}), 2u);
  EXPECT_EQ(sorted::IntersectionSize({1, 2, 3}, {4, 5}), 0u);
  EXPECT_EQ(sorted::IntersectionSize({}, {1}), 0u);
}

TEST(SortedOps, SetAlgebra) {
  std::vector<VertexId> a = {1, 2, 5};
  std::vector<VertexId> b = {2, 3, 5, 7};
  EXPECT_EQ(sorted::Intersect(a, b), (std::vector<VertexId>{2, 5}));
  EXPECT_EQ(sorted::Union(a, b), (std::vector<VertexId>{1, 2, 3, 5, 7}));
  EXPECT_EQ(sorted::Difference(a, b), (std::vector<VertexId>{1}));
  EXPECT_TRUE(sorted::IsSubset({2, 5}, b));
  EXPECT_FALSE(sorted::IsSubset({2, 4}, b));
  EXPECT_TRUE(sorted::IsSubset({}, b));
}

TEST(SortedOps, InsertErase) {
  std::vector<VertexId> v = {2, 4};
  EXPECT_TRUE(sorted::Insert(&v, 3));
  EXPECT_EQ(v, (std::vector<VertexId>{2, 3, 4}));
  EXPECT_FALSE(sorted::Insert(&v, 3));
  EXPECT_TRUE(sorted::Erase(&v, 2));
  EXPECT_EQ(v, (std::vector<VertexId>{3, 4}));
  EXPECT_FALSE(sorted::Erase(&v, 2));
}

// ------------------------------------------------------------------- Rng --

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(10), 10u);
  }
  // Every residue appears eventually.
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBelow(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, NextDoubleUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, SampleDistinctSparse) {
  Rng rng(11);
  auto sample = rng.SampleDistinct(1000000, 100);
  EXPECT_EQ(sample.size(), 100u);
  EXPECT_TRUE(std::is_sorted(sample.begin(), sample.end()));
  EXPECT_EQ(std::set<uint64_t>(sample.begin(), sample.end()).size(), 100u);
  for (uint64_t x : sample) EXPECT_LT(x, 1000000u);
}

TEST(Rng, SampleDistinctDense) {
  Rng rng(13);
  auto sample = rng.SampleDistinct(50, 50);
  EXPECT_EQ(sample.size(), 50u);
  for (size_t i = 0; i < 50; ++i) EXPECT_EQ(sample[i], i);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> v = {0, 1, 2, 3, 4, 5, 6, 7};
  auto orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

// --------------------------------------------------------- DynamicBitset --

TEST(DynamicBitset, SetTestClear) {
  DynamicBitset b(130);
  EXPECT_EQ(b.size(), 130u);
  EXPECT_TRUE(b.None());
  b.Set(0);
  b.Set(64);
  b.Set(129);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(129));
  EXPECT_FALSE(b.Test(1));
  EXPECT_EQ(b.Count(), 3u);
  b.Clear(64);
  EXPECT_FALSE(b.Test(64));
  EXPECT_EQ(b.Count(), 2u);
}

TEST(DynamicBitset, SetAllRespectsSize) {
  DynamicBitset b(70);
  b.SetAll();
  EXPECT_EQ(b.Count(), 70u);
  b.Reset();
  EXPECT_TRUE(b.None());
}

TEST(DynamicBitset, SubsetAndIntersect) {
  DynamicBitset a(100), b(100);
  a.Set(3);
  a.Set(50);
  b.Set(3);
  b.Set(50);
  b.Set(99);
  EXPECT_TRUE(a.IsSubsetOf(b));
  EXPECT_FALSE(b.IsSubsetOf(a));
  EXPECT_TRUE(a.Intersects(b));
  DynamicBitset c(100);
  c.Set(98);
  EXPECT_FALSE(a.Intersects(c));
}

TEST(DynamicBitset, FindNextAndAppend) {
  DynamicBitset b(200);
  b.Set(5);
  b.Set(64);
  b.Set(199);
  EXPECT_EQ(b.FindNext(0), 5u);
  EXPECT_EQ(b.FindNext(6), 64u);
  EXPECT_EQ(b.FindNext(65), 199u);
  EXPECT_EQ(b.FindNext(200), 200u);
  std::vector<uint32_t> out;
  b.AppendSetBits(&out);
  EXPECT_EQ(out, (std::vector<uint32_t>{5, 64, 199}));
}

TEST(DynamicBitset, BitwiseOps) {
  DynamicBitset a(64), b(64);
  a.Set(1);
  a.Set(2);
  b.Set(2);
  b.Set(3);
  DynamicBitset u = a;
  u |= b;
  EXPECT_EQ(u.Count(), 3u);
  DynamicBitset i = a;
  i &= b;
  EXPECT_EQ(i.Count(), 1u);
  EXPECT_TRUE(i.Test(2));
  DynamicBitset d = a;
  d -= b;
  EXPECT_EQ(d.Count(), 1u);
  EXPECT_TRUE(d.Test(1));
}

TEST(DynamicBitset, FindNextSetWordKernel) {
  DynamicBitset b(300);
  // An empty word span between the set bits exercises the word-skipping
  // loop; a set bit at a word boundary exercises the mask.
  b.Set(0);
  b.Set(63);
  b.Set(64);
  b.Set(255);
  EXPECT_EQ(b.FindNextSet(0), 0u);
  EXPECT_EQ(b.FindNextSet(1), 63u);
  EXPECT_EQ(b.FindNextSet(64), 64u);
  EXPECT_EQ(b.FindNextSet(65), 255u);
  EXPECT_EQ(b.FindNextSet(256), 300u);
  EXPECT_EQ(b.FindNextSet(1000), 300u);
  EXPECT_EQ(DynamicBitset(0).FindNextSet(0), 0u);
}

TEST(DynamicBitset, ForEachSetVisitsExactlyTheSetBits) {
  Rng rng(77);
  DynamicBitset b(513);
  std::set<size_t> expect;
  for (int i = 0; i < 120; ++i) {
    size_t bit = rng.NextBelow(513);
    b.Set(bit);
    expect.insert(bit);
  }
  std::vector<size_t> got;
  b.ForEachSet([&](size_t i) { got.push_back(i); });
  EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
  EXPECT_EQ(std::set<size_t>(got.begin(), got.end()), expect);
  EXPECT_EQ(got.size(), expect.size());
  EXPECT_EQ(b.Count(), expect.size());
}

TEST(DynamicBitset, IntersectCount) {
  DynamicBitset a(130), b(130);
  a.Set(0);
  a.Set(64);
  a.Set(129);
  b.Set(64);
  b.Set(129);
  b.Set(100);
  EXPECT_EQ(a.IntersectCount(b), 2u);
  EXPECT_EQ(b.IntersectCount(a), 2u);
  DynamicBitset empty(130);
  EXPECT_EQ(a.IntersectCount(empty), 0u);
  // Consistency with the materializing path.
  DynamicBitset i = a;
  i &= b;
  EXPECT_EQ(i.Count(), a.IntersectCount(b));
}

// Regression: the set operations used to index `other`'s word array by
// *this* bitset's word count with no size check — a larger lhs read past
// the rhs allocation. Mixed sizes are now defined (`other` behaves
// zero-extended/truncated to this size) and must never touch out-of-range
// words; under ASan these cases crash if the old bug returns.
TEST(DynamicBitset, MismatchedSizesAreZeroExtended) {
  DynamicBitset big(200);
  big.Set(3);
  big.Set(64);
  big.Set(199);
  DynamicBitset small(64);
  small.Set(3);

  // rhs smaller than lhs: its missing words read as zero.
  DynamicBitset d = big;
  d -= small;  // clears only bit 3
  EXPECT_FALSE(d.Test(3));
  EXPECT_TRUE(d.Test(64));
  EXPECT_TRUE(d.Test(199));

  DynamicBitset i = big;
  i &= small;  // everything past the small universe intersects to zero
  EXPECT_TRUE(i.Test(3));
  EXPECT_FALSE(i.Test(64));
  EXPECT_FALSE(i.Test(199));
  EXPECT_EQ(i.Count(), 1u);

  DynamicBitset u = big;
  u |= small;
  EXPECT_EQ(u.Count(), 3u);

  EXPECT_EQ(big.IntersectCount(small), 1u);
  EXPECT_EQ(small.IntersectCount(big), 1u);
  EXPECT_TRUE(big.Intersects(small));
  EXPECT_FALSE(big.IsSubsetOf(small));  // bits 64/199 exceed `small`
  EXPECT_TRUE(small.IsSubsetOf(big));

  // lhs smaller than rhs: rhs truncates; bits past lhs.size() must never
  // appear in the result.
  DynamicBitset t(64);
  t.Set(5);
  t |= big;
  EXPECT_TRUE(t.Test(3));
  EXPECT_TRUE(t.Test(5));
  EXPECT_EQ(t.Count(), 2u);  // 64 and 199 truncated away
  EXPECT_EQ(t.size(), 64u);
}

TEST(DynamicBitset, MismatchedSizesAtWordBoundaryTails) {
  // A 65-bit lhs vs a 63-bit rhs: one shared word plus a one-bit tail on
  // each side of the boundary.
  DynamicBitset a(65);
  a.Set(62);
  a.Set(64);
  DynamicBitset b(63);
  b.Set(62);
  EXPECT_FALSE(a.IsSubsetOf(b));  // bit 64 lives past b's words
  EXPECT_TRUE(b.IsSubsetOf(a));
  EXPECT_EQ(a.IntersectCount(b), 1u);
  DynamicBitset d = a;
  d -= b;
  EXPECT_FALSE(d.Test(62));
  EXPECT_TRUE(d.Test(64));
  // Union with a larger bitset must not smuggle bits past size() into the
  // last word (Count walks raw words and would see them).
  DynamicBitset wide(129);
  wide.Set(64);
  wide.Set(128);
  DynamicBitset narrow(65);
  narrow |= wide;
  EXPECT_TRUE(narrow.Test(64));
  EXPECT_EQ(narrow.Count(), 1u);
}

// The word-loop kernels behind the bitset route through simd::Active();
// pin boundary sizes 63/64/65/127/129 against a bit-by-bit reference.
TEST(DynamicBitset, KernelOpsAgreeWithBitReferenceAtBoundarySizes) {
  Rng rng(78);
  for (size_t bits : {63u, 64u, 65u, 127u, 129u}) {
    DynamicBitset a(bits), b(bits);
    std::set<size_t> in_a, in_b;
    for (size_t i = 0; i < bits; ++i) {
      if (rng.NextBool(0.4)) {
        a.Set(i);
        in_a.insert(i);
      }
      if (rng.NextBool(0.4)) {
        b.Set(i);
        in_b.insert(i);
      }
    }
    size_t expect_common = 0;
    bool expect_subset = true;
    for (size_t i : in_a) {
      if (in_b.count(i) != 0) {
        ++expect_common;
      } else {
        expect_subset = false;
      }
    }
    EXPECT_EQ(a.Count(), in_a.size()) << "bits=" << bits;
    EXPECT_EQ(a.IntersectCount(b), expect_common) << "bits=" << bits;
    EXPECT_EQ(a.IsSubsetOf(b), expect_subset) << "bits=" << bits;
    EXPECT_EQ(a.Intersects(b), expect_common > 0) << "bits=" << bits;
    DynamicBitset u = a;
    u |= b;
    DynamicBitset i = a;
    i &= b;
    DynamicBitset d = a;
    d -= b;
    for (size_t bit = 0; bit < bits; ++bit) {
      const bool ia = in_a.count(bit) != 0;
      const bool ib = in_b.count(bit) != 0;
      ASSERT_EQ(u.Test(bit), ia || ib) << "bits=" << bits << " bit=" << bit;
      ASSERT_EQ(i.Test(bit), ia && ib) << "bits=" << bits << " bit=" << bit;
      ASSERT_EQ(d.Test(bit), ia && !ib)
          << "bits=" << bits << " bit=" << bit;
    }
  }
}

// ---------------------------------------------------------- arena pool ---

TEST(ArenaPool, RecyclesObjectsAndKeepsCapacity) {
  struct PooledFrame {
    std::vector<int> data;
    void Reset() { data.clear(); }
  };
  ArenaPool<PooledFrame> pool;
  std::unique_ptr<PooledFrame> a = pool.Acquire();
  EXPECT_EQ(pool.allocated(), 1u);
  EXPECT_EQ(pool.reused(), 0u);
  a->data.assign(1000, 7);
  PooledFrame* raw = a.get();
  pool.Release(std::move(a));
  EXPECT_EQ(pool.free_size(), 1u);

  // The same object comes back, logically empty but with its buffer.
  std::unique_ptr<PooledFrame> b = pool.Acquire();
  EXPECT_EQ(b.get(), raw);
  EXPECT_EQ(pool.reused(), 1u);
  EXPECT_TRUE(b->data.empty());
  EXPECT_GE(b->data.capacity(), 1000u);

  // A second concurrent acquire allocates fresh.
  std::unique_ptr<PooledFrame> c = pool.Acquire();
  EXPECT_NE(c.get(), raw);
  EXPECT_EQ(pool.allocated(), 2u);

  pool.Release(std::move(b));
  pool.Release(std::move(c));
  EXPECT_EQ(pool.free_size(), 2u);
  pool.Release(nullptr);  // no-op
  EXPECT_EQ(pool.free_size(), 2u);
}

// ------------------------------------------------------------ subsets ----

TEST(ForEachCombination, CountsMatchBinomials) {
  for (size_t n = 0; n <= 8; ++n) {
    for (size_t s = 0; s <= n; ++s) {
      size_t count = 0;
      ForEachCombination(n, s, [&](const std::vector<size_t>& c) {
        EXPECT_EQ(c.size(), s);
        EXPECT_TRUE(std::is_sorted(c.begin(), c.end()));
        ++count;
        return true;
      });
      // C(n, s)
      size_t expect = 1;
      for (size_t i = 0; i < s; ++i) expect = expect * (n - i) / (i + 1);
      EXPECT_EQ(count, expect) << "n=" << n << " s=" << s;
    }
  }
}

TEST(ForEachCombination, EarlyStop) {
  size_t count = 0;
  bool completed = ForEachCombination(6, 2, [&](const std::vector<size_t>&) {
    return ++count < 3;
  });
  EXPECT_FALSE(completed);
  EXPECT_EQ(count, 3u);
}

TEST(BoundedSubsetEnumerator, AscendingCardinalityAll) {
  BoundedSubsetEnumerator e(4, 4);
  size_t count = 0;
  size_t last_size = 0;
  while (e.Next()) {
    EXPECT_GE(e.current().size(), last_size);
    last_size = e.current().size();
    ++count;
  }
  EXPECT_EQ(count, 16u);  // 2^4
}

TEST(BoundedSubsetEnumerator, RespectsMaxSize) {
  BoundedSubsetEnumerator e(5, 2);
  size_t count = 0;
  while (e.Next()) {
    EXPECT_LE(e.current().size(), 2u);
    ++count;
  }
  EXPECT_EQ(count, 1u + 5u + 10u);
}

TEST(BoundedSubsetEnumerator, SupersetPruning) {
  BoundedSubsetEnumerator e(4, 4);
  std::vector<std::vector<size_t>> visited;
  while (e.Next()) {
    visited.push_back(e.current());
    if (e.current() == std::vector<size_t>{0}) e.PruneSupersetsOfCurrent();
  }
  // No visited subset after {0} may contain 0 (other than {0} itself).
  bool after = false;
  for (const auto& s : visited) {
    if (s == std::vector<size_t>{0}) {
      after = true;
      continue;
    }
    if (after) {
      EXPECT_FALSE(std::find(s.begin(), s.end(), 0u) != s.end())
          << "visited a superset of {0}";
    }
  }
  // 2^3 subsets avoid element 0; plus {0} itself.
  EXPECT_EQ(visited.size(), 8u + 1u);
}

TEST(BoundedSubsetEnumerator, PruneEmptySetStopsEverything) {
  BoundedSubsetEnumerator e(3, 3);
  ASSERT_TRUE(e.Next());
  EXPECT_TRUE(e.current().empty());
  e.PruneSupersetsOfCurrent();
  EXPECT_FALSE(e.Next());  // every set is a superset of ∅
}

// ------------------------------------------------------------- TextTable --

TEST(TextTable, RendersAlignedRows) {
  TextTable t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"b", "2000"});
  std::ostringstream os;
  t.Print(os);
  std::string s = os.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("2000"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(FormatSeconds, Inf) { EXPECT_EQ(FormatSeconds(-1), "INF"); }

TEST(FormatSeconds, Ranges) {
  EXPECT_EQ(FormatSeconds(123.4), "123.4");
  EXPECT_EQ(FormatSeconds(0.5), "0.5000");
  EXPECT_NE(FormatSeconds(1e-5).find("e"), std::string::npos);
}

// ----------------------------------------------------------------- Timer --

TEST(Deadline, DisabledNeverExpires) {
  Deadline d(0);
  EXPECT_FALSE(d.Expired());
}

TEST(Deadline, TinyBudgetExpires) {
  Deadline d(1e-9);
  // Burn a little time. (Unsigned, non-compound: the sum overflows an
  // int, and compound assignment to volatile is deprecated in C++20.)
  volatile unsigned x = 0;
  for (unsigned i = 0; i < 100000; ++i) x = x + i;
  (void)x;
  EXPECT_TRUE(d.Expired());
}

}  // namespace
}  // namespace kbiplex
