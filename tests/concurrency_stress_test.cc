// Concurrency stress tests sized for ThreadSanitizer in CI: many threads
// hammering the two shared-state hot spots at once —
//
//   1. the serving daemon: concurrent query clients racing a load/evict
//      flapper and a stats/list poller, so registry generations, admission
//      counters, the stats aggregator, and connection teardown all
//      interleave;
//   2. one PreparedGraph under many interleaved QuerySessions, so the
//      lazy call_once artifact builds (execution graph, components,
//      component subgraphs, core bound) race from every direction;
//   3. the incremental update path: wire updaters publishing new epochs
//      while query clients, a load/evict flapper, and stats pollers race
//      the registry's copy-on-write publish and epoch retirement.
//
// These tests assert protocol- and result-level invariants, but their main
// job is giving TSan (cmake -DKBIPLEX_TSAN=ON) real interleavings to
// check; keep them fast enough for sanitizer CI (a few seconds each).

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/query_session.h"
#include "graph/graph_io.h"
#include "serve/client.h"
#include "serve/graph_registry.h"
#include "serve/server.h"
#include "update/update_batch.h"
#include "util/json_value.h"

namespace kbiplex {
namespace serve {
namespace {

constexpr const char* kToyGraphPath = KBIPLEX_SOURCE_DIR "/ci/toy_graph.txt";

/// Same pseudo-random half-dense 24x24 graph as serve_test.cc: its
/// 2-biplex enumeration reliably outlives any small budget, so short
/// budgeted queries keep the workers busy for the whole stress window.
BipartiteGraph DenseGraph() {
  std::vector<BipartiteGraph::Edge> edges;
  for (VertexId l = 0; l < 24; ++l)
    for (VertexId r = 0; r < 24; ++r)
      if ((l * 31 + r * 17 + l * r) % 97 < 55) edges.push_back({l, r});
  return BipartiteGraph::FromEdges(24, 24, std::move(edges));
}

/// The terminal type of a response line, "" when it does not parse.
std::string TypeOf(const std::string& line) {
  json::ParseResult parsed = json::Parse(line);
  if (!parsed.ok()) return "";
  const json::JsonValue* type = parsed.value.Find("type");
  return (type != nullptr && type->is_string()) ? type->AsString() : "";
}

/// Sends one command line and reads through the terminal response,
/// returning its type. Solution lines are consumed and discarded.
std::string RoundTripType(LineClient* client, const std::string& line) {
  if (!client->SendLine(line)) return "";
  std::string reply;
  while (client->ReadLine(&reply)) {
    const std::string type = TypeOf(reply);
    if (type != "solution") return type;
  }
  return "";
}

TEST(ConcurrencyStress, ServerSurvivesQueryEvictStatsCrossfire) {
  ServerOptions options;
  options.workers = 4;
  options.queue_capacity = 8;
  Server server(options);
  server.registry().Add("dense", DenseGraph(), options.prepare);
  ASSERT_EQ(server.Start(), "");

  constexpr int kQueryClients = 4;
  constexpr int kRoundsPerClient = 12;
  std::atomic<int> protocol_failures{0};
  std::atomic<int> done_responses{0};
  std::atomic<bool> stop_pollers{false};
  std::vector<std::thread> threads;

  // Query clients: budgeted queries against the stable graph plus
  // queries against the flapping one (those may hit 404 mid-evict, 429
  // under queue pressure — all are valid protocol outcomes; what is NOT
  // valid is an unparsable or missing terminal line).
  for (int c = 0; c < kQueryClients; ++c) {
    threads.emplace_back([&, c] {
      LineClient client;
      if (!client.Connect("127.0.0.1", server.port()).empty()) {
        ++protocol_failures;
        return;
      }
      for (int round = 0; round < kRoundsPerClient; ++round) {
        const bool flap_target = (round % 3) == 2;
        const std::string id =
            std::to_string(c) + "-" + std::to_string(round);
        const std::string line =
            "{\"op\":\"query\",\"id\":\"" + id + "\",\"graph\":\"" +
            (flap_target ? "flap" : "dense") +
            "\",\"emit\":\"count\",\"request\":{\"algo\":\"itraversal\","
            "\"k\":2,\"budget_s\":0.01}}";
        const std::string type = RoundTripType(&client, line);
        if (type == "done") {
          ++done_responses;
        } else if (type != "error") {  // 404/429 arrive as error lines
          ++protocol_failures;
        }
      }
    });
  }

  // Load/evict flapper: races graph generations against the queries above.
  threads.emplace_back([&] {
    LineClient client;
    if (!client.Connect("127.0.0.1", server.port()).empty()) {
      ++protocol_failures;
      return;
    }
    const std::string load_line =
        std::string("{\"op\":\"load\",\"id\":\"flap-load\",\"name\":"
                    "\"flap\",\"path\":\"") +
        kToyGraphPath + "\"}";
    for (int round = 0; round < 30; ++round) {
      if (RoundTripType(&client, load_line) != "loaded") ++protocol_failures;
      const std::string evicted = RoundTripType(
          &client, "{\"op\":\"evict\",\"id\":\"flap-evict\",\"name\":"
                   "\"flap\"}");
      // The evict can race another flapper round only in spirit (this is
      // the lone flapper), so anything but "evicted" is a failure.
      if (evicted != "evicted") ++protocol_failures;
    }
  });

  // Stats pollers: the wire stats/list ops plus the in-process accessors,
  // all racing the mutating threads above.
  for (int p = 0; p < 2; ++p) {
    threads.emplace_back([&, p] {
      LineClient client;
      if (!client.Connect("127.0.0.1", server.port()).empty()) {
        ++protocol_failures;
        return;
      }
      const std::string line = (p == 0)
                                   ? "{\"op\":\"stats\",\"id\":\"poll\"}"
                                   : "{\"op\":\"list\",\"id\":\"poll\"}";
      const std::string want = (p == 0) ? "stats" : "graphs";
      while (!stop_pollers.load()) {
        if (RoundTripType(&client, line) != want) ++protocol_failures;
        (void)server.admission_counters();
        (void)server.stats().Total();
      }
    });
  }

  // Join the bounded threads (clients + flapper), then stop the pollers.
  for (size_t i = 0; i < threads.size() - 2; ++i) threads[i].join();
  stop_pollers.store(true);
  threads[threads.size() - 2].join();
  threads[threads.size() - 1].join();

  EXPECT_EQ(protocol_failures.load(), 0);
  // The stable graph never flaps, so at least its queries completed.
  EXPECT_GE(done_responses.load(), kQueryClients * kRoundsPerClient / 2);

  server.RequestDrain();
  server.Wait();

  // Post-drain, the aggregator totals must be coherent: every "done"
  // terminal the clients saw was recorded.
  EXPECT_GE(server.stats().Total().requests,
            static_cast<uint64_t>(done_responses.load()));
}

TEST(ConcurrencyStress, UpdatersRaceQueriesAndEvictions) {
  ServerOptions options;
  options.workers = 4;
  options.queue_capacity = 8;
  Server server(options);
  server.registry().Add("dense", DenseGraph(), options.prepare);
  ASSERT_EQ(server.Start(), "");

  constexpr int kQueryClients = 3;
  constexpr int kRoundsPerClient = 10;
  std::atomic<int> protocol_failures{0};
  std::atomic<int> updated_responses{0};
  std::atomic<bool> stop_pollers{false};
  std::vector<std::thread> threads;

  // Query clients against the graph the updaters mutate: a query may run
  // on any epoch (each worker session snapshots one), but every terminal
  // must be a parsable done/error line.
  for (int c = 0; c < kQueryClients; ++c) {
    threads.emplace_back([&, c] {
      LineClient client;
      if (!client.Connect("127.0.0.1", server.port()).empty()) {
        ++protocol_failures;
        return;
      }
      for (int round = 0; round < kRoundsPerClient; ++round) {
        const std::string id =
            std::to_string(c) + "-" + std::to_string(round);
        const std::string line =
            "{\"op\":\"query\",\"id\":\"" + id +
            "\",\"graph\":\"dense\",\"emit\":\"count\",\"request\":"
            "{\"algo\":\"itraversal\",\"k\":2,\"budget_s\":0.01}}";
        const std::string type = RoundTripType(&client, line);
        if (type != "done" && type != "error") ++protocol_failures;
      }
    });
  }

  // Updaters: one toggles edges of the stable graph (every round must end
  // in "updated" — updates serialize per graph and nothing evicts it);
  // the other targets the flapping graph, where "updated" races 404
  // (evicted mid-apply) and 409 (reloaded mid-apply) — all three are
  // valid, anything else is a protocol failure.
  threads.emplace_back([&] {
    LineClient client;
    if (!client.Connect("127.0.0.1", server.port()).empty()) {
      ++protocol_failures;
      return;
    }
    for (int round = 0; round < 20; ++round) {
      const bool odd = (round % 2) != 0;
      const std::string line =
          std::string("{\"op\":\"update\",\"id\":\"upd\",\"name\":"
                      "\"dense\",") +
          (odd ? "\"insert\"" : "\"delete\"") +
          ":[[0,23],[1,22]],\"options\":{\"max_delta_fraction\":1.0}}";
      const std::string type = RoundTripType(&client, line);
      if (type == "updated") {
        ++updated_responses;
      } else {
        ++protocol_failures;
      }
    }
  });
  threads.emplace_back([&] {
    LineClient client;
    if (!client.Connect("127.0.0.1", server.port()).empty()) {
      ++protocol_failures;
      return;
    }
    for (int round = 0; round < 20; ++round) {
      const std::string type = RoundTripType(
          &client,
          "{\"op\":\"update\",\"id\":\"flapupd\",\"name\":\"flap\","
          "\"insert\":[[0,1]]}");
      if (type != "updated" && type != "error") ++protocol_failures;
    }
  });

  // Load/evict flapper racing the second updater's target.
  threads.emplace_back([&] {
    LineClient client;
    if (!client.Connect("127.0.0.1", server.port()).empty()) {
      ++protocol_failures;
      return;
    }
    const std::string load_line =
        std::string("{\"op\":\"load\",\"id\":\"flap-load\",\"name\":"
                    "\"flap\",\"path\":\"") +
        kToyGraphPath + "\"}";
    for (int round = 0; round < 20; ++round) {
      if (RoundTripType(&client, load_line) != "loaded") ++protocol_failures;
      if (RoundTripType(&client,
                        "{\"op\":\"evict\",\"id\":\"flap-evict\",\"name\":"
                        "\"flap\"}") != "evicted")
        ++protocol_failures;
    }
  });

  // Stats poller: exercises the per-graph epoch/retirement reporting
  // (PendingRetiredEpochs walks the weak trackers) against the races.
  threads.emplace_back([&] {
    LineClient client;
    if (!client.Connect("127.0.0.1", server.port()).empty()) {
      ++protocol_failures;
      return;
    }
    while (!stop_pollers.load()) {
      if (RoundTripType(&client, "{\"op\":\"stats\",\"id\":\"poll\"}") !=
          "stats")
        ++protocol_failures;
      (void)server.registry().PendingRetiredEpochs("dense");
    }
  });

  for (size_t i = 0; i + 1 < threads.size(); ++i) threads[i].join();
  stop_pollers.store(true);
  threads.back().join();

  EXPECT_EQ(protocol_failures.load(), 0);
  EXPECT_EQ(updated_responses.load(), 20);
  // The stable graph's final epoch reflects every serialized update.
  const auto entry = server.registry().Get("dense");
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->prepared->lineage().updates_applied, 20u);

  server.RequestDrain();
  server.Wait();
}

TEST(ConcurrencyStress, RetiredEpochStaysAliveWhileBorrowed) {
  GraphRegistry registry;
  registry.Add("g", DenseGraph(), PrepareOptions());

  // Borrow the current epoch the way an in-flight query would.
  std::shared_ptr<const PreparedGraph> borrowed =
      registry.Get("g")->prepared;
  EXPECT_EQ(registry.PendingRetiredEpochs("g"), 0u);

  update::UpdateBatch batch;
  batch.Remove(0, 23);
  batch.Insert(0, 23);  // noop round-trip keeps the edge set stable
  const UpdateApplyOutcome outcome =
      registry.ApplyUpdates("g", batch, update::UpdateOptions());
  ASSERT_TRUE(outcome.ok()) << outcome.error;

  // The replaced epoch is retired but pinned by the borrower...
  EXPECT_EQ(registry.PendingRetiredEpochs("g"), 1u);
  EXPECT_NE(registry.Get("g")->prepared.get(), borrowed.get());
  {
    // ...and still fully usable (the session takes its own pin).
    QuerySession session(borrowed);
    EnumerateRequest request;
    request.algorithm = "itraversal";
    request.time_budget_seconds = 0.05;
    EnumerateStats stats;
    session.Count(request, &stats);
    EXPECT_TRUE(stats.error.empty()) << stats.error;
  }

  // Releasing the borrow lets the epoch die; the tracker observes it.
  borrowed.reset();
  EXPECT_EQ(registry.PendingRetiredEpochs("g"), 0u);
}

TEST(ConcurrencyStress, InterleavedSessionsRaceLazyArtifactsOnce) {
  LoadResult loaded = LoadEdgeList(kToyGraphPath);
  ASSERT_TRUE(loaded.ok());
  PrepareOptions prepare;
  prepare.renumber = true;
  prepare.adjacency_index = AdjacencyAccelMode::kForce;
  auto prepared = PreparedGraph::Prepare(std::move(*loaded.graph), prepare);

  EnumerateRequest request;
  request.algorithm = "itraversal";
  request.k = KPair::Uniform(1);

  // The reference answer, computed before any artifact exists would
  // defeat the race — so compute it on a second, independent prepare.
  LoadResult reference_load = LoadEdgeList(kToyGraphPath);
  ASSERT_TRUE(reference_load.ok());
  auto reference_prepared =
      PreparedGraph::Prepare(std::move(*reference_load.graph), prepare);
  QuerySession reference(reference_prepared);
  std::vector<Biplex> expected = reference.Collect(request, nullptr);
  std::sort(expected.begin(), expected.end());
  ASSERT_FALSE(expected.empty());

  constexpr int kThreads = 8;
  constexpr int kQueriesPerThread = 4;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Every thread races the lazy builds through a different first
      // touch: artifact accessors directly, or a session query.
      switch (t % 4) {
        case 0: prepared->Warmup(); break;
        case 1: prepared->Components(); break;
        case 2: (void)prepared->MaxUniformCore(); break;
        default: break;
      }
      QuerySession session(prepared);
      for (int q = 0; q < kQueriesPerThread; ++q) {
        std::vector<Biplex> got = session.Collect(request, nullptr);
        std::sort(got.begin(), got.end());
        if (got != expected) ++mismatches;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(mismatches.load(), 0);
  // However many sessions raced, each artifact was built at most once.
  const PrepareArtifactStats stats = prepared->artifact_stats();
  EXPECT_LE(stats.execution_graph_builds, 1);
  EXPECT_LE(stats.component_builds, 1);
  EXPECT_LE(stats.component_subgraph_builds, 1);
  EXPECT_LE(stats.core_bound_builds, 1);
  EXPECT_EQ(stats.execution_graph_builds, 1);  // someone touched it
}

}  // namespace
}  // namespace serve
}  // namespace kbiplex
