// Cross-cutting invariant and integration tests: accounting identities of
// the traversal statistics, agreement between independent enumerator
// implementations, DelayTracker behaviour, and pinned regression values on
// the running-example graph.
#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "baselines/imb.h"
#include "baselines/inflation_enum.h"
#include "core/brute_force.h"
#include "core/btraversal.h"
#include "core/delay_tracker.h"
#include "graph/generators.h"
#include "test_support.h"
#include "util/random.h"
#include "util/timer.h"

namespace kbiplex {
namespace {

using testing_support::CollectWith;
using testing_support::MakeRandomGraph;

// ------------------------------------------------ stats accounting --------

// Every non-root solution is discovered through exactly one link, and every
// other generated link is a duplicate hit, so for complete runs:
//   links == (solutions_found - 1) + dedup_hits.
TEST(StatsAccounting, LinkIdentityHoldsAcrossConfigs) {
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    auto g = MakeRandomGraph({6, 6, 0.5, seed * 3 + 11});
    for (TraversalOptions opts :
         {MakeBTraversalOptions(1), MakeITraversalLeftAnchoredOnlyOptions(1),
          MakeITraversalNoExclusionOptions(1), MakeITraversalOptions(1)}) {
      TraversalStats stats;
      CollectWith(g, opts, &stats);
      ASSERT_TRUE(stats.completed);
      EXPECT_EQ(stats.links, stats.solutions_found - 1 + stats.dedup_hits)
          << TraversalConfigName(opts) << " seed=" << seed;
    }
  }
}

TEST(StatsAccounting, EmittedEqualsFoundWithoutThetas) {
  auto g = MakeRandomGraph({7, 6, 0.5, 21});
  TraversalStats stats;
  CollectWith(g, MakeITraversalOptions(2), &stats);
  EXPECT_EQ(stats.solutions_emitted, stats.solutions_found);
}

TEST(StatsAccounting, PrunedLinkCountersOnlyUsedByTheirTechnique) {
  auto g = MakeRandomGraph({6, 6, 0.5, 33});
  TraversalStats bt;
  CollectWith(g, MakeBTraversalOptions(1), &bt);
  EXPECT_EQ(bt.links_pruned_right_shrinking, 0u);
  EXPECT_EQ(bt.links_pruned_exclusion, 0u);
  TraversalStats it;
  CollectWith(g, MakeITraversalOptions(1), &it);
  // On dense-enough random graphs the techniques actually fire.
  EXPECT_GT(it.links_pruned_right_shrinking + it.links_pruned_exclusion, 0u);
}

// ------------------------------------------------ engine agreement --------

TEST(EngineAgreement, ImbMatchesITraversalOnMediumGraphs) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    Rng rng(seed + 900);
    auto g = ErdosRenyiBipartite(11, 11, 35 + seed * 5, &rng);
    for (int k = 1; k <= 2; ++k) {
      std::vector<Biplex> imb;
      ImbOptions opts;
      opts.k = k;
      ImbEngine(g, opts).Run([&](const Biplex& b) {
        imb.push_back(b);
        return true;
      });
      std::sort(imb.begin(), imb.end());
      auto itr = CollectWith(g, MakeITraversalOptions(k));
      ASSERT_EQ(imb, itr) << "k=" << k << " seed=" << seed;
    }
  }
}

TEST(EngineAgreement, InflationBaselineMatchesITraversalOnMediumGraphs) {
  Rng rng(77);
  auto g = ErdosRenyiBipartite(9, 9, 28, &rng);
  std::vector<Biplex> inf;
  InflationBaselineOptions opts;
  opts.k = 1;
  InflationEngine(g, opts).Run([&](const Biplex& b) {
    inf.push_back(b);
    return true;
  });
  std::sort(inf.begin(), inf.end());
  ASSERT_EQ(inf, CollectWith(g, MakeITraversalOptions(1)));
}

// ------------------------------------------------ running example ---------

// Pinned regression values for the documented 5x5 running-example graph
// (examples/quickstart prints the same enumeration).
TEST(RunningExample, PinnedSolutionCount) {
  auto g = RunningExampleGraph();
  auto solutions = BruteForceMaximalBiplexes(g, 1);
  EXPECT_EQ(solutions.size(), 17u);
  EXPECT_EQ(CollectWith(g, MakeITraversalOptions(1)), solutions);
  // H0 = ({v4}, all of R) is one of them.
  Biplex h0{{4}, {0, 1, 2, 3, 4}};
  EXPECT_TRUE(std::binary_search(solutions.begin(), solutions.end(), h0));
}

TEST(RunningExample, LinkCountsPinned) {
  auto g = RunningExampleGraph();
  std::vector<uint64_t> links;
  for (const TraversalOptions& opts :
       {MakeBTraversalOptions(1), MakeITraversalLeftAnchoredOnlyOptions(1),
        MakeITraversalNoExclusionOptions(1), MakeITraversalOptions(1)}) {
    TraversalStats stats;
    CollectWith(g, opts, &stats);
    links.push_back(stats.links);
  }
  // Strictly sparser as the techniques stack up, mirroring the paper's
  // 76 -> 41 -> 21 -> 13 shape on its own Figure 1 graph.
  EXPECT_GT(links[0], links[1]);
  EXPECT_GT(links[1], links[2]);
  EXPECT_GT(links[2], links[3]);
}

// ------------------------------------------------ delay tracker -----------

TEST(DelayTracker, CountsOutputsAndGaps) {
  DelayTracker d;
  d.Start();
  d.RecordOutput();
  d.RecordOutput();
  d.Finish();
  EXPECT_EQ(d.outputs(), 2u);
  EXPECT_GE(d.MaxDelaySeconds(), 0.0);
  EXPECT_GE(d.MeanDelaySeconds(), 0.0);
  EXPECT_LE(d.MeanDelaySeconds(), d.MaxDelaySeconds() + 1e-12);
}

TEST(DelayTracker, FinishIsIdempotent) {
  DelayTracker d;
  d.Start();
  d.RecordOutput();
  d.Finish();
  const double max1 = d.MaxDelaySeconds();
  d.Finish();
  EXPECT_EQ(d.MaxDelaySeconds(), max1);
}

TEST(DelayTracker, StartResets) {
  DelayTracker d;
  d.Start();
  d.RecordOutput();
  d.Finish();
  d.Start();
  EXPECT_EQ(d.outputs(), 0u);
}

// ------------------------------------------------ budget interactions -----

TEST(Budgets, DeadlineInsideEnumAlmostSatAborts) {
  // A dense medium graph where single almost-satisfying graphs are
  // expensive: the engine must respect a tiny budget promptly.
  Rng rng(5);
  auto g = ErdosRenyiBipartite(60, 60, 1400, &rng);
  TraversalOptions opts = MakeBTraversalOptions(3);
  opts.time_budget_seconds = 0.05;
  WallTimer t;
  TraversalStats stats;
  CollectWith(g, opts, &stats);
  EXPECT_FALSE(stats.completed);
  EXPECT_LT(t.ElapsedSeconds(), 2.0);  // promptly, not eventually
}

TEST(Budgets, MaxResultsExactWithAlternatingOutput) {
  Rng rng(6);
  auto g = ErdosRenyiBipartite(12, 12, 48, &rng);
  for (uint64_t cap : {1u, 2u, 5u, 9u}) {
    TraversalOptions opts = MakeITraversalOptions(1);
    opts.max_results = cap;
    size_t n = 0;
    TraversalEngine(g, opts).Run([&](const Biplex&) {
      ++n;
      return true;
    });
    EXPECT_EQ(n, cap);
  }
}

}  // namespace
}  // namespace kbiplex
