// Tests of the unified enumeration API: registry contents, cross-backend
// agreement against brute force, uniform budget/cancellation semantics,
// sinks, and request validation.
#include <algorithm>
#include <limits>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/enumerator.h"
#include "core/brute_force.h"
#include "graph/generators.h"
#include "test_support.h"
#include "util/random.h"

namespace kbiplex {
namespace {

using testing_support::MakeRandomGraph;
using testing_support::ToString;

// ------------------------------------------------------------- registry ---

TEST(Registry, ListsAllEightBuiltins) {
  const std::vector<std::string> expect = {
      "btraversal", "brute-force", "imb",        "inflation",
      "itraversal", "itraversal-es", "itraversal-es-rs", "large-mbp"};
  std::vector<std::string> names = AlgorithmRegistry::Global().Names();
  for (const std::string& name : expect) {
    EXPECT_NE(std::find(names.begin(), names.end(), name), names.end())
        << "missing builtin: " << name;
  }
  EXPECT_EQ(names.size(), expect.size());
}

TEST(Registry, LookupIsCaseInsensitive) {
  const AlgorithmRegistry& r = AlgorithmRegistry::Global();
  EXPECT_TRUE(r.Contains("iTraversal"));
  EXPECT_TRUE(r.Contains("ITRAVERSAL-ES"));
  ASSERT_TRUE(r.Find("Brute-Force").has_value());
  EXPECT_EQ(r.Find("Brute-Force")->max_side, 20u);
}

TEST(Registry, CapabilitiesOfBuiltins) {
  const AlgorithmRegistry& r = AlgorithmRegistry::Global();
  EXPECT_FALSE(r.Find("imb")->supports_asymmetric_k);
  EXPECT_FALSE(r.Find("inflation")->supports_asymmetric_k);
  EXPECT_TRUE(r.Find("itraversal")->supports_asymmetric_k);
  EXPECT_TRUE(r.Find("large-mbp")->requires_theta);
  EXPECT_FALSE(r.Find("btraversal")->requires_theta);
}

TEST(Registry, NewBackendRegistersInOneLine) {
  AlgorithmRegistry registry;  // private registry; Global() stays clean
  class NullBackend : public AlgorithmBackend {
    EnumerateStats Run(const QueryContext&, const EnumerateRequest&,
                       SolutionSink*) override {
      return {};
    }
  };
  EXPECT_TRUE(registry.Register({.name = "null", .summary = "no-op"}, [] {
    return std::make_unique<NullBackend>();
  }));
  EXPECT_TRUE(registry.Contains("null"));
  // Duplicate names are refused.
  EXPECT_FALSE(registry.Register({.name = "NULL", .summary = ""}, nullptr));
}

// ------------------------------------------- cross-backend agreement -----

struct AgreementCase {
  KPair k;
  size_t theta_left;
  size_t theta_right;
};

TEST(Agreement, EveryBackendMatchesBruteForce) {
  const std::vector<AgreementCase> cases = {
      {KPair::Uniform(1), 0, 0}, {KPair::Uniform(1), 2, 2},
      {KPair::Uniform(2), 0, 0}, {KPair::Uniform(2), 1, 2},
      {KPair{1, 2}, 0, 0},       {KPair{2, 1}, 1, 1},
  };
  const AlgorithmRegistry& registry = AlgorithmRegistry::Global();
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    for (double p : {0.3, 0.5, 0.7}) {
      BipartiteGraph g = MakeRandomGraph({6, 5, p, seed});
      Enumerator enumerator(g);
      for (const AgreementCase& c : cases) {
        std::vector<Biplex> expect = FilterBySize(
            BruteForceMaximalBiplexes(g, c.k), c.theta_left, c.theta_right);
        for (const std::string& name : registry.Names()) {
          AlgorithmInfo info = *registry.Find(name);
          EnumerateRequest req;
          req.algorithm = name;
          req.k = c.k;
          req.theta_left = c.theta_left;
          req.theta_right = c.theta_right;
          EnumerateStats stats;
          std::vector<Biplex> got = enumerator.Collect(req, &stats);
          const bool unsupported =
              (!info.supports_asymmetric_k && !c.k.IsUniform()) ||
              (info.requires_theta &&
               (c.theta_left < 1 || c.theta_right < 1));
          if (unsupported) {
            EXPECT_FALSE(stats.ok()) << name;
            EXPECT_FALSE(stats.completed) << name;
            EXPECT_TRUE(got.empty()) << name;
            continue;
          }
          ASSERT_TRUE(stats.ok()) << name << ": " << stats.error;
          EXPECT_TRUE(stats.completed) << name;
          EXPECT_EQ(stats.solutions, expect.size()) << name;
          ASSERT_EQ(got, expect)
              << name << " k=(" << c.k.left << "," << c.k.right
              << ") theta=(" << c.theta_left << "," << c.theta_right
              << ") p=" << p << " seed=" << seed << "\ngot:\n"
              << ToString(got) << "want:\n"
              << ToString(expect);
        }
      }
    }
  }
}

// ---------------------------------------------- budgets and cancellation --

std::vector<EnumerateRequest> AllBackendRequests() {
  std::vector<EnumerateRequest> reqs;
  for (const std::string& name : AlgorithmRegistry::Global().Names()) {
    EnumerateRequest req;
    req.algorithm = name;
    req.k = KPair::Uniform(1);
    // large-mbp requires thresholds; harmless for the rest and keeps the
    // delivered solutions identical in spirit across backends.
    req.theta_left = 1;
    req.theta_right = 1;
    reqs.push_back(req);
  }
  return reqs;
}

TEST(Budgets, MaxResultsStopsEveryBackend) {
  Rng rng(91);
  BipartiteGraph g = ErdosRenyiBipartite(10, 10, 40, &rng);
  Enumerator enumerator(g);
  for (EnumerateRequest req : AllBackendRequests()) {
    req.max_results = 1;
    EnumerateStats stats;
    uint64_t n = enumerator.Count(req, &stats);
    ASSERT_TRUE(stats.ok()) << req.algorithm << ": " << stats.error;
    EXPECT_EQ(n, 1u) << req.algorithm;
    EXPECT_EQ(stats.solutions, 1u) << req.algorithm;
    EXPECT_FALSE(stats.completed) << req.algorithm;
  }
}

TEST(Budgets, SinkStopStopsEveryBackend) {
  Rng rng(92);
  BipartiteGraph g = ErdosRenyiBipartite(10, 10, 40, &rng);
  Enumerator enumerator(g);
  for (const EnumerateRequest& req : AllBackendRequests()) {
    size_t n = 0;
    EnumerateStats stats = enumerator.Run(req, [&](const Biplex&) {
      return ++n < 2;  // stop after the second solution
    });
    ASSERT_TRUE(stats.ok()) << req.algorithm << ": " << stats.error;
    EXPECT_EQ(n, 2u) << req.algorithm;
    EXPECT_FALSE(stats.completed) << req.algorithm;
    // The second solution was refused by the sink, so it does not count
    // as delivered: stats.solutions is the number of accepted solutions.
    EXPECT_EQ(stats.solutions, 1u) << req.algorithm;
  }
}

TEST(Cancellation, PreCancelledTokenStopsEveryBackendImmediately) {
  Rng rng(93);
  BipartiteGraph g = ErdosRenyiBipartite(10, 10, 40, &rng);
  Enumerator enumerator(g);
  CancellationToken token;
  token.Cancel();
  for (EnumerateRequest req : AllBackendRequests()) {
    req.cancellation = &token;
    EnumerateStats stats;
    uint64_t n = enumerator.Count(req, &stats);
    EXPECT_EQ(n, 0u) << req.algorithm;
    EXPECT_FALSE(stats.completed) << req.algorithm;
    EXPECT_TRUE(stats.cancelled) << req.algorithm;
  }
}

TEST(Cancellation, MidRunCancelStopsEveryBackend) {
  // Large enough that every backend passes its cancellation poll site
  // (the engines poll every 16..1024 work units) long before finishing.
  Rng rng(94);
  BipartiteGraph g = ErdosRenyiBipartite(14, 14, 80, &rng);
  Enumerator enumerator(g);
  for (EnumerateRequest req : AllBackendRequests()) {
    CancellationToken token;
    req.cancellation = &token;
    EnumerateStats stats = enumerator.Run(req, [&](const Biplex&) {
      token.Cancel();
      return true;  // the stop must come from the token, not the sink
    });
    ASSERT_TRUE(stats.ok()) << req.algorithm << ": " << stats.error;
    EXPECT_FALSE(stats.completed) << req.algorithm;
    EXPECT_TRUE(stats.cancelled) << req.algorithm;
  }
}

TEST(Budgets, TimeBudgetStopsEveryBackend) {
  // The budget is already expired when the run starts, so the first poll
  // or the first delivery attempt stops the backend.
  Rng rng(95);
  BipartiteGraph g = ErdosRenyiBipartite(12, 12, 60, &rng);
  Enumerator enumerator(g);
  for (EnumerateRequest req : AllBackendRequests()) {
    req.time_budget_seconds = 1e-9;
    EnumerateStats stats;
    enumerator.Count(req, &stats);
    ASSERT_TRUE(stats.ok()) << req.algorithm << ": " << stats.error;
    EXPECT_FALSE(stats.completed) << req.algorithm;
  }
}

// ----------------------------------------------------------- validation ---

TEST(Validation, UnknownAlgorithm) {
  BipartiteGraph g = BipartiteGraph::FromEdges(2, 2, {{0, 0}});
  CountingSink sink;
  EnumerateRequest req;
  req.algorithm = "quantum-annealer";
  EnumerateStats stats = Enumerate(g, req, &sink);
  EXPECT_FALSE(stats.ok());
  EXPECT_FALSE(stats.completed);
  EXPECT_NE(stats.error.find("unknown algorithm"), std::string::npos);
  EXPECT_NE(stats.error.find("itraversal"), std::string::npos);
}

TEST(Validation, BadBudgetsRejected) {
  BipartiteGraph g = BipartiteGraph::FromEdges(2, 2, {{0, 0}});
  EnumerateRequest req;
  req.k = KPair{0, 1};
  CountingSink sink;
  EXPECT_FALSE(Enumerate(g, req, &sink).ok());
}

TEST(Validation, BruteForceRejectsLargeGraphs) {
  Rng rng(7);
  BipartiteGraph g = ErdosRenyiBipartite(30, 10, 50, &rng);
  EnumerateRequest req;
  req.algorithm = "brute-force";
  CountingSink sink;
  EnumerateStats stats = Enumerate(g, req, &sink);
  EXPECT_FALSE(stats.ok());
  EXPECT_NE(stats.error.find("at most 20"), std::string::npos);
}

TEST(Validation, UnknownBackendOptionRejected) {
  BipartiteGraph g = BipartiteGraph::FromEdges(2, 2, {{0, 0}});
  EnumerateRequest req;
  req.backend_options["warp_speed"] = "9";
  CountingSink sink;
  EnumerateStats stats = Enumerate(g, req, &sink);
  EXPECT_FALSE(stats.ok());
  EXPECT_NE(stats.error.find("warp_speed"), std::string::npos);
}

TEST(Validation, BadBackendOptionValueRejected) {
  BipartiteGraph g = BipartiteGraph::FromEdges(2, 2, {{0, 0}});
  EnumerateRequest req;
  req.backend_options["anchored_side"] = "up";
  CountingSink sink;
  EnumerateStats stats = Enumerate(g, req, &sink);
  EXPECT_FALSE(stats.ok());
  EXPECT_NE(stats.error.find("anchored_side"), std::string::npos);
}

// ------------------------------------------------------ backend options ---

TEST(BackendOptions, VariantsEnumerateTheSameSet) {
  BipartiteGraph g = MakeRandomGraph({6, 6, 0.5, 17});
  Enumerator enumerator(g);
  EnumerateRequest base;
  base.algorithm = "itraversal";
  std::vector<Biplex> expect = enumerator.Collect(base);
  EXPECT_EQ(expect, BruteForceMaximalBiplexes(g, 1));
  for (const auto& [key, value] :
       std::vector<std::pair<std::string, std::string>>{
           {"anchored_side", "right"},
           {"local_impl", "inflation"},
           {"local_l", "l10"},
           {"local_r", "r10"},
           {"polynomial_delay_output", "false"},
           {"store_backend", "both"}}) {
    EnumerateRequest req = base;
    req.backend_options[key] = value;
    EnumerateStats stats;
    std::vector<Biplex> got = enumerator.Collect(req, &stats);
    ASSERT_TRUE(stats.ok()) << key << ": " << stats.error;
    ASSERT_EQ(got, expect) << key << "=" << value;
  }
}

// ---------------------------------------------------------------- sinks ---

TEST(Sinks, CollectingSinkSortsOnTake) {
  CollectingSink sink;
  sink.Accept(Biplex{{2}, {1}});
  sink.Accept(Biplex{{1}, {2}});
  std::vector<Biplex> got = sink.Take();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].left, (std::vector<VertexId>{1}));
}

TEST(Sinks, StreamWriterSinkFormats) {
  std::ostringstream text;
  StreamWriterSink ts(&text);
  ts.Accept(Biplex{{0, 2}, {1}});
  EXPECT_EQ(text.str(), "0 2 | 1\n");
  EXPECT_EQ(ts.written(), 1u);

  std::ostringstream json;
  StreamWriterSink js(&json, StreamWriterSink::Format::kJsonLines);
  js.Accept(Biplex{{0, 2}, {1}});
  EXPECT_EQ(json.str(), "{\"left\":[0,2],\"right\":[1]}\n");
}

TEST(Sinks, CountingSinkCounts) {
  BipartiteGraph g = MakeRandomGraph({5, 5, 0.5, 3});
  EnumerateRequest req;
  CountingSink sink;
  EnumerateStats stats = Enumerate(g, req, &sink);
  EXPECT_TRUE(stats.ok());
  EXPECT_EQ(sink.count(), stats.solutions);
  EXPECT_EQ(sink.count(), BruteForceMaximalBiplexes(g, 1).size());
}

// ----------------------------------------------------------------- stats --

TEST(Stats, JsonRendering) {
  BipartiteGraph g = MakeRandomGraph({5, 5, 0.5, 4});
  EnumerateRequest req;
  CountingSink sink;
  EnumerateStats stats = Enumerate(g, req, &sink);
  std::string json = stats.ToJson();
  EXPECT_NE(json.find("\"algorithm\":\"itraversal\""), std::string::npos);
  EXPECT_NE(json.find("\"completed\":true"), std::string::npos);
  EXPECT_NE(json.find("\"traversal\":{"), std::string::npos);
  EXPECT_EQ(json.find("\"error\""), std::string::npos);
  // The acceleration counters ride along in the traversal detail block
  // (schema stays backward compatible: purely additive fields).
  EXPECT_NE(json.find("\"candidates_generated\":"), std::string::npos);
  EXPECT_NE(json.find("\"candidates_pruned\":"), std::string::npos);
  EXPECT_NE(json.find("\"adjacency_tests\":"), std::string::npos);
}

TEST(Stats, JsonStaysValidForNonFiniteSeconds) {
  // Time-budget edge cases can leave a non-finite seconds value; default
  // ostream formatting would print bare "inf"/"nan", which is not JSON.
  for (double bad : {std::numeric_limits<double>::infinity(),
                     -std::numeric_limits<double>::infinity(),
                     std::numeric_limits<double>::quiet_NaN()}) {
    EnumerateStats stats;
    stats.algorithm = "itraversal";
    stats.seconds = bad;
    std::string json = stats.ToJson();
    EXPECT_NE(json.find("\"seconds\":null"), std::string::npos) << json;
    EXPECT_EQ(json.find("inf"), std::string::npos) << json;
    EXPECT_EQ(json.find("nan"), std::string::npos) << json;
  }
  EnumerateStats stats;
  stats.seconds = 0.25;
  EXPECT_NE(stats.ToJson().find("\"seconds\":0.25"), std::string::npos);
}

TEST(Stats, BackendDetailPreserved) {
  Rng rng(21);
  BipartiteGraph g = ErdosRenyiBipartite(8, 8, 25, &rng);
  Enumerator enumerator(g);

  EnumerateRequest req;
  req.algorithm = "imb";
  EnumerateStats stats;
  enumerator.Count(req, &stats);
  ASSERT_TRUE(stats.imb.has_value());
  EXPECT_FALSE(stats.traversal.has_value());
  EXPECT_EQ(stats.work_units, stats.imb->nodes);

  req.algorithm = "large-mbp";
  req.theta_left = 2;
  req.theta_right = 2;
  enumerator.Count(req, &stats);
  ASSERT_TRUE(stats.large_mbp.has_value());
  EXPECT_LE(stats.large_mbp->core_left, g.NumLeft());
}

TEST(Stats, InflationOutOfMemoryIsReported) {
  Rng rng(22);
  BipartiteGraph g = ErdosRenyiBipartite(40, 40, 300, &rng);
  EnumerateRequest req;
  req.algorithm = "inflation";
  req.backend_options["max_inflated_edges"] = "10";
  CountingSink sink;
  EnumerateStats stats = Enumerate(g, req, &sink);
  ASSERT_TRUE(stats.ok()) << stats.error;
  EXPECT_TRUE(stats.out_of_memory);
  EXPECT_FALSE(stats.completed);
  EXPECT_EQ(stats.solutions, 0u);
}

}  // namespace
}  // namespace kbiplex
