// Remaining coverage: logging, edge-case I/O, budget handling of the
// baselines, quasi-biclique corner cases, inflation guards, and encode
// stability of the solution key format.
#include <sstream>

#include <gtest/gtest.h>

#include "analysis/quasi_biclique.h"
#include "baselines/kplex_enum.h"
#include "core/biplex.h"
#include "graph/generators.h"
#include "graph/graph_io.h"
#include "graph/inflation.h"
#include "test_support.h"
#include "util/logging.h"
#include "util/random.h"

namespace kbiplex {
namespace {

using testing_support::MakeGraph;

// ------------------------------------------------------------- logging ----

TEST(Logging, LevelFilterRoundTrip) {
  LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // Emitting below the filter must be a no-op (no crash, no output check
  // needed beyond not aborting).
  KBIPLEX_LOG(kDebug) << "suppressed " << 42;
  SetLogLevel(before);
}

TEST(Logging, StreamComposesValues) {
  SetLogLevel(LogLevel::kError);  // silence
  KBIPLEX_LOG(kInfo) << "x=" << 1 << " y=" << 2.5;
  SetLogLevel(LogLevel::kInfo);
}

// ------------------------------------------------------------- graph io ---

TEST(GraphIoEdgeCases, EmptyInputYieldsEmptyGraph) {
  auto r = ParseEdgeList("");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.graph->NumVertices(), 0u);
}

TEST(GraphIoEdgeCases, CommentsOnlyYieldsEmptyGraph) {
  auto r = ParseEdgeList("% a\n# b\n\n   \n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.graph->NumEdges(), 0u);
}

TEST(GraphIoEdgeCases, HeaderOnly) {
  auto r = ParseEdgeList("4 7 0\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.graph->NumLeft(), 4u);
  EXPECT_EQ(r.graph->NumRight(), 7u);
}

TEST(GraphIoEdgeCases, DuplicateEdgesInFileCollapse) {
  auto r = ParseEdgeList("0 0\n0 0\n0 0\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.graph->NumEdges(), 1u);
}

TEST(GraphIoEdgeCases, ToStringParsesBack) {
  Rng rng(2);
  auto g = ErdosRenyiBipartite(6, 8, 17, &rng);
  auto r = ParseEdgeList(ToEdgeListString(g));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.graph->Edges(), g.Edges());
  EXPECT_EQ(r.graph->NumLeft(), g.NumLeft());
  EXPECT_EQ(r.graph->NumRight(), g.NumRight());
}

// ----------------------------------------------------------- key format ---

TEST(BiplexKey, LengthIsFourBytesPerField) {
  Biplex b{{1, 2}, {3}};
  EXPECT_EQ(EncodeBiplexKey(b).size(), 4u * (1 + 2 + 1));
}

TEST(BiplexKey, LexOrderMatchesNumericOnEqualShape) {
  // Big-endian ids: numeric order of the first differing id decides.
  Biplex a{{1}, {2}};
  Biplex b{{1}, {300}};
  EXPECT_LT(EncodeBiplexKey(a), EncodeBiplexKey(b));
}

// --------------------------------------------------------------- k-plex ----

TEST(KPlexBudget, TimeBudgetStopsEnumeration) {
  Rng rng(5);
  std::vector<GeneralGraph::Edge> edges;
  for (VertexId a = 0; a < 60; ++a) {
    for (VertexId b = a + 1; b < 60; ++b) {
      if (rng.NextBool(0.5)) edges.emplace_back(a, b);
    }
  }
  auto g = GeneralGraph::FromEdges(60, std::move(edges));
  KPlexEnumOptions opts;
  opts.p = 3;
  opts.time_budget_seconds = 0.02;
  auto stats = EnumerateMaximalKPlexes(
      g, opts, [](const std::vector<VertexId>&) { return true; });
  EXPECT_FALSE(stats.completed);
}

TEST(KPlexBudget, CallbackStop) {
  auto g = GeneralGraph::FromEdges(5, {{0, 1}, {1, 2}, {3, 4}});
  KPlexEnumOptions opts;
  opts.p = 2;
  size_t n = 0;
  EnumerateMaximalKPlexes(g, opts, [&](const std::vector<VertexId>&) {
    return ++n < 2;
  });
  EXPECT_EQ(n, 2u);
}

// ----------------------------------------------------------------- δ-QB ----

TEST(QuasiBicliqueEdgeCases, EmptyGraphYieldsNoBlocks) {
  BipartiteGraph g;
  auto blocks = FindQuasiBicliqueBlocks(g, QuasiBicliqueOptions{});
  EXPECT_TRUE(blocks.empty());
}

TEST(QuasiBicliqueEdgeCases, DeltaZeroRequiresBiclique) {
  // A complete 4x4 block qualifies at delta = 0.
  std::vector<BipartiteGraph::Edge> edges;
  for (VertexId l = 0; l < 4; ++l) {
    for (VertexId r = 0; r < 4; ++r) edges.emplace_back(l, r);
  }
  auto g = BipartiteGraph::FromEdges(4, 4, edges);
  QuasiBicliqueOptions opts;
  opts.delta = 0.0;
  opts.theta_left = 4;
  opts.theta_right = 4;
  auto blocks = FindQuasiBicliqueBlocks(g, opts);
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0].left.size(), 4u);
}

// ------------------------------------------------------------- inflation ---

TEST(InflationGuards, EdgeCountFormula) {
  auto g = MakeGraph(4, 3, {{0, 0}});
  // C(4,2) + C(3,2) + 1 = 6 + 3 + 1.
  EXPECT_EQ(InflatedEdgeCount(g), 10u);
}

TEST(InflationGuards, EmptySidesSafe) {
  auto g = MakeGraph(0, 3, {});
  EXPECT_EQ(InflatedEdgeCount(g), 3u);
  InflatedGraph inf = Inflate(g);
  EXPECT_EQ(inf.graph.NumVertices(), 3u);
  EXPECT_EQ(inf.graph.NumEdges(), 3u);
}

}  // namespace
}  // namespace kbiplex
