// In-process integration tests of the serving daemon: a real Server on an
// ephemeral loopback port, exercised through real sockets by LineClient —
// the same path kbiplexd and kbiplex-client take, minus the processes.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/query_session.h"
#include "api/request_parse.h"
#include "graph/graph_io.h"
#include "serve/client.h"
#include "serve/server.h"
#include "util/json_value.h"

namespace kbiplex {
namespace serve {
namespace {

constexpr const char* kToyGraphPath = KBIPLEX_SOURCE_DIR "/ci/toy_graph.txt";
constexpr const char* kBatchQueriesPath =
    KBIPLEX_SOURCE_DIR "/ci/batch_queries.txt";

/// One parsed response line.
struct Response {
  json::JsonValue value;
  std::string type;
};

Response ParseResponse(const std::string& line) {
  json::ParseResult parsed = json::Parse(line);
  EXPECT_TRUE(parsed.ok()) << parsed.error << " in: " << line;
  Response r;
  r.value = std::move(parsed.value);
  const json::JsonValue* type = r.value.Find("type");
  if (type != nullptr && type->is_string()) r.type = type->AsString();
  return r;
}

/// Sends one command and reads responses through the terminal one.
std::vector<Response> RoundTrip(LineClient* client, const std::string& line) {
  EXPECT_TRUE(client->SendLine(line));
  std::vector<Response> responses;
  std::string reply;
  while (client->ReadLine(&reply)) {
    responses.push_back(ParseResponse(reply));
    if (responses.back().type != "solution") break;
  }
  EXPECT_FALSE(responses.empty()) << "no terminal response for: " << line;
  return responses;
}

Biplex SolutionOf(const Response& r) {
  Biplex b;
  for (const char* side : {"left", "right"}) {
    const json::JsonValue* arr = r.value.Find(side);
    EXPECT_NE(arr, nullptr);
    EXPECT_TRUE(arr->is_array());
    for (const json::JsonValue& v : arr->AsArray())
      (side[0] == 'l' ? b.left : b.right)
          .push_back(static_cast<VertexId>(v.AsNumber()));
  }
  return b;
}

double NumberField(const json::JsonValue& obj, const std::string& key) {
  const json::JsonValue* v = obj.Find(key);
  EXPECT_NE(v, nullptr) << "missing " << key;
  if (v == nullptr || !v->is_number()) return -1;
  return v->AsNumber();
}

std::vector<std::string> LoadBatchQueryLines() {
  std::ifstream in(kBatchQueriesPath);
  EXPECT_TRUE(in.good()) << kBatchQueriesPath;
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    lines.push_back(line);
  }
  return lines;
}

/// A pseudo-random half-dense 24x24 graph: enumerating its maximal
/// 2-biplexes is combinatorially hopeless (a 0.3s budget finds thousands
/// and is nowhere near done), so a query over it reliably runs until its
/// budget, deadline, or cancellation stops it. A complete bipartite graph
/// would NOT work here — its biplex structure is trivial.
BipartiteGraph DenseGraph() {
  std::vector<BipartiteGraph::Edge> edges;
  for (VertexId l = 0; l < 24; ++l)
    for (VertexId r = 0; r < 24; ++r)
      if ((l * 31 + r * 17 + l * r) % 97 < 55) edges.push_back({l, r});
  return BipartiteGraph::FromEdges(24, 24, std::move(edges));
}

std::string SlowQueryLine(const std::string& id, double budget_seconds) {
  return "{\"op\":\"query\",\"id\":\"" + id +
         "\",\"graph\":\"dense\",\"emit\":\"count\",\"request\":"
         "{\"algo\":\"itraversal\",\"k\":2,\"budget_s\":" +
         std::to_string(budget_seconds) + "}}";
}

TEST(ServeTest, ConcurrentClientsAgreeWithDirectSessionsAndStatsAddUp) {
  ServerOptions options;
  options.workers = 4;
  Server server(options);
  ASSERT_EQ(server.registry().LoadFile("toy", kToyGraphPath, options.prepare),
            "");
  ASSERT_EQ(server.Start(), "");

  // The reference answers: the same requests through a direct
  // QuerySession over the same file.
  const std::vector<std::string> query_lines = LoadBatchQueryLines();
  ASSERT_FALSE(query_lines.empty());
  LoadResult loaded = LoadEdgeList(kToyGraphPath);
  ASSERT_TRUE(loaded.ok());
  auto prepared =
      PreparedGraph::Prepare(std::move(*loaded.graph), options.prepare);
  QuerySession reference(prepared);
  std::vector<std::vector<Biplex>> expected_solutions;
  std::vector<EnumerateStats> expected_stats;
  for (const std::string& line : query_lines) {
    EnumerateRequest request;
    ASSERT_EQ(ParseRequestLine(line, &request), "") << line;
    EnumerateStats stats;
    expected_solutions.push_back(reference.Collect(request, &stats));
    expected_stats.push_back(stats);
  }

  constexpr int kClients = 4;
  std::atomic<int> failures{0};
  std::atomic<uint64_t> wire_solutions_sum{0};
  std::atomic<uint64_t> wire_requests{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      LineClient client;
      if (!client.Connect("127.0.0.1", server.port()).empty()) {
        ++failures;
        return;
      }
      for (size_t q = 0; q < query_lines.size(); ++q) {
        EnumerateRequest request;
        ParseRequestLine(query_lines[q], &request);
        const std::string id =
            std::to_string(c) + "-" + std::to_string(q);
        const std::string line = "{\"op\":\"query\",\"id\":\"" + id +
                                 "\",\"graph\":\"toy\",\"request\":" +
                                 RequestToWireJson(request) + "}";
        const std::vector<Response> responses = RoundTrip(&client, line);
        if (responses.empty() || responses.back().type != "done") {
          ++failures;
          continue;
        }
        std::vector<Biplex> got;
        for (size_t i = 0; i + 1 < responses.size(); ++i)
          got.push_back(SolutionOf(responses[i]));
        std::sort(got.begin(), got.end());
        std::vector<Biplex> want = expected_solutions[q];
        std::sort(want.begin(), want.end());
        if (got != want) ++failures;
        const json::JsonValue* stats = responses.back().value.Find("stats");
        if (stats == nullptr ||
            NumberField(*stats, "solutions") !=
                static_cast<double>(expected_stats[q].solutions)) {
          ++failures;
        }
        wire_solutions_sum += expected_stats[q].solutions;
        ++wire_requests;
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(wire_requests.load(), kClients * query_lines.size());

  // The aggregated stats must equal the per-request sums.
  LineClient client;
  ASSERT_EQ(client.Connect("127.0.0.1", server.port()), "");
  const std::vector<Response> stat = RoundTrip(&client, "{\"op\":\"stats\"}");
  ASSERT_EQ(stat.size(), 1u);
  ASSERT_EQ(stat[0].type, "stats");
  const json::JsonValue* requests = stat[0].value.Find("requests");
  ASSERT_NE(requests, nullptr);
  const json::JsonValue* total = requests->Find("total");
  ASSERT_NE(total, nullptr);
  EXPECT_EQ(NumberField(*total, "requests"),
            static_cast<double>(wire_requests.load()));
  EXPECT_EQ(NumberField(*total, "solutions"),
            static_cast<double>(wire_solutions_sum.load()));
  EXPECT_EQ(NumberField(*total, "errors"), 0);

  server.RequestDrain();
  server.Wait();
}

TEST(ServeTest, DeadlineExpiredInQueueIsRejectedWith504) {
  ServerOptions options;
  options.workers = 1;
  Server server(options);
  server.registry().Add("dense", DenseGraph(), options.prepare);
  ASSERT_EQ(server.Start(), "");

  LineClient blocker;
  ASSERT_EQ(blocker.Connect("127.0.0.1", server.port()), "");
  ASSERT_TRUE(blocker.SendLine(SlowQueryLine("slow", 0.4)));
  // Wait until the slow query occupies the one worker.
  while (server.admission_counters().admitted < 1 ||
         server.admission_counters().depth > 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));

  // This query waits in the queue far past its 1ms deadline.
  LineClient client;
  ASSERT_EQ(client.Connect("127.0.0.1", server.port()), "");
  const std::vector<Response> responses = RoundTrip(
      &client,
      "{\"op\":\"query\",\"id\":9,\"graph\":\"dense\",\"deadline_ms\":1,"
      "\"request\":{\"algo\":\"itraversal\",\"k\":1}}");
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].type, "error");
  EXPECT_EQ(NumberField(responses[0].value, "code"), 504);

  std::string line;
  EXPECT_TRUE(blocker.ReadLine(&line));  // the slow query's done line
  server.RequestDrain();
  server.Wait();
}

TEST(ServeTest, DeadlineMidRunCancelsTheEnumeration) {
  ServerOptions options;
  options.workers = 1;
  Server server(options);
  server.registry().Add("dense", DenseGraph(), options.prepare);
  ASSERT_EQ(server.Start(), "");

  // No budget: only the 50ms deadline (via the reaper's cancellation)
  // can stop this enumeration.
  LineClient client;
  ASSERT_EQ(client.Connect("127.0.0.1", server.port()), "");
  const std::vector<Response> responses = RoundTrip(
      &client,
      "{\"op\":\"query\",\"id\":1,\"graph\":\"dense\",\"deadline_ms\":50,"
      "\"emit\":\"count\","
      "\"request\":{\"algo\":\"itraversal\",\"k\":2}}");
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].type, "error");
  EXPECT_EQ(NumberField(responses[0].value, "code"), 504);
  const json::JsonValue* stats = responses[0].value.Find("stats");
  ASSERT_NE(stats, nullptr) << "504 after work should attach stats";
  const json::JsonValue* completed = stats->Find("completed");
  ASSERT_NE(completed, nullptr);
  EXPECT_FALSE(completed->AsBool());

  server.RequestDrain();
  server.Wait();
}

TEST(ServeTest, OverloadedQueueRejectsWith429) {
  ServerOptions options;
  options.workers = 1;
  options.queue_capacity = 1;
  Server server(options);
  server.registry().Add("dense", DenseGraph(), options.prepare);
  ASSERT_EQ(server.Start(), "");

  LineClient blocker;
  ASSERT_EQ(blocker.Connect("127.0.0.1", server.port()), "");
  ASSERT_TRUE(blocker.SendLine(SlowQueryLine("slow", 0.5)));
  while (server.admission_counters().admitted < 1 ||
         server.admission_counters().depth > 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));

  // Fills the queue behind the active query...
  LineClient client;
  ASSERT_EQ(client.Connect("127.0.0.1", server.port()), "");
  ASSERT_TRUE(client.SendLine(SlowQueryLine("queued", 0.05)));
  while (server.admission_counters().admitted < 2)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  // ...so the third query is rejected immediately.
  ASSERT_TRUE(client.SendLine(SlowQueryLine("rejected", 0.05)));
  std::string line;
  ASSERT_TRUE(client.ReadLine(&line));
  const Response rejected = ParseResponse(line);
  EXPECT_EQ(rejected.type, "error");
  EXPECT_EQ(NumberField(rejected.value, "code"), 429);
  const json::JsonValue* id = rejected.value.Find("id");
  ASSERT_NE(id, nullptr);
  EXPECT_EQ(id->AsString(), "rejected");
  EXPECT_GE(server.admission_counters().rejected_overload, 1u);

  // The queued query still runs to its terminal response.
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_EQ(ParseResponse(line).type, "done");
  server.RequestDrain();
  server.Wait();
}

TEST(ServeTest, GracefulDrainFinishesInFlightAndRejectsNew) {
  ServerOptions options;
  options.workers = 2;
  Server server(options);
  server.registry().Add("dense", DenseGraph(), options.prepare);
  ASSERT_EQ(server.Start(), "");

  LineClient running;
  ASSERT_EQ(running.Connect("127.0.0.1", server.port()), "");
  // Connected before the drain: drain stops accepting new connections,
  // but established ones keep their protocol until the drain completes.
  LineClient late;
  ASSERT_EQ(late.Connect("127.0.0.1", server.port()), "");
  ASSERT_TRUE(running.SendLine(SlowQueryLine("inflight", 0.3)));
  while (server.admission_counters().admitted < 1 ||
         server.admission_counters().depth > 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));

  server.RequestDrain();
  EXPECT_TRUE(server.draining());

  // New queries are turned away with 503...
  const std::vector<Response> rejected =
      RoundTrip(&late, SlowQueryLine("late", 0.05));
  ASSERT_EQ(rejected.size(), 1u);
  EXPECT_EQ(rejected[0].type, "error");
  EXPECT_EQ(NumberField(rejected[0].value, "code"), 503);

  // ...while the in-flight query still delivers its terminal line.
  std::string line;
  ASSERT_TRUE(running.ReadLine(&line));
  EXPECT_EQ(ParseResponse(line).type, "done");

  server.Wait();
  // After the drain, the connection is gone.
  EXPECT_FALSE(running.ReadLine(&line));
}

TEST(ServeTest, WireLoadEvictAndErrorsRoundTrip) {
  ServerOptions options;
  Server server(options);
  ASSERT_EQ(server.Start(), "");

  LineClient client;
  ASSERT_EQ(client.Connect("127.0.0.1", server.port()), "");

  // Unknown graph -> 404.
  std::vector<Response> r = RoundTrip(
      &client,
      "{\"op\":\"query\",\"id\":1,\"graph\":\"nope\",\"request\":{\"k\":1}}");
  EXPECT_EQ(r[0].type, "error");
  EXPECT_EQ(NumberField(r[0].value, "code"), 404);

  // Unknown keys are rejected, not ignored.
  r = RoundTrip(&client, "{\"op\":\"ping\",\"id\":2,\"bogus\":true}");
  EXPECT_EQ(r[0].type, "error");
  EXPECT_EQ(NumberField(r[0].value, "code"), 400);
  r = RoundTrip(&client,
                "{\"op\":\"query\",\"id\":3,\"graph\":\"g\","
                "\"request\":{\"k\":1,\"bogus\":2}}");
  EXPECT_EQ(r[0].type, "error");
  EXPECT_EQ(NumberField(r[0].value, "code"), 400);

  // load -> list -> query -> evict -> 404.
  r = RoundTrip(&client, std::string("{\"op\":\"load\",\"id\":4,\"name\":"
                                     "\"toy\",\"path\":\"") +
                             kToyGraphPath + "\"}");
  ASSERT_EQ(r[0].type, "loaded");
  r = RoundTrip(&client, "{\"op\":\"list\",\"id\":5}");
  ASSERT_EQ(r[0].type, "graphs");
  ASSERT_EQ(r[0].value.Find("graphs")->AsArray().size(), 1u);
  r = RoundTrip(&client,
                "{\"op\":\"query\",\"id\":6,\"graph\":\"toy\",\"emit\":"
                "\"count\",\"request\":{\"algo\":\"itraversal\",\"k\":1}}");
  ASSERT_EQ(r.back().type, "done");
  r = RoundTrip(&client, "{\"op\":\"evict\",\"id\":7,\"name\":\"toy\"}");
  ASSERT_EQ(r[0].type, "evicted");
  r = RoundTrip(&client,
                "{\"op\":\"query\",\"id\":8,\"graph\":\"toy\",\"request\":"
                "{\"k\":1}}");
  EXPECT_EQ(r[0].type, "error");
  EXPECT_EQ(NumberField(r[0].value, "code"), 404);

  server.RequestDrain();
  server.Wait();
}

/// Keys of a parsed JSON object, for additive-schema golden checks.
std::set<std::string> KeysOf(const json::JsonValue& obj) {
  EXPECT_TRUE(obj.is_object());
  std::set<std::string> keys;
  for (const auto& member : obj.AsObject()) keys.insert(member.first);
  return keys;
}

TEST(ServeTest, UpdateOpRoundTripsAndStatsSchemaIsAdditive) {
  ServerOptions options;
  Server server(options);
  ASSERT_EQ(server.Start(), "");
  LineClient client;
  ASSERT_EQ(client.Connect("127.0.0.1", server.port()), "");

  // Update against an unknown graph -> 404 before anything else runs.
  std::vector<Response> r = RoundTrip(
      &client,
      "{\"op\":\"update\",\"id\":1,\"name\":\"toy\",\"insert\":[[0,3]]}");
  EXPECT_EQ(r[0].type, "error");
  EXPECT_EQ(NumberField(r[0].value, "code"), 404);

  r = RoundTrip(&client, std::string("{\"op\":\"load\",\"id\":2,\"name\":"
                                     "\"toy\",\"path\":\"") +
                             kToyGraphPath + "\"}");
  ASSERT_EQ(r[0].type, "loaded");

  // Grammar errors are 400s: malformed edge arrays, unknown options.
  r = RoundTrip(&client,
                "{\"op\":\"update\",\"id\":3,\"name\":\"toy\","
                "\"insert\":[[0]]}");
  EXPECT_EQ(r[0].type, "error");
  EXPECT_EQ(NumberField(r[0].value, "code"), 400);
  r = RoundTrip(&client,
                "{\"op\":\"update\",\"id\":4,\"name\":\"toy\","
                "\"insert\":[[0,3]],\"options\":{\"bogus\":1}}");
  EXPECT_EQ(r[0].type, "error");
  EXPECT_EQ(NumberField(r[0].value, "code"), 400);
  // Out-of-range endpoints are a batch-validation 400, not a crash.
  r = RoundTrip(&client,
                "{\"op\":\"update\",\"id\":5,\"name\":\"toy\","
                "\"insert\":[[9999,0]]}");
  EXPECT_EQ(r[0].type, "error");
  EXPECT_EQ(NumberField(r[0].value, "code"), 400);

  // A real update: one insert, one delete, one noop insert.
  r = RoundTrip(&client,
                "{\"op\":\"update\",\"id\":6,\"name\":\"toy\","
                "\"insert\":[[0,3],[0,0]],\"delete\":[[0,1]],"
                "\"options\":{\"max_delta_fraction\":1.0}}");
  ASSERT_EQ(r[0].type, "updated");
  EXPECT_EQ(KeysOf(r[0].value),
            (std::set<std::string>{"type", "id", "graph", "generation",
                                   "epoch", "inserted", "deleted",
                                   "noop_inserts", "noop_deletes", "rebuilt",
                                   "seconds"}));
  EXPECT_EQ(NumberField(r[0].value, "epoch"), 1);
  EXPECT_EQ(NumberField(r[0].value, "inserted"), 1);
  EXPECT_EQ(NumberField(r[0].value, "deleted"), 1);
  EXPECT_EQ(NumberField(r[0].value, "noop_inserts"), 1);

  // Queries after the update run against the new epoch and agree with a
  // direct session over the same mutated graph.
  r = RoundTrip(&client,
                "{\"op\":\"query\",\"id\":7,\"graph\":\"toy\",\"emit\":"
                "\"count\",\"request\":{\"algo\":\"itraversal\",\"k\":1}}");
  ASSERT_EQ(r.back().type, "done");
  const json::JsonValue* done_stats = r.back().value.Find("stats");
  ASSERT_NE(done_stats, nullptr);
  const double served_count = NumberField(*done_stats, "solutions");
  LoadResult loaded = LoadEdgeList(kToyGraphPath);
  ASSERT_TRUE(loaded.ok()) << loaded.error;
  std::vector<BipartiteGraph::Edge> edges;
  for (VertexId l = 0; l < static_cast<VertexId>(loaded.graph->NumLeft());
       ++l)
    for (VertexId v : loaded.graph->LeftNeighbors(l))
      if (!(l == 0 && v == 1)) edges.push_back({l, v});
  edges.push_back({0, 3});
  BipartiteGraph mutated = BipartiteGraph::FromEdges(
      loaded.graph->NumLeft(), loaded.graph->NumRight(), std::move(edges));
  QuerySession direct(
      PreparedGraph::Prepare(std::move(mutated), ServerOptions().prepare));
  EnumerateRequest request;
  request.algorithm = "itraversal";
  EXPECT_EQ(served_count, static_cast<double>(direct.Count(request)));

  // Per-graph stats schema is additive: the epoch/update keys ride along
  // with the pre-update ones, and the lineage block is complete.
  r = RoundTrip(&client, "{\"op\":\"stats\",\"id\":8}");
  ASSERT_EQ(r[0].type, "stats");
  const json::JsonValue* graphs = r[0].value.Find("graphs");
  ASSERT_NE(graphs, nullptr);
  ASSERT_EQ(graphs->AsArray().size(), 1u);
  const json::JsonValue& toy = graphs->AsArray()[0];
  EXPECT_EQ(KeysOf(toy),
            (std::set<std::string>{"name", "generation", "epoch",
                                   "pending_retired_epochs", "updates",
                                   "artifacts"}));
  EXPECT_EQ(NumberField(toy, "epoch"), 1);
  const json::JsonValue* updates = toy.Find("updates");
  ASSERT_NE(updates, nullptr);
  EXPECT_EQ(KeysOf(*updates),
            (std::set<std::string>{"epoch", "updates_applied",
                                   "edges_inserted", "edges_deleted",
                                   "full_rebuilds", "artifacts_incremental",
                                   "artifacts_rebuilt", "apply_seconds"}));
  EXPECT_EQ(NumberField(*updates, "updates_applied"), 1);

  server.RequestDrain();
  server.Wait();
}

TEST(ServeTest, DrainOpDrainsTheServer) {
  ServerOptions options;
  Server server(options);
  ASSERT_EQ(server.Start(), "");
  LineClient client;
  ASSERT_EQ(client.Connect("127.0.0.1", server.port()), "");
  const std::vector<Response> r =
      RoundTrip(&client, "{\"op\":\"drain\",\"id\":1}");
  ASSERT_EQ(r[0].type, "draining");
  server.Wait();
  EXPECT_TRUE(server.draining());
}

}  // namespace
}  // namespace serve
}  // namespace kbiplex
