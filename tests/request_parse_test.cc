// The shared EnumerateRequest wire grammar and the strict JSON parser
// under it: both front ends (flag lines, JSON objects) must reject
// unknown keys and malformed values with a structured error — a silently
// dropped constraint changes the answer — and the JSON form must round
// trip through RequestToWireJson.

#include <string>

#include <gtest/gtest.h>

#include "api/request_parse.h"
#include "serve/wire.h"
#include "util/json_value.h"

namespace kbiplex {
namespace {

EnumerateRequest MustParseLine(const std::string& line) {
  EnumerateRequest request;
  const std::string err = ParseRequestLine(line, &request);
  EXPECT_EQ(err, "") << line;
  return request;
}

std::string LineError(const std::string& line) {
  EnumerateRequest request;
  return ParseRequestLine(line, &request);
}

std::string JsonError(const std::string& text) {
  json::ParseResult parsed = json::Parse(text);
  EXPECT_TRUE(parsed.ok()) << parsed.error;
  EnumerateRequest request;
  return ParseRequestJson(parsed.value, &request);
}

TEST(RequestParseTest, FlagLineParsesEveryField) {
  const EnumerateRequest r = MustParseLine(
      "--algo imb --kl 2 --kr 1 --theta-l 3 --theta-r 4 --max 10 "
      "--budget 1.5 --max-links 99 --threads 4 --opt key=value");
  EXPECT_EQ(r.algorithm, "imb");
  EXPECT_EQ(r.k.left, 2);
  EXPECT_EQ(r.k.right, 1);
  EXPECT_EQ(r.theta_left, 3u);
  EXPECT_EQ(r.theta_right, 4u);
  EXPECT_EQ(r.max_results, 10u);
  EXPECT_DOUBLE_EQ(r.time_budget_seconds, 1.5);
  EXPECT_EQ(r.max_links, 99u);
  EXPECT_EQ(r.threads, 4);
  ASSERT_EQ(r.backend_options.count("key"), 1u);
  EXPECT_EQ(r.backend_options.at("key"), "value");
}

TEST(RequestParseTest, FlagLineRejectsUnknownAndMalformed) {
  EXPECT_NE(LineError("--algo itraversal --bogus 3"), "");
  EXPECT_NE(LineError("--k"), "");          // missing value
  EXPECT_NE(LineError("--k 2x"), "");       // trailing garbage
  EXPECT_NE(LineError("--k -1"), "");       // negative budget
  EXPECT_NE(LineError("--budget abc"), "");
  EXPECT_NE(LineError("--opt novalue"), "");  // --opt wants KEY=VALUE
}

TEST(RequestParseTest, JsonFormParsesAndRejectsUnknownKeys) {
  json::ParseResult parsed = json::Parse(
      "{\"algo\":\"large-mbp\",\"kl\":2,\"kr\":1,\"theta_l\":3,"
      "\"theta_r\":4,\"max\":7,\"budget_s\":0.25,\"threads\":2,"
      "\"options\":{\"a\":\"b\"}}");
  ASSERT_TRUE(parsed.ok());
  EnumerateRequest r;
  ASSERT_EQ(ParseRequestJson(parsed.value, &r), "");
  EXPECT_EQ(r.algorithm, "large-mbp");
  EXPECT_EQ(r.k.left, 2);
  EXPECT_EQ(r.k.right, 1);
  EXPECT_EQ(r.theta_left, 3u);
  EXPECT_EQ(r.max_results, 7u);
  EXPECT_EQ(r.threads, 2);
  EXPECT_EQ(r.backend_options.at("a"), "b");

  EXPECT_NE(JsonError("{\"k\":1,\"bogus\":true}"), "");
  EXPECT_NE(JsonError("{\"k\":\"two\"}"), "");    // wrong type
  EXPECT_NE(JsonError("{\"k\":-3}"), "");          // out of range
  EXPECT_NE(JsonError("{\"options\":{\"a\":1}}"), "");  // non-string option
}

TEST(RequestParseTest, WireJsonRoundTrips) {
  const EnumerateRequest original = MustParseLine(
      "--algo imb --kl 2 --kr 1 --theta-l 3 --theta-r 4 --max 10 "
      "--budget 1.5 --max-links 99 --threads 4 --opt key=value");
  json::ParseResult parsed = json::Parse(RequestToWireJson(original));
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EnumerateRequest round;
  ASSERT_EQ(ParseRequestJson(parsed.value, &round), "");
  EXPECT_EQ(round.algorithm, original.algorithm);
  EXPECT_EQ(round.k.left, original.k.left);
  EXPECT_EQ(round.k.right, original.k.right);
  EXPECT_EQ(round.theta_left, original.theta_left);
  EXPECT_EQ(round.theta_right, original.theta_right);
  EXPECT_EQ(round.max_results, original.max_results);
  EXPECT_DOUBLE_EQ(round.time_budget_seconds, original.time_budget_seconds);
  EXPECT_EQ(round.max_links, original.max_links);
  EXPECT_EQ(round.threads, original.threads);
  EXPECT_EQ(round.backend_options, original.backend_options);
}

TEST(JsonValueTest, ParsesTheBasics) {
  json::ParseResult r = json::Parse(
      "{\"s\":\"a\\\"b\",\"n\":-1.5e2,\"b\":true,\"z\":null,"
      "\"arr\":[1,2,3],\"obj\":{\"k\":\"v\"}}");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.value.Find("s")->AsString(), "a\"b");
  EXPECT_DOUBLE_EQ(r.value.Find("n")->AsNumber(), -150.0);
  EXPECT_TRUE(r.value.Find("b")->AsBool());
  EXPECT_TRUE(r.value.Find("z")->is_null());
  EXPECT_EQ(r.value.Find("arr")->AsArray().size(), 3u);
  EXPECT_EQ(r.value.Find("obj")->Find("k")->AsString(), "v");
  EXPECT_EQ(r.value.Find("missing"), nullptr);
}

TEST(JsonValueTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(json::Parse("").ok());
  EXPECT_FALSE(json::Parse("{").ok());
  EXPECT_FALSE(json::Parse("{\"a\":1,}").ok());    // trailing comma
  EXPECT_FALSE(json::Parse("{\"a\" 1}").ok());      // missing colon
  EXPECT_FALSE(json::Parse("[1,2] trailing").ok());
  EXPECT_FALSE(json::Parse("'single'").ok());
  EXPECT_FALSE(json::Parse("{\"a\":01}").ok());     // leading zero
  EXPECT_FALSE(json::Parse("\"\\x\"").ok());        // bad escape
}

TEST(WireCommandTest, ParsesQueryAndRejectsUnknownKeysPerOp) {
  serve::WireCommand cmd;
  ASSERT_EQ(serve::ParseCommand(
                "{\"op\":\"query\",\"id\":42,\"graph\":\"g\","
                "\"deadline_ms\":250,\"emit\":\"count\","
                "\"request\":{\"algo\":\"itraversal\",\"k\":2}}",
                &cmd),
            "");
  EXPECT_EQ(cmd.op, "query");
  EXPECT_EQ(cmd.id, "42");
  EXPECT_EQ(cmd.graph, "g");
  EXPECT_EQ(cmd.deadline_ms, 250u);
  EXPECT_TRUE(cmd.count_only);
  EXPECT_EQ(cmd.request.algorithm, "itraversal");
  EXPECT_EQ(cmd.request.k.left, 2);

  // Unknown keys are per-op errors, and the id survives for the error
  // response even when parsing fails.
  serve::WireCommand bad;
  EXPECT_NE(serve::ParseCommand(
                "{\"op\":\"query\",\"id\":\"q7\",\"graph\":\"g\","
                "\"name\":\"x\",\"request\":{\"k\":1}}",
                &bad),
            "");
  EXPECT_EQ(bad.id, "\"q7\"");
  EXPECT_NE(
      serve::ParseCommand("{\"op\":\"ping\",\"graph\":\"g\"}", &bad), "");
  EXPECT_NE(serve::ParseCommand("{\"op\":\"nope\"}", &bad), "");
  EXPECT_NE(serve::ParseCommand("{\"op\":\"load\",\"name\":\"g\"}", &bad),
            "");  // load requires path
  EXPECT_NE(serve::ParseCommand("not json", &bad), "");
  EXPECT_NE(serve::ParseCommand(
                "{\"op\":\"query\",\"graph\":\"g\",\"request\":"
                "{\"k\":1},\"emit\":\"maybe\"}",
                &bad),
            "");  // emit has two spellings only
}

TEST(WireCommandTest, ResponseLinesAreWellFormedJson) {
  Biplex b;
  b.left = {1, 2};
  b.right = {3};
  json::ParseResult r = json::Parse(serve::SolutionLine("7", b));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value.Find("type")->AsString(), "solution");
  EXPECT_EQ(r.value.Find("left")->AsArray().size(), 2u);

  r = json::Parse(serve::ErrorLine("null", serve::kOverloaded,
                                   "queue \"full\"\n"));
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.value.Find("code")->AsNumber(), 429);
  EXPECT_EQ(r.value.Find("message")->AsString(), "queue \"full\"\n");

  r = json::Parse(serve::DoneLine("7", "{\"solutions\":3}"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value.Find("stats")->Find("solutions")->AsNumber(), 3);
}

}  // namespace
}  // namespace kbiplex
