// Tests of the asymmetric-budget generalization (different k per side),
// the adaptation the paper's Section 2 remark calls for. Every engine
// configuration must agree with the exhaustive oracle under (k_l, k_r).
#include <algorithm>

#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "core/btraversal.h"
#include "core/enum_almost_sat.h"
#include "core/large_mbp.h"
#include "graph/generators.h"
#include "test_support.h"
#include "util/random.h"

namespace kbiplex {
namespace {

using testing_support::CollectWith;
using testing_support::CollectLargeWith;
using testing_support::MakeGraph;
using testing_support::MakeRandomGraph;
using testing_support::ToString;

TEST(KPairBasics, UniformAndForSide) {
  KPair k = KPair::Uniform(2);
  EXPECT_EQ(k.left, 2);
  EXPECT_EQ(k.right, 2);
  EXPECT_TRUE(k.IsUniform());
  KPair a{1, 3};
  EXPECT_FALSE(a.IsUniform());
  EXPECT_EQ(a.ForSide(Side::kLeft), 1);
  EXPECT_EQ(a.ForSide(Side::kRight), 3);
}

TEST(AsymmetricPredicates, BudgetsApplyPerSide) {
  // 2x2 with one edge missing on each left vertex's view.
  auto g = MakeGraph(2, 3, {{0, 0}, {0, 1}, {1, 1}, {1, 2}});
  // Left 0 misses {2}; left 1 misses {0}; right 0 misses {1}, right 1
  // misses nothing, right 2 misses {0}.
  Biplex whole{{0, 1}, {0, 1, 2}};
  EXPECT_TRUE(IsKBiplex(g, whole, KPair{1, 1}));
  EXPECT_TRUE(IsKBiplex(g, whole, KPair{1, 2}));
  // With zero tolerance on the left the two misses break it.
  EXPECT_FALSE(IsKBiplex(g, whole, KPair{0, 1}));
  // With zero tolerance on the right, right 0 and 2 each miss one.
  EXPECT_FALSE(IsKBiplex(g, whole, KPair{1, 0}));
}

TEST(AsymmetricPredicates, BruteForceDiffersAcrossBudgets) {
  auto g = MakeRandomGraph({5, 5, 0.5, 42});
  auto sym = BruteForceMaximalBiplexes(g, KPair{1, 1});
  auto asym = BruteForceMaximalBiplexes(g, KPair{1, 3});
  EXPECT_NE(sym, asym);  // looser right budget admits bigger solutions
  for (const Biplex& b : asym) {
    EXPECT_TRUE(IsMaximalKBiplex(g, b, KPair{1, 3})) << ToString(b);
  }
}

class AsymmetricSweep
    : public ::testing::TestWithParam<std::tuple<int, int, uint64_t>> {};

TEST_P(AsymmetricSweep, AllEngineConfigsMatchOracle) {
  const KPair k{std::get<0>(GetParam()), std::get<1>(GetParam())};
  const uint64_t seed = std::get<2>(GetParam());
  auto g = MakeRandomGraph({6, 5, 0.5, seed * 19 + 5});
  const auto expect = BruteForceMaximalBiplexes(g, k);
  for (TraversalOptions opts :
       {MakeBTraversalOptions(1), MakeITraversalLeftAnchoredOnlyOptions(1),
        MakeITraversalNoExclusionOptions(1), MakeITraversalOptions(1)}) {
    opts.k = k;
    auto got = CollectWith(g, opts);
    ASSERT_EQ(got, expect)
        << TraversalConfigName(opts) << " k=(" << k.left << "," << k.right
        << ") seed=" << seed << "\ngot:\n"
        << ToString(got) << "want:\n"
        << ToString(expect);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AsymmetricSweep,
    ::testing::Combine(::testing::Values(1, 2, 3), ::testing::Values(1, 2, 3),
                       ::testing::Values(0, 1, 2, 3)));

TEST(AsymmetricSweepRightAnchor, MatchesOracle) {
  for (uint64_t seed : {7u, 8u, 9u}) {
    auto g = MakeRandomGraph({5, 6, 0.5, seed});
    const KPair k{2, 1};
    auto expect = BruteForceMaximalBiplexes(g, k);
    TraversalOptions opts = MakeITraversalOptions(1);
    opts.k = k;
    opts.anchored_side = Side::kRight;
    ASSERT_EQ(CollectWith(g, opts), expect) << "seed=" << seed;
  }
}

// EnumAlmostSat under asymmetric budgets against the local oracle.
TEST(AsymmetricEnumAlmostSat, MatchesLocalOracle) {
  for (uint64_t seed : {1u, 2u, 3u, 4u}) {
    auto g = MakeRandomGraph({5, 5, 0.5, seed + 300});
    const KPair k{1, 2};
    for (const Biplex& h : BruteForceMaximalBiplexes(g, k)) {
      for (VertexId v = 0; v < g.NumLeft(); ++v) {
        if (sorted::Contains(h.left, v)) continue;
        // Oracle: maximal (k_l, k_r)-biplexes of the induced
        // almost-satisfying subgraph containing v.
        Biplex almost = h;
        sorted::Insert(&almost.left, v);
        InducedSubgraph sub = Induce(g, almost.left, almost.right);
        const VertexId v_compact = static_cast<VertexId>(
            std::lower_bound(sub.left_map.begin(), sub.left_map.end(), v) -
            sub.left_map.begin());
        std::vector<Biplex> expect;
        for (const Biplex& loc :
             BruteForceMaximalBiplexes(sub.graph, k)) {
          if (!sorted::Contains(loc.left, v_compact)) continue;
          Biplex mapped;
          for (VertexId x : loc.left) {
            mapped.left.push_back(sub.left_map[x]);
          }
          for (VertexId x : loc.right) {
            mapped.right.push_back(sub.right_map[x]);
          }
          expect.push_back(std::move(mapped));
        }
        std::sort(expect.begin(), expect.end());

        std::vector<Biplex> got;
        EnumAlmostSat(g, h, Side::kLeft, v, k, EnumAlmostSatOptions{},
                      [&](const Biplex& b) {
                        got.push_back(b);
                        return true;
                      });
        std::sort(got.begin(), got.end());
        ASSERT_EQ(got, expect) << "seed=" << seed << " v=" << v
                               << " H=" << ToString(h);
      }
    }
  }
}

TEST(AsymmetricLargeMbp, MatchesFilteredOracle) {
  for (uint64_t seed : {11u, 12u}) {
    auto g = MakeRandomGraph({6, 6, 0.55, seed});
    const KPair k{2, 1};
    LargeMbpOptions opts;
    opts.k = k;
    opts.theta_left = 2;
    opts.theta_right = 2;
    auto got = CollectLargeWith(g, opts);
    auto expect =
        FilterBySize(BruteForceMaximalBiplexes(g, k), 2, 2);
    ASSERT_EQ(got, expect) << "seed=" << seed;
  }
}

TEST(AsymmetricMonotonicity, LargerBudgetsNeverShrinkSolutionSizes) {
  // Every (1,1)-maximal biplex is contained in some (2,1)-biplex, so the
  // largest solution can only grow when a budget grows.
  auto g = MakeRandomGraph({6, 6, 0.5, 77});
  auto small = BruteForceMaximalBiplexes(g, KPair{1, 1});
  auto big = BruteForceMaximalBiplexes(g, KPair{2, 1});
  auto max_size = [](const std::vector<Biplex>& v) {
    size_t best = 0;
    for (const Biplex& b : v) best = std::max(best, b.Size());
    return best;
  };
  EXPECT_GE(max_size(big), max_size(small));
}

}  // namespace
}  // namespace kbiplex
