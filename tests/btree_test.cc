#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "index/btree.h"
#include "util/random.h"

namespace kbiplex {
namespace {

TEST(BTreeSet, EmptyTree) {
  BTreeSet t;
  EXPECT_TRUE(t.Empty());
  EXPECT_EQ(t.Size(), 0u);
  EXPECT_FALSE(t.Contains("x"));
  EXPECT_TRUE(t.CheckInvariants());
}

TEST(BTreeSet, InsertAndContains) {
  BTreeSet t;
  EXPECT_TRUE(t.Insert("b"));
  EXPECT_TRUE(t.Insert("a"));
  EXPECT_TRUE(t.Insert("c"));
  EXPECT_FALSE(t.Insert("a"));  // duplicate
  EXPECT_EQ(t.Size(), 3u);
  EXPECT_TRUE(t.Contains("a"));
  EXPECT_TRUE(t.Contains("b"));
  EXPECT_TRUE(t.Contains("c"));
  EXPECT_FALSE(t.Contains("d"));
}

TEST(BTreeSet, OrderedIteration) {
  BTreeSet t(4);  // small order to force splits
  std::vector<std::string> keys = {"pear", "apple", "fig", "kiwi", "date",
                                   "plum", "lime", "mango"};
  for (const auto& k : keys) t.Insert(k);
  std::vector<std::string> seen;
  t.ForEach([&](std::string_view k) { seen.emplace_back(k); });
  std::sort(keys.begin(), keys.end());
  EXPECT_EQ(seen, keys);
}

TEST(BTreeSet, SplitsGrowHeight) {
  BTreeSet t(4);
  EXPECT_EQ(t.Height(), 1u);
  for (int i = 0; i < 100; ++i) {
    t.Insert("key" + std::to_string(i));
  }
  EXPECT_GT(t.Height(), 1u);
  EXPECT_EQ(t.Size(), 100u);
  EXPECT_TRUE(t.CheckInvariants());
}

TEST(BTreeSet, Clear) {
  BTreeSet t(4);
  for (int i = 0; i < 50; ++i) t.Insert(std::to_string(i));
  t.Clear();
  EXPECT_TRUE(t.Empty());
  EXPECT_FALSE(t.Contains("1"));
  EXPECT_TRUE(t.Insert("1"));
  EXPECT_TRUE(t.CheckInvariants());
}

TEST(BTreeSet, BinaryKeysWithEmbeddedNuls) {
  BTreeSet t;
  std::string a("\x00\x01", 2);
  std::string b("\x00\x02", 2);
  std::string c("\x00", 1);
  EXPECT_TRUE(t.Insert(a));
  EXPECT_TRUE(t.Insert(b));
  EXPECT_TRUE(t.Insert(c));
  EXPECT_EQ(t.Size(), 3u);
  EXPECT_TRUE(t.Contains(a));
  EXPECT_TRUE(t.Contains(c));
  std::vector<std::string> seen;
  t.ForEach([&](std::string_view k) { seen.emplace_back(k); });
  EXPECT_EQ(seen[0], c);  // shortest prefix first
}

TEST(BTreeSet, EmptyKeySupported) {
  BTreeSet t;
  EXPECT_TRUE(t.Insert(""));
  EXPECT_FALSE(t.Insert(""));
  EXPECT_TRUE(t.Contains(""));
}

class BTreeRandomTest : public ::testing::TestWithParam<size_t> {};

TEST_P(BTreeRandomTest, MatchesStdSet) {
  const size_t order = GetParam();
  BTreeSet t(order);
  std::set<std::string> reference;
  Rng rng(order * 1000 + 17);
  for (int i = 0; i < 3000; ++i) {
    // Random short binary keys with many collisions.
    std::string key;
    size_t len = rng.NextBelow(6);
    for (size_t j = 0; j < len; ++j) {
      key.push_back(static_cast<char>(rng.NextBelow(8)));
    }
    bool inserted_ref = reference.insert(key).second;
    bool inserted_tree = t.Insert(key);
    ASSERT_EQ(inserted_tree, inserted_ref) << "iteration " << i;
  }
  ASSERT_EQ(t.Size(), reference.size());
  std::vector<std::string> seen;
  t.ForEach([&](std::string_view k) { seen.emplace_back(k); });
  std::vector<std::string> expect(reference.begin(), reference.end());
  ASSERT_EQ(seen, expect);
  ASSERT_TRUE(t.CheckInvariants());
  for (const auto& k : reference) ASSERT_TRUE(t.Contains(k));
}

INSTANTIATE_TEST_SUITE_P(Orders, BTreeRandomTest,
                         ::testing::Values(4, 5, 8, 16, 64));

TEST(BTreeSet, LargeSequentialInsert) {
  BTreeSet t(8);
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    std::string key(4, '\0');
    key[0] = static_cast<char>((i >> 24) & 0xff);
    key[1] = static_cast<char>((i >> 16) & 0xff);
    key[2] = static_cast<char>((i >> 8) & 0xff);
    key[3] = static_cast<char>(i & 0xff);
    ASSERT_TRUE(t.Insert(key));
  }
  EXPECT_EQ(t.Size(), static_cast<size_t>(n));
  EXPECT_TRUE(t.CheckInvariants());
  // Keys come back in numeric order thanks to big-endian encoding.
  int expect = 0;
  t.ForEach([&](std::string_view k) {
    int v = (static_cast<unsigned char>(k[0]) << 24) |
            (static_cast<unsigned char>(k[1]) << 16) |
            (static_cast<unsigned char>(k[2]) << 8) |
            static_cast<unsigned char>(k[3]);
    EXPECT_EQ(v, expect++);
  });
}

}  // namespace
}  // namespace kbiplex
